// Robustness: every parser in the system must reject malformed input with
// a Status — never crash, hang, or accept garbage — including randomly
// mutated variants of valid documents.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "sql/parser.h"
#include "xml/document.h"
#include "xml/dtd_parser.h"
#include "xml/xsd_parser.h"
#include "xpath/xpath.h"

namespace xmlshred {
namespace {

// Random mutation of a valid input string.
std::string Mutate(const std::string& input, Rng* rng) {
  std::string out = input;
  int edits = 1 + static_cast<int>(rng->Uniform(0, 3));
  for (int e = 0; e < edits && !out.empty(); ++e) {
    size_t pos = static_cast<size_t>(
        rng->Uniform(0, static_cast<int64_t>(out.size()) - 1));
    switch (rng->Uniform(0, 2)) {
      case 0:  // delete a span
        out.erase(pos, static_cast<size_t>(rng->Uniform(1, 5)));
        break;
      case 1:  // flip a character
        out[pos] = static_cast<char>(rng->Uniform(32, 126));
        break;
      default:  // duplicate a span
        out.insert(pos, out.substr(pos, static_cast<size_t>(
                                            rng->Uniform(1, 8))));
        break;
    }
  }
  return out;
}

class FuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(FuzzTest, XmlParserNeverCrashes) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 7919 + 1);
  const std::string valid =
      "<dblp><inproceedings><title>T</title><year>2000</year>"
      "<author>A</author></inproceedings></dblp>";
  for (int i = 0; i < 200; ++i) {
    std::string mutated = Mutate(valid, &rng);
    auto result = ParseXml(mutated);  // ok or error, never UB
    if (result.ok()) {
      // If accepted, serialization must reparse.
      auto again = ParseXml(result->ToXml());
      EXPECT_TRUE(again.ok()) << mutated;
    }
  }
}

TEST_P(FuzzTest, XsdParserNeverCrashes) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 104729 + 3);
  const std::string valid = R"(<xs:schema xmlns:xs="x">
<xs:element name="a" annotation="a"><xs:complexType><xs:sequence>
<xs:element name="b" type="xs:string" maxOccurs="unbounded"/>
</xs:sequence></xs:complexType></xs:element></xs:schema>)";
  for (int i = 0; i < 200; ++i) {
    auto result = ParseXsd(Mutate(valid, &rng));
    if (result.ok()) {
      EXPECT_NE(result->get()->root(), nullptr);
    }
  }
}

TEST_P(FuzzTest, DtdParserNeverCrashes) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 15485863 + 5);
  const std::string valid =
      "<!ELEMENT a (b*, c?)>\n<!ELEMENT b (#PCDATA)>\n"
      "<!ELEMENT c (d | b)>\n<!ELEMENT d (#PCDATA)>";
  for (int i = 0; i < 200; ++i) {
    auto result = ParseDtd(Mutate(valid, &rng));
    if (result.ok()) {
      EXPECT_NE(result->get()->root(), nullptr);
    }
  }
}

TEST_P(FuzzTest, SqlParserNeverCrashes) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 32452843 + 7);
  const std::string valid =
      "SELECT I.ID, title, NULL FROM inproc I WHERE booktitle = 'X' "
      "UNION ALL SELECT I.ID, NULL, author FROM inproc I, inproc_author A "
      "WHERE I.ID = A.PID ORDER BY 1";
  for (int i = 0; i < 200; ++i) {
    std::string mutated = Mutate(valid, &rng);
    auto result = ParseSql(mutated);
    if (result.ok()) {
      // Accepted queries must print and reparse.
      auto again = ParseSql(result->ToSql());
      EXPECT_TRUE(again.ok()) << mutated << "\n -> " << result->ToSql();
    }
  }
}

TEST_P(FuzzTest, XPathParserNeverCrashes) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 49979687 + 9);
  const std::string valid =
      "//movie[year >= 1998 and votes = 5]/(title | box_office)";
  for (int i = 0; i < 200; ++i) {
    std::string mutated = Mutate(valid, &rng);
    auto result = ParseXPath(mutated);
    if (result.ok()) {
      auto again = ParseXPath(result->ToString());
      EXPECT_TRUE(again.ok()) << mutated << "\n -> " << result->ToString();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzTest, ::testing::Range(0, 4));

}  // namespace
}  // namespace xmlshred
