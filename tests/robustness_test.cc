// Robustness: every parser in the system must reject malformed input with
// a Status — never crash, hang, or accept garbage — including randomly
// mutated variants of valid documents, pathologically deep inputs, and
// injected faults in the catalog/advisor layers.

#include <gtest/gtest.h>

#include <string>

#include "common/fault_injection.h"
#include "common/limits.h"
#include "common/rng.h"
#include "mapping/shredder.h"
#include "mapping/transforms.h"
#include "search/evaluate.h"
#include "search/greedy.h"
#include "sql/parser.h"
#include "tune/advisor.h"
#include "workload/movie.h"
#include "workload/query_gen.h"
#include "xml/document.h"
#include "xml/dtd_parser.h"
#include "xml/xsd_parser.h"
#include "xpath/xpath.h"

namespace xmlshred {
namespace {

// Random mutation of a valid input string.
std::string Mutate(const std::string& input, Rng* rng) {
  std::string out = input;
  int edits = 1 + static_cast<int>(rng->Uniform(0, 3));
  for (int e = 0; e < edits && !out.empty(); ++e) {
    size_t pos = static_cast<size_t>(
        rng->Uniform(0, static_cast<int64_t>(out.size()) - 1));
    switch (rng->Uniform(0, 2)) {
      case 0:  // delete a span
        out.erase(pos, static_cast<size_t>(rng->Uniform(1, 5)));
        break;
      case 1:  // flip a character
        out[pos] = static_cast<char>(rng->Uniform(32, 126));
        break;
      default:  // duplicate a span
        out.insert(pos, out.substr(pos, static_cast<size_t>(
                                            rng->Uniform(1, 8))));
        break;
    }
  }
  return out;
}

class FuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(FuzzTest, XmlParserNeverCrashes) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 7919 + 1);
  const std::string valid =
      "<dblp><inproceedings><title>T</title><year>2000</year>"
      "<author>A</author></inproceedings></dblp>";
  for (int i = 0; i < 200; ++i) {
    std::string mutated = Mutate(valid, &rng);
    auto result = ParseXml(mutated);  // ok or error, never UB
    if (result.ok()) {
      // If accepted, serialization must reparse.
      auto again = ParseXml(result->ToXml());
      EXPECT_TRUE(again.ok()) << mutated;
    }
  }
}

TEST_P(FuzzTest, XsdParserNeverCrashes) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 104729 + 3);
  const std::string valid = R"(<xs:schema xmlns:xs="x">
<xs:element name="a" annotation="a"><xs:complexType><xs:sequence>
<xs:element name="b" type="xs:string" maxOccurs="unbounded"/>
</xs:sequence></xs:complexType></xs:element></xs:schema>)";
  for (int i = 0; i < 200; ++i) {
    auto result = ParseXsd(Mutate(valid, &rng));
    if (result.ok()) {
      EXPECT_NE(result->get()->root(), nullptr);
    }
  }
}

TEST_P(FuzzTest, DtdParserNeverCrashes) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 15485863 + 5);
  const std::string valid =
      "<!ELEMENT a (b*, c?)>\n<!ELEMENT b (#PCDATA)>\n"
      "<!ELEMENT c (d | b)>\n<!ELEMENT d (#PCDATA)>";
  for (int i = 0; i < 200; ++i) {
    auto result = ParseDtd(Mutate(valid, &rng));
    if (result.ok()) {
      EXPECT_NE(result->get()->root(), nullptr);
    }
  }
}

TEST_P(FuzzTest, SqlParserNeverCrashes) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 32452843 + 7);
  const std::string valid =
      "SELECT I.ID, title, NULL FROM inproc I WHERE booktitle = 'X' "
      "UNION ALL SELECT I.ID, NULL, author FROM inproc I, inproc_author A "
      "WHERE I.ID = A.PID ORDER BY 1";
  for (int i = 0; i < 200; ++i) {
    std::string mutated = Mutate(valid, &rng);
    auto result = ParseSql(mutated);
    if (result.ok()) {
      // Accepted queries must print and reparse.
      auto again = ParseSql(result->ToSql());
      EXPECT_TRUE(again.ok()) << mutated << "\n -> " << result->ToSql();
    }
  }
}

TEST_P(FuzzTest, XPathParserNeverCrashes) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 49979687 + 9);
  const std::string valid =
      "//movie[year >= 1998 and votes = 5]/(title | box_office)";
  for (int i = 0; i < 200; ++i) {
    std::string mutated = Mutate(valid, &rng);
    auto result = ParseXPath(mutated);
    if (result.ok()) {
      auto again = ParseXPath(result->ToString());
      EXPECT_TRUE(again.ok()) << mutated << "\n -> " << result->ToString();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzTest, ::testing::Range(0, 4));

// --- Depth guards: 10k-deep inputs must return kResourceExhausted, not
// overflow the stack. Every parser enforces the default recursion cap even
// when the caller passes no governor. ---

constexpr int kDeep = 10000;

std::string Repeat(const std::string& unit, int times) {
  std::string out;
  out.reserve(unit.size() * static_cast<size_t>(times));
  for (int i = 0; i < times; ++i) out += unit;
  return out;
}

TEST(DepthGuardTest, DeepXmlReturnsResourceExhausted) {
  std::string xml = Repeat("<a>", kDeep) + "x" + Repeat("</a>", kDeep);
  auto result = ParseXml(xml);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted)
      << result.status();
}

TEST(DepthGuardTest, DeepXsdReturnsResourceExhausted) {
  std::string xsd = R"(<xs:schema xmlns:xs="x">)"
                    R"(<xs:element name="a" annotation="a"><xs:complexType>)" +
                    Repeat("<xs:sequence>", kDeep) +
                    R"(<xs:element name="b" type="xs:string"/>)" +
                    Repeat("</xs:sequence>", kDeep) +
                    "</xs:complexType></xs:element></xs:schema>";
  auto result = ParseXsd(xsd);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted)
      << result.status();
}

TEST(DepthGuardTest, DeepDtdReturnsResourceExhausted) {
  std::string dtd = "<!ELEMENT a " + Repeat("(", kDeep) + "b" +
                    Repeat(")", kDeep) + ">\n<!ELEMENT b (#PCDATA)>";
  auto result = ParseDtd(dtd);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted)
      << result.status();
}

TEST(DepthGuardTest, DeepSqlUnionReturnsResourceExhausted) {
  // UNION ALL blocks are iterative, but block count is input-controlled
  // growth and metered against the same depth budget.
  std::string sql = "SELECT T.ID FROM t T" +
                    Repeat(" UNION ALL SELECT T.ID FROM t T", kDeep);
  auto result = ParseSql(sql);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted)
      << result.status();
}

TEST(DepthGuardTest, DeepXPathReturnsResourceExhausted) {
  std::string xpath = "/" + Repeat("/a", kDeep) + "/(b)";
  auto result = ParseXPath(xpath);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted)
      << result.status();
}

TEST(DepthGuardTest, CustomGovernorDepthCapApplies) {
  ResourceLimits limits;
  limits.max_recursion_depth = 8;
  ResourceGovernor governor(limits);
  std::string deep = Repeat("<a>", 20) + "x" + Repeat("</a>", 20);
  ParseOptions governed;
  governed.governor = &governor;
  auto rejected = ParseXml(deep, governed);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kResourceExhausted);
  // Shallow input still parses with the same governor: depth is a live
  // guard, not a sticky trip.
  EXPECT_TRUE(ParseXml("<a><b>x</b></a>", governed).ok());
}

TEST(DepthGuardTest, ExhaustedGovernorStillParsesShallowInput) {
  // A search that spent its work budget must still parse while unwinding:
  // recursion depth is independent of sticky exhaustion.
  ResourceLimits limits;
  limits.work_units = 1;
  ResourceGovernor governor(limits);
  EXPECT_TRUE(governor.ChargeWork(1).ok());
  EXPECT_FALSE(governor.ChargeWork(1).ok());
  ASSERT_TRUE(governor.exhausted());
  ParseOptions governed;
  governed.governor = &governor;
  EXPECT_TRUE(ParseXml("<a><b>x</b></a>", governed).ok());
}

// --- Fault-injection sweep: with a fault armed at each named site, Greedy
// search must skip the failed candidate, keep going, and still return a
// valid mapping that really loads the data and answers the workload. ---

class FaultSweepTest : public ::testing::TestWithParam<const char*> {
 protected:
  void SetUp() override {
    MovieConfig config;
    config.num_movies = 400;
    data_ = GenerateMovie(config);
    auto stats = XmlStatistics::Collect(data_.doc, *data_.tree);
    ASSERT_TRUE(stats.ok()) << stats.status();
    stats_ = std::make_unique<XmlStatistics>(std::move(*stats));
    problem_.tree = data_.tree.get();
    problem_.stats = stats_.get();
    auto mapping = Mapping::Build(*data_.tree);
    ASSERT_TRUE(mapping.ok());
    problem_.storage_bound_pages =
        stats_->DeriveCatalog(*data_.tree, *mapping).DataPages() * 6 + 1024;
    WorkloadSpec spec;
    spec.num_queries = 4;
    spec.seed = 11;
    auto workload = GenerateWorkload(*data_.tree, *stats_, spec);
    ASSERT_TRUE(workload.ok()) << workload.status();
    problem_.workload = std::move(*workload);
  }

  GeneratedData data_;
  std::unique_ptr<XmlStatistics> stats_;
  DesignProblem problem_;
};

TEST_P(FaultSweepTest, GreedySurvivesInjectedFault) {
  const std::string site = GetParam();
  Result<SearchResult> result = [&] {
    // advisor.tune guards the design tool's entry; nth=2 lets the
    // mandatory initial costing through and fails a mid-search costing
    // instead, which the search must absorb.
    int nth = site == kFaultSiteAdvisorTune ? 2 : 1;
    ScopedFaultInjection armed(site, nth);
    return GreedySearch(problem_);
  }();
  EXPECT_FALSE(FaultInjector::Global()->armed());
  ASSERT_TRUE(result.ok()) << site << ": " << result.status();
  EXPECT_FALSE(result->mapping.relations().empty());
  // Round trip: shred the document under the surviving mapping, apply the
  // configuration, and execute the workload for real.
  auto eval = EvaluateOnData(*result, data_.doc, problem_.workload);
  ASSERT_TRUE(eval.ok()) << site << ": " << eval.status();
  EXPECT_GT(eval->total_work, 0);
}

INSTANTIATE_TEST_SUITE_P(Sites, FaultSweepTest,
                         ::testing::Values(kFaultSiteCatalogCreateTable,
                                           kFaultSiteIndexBuild,
                                           kFaultSiteViewMaterialize,
                                           kFaultSiteAdvisorWhatIf,
                                           kFaultSiteAdvisorTune));

TEST_P(FaultSweepTest, ParallelGreedySurvivesInjectedFault) {
  // Same sweep with explicit worker counts: the fault now fires on a
  // worker thread mid-round. Which candidate absorbs it is
  // scheduling-dependent, but the survival contract is identical —
  // skip the failed candidate, finish the search, return a design with
  // no partial state (it shreds, applies, and executes end to end).
  const std::string site = GetParam();
  for (int threads : {2, 8}) {
    Result<SearchResult> result = [&] {
      int nth = site == kFaultSiteAdvisorTune ? 2 : 1;
      ScopedFaultInjection armed(site, nth);
      GreedyOptions options;
      options.num_threads = threads;
      return GreedySearch(problem_, options);
    }();
    EXPECT_FALSE(FaultInjector::Global()->armed());
    ASSERT_TRUE(result.ok()) << site << " threads=" << threads << ": "
                             << result.status();
    EXPECT_FALSE(result->mapping.relations().empty());
    auto eval = EvaluateOnData(*result, data_.doc, problem_.workload);
    ASSERT_TRUE(eval.ok()) << site << " threads=" << threads << ": "
                           << eval.status();
    EXPECT_GT(eval->total_work, 0);
  }
}

TEST_F(FaultSweepTest, GreedySurvivesProbabilisticChaos) {
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    Result<SearchResult> result = [&] {
      ScopedFaultInjection chaos(seed, 0.02);
      return GreedySearch(problem_);
    }();
    // A fault in the mandatory initial costing surfaces as a clean error;
    // anything else must be absorbed. Either way: no crash, no wedge.
    if (result.ok()) {
      EXPECT_FALSE(result->mapping.relations().empty());
      auto eval = EvaluateOnData(*result, data_.doc, problem_.workload);
      EXPECT_TRUE(eval.ok()) << eval.status();
    } else {
      EXPECT_EQ(result.status().code(), StatusCode::kInternal)
          << result.status();
    }
  }
}

// --- Rollback: a fault mid-apply must leave the database exactly as it
// was, and the apply must succeed once the fault clears. ---

class FaultRollbackTest : public ::testing::Test {
 protected:
  void SetUp() override {
    MovieConfig config;
    config.num_movies = 50;
    data_ = GenerateMovie(config);
    FullyInline(data_.tree.get());
    auto mapping = Mapping::Build(*data_.tree);
    ASSERT_TRUE(mapping.ok());
    ASSERT_TRUE(ShredDocument(data_.doc, *data_.tree, *mapping, &db_).ok());
    table_ = db_.TableNames().front();
  }

  GeneratedData data_;
  Database db_;
  std::string table_;
};

TEST_F(FaultRollbackTest, ApplyConfigurationRollsBackOnIndexFault) {
  TunerResult config;
  IndexDesc first, second;
  first.def.name = "rb_idx1";
  first.def.table = table_;
  first.def.key_columns = {0};
  second.def.name = "rb_idx2";
  second.def.table = table_;
  second.def.key_columns = {0};
  config.indexes = {first, second};
  {
    ScopedFaultInjection armed(kFaultSiteIndexBuild, 2);
    Status status = ApplyConfiguration(config, &db_);
    ASSERT_FALSE(status.ok());
    // The first index built fine but must have been rolled back.
    EXPECT_EQ(db_.FindIndex("rb_idx1"), nullptr);
    EXPECT_EQ(db_.FindIndex("rb_idx2"), nullptr);
  }
  ASSERT_TRUE(ApplyConfiguration(config, &db_).ok());
  EXPECT_NE(db_.FindIndex("rb_idx1"), nullptr);
  EXPECT_NE(db_.FindIndex("rb_idx2"), nullptr);
}

TEST_F(FaultRollbackTest, ViewMaterializeMidFaultLeavesNoDebris) {
  const Table* base = db_.FindTable(table_);
  ASSERT_NE(base, nullptr);
  ViewDef def;
  def.name = "rb_view";
  def.base_table = table_;
  def.projected = {{table_, base->schema().columns[0].name}};
  {
    // nth=2 passes the entry check and fires mid-materialization, after
    // the output table exists.
    ScopedFaultInjection armed(kFaultSiteViewMaterialize, 2);
    Status status = db_.CreateMaterializedView(def);
    ASSERT_FALSE(status.ok());
    EXPECT_EQ(db_.FindTable("rb_view"), nullptr);
    EXPECT_EQ(db_.FindViewDef("rb_view"), nullptr);
  }
  EXPECT_TRUE(db_.CreateMaterializedView(def).ok());
  EXPECT_NE(db_.FindTable("rb_view"), nullptr);
}

}  // namespace
}  // namespace xmlshred
