// Tests for the XPath parser and the sorted-outer-union translator,
// including the cross-mapping result-invariance property: the same XPath
// query canonicalizes to the same result under every mapping.

#include <gtest/gtest.h>

#include "exec/executor.h"
#include "mapping/shredder.h"
#include "mapping/transforms.h"
#include "opt/planner.h"
#include "sql/binder.h"
#include "workload/dblp.h"
#include "workload/movie.h"
#include "xpath/translator.h"
#include "xpath/xpath.h"

namespace xmlshred {
namespace {

TEST(XPathParserTest, FullForm) {
  auto q = ParseXPath("//movie[title = \"Titanic\"]/(aka_title | avg_rating)");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_EQ(q->context, "movie");
  ASSERT_TRUE(q->has_selection);
  EXPECT_EQ(q->selection_path, "title");
  EXPECT_EQ(q->selection_op, "=");
  EXPECT_TRUE(q->selection_literal.TotalEquals(Value::Str("Titanic")));
  EXPECT_EQ(q->projections,
            (std::vector<std::string>{"aka_title", "avg_rating"}));
}

TEST(XPathParserTest, AbsolutePathAndNumericPredicate) {
  auto q = ParseXPath(
      "/dblp/inproceedings[year=\"2000\"]/(title | year | author)");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_EQ(q->context, "inproceedings");
  EXPECT_TRUE(q->selection_literal.TotalEquals(Value::Int(2000)));
  EXPECT_EQ(q->projections.size(), 3u);
}

TEST(XPathParserTest, SingleProjectionForm) {
  auto q = ParseXPath("//movie/year");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_EQ(q->context, "movie");
  EXPECT_EQ(q->projections, std::vector<std::string>{"year"});
  EXPECT_FALSE(q->has_selection);
}

TEST(XPathParserTest, RangePredicates) {
  auto q = ParseXPath("//movie[year >= 1998]/(title | box_office)");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_EQ(q->selection_op, ">=");
  EXPECT_TRUE(q->selection_literal.TotalEquals(Value::Int(1998)));
}

TEST(XPathParserTest, RoundTripThroughToString) {
  auto q = ParseXPath("//movie[year >= 1998]/(title | box_office)");
  ASSERT_TRUE(q.ok());
  auto again = ParseXPath(q->ToString());
  ASSERT_TRUE(again.ok()) << again.status() << " <- " << q->ToString();
  EXPECT_EQ(again->ToString(), q->ToString());
}

TEST(XPathParserTest, Errors) {
  EXPECT_FALSE(ParseXPath("").ok());
  EXPECT_FALSE(ParseXPath("movie").ok());
  EXPECT_FALSE(ParseXPath("//movie").ok());
  EXPECT_FALSE(ParseXPath("//movie[year]/(title)").ok());
  EXPECT_FALSE(ParseXPath("//movie/(title |)").ok());
  EXPECT_FALSE(ParseXPath("//movie/(title) extra").ok());
}

// Executes an XPath query under the given (already shredded) database and
// returns the canonicalized result plus metered work.
class XPathExecFixture {
 public:
  XPathExecFixture(const SchemaTree& tree, const Mapping& mapping,
                   Database* db)
      : tree_(tree), mapping_(mapping), db_(db) {}

  Result<std::vector<std::string>> Run(const std::string& xpath,
                                       double* work = nullptr) {
    auto parsed = ParseXPath(xpath);
    if (!parsed.ok()) return parsed.status();
    auto translated = TranslateXPath(*parsed, tree_, mapping_);
    if (!translated.ok()) return translated.status();
    CatalogDesc catalog = db_->BuildCatalogDesc();
    auto bound = BindQuery(translated->sql, catalog);
    if (!bound.ok()) return bound.status();
    auto planned = PlanQuery(*bound, catalog);
    if (!planned.ok()) return planned.status();
    Executor executor(*db_);
    ExecMetrics metrics;
    auto rows = executor.Run(*planned->root, &metrics);
    if (!rows.ok()) return rows.status();
    if (work != nullptr) *work = metrics.work;
    return CanonicalizeResult(*translated, *rows);
  }

 private:
  const SchemaTree& tree_;
  const Mapping& mapping_;
  Database* db_;
};

TEST(TranslatorTest, DblpSortedOuterUnionSql) {
  auto tree = BuildDblpSchemaTree();
  auto mapping = Mapping::Build(*tree);
  ASSERT_TRUE(mapping.ok());
  auto q = ParseXPath(
      "//inproceedings[booktitle = 'conf_0']/(title | year | author)");
  ASSERT_TRUE(q.ok());
  auto translated = TranslateXPath(*q, *tree, *mapping);
  ASSERT_TRUE(translated.ok()) << translated.status();
  // One inline block plus one child block for author.
  EXPECT_EQ(translated->sql.blocks.size(), 2u);
  std::string sql = translated->sql.ToSql();
  EXPECT_NE(sql.find("UNION ALL"), std::string::npos);
  EXPECT_NE(sql.find("ORDER BY 1"), std::string::npos);
  EXPECT_NE(sql.find("inproc_author"), std::string::npos);
  EXPECT_EQ(translated->output_elements.size(), 4u);  // ID,title,year,author
}

TEST(TranslatorTest, MissingContextOrSelection) {
  auto tree = BuildDblpSchemaTree();
  auto mapping = Mapping::Build(*tree);
  ASSERT_TRUE(mapping.ok());
  auto q1 = ParseXPath("//nonexistent/(title)");
  ASSERT_TRUE(q1.ok());
  EXPECT_EQ(TranslateXPath(*q1, *tree, *mapping).status().code(),
            StatusCode::kNotFound);
  auto q2 = ParseXPath("//inproceedings[bogus = 1]/(title)");
  ASSERT_TRUE(q2.ok());
  EXPECT_EQ(TranslateXPath(*q2, *tree, *mapping).status().code(),
            StatusCode::kNotFound);
}

// The central invariance property: transformations change the SQL and the
// physical layout but never the canonicalized query answer.
class MappingInvarianceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    movie_ = GenerateMovie([] {
      MovieConfig c;
      c.num_movies = 1500;
      return c;
    }());
    dblp_ = GenerateDblp([] {
      DblpConfig c;
      c.num_inproceedings = 1500;
      c.num_books = 150;
      return c;
    }());
  }

  // Shreds `data`'s document under its (possibly transformed) tree and
  // runs all `queries`, returning canonical results.
  static Result<std::vector<std::vector<std::string>>> RunAll(
      const GeneratedData& data, const std::vector<std::string>& queries) {
    auto mapping = Mapping::Build(*data.tree);
    if (!mapping.ok()) return mapping.status();
    Database db;
    auto shredded = ShredDocument(data.doc, *data.tree, *mapping, &db);
    if (!shredded.ok()) return shredded.status();
    XPathExecFixture fixture(*data.tree, *mapping, &db);
    std::vector<std::vector<std::string>> results;
    for (const std::string& q : queries) {
      auto result = fixture.Run(q);
      if (!result.ok()) return result.status();
      results.push_back(std::move(*result));
    }
    return results;
  }

  GeneratedData movie_;
  GeneratedData dblp_;
};

TEST_F(MappingInvarianceTest, MovieTransformationsPreserveResults) {
  std::vector<std::string> queries = {
      "//movie[year >= 2000]/(title | avg_rating)",
      "//movie[title = 'movie_title_77']/(aka_title | avg_rating)",
      "//movie[year = 1990]/(title | box_office | seasons)",
      "//movie/(votes)",
  };
  auto baseline = RunAll(movie_, queries);
  ASSERT_TRUE(baseline.ok()) << baseline.status();

  // Repetition split on aka_title.
  {
    GeneratedData variant;
    variant.tree = movie_.tree->Clone();
    auto parsed = ParseXml(movie_.doc.ToXml());
    ASSERT_TRUE(parsed.ok());
    variant.doc = std::move(*parsed);
    Transform split;
    split.kind = TransformKind::kRepetitionSplit;
    split.target = variant.tree->FindTagByName("aka_title")->parent()->id();
    split.split_count = 5;
    ASSERT_TRUE(ApplyTransform(variant.tree.get(), split).ok());
    auto results = RunAll(variant, queries);
    ASSERT_TRUE(results.ok()) << results.status();
    EXPECT_EQ(*results, *baseline);
  }

  // Explicit union distribution on (box_office | seasons).
  {
    GeneratedData variant;
    variant.tree = movie_.tree->Clone();
    auto parsed = ParseXml(movie_.doc.ToXml());
    ASSERT_TRUE(parsed.ok());
    variant.doc = std::move(*parsed);
    Transform dist;
    dist.kind = TransformKind::kUnionDistribute;
    dist.target = variant.tree->FindTagByName("box_office")->parent()->id();
    ASSERT_TRUE(ApplyTransform(variant.tree.get(), dist).ok());
    auto results = RunAll(variant, queries);
    ASSERT_TRUE(results.ok()) << results.status();
    EXPECT_EQ(*results, *baseline);
  }

  // Implicit union distribution on avg_rating.
  {
    GeneratedData variant;
    variant.tree = movie_.tree->Clone();
    auto parsed = ParseXml(movie_.doc.ToXml());
    ASSERT_TRUE(parsed.ok());
    variant.doc = std::move(*parsed);
    SchemaNode* option =
        variant.tree->FindTagByName("avg_rating")->parent();
    Transform dist;
    dist.kind = TransformKind::kUnionDistribute;
    dist.target = option->id();
    dist.option_targets = {option->id()};
    ASSERT_TRUE(ApplyTransform(variant.tree.get(), dist).ok());
    auto results = RunAll(variant, queries);
    ASSERT_TRUE(results.ok()) << results.status();
    EXPECT_EQ(*results, *baseline);
  }
}

TEST_F(MappingInvarianceTest, DblpTransformationsPreserveResults) {
  std::vector<std::string> queries = {
      "//inproceedings[year = 1999]/(title | author | pages)",
      "//inproceedings[booktitle = 'conf_0']/(title | year | author | ee)",
      "//book/(title | author)",
  };
  auto baseline = RunAll(dblp_, queries);
  ASSERT_TRUE(baseline.ok()) << baseline.status();

  // Repetition split on inproceedings' authors.
  {
    GeneratedData variant;
    variant.tree = dblp_.tree->Clone();
    auto parsed = ParseXml(dblp_.doc.ToXml());
    ASSERT_TRUE(parsed.ok());
    variant.doc = std::move(*parsed);
    SchemaNode* inproc = variant.tree->FindTagByName("inproceedings");
    std::vector<SchemaNode*> authors;
    variant.tree->Visit([&](SchemaNode* n) {
      if (n->kind() == SchemaNodeKind::kTag && n->name() == "author" &&
          n->NearestAnnotatedAncestor() == inproc) {
        authors.push_back(n);
      }
    });
    ASSERT_EQ(authors.size(), 1u);
    Transform split;
    split.kind = TransformKind::kRepetitionSplit;
    split.target = authors[0]->parent()->id();
    split.split_count = 5;
    ASSERT_TRUE(ApplyTransform(variant.tree.get(), split).ok());
    auto results = RunAll(variant, queries);
    ASSERT_TRUE(results.ok()) << results.status();
    EXPECT_EQ(*results, *baseline);
  }

  // Type merge of the two author types.
  {
    GeneratedData variant;
    variant.tree = dblp_.tree->Clone();
    auto parsed = ParseXml(dblp_.doc.ToXml());
    ASSERT_TRUE(parsed.ok());
    variant.doc = std::move(*parsed);
    auto authors = variant.tree->FindTagsByName("author");
    ASSERT_EQ(authors.size(), 2u);
    Transform merge;
    merge.kind = TransformKind::kTypeMerge;
    merge.target = authors[0]->id();
    merge.target2 = authors[1]->id();
    ASSERT_TRUE(ApplyTransform(variant.tree.get(), merge).ok());
    auto results = RunAll(variant, queries);
    ASSERT_TRUE(results.ok()) << results.status();
    EXPECT_EQ(*results, *baseline);
  }

  // Fully inlined (hybrid) mapping.
  {
    GeneratedData variant;
    variant.tree = dblp_.tree->Clone();
    auto parsed = ParseXml(dblp_.doc.ToXml());
    ASSERT_TRUE(parsed.ok());
    variant.doc = std::move(*parsed);
    FullyInline(variant.tree.get());
    auto results = RunAll(variant, queries);
    ASSERT_TRUE(results.ok()) << results.status();
    EXPECT_EQ(*results, *baseline);
  }
}

TEST_F(MappingInvarianceTest, UnionDistributionEnablesPartitionElimination) {
  // //movie[avg_rating >= 9]/(title): after implicit union distribution on
  // avg_rating, the no-rating partition is never touched.
  auto mapping = Mapping::Build(*movie_.tree);
  ASSERT_TRUE(mapping.ok());
  Database db;
  ASSERT_TRUE(ShredDocument(movie_.doc, *movie_.tree, *mapping, &db).ok());
  XPathExecFixture fixture(*movie_.tree, *mapping, &db);
  double base_work = 0;
  auto base = fixture.Run("//movie[avg_rating >= 9]/(title)", &base_work);
  ASSERT_TRUE(base.ok()) << base.status();

  GeneratedData variant;
  variant.tree = movie_.tree->Clone();
  auto parsed = ParseXml(movie_.doc.ToXml());
  ASSERT_TRUE(parsed.ok());
  variant.doc = std::move(*parsed);
  SchemaNode* option = variant.tree->FindTagByName("avg_rating")->parent();
  Transform dist;
  dist.kind = TransformKind::kUnionDistribute;
  dist.target = option->id();
  dist.option_targets = {option->id()};
  ASSERT_TRUE(ApplyTransform(variant.tree.get(), dist).ok());
  auto vmapping = Mapping::Build(*variant.tree);
  ASSERT_TRUE(vmapping.ok());
  Database vdb;
  ASSERT_TRUE(
      ShredDocument(variant.doc, *variant.tree, *vmapping, &vdb).ok());
  XPathExecFixture vfixture(*variant.tree, *vmapping, &vdb);
  double variant_work = 0;
  auto result = vfixture.Run("//movie[avg_rating >= 9]/(title)",
                             &variant_work);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(*result, *base);
  // Scanning only the with-rating partition (60 %) costs less.
  EXPECT_LT(variant_work, base_work);
}

}  // namespace
}  // namespace xmlshred
