// Integration tests for optimizer + executor: plans are chosen sensibly and
// execute to correct results under every physical configuration.

#include <gtest/gtest.h>

#include <algorithm>

#include "exec/executor.h"
#include "opt/planner.h"
#include "rel/catalog.h"
#include "sql/binder.h"
#include "sql/parser.h"

namespace xmlshred {
namespace {

// Builds a small DBLP-like database: `inproc` parent rows and
// `inproc_author` children (3 authors per publication).
class EngineTest : public ::testing::Test {
 protected:
  static constexpr int kPubs = 20000;
  // 8 rows per venue: selective enough that a non-covering index seek
  // (a couple of probe pages + 8 random fetches) undercuts the
  // block-encoded heap scan, whose pages shrank enough under compression
  // that the old 40-match setup crossed back over to scanning.
  static constexpr int kConfs = 2500;

  // Publications matching a predicate over index i.
  template <typename Pred>
  static int CountWhere(Pred pred) {
    int n = 0;
    for (int i = 0; i < kPubs; ++i) {
      if (pred(i)) ++n;
    }
    return n;
  }

  void SetUp() override {
    TableSchema parent;
    parent.name = "inproc";
    parent.columns = {{"ID", ColumnType::kInt64, false},
                      {"PID", ColumnType::kInt64, true},
                      {"title", ColumnType::kString, true},
                      {"booktitle", ColumnType::kString, true},
                      {"year", ColumnType::kInt64, true}};
    parent.id_column = 0;
    parent.pid_column = 1;
    TableSchema child;
    child.name = "inproc_author";
    child.columns = {{"ID", ColumnType::kInt64, false},
                     {"PID", ColumnType::kInt64, true},
                     {"author", ColumnType::kString, true}};
    child.id_column = 0;
    child.pid_column = 1;
    auto p = db_.CreateTable(parent);
    ASSERT_TRUE(p.ok());
    auto c = db_.CreateTable(child);
    ASSERT_TRUE(c.ok());
    int64_t next_child_id = 1000000;
    for (int i = 0; i < kPubs; ++i) {
      (*p)->AppendRow({Value::Int(i), Value::Null(),
                       Value::Str("title_" + std::to_string(i)),
                       Value::Str("conf_" + std::to_string(i % kConfs)),
                       Value::Int(1980 + i % 23)});
      for (int a = 0; a < 3; ++a) {
        (*c)->AppendRow({Value::Int(next_child_id++), Value::Int(i),
                         Value::Str("author_" + std::to_string((i + a) % 97))});
      }
    }
  }

  Result<std::vector<Row>> RunSql(const std::string& sql,
                                  ExecMetrics* metrics,
                                  PlannedQuery* planned_out = nullptr) {
    auto parsed = ParseSql(sql);
    if (!parsed.ok()) return parsed.status();
    CatalogDesc catalog = db_.BuildCatalogDesc();
    auto bound = BindQuery(*parsed, catalog);
    if (!bound.ok()) return bound.status();
    auto planned = PlanQuery(*bound, catalog);
    if (!planned.ok()) return planned.status();
    Executor executor(db_);
    auto rows = executor.Run(*planned->root, metrics);
    if (planned_out != nullptr) *planned_out = std::move(*planned);
    return rows;
  }

  Database db_;
};

TEST_F(EngineTest, HeapScanWithFilter) {
  ExecMetrics m;
  auto rows = RunSql("SELECT title FROM inproc WHERE year = 1990", &m);
  ASSERT_TRUE(rows.ok()) << rows.status();
  EXPECT_EQ(rows->size(), static_cast<size_t>(
                              CountWhere([](int i) { return i % 23 == 10; })));
  EXPECT_GT(m.work, 0);
  EXPECT_GT(m.pages_sequential, 0);
}

TEST_F(EngineTest, IndexSeekMatchesHeapScanResults) {
  ExecMetrics m_scan;
  auto scan_rows =
      RunSql("SELECT title FROM inproc WHERE booktitle = 'conf_7'", &m_scan);
  ASSERT_TRUE(scan_rows.ok());

  IndexDef idx;
  idx.name = "idx_booktitle";
  idx.table = "inproc";
  idx.key_columns = {3};
  ASSERT_TRUE(db_.CreateIndex(idx).ok());

  ExecMetrics m_idx;
  PlannedQuery planned;
  auto idx_rows = RunSql("SELECT title FROM inproc WHERE booktitle = 'conf_7'",
                         &m_idx, &planned);
  ASSERT_TRUE(idx_rows.ok());

  std::vector<Row> lhs = *scan_rows;
  std::vector<Row> rhs = *idx_rows;
  std::sort(lhs.begin(), lhs.end(), RowTotalLess);
  std::sort(rhs.begin(), rhs.end(), RowTotalLess);
  ASSERT_EQ(lhs.size(), rhs.size());
  EXPECT_TRUE(std::equal(
      lhs.begin(), lhs.end(), rhs.begin(),
      [](const Row& a, const Row& b) { return RowTotalEquals()(a, b); }));
  // The index plan should be chosen and be cheaper.
  EXPECT_TRUE(planned.objects_used.count("idx_booktitle") > 0);
  EXPECT_LT(m_idx.work, m_scan.work);
}

TEST_F(EngineTest, CoveringIndexAvoidsBaseTable) {
  IndexDef idx;
  idx.name = "idx_cover";
  idx.table = "inproc";
  idx.key_columns = {3};
  idx.included_columns = {2, 4};  // title, year
  ASSERT_TRUE(db_.CreateIndex(idx).ok());
  ExecMetrics m;
  PlannedQuery planned;
  auto rows = RunSql(
      "SELECT title, year FROM inproc WHERE booktitle = 'conf_3'", &m,
      &planned);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), static_cast<size_t>(kPubs / kConfs));
  // Covering: the base table is not among the used objects.
  EXPECT_EQ(planned.objects_used.count("inproc"), 0u);
  EXPECT_EQ(planned.objects_used.count("idx_cover"), 1u);
}

TEST_F(EngineTest, RangePredicateUsesIndex) {
  // Covering, so the range probe reads only the index slice; a
  // non-covering index at ~9 % selectivity would rightly lose to a scan.
  IndexDef idx;
  idx.name = "idx_year";
  idx.table = "inproc";
  idx.key_columns = {4};
  idx.included_columns = {2};
  ASSERT_TRUE(db_.CreateIndex(idx).ok());
  ExecMetrics m;
  PlannedQuery planned;
  auto rows =
      RunSql("SELECT title FROM inproc WHERE year >= 2001", &m, &planned);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(),
            static_cast<size_t>(
                CountWhere([](int i) { return 1980 + i % 23 >= 2001; })));
  EXPECT_EQ(planned.objects_used.count("idx_year"), 1u);
}

TEST_F(EngineTest, CompositeSeekPlusRange) {
  IndexDef idx;
  idx.name = "idx_conf_year";
  idx.table = "inproc";
  idx.key_columns = {3, 4};
  idx.included_columns = {2};
  ASSERT_TRUE(db_.CreateIndex(idx).ok());
  ExecMetrics m;
  auto rows = RunSql(
      "SELECT title FROM inproc WHERE booktitle = 'conf_0' AND year >= 2000",
      &m);
  ASSERT_TRUE(rows.ok());
  int expected = CountWhere(
      [](int i) { return i % kConfs == 0 && 1980 + i % 23 >= 2000; });
  ASSERT_GT(expected, 0);
  EXPECT_EQ(rows->size(), static_cast<size_t>(expected));
}

TEST_F(EngineTest, JoinCorrectAndSwitchesToInlWithIndex) {
  const char* sql =
      "SELECT I.ID, A.author FROM inproc I, inproc_author A "
      "WHERE I.ID = A.PID AND I.booktitle = 'conf_11'";
  ExecMetrics m_hash;
  PlannedQuery hash_planned;
  auto hash_rows = RunSql(sql, &m_hash, &hash_planned);
  ASSERT_TRUE(hash_rows.ok());
  EXPECT_EQ(hash_rows->size(), static_cast<size_t>(kPubs / kConfs * 3));

  IndexDef idx;
  idx.name = "idx_author_pid";
  idx.table = "inproc_author";
  idx.key_columns = {1};
  idx.included_columns = {2};
  ASSERT_TRUE(db_.CreateIndex(idx).ok());

  ExecMetrics m_inl;
  PlannedQuery inl_planned;
  auto inl_rows = RunSql(sql, &m_inl, &inl_planned);
  ASSERT_TRUE(inl_rows.ok());
  EXPECT_EQ(inl_rows->size(), hash_rows->size());
  EXPECT_EQ(inl_planned.objects_used.count("idx_author_pid"), 1u);
  // With a selective outer, index nested loops beats hashing the child.
  EXPECT_LT(m_inl.work, m_hash.work);
}

TEST_F(EngineTest, SortedOuterUnionShape) {
  ExecMetrics m;
  auto rows = RunSql(
      "SELECT I.ID, title, NULL FROM inproc I "
      "WHERE booktitle = 'conf_2' "
      "UNION ALL "
      "SELECT I.ID, NULL, A.author FROM inproc I, inproc_author A "
      "WHERE booktitle = 'conf_2' AND I.ID = A.PID ORDER BY 1",
      &m);
  ASSERT_TRUE(rows.ok()) << rows.status();
  size_t parents = static_cast<size_t>(kPubs / kConfs);
  EXPECT_EQ(rows->size(), parents * 4);  // 1 parent row + 3 author rows each
  // Sorted by ID.
  for (size_t i = 1; i < rows->size(); ++i) {
    EXPECT_FALSE((*rows)[i][0].TotalLess((*rows)[i - 1][0]));
  }
}

TEST_F(EngineTest, MaterializedViewAnswersBlock) {
  ViewDef view;
  view.name = "v_conf5";
  view.base_table = "inproc";
  view.preds = {{"inproc", "booktitle", "=", Value::Str("conf_5")}};
  view.projected = {{"inproc", "ID"}, {"inproc", "title"},
                    {"inproc", "year"}};
  ASSERT_TRUE(db_.CreateMaterializedView(view).ok());
  ExecMetrics m;
  PlannedQuery planned;
  auto rows = RunSql(
      "SELECT ID, title FROM inproc WHERE booktitle = 'conf_5'", &m,
      &planned);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), static_cast<size_t>(kPubs / kConfs));
  EXPECT_EQ(planned.objects_used.count("v_conf5"), 1u);
  EXPECT_EQ(planned.objects_used.count("inproc"), 0u);
}

TEST_F(EngineTest, ViewNotMatchedWhenPredicatesDiffer) {
  ViewDef view;
  view.name = "v_conf5";
  view.base_table = "inproc";
  view.preds = {{"inproc", "booktitle", "=", Value::Str("conf_5")}};
  view.projected = {{"inproc", "ID"}, {"inproc", "title"}};
  ASSERT_TRUE(db_.CreateMaterializedView(view).ok());
  ExecMetrics m;
  PlannedQuery planned;
  auto rows = RunSql(
      "SELECT ID, title FROM inproc WHERE booktitle = 'conf_6'", &m,
      &planned);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(planned.objects_used.count("v_conf5"), 0u);
  EXPECT_EQ(rows->size(), static_cast<size_t>(kPubs / kConfs));
}

TEST_F(EngineTest, JoinViewAnswersJoinBlock) {
  ViewDef view;
  view.name = "v_join9";
  view.base_table = "inproc";
  view.join_child = "inproc_author";
  view.preds = {{"inproc", "booktitle", "=", Value::Str("conf_9")}};
  view.projected = {{"inproc", "ID"}, {"inproc_author", "author"}};
  ASSERT_TRUE(db_.CreateMaterializedView(view).ok());
  ExecMetrics m;
  PlannedQuery planned;
  auto rows = RunSql(
      "SELECT I.ID, A.author FROM inproc I, inproc_author A "
      "WHERE I.ID = A.PID AND I.booktitle = 'conf_9'",
      &m, &planned);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(planned.objects_used.count("v_join9"), 1u);
  EXPECT_EQ(rows->size(), static_cast<size_t>(kPubs / kConfs * 3));
}

TEST_F(EngineTest, EstimatedCostTracksMeasuredWorkDirection) {
  // Adding a selective index must reduce both estimate and measurement.
  auto parsed = ParseSql("SELECT title FROM inproc WHERE booktitle = 'conf_4'");
  ASSERT_TRUE(parsed.ok());
  CatalogDesc before = db_.BuildCatalogDesc();
  auto bound_before = BindQuery(*parsed, before);
  ASSERT_TRUE(bound_before.ok());
  auto plan_before = PlanQuery(*bound_before, before);
  ASSERT_TRUE(plan_before.ok());

  IndexDef idx;
  idx.name = "idx_bt";
  idx.table = "inproc";
  idx.key_columns = {3};
  idx.included_columns = {2};
  ASSERT_TRUE(db_.CreateIndex(idx).ok());
  CatalogDesc after = db_.BuildCatalogDesc();
  auto bound_after = BindQuery(*parsed, after);
  ASSERT_TRUE(bound_after.ok());
  auto plan_after = PlanQuery(*bound_after, after);
  ASSERT_TRUE(plan_after.ok());
  EXPECT_LT(plan_after->est_cost, plan_before->est_cost);

  Executor executor(db_);
  ExecMetrics m_before, m_after;
  auto r1 = executor.Run(*plan_before->root, &m_before);
  auto r2 = executor.Run(*plan_after->root, &m_after);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r1->size(), r2->size());
  EXPECT_LT(m_after.work, m_before.work);
}

TEST_F(EngineTest, PlanToStringRendersTree) {
  ExecMetrics m;
  PlannedQuery planned;
  auto rows = RunSql(
      "SELECT I.ID, A.author FROM inproc I, inproc_author A "
      "WHERE I.ID = A.PID AND I.year = 1999",
      &m, &planned);
  ASSERT_TRUE(rows.ok());
  std::string text = planned.root->ToString();
  EXPECT_NE(text.find("Project"), std::string::npos);
  EXPECT_NE(text.find("Join"), std::string::npos);
}

TEST_F(EngineTest, IsNotNullFilter) {
  ExecMetrics m;
  auto rows =
      RunSql("SELECT title FROM inproc WHERE title IS NOT NULL", &m);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), static_cast<size_t>(kPubs));
}

}  // namespace
}  // namespace xmlshred
