// Tests for the DTD front-end (the paper's "transform DTD to XSD" path).

#include <gtest/gtest.h>

#include "mapping/mapping.h"
#include "mapping/shredder.h"
#include "rel/catalog.h"
#include "xml/dtd_parser.h"
#include "xml/xsd_parser.h"

namespace xmlshred {
namespace {

constexpr const char* kDblpDtd = R"(
<!-- a fragment of the real DBLP DTD -->
<!ELEMENT dblp (inproceedings*, book*)>
<!ELEMENT inproceedings (title, booktitle, year, author*, pages, ee?)>
<!ELEMENT book (title, publisher, year, author*)>
<!ELEMENT title (#PCDATA)>
<!ELEMENT booktitle (#PCDATA)>
<!ELEMENT year (#PCDATA)>
<!ELEMENT author (#PCDATA)>
<!ELEMENT pages (#PCDATA)>
<!ELEMENT publisher (#PCDATA)>
<!ELEMENT ee (#PCDATA)>
<!ATTLIST inproceedings key CDATA #REQUIRED>
)";

TEST(DtdParserTest, ParsesDblpFragment) {
  auto tree = ParseDtd(kDblpDtd);
  ASSERT_TRUE(tree.ok()) << tree.status();
  AssignDefaultAnnotations(tree->get());
  EXPECT_TRUE((*tree)->Validate().ok()) << (*tree)->Validate();
  SchemaNode* inproc = (*tree)->FindTagByName("inproceedings");
  ASSERT_NE(inproc, nullptr);
  EXPECT_EQ(inproc->parent()->kind(), SchemaNodeKind::kRepetition);
  // author and title are referenced by both inproceedings and book ->
  // shared types.
  auto authors = (*tree)->FindTagsByName("author");
  ASSERT_EQ(authors.size(), 2u);
  EXPECT_EQ(authors[0]->type_name(), "author");
  EXPECT_EQ(authors[0]->type_name(), authors[1]->type_name());
  // ee? is optional.
  SchemaNode* ee = (*tree)->FindTagByName("ee");
  ASSERT_NE(ee, nullptr);
  EXPECT_EQ(ee->parent()->kind(), SchemaNodeKind::kOption);
}

TEST(DtdParserTest, ChoiceGroups) {
  constexpr const char* dtd = R"(
<!ELEMENT movie (title, (box_office | seasons))>
<!ELEMENT title (#PCDATA)>
<!ELEMENT box_office (#PCDATA)>
<!ELEMENT seasons (#PCDATA)>
)";
  auto tree = ParseDtd(dtd);
  ASSERT_TRUE(tree.ok()) << tree.status();
  SchemaNode* box = (*tree)->FindTagByName("box_office");
  ASSERT_NE(box, nullptr);
  EXPECT_EQ(box->parent()->kind(), SchemaNodeKind::kChoice);
  EXPECT_EQ(box->parent()->num_children(), 2u);
}

TEST(DtdParserTest, PlusBecomesRepetition) {
  constexpr const char* dtd = R"(
<!ELEMENT list (item+)>
<!ELEMENT item (#PCDATA)>
)";
  auto tree = ParseDtd(dtd);
  ASSERT_TRUE(tree.ok()) << tree.status();
  SchemaNode* item = (*tree)->FindTagByName("item");
  ASSERT_NE(item, nullptr);
  EXPECT_EQ(item->parent()->kind(), SchemaNodeKind::kRepetition);
}

TEST(DtdParserTest, ExplicitRootSelection) {
  constexpr const char* dtd = R"(
<!ELEMENT a (#PCDATA)>
<!ELEMENT b (a*)>
)";
  ParseOptions options;
  options.root_element = "b";
  auto tree = ParseDtd(dtd, options);
  ASSERT_TRUE(tree.ok()) << tree.status();
  EXPECT_EQ((*tree)->root()->name(), "b");
  ParseOptions missing;
  missing.root_element = "zzz";
  EXPECT_FALSE(ParseDtd(dtd, missing).ok());
}

TEST(DtdParserTest, RejectsRecursionAndBadInput) {
  EXPECT_FALSE(ParseDtd("<!ELEMENT a (a*)>").ok());
  EXPECT_FALSE(ParseDtd("").ok());
  EXPECT_FALSE(ParseDtd("<!ELEMENT a (b,|c)>").ok());
  EXPECT_FALSE(ParseDtd("<!ELEMENT a ANY>").ok());
  EXPECT_FALSE(ParseDtd("<!ELEMENT a (#PCDATA | b)>").ok());
}

TEST(DtdParserTest, DtdTreeShredsDocuments) {
  auto tree = ParseDtd(kDblpDtd);
  ASSERT_TRUE(tree.ok());
  AssignDefaultAnnotations(tree->get());
  auto doc = ParseXml(R"(
<dblp>
  <inproceedings>
    <title>Paper</title><booktitle>SIGMOD</booktitle><year>2000</year>
    <author>A</author><author>B</author><pages>1-10</pages>
    <ee>http://x</ee>
  </inproceedings>
  <book>
    <title>Book</title><publisher>P</publisher><year>1999</year>
    <author>C</author>
  </book>
</dblp>)");
  ASSERT_TRUE(doc.ok()) << doc.status();
  auto mapping = Mapping::Build(**tree);
  ASSERT_TRUE(mapping.ok()) << mapping.status();
  Database db;
  auto stats = ShredDocument(*doc, **tree, *mapping, &db);
  ASSERT_TRUE(stats.ok()) << stats.status();
  const Table* inproc = db.FindTable("inproceedings");
  ASSERT_NE(inproc, nullptr);
  EXPECT_EQ(inproc->row_count(), 1);
  const Table* author = db.FindTable("author");
  ASSERT_NE(author, nullptr);
  EXPECT_EQ(author->row_count(), 2);  // inproceedings' authors
}

}  // namespace
}  // namespace xmlshred
