// Tests for the conjunctive-predicate XPath extension
// (//ctx[a op v and b op w]/...), the paper's "more general XML queries"
// future-work direction.

#include <gtest/gtest.h>

#include "exec/executor.h"
#include "mapping/shredder.h"
#include "mapping/transforms.h"
#include "opt/planner.h"
#include "sql/binder.h"
#include "workload/movie.h"
#include "xpath/translator.h"

namespace xmlshred {
namespace {

TEST(ConjunctiveParseTest, TwoAndThreePredicates) {
  auto q = ParseXPath(
      "//movie[year >= 1990 and avg_rating >= 8]/(title)");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_EQ(q->selection_path, "year");
  ASSERT_EQ(q->extra_selections.size(), 1u);
  EXPECT_EQ(q->extra_selections[0].path, "avg_rating");
  EXPECT_EQ(q->extra_selections[0].op, ">=");
  EXPECT_EQ(q->SelectionPaths(),
            (std::vector<std::string>{"year", "avg_rating"}));

  auto q3 = ParseXPath(
      "//movie[year >= 1990 and avg_rating >= 8 and votes >= 100]/(title)");
  ASSERT_TRUE(q3.ok()) << q3.status();
  EXPECT_EQ(q3->extra_selections.size(), 2u);
}

TEST(ConjunctiveParseTest, RoundTripAndErrors) {
  auto q = ParseXPath("//movie[year >= 1990 and votes = 5]/(title)");
  ASSERT_TRUE(q.ok());
  auto again = ParseXPath(q->ToString());
  ASSERT_TRUE(again.ok()) << q->ToString();
  EXPECT_EQ(again->ToString(), q->ToString());
  EXPECT_FALSE(ParseXPath("//movie[year >= 1990 and]/(title)").ok());
  EXPECT_FALSE(ParseXPath("//movie[and year = 1]/(title)").ok());
  // 'android' must not lex as 'and' + 'roid'.
  auto named = ParseXPath("//movie[android = 1]/(title)");
  ASSERT_TRUE(named.ok());
  EXPECT_EQ(named->selection_path, "android");
}

class ConjunctiveExecTest : public ::testing::Test {
 protected:
  void SetUp() override {
    MovieConfig config;
    config.num_movies = 2000;
    data_ = GenerateMovie(config);
  }

  Result<std::vector<std::string>> Run(const SchemaTree& tree,
                                       const std::string& xpath) {
    auto mapping = Mapping::Build(tree);
    if (!mapping.ok()) return mapping.status();
    Database db;
    auto shred = ShredDocument(data_.doc, tree, *mapping, &db);
    if (!shred.ok()) return shred.status();
    auto query = ParseXPath(xpath);
    if (!query.ok()) return query.status();
    auto translated = TranslateXPath(*query, tree, *mapping);
    if (!translated.ok()) return translated.status();
    CatalogDesc catalog = db.BuildCatalogDesc();
    auto bound = BindQuery(translated->sql, catalog);
    if (!bound.ok()) return bound.status();
    auto planned = PlanQuery(*bound, catalog);
    if (!planned.ok()) return planned.status();
    Executor executor(db);
    ExecMetrics metrics;
    auto rows = executor.Run(*planned->root, &metrics);
    if (!rows.ok()) return rows.status();
    return CanonicalizeResult(*translated, *rows);
  }

  GeneratedData data_;
};

TEST_F(ConjunctiveExecTest, MatchesManualIntersection) {
  const char* conjunctive =
      "//movie[year >= 2000 and avg_rating >= 5]/(title)";
  auto result = Run(*data_.tree, conjunctive);
  ASSERT_TRUE(result.ok()) << result.status();

  // Manually compute from the document.
  std::set<std::string> expected_titles;
  for (const auto& movie : data_.doc.root()->children()) {
    const XmlElement* year = movie->FindChild("year");
    const XmlElement* rating = movie->FindChild("avg_rating");
    if (year != nullptr && std::atoi(year->text().c_str()) >= 2000 &&
        rating != nullptr && std::atof(rating->text().c_str()) >= 5.0) {
      expected_titles.insert(movie->FindChild("title")->text());
    }
  }
  ASSERT_FALSE(expected_titles.empty());
  std::set<std::string> got;
  for (const std::string& triple : *result) {
    size_t a = triple.find("|title|'");
    if (a != std::string::npos) {
      got.insert(triple.substr(a + 8, triple.size() - a - 9));
    }
  }
  EXPECT_EQ(got, expected_titles);
}

TEST_F(ConjunctiveExecTest, InvariantUnderTransformations) {
  const char* query =
      "//movie[year >= 1998 and avg_rating >= 7]/(title | aka_title)";
  auto baseline = Run(*data_.tree, query);
  ASSERT_TRUE(baseline.ok()) << baseline.status();

  // Under repetition split.
  auto split_tree = data_.tree->Clone();
  Transform split;
  split.kind = TransformKind::kRepetitionSplit;
  split.target = split_tree->FindTagByName("aka_title")->parent()->id();
  split.split_count = 4;
  ASSERT_TRUE(ApplyTransform(split_tree.get(), split).ok());
  auto split_result = Run(*split_tree, query);
  ASSERT_TRUE(split_result.ok()) << split_result.status();
  EXPECT_EQ(*split_result, *baseline);

  // Under implicit union distribution on avg_rating (the selection on
  // avg_rating eliminates the no-rating partition).
  auto dist_tree = data_.tree->Clone();
  SchemaNode* option = dist_tree->FindTagByName("avg_rating")->parent();
  Transform dist;
  dist.kind = TransformKind::kUnionDistribute;
  dist.target = option->id();
  dist.option_targets = {option->id()};
  ASSERT_TRUE(ApplyTransform(dist_tree.get(), dist).ok());
  auto dist_result = Run(*dist_tree, query);
  ASSERT_TRUE(dist_result.ok()) << dist_result.status();
  EXPECT_EQ(*dist_result, *baseline);
}

TEST_F(ConjunctiveExecTest, OutlinedConjunctArmJoins) {
  // Outline `year`: the first conjunct then needs a child-relation join
  // while the second stays inline.
  auto tree = data_.tree->Clone();
  FullyInline(tree.get());
  auto baseline = Run(*tree, "//movie[year >= 2000 and votes >= 500000]/(title)");
  ASSERT_TRUE(baseline.ok());
  Transform outline;
  outline.kind = TransformKind::kOutline;
  outline.target = tree->FindTagByName("year")->id();
  ASSERT_TRUE(ApplyTransform(tree.get(), outline).ok());
  auto outlined = Run(*tree, "//movie[year >= 2000 and votes >= 500000]/(title)");
  ASSERT_TRUE(outlined.ok()) << outlined.status();
  EXPECT_EQ(*outlined, *baseline);
}

}  // namespace
}  // namespace xmlshred
