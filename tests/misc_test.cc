// Small-surface tests: transform metadata, XSD serialization of the
// bundled schemas, and catalog error paths.

#include <gtest/gtest.h>

#include "mapping/mapping.h"
#include "mapping/transforms.h"
#include "rel/catalog.h"
#include "workload/dblp.h"
#include "workload/movie.h"
#include "xml/xsd_parser.h"

namespace xmlshred {
namespace {

TEST(TransformMetaTest, MergeTypeClassification) {
  Transform t;
  t.kind = TransformKind::kInline;
  EXPECT_TRUE(t.IsMergeType());
  t.kind = TransformKind::kTypeMerge;
  EXPECT_TRUE(t.IsMergeType());
  t.kind = TransformKind::kUnionFactorize;
  EXPECT_TRUE(t.IsMergeType());
  t.kind = TransformKind::kRepetitionMerge;
  EXPECT_TRUE(t.IsMergeType());
  t.kind = TransformKind::kOutline;
  EXPECT_FALSE(t.IsMergeType());
  t.kind = TransformKind::kUnionDistribute;
  EXPECT_FALSE(t.IsMergeType());
  t.kind = TransformKind::kRepetitionSplit;
  EXPECT_FALSE(t.IsMergeType());
  t.kind = TransformKind::kTypeSplit;
  EXPECT_FALSE(t.IsMergeType());
}

TEST(TransformMetaTest, ToStringMentionsTargetsAndParams) {
  Transform t;
  t.kind = TransformKind::kRepetitionSplit;
  t.target = 42;
  t.split_count = 5;
  std::string s = t.ToString();
  EXPECT_NE(s.find("repetition-split"), std::string::npos);
  EXPECT_NE(s.find("42"), std::string::npos);
  EXPECT_NE(s.find("k=5"), std::string::npos);
  Transform u;
  u.kind = TransformKind::kUnionDistribute;
  u.target = 7;
  u.option_targets = {7, 9};
  s = u.ToString();
  EXPECT_NE(s.find("opts=7+9"), std::string::npos);
}

TEST(XsdSerializationTest, BundledSchemasRoundTrip) {
  for (int which = 0; which < 2; ++which) {
    std::unique_ptr<SchemaTree> tree =
        which == 0 ? BuildDblpSchemaTree() : BuildMovieSchemaTree();
    std::string xsd = SchemaTreeToXsd(*tree);
    auto reparsed = ParseXsd(xsd);
    ASSERT_TRUE(reparsed.ok()) << reparsed.status() << "\n" << xsd;
    // Re-serialization is a fixpoint.
    EXPECT_EQ(SchemaTreeToXsd(**reparsed), xsd);
    EXPECT_TRUE((*reparsed)->Validate().ok());
  }
}

TEST(XsdSerializationTest, AnnotationsSurviveRoundTrip) {
  auto tree = BuildMovieSchemaTree();
  auto reparsed = ParseXsd(SchemaTreeToXsd(*tree));
  ASSERT_TRUE(reparsed.ok());
  SchemaNode* aka = (*reparsed)->FindTagByName("aka_title");
  ASSERT_NE(aka, nullptr);
  EXPECT_EQ(aka->annotation(), "aka_title");
}

TEST(CatalogErrorTest, DuplicateViewAndIndexNames) {
  Database db;
  TableSchema schema;
  schema.name = "t";
  schema.columns = {{"ID", ColumnType::kInt64, false},
                    {"PID", ColumnType::kInt64, true},
                    {"x", ColumnType::kInt64, true}};
  schema.id_column = 0;
  schema.pid_column = 1;
  ASSERT_TRUE(db.CreateTable(schema).ok());
  ViewDef view;
  view.name = "v";
  view.base_table = "t";
  view.projected = {{"t", "x"}};
  ASSERT_TRUE(db.CreateMaterializedView(view).ok());
  EXPECT_EQ(db.CreateMaterializedView(view).code(),
            StatusCode::kAlreadyExists);
  // A view name also blocks a same-named table.
  TableSchema clash = schema;
  clash.name = "v";
  EXPECT_FALSE(db.CreateTable(clash).ok());
  IndexDef idx;
  idx.name = "i";
  idx.table = "t";
  idx.key_columns = {2};
  ASSERT_TRUE(db.CreateIndex(idx).ok());
  EXPECT_EQ(db.CreateIndex(idx).code(), StatusCode::kAlreadyExists);
}

TEST(ViewDefTest, FindOutputColumn) {
  ViewDef def;
  def.base_table = "a";
  def.join_child = "b";
  def.projected = {{"a", "x"}, {"b", "y"}};
  EXPECT_EQ(def.FindOutputColumn("a", "x"), 0);
  EXPECT_EQ(def.FindOutputColumn("b", "y"), 1);
  EXPECT_EQ(def.FindOutputColumn("a", "y"), -1);
  EXPECT_NE(def.ToString().find("JOIN b"), std::string::npos);
}

TEST(MappingMetaTest, ToStringListsEveryRelation) {
  auto tree = BuildDblpSchemaTree();
  auto mapping = Mapping::Build(*tree);
  ASSERT_TRUE(mapping.ok());
  std::string text = mapping->ToString();
  for (const MappedRelation& rel : mapping->relations()) {
    EXPECT_NE(text.find(rel.table_name + "("), std::string::npos)
        << rel.table_name;
  }
}

}  // namespace
}  // namespace xmlshred
