// Tests for data and workload generators: determinism, distributional
// facts the paper relies on, and workload class parameters.

#include <gtest/gtest.h>

#include <set>

#include "mapping/xml_stats.h"
#include "workload/dblp.h"
#include "workload/movie.h"
#include "workload/query_gen.h"

namespace xmlshred {
namespace {

TEST(DblpGeneratorTest, Deterministic) {
  DblpConfig config;
  config.num_inproceedings = 500;
  config.num_books = 50;
  GeneratedData a = GenerateDblp(config);
  GeneratedData b = GenerateDblp(config);
  EXPECT_EQ(a.doc.ToXml(), b.doc.ToXml());
  config.seed = 43;
  GeneratedData c = GenerateDblp(config);
  EXPECT_NE(a.doc.ToXml(), c.doc.ToXml());
}

TEST(DblpGeneratorTest, AuthorCardinalitySkew) {
  DblpConfig config;
  config.num_inproceedings = 5000;
  config.num_books = 0;
  GeneratedData data = GenerateDblp(config);
  int64_t low = 0, total = 0, max_authors = 0;
  for (const auto& pub : data.doc.root()->children()) {
    int64_t n = static_cast<int64_t>(pub->FindChildren("author").size());
    ++total;
    if (n <= 5) ++low;
    max_authors = std::max(max_authors, n);
  }
  // Section 4.6: 99 % of publications have <= 5 authors, max 20.
  EXPECT_NEAR(static_cast<double>(low) / static_cast<double>(total), 0.99,
              0.01);
  EXPECT_LE(max_authors, 20);
  EXPECT_GT(max_authors, 5);
}

TEST(DblpGeneratorTest, SchemaValidatesAndShreds) {
  GeneratedData data = GenerateDblp([] {
    DblpConfig c;
    c.num_inproceedings = 200;
    c.num_books = 20;
    return c;
  }());
  EXPECT_TRUE(data.tree->Validate().ok());
  auto stats = XmlStatistics::Collect(data.doc, *data.tree);
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_GT(stats->total_elements(), 200 * 5);
}

TEST(MovieGeneratorTest, ChoiceFractionAndPresence) {
  MovieConfig config;
  config.num_movies = 5000;
  GeneratedData data = GenerateMovie(config);
  int64_t tv = 0, rated = 0, aka_low = 0;
  for (const auto& movie : data.doc.root()->children()) {
    if (movie->FindChild("seasons") != nullptr) ++tv;
    EXPECT_EQ(movie->FindChild("seasons") != nullptr,
              movie->FindChild("box_office") == nullptr);
    if (movie->FindChild("avg_rating") != nullptr) ++rated;
    if (movie->FindChildren("aka_title").size() <= 5) ++aka_low;
  }
  EXPECT_NEAR(tv / 5000.0, 0.3, 0.03);
  EXPECT_NEAR(rated / 5000.0, 0.6, 0.03);
  // The §4.5 candidate rule needs >= 80 % below cmax; we generate ~95 %
  // at <= 5.
  EXPECT_GT(aka_low / 5000.0, 0.9);
}

class QueryGenTest : public ::testing::Test {
 protected:
  void SetUp() override {
    MovieConfig config;
    config.num_movies = 3000;
    data_ = GenerateMovie(config);
    auto stats = XmlStatistics::Collect(data_.doc, *data_.tree);
    ASSERT_TRUE(stats.ok());
    stats_ = std::make_unique<XmlStatistics>(std::move(*stats));
  }

  GeneratedData data_;
  std::unique_ptr<XmlStatistics> stats_;
};

TEST_F(QueryGenTest, DeterministicInSeed) {
  WorkloadSpec spec;
  spec.num_queries = 10;
  spec.seed = 5;
  auto a = GenerateWorkload(*data_.tree, *stats_, spec);
  auto b = GenerateWorkload(*data_.tree, *stats_, spec);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->size(), b->size());
  for (size_t i = 0; i < a->size(); ++i) {
    EXPECT_EQ((*a)[i].ToString(), (*b)[i].ToString());
  }
  spec.seed = 6;
  auto c = GenerateWorkload(*data_.tree, *stats_, spec);
  ASSERT_TRUE(c.ok());
  bool any_diff = false;
  for (size_t i = 0; i < a->size(); ++i) {
    if ((*a)[i].ToString() != (*c)[i].ToString()) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST_F(QueryGenTest, ProjectionClassBounds) {
  WorkloadSpec spec;
  spec.num_queries = 20;
  spec.projections = ProjectionClass::kLow;
  auto low = GenerateWorkload(*data_.tree, *stats_, spec);
  ASSERT_TRUE(low.ok());
  for (const XPathQuery& q : *low) {
    EXPECT_GE(q.projections.size(), 1u);
    EXPECT_LE(q.projections.size(), 4u);
    // No duplicate projections.
    std::set<std::string> names(q.projections.begin(), q.projections.end());
    EXPECT_EQ(names.size(), q.projections.size());
  }
  spec.projections = ProjectionClass::kHigh;
  auto high = GenerateWorkload(*data_.tree, *stats_, spec);
  ASSERT_TRUE(high.ok());
  for (const XPathQuery& q : *high) {
    EXPECT_GE(q.projections.size(), 5u);
  }
}

TEST_F(QueryGenTest, SelectivityClassesDiffer) {
  WorkloadSpec low_spec;
  low_spec.num_queries = 15;
  low_spec.selectivity = SelectivityClass::kLow;
  WorkloadSpec high_spec = low_spec;
  high_spec.selectivity = SelectivityClass::kHigh;
  auto low = GenerateWorkload(*data_.tree, *stats_, low_spec);
  auto high = GenerateWorkload(*data_.tree, *stats_, high_spec);
  ASSERT_TRUE(low.ok());
  ASSERT_TRUE(high.ok());
  // Every LS query has a selection; HS queries may omit it.
  for (const XPathQuery& q : *low) EXPECT_TRUE(q.has_selection);
  int without = 0;
  for (const XPathQuery& q : *high) {
    if (!q.has_selection) ++without;
  }
  EXPECT_GT(without, 0);
}

TEST_F(QueryGenTest, WorkloadNames) {
  WorkloadSpec spec;
  spec.num_queries = 20;
  spec.projections = ProjectionClass::kHigh;
  spec.selectivity = SelectivityClass::kLow;
  EXPECT_EQ(WorkloadName(spec), "HP-LS-20");
  spec.projections = ProjectionClass::kLow;
  spec.selectivity = SelectivityClass::kHigh;
  spec.num_queries = 10;
  EXPECT_EQ(WorkloadName(spec), "LP-HS-10");
}

TEST_F(QueryGenTest, QueriesParseBack) {
  WorkloadSpec spec;
  spec.num_queries = 10;
  auto workload = GenerateWorkload(*data_.tree, *stats_, spec);
  ASSERT_TRUE(workload.ok());
  for (const XPathQuery& q : *workload) {
    auto reparsed = ParseXPath(q.ToString());
    ASSERT_TRUE(reparsed.ok()) << q.ToString();
    EXPECT_EQ(reparsed->ToString(), q.ToString());
  }
}

}  // namespace
}  // namespace xmlshred
