// Property-based (parameterized) tests for the paper's core claims:
//
//  * Theorem 1: any sequence of subsumed transformations (outline/inline)
//    yields relations that are a vertical partitioning of the fully
//    inlined schema T0's relations;
//  * result invariance: every transformation preserves query answers;
//  * statistics derivation tracks exact statistics across the whole
//    transformation space.

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/logging.h"
#include "common/rng.h"
#include "exec/executor.h"
#include "sql/parser.h"
#include "mapping/shredder.h"
#include "mapping/transforms.h"
#include "mapping/xml_stats.h"
#include "opt/planner.h"
#include "sql/binder.h"
#include "workload/dblp.h"
#include "workload/movie.h"
#include "xpath/translator.h"

namespace xmlshred {
namespace {

// ---------- Theorem 1 ----------

// Columns (excluding ID/PID) of every relation, keyed by table name.
std::map<std::string, std::set<std::string>> ColumnSets(
    const Mapping& mapping) {
  std::map<std::string, std::set<std::string>> out;
  for (const MappedRelation& rel : mapping.relations()) {
    std::set<std::string>& cols = out[rel.table_name];
    for (const MappedColumn& col : rel.columns) cols.insert(col.name);
  }
  return out;
}

class Theorem1Test : public ::testing::TestWithParam<uint64_t> {};

TEST_P(Theorem1Test, SubsumedTransformationsAreVerticalPartitionings) {
  // Apply a random sequence of outline/inline transformations, then check
  // that the resulting relations' columns partition the fully inlined
  // schema's columns: for each T0 relation, the union of the derived
  // relations' column sets equals its column set.
  auto tree = BuildDblpSchemaTree();
  FullyInline(tree.get());
  auto t0_mapping = Mapping::Build(*tree);
  ASSERT_TRUE(t0_mapping.ok());
  auto t0_columns = ColumnSets(*t0_mapping);

  Rng rng(GetParam());
  auto transformed = tree->Clone();
  for (int step = 0; step < 6; ++step) {
    std::vector<Transform> applicable;
    for (Transform& t : EnumerateTransforms(*transformed, 5)) {
      if (t.kind == TransformKind::kOutline ||
          t.kind == TransformKind::kInline) {
        applicable.push_back(std::move(t));
      }
    }
    if (applicable.empty()) break;
    const Transform& pick = applicable[static_cast<size_t>(
        rng.Uniform(0, static_cast<int64_t>(applicable.size()) - 1))];
    ASSERT_TRUE(ApplyTransform(transformed.get(), pick).ok())
        << pick.ToString();
  }
  auto mapping = Mapping::Build(*transformed);
  ASSERT_TRUE(mapping.ok()) << mapping.status();

  // Assign each transformed relation to the T0 relation its anchor (or
  // nearest annotated ancestor in T0 terms) belongs to, via the fully
  // inlined clone: re-inline and check the same columns come back.
  auto reinlined = transformed->Clone();
  FullyInline(reinlined.get());
  auto reinlined_mapping = Mapping::Build(*reinlined);
  ASSERT_TRUE(reinlined_mapping.ok());
  EXPECT_EQ(ColumnSets(*reinlined_mapping), t0_columns);

  // And the transformed relations' columns are a disjoint cover: every
  // column of T0 appears in exactly one transformed relation.
  std::map<std::string, int> column_occurrences;
  for (const auto& [table, cols] : ColumnSets(*mapping)) {
    for (const std::string& col : cols) ++column_occurrences[col];
  }
  for (const auto& [table, cols] : t0_columns) {
    for (const std::string& col : cols) {
      EXPECT_GE(column_occurrences[col], 1) << col;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomSequences, Theorem1Test,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// ---------- result invariance across the transformation space ----------

struct InvarianceCase {
  const char* name;
  bool movie;  // otherwise DBLP
  TransformKind kind;
  const char* element;  // tag the transform anchors on
  int split_count;
};

class InvarianceTest : public ::testing::TestWithParam<InvarianceCase> {
 protected:
  static GeneratedData MakeData(bool movie) {
    if (movie) {
      MovieConfig config;
      config.num_movies = 1200;
      return GenerateMovie(config);
    }
    DblpConfig config;
    config.num_inproceedings = 1200;
    config.num_books = 120;
    return GenerateDblp(config);
  }

  static Result<std::vector<std::string>> RunQuery(const GeneratedData& data,
                                                   const SchemaTree& tree,
                                                   const std::string& xpath) {
    auto mapping = Mapping::Build(tree);
    if (!mapping.ok()) return mapping.status();
    Database db;
    auto shred = ShredDocument(data.doc, tree, *mapping, &db);
    if (!shred.ok()) return shred.status();
    auto query = ParseXPath(xpath);
    if (!query.ok()) return query.status();
    auto translated = TranslateXPath(*query, tree, *mapping);
    if (!translated.ok()) return translated.status();
    CatalogDesc catalog = db.BuildCatalogDesc();
    auto bound = BindQuery(translated->sql, catalog);
    if (!bound.ok()) return bound.status();
    auto planned = PlanQuery(*bound, catalog);
    if (!planned.ok()) return planned.status();
    Executor executor(db);
    ExecMetrics metrics;
    auto rows = executor.Run(*planned->root, &metrics);
    if (!rows.ok()) return rows.status();
    return CanonicalizeResult(*translated, *rows);
  }
};

TEST_P(InvarianceTest, TransformPreservesAnswers) {
  const InvarianceCase& param = GetParam();
  GeneratedData data = MakeData(param.movie);
  std::vector<std::string> queries =
      param.movie
          ? std::vector<std::string>{
                "//movie[year >= 1995]/(title | avg_rating | votes)",
                "//movie[title = 'movie_title_9']/(aka_title | box_office | "
                "seasons)",
                "//movie/(director)"}
          : std::vector<std::string>{
                "//inproceedings[year >= 1999]/(title | author | ee | cite)",
                "//book/(title | author | isbn)",
                "//inproceedings[booktitle = 'conf_0']/(pages | editor)"};

  auto baseline_tree = data.tree->Clone();
  std::vector<std::vector<std::string>> baseline;
  for (const std::string& q : queries) {
    auto result = RunQuery(data, *baseline_tree, q);
    ASSERT_TRUE(result.ok()) << result.status() << " " << q;
    baseline.push_back(std::move(*result));
  }

  // Apply the parameterized transformation.
  auto tree = data.tree->Clone();
  SchemaNode* element = tree->FindTagByName(param.element);
  ASSERT_NE(element, nullptr);
  Transform transform;
  transform.kind = param.kind;
  switch (param.kind) {
    case TransformKind::kRepetitionSplit:
      transform.target = element->parent()->id();
      transform.split_count = param.split_count;
      break;
    case TransformKind::kUnionDistribute:
      if (element->parent()->kind() == SchemaNodeKind::kOption) {
        transform.target = element->parent()->id();
        transform.option_targets = {element->parent()->id()};
      } else {
        transform.target = element->parent()->id();
      }
      break;
    case TransformKind::kTypeMerge: {
      auto tags = tree->FindTagsByName(param.element);
      ASSERT_GE(tags.size(), 2u);
      transform.target = tags[0]->id();
      transform.target2 = tags[1]->id();
      break;
    }
    case TransformKind::kInline: {
      // Pick the *annotated* occurrence of the element (e.g. book's
      // title1, not inproc's inlined title).
      SchemaNode* annotated = nullptr;
      for (SchemaNode* tag : tree->FindTagsByName(param.element)) {
        if (tag->is_annotated()) annotated = tag;
      }
      ASSERT_NE(annotated, nullptr);
      transform.target = annotated->id();
      break;
    }
    case TransformKind::kOutline:
      transform.target = element->id();
      break;
    default:
      FAIL() << "unsupported case";
  }
  auto applied = ApplyTransform(tree.get(), transform);
  ASSERT_TRUE(applied.ok()) << applied.status();
  ASSERT_TRUE(tree->Validate().ok()) << tree->Validate();

  for (size_t i = 0; i < queries.size(); ++i) {
    auto result = RunQuery(data, *tree, queries[i]);
    ASSERT_TRUE(result.ok()) << result.status() << " " << queries[i];
    EXPECT_EQ(*result, baseline[i]) << queries[i];
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllTransforms, InvarianceTest,
    ::testing::Values(
        InvarianceCase{"movie_rep_split_1", true,
                       TransformKind::kRepetitionSplit, "aka_title", 1},
        InvarianceCase{"movie_rep_split_3", true,
                       TransformKind::kRepetitionSplit, "aka_title", 3},
        InvarianceCase{"movie_rep_split_8", true,
                       TransformKind::kRepetitionSplit, "aka_title", 8},
        InvarianceCase{"movie_choice_dist", true,
                       TransformKind::kUnionDistribute, "box_office", 0},
        InvarianceCase{"movie_implicit_rating", true,
                       TransformKind::kUnionDistribute, "avg_rating", 0},
        InvarianceCase{"movie_implicit_votes", true,
                       TransformKind::kUnionDistribute, "votes", 0},
        InvarianceCase{"dblp_rep_split_5", false,
                       TransformKind::kRepetitionSplit, "author", 5},
        InvarianceCase{"dblp_implicit_ee", false,
                       TransformKind::kUnionDistribute, "ee", 0},
        InvarianceCase{"dblp_implicit_editor", false,
                       TransformKind::kUnionDistribute, "editor", 0},
        InvarianceCase{"dblp_type_merge_author", false,
                       TransformKind::kTypeMerge, "author", 0},
        InvarianceCase{"dblp_type_merge_title", false,
                       TransformKind::kTypeMerge, "title", 0},
        InvarianceCase{"dblp_inline_title1", false, TransformKind::kInline,
                       "title", 0},
        InvarianceCase{"dblp_outline_booktitle", false,
                       TransformKind::kOutline, "booktitle", 0},
        InvarianceCase{"dblp_outline_year", false, TransformKind::kOutline,
                       "year", 0}),
    [](const ::testing::TestParamInfo<InvarianceCase>& info) {
      return info.param.name;
    });

// ---------- derived statistics track exact statistics ----------

class DerivationSweepTest : public ::testing::TestWithParam<int> {};

TEST_P(DerivationSweepTest, RowCountsWithinTolerance) {
  // Random transformation sequences; derived row counts must stay within
  // 5 % (+2) of exact for every relation.
  DblpConfig config;
  config.num_inproceedings = 1500;
  config.num_books = 150;
  GeneratedData data = GenerateDblp(config);
  auto stats = XmlStatistics::Collect(data.doc, *data.tree);
  ASSERT_TRUE(stats.ok());

  Rng rng(static_cast<uint64_t>(GetParam()) * 97 + 13);
  auto tree = data.tree->Clone();
  int applied = 0;
  for (int step = 0; step < 8 && applied < 3; ++step) {
    std::vector<Transform> transforms = EnumerateTransforms(*tree, 4);
    if (transforms.empty()) break;
    const Transform& pick = transforms[static_cast<size_t>(
        rng.Uniform(0, static_cast<int64_t>(transforms.size()) - 1))];
    if (ApplyTransform(tree.get(), pick).ok()) ++applied;
  }
  auto mapping = Mapping::Build(*tree);
  ASSERT_TRUE(mapping.ok()) << mapping.status();
  Database db;
  ASSERT_TRUE(ShredDocument(data.doc, *tree, *mapping, &db).ok());
  for (const MappedRelation& rel : mapping->relations()) {
    TableStats derived = stats->DeriveTableStats(*tree, rel);
    const Table* table = db.FindTable(rel.table_name);
    ASSERT_NE(table, nullptr);
    EXPECT_NEAR(static_cast<double>(derived.row_count),
                static_cast<double>(table->row_count()),
                0.05 * static_cast<double>(table->row_count()) + 2)
        << rel.table_name;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DerivationSweepTest,
                         ::testing::Range(0, 10));

// ---------- optimizer/executor agreement ----------

class AgreementTest : public ::testing::TestWithParam<int> {};

TEST_P(AgreementTest, EstimateAndMeasurementAgreeOnWinner) {
  // For randomly chosen single-table queries, if the optimizer estimates
  // configuration A cheaper than B by 2x or more, measured work must not
  // say the opposite by 2x or more.
  DblpConfig config;
  config.num_inproceedings = 6000;
  config.num_books = 600;
  GeneratedData data = GenerateDblp(config);
  auto tree = data.tree->Clone();
  FullyInline(tree.get());
  auto mapping = Mapping::Build(*tree);
  ASSERT_TRUE(mapping.ok());
  Database db;
  ASSERT_TRUE(ShredDocument(data.doc, *tree, *mapping, &db).ok());

  Rng rng(static_cast<uint64_t>(GetParam()) * 31 + 7);
  int conf = static_cast<int>(rng.Uniform(0, 30));
  std::string sql = "SELECT title, year FROM inproc WHERE booktitle = 'conf_" +
                    std::to_string(conf) + "'";

  auto run = [&](bool with_index) -> std::pair<double, double> {
    if (with_index) {
      IndexDef idx;
      idx.name = "agree_idx";
      idx.table = "inproc";
      idx.key_columns = {
          db.FindTable("inproc")->schema().FindColumn("booktitle")};
      idx.included_columns = {
          db.FindTable("inproc")->schema().FindColumn("title"),
          db.FindTable("inproc")->schema().FindColumn("year")};
      XS_CHECK_OK(db.CreateIndex(idx));
    }
    CatalogDesc catalog = db.BuildCatalogDesc();
    auto parsed = ParseSql(sql);
    XS_CHECK_OK(parsed.status());
    auto bound = BindQuery(*parsed, catalog);
    XS_CHECK_OK(bound.status());
    auto planned = PlanQuery(*bound, catalog);
    XS_CHECK_OK(planned.status());
    Executor executor(db);
    ExecMetrics metrics;
    XS_CHECK_OK(executor.Run(*planned->root, &metrics).status());
    return {planned->est_cost, metrics.work};
  };
  auto [est_scan, work_scan] = run(false);
  auto [est_idx, work_idx] = run(true);
  if (est_idx * 2 < est_scan) {
    EXPECT_LT(work_idx, work_scan * 2)
        << "estimate said index wins decisively but measurement disagrees";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AgreementTest, ::testing::Range(0, 6));

// ---------- parallel/serial execution equivalence ----------

// A randomized query over the shredded DBLP schema, kept as parts so a
// failing case can be shrunk by deleting parts one at a time.
struct RandomQuerySpec {
  bool aggregate = false;
  bool join = false;
  bool order_by = false;
  std::vector<std::string> projections;  // plain items or aggregate calls
  std::vector<std::string> preds;        // WHERE conjuncts (join pred kept)

  std::string ToSql() const {
    std::string sql = "SELECT ";
    for (size_t i = 0; i < projections.size(); ++i) {
      if (i > 0) sql += ", ";
      sql += projections[i];
    }
    sql += " FROM inproc I";
    if (join) sql += ", inproc_author A";
    bool first = true;
    if (join) {
      sql += " WHERE A.PID = I.ID";
      first = false;
    }
    for (const std::string& pred : preds) {
      sql += (first ? " WHERE " : " AND ") + pred;
      first = false;
    }
    if (order_by && !aggregate) sql += " ORDER BY 1";
    return sql;
  }
};

RandomQuerySpec RandomQuery(Rng* rng) {
  RandomQuerySpec spec;
  spec.aggregate = rng->Bernoulli(0.3);
  spec.join = rng->Bernoulli(0.3);
  if (spec.aggregate) {
    static const char* kAggs[] = {"COUNT(*)", "COUNT(I.year)", "SUM(I.year)",
                                  "MIN(I.title)", "MAX(I.year)"};
    int n = static_cast<int>(rng->Uniform(1, 3));
    for (int i = 0; i < n; ++i) {
      spec.projections.push_back(kAggs[rng->Uniform(0, 4)]);
    }
  } else {
    static const char* kCols[] = {"I.ID", "I.title", "I.booktitle", "I.year"};
    int n = static_cast<int>(rng->Uniform(1, 3));
    for (int i = 0; i < n; ++i) {
      spec.projections.push_back(kCols[rng->Uniform(0, 3)]);
    }
    if (spec.join) spec.projections.push_back("A.author");
    spec.order_by = rng->Bernoulli(0.4);
  }
  int filters = static_cast<int>(rng->Uniform(0, 2));
  for (int i = 0; i < filters; ++i) {
    switch (rng->Uniform(0, 2)) {
      case 0:
        spec.preds.push_back("I.year >= " +
                             std::to_string(rng->Uniform(1980, 2004)));
        break;
      case 1:
        spec.preds.push_back("I.booktitle = 'conf_" +
                             std::to_string(rng->Uniform(0, 40)) + "'");
        break;
      default:
        spec.preds.push_back("I.title IS NOT NULL");
        break;
    }
  }
  return spec;
}

// Runs `sql` serially and at four morsel workers, each under its own
// governor. Returns "" on full agreement, else a description of the first
// divergence (rows, metered work, or governor spend).
std::string CheckParallelEquivalence(const Database& db,
                                     const std::string& sql) {
  CatalogDesc catalog = db.BuildCatalogDesc();
  auto parsed = ParseSql(sql);
  if (!parsed.ok()) return "parse: " + parsed.status().ToString();
  auto bound = BindQuery(*parsed, catalog);
  if (!bound.ok()) return "bind: " + bound.status().ToString();
  auto planned = PlanQuery(*bound, catalog);
  if (!planned.ok()) return "plan: " + planned.status().ToString();
  Executor executor(db);

  auto run = [&](int threads, std::vector<Row>* rows, ExecMetrics* m,
                 double* spent) -> Status {
    ResourceGovernor governor{ResourceLimits{}};
    ExecOptions options;
    options.governor = &governor;
    options.exec_threads = threads;
    auto result = executor.Run(*planned->root, m, options);
    if (!result.ok()) return result.status();
    *rows = std::move(*result);
    *spent = governor.work_spent();
    return Status::OK();
  };

  std::vector<Row> serial_rows, parallel_rows;
  ExecMetrics serial_m, parallel_m;
  double serial_spent = 0, parallel_spent = 0;
  Status s = run(1, &serial_rows, &serial_m, &serial_spent);
  if (!s.ok()) return "serial run: " + s.ToString();
  s = run(4, &parallel_rows, &parallel_m, &parallel_spent);
  if (!s.ok()) return "parallel run: " + s.ToString();

  if (serial_rows.size() != parallel_rows.size()) return "row count differs";
  RowTotalEquals eq;
  for (size_t i = 0; i < serial_rows.size(); ++i) {
    if (!eq(serial_rows[i], parallel_rows[i])) {
      return "row " + std::to_string(i) + " differs";
    }
  }
  if (serial_m.work != parallel_m.work) return "metered work differs";
  if (serial_spent != parallel_spent) return "governor work_spent differs";
  return "";
}

class ParallelEquivalenceTest : public ::testing::TestWithParam<int> {};

TEST_P(ParallelEquivalenceTest, RandomWorkloadMatchesSerialExactly) {
  // Property: for any query, a 4-worker morsel run produces the same rows
  // in the same order, the same ExecMetrics.work, and the same governor
  // work_spent as the serial run. On failure the spec is shrunk by
  // dropping parts (predicates, then projections) while it still fails,
  // and the minimal SQL is reported.
  DblpConfig config;
  config.num_inproceedings = 6000;
  config.num_books = 600;
  GeneratedData data = GenerateDblp(config);
  auto mapping = Mapping::Build(*data.tree);
  ASSERT_TRUE(mapping.ok());
  Database db;
  ASSERT_TRUE(ShredDocument(data.doc, *data.tree, *mapping, &db).ok());

  Rng rng(static_cast<uint64_t>(GetParam()) * 193 + 11);
  for (int i = 0; i < 12; ++i) {
    RandomQuerySpec spec = RandomQuery(&rng);
    std::string failure = CheckParallelEquivalence(db, spec.ToSql());
    if (failure.empty()) continue;

    // Shrink: repeatedly drop the first removable part that keeps the
    // query failing.
    bool shrunk = true;
    while (shrunk) {
      shrunk = false;
      for (size_t p = 0; p < spec.preds.size(); ++p) {
        RandomQuerySpec candidate = spec;
        candidate.preds.erase(candidate.preds.begin() +
                              static_cast<long>(p));
        if (!CheckParallelEquivalence(db, candidate.ToSql()).empty()) {
          spec = candidate;
          shrunk = true;
          break;
        }
      }
      if (shrunk) continue;
      if (spec.order_by) {
        RandomQuerySpec candidate = spec;
        candidate.order_by = false;
        if (!CheckParallelEquivalence(db, candidate.ToSql()).empty()) {
          spec = candidate;
          shrunk = true;
          continue;
        }
      }
      for (size_t p = 0; spec.projections.size() > 1 &&
                         p < spec.projections.size();
           ++p) {
        RandomQuerySpec candidate = spec;
        candidate.projections.erase(candidate.projections.begin() +
                                    static_cast<long>(p));
        if (!CheckParallelEquivalence(db, candidate.ToSql()).empty()) {
          spec = candidate;
          shrunk = true;
          break;
        }
      }
    }
    FAIL() << "parallel/serial divergence (" << failure
           << "), minimal failing query: " << spec.ToSql();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParallelEquivalenceTest,
                         ::testing::Range(0, 8));

}  // namespace
}  // namespace xmlshred
