// Differential tests: the optimized engine (arbitrary physical
// configurations, every join method and access path) must return exactly
// the same multiset of rows as the brute-force reference evaluator, for
// randomized queries over randomized configurations.

#include <gtest/gtest.h>

#include <functional>

#include "common/rng.h"
#include "exec/executor.h"
#include "mapping/shredder.h"
#include "opt/planner.h"
#include "sql/binder.h"
#include "sql/parser.h"
#include "reference_executor.h"
#include "workload/movie.h"

namespace xmlshred {
namespace {

class DifferentialTest : public ::testing::TestWithParam<int> {
 protected:
  void SetUp() override {
    MovieConfig config;
    config.num_movies = 600;  // brute-force joins are quadratic
    data_ = GenerateMovie(config);
    auto mapping = Mapping::Build(*data_.tree);
    ASSERT_TRUE(mapping.ok());
    ASSERT_TRUE(ShredDocument(data_.doc, *data_.tree, *mapping, &db_).ok());
  }

  // Builds a random physical configuration over the movie tables.
  void RandomConfiguration(Rng* rng) {
    const Table* movie = db_.FindTable("movie");
    int columns = movie->schema().num_columns();
    int num_indexes = static_cast<int>(rng->Uniform(0, 3));
    for (int i = 0; i < num_indexes; ++i) {
      IndexDef def;
      def.name = "rand_ix_" + std::to_string(i);
      def.table = "movie";
      def.key_columns = {
          static_cast<int>(rng->Uniform(2, columns - 1))};
      if (rng->Bernoulli(0.5)) {
        int inc = static_cast<int>(rng->Uniform(2, columns - 1));
        if (inc != def.key_columns[0]) def.included_columns = {inc};
      }
      ASSERT_TRUE(db_.CreateIndex(def).ok());
    }
    if (rng->Bernoulli(0.5)) {
      IndexDef pid;
      pid.name = "rand_pid";
      pid.table = "aka_title";
      pid.key_columns = {1};
      if (rng->Bernoulli(0.5)) pid.included_columns = {2};
      ASSERT_TRUE(db_.CreateIndex(pid).ok());
    }
  }

  // Builds a random query over movie (optionally joined with aka_title).
  std::string RandomSql(Rng* rng) {
    static const char* kMovieCols[] = {"title",      "year",   "avg_rating",
                                       "director",   "votes",  "box_office",
                                       "seasons"};
    std::string sql = "SELECT m.ID";
    int projections = static_cast<int>(rng->Uniform(1, 3));
    for (int i = 0; i < projections; ++i) {
      sql += std::string(", m.") +
             kMovieCols[rng->Uniform(0, 6)];
    }
    bool join = rng->Bernoulli(0.4);
    if (join) sql += ", a.aka_title";
    sql += " FROM movie m";
    if (join) sql += ", aka_title a";
    std::vector<std::string> preds;
    if (join) preds.push_back("a.PID = m.ID");
    int filters = static_cast<int>(rng->Uniform(0, 2));
    for (int i = 0; i < filters; ++i) {
      switch (rng->Uniform(0, 3)) {
        case 0:
          preds.push_back("m.year >= " +
                          std::to_string(rng->Uniform(1930, 2004)));
          break;
        case 1:
          preds.push_back("m.votes >= " +
                          std::to_string(rng->Uniform(10, 1000000)));
          break;
        case 2:
          preds.push_back("m.title = 'movie_title_" +
                          std::to_string(rng->Uniform(0, 599)) + "'");
          break;
        default:
          preds.push_back("m.avg_rating IS NOT NULL");
          break;
      }
    }
    for (size_t i = 0; i < preds.size(); ++i) {
      sql += (i == 0 ? " WHERE " : " AND ") + preds[i];
    }
    return sql;
  }

  GeneratedData data_;
  Database db_;
};

TEST_P(DifferentialTest, OptimizedMatchesReference) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 1299709 + 17);
  RandomConfiguration(&rng);
  for (int q = 0; q < 6; ++q) {
    std::string sql = RandomSql(&rng);
    auto parsed = ParseSql(sql);
    ASSERT_TRUE(parsed.ok()) << sql;
    CatalogDesc catalog = db_.BuildCatalogDesc();
    auto bound = BindQuery(*parsed, catalog);
    ASSERT_TRUE(bound.ok()) << sql;
    auto planned = PlanQuery(*bound, catalog);
    ASSERT_TRUE(planned.ok()) << sql;
    Executor executor(db_);
    ExecMetrics metrics;
    auto rows = executor.Run(*planned->root, &metrics);
    ASSERT_TRUE(rows.ok()) << sql;
    std::vector<Row> expected = ReferenceExecute(*bound, db_);
    EXPECT_TRUE(SameRowMultiset(*rows, expected))
        << sql << "\noptimized=" << rows->size()
        << " reference=" << expected.size() << "\n"
        << planned->root->ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialTest, ::testing::Range(0, 12));

}  // namespace
}  // namespace xmlshred
