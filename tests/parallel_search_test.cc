// Serial-equivalence tests for parallel candidate costing: for every
// search algorithm and every ablation flag, a run with num_threads = k
// must return a SearchResult bit-identical to the num_threads = 1 legacy
// serial path — same mapping, same physical configuration, same estimated
// cost, same telemetry (DESIGN.md §8). The only fields excluded are the
// wall-clock ones and derivation_cache_hits, which are timing-dependent
// by design (a cache hit is observably identical to recomputing).

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "common/limits.h"
#include "common/thread_pool.h"
#include "search/cost_cache.h"
#include "search/greedy.h"
#include "workload/dblp.h"
#include "workload/movie.h"
#include "workload/query_gen.h"

namespace xmlshred {
namespace {

// Canonical text form of a physical configuration, covering everything
// cost derivation and evaluation read from it.
std::string ConfigSignature(const TunerResult& config) {
  std::ostringstream out;
  out.precision(17);
  for (const IndexDesc& idx : config.indexes) {
    out << "I|" << idx.def.table << "|" << idx.def.name << "|k";
    for (int col : idx.def.key_columns) out << ":" << col;
    out << "|i";
    for (int col : idx.def.included_columns) out << ":" << col;
    out << "|u" << idx.def.unique << "|p" << idx.NumPages() << "\n";
  }
  for (const ViewDesc& view : config.views) {
    out << "V|" << view.def.base_table << "|" << view.def.name << "|j"
        << (view.def.join_child ? *view.def.join_child : "") << "|p"
        << view.NumPages() << "\n";
  }
  out << "cost=" << config.total_cost
      << " maint=" << config.maintenance_cost
      << " pages=" << config.structure_pages
      << " trunc=" << config.truncated << "\n";
  for (double c : config.query_costs) out << "q=" << c << "\n";
  for (const auto& objects : config.query_objects) {
    out << "o";
    for (const std::string& obj : objects) out << ":" << obj;
    out << "\n";
  }
  return out.str();
}

// Asserts two SearchResults are identical apart from timing-dependent
// telemetry (elapsed_seconds, derivation_cache_hits).
void ExpectEquivalent(const SearchResult& serial,
                      const SearchResult& parallel) {
  EXPECT_EQ(serial.algorithm, parallel.algorithm);
  EXPECT_EQ(serial.truncated, parallel.truncated);
  // Bit-identical cost: no tolerance.
  EXPECT_EQ(serial.estimated_cost, parallel.estimated_cost);
  EXPECT_EQ(serial.mapping.ToString(), parallel.mapping.ToString());
  EXPECT_EQ(MappingFingerprint(serial.mapping),
            MappingFingerprint(parallel.mapping));
  EXPECT_EQ(ConfigSignature(serial.configuration),
            ConfigSignature(parallel.configuration));
  const SearchTelemetry& a = serial.telemetry;
  const SearchTelemetry& b = parallel.telemetry;
  EXPECT_EQ(a.transformations_searched, b.transformations_searched);
  EXPECT_EQ(a.tuner_calls, b.tuner_calls);
  EXPECT_EQ(a.optimizer_calls, b.optimizer_calls);
  EXPECT_EQ(a.queries_derived, b.queries_derived);
  EXPECT_EQ(a.candidates_selected, b.candidates_selected);
  EXPECT_EQ(a.candidates_after_merging, b.candidates_after_merging);
  EXPECT_EQ(a.candidates_skipped, b.candidates_skipped);
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.work_spent, b.work_spent);
  EXPECT_EQ(a.whatif_rollbacks, b.whatif_rollbacks);
  EXPECT_EQ(a.advisor_candidates_skipped, b.advisor_candidates_skipped);
}

class ParallelSearchTest : public ::testing::Test {
 protected:
  void SetUpMovie(int64_t movies = 1500) {
    MovieConfig config;
    config.num_movies = movies;
    data_ = GenerateMovie(config);
    Init();
  }

  void SetUpDblp(int64_t pubs = 1500) {
    DblpConfig config;
    config.num_inproceedings = pubs;
    config.num_books = pubs / 10;
    data_ = GenerateDblp(config);
    Init();
  }

  void Init() {
    auto stats = XmlStatistics::Collect(data_.doc, *data_.tree);
    ASSERT_TRUE(stats.ok()) << stats.status();
    stats_ = std::make_unique<XmlStatistics>(std::move(*stats));
    problem_.tree = data_.tree.get();
    problem_.stats = stats_.get();
    auto mapping = Mapping::Build(*data_.tree);
    ASSERT_TRUE(mapping.ok());
    CatalogDesc catalog = stats_->DeriveCatalog(*data_.tree, *mapping);
    problem_.storage_bound_pages = catalog.DataPages() * 6 + 1024;
    WorkloadSpec spec;
    spec.num_queries = 6;
    spec.seed = 11;
    auto workload = GenerateWorkload(*data_.tree, *stats_, spec);
    ASSERT_TRUE(workload.ok()) << workload.status();
    problem_.workload = std::move(*workload);
  }

  GeneratedData data_;
  std::unique_ptr<XmlStatistics> stats_;
  DesignProblem problem_;
};

TEST_F(ParallelSearchTest, GreedyMatchesSerialAcrossThreadCounts) {
  SetUpMovie();
  GreedyOptions serial_options;
  serial_options.num_threads = 1;
  auto serial = GreedySearch(problem_, serial_options);
  ASSERT_TRUE(serial.ok()) << serial.status();
  ASSERT_GT(serial->telemetry.transformations_searched, 0);
  for (int threads : {2, 4, 8}) {
    GreedyOptions options;
    options.num_threads = threads;
    auto parallel = GreedySearch(problem_, options);
    ASSERT_TRUE(parallel.ok()) << "threads=" << threads << ": "
                               << parallel.status();
    SCOPED_TRACE("threads=" + std::to_string(threads));
    ExpectEquivalent(*serial, *parallel);
  }
}

TEST_F(ParallelSearchTest, GreedyDefaultThreadCountMatchesSerial) {
  SetUpMovie();
  GreedyOptions serial_options;
  serial_options.num_threads = 1;
  auto serial = GreedySearch(problem_, serial_options);
  ASSERT_TRUE(serial.ok()) << serial.status();
  // num_threads = 0 resolves to the hardware thread count.
  auto parallel = GreedySearch(problem_);
  ASSERT_TRUE(parallel.ok()) << parallel.status();
  ExpectEquivalent(*serial, *parallel);
}

TEST_F(ParallelSearchTest, GreedyAblationsMatchSerial) {
  SetUpDblp();
  // One ablation per optimization of Figs. 7-9: each takes a different
  // code path through the round loop and the costing, and each must stay
  // bit-identical under parallel costing.
  struct Ablation {
    const char* name;
    GreedyOptions options;
  };
  std::vector<Ablation> ablations(5);
  ablations[0].name = "no_prune_subsumed";
  ablations[0].options.prune_subsumed = false;
  ablations[1].name = "no_candidate_selection";
  ablations[1].options.candidate_selection = false;
  ablations[2].name = "no_merging";
  ablations[2].options.merging = MergeStrategy::kNone;
  ablations[3].name = "exhaustive_merging";
  ablations[3].options.merging = MergeStrategy::kExhaustive;
  ablations[4].name = "no_cost_derivation";
  ablations[4].options.cost_derivation = false;
  for (Ablation& ablation : ablations) {
    SCOPED_TRACE(ablation.name);
    ablation.options.num_threads = 1;
    auto serial = GreedySearch(problem_, ablation.options);
    ASSERT_TRUE(serial.ok()) << serial.status();
    ablation.options.num_threads = 4;
    auto parallel = GreedySearch(problem_, ablation.options);
    ASSERT_TRUE(parallel.ok()) << parallel.status();
    ExpectEquivalent(*serial, *parallel);
  }
}

TEST_F(ParallelSearchTest, NaiveGreedyMatchesSerialAcrossThreadCounts) {
  SetUpMovie(800);
  NaiveOptions serial_options;
  serial_options.num_threads = 1;
  auto serial = NaiveGreedySearch(problem_, serial_options);
  ASSERT_TRUE(serial.ok()) << serial.status();
  ASSERT_GT(serial->telemetry.transformations_searched, 0);
  for (int threads : {2, 4, 8}) {
    NaiveOptions options;
    options.num_threads = threads;
    auto parallel = NaiveGreedySearch(problem_, options);
    ASSERT_TRUE(parallel.ok()) << "threads=" << threads << ": "
                               << parallel.status();
    SCOPED_TRACE("threads=" + std::to_string(threads));
    ExpectEquivalent(*serial, *parallel);
  }
}

TEST_F(ParallelSearchTest, TwoStepMatchesSerialAcrossThreadCounts) {
  SetUpDblp(800);
  NaiveOptions serial_options;
  serial_options.num_threads = 1;
  auto serial = TwoStepSearch(problem_, serial_options);
  ASSERT_TRUE(serial.ok()) << serial.status();
  ASSERT_GT(serial->telemetry.transformations_searched, 0);
  for (int threads : {2, 4, 8}) {
    NaiveOptions options;
    options.num_threads = threads;
    auto parallel = TwoStepSearch(problem_, options);
    ASSERT_TRUE(parallel.ok()) << "threads=" << threads << ": "
                               << parallel.status();
    SCOPED_TRACE("threads=" + std::to_string(threads));
    ExpectEquivalent(*serial, *parallel);
  }
}

TEST_F(ParallelSearchTest, GenerousGovernorWorkSpentMatchesSerial) {
  // With a budget the search never exhausts, every charge is identical
  // across thread counts (whole work units, summed exactly), so even
  // work_spent must match the serial run.
  SetUpMovie(800);
  ResourceLimits limits;
  limits.work_units = 1 << 24;
  auto run = [&](int threads) {
    ResourceGovernor governor(limits);
    problem_.governor = &governor;
    GreedyOptions options;
    options.num_threads = threads;
    auto result = GreedySearch(problem_, options);
    problem_.governor = nullptr;
    return result;
  };
  auto serial = run(1);
  ASSERT_TRUE(serial.ok()) << serial.status();
  EXPECT_FALSE(serial->truncated);
  EXPECT_GT(serial->telemetry.work_spent, 0);
  for (int threads : {2, 4}) {
    auto parallel = run(threads);
    ASSERT_TRUE(parallel.ok()) << parallel.status();
    SCOPED_TRACE("threads=" + std::to_string(threads));
    ExpectEquivalent(*serial, *parallel);
  }
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexOnce) {
  std::vector<std::atomic<int>> counts(257);
  for (auto& c : counts) c.store(0);
  ParallelFor(8, 257, [&](int i) { counts[static_cast<size_t>(i)]++; });
  for (const auto& c : counts) EXPECT_EQ(c.load(), 1);
}

TEST(ThreadPoolTest, SerialPathRunsInOrderInline) {
  std::vector<int> order;
  ParallelFor(1, 5, [&](int i) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ThreadPoolTest, StopPredicateSkipsUnstartedTasks) {
  std::atomic<int> ran{0};
  std::atomic<bool> stop{false};
  ParallelFor(
      4, 1000,
      [&](int i) {
        ran++;
        if (i == 0) stop.store(true);
      },
      [&] { return stop.load(); });
  // Everything already started finishes; tasks whose turn comes after the
  // stop are skipped. At least one task ran, and typically far from all.
  EXPECT_GE(ran.load(), 1);
  EXPECT_LE(ran.load(), 1000);
}

TEST(ThreadPoolTest, ResolveNumThreads) {
  EXPECT_EQ(ResolveNumThreads(3), 3);
  EXPECT_EQ(ResolveNumThreads(1), 1);
  EXPECT_GE(ResolveNumThreads(0), 1);
  EXPECT_GE(ResolveNumThreads(-2), 1);
}

TEST(CostCacheTest, LookupInsertAndSharding) {
  CostDerivationCache cache;
  EXPECT_FALSE(cache.Lookup(42).has_value());
  EXPECT_EQ(cache.misses(), 1);
  cache.Insert(42, {3.5, 7});
  auto hit = cache.Lookup(42);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->query_cost, 3.5);
  EXPECT_EQ(hit->reserved_pages, 7);
  EXPECT_EQ(cache.hits(), 1);
  // Keys spread across shards still round-trip.
  for (uint64_t i = 0; i < 64; ++i) {
    cache.Insert(DerivationKey(i, i * 31, i), {double(i), int64_t(i)});
  }
  EXPECT_EQ(cache.size(), 65);
  for (uint64_t i = 0; i < 64; ++i) {
    auto entry = cache.Lookup(DerivationKey(i, i * 31, i));
    ASSERT_TRUE(entry.has_value()) << i;
    EXPECT_EQ(entry->query_cost, double(i));
  }
}

TEST(CostCacheTest, FingerprintSeparatesStructurallyDifferentKeys) {
  EXPECT_NE(DerivationKey(1, 2, 3), DerivationKey(1, 2, 4));
  EXPECT_NE(DerivationKey(1, 2, 3), DerivationKey(2, 1, 3));
  EXPECT_EQ(DerivationKey(1, 2, 3), DerivationKey(1, 2, 3));
}

}  // namespace
}  // namespace xmlshred
