// Unit tests for the cost model, selectivity estimation, and the
// statistics algebra (scale / merge) used by derivation.

#include <gtest/gtest.h>

#include "common/logging.h"
#include "common/rng.h"
#include "opt/cost_model.h"
#include "opt/planner.h"
#include "rel/catalog.h"
#include "rel/index.h"
#include "rel/stats.h"
#include "sql/binder.h"
#include "sql/parser.h"

namespace xmlshred {
namespace {

TEST(CostModelTest, SortCostMonotonic) {
  EXPECT_EQ(SortCost(0), 0);
  EXPECT_EQ(SortCost(1), 0);
  double prev = 0;
  for (double n : {10.0, 100.0, 1000.0, 1e6}) {
    double cost = SortCost(n);
    EXPECT_GT(cost, prev);
    prev = cost;
  }
}

TEST(CostModelTest, QErrorBasics) {
  EXPECT_EQ(QError(100, 100), 1.0);
  EXPECT_EQ(QError(200, 100), 2.0);
  // Symmetric: under- and over-estimation penalized equally.
  EXPECT_EQ(QError(100, 200), 2.0);
  // Both sides clamp to >= 1, so empty results are well-defined.
  EXPECT_EQ(QError(0, 0), 1.0);
  EXPECT_EQ(QError(0.25, 0), 1.0);
  EXPECT_EQ(QError(8, 0), 8.0);
  EXPECT_EQ(QError(0, 8), 8.0);
  EXPECT_GE(QError(3.7, 912.0), 1.0);
}

// The planner's access-path choice flips where the cost formulas cross:
// a selective predicate (few matches -> few random probes) favors the
// index, an unselective one (random pages cost 2.5x sequential) falls
// back to the full scan.
TEST(CostModelTest, SeqVsIndexCrossover) {
  TableSchema schema;
  schema.name = "t";
  schema.columns = {{"ID", ColumnType::kInt64, false},
                    {"PID", ColumnType::kInt64, true},
                    {"hi", ColumnType::kInt64, true},   // 2500 distinct
                    {"lo", ColumnType::kInt64, true},   // 2 distinct
                    {"payload", ColumnType::kString, true}};
  schema.id_column = 0;
  schema.pid_column = 1;
  Database db;
  auto table = db.CreateTable(schema);
  ASSERT_TRUE(table.ok());
  for (int i = 0; i < 20000; ++i) {
    (*table)->AppendRow({Value::Int(i), Value::Null(), Value::Int(i % 2500),
                         Value::Int(i % 2),
                         Value::Str("payload_padding_string_" +
                                    std::to_string(i))});
  }
  // Non-covering indexes: every match costs a random row fetch, so the
  // match count drives the crossover.
  for (int column : {2, 3}) {
    IndexDef idx;
    idx.name = "ix_" + schema.columns[column].name;
    idx.table = "t";
    idx.key_columns = {column};
    ASSERT_TRUE(db.CreateIndex(idx).ok());
  }

  auto scan_kind_for = [&](const std::string& sql) {
    auto parsed = ParseSql(sql);
    XS_CHECK_OK(parsed.status());
    CatalogDesc catalog = db.BuildCatalogDesc();
    auto bound = BindQuery(*parsed, catalog);
    XS_CHECK_OK(bound.status());
    auto planned = PlanQuery(*bound, catalog);
    XS_CHECK_OK(planned.status());
    const PlanNode* node = planned->root.get();
    while (node->kind == PlanKind::kProject) node = node->children[0].get();
    return node->kind;
  };
  EXPECT_EQ(scan_kind_for("SELECT payload FROM t WHERE hi = 3"),
            PlanKind::kIndexSeek);
  EXPECT_EQ(scan_kind_for("SELECT payload FROM t WHERE lo = 1"),
            PlanKind::kHeapScan);
}

TEST(CostModelTest, ProbePagesGrowWithMatches) {
  EXPECT_GE(IndexProbePagesFor(100, 20.0, 0), 1);
  EXPECT_LT(IndexProbePagesFor(100, 20.0, 1),
            IndexProbePagesFor(100, 20.0, 100000));
  // Wider entries span more leaf pages for the same match count.
  EXPECT_LE(IndexProbePagesFor(100, 8.0, 5000),
            IndexProbePagesFor(100, 80.0, 5000));
}

ColumnStats MakeIntStats(int n, int distinct) {
  std::vector<Value> values;
  for (int i = 0; i < n; ++i) values.push_back(Value::Int(i % distinct));
  return BuildColumnStatsFromValues(values);
}

TEST(SelectivityTest, FilterOps) {
  ColumnStats stats = MakeIntStats(1000, 100);  // values 0..99, 10 each
  EXPECT_NEAR(FilterSelectivity(stats, "=", Value::Int(5)), 0.01, 1e-9);
  EXPECT_NEAR(FilterSelectivity(stats, "<", Value::Int(50)), 0.5, 0.05);
  EXPECT_NEAR(FilterSelectivity(stats, ">=", Value::Int(90)), 0.1, 0.03);
  EXPECT_NEAR(FilterSelectivity(stats, "is not null", Value::Null()), 1.0,
              1e-9);
  EXPECT_EQ(FilterSelectivity(stats, "=", Value::Int(1000)), 0.0);
}

TEST(SelectivityTest, NullsShrinkNotNull) {
  std::vector<Value> values;
  for (int i = 0; i < 100; ++i) {
    values.push_back(i % 4 == 0 ? Value::Null() : Value::Int(i));
  }
  ColumnStats stats = BuildColumnStatsFromValues(values);
  EXPECT_NEAR(FilterSelectivity(stats, "is not null", Value::Null()), 0.75,
              1e-9);
}

TEST(StatsAlgebraTest, ScalePreservesShape) {
  ColumnStats stats = MakeIntStats(1000, 50);
  ColumnStats half = ScaleColumnStats(stats, 0.5);
  EXPECT_EQ(half.non_null_count, 500);
  EXPECT_TRUE(half.min.TotalEquals(stats.min));
  EXPECT_TRUE(half.max.TotalEquals(stats.max));
  EXPECT_LE(half.distinct_estimate, stats.distinct_estimate);
  // Selectivity of an equality probe is invariant under scaling.
  EXPECT_NEAR(half.EqSelectivity(Value::Int(7)),
              stats.EqSelectivity(Value::Int(7)), 0.005);
  // Histogram mass halves.
  int64_t full_mass = 0, half_mass = 0;
  for (const auto& b : stats.histogram) full_mass += b.count;
  for (const auto& b : half.histogram) half_mass += b.count;
  EXPECT_NEAR(static_cast<double>(half_mass),
              static_cast<double>(full_mass) / 2, full_mass * 0.02 + 2.0);
}

TEST(StatsAlgebraTest, MergeAddsPopulations) {
  std::vector<Value> low, high;
  for (int i = 0; i < 300; ++i) low.push_back(Value::Int(i % 10));
  for (int i = 0; i < 100; ++i) high.push_back(Value::Int(100 + i % 5));
  ColumnStats a = BuildColumnStatsFromValues(low);
  ColumnStats b = BuildColumnStatsFromValues(high);
  ColumnStats merged = MergeColumnStats(a, b);
  EXPECT_EQ(merged.non_null_count, 400);
  EXPECT_TRUE(merged.min.TotalEquals(Value::Int(0)));
  EXPECT_TRUE(merged.max.TotalEquals(Value::Int(104)));
  EXPECT_EQ(merged.distinct_estimate, 15);
  // Range selectivity reflects the combined distribution: values < 50 are
  // exactly the 300 low ones.
  EXPECT_NEAR(merged.RangeSelectivity("<", Value::Int(50)), 0.75, 0.05);
  // Merging with an empty population is identity.
  ColumnStats empty;
  EXPECT_EQ(MergeColumnStats(a, empty).non_null_count, a.non_null_count);
  EXPECT_EQ(MergeColumnStats(empty, b).non_null_count, b.non_null_count);
}

TEST(StatsAlgebraTest, MergeMcvsAccumulate) {
  std::vector<Value> a_vals(50, Value::Str("x"));
  std::vector<Value> b_vals(30, Value::Str("x"));
  for (int i = 0; i < 20; ++i) b_vals.push_back(Value::Str("y"));
  ColumnStats merged = MergeColumnStats(BuildColumnStatsFromValues(a_vals),
                                        BuildColumnStatsFromValues(b_vals));
  EXPECT_NEAR(merged.EqSelectivity(Value::Str("x")), 0.8, 1e-9);
  EXPECT_NEAR(merged.EqSelectivity(Value::Str("y")), 0.2, 1e-9);
}

TEST(ValueOrderTest, TotalOrderIsTransitiveAndAntisymmetric) {
  Rng rng(99);
  std::vector<Value> values = {Value::Null(), Value::Int(-5), Value::Int(0),
                               Value::Real(0.0), Value::Real(3.5),
                               Value::Int(4), Value::Str(""),
                               Value::Str("a"), Value::Str("b")};
  for (int i = 0; i < 200; ++i) {
    values.push_back(Value::Int(rng.Uniform(-100, 100)));
    values.push_back(Value::Real(rng.UniformDouble() * 200 - 100));
  }
  for (size_t i = 0; i < values.size(); i += 7) {
    for (size_t j = 0; j < values.size(); j += 5) {
      const Value& a = values[i];
      const Value& b = values[j];
      // Antisymmetry.
      EXPECT_FALSE(a.TotalLess(b) && b.TotalLess(a));
      // Consistency of TotalEquals.
      EXPECT_EQ(a.TotalEquals(b), !a.TotalLess(b) && !b.TotalLess(a));
      for (size_t k = 0; k < values.size(); k += 11) {
        const Value& c = values[k];
        if (a.TotalLess(b) && b.TotalLess(c)) {
          EXPECT_TRUE(a.TotalLess(c));
        }
      }
    }
  }
}

TEST(PagesTest, PagesForBoundaries) {
  EXPECT_EQ(PagesFor(0, 50), 0);
  EXPECT_EQ(PagesFor(1, 1), 1);
  EXPECT_EQ(PagesFor(163, 50.0), 1);   // just under one page
  EXPECT_EQ(PagesFor(164, 50.0), 2);   // just over
}

}  // namespace
}  // namespace xmlshred
