// Resource governor and anytime-search tests: budgets trip and stick,
// recursion depth stays independent, the fault injector is deterministic,
// and every search algorithm degrades gracefully — best-so-far design with
// `truncated` set — instead of failing when the budget runs out.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include <atomic>

#include "common/fault_injection.h"
#include "common/limits.h"
#include "common/thread_pool.h"
#include "search/evaluate.h"
#include "search/greedy.h"
#include "workload/movie.h"
#include "workload/query_gen.h"

namespace xmlshred {
namespace {

TEST(ResourceGovernorTest, WorkBudgetTripsAndSticks) {
  ResourceLimits limits;
  limits.work_units = 3;
  ResourceGovernor governor(limits);
  EXPECT_TRUE(governor.ChargeWork(2).ok());
  EXPECT_FALSE(governor.exhausted());
  Status tripped = governor.ChargeWork(2);
  EXPECT_EQ(tripped.code(), StatusCode::kResourceExhausted);
  EXPECT_TRUE(governor.exhausted());
  // Sticky: even a free charge fails now, and telemetry keeps counting.
  EXPECT_FALSE(governor.ChargeWork(0).ok());
  EXPECT_FALSE(governor.CheckDeadline().ok());
  EXPECT_DOUBLE_EQ(governor.work_spent(), 4.0);
}

TEST(ResourceGovernorTest, RowAndMemoryCaps) {
  ResourceLimits limits;
  limits.max_rows = 10;
  limits.max_memory_bytes = 100;
  {
    ResourceGovernor governor(limits);
    EXPECT_TRUE(governor.ChargeRows(10).ok());
    EXPECT_EQ(governor.ChargeRows(1).code(), StatusCode::kResourceExhausted);
    EXPECT_EQ(governor.rows_charged(), 11);
  }
  {
    ResourceGovernor governor(limits);
    EXPECT_TRUE(governor.ChargeMemory(100).ok());
    EXPECT_EQ(governor.ChargeMemory(1).code(),
              StatusCode::kResourceExhausted);
  }
}

TEST(ResourceGovernorTest, DeadlineTrips) {
  ResourceLimits limits;
  limits.wall_clock_seconds = 1e-9;
  ResourceGovernor governor(limits);
  // Any measurable elapsed time exceeds a nanosecond deadline.
  while (governor.elapsed_seconds() <= 1e-9) {
  }
  EXPECT_EQ(governor.CheckDeadline().code(), StatusCode::kResourceExhausted);
  EXPECT_TRUE(governor.exhausted());
}

TEST(ResourceGovernorTest, RecursionDepthIndependentOfExhaustion) {
  ResourceLimits limits;
  limits.work_units = 1;
  limits.max_recursion_depth = 2;
  ResourceGovernor governor(limits);
  (void)governor.ChargeWork(5);  // trip the work budget
  ASSERT_TRUE(governor.exhausted());
  // Depth still works at shallow levels and still caps at its own limit.
  EXPECT_TRUE(governor.EnterRecursion().ok());
  EXPECT_TRUE(governor.EnterRecursion().ok());
  EXPECT_EQ(governor.EnterRecursion().code(),
            StatusCode::kResourceExhausted);
  governor.LeaveRecursion();
  governor.LeaveRecursion();
  EXPECT_EQ(governor.max_depth_seen(), 2);
}

TEST(ResourceGovernorTest, ResetRearms) {
  ResourceLimits limits;
  limits.work_units = 1;
  ResourceGovernor governor(limits);
  (void)governor.ChargeWork(2);
  ASSERT_TRUE(governor.exhausted());
  governor.Reset();
  EXPECT_FALSE(governor.exhausted());
  EXPECT_DOUBLE_EQ(governor.work_spent(), 0);
  EXPECT_TRUE(governor.ChargeWork(1).ok());
}

TEST(RecursionScopeTest, NullGovernorIsNoOp) {
  RecursionScope scope(nullptr);
  EXPECT_TRUE(scope.status().ok());
}

TEST(RecursionScopeTest, ReleasesDepthOnExit) {
  ResourceLimits limits;
  limits.max_recursion_depth = 1;
  ResourceGovernor governor(limits);
  {
    RecursionScope scope(&governor);
    EXPECT_TRUE(scope.status().ok());
    RecursionScope nested(&governor);
    EXPECT_FALSE(nested.status().ok());
  }
  RecursionScope again(&governor);
  EXPECT_TRUE(again.status().ok());
}

TEST(FaultInjectorTest, FiresOnNthHitExactlyOnce) {
  ScopedFaultInjection armed("test.site", 2);
  FaultInjector* injector = FaultInjector::Global();
  EXPECT_TRUE(injector->Check("test.site").ok());
  EXPECT_TRUE(injector->Check("other.site").ok());
  Status fired = injector->Check("test.site");
  EXPECT_EQ(fired.code(), StatusCode::kInternal);
  EXPECT_TRUE(injector->Check("test.site").ok());
  EXPECT_EQ(injector->faults_fired(), 1);
  EXPECT_EQ(injector->hits("test.site"), 3);
}

TEST(FaultInjectorTest, ProbabilisticStreamIsDeterministic) {
  auto draw = [](uint64_t seed) {
    ScopedFaultInjection armed(seed, 0.5);
    std::vector<bool> fired;
    for (int i = 0; i < 64; ++i) {
      fired.push_back(!FaultInjector::Global()->Check("p.site").ok());
    }
    return fired;
  };
  EXPECT_EQ(draw(42), draw(42));
  EXPECT_NE(draw(42), draw(43));
}

// --- Anytime search: with a near-zero budget the algorithms still return
// a complete, valid design (truncated), and more budget never buys a worse
// design on this deterministic fixture. ---

class AnytimeSearchTest : public ::testing::Test {
 protected:
  void SetUp() override {
    MovieConfig config;
    config.num_movies = 400;
    data_ = GenerateMovie(config);
    auto stats = XmlStatistics::Collect(data_.doc, *data_.tree);
    ASSERT_TRUE(stats.ok()) << stats.status();
    stats_ = std::make_unique<XmlStatistics>(std::move(*stats));
    problem_.tree = data_.tree.get();
    problem_.stats = stats_.get();
    auto mapping = Mapping::Build(*data_.tree);
    ASSERT_TRUE(mapping.ok());
    problem_.storage_bound_pages =
        stats_->DeriveCatalog(*data_.tree, *mapping).DataPages() * 6 + 1024;
    WorkloadSpec spec;
    spec.num_queries = 4;
    spec.seed = 11;
    auto workload = GenerateWorkload(*data_.tree, *stats_, spec);
    ASSERT_TRUE(workload.ok()) << workload.status();
    problem_.workload = std::move(*workload);
  }

  Result<SearchResult> RunGreedy(int64_t work_units,
                                 const GreedyOptions& options = {}) {
    ResourceLimits limits;
    limits.work_units = work_units;
    ResourceGovernor governor(limits);
    problem_.governor = &governor;
    auto result = GreedySearch(problem_, options);
    problem_.governor = nullptr;
    return result;
  }

  GeneratedData data_;
  std::unique_ptr<XmlStatistics> stats_;
  DesignProblem problem_;
};

TEST_F(AnytimeSearchTest, TinyBudgetReturnsValidTruncatedDesign) {
  auto result = RunGreedy(1);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->truncated);
  EXPECT_FALSE(result->mapping.relations().empty());
  EXPECT_GT(result->telemetry.work_spent, 0);
  EXPECT_TRUE(std::isfinite(result->estimated_cost));
  EXPECT_GT(result->estimated_cost, 0);
  // The truncated design must still load the data and answer the workload.
  auto eval = EvaluateOnData(*result, data_.doc, problem_.workload);
  ASSERT_TRUE(eval.ok()) << eval.status();
  EXPECT_GT(eval->total_work, 0);
}

TEST_F(AnytimeSearchTest, CostMonotoneNonIncreasingInBudget) {
  // Exact costing keeps candidate and re-estimated costs identical, so
  // budget is the only variable across runs. Serial mode: which candidate
  // a truncated parallel round stops at is scheduling-dependent, and this
  // test is precisely about truncation points.
  GreedyOptions options;
  options.num_threads = 1;
  options.cost_derivation = false;
  options.merging = MergeStrategy::kNone;
  const int64_t budgets[] = {1, 20, 100, 1000, 1 << 20};
  double prev_cost = std::numeric_limits<double>::infinity();
  SearchResult last;
  for (int64_t budget : budgets) {
    auto result = RunGreedy(budget, options);
    ASSERT_TRUE(result.ok()) << "budget " << budget << ": "
                             << result.status();
    EXPECT_LE(result->estimated_cost, prev_cost * (1 + 1e-9))
        << "budget " << budget;
    prev_cost = result->estimated_cost;
    last = std::move(*result);
  }
  // The largest budget is effectively unlimited: the search converges and
  // matches a run with no governor at all.
  EXPECT_FALSE(last.truncated);
  problem_.governor = nullptr;
  auto unbounded = GreedySearch(problem_, options);
  ASSERT_TRUE(unbounded.ok());
  EXPECT_NEAR(last.estimated_cost, unbounded->estimated_cost,
              1e-6 * unbounded->estimated_cost);
}

TEST_F(AnytimeSearchTest, TruncatedCostNeverBeatsUnbounded) {
  // Hybrid-or-better sanity: the converged greedy design is at least as
  // good as the hybrid-inlining baseline, and a truncated run is internally
  // consistent (its estimate matches a fresh mandatory costing).
  auto hybrid = EvaluateHybridInline(problem_);
  ASSERT_TRUE(hybrid.ok());
  auto converged = RunGreedy(1 << 20);
  ASSERT_TRUE(converged.ok());
  EXPECT_FALSE(converged->truncated);
  EXPECT_LE(converged->estimated_cost,
            hybrid->estimated_cost * (1 + 1e-9));
}

TEST_F(AnytimeSearchTest, NaiveGreedyHonoursBudget) {
  ResourceLimits limits;
  limits.work_units = 1;
  ResourceGovernor governor(limits);
  problem_.governor = &governor;
  auto result = NaiveGreedySearch(problem_);
  problem_.governor = nullptr;
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->truncated);
  EXPECT_FALSE(result->mapping.relations().empty());
  EXPECT_GT(result->telemetry.work_spent, 0);
}

TEST_F(AnytimeSearchTest, TwoStepHonoursBudget) {
  ResourceLimits limits;
  limits.work_units = 1;
  ResourceGovernor governor(limits);
  problem_.governor = &governor;
  auto result = TwoStepSearch(problem_);
  problem_.governor = nullptr;
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->truncated);
  EXPECT_FALSE(result->mapping.relations().empty());
}

TEST_F(AnytimeSearchTest, UnlimitedGovernorDoesNotTruncate) {
  ResourceGovernor governor;  // all limits unlimited
  problem_.governor = &governor;
  auto result = GreedySearch(problem_);
  problem_.governor = nullptr;
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_FALSE(result->truncated);
  EXPECT_GT(result->telemetry.work_spent, 0);
}

// --- Concurrency: the governor and fault injector are shared by worker
// threads costing candidates in parallel; charges must never be lost, the
// budget must trip exactly once, and exhaustion from a worker thread must
// still yield the anytime best-so-far design. ---

TEST(ResourceGovernorTest, ConcurrentChargesAreExact) {
  ResourceLimits limits;
  limits.work_units = 50;
  ResourceGovernor governor(limits);
  std::atomic<int> successes{0};
  ParallelFor(8, 800, [&](int) {
    if (governor.ChargeWork(1.0).ok()) successes++;
  });
  // Every charge is recorded (sticky exhaustion still meters), and the
  // mutex makes the running sum exact: precisely `work_units` charges can
  // observe a sum within budget, no matter how threads interleave.
  EXPECT_DOUBLE_EQ(governor.work_spent(), 800.0);
  EXPECT_EQ(successes.load(), 50);
  EXPECT_TRUE(governor.exhausted());
}

TEST(ResourceGovernorTest, ConcurrentRecursionDepthBalances) {
  ResourceLimits limits;
  limits.max_recursion_depth = 512;
  ResourceGovernor governor(limits);
  ParallelFor(8, 400, [&](int) {
    RecursionScope outer(&governor);
    EXPECT_TRUE(outer.status().ok());
    RecursionScope inner(&governor);
    EXPECT_TRUE(inner.status().ok());
  });
  // All scopes unwound: a fresh scope starts at depth 1 again.
  EXPECT_TRUE(governor.EnterRecursion().ok());
  governor.LeaveRecursion();
  EXPECT_GE(governor.max_depth_seen(), 2);
}

TEST(FaultInjectorTest, ConcurrentNthHitFiresExactlyOnce) {
  ScopedFaultInjection armed("mt.site", 100);
  std::atomic<int> fired{0};
  ParallelFor(8, 400, [&](int) {
    if (!FaultInjector::Global()->Check("mt.site").ok()) fired++;
  });
  EXPECT_EQ(fired.load(), 1);
  EXPECT_EQ(FaultInjector::Global()->faults_fired(), 1);
  EXPECT_EQ(FaultInjector::Global()->hits("mt.site"), 400);
}

TEST_F(AnytimeSearchTest, ParallelTinyBudgetReturnsValidTruncatedDesign) {
  // Budget exhaustion lands on a worker thread mid-round; the search must
  // still come back with the anytime best-so-far design, truncated set,
  // and no partial state (the result evaluates end to end).
  GreedyOptions options;
  options.num_threads = 4;
  auto result = RunGreedy(1, options);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->truncated);
  EXPECT_FALSE(result->mapping.relations().empty());
  EXPECT_GT(result->telemetry.work_spent, 0);
  auto eval = EvaluateOnData(*result, data_.doc, problem_.workload);
  ASSERT_TRUE(eval.ok()) << eval.status();
  EXPECT_GT(eval->total_work, 0);
}

TEST_F(AnytimeSearchTest, ParallelExhaustionNeverBeatsConverged) {
  // Mid-search budgets: whichever candidate the parallel round stops at,
  // the returned design is a fully costed intermediate state — never
  // better than the converged design, never invalid.
  problem_.governor = nullptr;
  auto converged = GreedySearch(problem_);
  ASSERT_TRUE(converged.ok()) << converged.status();
  for (int threads : {2, 8}) {
    for (int64_t budget : {5, 40, 200}) {
      GreedyOptions options;
      options.num_threads = threads;
      auto result = RunGreedy(budget, options);
      ASSERT_TRUE(result.ok()) << "threads=" << threads << " budget="
                               << budget << ": " << result.status();
      EXPECT_GE(result->estimated_cost,
                converged->estimated_cost * (1 - 1e-9))
          << "threads=" << threads << " budget=" << budget;
      EXPECT_FALSE(result->mapping.relations().empty());
      auto eval = EvaluateOnData(*result, data_.doc, problem_.workload);
      ASSERT_TRUE(eval.ok()) << eval.status();
    }
  }
}

TEST_F(AnytimeSearchTest, ParallelNaiveAndTwoStepHonourBudget) {
  for (int threads : {2, 8}) {
    NaiveOptions options;
    options.num_threads = threads;
    ResourceLimits limits;
    limits.work_units = 1;
    {
      ResourceGovernor governor(limits);
      problem_.governor = &governor;
      auto naive = NaiveGreedySearch(problem_, options);
      problem_.governor = nullptr;
      ASSERT_TRUE(naive.ok()) << naive.status();
      EXPECT_TRUE(naive->truncated);
      EXPECT_FALSE(naive->mapping.relations().empty());
    }
    {
      ResourceGovernor governor(limits);
      problem_.governor = &governor;
      auto two_step = TwoStepSearch(problem_, options);
      problem_.governor = nullptr;
      ASSERT_TRUE(two_step.ok()) << two_step.status();
      EXPECT_TRUE(two_step->truncated);
      EXPECT_FALSE(two_step->mapping.relations().empty());
    }
  }
}

TEST_F(AnytimeSearchTest, DeadlineTruncatesGreedy) {
  ResourceLimits limits;
  limits.wall_clock_seconds = 1e-9;  // expires immediately
  ResourceGovernor governor(limits);
  problem_.governor = &governor;
  auto result = GreedySearch(problem_);
  problem_.governor = nullptr;
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->truncated);
  EXPECT_FALSE(result->mapping.relations().empty());
}

}  // namespace
}  // namespace xmlshred
