// Cross-module integration tests: DTD-to-design pipeline, storage-bound
// behaviour, workload weighting, and determinism of the whole search.

#include <gtest/gtest.h>

#include "mapping/xml_stats.h"
#include "search/evaluate.h"
#include "search/greedy.h"
#include "workload/movie.h"
#include "xml/document.h"
#include "xml/dtd_parser.h"
#include "xml/xsd_parser.h"

namespace xmlshred {
namespace {

TEST(DtdPipelineTest, SearchOverDtdDerivedSchema) {
  constexpr const char* dtd = R"(
<!ELEMENT catalog (product*)>
<!ELEMENT product (name, price, category, review*, discount?)>
<!ELEMENT name (#PCDATA)>
<!ELEMENT price (#PCDATA)>
<!ELEMENT category (#PCDATA)>
<!ELEMENT review (#PCDATA)>
<!ELEMENT discount (#PCDATA)>
)";
  auto tree = ParseDtd(dtd);
  ASSERT_TRUE(tree.ok()) << tree.status();
  AssignDefaultAnnotations(tree->get());
  ASSERT_TRUE((*tree)->Validate().ok());

  // Synthesize a document.
  auto root = std::make_unique<XmlElement>("catalog");
  for (int i = 0; i < 1000; ++i) {
    XmlElement* product = root->AddChild("product");
    product->AddTextChild("name", "product_" + std::to_string(i));
    product->AddTextChild("price", std::to_string(10 + i % 90));
    product->AddTextChild("category", "cat_" + std::to_string(i % 12));
    for (int r = 0; r < i % 4; ++r) {
      product->AddTextChild("review", "review text " + std::to_string(r));
    }
    if (i % 3 == 0) product->AddTextChild("discount", "10%");
  }
  XmlDocument doc(std::move(root));

  auto stats = XmlStatistics::Collect(doc, **tree);
  ASSERT_TRUE(stats.ok()) << stats.status();

  auto q1 = ParseXPath("//product[category = 'cat_3']/(name | review)");
  auto q2 = ParseXPath("//product[price >= 90]/(name | discount)");
  ASSERT_TRUE(q1.ok());
  ASSERT_TRUE(q2.ok());

  DesignProblem problem;
  problem.tree = tree->get();
  problem.stats = &*stats;
  problem.workload = {*q1, *q2};
  problem.storage_bound_pages = 8192;

  auto result = GreedySearch(problem);
  ASSERT_TRUE(result.ok()) << result.status();
  auto eval = EvaluateOnData(*result, doc, problem.workload);
  ASSERT_TRUE(eval.ok()) << eval.status();
  EXPECT_GT(eval->total_work, 0);

  auto hybrid = EvaluateHybridInline(problem);
  ASSERT_TRUE(hybrid.ok());
  EXPECT_LE(result->estimated_cost, hybrid->estimated_cost * 1.001);
}

class MovieProblemTest : public ::testing::Test {
 protected:
  void SetUp() override {
    MovieConfig config;
    config.num_movies = 2500;
    data_ = GenerateMovie(config);
    auto stats = XmlStatistics::Collect(data_.doc, *data_.tree);
    ASSERT_TRUE(stats.ok());
    stats_ = std::make_unique<XmlStatistics>(std::move(*stats));
    problem_.tree = data_.tree.get();
    problem_.stats = stats_.get();
    auto q = ParseXPath("//movie[year >= 2000]/(title | aka_title)");
    ASSERT_TRUE(q.ok());
    problem_.workload = {*q};
    auto mapping = Mapping::Build(*data_.tree);
    ASSERT_TRUE(mapping.ok());
    data_pages_ =
        stats_->DeriveCatalog(*data_.tree, *mapping).DataPages();
    problem_.storage_bound_pages = data_pages_ * 4;
  }

  GeneratedData data_;
  std::unique_ptr<XmlStatistics> stats_;
  DesignProblem problem_;
  int64_t data_pages_ = 0;
};

TEST_F(MovieProblemTest, TightStorageBoundYieldsNoStructures) {
  // With a bound equal to the data size there is no room for any index or
  // view; every algorithm must still return a valid (structure-free)
  // design.
  problem_.storage_bound_pages = data_pages_;
  auto result = GreedySearch(problem_);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->configuration.structure_pages, 0);
  auto eval = EvaluateOnData(*result, data_.doc, problem_.workload);
  ASSERT_TRUE(eval.ok()) << eval.status();
  EXPECT_EQ(eval->structure_pages, 0);
}

TEST_F(MovieProblemTest, WeightsSteerTheDesign) {
  auto cheap = ParseXPath("//movie[year >= 2000]/(title)");
  auto rare = ParseXPath("//movie[title = 'movie_title_5']/(votes)");
  ASSERT_TRUE(cheap.ok());
  ASSERT_TRUE(rare.ok());
  XPathQuery heavy = *rare;
  heavy.weight = 10000.0;
  problem_.workload = {*cheap, heavy};
  auto result = GreedySearch(problem_);
  ASSERT_TRUE(result.ok()) << result.status();
  // The design must serve the heavily weighted title-equality query with
  // some structure on the movie relation's title column.
  bool title_structure = false;
  for (const IndexDesc& idx : result->configuration.indexes) {
    const MappedRelation* rel =
        result->mapping.FindRelation(idx.def.table);
    if (rel == nullptr) continue;
    TableSchema schema = rel->ToTableSchema();
    for (int c : idx.def.key_columns) {
      if (schema.columns[static_cast<size_t>(c)].name == "title") {
        title_structure = true;
      }
    }
  }
  for (const ViewDesc& view : result->configuration.views) {
    for (const SimplePred& pred : view.def.preds) {
      if (pred.column == "title") title_structure = true;
    }
  }
  EXPECT_TRUE(title_structure);
}

TEST_F(MovieProblemTest, SearchIsDeterministic) {
  auto a = GreedySearch(problem_);
  auto b = GreedySearch(problem_);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_DOUBLE_EQ(a->estimated_cost, b->estimated_cost);
  EXPECT_EQ(a->mapping.ToString(), b->mapping.ToString());
  EXPECT_EQ(a->telemetry.transformations_searched,
            b->telemetry.transformations_searched);
}

TEST_F(MovieProblemTest, AllAlgorithmsRespectTheBound) {
  for (int i = 0; i < 3; ++i) {
    Result<SearchResult> result =
        i == 0 ? GreedySearch(problem_)
        : i == 1 ? NaiveGreedySearch(problem_)
                 : TwoStepSearch(problem_);
    ASSERT_TRUE(result.ok()) << result.status();
    auto eval = EvaluateOnData(*result, data_.doc, problem_.workload);
    ASSERT_TRUE(eval.ok()) << eval.status();
    EXPECT_LE(eval->data_pages + eval->structure_pages,
              problem_.storage_bound_pages)
        << result->algorithm;
  }
}

}  // namespace
}  // namespace xmlshred
