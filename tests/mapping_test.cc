// Tests for the mapping layer: schema-tree -> relational mapping,
// transformations, shredding, and statistics derivation.

#include <gtest/gtest.h>

#include "mapping/mapping.h"
#include "mapping/shredder.h"
#include "mapping/transforms.h"
#include "mapping/xml_stats.h"
#include "workload/dblp.h"
#include "workload/movie.h"

namespace xmlshred {
namespace {

DblpConfig SmallDblp() {
  DblpConfig config;
  config.num_inproceedings = 2000;
  config.num_books = 200;
  return config;
}

MovieConfig SmallMovie() {
  MovieConfig config;
  config.num_movies = 2000;
  return config;
}

TEST(MappingTest, DblpDefaultMapping) {
  auto tree = BuildDblpSchemaTree();
  auto mapping = Mapping::Build(*tree);
  ASSERT_TRUE(mapping.ok()) << mapping.status();
  // dblp, inproc, inproc_author, title1, book, book_author.
  EXPECT_EQ(mapping->relations().size(), 6u);
  const MappedRelation* inproc = mapping->FindRelation("inproc");
  ASSERT_NE(inproc, nullptr);
  // title, booktitle, year, pages, cdrom, cite, editor, ee (author and
  // title1 live in their own relations).
  EXPECT_EQ(inproc->columns.size(), 8u);
  EXPECT_GE(inproc->FindMappedColumn("title"), 0);
  EXPECT_GE(inproc->FindMappedColumn("cdrom"), 0);
  EXPECT_EQ(inproc->FindMappedColumn("author"), -1);
  const MappedRelation* author = mapping->FindRelation("inproc_author");
  ASSERT_NE(author, nullptr);
  EXPECT_EQ(author->columns.size(), 1u);
  EXPECT_EQ(author->parent_tables, std::vector<std::string>{"inproc"});
  const MappedRelation* title1 = mapping->FindRelation("title1");
  ASSERT_NE(title1, nullptr);
  EXPECT_EQ(title1->parent_tables, std::vector<std::string>{"book"});
  // Optional columns are nullable; required ones are not.
  const MappedColumn& cdrom =
      inproc->columns[static_cast<size_t>(inproc->FindMappedColumn("cdrom"))];
  EXPECT_TRUE(cdrom.nullable);
  const MappedColumn& year =
      inproc->columns[static_cast<size_t>(inproc->FindMappedColumn("year"))];
  EXPECT_FALSE(year.nullable);
  EXPECT_EQ(year.type, ColumnType::kInt64);
}

TEST(MappingTest, MovieDefaultMappingChoiceColumnsNullable) {
  auto tree = BuildMovieSchemaTree();
  auto mapping = Mapping::Build(*tree);
  ASSERT_TRUE(mapping.ok()) << mapping.status();
  const MappedRelation* movie = mapping->FindRelation("movie");
  ASSERT_NE(movie, nullptr);
  int box = movie->FindMappedColumn("box_office");
  int seasons = movie->FindMappedColumn("seasons");
  ASSERT_GE(box, 0);
  ASSERT_GE(seasons, 0);
  EXPECT_TRUE(movie->columns[static_cast<size_t>(box)].nullable);
  EXPECT_TRUE(movie->columns[static_cast<size_t>(seasons)].nullable);
}

TEST(ShredderTest, DblpRoundTripCounts) {
  GeneratedData data = GenerateDblp(SmallDblp());
  auto mapping = Mapping::Build(*data.tree);
  ASSERT_TRUE(mapping.ok());
  Database db;
  auto stats = ShredDocument(data.doc, *data.tree, *mapping, &db);
  ASSERT_TRUE(stats.ok()) << stats.status();
  const Table* inproc = db.FindTable("inproc");
  ASSERT_NE(inproc, nullptr);
  EXPECT_EQ(inproc->row_count(), 2000);
  const Table* book = db.FindTable("book");
  ASSERT_NE(book, nullptr);
  EXPECT_EQ(book->row_count(), 200);
  const Table* authors = db.FindTable("inproc_author");
  ASSERT_NE(authors, nullptr);
  // Authors per publication averages > 1.
  EXPECT_GT(authors->row_count(), 2000);
  const Table* title1 = db.FindTable("title1");
  ASSERT_NE(title1, nullptr);
  EXPECT_EQ(title1->row_count(), 200);  // one per book

  // PID integrity: every author row references an inproc ID.
  int id_col = inproc->schema().id_column;
  std::set<int64_t> ids;
  for (const Row& row : inproc->MaterializeRows()) {
    ids.insert(row[static_cast<size_t>(id_col)].AsInt());
  }
  int pid_col = authors->schema().pid_column;
  for (const Row& row : authors->MaterializeRows()) {
    EXPECT_TRUE(ids.count(row[static_cast<size_t>(pid_col)].AsInt()) > 0);
  }
}

TEST(ShredderTest, MovieChoiceExclusivity) {
  GeneratedData data = GenerateMovie(SmallMovie());
  auto mapping = Mapping::Build(*data.tree);
  ASSERT_TRUE(mapping.ok());
  Database db;
  auto stats = ShredDocument(data.doc, *data.tree, *mapping, &db);
  ASSERT_TRUE(stats.ok()) << stats.status();
  const Table* movie = db.FindTable("movie");
  ASSERT_NE(movie, nullptr);
  EXPECT_EQ(movie->row_count(), 2000);
  const MappedRelation* rel = mapping->FindRelation("movie");
  int box = kFixedColumns + rel->FindMappedColumn("box_office");
  int seasons = kFixedColumns + rel->FindMappedColumn("seasons");
  for (const Row& row : movie->MaterializeRows()) {
    // Exactly one branch of the choice is set.
    EXPECT_NE(row[static_cast<size_t>(box)].is_null(),
              row[static_cast<size_t>(seasons)].is_null());
  }
}

TEST(TransformTest, RepetitionSplitAndMergeRoundTrip) {
  auto tree = BuildDblpSchemaTree();
  std::string before = tree->ToString();
  SchemaNode* author = tree->FindTagByName("author");
  SchemaNode* rep = author->parent();
  ASSERT_EQ(rep->kind(), SchemaNodeKind::kRepetition);

  Transform split;
  split.kind = TransformKind::kRepetitionSplit;
  split.target = rep->id();
  split.split_count = 5;
  auto rep_id = ApplyTransform(tree.get(), split);
  ASSERT_TRUE(rep_id.ok()) << rep_id.status();
  EXPECT_TRUE(tree->Validate().ok()) << tree->Validate();

  auto mapping = Mapping::Build(*tree);
  ASSERT_TRUE(mapping.ok()) << mapping.status();
  const MappedRelation* inproc = mapping->FindRelation("inproc");
  ASSERT_NE(inproc, nullptr);
  EXPECT_GE(inproc->FindMappedColumn("author_1"), 0);
  EXPECT_GE(inproc->FindMappedColumn("author_5"), 0);
  const MappedRelation* overflow = mapping->FindRelation("inproc_author");
  ASSERT_NE(overflow, nullptr);
  EXPECT_EQ(overflow->rep_overflow_from, 5);

  Transform merge;
  merge.kind = TransformKind::kRepetitionMerge;
  merge.target = *rep_id;
  ASSERT_TRUE(ApplyTransform(tree.get(), merge).ok());
  EXPECT_EQ(tree->ToString(), before);
}

TEST(TransformTest, RepetitionSplitShredding) {
  GeneratedData data = GenerateDblp(SmallDblp());
  SchemaNode* author = data.tree->FindTagByName("author");
  Transform split;
  split.kind = TransformKind::kRepetitionSplit;
  split.target = author->parent()->id();
  split.split_count = 5;
  ASSERT_TRUE(ApplyTransform(data.tree.get(), split).ok());

  auto mapping = Mapping::Build(*data.tree);
  ASSERT_TRUE(mapping.ok()) << mapping.status();
  Database db;
  auto stats = ShredDocument(data.doc, *data.tree, *mapping, &db);
  ASSERT_TRUE(stats.ok()) << stats.status();

  const Table* inproc = db.FindTable("inproc");
  const Table* overflow = db.FindTable("inproc_author");
  ASSERT_NE(inproc, nullptr);
  ASSERT_NE(overflow, nullptr);
  // ~99 % of pubs have <= 5 authors, so the overflow is nearly empty.
  EXPECT_LT(overflow->row_count(), inproc->row_count() / 4);
  EXPECT_GT(overflow->row_count(), 0);

  // Total author values must be preserved: inline non-nulls + overflow.
  const MappedRelation* rel = mapping->FindRelation("inproc");
  int64_t inline_authors = 0;
  for (int i = 1; i <= 5; ++i) {
    int col = rel->FindMappedColumn("author_" + std::to_string(i));
    ASSERT_GE(col, 0);
    for (const Row& row : inproc->MaterializeRows()) {
      if (!row[static_cast<size_t>(kFixedColumns + col)].is_null()) {
        ++inline_authors;
      }
    }
  }
  // Count authors in the raw document under inproceedings.
  int64_t doc_authors = 0;
  for (const auto& pub : data.doc.root()->children()) {
    if (pub->tag() == "inproceedings") {
      doc_authors +=
          static_cast<int64_t>(pub->FindChildren("author").size());
    }
  }
  EXPECT_EQ(inline_authors + overflow->row_count(), doc_authors);
}

TEST(TransformTest, ExplicitUnionDistributionAndFactorization) {
  GeneratedData data = GenerateMovie(SmallMovie());
  std::string before = data.tree->ToString();
  SchemaNode* box = data.tree->FindTagByName("box_office");
  SchemaNode* choice = box->parent();
  ASSERT_EQ(choice->kind(), SchemaNodeKind::kChoice);

  Transform dist;
  dist.kind = TransformKind::kUnionDistribute;
  dist.target = choice->id();
  auto choice_id = ApplyTransform(data.tree.get(), dist);
  ASSERT_TRUE(choice_id.ok()) << choice_id.status();
  ASSERT_TRUE(data.tree->Validate().ok()) << data.tree->Validate();

  auto mapping = Mapping::Build(*data.tree);
  ASSERT_TRUE(mapping.ok()) << mapping.status();
  // Two movie variants; the no-box_office variant drops that column.
  const MappedRelation* with_box = mapping->FindRelation("movie_box_office");
  const MappedRelation* with_seasons = mapping->FindRelation("movie_seasons");
  ASSERT_NE(with_box, nullptr);
  ASSERT_NE(with_seasons, nullptr);
  EXPECT_GE(with_box->FindMappedColumn("box_office"), 0);
  EXPECT_EQ(with_box->FindMappedColumn("seasons"), -1);
  EXPECT_GE(with_seasons->FindMappedColumn("seasons"), 0);
  EXPECT_EQ(with_seasons->FindMappedColumn("box_office"), -1);

  // Shred and verify the row split matches the generated TV fraction.
  Database db;
  auto stats = ShredDocument(data.doc, *data.tree, *mapping, &db);
  ASSERT_TRUE(stats.ok()) << stats.status();
  const Table* movies = db.FindTable("movie_box_office");
  const Table* tv = db.FindTable("movie_seasons");
  ASSERT_NE(movies, nullptr);
  ASSERT_NE(tv, nullptr);
  EXPECT_EQ(movies->row_count() + tv->row_count(), 2000);
  EXPECT_NEAR(static_cast<double>(tv->row_count()) / 2000.0, 0.3, 0.05);

  // Factorize restores the original tree exactly.
  Transform fact;
  fact.kind = TransformKind::kUnionFactorize;
  fact.target = *choice_id;
  ASSERT_TRUE(ApplyTransform(data.tree.get(), fact).ok());
  EXPECT_EQ(data.tree->ToString(), before);
}

TEST(TransformTest, ImplicitUnionDistribution) {
  GeneratedData data = GenerateMovie(SmallMovie());
  SchemaNode* rating = data.tree->FindTagByName("avg_rating");
  SchemaNode* option = rating->parent();
  ASSERT_EQ(option->kind(), SchemaNodeKind::kOption);

  Transform dist;
  dist.kind = TransformKind::kUnionDistribute;
  dist.target = option->id();
  dist.option_targets = {option->id()};
  auto id = ApplyTransform(data.tree.get(), dist);
  ASSERT_TRUE(id.ok()) << id.status();
  ASSERT_TRUE(data.tree->Validate().ok()) << data.tree->Validate();

  auto mapping = Mapping::Build(*data.tree);
  ASSERT_TRUE(mapping.ok()) << mapping.status();
  const MappedRelation* with_rating =
      mapping->FindRelation("movie_with_avg_rating");
  const MappedRelation* without =
      mapping->FindRelation("movie_no_avg_rating");
  ASSERT_NE(with_rating, nullptr);
  ASSERT_NE(without, nullptr);
  EXPECT_GE(with_rating->FindMappedColumn("avg_rating"), 0);
  EXPECT_EQ(without->FindMappedColumn("avg_rating"), -1);

  Database db;
  auto stats = ShredDocument(data.doc, *data.tree, *mapping, &db);
  ASSERT_TRUE(stats.ok()) << stats.status();
  const Table* has = db.FindTable("movie_with_avg_rating");
  const Table* none = db.FindTable("movie_no_avg_rating");
  EXPECT_EQ(has->row_count() + none->row_count(), 2000);
  EXPECT_NEAR(static_cast<double>(has->row_count()) / 2000.0, 0.6, 0.05);
  // Every row in the with-variant has a rating.
  int col = kFixedColumns + with_rating->FindMappedColumn("avg_rating");
  for (const Row& row : has->MaterializeRows()) {
    EXPECT_FALSE(row[static_cast<size_t>(col)].is_null());
  }
}

TEST(TransformTest, MergedImplicitUnionOverTwoOptions) {
  GeneratedData data = GenerateMovie(SmallMovie());
  SchemaNode* rating_opt = data.tree->FindTagByName("avg_rating")->parent();
  SchemaNode* votes_opt = data.tree->FindTagByName("votes")->parent();
  Transform dist;
  dist.kind = TransformKind::kUnionDistribute;
  dist.target = rating_opt->id();
  dist.option_targets = {rating_opt->id(), votes_opt->id()};
  ASSERT_TRUE(ApplyTransform(data.tree.get(), dist).ok());
  auto mapping = Mapping::Build(*data.tree);
  ASSERT_TRUE(mapping.ok()) << mapping.status();
  Database db;
  auto stats = ShredDocument(data.doc, *data.tree, *mapping, &db);
  ASSERT_TRUE(stats.ok()) << stats.status();
  const Table* has = db.FindTable("movie_with_avg_rating");
  const Table* none = db.FindTable("movie_no_avg_rating");
  ASSERT_NE(has, nullptr);
  ASSERT_NE(none, nullptr);
  // P(neither rating nor votes) = 0.4 * 0.5 = 0.2.
  EXPECT_NEAR(static_cast<double>(none->row_count()) / 2000.0, 0.2, 0.05);
}

TEST(TransformTest, TypeSplitAndMerge) {
  auto tree = BuildDblpSchemaTree();
  // Merge the two author types into one relation.
  auto authors = tree->FindTagsByName("author");
  ASSERT_EQ(authors.size(), 2u);
  Transform merge;
  merge.kind = TransformKind::kTypeMerge;
  merge.target = authors[0]->id();
  merge.target2 = authors[1]->id();
  ASSERT_TRUE(ApplyTransform(tree.get(), merge).ok());
  EXPECT_EQ(authors[0]->annotation(), authors[1]->annotation());
  auto mapping = Mapping::Build(*tree);
  ASSERT_TRUE(mapping.ok()) << mapping.status();
  const MappedRelation* merged =
      mapping->FindRelation(authors[0]->annotation());
  ASSERT_NE(merged, nullptr);
  EXPECT_EQ(merged->anchor_node_ids.size(), 2u);
  EXPECT_EQ(merged->parent_tables.size(), 2u);

  // Split them apart again.
  Transform split;
  split.kind = TransformKind::kTypeSplit;
  split.annotation = authors[0]->annotation();
  ASSERT_TRUE(ApplyTransform(tree.get(), split).ok());
  EXPECT_NE(authors[0]->annotation(), authors[1]->annotation());
}

TEST(TransformTest, DeepMergeOutlinesInlinedOccurrence) {
  auto tree = BuildDblpSchemaTree();
  // inproc's title is inlined; book's is annotated title1. Type merge must
  // outline the inlined one (deep merge, §4.3).
  auto titles = tree->FindTagsByName("title");
  ASSERT_EQ(titles.size(), 2u);
  Transform merge;
  merge.kind = TransformKind::kTypeMerge;
  merge.target = titles[0]->id();
  merge.target2 = titles[1]->id();
  ASSERT_TRUE(ApplyTransform(tree.get(), merge).ok());
  EXPECT_TRUE(titles[0]->is_annotated());
  EXPECT_EQ(titles[0]->annotation(), titles[1]->annotation());
  auto mapping = Mapping::Build(*tree);
  ASSERT_TRUE(mapping.ok()) << mapping.status();
}

TEST(TransformTest, InlineAndOutline) {
  auto tree = BuildDblpSchemaTree();
  SchemaNode* title1 = nullptr;
  for (SchemaNode* t : tree->FindTagsByName("title")) {
    if (t->annotation() == "title1") title1 = t;
  }
  ASSERT_NE(title1, nullptr);
  Transform inline_t;
  inline_t.kind = TransformKind::kInline;
  inline_t.target = title1->id();
  ASSERT_TRUE(ApplyTransform(tree.get(), inline_t).ok());
  auto mapping = Mapping::Build(*tree);
  ASSERT_TRUE(mapping.ok());
  // book now carries the title column inline.
  const MappedRelation* book = mapping->FindRelation("book");
  EXPECT_GE(book->FindMappedColumn("title"), 0);

  Transform outline;
  outline.kind = TransformKind::kOutline;
  outline.target = title1->id();
  ASSERT_TRUE(ApplyTransform(tree.get(), outline).ok());
  EXPECT_TRUE(title1->is_annotated());

  // Set-valued elements cannot be inlined.
  SchemaNode* author = tree->FindTagByName("author");
  Transform bad;
  bad.kind = TransformKind::kInline;
  bad.target = author->id();
  EXPECT_FALSE(ApplyTransform(tree.get(), bad).ok());
}

TEST(TransformTest, FullyInlineIsHybridInlining) {
  auto tree = BuildDblpSchemaTree();
  FullyInline(tree.get());
  auto mapping = Mapping::Build(*tree);
  ASSERT_TRUE(mapping.ok()) << mapping.status();
  // Hybrid inlining: dblp, inproc, inproc_author, book, book_author — the
  // outlined title1 collapses into book.
  EXPECT_EQ(mapping->relations().size(), 5u);
  const MappedRelation* book = mapping->FindRelation("book");
  ASSERT_NE(book, nullptr);
  EXPECT_GE(book->FindMappedColumn("title"), 0);
}

TEST(TransformTest, EnumerateTransformsCoversAllKinds) {
  GeneratedData data = GenerateMovie(SmallMovie());
  std::vector<Transform> transforms = EnumerateTransforms(*data.tree, 5);
  std::set<TransformKind> kinds;
  for (const Transform& t : transforms) kinds.insert(t.kind);
  EXPECT_TRUE(kinds.count(TransformKind::kUnionDistribute) > 0);
  EXPECT_TRUE(kinds.count(TransformKind::kRepetitionSplit) > 0);
  // Movie's annotated tags are all set-valued, so nothing is inlineable.
  EXPECT_EQ(kinds.count(TransformKind::kInline), 0u);

  auto dblp = BuildDblpSchemaTree();
  transforms = EnumerateTransforms(*dblp, 5);
  kinds.clear();
  for (const Transform& t : transforms) kinds.insert(t.kind);
  EXPECT_TRUE(kinds.count(TransformKind::kTypeMerge) > 0);
  EXPECT_TRUE(kinds.count(TransformKind::kOutline) > 0);
  EXPECT_TRUE(kinds.count(TransformKind::kInline) > 0);  // title1
}

class StatsDerivationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    data_ = GenerateMovie(SmallMovie());
    auto stats = XmlStatistics::Collect(data_.doc, *data_.tree);
    ASSERT_TRUE(stats.ok()) << stats.status();
    stats_ = std::make_unique<XmlStatistics>(std::move(*stats));
  }

  // Shreds the current tree and compares derived vs exact statistics.
  void CheckDerivedAgainstExact(double row_tolerance) {
    auto mapping = Mapping::Build(*data_.tree);
    ASSERT_TRUE(mapping.ok()) << mapping.status();
    Database db;
    auto shred = ShredDocument(data_.doc, *data_.tree, *mapping, &db);
    ASSERT_TRUE(shred.ok()) << shred.status();
    for (const MappedRelation& rel : mapping->relations()) {
      TableStats derived = stats_->DeriveTableStats(*data_.tree, rel);
      const Table* table = db.FindTable(rel.table_name);
      ASSERT_NE(table, nullptr);
      EXPECT_NEAR(static_cast<double>(derived.row_count),
                  static_cast<double>(table->row_count()),
                  row_tolerance * static_cast<double>(table->row_count()) + 2)
          << rel.table_name;
      TableStats exact = table->ComputeStats();
      for (size_t c = 0; c < derived.columns.size(); ++c) {
        EXPECT_NEAR(
            static_cast<double>(derived.columns[c].non_null_count),
            static_cast<double>(exact.columns[c].non_null_count),
            row_tolerance * static_cast<double>(exact.row_count) + 2)
            << rel.table_name << " col " << c;
      }
    }
  }

  GeneratedData data_;
  std::unique_ptr<XmlStatistics> stats_;
};

TEST_F(StatsDerivationTest, DefaultMappingExact) {
  CheckDerivedAgainstExact(0.001);
}

TEST_F(StatsDerivationTest, AfterRepetitionSplit) {
  Transform split;
  split.kind = TransformKind::kRepetitionSplit;
  split.target = data_.tree->FindTagByName("aka_title")->parent()->id();
  split.split_count = 3;
  ASSERT_TRUE(ApplyTransform(data_.tree.get(), split).ok());
  CheckDerivedAgainstExact(0.001);
}

TEST_F(StatsDerivationTest, AfterExplicitUnionDistribution) {
  Transform dist;
  dist.kind = TransformKind::kUnionDistribute;
  dist.target = data_.tree->FindTagByName("box_office")->parent()->id();
  ASSERT_TRUE(ApplyTransform(data_.tree.get(), dist).ok());
  // Variant row counts are exact (from presence combos); per-column
  // presence within a variant is approximated.
  CheckDerivedAgainstExact(0.05);
}

TEST_F(StatsDerivationTest, AfterImplicitUnionDistribution) {
  SchemaNode* option = data_.tree->FindTagByName("avg_rating")->parent();
  Transform dist;
  dist.kind = TransformKind::kUnionDistribute;
  dist.target = option->id();
  dist.option_targets = {option->id()};
  ASSERT_TRUE(ApplyTransform(data_.tree.get(), dist).ok());
  CheckDerivedAgainstExact(0.05);
}

TEST_F(StatsDerivationTest, ValueDistributionsSurvive) {
  auto mapping = Mapping::Build(*data_.tree);
  ASSERT_TRUE(mapping.ok());
  const MappedRelation* movie = mapping->FindRelation("movie");
  TableStats derived = stats_->DeriveTableStats(*data_.tree, *movie);
  int year = kFixedColumns + movie->FindMappedColumn("year");
  const ColumnStats& year_stats = derived.columns[static_cast<size_t>(year)];
  // Uniform 1930..2004: selectivity of year >= 1990 is ~0.2.
  double sel = year_stats.RangeSelectivity(">=", Value::Int(1990));
  EXPECT_NEAR(sel, 15.0 / 75.0, 0.04);
  EXPECT_GT(year_stats.distinct_estimate, 50);
}

TEST_F(StatsDerivationTest, DeriveCatalogCoversAllRelations) {
  auto mapping = Mapping::Build(*data_.tree);
  ASSERT_TRUE(mapping.ok());
  CatalogDesc catalog = stats_->DeriveCatalog(*data_.tree, *mapping);
  EXPECT_EQ(catalog.tables.size(), mapping->relations().size());
  EXPECT_GT(catalog.DataPages(), 0);
}

TEST(XmlStatisticsTest, CardinalityHistogram) {
  GeneratedData data = GenerateDblp([] {
    DblpConfig c;
    c.num_inproceedings = 3000;
    c.num_books = 100;
    return c;
  }());
  auto stats = XmlStatistics::Collect(data.doc, *data.tree);
  ASSERT_TRUE(stats.ok());
  SchemaNode* author = data.tree->FindTagByName("author");
  const auto* hist = stats->CardinalityHist(author->parent()->origin_id());
  ASSERT_NE(hist, nullptr);
  int64_t total = 0, low = 0;
  for (const auto& [k, n] : *hist) {
    total += n;
    if (k <= 5) low += n;
  }
  EXPECT_EQ(total, 3000);
  // ~99 % of publications have <= 5 authors.
  EXPECT_GT(static_cast<double>(low) / static_cast<double>(total), 0.97);
}

TEST(XmlStatisticsTest, PresenceCombos) {
  GeneratedData data = GenerateMovie(SmallMovie());
  auto stats = XmlStatistics::Collect(data.doc, *data.tree);
  ASSERT_TRUE(stats.ok());
  SchemaNode* movie = data.tree->FindTagByName("movie");
  int64_t with_rating = stats->CountMatchingPresence(
      movie->origin_id(), {"avg_rating"}, {});
  EXPECT_NEAR(static_cast<double>(with_rating) / 2000.0, 0.6, 0.05);
  int64_t tv = stats->CountMatchingPresence(movie->origin_id(), {"seasons"},
                                            {"box_office"});
  EXPECT_NEAR(static_cast<double>(tv) / 2000.0, 0.3, 0.05);
  int64_t neither = stats->CountMatchingPresence(
      movie->origin_id(), {}, {"avg_rating", "votes"});
  EXPECT_NEAR(static_cast<double>(neither) / 2000.0, 0.2, 0.05);
}

}  // namespace
}  // namespace xmlshred
