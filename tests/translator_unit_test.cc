// Focused unit tests for the XPath translator's output metadata and
// canonicalization, plus translations under less common mappings.

#include <gtest/gtest.h>

#include "mapping/transforms.h"
#include "workload/dblp.h"
#include "workload/movie.h"
#include "xpath/translator.h"

namespace xmlshred {
namespace {

TEST(TranslatorUnitTest, OutputElementsLabelSlots) {
  auto tree = BuildDblpSchemaTree();
  FullyInline(tree.get());
  SchemaNode* author = nullptr;
  tree->Visit([&](SchemaNode* n) {
    if (n->annotation() == "inproc_author") author = n;
  });
  ASSERT_NE(author, nullptr);
  Transform split;
  split.kind = TransformKind::kRepetitionSplit;
  split.target = author->parent()->id();
  split.split_count = 3;
  ASSERT_TRUE(ApplyTransform(tree.get(), split).ok());
  auto mapping = Mapping::Build(*tree);
  ASSERT_TRUE(mapping.ok());
  auto query = ParseXPath("//inproceedings/(title | author)");
  ASSERT_TRUE(query.ok());
  auto translated = TranslateXPath(*query, *tree, *mapping);
  ASSERT_TRUE(translated.ok()) << translated.status();
  // Slots: ID, title, author x3 (occurrence columns).
  EXPECT_EQ(translated->output_elements,
            (std::vector<std::string>{"", "title", "author", "author",
                                      "author"}));
}

TEST(TranslatorUnitTest, CanonicalizeDropsNullsAndSorts) {
  TranslatedQuery query;
  query.output_elements = {"", "a", "b"};
  std::vector<Row> rows = {
      {Value::Int(2), Value::Str("x"), Value::Null()},
      {Value::Int(1), Value::Null(), Value::Int(7)},
  };
  std::vector<std::string> canonical = CanonicalizeResult(query, rows);
  ASSERT_EQ(canonical.size(), 2u);
  EXPECT_EQ(canonical[0], "1|b|7");
  EXPECT_EQ(canonical[1], "2|a|'x'");
}

TEST(TranslatorUnitTest, DuplicateValuesSurviveCanonicalization) {
  TranslatedQuery query;
  query.output_elements = {"", "a"};
  std::vector<Row> rows = {
      {Value::Int(1), Value::Str("same")},
      {Value::Int(1), Value::Str("same")},
  };
  EXPECT_EQ(CanonicalizeResult(query, rows).size(), 2u);
}

TEST(TranslatorUnitTest, TypeMergedChildRelation) {
  // After merging the author types, //book/(author) must join the merged
  // relation; PID filtering keeps only book authors.
  auto tree = BuildDblpSchemaTree();
  auto authors = tree->FindTagsByName("author");
  ASSERT_EQ(authors.size(), 2u);
  Transform merge;
  merge.kind = TransformKind::kTypeMerge;
  merge.target = authors[0]->id();
  merge.target2 = authors[1]->id();
  ASSERT_TRUE(ApplyTransform(tree.get(), merge).ok());
  auto mapping = Mapping::Build(*tree);
  ASSERT_TRUE(mapping.ok());
  auto query = ParseXPath("//book/(author)");
  ASSERT_TRUE(query.ok());
  auto translated = TranslateXPath(*query, *tree, *mapping);
  ASSERT_TRUE(translated.ok()) << translated.status();
  std::string sql = translated->sql.ToSql();
  EXPECT_NE(sql.find(authors[0]->annotation()), std::string::npos);
  EXPECT_NE(sql.find("t1.PID = t0.ID"), std::string::npos);
}

TEST(TranslatorUnitTest, VariantContextsYieldOneBlockSetEach) {
  auto tree = BuildMovieSchemaTree();
  SchemaNode* box = tree->FindTagByName("box_office");
  Transform dist;
  dist.kind = TransformKind::kUnionDistribute;
  dist.target = box->parent()->id();
  ASSERT_TRUE(ApplyTransform(tree.get(), dist).ok());
  auto mapping = Mapping::Build(*tree);
  ASSERT_TRUE(mapping.ok());

  // A query projecting both alternatives touches both variants.
  auto both = ParseXPath("//movie/(title | box_office | seasons)");
  ASSERT_TRUE(both.ok());
  auto translated = TranslateXPath(*both, *tree, *mapping);
  ASSERT_TRUE(translated.ok());
  EXPECT_EQ(translated->sql.blocks.size(), 2u);  // one inline block/variant

  // Selecting on box_office eliminates the seasons variant.
  auto one = ParseXPath("//movie[box_office >= 1]/(title)");
  ASSERT_TRUE(one.ok());
  translated = TranslateXPath(*one, *tree, *mapping);
  ASSERT_TRUE(translated.ok());
  EXPECT_EQ(translated->sql.blocks.size(), 1u);
  EXPECT_NE(translated->sql.ToSql().find("movie_box_office"),
            std::string::npos);
}

TEST(TranslatorUnitTest, OutlinedSelectionJoinsChildRelation) {
  auto tree = BuildDblpSchemaTree();
  FullyInline(tree.get());
  SchemaNode* booktitle = tree->FindTagByName("booktitle");
  Transform outline;
  outline.kind = TransformKind::kOutline;
  outline.target = booktitle->id();
  ASSERT_TRUE(ApplyTransform(tree.get(), outline).ok());
  auto mapping = Mapping::Build(*tree);
  ASSERT_TRUE(mapping.ok());
  auto query =
      ParseXPath("//inproceedings[booktitle = 'SIGMOD']/(title | year)");
  ASSERT_TRUE(query.ok());
  auto translated = TranslateXPath(*query, *tree, *mapping);
  ASSERT_TRUE(translated.ok()) << translated.status();
  std::string sql = translated->sql.ToSql();
  EXPECT_NE(sql.find("ts0.PID = t0.ID"), std::string::npos);
  EXPECT_NE(sql.find("booktitle = 'SIGMOD'"), std::string::npos);
}

TEST(TranslatorUnitTest, ProjectionOfContextNameItself) {
  // Projecting an element that only exists as child relations still
  // works with an anchor-level leaf (aka_title is its own relation).
  auto tree = BuildMovieSchemaTree();
  auto mapping = Mapping::Build(*tree);
  ASSERT_TRUE(mapping.ok());
  auto query = ParseXPath("//movie/(aka_title)");
  ASSERT_TRUE(query.ok());
  auto translated = TranslateXPath(*query, *tree, *mapping);
  ASSERT_TRUE(translated.ok()) << translated.status();
  bool has_child_block = false;
  for (const SelectBlock& block : translated->sql.blocks) {
    if (block.tables.size() == 2) has_child_block = true;
  }
  EXPECT_TRUE(has_child_block);
}

}  // namespace
}  // namespace xmlshred
