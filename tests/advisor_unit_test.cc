// Unit-level tests for advisor candidate generation and the translator's
// literal coercion.

#include <gtest/gtest.h>

#include <set>

#include "common/logging.h"
#include "mapping/shredder.h"
#include "sql/parser.h"
#include "tune/advisor.h"
#include "xml/dtd_parser.h"
#include "xml/xsd_parser.h"
#include "xpath/translator.h"

namespace xmlshred {
namespace {

CatalogDesc MakeCatalog(int rows) {
  Database db;
  TableSchema parent;
  parent.name = "t";
  parent.columns = {{"ID", ColumnType::kInt64, false},
                    {"PID", ColumnType::kInt64, true},
                    {"a", ColumnType::kInt64, true},
                    {"b", ColumnType::kString, true},
                    {"c", ColumnType::kInt64, true}};
  parent.id_column = 0;
  parent.pid_column = 1;
  auto result = db.CreateTable(parent);
  XS_CHECK_OK(result.status());
  for (int i = 0; i < rows; ++i) {
    (*result)->AppendRow({Value::Int(i), Value::Null(), Value::Int(i % 100),
                          Value::Str("s" + std::to_string(i % 37)),
                          Value::Int(i % 7)});
  }
  TableSchema child;
  child.name = "c";
  child.columns = {{"ID", ColumnType::kInt64, false},
                   {"PID", ColumnType::kInt64, true},
                   {"w", ColumnType::kString, true}};
  child.id_column = 0;
  child.pid_column = 1;
  auto cres = db.CreateTable(child);
  XS_CHECK_OK(cres.status());
  for (int i = 0; i < rows * 2; ++i) {
    (*cres)->AppendRow({Value::Int(100000 + i), Value::Int(i / 2),
                        Value::Str("w" + std::to_string(i))});
  }
  return db.BuildCatalogDesc();
}

WeightedQuery Parse(const std::string& sql) {
  auto q = ParseSql(sql);
  XS_CHECK_OK(q.status());
  return {std::move(*q), 1.0};
}

TEST(AdvisorUnitTest, RecommendedNamesAreUnique) {
  CatalogDesc catalog = MakeCatalog(20000);
  std::vector<WeightedQuery> workload = {
      Parse("SELECT b FROM t WHERE a = 5"),
      Parse("SELECT a, b FROM t WHERE a = 5 AND c = 3"),
      Parse("SELECT t.b, c.w FROM t, c WHERE t.ID = c.PID AND t.a = 9"),
  };
  PhysicalDesignAdvisor advisor(TunerOptions{});
  auto result = advisor.Tune(workload, catalog);
  ASSERT_TRUE(result.ok()) << result.status();
  std::set<std::string> names;
  for (const IndexDesc& idx : result->indexes) {
    EXPECT_TRUE(names.insert(idx.def.name).second) << idx.def.name;
  }
  for (const ViewDesc& view : result->views) {
    EXPECT_TRUE(names.insert(view.def.name).second) << view.def.name;
  }
}

TEST(AdvisorUnitTest, StructureSizesAreCountedAgainstBudget) {
  CatalogDesc catalog = MakeCatalog(20000);
  std::vector<WeightedQuery> workload = {
      Parse("SELECT b FROM t WHERE a = 5"),
  };
  TunerOptions options;
  options.storage_bound_pages = catalog.DataPages() * 100;
  PhysicalDesignAdvisor advisor(options);
  auto result = advisor.Tune(workload, catalog);
  ASSERT_TRUE(result.ok());
  int64_t pages = 0;
  for (const IndexDesc& idx : result->indexes) pages += idx.NumPages();
  for (const ViewDesc& view : result->views) pages += view.NumPages();
  EXPECT_EQ(pages, result->structure_pages);
}

TEST(AdvisorUnitTest, MoreWeightMoreStructuresForThatQuery) {
  CatalogDesc catalog = MakeCatalog(20000);
  // With overwhelming weight on the join query, some structure must serve
  // it (an index on c.PID or a join view).
  std::vector<WeightedQuery> workload = {
      Parse("SELECT b FROM t WHERE a = 5"),
      {ParseSql("SELECT t.b, c.w FROM t, c WHERE t.ID = c.PID AND t.a = 9")
           .TakeValue(),
       1000.0},
  };
  PhysicalDesignAdvisor advisor(TunerOptions{});
  auto result = advisor.Tune(workload, catalog);
  ASSERT_TRUE(result.ok());
  bool serves_join = false;
  for (const IndexDesc& idx : result->indexes) {
    if (idx.def.table == "c") serves_join = true;
  }
  for (const ViewDesc& view : result->views) {
    if (view.def.join_child.has_value()) serves_join = true;
  }
  EXPECT_TRUE(serves_join);
}

TEST(CoercionTest, NumericLiteralAgainstStringColumn) {
  // A DTD schema types everything as PCDATA (VARCHAR); a numeric XPath
  // literal must still select rows (coerced to a string comparison).
  constexpr const char* dtd = R"(
<!ELEMENT shelf (item*)>
<!ELEMENT item (label, qty)>
<!ELEMENT label (#PCDATA)>
<!ELEMENT qty (#PCDATA)>
)";
  auto tree = ParseDtd(dtd);
  ASSERT_TRUE(tree.ok());
  AssignDefaultAnnotations(tree->get());
  auto doc = ParseXml(
      "<shelf>"
      "<item><label>a</label><qty>5</qty></item>"
      "<item><label>b</label><qty>7</qty></item>"
      "</shelf>");
  ASSERT_TRUE(doc.ok());
  auto mapping = Mapping::Build(**tree);
  ASSERT_TRUE(mapping.ok());
  auto query = ParseXPath("//item[qty = 7]/(label)");
  ASSERT_TRUE(query.ok());
  auto translated = TranslateXPath(*query, **tree, *mapping);
  ASSERT_TRUE(translated.ok()) << translated.status();
  // The literal must have been coerced to the VARCHAR column's type.
  bool found_string_literal = false;
  for (const SelectBlock& block : translated->sql.blocks) {
    for (const FilterPred& filter : block.filters) {
      if (filter.column == "qty") {
        EXPECT_TRUE(filter.literal.is_string());
        EXPECT_EQ(filter.literal.AsString(), "7");
        found_string_literal = true;
      }
    }
  }
  EXPECT_TRUE(found_string_literal);
}

TEST(CoercionTest, StringLiteralAgainstNumericColumn) {
  auto tree = ParseXsd(R"(
<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
  <xs:element name="r" annotation="r">
    <xs:complexType><xs:sequence>
      <xs:element name="e" annotation="e" maxOccurs="unbounded">
        <xs:complexType><xs:sequence>
          <xs:element name="n" type="xs:integer"/>
        </xs:sequence></xs:complexType>
      </xs:element>
    </xs:sequence></xs:complexType>
  </xs:element>
</xs:schema>)");
  ASSERT_TRUE(tree.ok()) << tree.status();
  auto mapping = Mapping::Build(**tree);
  ASSERT_TRUE(mapping.ok());
  XPathQuery query;
  query.context = "e";
  query.has_selection = true;
  query.selection_path = "n";
  query.selection_op = "=";
  query.selection_literal = Value::Str("42");  // string against BIGINT
  query.projections = {"n"};
  auto translated = TranslateXPath(query, **tree, *mapping);
  ASSERT_TRUE(translated.ok()) << translated.status();
  for (const SelectBlock& block : translated->sql.blocks) {
    for (const FilterPred& filter : block.filters) {
      if (filter.column == "n") {
        EXPECT_TRUE(filter.literal.is_int());
        EXPECT_EQ(filter.literal.AsInt(), 42);
      }
    }
  }
}

}  // namespace
}  // namespace xmlshred
