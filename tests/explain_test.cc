// EXPLAIN / EXPLAIN ANALYZE and cost-model calibration (DESIGN.md §10):
// the explain tree mirrors the plan with the planner's estimates, the
// executor fills inclusive actuals with zero clock reads by default, the
// JSON export is deterministic and shares the trace exporter's
// zero-duration convention, and calibration q-errors land in the metrics
// registry and surface through RunReport.

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "common/logging.h"
#include "common/run_report.h"
#include "common/trace.h"
#include "exec/executor.h"
#include "exec/explain.h"
#include "opt/cost_model.h"
#include "opt/planner.h"
#include "rel/catalog.h"
#include "search/evaluate.h"
#include "search/greedy.h"
#include "sql/binder.h"
#include "sql/parser.h"
#include "workload/movie.h"
#include "workload/query_gen.h"

namespace xmlshred {
namespace {

class ExplainTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TableSchema schema;
    schema.name = "t";
    schema.columns = {{"ID", ColumnType::kInt64, false},
                      {"PID", ColumnType::kInt64, true},
                      {"k", ColumnType::kInt64, true},
                      {"payload", ColumnType::kString, true}};
    schema.id_column = 0;
    schema.pid_column = 1;
    auto result = db_.CreateTable(schema);
    ASSERT_TRUE(result.ok());
    for (int i = 0; i < 20000; ++i) {
      (*result)->AppendRow({Value::Int(i), Value::Null(),
                            Value::Int(i % 500),
                            Value::Str("payload_padding_string_" +
                                       std::to_string(i))});
    }
  }

  PlannedQuery PlanFor(const std::string& sql) {
    auto parsed = ParseSql(sql);
    XS_CHECK_OK(parsed.status());
    CatalogDesc catalog = db_.BuildCatalogDesc();
    auto bound = BindQuery(*parsed, catalog);
    XS_CHECK_OK(bound.status());
    auto planned = PlanQuery(*bound, catalog);
    XS_CHECK_OK(planned.status());
    return std::move(*planned);
  }

  // EXPLAIN ANALYZE one statement: plan, build the tree, execute with
  // recording, return {tree, per-query metrics}.
  std::pair<ExplainNode, ExecMetrics> Analyze(const std::string& sql,
                                              const ExecOptions& base = {}) {
    PlannedQuery planned = PlanFor(sql);
    ExplainNode tree = BuildExplainTree(*planned.root);
    ExecOptions options = base;
    options.explain = &tree;
    Executor executor(db_);
    ExecMetrics metrics;
    XS_CHECK_OK(executor.Run(*planned.root, &metrics, options).status());
    return {std::move(tree), metrics};
  }

  Database db_;
};

TEST_F(ExplainTest, BuildExplainTreeMirrorsPlanWithEstimates) {
  PlannedQuery planned = PlanFor("SELECT payload FROM t WHERE k = 3");
  ExplainNode tree = BuildExplainTree(*planned.root);
  // Project over a heap scan; estimates copied verbatim.
  EXPECT_EQ(tree.kind, "Project");
  ASSERT_EQ(tree.children.size(), 1u);
  EXPECT_EQ(tree.children[0].kind, "HeapScan");
  EXPECT_EQ(tree.children[0].object_name, "t");
  EXPECT_EQ(tree.est_cost, planned.root->est_cost);
  EXPECT_EQ(tree.children[0].est_rows, planned.root->children[0]->est_rows);
  // The filtered scan's page estimate is the encoded footprint discounted
  // by the zone-map block-skip survival term (40/20000 selectivity).
  EXPECT_DOUBLE_EQ(tree.children[0].est_pages,
                   static_cast<double>(db_.FindTable("t")->NumPages()) *
                       BlockSkipSurvival(40.0 / 20000.0));
  // Actuals untouched until a run fills them in.
  EXPECT_EQ(tree.actual_rows, 0);
  EXPECT_EQ(tree.actual_work, 0);
  // The annotated text rendering is the EXPLAIN surface.
  std::string text = planned.Explain();
  EXPECT_NE(text.find("Project"), std::string::npos);
  EXPECT_NE(text.find("HeapScan t"), std::string::npos);
  EXPECT_NE(text.find("pages="), std::string::npos);
}

TEST_F(ExplainTest, ActualsAreInclusiveAndMatchRunMetrics) {
  auto [tree, metrics] = Analyze("SELECT payload FROM t WHERE k = 3");
  // k = i % 500 over 20000 rows -> exactly 40 matches.
  EXPECT_EQ(tree.actual_rows, 40);
  ASSERT_EQ(tree.children.size(), 1u);
  EXPECT_EQ(tree.children[0].actual_rows, 40);
  // Root actuals are inclusive, so they equal the whole run's meter.
  EXPECT_EQ(tree.actual_work, metrics.work);
  EXPECT_EQ(tree.actual_pages,
            metrics.pages_sequential + metrics.pages_random);
  // The scan below did all the page work.
  EXPECT_EQ(tree.children[0].actual_pages, tree.actual_pages);
  // No clock reads without capture_timing.
  EXPECT_EQ(tree.wall_ns, 0);
  EXPECT_EQ(tree.children[0].wall_ns, 0);
}

TEST_F(ExplainTest, IndexPathActualsAreRandomPages) {
  IndexDef idx;
  idx.name = "ix";
  idx.table = "t";
  idx.key_columns = {2};
  idx.included_columns = {3};
  ASSERT_TRUE(db_.CreateIndex(idx).ok());
  auto [tree, metrics] = Analyze("SELECT payload FROM t WHERE k = 3");
  ASSERT_EQ(tree.children.size(), 1u);
  EXPECT_EQ(tree.children[0].kind, "IndexOnlyScan");
  EXPECT_EQ(metrics.pages_sequential, 0);
  EXPECT_EQ(tree.children[0].actual_pages, metrics.pages_random);
}

TEST_F(ExplainTest, CaptureTimingRecordsWallTime) {
  ExecOptions base;
  base.capture_timing = true;
  auto [tree, metrics] = Analyze("SELECT payload FROM t WHERE k = 3", base);
  (void)metrics;
  EXPECT_GT(tree.wall_ns, 0);
  // Parent (inclusive) >= child.
  ASSERT_EQ(tree.children.size(), 1u);
  EXPECT_GE(tree.wall_ns, tree.children[0].wall_ns);
}

TEST_F(ExplainTest, JsonDeterministicAndSharesZeroDurationConvention) {
  ExecOptions timed;
  timed.capture_timing = true;
  auto [with_timing, m1] = Analyze("SELECT payload FROM t WHERE k = 3",
                                   timed);
  auto [without_timing, m2] = Analyze("SELECT payload FROM t WHERE k = 3");
  (void)m1;
  (void)m2;
  // include_timing=false scrubs the only clock-dependent field, so a
  // timed and an untimed run export bit-identical documents.
  std::string scrubbed = ExplainToJson(with_timing, /*include_timing=*/false);
  EXPECT_EQ(scrubbed, ExplainToJson(without_timing, false));
  EXPECT_NE(scrubbed.find("\"wall_ns\": 0,"), std::string::npos);
  // The timed export preserves the value.
  EXPECT_NE(ExplainToJson(with_timing, /*include_timing=*/true), scrubbed);
  // One zero-duration convention shared with the trace exporter.
  EXPECT_EQ(RenderJsonDurationNs(1234.5, false), "0");
  EXPECT_EQ(RenderJsonDurationNs(1234.5, true), "1234.5");
}

TEST_F(ExplainTest, MismatchedTreeIsRejected) {
  PlannedQuery planned = PlanFor("SELECT payload FROM t WHERE k = 3");
  ExplainNode foreign;  // no children — does not mirror Project(HeapScan)
  ExecOptions options;
  options.explain = &foreign;
  Executor executor(db_);
  ExecMetrics metrics;
  auto result = executor.Run(*planned.root, &metrics, options);
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(ExplainTest, ExecMetricsPublishedToRegistry) {
  MetricsRegistry registry;
  ExecOptions options;
  options.metrics = &registry;
  auto [tree, metrics] = Analyze("SELECT payload FROM t WHERE k = 3",
                                 options);
  (void)tree;
  MetricsSnapshot snapshot = registry.Snapshot();
  EXPECT_EQ(snapshot.counters.at(kMetricExecQueries), 1);
  EXPECT_EQ(snapshot.counters.at(kMetricExecRowsOut), 40);
  EXPECT_EQ(snapshot.gauges.at(kMetricExecWork), metrics.work);
  EXPECT_EQ(snapshot.gauges.at(kMetricExecPagesSequential),
            metrics.pages_sequential);
  EXPECT_EQ(snapshot.histograms.at(kMetricExecRowsPerQuery).count, 1);
}

// The golden calibration claim: an unfiltered scan's estimates are exact
// — est_rows is the row count and est_cost prices exactly the pages and
// rows the executor charges — so every q-error is exactly 1.0, bit-exact.
TEST_F(ExplainTest, CalibrationGoldenExactScanQErrorIsOne) {
  auto [tree, metrics] = Analyze("SELECT k FROM t");
  (void)metrics;
  EXPECT_EQ(QError(tree.est_rows, static_cast<double>(tree.actual_rows)),
            1.0);
  EXPECT_EQ(QError(tree.est_cost, tree.actual_work), 1.0);
  EXPECT_EQ(QError(tree.est_pages, tree.actual_pages), 1.0);

  MetricsRegistry registry;
  ObserveCalibration(tree, &registry);
  MetricsSnapshot snapshot = registry.Snapshot();
  EXPECT_EQ(snapshot.counters.at(kMetricCalibrationQueries), 1);
  // Every observation was exactly 1.0: sum == count in each histogram.
  for (const char* name :
       {kMetricCalibrationCostQError, kMetricCalibrationPagesQError}) {
    const HistogramSnapshot& h = snapshot.histograms.at(name);
    EXPECT_EQ(h.count, 1) << name;
    EXPECT_EQ(h.sum, 1.0) << name;
  }
  const HistogramSnapshot& heap = snapshot.histograms.at(
      std::string(kMetricCalibrationRowsQErrorPrefix) + "HeapScan");
  EXPECT_EQ(heap.count, 1);
  EXPECT_EQ(heap.sum, 1.0);
  const HistogramSnapshot& project = snapshot.histograms.at(
      std::string(kMetricCalibrationRowsQErrorPrefix) + "Project");
  EXPECT_EQ(project.count, 1);
  EXPECT_EQ(project.sum, 1.0);
}

TEST_F(ExplainTest, RunReportCarriesCalibrationSection) {
  auto [tree, metrics] = Analyze("SELECT k FROM t");
  (void)metrics;
  MetricsRegistry registry;
  ObserveCalibration(tree, &registry);
  ObserveCalibration(tree, &registry);
  RunReport report = RunReportFromMetrics(registry.Snapshot(), "greedy");
  EXPECT_EQ(report.calibration.queries, 2);
  EXPECT_EQ(report.calibration.cost.count, 2);
  EXPECT_EQ(report.calibration.cost.mean, 1.0);
  // A 1.0 observation lands in the [1, 2) bucket, so the deterministic
  // "worst estimate below X" bound is 2.
  EXPECT_EQ(report.calibration.cost.max_bound, 2.0);
  // Kinds the run never executed are omitted; present ones sorted.
  ASSERT_EQ(report.calibration.operators.size(), 2u);
  EXPECT_EQ(report.calibration.operators[0].kind, "HeapScan");
  EXPECT_EQ(report.calibration.operators[1].kind, "Project");
  std::string json = report.ToJson();
  EXPECT_NE(json.find("\"calibration\""), std::string::npos);
  EXPECT_NE(json.find("\"cost_qerror\""), std::string::npos);
  EXPECT_NE(json.find("\"kind\": \"HeapScan\""), std::string::npos);
}

TEST(CalibrationKinds, ListMatchesPlanKinds) {
  // The pre-registered per-kind histogram family must cover exactly the
  // PlanKindToString values (metrics.h can't include opt/ headers).
  constexpr PlanKind kAll[] = {
      PlanKind::kHeapScan,    PlanKind::kIndexSeek,
      PlanKind::kIndexOnlyScan, PlanKind::kViewScan,
      PlanKind::kIndexNlJoin, PlanKind::kHashJoin,
      PlanKind::kProject,     PlanKind::kUnionAll,
      PlanKind::kSort,
  };
  EXPECT_EQ(std::size(kCalibrationOperatorKinds), std::size(kAll));
  for (PlanKind kind : kAll) {
    bool found = false;
    for (const char* name : kCalibrationOperatorKinds) {
      if (std::string(name) == PlanKindToString(kind)) found = true;
    }
    EXPECT_TRUE(found) << PlanKindToString(kind);
  }
}

// --- End to end through the advisor pipeline ---

class ExplainPipelineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    MovieConfig config;
    config.num_movies = 800;
    data_ = GenerateMovie(config);
    auto stats = XmlStatistics::Collect(data_.doc, *data_.tree);
    ASSERT_TRUE(stats.ok()) << stats.status();
    stats_ = std::make_unique<XmlStatistics>(std::move(*stats));
    problem_.tree = data_.tree.get();
    problem_.stats = stats_.get();
    auto mapping = Mapping::Build(*data_.tree);
    ASSERT_TRUE(mapping.ok());
    CatalogDesc catalog = stats_->DeriveCatalog(*data_.tree, *mapping);
    problem_.storage_bound_pages = catalog.DataPages() * 6 + 1024;
    WorkloadSpec spec;
    spec.num_queries = 4;
    spec.seed = 11;
    auto workload = GenerateWorkload(*data_.tree, *stats_, spec);
    ASSERT_TRUE(workload.ok()) << workload.status();
    problem_.workload = std::move(*workload);
  }

  GeneratedData data_;
  std::unique_ptr<XmlStatistics> stats_;
  DesignProblem problem_;
};

TEST_F(ExplainPipelineTest, EvaluateCollectsExplainsAndFeedsCalibration) {
  GreedyOptions options;
  options.num_threads = 1;
  auto result = GreedySearch(problem_, options);
  ASSERT_TRUE(result.ok()) << result.status();

  auto document_of = [&]() {
    MetricsRegistry registry;
    ExecContext exec;
    exec.metrics = &registry;
    EvaluateOptions eval_options;
    eval_options.collect_explain = true;
    auto eval = EvaluateOnData(*result, data_.doc, problem_.workload, exec,
                               eval_options);
    EXPECT_TRUE(eval.ok()) << eval.status();
    EXPECT_EQ(eval->explains.size(), problem_.workload.size());
    // Every executed query fed the calibration histograms.
    MetricsSnapshot snapshot = registry.Snapshot();
    EXPECT_EQ(snapshot.counters.at(kMetricCalibrationQueries),
              static_cast<int64_t>(problem_.workload.size()));
    EXPECT_EQ(
        snapshot.histograms.at(kMetricCalibrationCostQError).count,
        static_cast<int64_t>(problem_.workload.size()));
    return ExplainDocumentToJson(eval->explains, /*include_timing=*/false);
  };
  std::string first = document_of();
  EXPECT_NE(first.find("\"schema_version\": 1"), std::string::npos);
  EXPECT_NE(first.find("\"queries\""), std::string::npos);
  // Evaluation is serial and the document carries no clock values, so a
  // repeat run is bit-identical.
  EXPECT_EQ(first, document_of());
}

}  // namespace
}  // namespace xmlshred
