// Property tests for block-encoded columnar storage (DESIGN.md §14).
//
//  * Encoding round-trip: EncodeBlock -> DecodeBlock is bit-exact for
//    randomized tag+slot vectors drawn from generators biased toward
//    every encoding (runs, packable ints, dictionary codes, mixed tags),
//    with the PR 7 shrinking discipline: a failing vector is minimized
//    by dropping cells while the mismatch persists before reporting.
//  * Zone-map soundness: a block that contains a cell satisfying a probe
//    is never skippable (ZoneCanMatch may over-approximate, never
//    under-approximate).
//  * Pruning differential: encoded vs. forced-plain reads produce
//    bit-identical rows, ExecMetrics, EXPLAIN actuals, and metrics
//    registry digests at threads {1, 4} and both scan flavors, while
//    zone maps demonstrably skip blocks; governor trip points agree to
//    the work unit.

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <string>
#include <vector>

#include "common/limits.h"
#include "common/metrics.h"
#include "common/rng.h"
#include "exec/executor.h"
#include "exec/explain.h"
#include "opt/planner.h"
#include "rel/catalog.h"
#include "rel/column_block.h"
#include "rel/column_reader.h"
#include "sql/binder.h"
#include "sql/parser.h"

namespace xmlshred {
namespace {

constexpr uint8_t kTagNull = static_cast<uint8_t>(CellTag::kNull);
constexpr uint8_t kTagInt = static_cast<uint8_t>(CellTag::kInt);
constexpr uint8_t kTagReal = static_cast<uint8_t>(CellTag::kReal);
constexpr uint8_t kTagStr = static_cast<uint8_t>(CellTag::kStr);

struct CellVec {
  std::vector<uint8_t> tags;
  std::vector<uint64_t> data;

  size_t size() const { return tags.size(); }
  void push(uint8_t tag, uint64_t bits) {
    tags.push_back(tag);
    data.push_back(bits);
  }
  void erase(size_t i) {
    tags.erase(tags.begin() + static_cast<long>(i));
    data.erase(data.begin() + static_cast<long>(i));
  }
};

// Generators biased toward each encoding. `style` cycles so every seed
// exercises all of them.
CellVec RandomCells(Rng* rng, int style, size_t n) {
  CellVec v;
  switch (style % 6) {
    case 0: {  // long runs of identical cells -> kRle
      while (v.size() < n) {
        uint8_t tag =
            static_cast<uint8_t>(rng->Uniform(0, 3));
        uint64_t bits = tag == kTagNull ? 0 : rng->Next64() % 1000;
        size_t run = static_cast<size_t>(rng->Uniform(1, 512));
        for (size_t i = 0; i < run && v.size() < n; ++i) v.push(tag, bits);
      }
      break;
    }
    case 1: {  // all-int, narrow range -> kBitPackInt
      int64_t base = rng->Uniform(-1000000, 1000000);
      int64_t span = rng->Uniform(0, 255);
      for (size_t i = 0; i < n; ++i) {
        v.push(kTagInt, static_cast<uint64_t>(
                            base + rng->Uniform(0, span)));
      }
      break;
    }
    case 2: {  // all-str, narrow code range -> kBitPackCode
      uint32_t base = static_cast<uint32_t>(rng->Uniform(0, 5000));
      uint32_t span = static_cast<uint32_t>(rng->Uniform(0, 63));
      for (size_t i = 0; i < n; ++i) {
        v.push(kTagStr,
               base + static_cast<uint32_t>(rng->Uniform(0, span)));
      }
      break;
    }
    case 3: {  // high-entropy ints (full 64-bit range) -> plain or rle
      for (size_t i = 0; i < n; ++i) v.push(kTagInt, rng->Next64());
      break;
    }
    case 4: {  // reals with signed zeros and NaNs mixed in
      for (size_t i = 0; i < n; ++i) {
        double d;
        switch (rng->Uniform(0, 5)) {
          case 0: d = 0.0; break;
          case 1: d = -0.0; break;
          case 2: d = std::nan(""); break;
          default: d = (rng->UniformDouble() - 0.5) * 1e9; break;
        }
        v.push(kTagReal, DoubleToCellBits(d));
      }
      break;
    }
    default: {  // fully mixed tags and payloads
      for (size_t i = 0; i < n; ++i) {
        uint8_t tag = static_cast<uint8_t>(rng->Uniform(0, 3));
        uint64_t bits = 0;
        if (tag == kTagInt) bits = rng->Next64();
        if (tag == kTagReal) {
          bits = DoubleToCellBits((rng->UniformDouble() - 0.5) * 1e6);
        }
        if (tag == kTagStr) {
          bits = static_cast<uint32_t>(rng->Uniform(0, 100000));
        }
        v.push(tag, bits);
      }
      break;
    }
  }
  return v;
}

// "" when encode->decode reproduces the cells bit-exactly, else a
// description of the first divergence.
std::string RoundTripFailure(const CellVec& v) {
  EncodedBlock block = EncodeBlock(v.tags.data(), v.data.data(), v.size());
  if (block.rows != v.size()) return "row count differs";
  std::vector<uint8_t> tags(v.size());
  std::vector<uint64_t> data(v.size());
  DecodeBlock(block, tags.data(), data.data());
  for (size_t i = 0; i < v.size(); ++i) {
    if (tags[i] != v.tags[i]) return "tag " + std::to_string(i);
    if (data[i] != v.data[i]) return "data " + std::to_string(i);
  }
  return "";
}

class RoundTripTest : public ::testing::TestWithParam<int> {};

TEST_P(RoundTripTest, EncodeDecodeIsBitExact) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 7919 + 3);
  for (int iter = 0; iter < 24; ++iter) {
    size_t n = static_cast<size_t>(
        rng.Uniform(1, static_cast<int64_t>(kStorageBlockRows)));
    CellVec v = RandomCells(&rng, iter, n);
    std::string failure = RoundTripFailure(v);
    if (failure.empty()) continue;

    // Shrink: drop the first cell whose removal keeps the round trip
    // failing, until no single removal does.
    bool shrunk = true;
    while (shrunk && v.size() > 1) {
      shrunk = false;
      for (size_t i = 0; i < v.size(); ++i) {
        CellVec candidate = v;
        candidate.erase(i);
        if (!RoundTripFailure(candidate).empty()) {
          v = candidate;
          shrunk = true;
          break;
        }
      }
    }
    std::string repro;
    for (size_t i = 0; i < v.size() && i < 16; ++i) {
      repro += " (" + std::to_string(v.tags[i]) + "," +
               std::to_string(v.data[i]) + ")";
    }
    FAIL() << "round-trip divergence (" << failure << "), minimal "
           << v.size() << " cells:" << repro;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RoundTripTest, ::testing::Range(0, 8));

TEST(BlockEncodingTest, ChoosesCompactEncodingsAndNeverBeatsPlain) {
  Rng rng(42);
  // A constant all-int run is a width-0 bit-pack (smaller than RLE's
  // 11-byte run record); mixed-tag runs are where RLE wins.
  CellVec constant;
  for (size_t i = 0; i < kStorageBlockRows; ++i) constant.push(kTagInt, 7);
  EncodedBlock width0 = EncodeBlock(constant.tags.data(),
                                    constant.data.data(), constant.size());
  EXPECT_EQ(width0.encoding, BlockEncoding::kBitPackInt);
  EXPECT_LT(width0.bytes.size(), 64u);

  CellVec runs;
  for (size_t i = 0; i < kStorageBlockRows / 2; ++i) runs.push(kTagNull, 0);
  while (runs.size() < kStorageBlockRows) runs.push(kTagInt, 7);
  EncodedBlock rle = EncodeBlock(runs.tags.data(), runs.data.data(),
                                 runs.size());
  EXPECT_EQ(rle.encoding, BlockEncoding::kRle);
  EXPECT_LT(rle.bytes.size(), 64u);

  // Narrow-range ints: bit-packed far below the 9 bytes/cell plain image.
  CellVec ints = RandomCells(&rng, 1, kStorageBlockRows);
  EncodedBlock packed = EncodeBlock(ints.tags.data(), ints.data.data(),
                                    ints.size());
  EXPECT_EQ(packed.encoding, BlockEncoding::kBitPackInt);
  EXPECT_LT(packed.bytes.size(), 9 * kStorageBlockRows / 4);

  // Narrow-range codes: bit-packed dictionary codes.
  CellVec codes = RandomCells(&rng, 2, kStorageBlockRows);
  EncodedBlock coded = EncodeBlock(codes.tags.data(), codes.data.data(),
                                   codes.size());
  EXPECT_EQ(coded.encoding, BlockEncoding::kBitPackCode);

  // Whatever is chosen never exceeds the plain image (plain is always
  // applicable, and the chooser takes the smallest).
  for (int style = 0; style < 12; ++style) {
    CellVec v = RandomCells(&rng, style, 2048);
    EncodedBlock b = EncodeBlock(v.tags.data(), v.data.data(), v.size());
    EXPECT_LE(b.bytes.size(), 9 * v.size() + 16) << "style " << style;
  }
}

// Reference semantics of one probe against one cell.
bool CellSatisfies(const ZoneProbe& probe, uint8_t tag, uint64_t bits) {
  bool numeric = tag == kTagInt || tag == kTagReal;
  double num = numeric ? CellAsNumeric(Cell{tag, bits}) : 0;
  switch (probe.kind) {
    case ZoneProbe::Kind::kNone:
      return true;
    case ZoneProbe::Kind::kNever:
      return false;
    case ZoneProbe::Kind::kIsNotNull:
      return tag != kTagNull;
    case ZoneProbe::Kind::kNumEq:
      return numeric && num == probe.num;
    case ZoneProbe::Kind::kNumLt:
      return numeric && num < probe.num;
    case ZoneProbe::Kind::kNumLe:
      return numeric && num <= probe.num;
    case ZoneProbe::Kind::kNumGt:
      return numeric && num > probe.num;
    case ZoneProbe::Kind::kNumGe:
      return numeric && num >= probe.num;
    case ZoneProbe::Kind::kCodeEq:
      return tag == kTagStr && static_cast<uint32_t>(bits) == probe.code;
    case ZoneProbe::Kind::kHasStr:
      return tag == kTagStr;
  }
  return true;
}

class ZoneMapTest : public ::testing::TestWithParam<int> {};

TEST_P(ZoneMapTest, NeverSkipsAMatchingBlock) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 1299721 + 17);
  const ZoneProbe::Kind kKinds[] = {
      ZoneProbe::Kind::kIsNotNull, ZoneProbe::Kind::kNumEq,
      ZoneProbe::Kind::kNumLt,     ZoneProbe::Kind::kNumLe,
      ZoneProbe::Kind::kNumGt,     ZoneProbe::Kind::kNumGe,
      ZoneProbe::Kind::kCodeEq,    ZoneProbe::Kind::kHasStr};
  for (int iter = 0; iter < 32; ++iter) {
    CellVec v = RandomCells(&rng, iter, 512);
    ZoneMap zone = BuildZoneMap(v.tags.data(), v.data.data(), v.size());
    for (ZoneProbe::Kind kind : kKinds) {
      ZoneProbe probe;
      probe.kind = kind;
      // Literal drawn near the data so both outcomes occur.
      probe.num = static_cast<double>(rng.Uniform(-1000000, 1000000));
      probe.code = static_cast<uint32_t>(rng.Uniform(0, 5000));
      if (!v.tags.empty() && rng.Bernoulli(0.5)) {
        size_t pick = static_cast<size_t>(
            rng.Uniform(0, static_cast<int64_t>(v.size()) - 1));
        Cell c{v.tags[pick], v.data[pick]};
        if (c.tag == kTagInt || c.tag == kTagReal) {
          probe.num = CellAsNumeric(c);
        }
        if (c.tag == kTagStr) probe.code = static_cast<uint32_t>(c.bits);
      }
      bool any = false;
      for (size_t i = 0; i < v.size(); ++i) {
        if (CellSatisfies(probe, v.tags[i], v.data[i])) {
          any = true;
          break;
        }
      }
      if (any) {
        EXPECT_TRUE(ZoneCanMatch(zone, probe))
            << "skippable block contains a matching cell (probe kind "
            << static_cast<int>(kind) << ")";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ZoneMapTest, ::testing::Range(0, 6));

// ---------------------------------------------------------------------
// Pruning differential: encoded vs. plain, serial vs. 4 workers, scalar
// vs. vectorized — one observable bundle, bit-identical everywhere.

struct DiffFixture {
  Database db;

  DiffFixture() {
    TableSchema schema;
    schema.name = "blocks";
    schema.columns = {{"ID", ColumnType::kInt64, false},
                      {"PID", ColumnType::kInt64, true},
                      {"bucket", ColumnType::kInt64, true},
                      {"label", ColumnType::kString, true}};
    schema.id_column = 0;
    schema.pid_column = 1;
    auto table = db.CreateTable(schema);
    EXPECT_TRUE(table.ok());
    // 20000 rows = 4 sealed blocks + a 3616-row tail. `bucket` is
    // constant per block, so zone maps prune `bucket = 3` exactly.
    for (int64_t i = 0; i < 20000; ++i) {
      (*table)->AppendRow(
          {Value::Int(i), Value::Null(),
           Value::Int(i / static_cast<int64_t>(kStorageBlockRows)),
           Value::Str("v_" + std::to_string(i % 7))});
    }
  }

};

// The plan references the bound query, so both travel together.
struct PreparedQuery {
  BoundQuery bound;
  PlannedQuery planned;
};

PreparedQuery Prepare(const Database& db, const std::string& sql) {
  PreparedQuery out;
  auto parsed = ParseSql(sql);
  EXPECT_TRUE(parsed.ok()) << sql << ": " << parsed.status();
  CatalogDesc catalog = db.BuildCatalogDesc();
  auto bound = BindQuery(*parsed, catalog);
  EXPECT_TRUE(bound.ok()) << sql << ": " << bound.status();
  out.bound = std::move(*bound);
  auto planned = PlanQuery(out.bound, catalog);
  EXPECT_TRUE(planned.ok()) << sql << ": " << planned.status();
  out.planned = std::move(*planned);
  return out;
}

struct DiffRun {
  Status status = Status::OK();
  std::vector<Row> rows;
  ExecMetrics m;
  double governor_spent = 0;
  std::string explain_json;
  std::string metrics_json;
};

DiffRun RunConfig(const Database& db, const PlannedQuery& plan,
                  StorageReadMode mode, int threads, bool vectorized,
                  int64_t work_units = 0) {
  ResourceLimits limits;
  limits.work_units = work_units;
  ResourceGovernor governor(limits);
  MetricsRegistry registry;
  ExplainNode tree = BuildExplainTree(*plan.root);
  ExecOptions options;
  options.storage_read_mode = mode;
  options.exec_threads = threads;
  options.vectorized_scan = vectorized;
  options.governor = &governor;
  options.metrics = &registry;
  options.explain = &tree;
  Executor executor(db);
  DiffRun out;
  auto rows = executor.Run(*plan.root, &out.m, options);
  out.status = rows.status();
  if (rows.ok()) out.rows = std::move(*rows);
  out.governor_spent = governor.work_spent();
  out.explain_json = ExplainToJson(tree, /*include_timing=*/false);
  out.metrics_json = registry.Snapshot().ToJson();
  return out;
}

void ExpectIdentical(const DiffRun& a, const DiffRun& b,
                     const std::string& label) {
  EXPECT_EQ(a.status.code(), b.status.code()) << label;
  ASSERT_EQ(a.rows.size(), b.rows.size()) << label;
  RowTotalEquals eq;
  for (size_t i = 0; i < a.rows.size(); ++i) {
    ASSERT_TRUE(eq(a.rows[i], b.rows[i])) << label << " row " << i;
  }
  EXPECT_EQ(a.m.rows_out, b.m.rows_out) << label;
  EXPECT_DOUBLE_EQ(a.m.work, b.m.work) << label;
  EXPECT_DOUBLE_EQ(a.m.pages_sequential, b.m.pages_sequential) << label;
  EXPECT_DOUBLE_EQ(a.m.pages_random, b.m.pages_random) << label;
  EXPECT_EQ(a.m.blocks_scanned, b.m.blocks_scanned) << label;
  EXPECT_EQ(a.m.blocks_skipped, b.m.blocks_skipped) << label;
  EXPECT_DOUBLE_EQ(a.governor_spent, b.governor_spent) << label;
  EXPECT_EQ(a.explain_json, b.explain_json) << label;
  EXPECT_EQ(a.metrics_json, b.metrics_json) << label;
}

TEST(PruningDifferentialTest, EncodedAndPlainAgreeEverywhere) {
  DiffFixture f;
  PreparedQuery q =
      Prepare(f.db, "SELECT ID, label FROM blocks WHERE bucket = 3");
  const PlannedQuery& plan = q.planned;
  DiffRun reference = RunConfig(f.db, plan, StorageReadMode::kEncoded,
                                /*threads=*/1, /*vectorized=*/true);
  ASSERT_TRUE(reference.status.ok()) << reference.status;
  // The selective scan pruned the three sealed blocks whose constant
  // bucket refutes the predicate and returned exactly block 3.
  EXPECT_EQ(reference.m.rows_out, static_cast<int64_t>(kStorageBlockRows));
  EXPECT_EQ(reference.m.blocks_skipped, 3);
  EXPECT_EQ(reference.m.blocks_scanned, 2);  // block 3 + the tail
  EXPECT_NE(reference.explain_json.find("\"actual_blocks_skipped\": 3"),
            std::string::npos);

  for (StorageReadMode mode :
       {StorageReadMode::kEncoded, StorageReadMode::kPlain}) {
    for (int threads : {1, 4}) {
      for (bool vectorized : {true, false}) {
        std::string label =
            std::string(mode == StorageReadMode::kPlain ? "plain"
                                                        : "encoded") +
            " t" + std::to_string(threads) +
            (vectorized ? " vec" : " scalar");
        DiffRun run = RunConfig(f.db, plan, mode, threads, vectorized);
        ExpectIdentical(reference, run, label);
      }
    }
  }
}

TEST(PruningDifferentialTest, GovernorTripPointsAgree) {
  DiffFixture f;
  // Unselective scan (nothing pruned) under a budget that trips mid-run:
  // the trip must land on the same work unit in every configuration.
  PreparedQuery q = Prepare(f.db, "SELECT ID FROM blocks WHERE bucket >= 0");
  const PlannedQuery& plan = q.planned;
  DiffRun reference = RunConfig(f.db, plan, StorageReadMode::kEncoded,
                                /*threads=*/1, /*vectorized=*/true,
                                /*work_units=*/4);
  EXPECT_EQ(reference.status.code(), StatusCode::kResourceExhausted);
  for (StorageReadMode mode :
       {StorageReadMode::kEncoded, StorageReadMode::kPlain}) {
    for (int threads : {1, 4}) {
      for (bool vectorized : {true, false}) {
        std::string label =
            std::string(mode == StorageReadMode::kPlain ? "plain"
                                                        : "encoded") +
            " t" + std::to_string(threads) +
            (vectorized ? " vec" : " scalar") + " trip";
        DiffRun run =
            RunConfig(f.db, plan, mode, threads, vectorized,
                      /*work_units=*/4);
        ExpectIdentical(reference, run, label);
      }
    }
  }
}

}  // namespace
}  // namespace xmlshred
