// Test-only reference query evaluator: nested-loop cross products with
// predicate evaluation, no optimization, no indexes. Differential tests
// compare the optimized engine's results against this oracle as
// multisets.

#ifndef XMLSHRED_TESTS_REFERENCE_EXECUTOR_H_
#define XMLSHRED_TESTS_REFERENCE_EXECUTOR_H_

#include <algorithm>
#include <vector>

#include "common/logging.h"
#include "rel/catalog.h"
#include "sql/binder.h"

namespace xmlshred {

inline bool ReferenceEvalPred(const Value& v, const std::string& op,
                              const Value& literal) {
  if (op == "is not null") return !v.is_null();
  if (op == "=") return v.SqlEquals(literal);
  if (op == "<") return v.SqlLess(literal);
  if (op == "<=") return v.SqlLess(literal) || v.SqlEquals(literal);
  if (op == ">") return literal.SqlLess(v);
  if (op == ">=") return literal.SqlLess(v) || v.SqlEquals(literal);
  XS_CHECK(false);
  return false;
}

// Evaluates `query` by brute force. ORDER BY is ignored (compare results
// as multisets).
inline std::vector<Row> ReferenceExecute(const BoundQuery& query,
                                         const Database& db) {
  std::vector<Row> out;
  for (const BoundBlock& block : query.blocks) {
    std::vector<std::vector<Row>> tables;
    for (const std::string& name : block.tables) {
      const Table* table = db.FindTable(name);
      XS_CHECK(table != nullptr);
      tables.push_back(table->MaterializeRows());
    }
    // Recursive cross product.
    std::vector<const Row*> current(tables.size(), nullptr);
    std::function<void(size_t)> recurse = [&](size_t depth) {
      if (depth == tables.size()) {
        for (const BoundJoin& join : block.joins) {
          const Value& left =
              (*current[static_cast<size_t>(join.left.table_idx)])
                  [static_cast<size_t>(join.left.column)];
          const Value& right =
              (*current[static_cast<size_t>(join.right.table_idx)])
                  [static_cast<size_t>(join.right.column)];
          if (!left.SqlEquals(right)) return;
        }
        for (const BoundFilter& filter : block.filters) {
          const Value& v =
              (*current[static_cast<size_t>(filter.ref.table_idx)])
                  [static_cast<size_t>(filter.ref.column)];
          if (!ReferenceEvalPred(v, filter.op, filter.literal)) return;
        }
        Row row;
        row.reserve(block.items.size());
        for (const BoundItem& item : block.items) {
          if (item.is_null_literal) {
            row.push_back(Value::Null());
          } else {
            row.push_back((*current[static_cast<size_t>(item.ref.table_idx)])
                              [static_cast<size_t>(item.ref.column)]);
          }
        }
        out.push_back(std::move(row));
        return;
      }
      for (const Row& row : tables[depth]) {
        current[depth] = &row;
        recurse(depth + 1);
      }
    };
    recurse(0);
  }
  return out;
}

// Multiset comparison helper.
inline bool SameRowMultiset(std::vector<Row> a, std::vector<Row> b) {
  if (a.size() != b.size()) return false;
  std::sort(a.begin(), a.end(), RowTotalLess);
  std::sort(b.begin(), b.end(), RowTotalLess);
  RowTotalEquals eq;
  for (size_t i = 0; i < a.size(); ++i) {
    if (!eq(a[i], b[i])) return false;
  }
  return true;
}

}  // namespace xmlshred

#endif  // XMLSHRED_TESTS_REFERENCE_EXECUTOR_H_
