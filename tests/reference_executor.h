// Test-only reference query evaluator: nested-loop cross products with
// predicate evaluation, no optimization, no indexes. Differential tests
// compare the optimized engine's results against this oracle as
// multisets.

#ifndef XMLSHRED_TESTS_REFERENCE_EXECUTOR_H_
#define XMLSHRED_TESTS_REFERENCE_EXECUTOR_H_

#include <algorithm>
#include <vector>

#include "common/logging.h"
#include "rel/catalog.h"
#include "sql/binder.h"

namespace xmlshred {

inline bool ReferenceEvalPred(const Value& v, const std::string& op,
                              const Value& literal) {
  if (op == "is not null") return !v.is_null();
  if (op == "=") return v.SqlEquals(literal);
  if (op == "<") return v.SqlLess(literal);
  if (op == "<=") return v.SqlLess(literal) || v.SqlEquals(literal);
  if (op == ">") return literal.SqlLess(v);
  if (op == ">=") return literal.SqlLess(v) || v.SqlEquals(literal);
  XS_CHECK(false);
  return false;
}

// Value-level accumulator mirroring the engine's scalar aggregates.
// Caveat for differential tests: SUM over Real columns adds in row order
// here but in morsel-partial order in the engine, so floating-point SUM
// digests are only comparable on integer columns (where both sides are
// exact); COUNT/MIN/MAX compare on any type.
struct ReferenceAgg {
  int64_t count = 0;
  int64_t isum = 0;
  double dsum = 0;
  bool saw_real = false;
  bool saw_numeric = false;
  bool has_value = false;
  Value best;

  void Update(AggFunc func, const Value& v) {
    switch (func) {
      case AggFunc::kNone:
        break;
      case AggFunc::kCountStar:
        ++count;
        break;
      case AggFunc::kCount:
        if (!v.is_null()) ++count;
        break;
      case AggFunc::kSum:
        if (v.is_int()) {
          isum += v.AsInt();
          dsum += static_cast<double>(v.AsInt());
          saw_numeric = true;
        } else if (v.is_double()) {
          dsum += v.AsDouble();
          saw_real = true;
          saw_numeric = true;
        }
        break;
      case AggFunc::kMin:
      case AggFunc::kMax: {
        if (v.is_null()) break;
        bool better = !has_value || (func == AggFunc::kMin
                                         ? v.TotalLess(best)
                                         : best.TotalLess(v));
        if (better) best = v;
        has_value = true;
        break;
      }
    }
  }

  Value Finalize(AggFunc func) const {
    switch (func) {
      case AggFunc::kNone:
        break;
      case AggFunc::kCountStar:
      case AggFunc::kCount:
        return Value::Int(count);
      case AggFunc::kSum:
        if (!saw_numeric) return Value::Null();
        return saw_real ? Value::Real(dsum) : Value::Int(isum);
      case AggFunc::kMin:
      case AggFunc::kMax:
        return has_value ? best : Value::Null();
    }
    return Value::Null();
  }
};

// Evaluates `query` by brute force. ORDER BY is ignored (compare results
// as multisets).
inline std::vector<Row> ReferenceExecute(const BoundQuery& query,
                                         const Database& db) {
  std::vector<Row> out;
  for (const BoundBlock& block : query.blocks) {
    std::vector<std::vector<Row>> tables;
    for (const std::string& name : block.tables) {
      const Table* table = db.FindTable(name);
      XS_CHECK(table != nullptr);
      tables.push_back(table->MaterializeRows());
    }
    bool aggregated = false;
    for (const BoundItem& item : block.items) {
      if (!item.is_null_literal && item.agg != AggFunc::kNone) {
        aggregated = true;
      }
    }
    std::vector<ReferenceAgg> accs(block.items.size());
    // Recursive cross product.
    std::vector<const Row*> current(tables.size(), nullptr);
    std::function<void(size_t)> recurse = [&](size_t depth) {
      if (depth == tables.size()) {
        for (const BoundJoin& join : block.joins) {
          const Value& left =
              (*current[static_cast<size_t>(join.left.table_idx)])
                  [static_cast<size_t>(join.left.column)];
          const Value& right =
              (*current[static_cast<size_t>(join.right.table_idx)])
                  [static_cast<size_t>(join.right.column)];
          if (!left.SqlEquals(right)) return;
        }
        for (const BoundFilter& filter : block.filters) {
          const Value& v =
              (*current[static_cast<size_t>(filter.ref.table_idx)])
                  [static_cast<size_t>(filter.ref.column)];
          if (!ReferenceEvalPred(v, filter.op, filter.literal)) return;
        }
        if (aggregated) {
          for (size_t j = 0; j < block.items.size(); ++j) {
            const BoundItem& item = block.items[j];
            if (item.is_null_literal || item.agg == AggFunc::kNone) continue;
            Value v = item.agg == AggFunc::kCountStar
                          ? Value::Null()
                          : (*current[static_cast<size_t>(
                                item.ref.table_idx)])
                                [static_cast<size_t>(item.ref.column)];
            accs[j].Update(item.agg, v);
          }
          return;
        }
        Row row;
        row.reserve(block.items.size());
        for (const BoundItem& item : block.items) {
          if (item.is_null_literal) {
            row.push_back(Value::Null());
          } else {
            row.push_back((*current[static_cast<size_t>(item.ref.table_idx)])
                              [static_cast<size_t>(item.ref.column)]);
          }
        }
        out.push_back(std::move(row));
        return;
      }
      for (const Row& row : tables[depth]) {
        current[depth] = &row;
        recurse(depth + 1);
      }
    };
    recurse(0);
    if (aggregated) {
      Row row;
      row.reserve(block.items.size());
      for (size_t j = 0; j < block.items.size(); ++j) {
        const BoundItem& item = block.items[j];
        if (item.is_null_literal || item.agg == AggFunc::kNone) {
          row.push_back(Value::Null());
        } else {
          row.push_back(accs[j].Finalize(item.agg));
        }
      }
      out.push_back(std::move(row));
    }
  }
  return out;
}

// Multiset comparison helper.
inline bool SameRowMultiset(std::vector<Row> a, std::vector<Row> b) {
  if (a.size() != b.size()) return false;
  std::sort(a.begin(), a.end(), RowTotalLess);
  std::sort(b.begin(), b.end(), RowTotalLess);
  RowTotalEquals eq;
  for (size_t i = 0; i < a.size(); ++i) {
    if (!eq(a[i], b[i])) return false;
  }
  return true;
}

}  // namespace xmlshred

#endif  // XMLSHRED_TESTS_REFERENCE_EXECUTOR_H_
