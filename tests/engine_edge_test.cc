// Edge-case tests for the relational engine: empty relations, all-NULL
// columns, zero-result queries, NULL join keys, duplicate values, and
// plan shapes under degenerate statistics.

#include <gtest/gtest.h>

#include "exec/executor.h"
#include "opt/planner.h"
#include "rel/catalog.h"
#include "sql/binder.h"
#include "sql/parser.h"

namespace xmlshred {
namespace {

class EdgeFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    TableSchema parent;
    parent.name = "p";
    parent.columns = {{"ID", ColumnType::kInt64, false},
                      {"PID", ColumnType::kInt64, true},
                      {"v", ColumnType::kInt64, true},
                      {"s", ColumnType::kString, true}};
    parent.id_column = 0;
    parent.pid_column = 1;
    TableSchema child;
    child.name = "c";
    child.columns = {{"ID", ColumnType::kInt64, false},
                     {"PID", ColumnType::kInt64, true},
                     {"w", ColumnType::kString, true}};
    child.id_column = 0;
    child.pid_column = 1;
    auto p = db_.CreateTable(parent);
    ASSERT_TRUE(p.ok());
    auto c = db_.CreateTable(child);
    ASSERT_TRUE(c.ok());
    parent_ = *p;
    child_ = *c;
  }

  Result<std::vector<Row>> Run(const std::string& sql) {
    auto parsed = ParseSql(sql);
    if (!parsed.ok()) return parsed.status();
    CatalogDesc catalog = db_.BuildCatalogDesc();
    auto bound = BindQuery(*parsed, catalog);
    if (!bound.ok()) return bound.status();
    auto planned = PlanQuery(*bound, catalog);
    if (!planned.ok()) return planned.status();
    Executor executor(db_);
    ExecMetrics metrics;
    return executor.Run(*planned->root, &metrics);
  }

  Database db_;
  Table* parent_ = nullptr;
  Table* child_ = nullptr;
};

TEST_F(EdgeFixture, EmptyTableQueries) {
  auto rows = Run("SELECT v FROM p WHERE v = 1");
  ASSERT_TRUE(rows.ok()) << rows.status();
  EXPECT_TRUE(rows->empty());
  rows = Run("SELECT p.v, c.w FROM p, c WHERE p.ID = c.PID");
  ASSERT_TRUE(rows.ok());
  EXPECT_TRUE(rows->empty());
}

TEST_F(EdgeFixture, EmptyTableIndexAndStats) {
  IndexDef idx;
  idx.name = "i";
  idx.table = "p";
  idx.key_columns = {2};
  ASSERT_TRUE(db_.CreateIndex(idx).ok());
  EXPECT_EQ(db_.FindIndex("i")->entry_count(), 0);
  auto rows = Run("SELECT s FROM p WHERE v = 5");
  ASSERT_TRUE(rows.ok()) << rows.status();
  EXPECT_TRUE(rows->empty());
}

TEST_F(EdgeFixture, AllNullColumn) {
  for (int i = 0; i < 100; ++i) {
    parent_->AppendRow(
        {Value::Int(i), Value::Null(), Value::Null(), Value::Null()});
  }
  auto rows = Run("SELECT ID FROM p WHERE v = 1");
  ASSERT_TRUE(rows.ok());
  EXPECT_TRUE(rows->empty());
  rows = Run("SELECT ID FROM p WHERE v IS NOT NULL");
  ASSERT_TRUE(rows.ok());
  EXPECT_TRUE(rows->empty());
  TableStats stats = parent_->ComputeStats();
  EXPECT_EQ(stats.columns[2].non_null_count, 0);
  EXPECT_EQ(stats.columns[2].EqSelectivity(Value::Int(1)), 0.0);
}

TEST_F(EdgeFixture, NullJoinKeysNeverMatch) {
  parent_->AppendRow({Value::Int(1), Value::Null(), Value::Int(10),
                      Value::Str("a")});
  // Child rows with NULL PID must not join to anything.
  child_->AppendRow({Value::Int(100), Value::Null(), Value::Str("orphan")});
  child_->AppendRow({Value::Int(101), Value::Int(1), Value::Str("ok")});
  auto rows = Run("SELECT p.ID, c.w FROM p, c WHERE p.ID = c.PID");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_EQ((*rows)[0][1].AsString(), "ok");

  // Same through an index-nested-loop plan.
  IndexDef idx;
  idx.name = "c_pid";
  idx.table = "c";
  idx.key_columns = {1};
  idx.included_columns = {2};
  ASSERT_TRUE(db_.CreateIndex(idx).ok());
  rows = Run(
      "SELECT p.ID, c.w FROM p, c WHERE p.ID = c.PID AND p.v = 10");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 1u);
}

TEST_F(EdgeFixture, DuplicateKeyValuesInIndex) {
  for (int i = 0; i < 50; ++i) {
    parent_->AppendRow({Value::Int(i), Value::Null(), Value::Int(7),
                        Value::Str("dup")});
  }
  IndexDef idx;
  idx.name = "i";
  idx.table = "p";
  idx.key_columns = {2};
  ASSERT_TRUE(db_.CreateIndex(idx).ok());
  EXPECT_EQ(db_.FindIndex("i")->EqualLookup({Value::Int(7)}).size(), 50u);
  auto rows = Run("SELECT ID FROM p WHERE v = 7");
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 50u);
}

TEST_F(EdgeFixture, NumericStringComparisonSemantics) {
  parent_->AppendRow({Value::Int(1), Value::Null(), Value::Int(5),
                      Value::Str("5")});
  // Comparing a string column with an integer literal never matches
  // (typed SQL semantics, not coercion).
  auto rows = Run("SELECT ID FROM p WHERE s = 5");
  ASSERT_TRUE(rows.ok());
  EXPECT_TRUE(rows->empty());
  rows = Run("SELECT ID FROM p WHERE s = '5'");
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 1u);
  // And int column matches a double literal of equal value.
  rows = Run("SELECT ID FROM p WHERE v = 5.0");
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 1u);
}

TEST_F(EdgeFixture, OrderByStableAndNullsFirst) {
  parent_->AppendRow({Value::Int(3), Value::Null(), Value::Int(2),
                      Value::Str("b")});
  parent_->AppendRow({Value::Int(1), Value::Null(), Value::Null(),
                      Value::Str("a")});
  parent_->AppendRow({Value::Int(2), Value::Null(), Value::Int(1),
                      Value::Str("c")});
  auto rows = Run("SELECT v, ID FROM p ORDER BY 1");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 3u);
  EXPECT_TRUE((*rows)[0][0].is_null());  // NULLs first in total order
  EXPECT_EQ((*rows)[1][0].AsInt(), 1);
  EXPECT_EQ((*rows)[2][0].AsInt(), 2);
}

TEST_F(EdgeFixture, UnionAllWithEmptyBranch) {
  parent_->AppendRow({Value::Int(1), Value::Null(), Value::Int(10),
                      Value::Str("x")});
  auto rows = Run(
      "SELECT ID FROM p WHERE v = 10 UNION ALL SELECT ID FROM p WHERE "
      "v = 999 ORDER BY 1");
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 1u);
}

TEST_F(EdgeFixture, SelfJoinAliases) {
  parent_->AppendRow({Value::Int(1), Value::Null(), Value::Int(10),
                      Value::Str("x")});
  parent_->AppendRow({Value::Int(2), Value::Int(1), Value::Int(20),
                      Value::Str("y")});
  auto rows = Run(
      "SELECT a.ID, b.ID FROM p a, p b WHERE b.PID = a.ID");
  ASSERT_TRUE(rows.ok()) << rows.status();
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_EQ((*rows)[0][0].AsInt(), 1);
  EXPECT_EQ((*rows)[0][1].AsInt(), 2);
}

TEST_F(EdgeFixture, ViewOnEmptyBase) {
  ViewDef def;
  def.name = "v_empty";
  def.base_table = "p";
  def.preds = {{"p", "v", "=", Value::Int(1)}};
  def.projected = {{"p", "ID"}};
  ASSERT_TRUE(db_.CreateMaterializedView(def).ok());
  EXPECT_EQ(db_.FindTable("v_empty")->row_count(), 0);
  auto rows = Run("SELECT ID FROM p WHERE v = 1");
  ASSERT_TRUE(rows.ok());
  EXPECT_TRUE(rows->empty());
}

TEST(PlannerDegenerateTest, ZeroRowStatsDoNotCrash) {
  CatalogDesc catalog;
  TableDesc desc;
  desc.schema.name = "t";
  desc.schema.columns = {{"ID", ColumnType::kInt64, false},
                         {"x", ColumnType::kInt64, true}};
  desc.schema.id_column = 0;
  desc.stats.row_count = 0;
  desc.stats.columns.resize(2);
  catalog.tables["t"] = desc;
  auto parsed = ParseSql("SELECT x FROM t WHERE x >= 3");
  ASSERT_TRUE(parsed.ok());
  auto bound = BindQuery(*parsed, catalog);
  ASSERT_TRUE(bound.ok());
  auto planned = PlanQuery(*bound, catalog);
  ASSERT_TRUE(planned.ok()) << planned.status();
  EXPECT_GE(planned->est_cost, 0);
}

TEST(PlannerDegenerateTest, HypotheticalIndexUsedInPlanOnly) {
  // A hypothetical index can be planned with but obviously not executed;
  // the planner must pick it when beneficial.
  CatalogDesc catalog;
  TableDesc desc;
  desc.schema.name = "t";
  desc.schema.columns = {{"ID", ColumnType::kInt64, false},
                         {"x", ColumnType::kInt64, true},
                         {"y", ColumnType::kString, true}};
  desc.schema.id_column = 0;
  std::vector<Row> rows;
  for (int i = 0; i < 100000; ++i) {
    rows.push_back({Value::Int(i), Value::Int(i % 1000),
                    Value::Str("some long payload string here")});
  }
  desc.stats = BuildTableStats(rows, 3);
  catalog.tables["t"] = desc;
  IndexDesc idx;
  idx.def.name = "hyp";
  idx.def.table = "t";
  idx.def.key_columns = {1};
  idx.def.included_columns = {2};
  idx.hypothetical = true;
  idx.entry_count = 100000;
  idx.entry_bytes = 40;
  catalog.indexes.push_back(idx);

  auto parsed = ParseSql("SELECT y FROM t WHERE x = 5");
  ASSERT_TRUE(parsed.ok());
  auto bound = BindQuery(*parsed, catalog);
  ASSERT_TRUE(bound.ok());
  auto planned = PlanQuery(*bound, catalog);
  ASSERT_TRUE(planned.ok());
  EXPECT_EQ(planned->objects_used.count("hyp"), 1u);
}

}  // namespace
}  // namespace xmlshred
