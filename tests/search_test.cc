// End-to-end tests for the search algorithms (Greedy, Naive-Greedy,
// Two-Step) and their supporting machinery (workload generation,
// candidate selection/merging, cost derivation).

#include <gtest/gtest.h>

#include "exec/executor.h"
#include "mapping/shredder.h"
#include "opt/planner.h"
#include "search/candidates.h"
#include "search/evaluate.h"
#include "search/greedy.h"
#include "sql/binder.h"
#include "workload/dblp.h"
#include "workload/movie.h"
#include "workload/query_gen.h"
#include "xpath/translator.h"

namespace xmlshred {
namespace {

TEST(RepSplitCountTest, PaperRule) {
  // 99 % of parents at <= 5, tail to 20: split at 5.
  std::map<int64_t, int64_t> skewed = {{1, 200}, {2, 300}, {3, 250},
                                       {4, 170}, {5, 70},  {12, 7},
                                       {20, 3}};
  EXPECT_EQ(SelectRepetitionSplitCount(skewed, 5, 0.8), 5);
  // Uniform cardinality up to 100: no split.
  std::map<int64_t, int64_t> uniform;
  for (int64_t k = 1; k <= 100; ++k) uniform[k] = 10;
  EXPECT_EQ(SelectRepetitionSplitCount(uniform, 5, 0.8), 0);
  // Max cardinality below cmax: always split.
  std::map<int64_t, int64_t> tiny = {{1, 10}, {2, 5}, {3, 2}};
  int k = SelectRepetitionSplitCount(tiny, 5, 0.8);
  EXPECT_GT(k, 0);
  EXPECT_LE(k, 3);
  // Empty histogram: no split.
  EXPECT_EQ(SelectRepetitionSplitCount({}, 5, 0.8), 0);
}

class SearchFixture : public ::testing::Test {
 protected:
  void SetUpMovie(int64_t movies = 3000) {
    MovieConfig config;
    config.num_movies = movies;
    data_ = GenerateMovie(config);
    Init();
  }

  void SetUpDblp(int64_t pubs = 3000) {
    DblpConfig config;
    config.num_inproceedings = pubs;
    config.num_books = pubs / 10;
    data_ = GenerateDblp(config);
    Init();
  }

  void Init() {
    auto stats = XmlStatistics::Collect(data_.doc, *data_.tree);
    ASSERT_TRUE(stats.ok()) << stats.status();
    stats_ = std::make_unique<XmlStatistics>(std::move(*stats));
    problem_.tree = data_.tree.get();
    problem_.stats = stats_.get();
    // Generous bound: data plus room for structures, like the paper's
    // setting "enough space for all recommended indexes".
    auto mapping = Mapping::Build(*data_.tree);
    ASSERT_TRUE(mapping.ok());
    CatalogDesc catalog = stats_->DeriveCatalog(*data_.tree, *mapping);
    problem_.storage_bound_pages = catalog.DataPages() * 6 + 1024;
  }

  void UseWorkload(SelectivityClass sel, ProjectionClass proj, int n,
                   uint64_t seed = 11) {
    WorkloadSpec spec;
    spec.selectivity = sel;
    spec.projections = proj;
    spec.num_queries = n;
    spec.seed = seed;
    auto workload = GenerateWorkload(*data_.tree, *stats_, spec);
    ASSERT_TRUE(workload.ok()) << workload.status();
    problem_.workload = std::move(*workload);
  }

  GeneratedData data_;
  std::unique_ptr<XmlStatistics> stats_;
  DesignProblem problem_;
};

TEST_F(SearchFixture, WorkloadGeneratorHitsSelectivityTargets) {
  SetUpMovie();
  UseWorkload(SelectivityClass::kLow, ProjectionClass::kLow, 10);
  // Verify the realized selectivity of each query by executing it against
  // the hybrid mapping.
  auto hybrid_tree = data_.tree->Clone();
  FullyInline(hybrid_tree.get());
  auto mapping = Mapping::Build(*hybrid_tree);
  ASSERT_TRUE(mapping.ok());
  Database db;
  ASSERT_TRUE(ShredDocument(data_.doc, *hybrid_tree, *mapping, &db).ok());
  CatalogDesc catalog = db.BuildCatalogDesc();
  Executor executor(db);
  for (const XPathQuery& query : problem_.workload) {
    ASSERT_TRUE(query.has_selection);
    EXPECT_GE(query.projections.size(), 1u);
    EXPECT_LE(query.projections.size(), 4u);
    auto translated = TranslateXPath(query, *hybrid_tree, *mapping);
    ASSERT_TRUE(translated.ok()) << translated.status() << query.ToString();
    auto bound = BindQuery(translated->sql, catalog);
    ASSERT_TRUE(bound.ok());
    auto planned = PlanQuery(*bound, catalog);
    ASSERT_TRUE(planned.ok());
    ExecMetrics metrics;
    auto rows = executor.Run(*planned->root, &metrics);
    ASSERT_TRUE(rows.ok());
    // Distinct context instances in the answer (block 1 emits one row per
    // qualifying context).
    std::set<std::string> ids;
    for (const Row& row : *rows) ids.insert(row[0].ToString());
    double selectivity = static_cast<double>(ids.size()) / 3000.0;
    EXPECT_LE(selectivity, 0.25) << query.ToString();
  }
}

TEST_F(SearchFixture, WorkloadGeneratorHighClasses) {
  SetUpDblp();
  UseWorkload(SelectivityClass::kHigh, ProjectionClass::kHigh, 10);
  for (const XPathQuery& query : problem_.workload) {
    EXPECT_GE(query.projections.size(), 5u);
  }
}

TEST_F(SearchFixture, CandidateSelectionFindsPaperCandidates) {
  SetUpMovie();
  // A query like the paper's //movie[title = ...]/(aka_title|avg_rating):
  // expect a repetition split on aka_title and an implicit union on
  // avg_rating.
  XPathQuery query;
  query.context = "movie";
  query.has_selection = true;
  query.selection_path = "title";
  query.selection_op = "=";
  query.selection_literal = Value::Str("movie_title_1");
  query.projections = {"aka_title", "avg_rating"};
  problem_.workload = {query};

  auto tree = data_.tree->Clone();
  CandidateSet candidates =
      SelectCandidates(problem_, tree.get(), 5, 0.8, true);
  bool has_rep_split = false, has_implicit_union = false;
  for (const Transform& t : candidates.splits) {
    if (t.kind == TransformKind::kRepetitionSplit) has_rep_split = true;
    if (t.kind == TransformKind::kUnionDistribute &&
        !t.option_targets.empty()) {
      has_implicit_union = true;
    }
  }
  EXPECT_TRUE(has_rep_split);
  EXPECT_TRUE(has_implicit_union);
  // Queries touching box_office only: explicit union distribution.
  XPathQuery q2;
  q2.context = "movie";
  q2.projections = {"box_office"};
  problem_.workload = {q2};
  auto tree2 = data_.tree->Clone();
  CandidateSet c2 = SelectCandidates(problem_, tree2.get(), 5, 0.8, true);
  bool has_choice_dist = false;
  for (const Transform& t : c2.splits) {
    if (t.kind == TransformKind::kUnionDistribute && t.option_targets.empty()) {
      has_choice_dist = true;
    }
  }
  EXPECT_TRUE(has_choice_dist);
}

TEST_F(SearchFixture, ImplicitUnionBenefitModel) {
  SetUpMovie();
  SchemaNode* movie = data_.tree->FindTagByName("movie");
  // Q projects avg_rating: distribution over {avg_rating} confines it to
  // the present partition (40 % of rows saved).
  XPathQuery q;
  q.context = "movie";
  q.projections = {"avg_rating"};
  double benefit = ImplicitUnionBenefit(problem_, *data_.tree, movie->id(),
                                        {"avg_rating"}, q, 100.0);
  EXPECT_NEAR(benefit, 40.0, 6.0);
  // Q projecting votes is not confined by a rating-only distribution.
  XPathQuery q2;
  q2.context = "movie";
  q2.projections = {"votes"};
  EXPECT_EQ(ImplicitUnionBenefit(problem_, *data_.tree, movie->id(),
                                 {"avg_rating"}, q2, 100.0),
            0.0);
  // The merged {avg_rating, votes} distribution helps both queries
  // (the paper's c3 example).
  double b1 = ImplicitUnionBenefit(problem_, *data_.tree, movie->id(),
                                   {"avg_rating", "votes"}, q, 100.0);
  double b2 = ImplicitUnionBenefit(problem_, *data_.tree, movie->id(),
                                   {"avg_rating", "votes"}, q2, 100.0);
  EXPECT_GT(b1, 0);
  EXPECT_GT(b2, 0);
  // P(neither) = 0.4 * 0.5 = 0.2.
  EXPECT_NEAR(b1, 20.0, 5.0);
}

TEST_F(SearchFixture, GreedyBeatsHybridOnMovie) {
  SetUpMovie();
  UseWorkload(SelectivityClass::kLow, ProjectionClass::kLow, 8);
  auto hybrid = EvaluateHybridInline(problem_);
  ASSERT_TRUE(hybrid.ok()) << hybrid.status();
  auto greedy = GreedySearch(problem_);
  ASSERT_TRUE(greedy.ok()) << greedy.status();
  EXPECT_LE(greedy->estimated_cost, hybrid->estimated_cost * 1.001);

  // Measured execution agrees.
  auto hybrid_eval = EvaluateOnData(*hybrid, data_.doc, problem_.workload);
  ASSERT_TRUE(hybrid_eval.ok()) << hybrid_eval.status();
  auto greedy_eval = EvaluateOnData(*greedy, data_.doc, problem_.workload);
  ASSERT_TRUE(greedy_eval.ok()) << greedy_eval.status();
  EXPECT_LE(greedy_eval->total_work, hybrid_eval->total_work * 1.05);
}

TEST_F(SearchFixture, GreedyBeatsHybridOnDblp) {
  SetUpDblp();
  UseWorkload(SelectivityClass::kLow, ProjectionClass::kLow, 8);
  auto hybrid = EvaluateHybridInline(problem_);
  ASSERT_TRUE(hybrid.ok()) << hybrid.status();
  auto greedy = GreedySearch(problem_);
  ASSERT_TRUE(greedy.ok()) << greedy.status();
  EXPECT_LE(greedy->estimated_cost, hybrid->estimated_cost * 1.001);
  EXPECT_GT(greedy->telemetry.transformations_searched, 0);
}

TEST_F(SearchFixture, GreedySearchesFewerTransformationsThanNaive) {
  SetUpDblp(2000);
  UseWorkload(SelectivityClass::kLow, ProjectionClass::kLow, 6);
  auto greedy = GreedySearch(problem_);
  ASSERT_TRUE(greedy.ok()) << greedy.status();
  auto naive = NaiveGreedySearch(problem_);
  ASSERT_TRUE(naive.ok()) << naive.status();
  EXPECT_LT(greedy->telemetry.transformations_searched,
            naive->telemetry.transformations_searched);
  // Quality parity within a small factor (Fig. 4 shows near-identical
  // quality).
  auto greedy_eval = EvaluateOnData(*greedy, data_.doc, problem_.workload);
  auto naive_eval = EvaluateOnData(*naive, data_.doc, problem_.workload);
  ASSERT_TRUE(greedy_eval.ok());
  ASSERT_TRUE(naive_eval.ok());
  EXPECT_LT(greedy_eval->total_work, naive_eval->total_work * 1.5);
}

TEST_F(SearchFixture, TwoStepQualityNoBetterThanGreedy) {
  SetUpMovie(2000);
  UseWorkload(SelectivityClass::kLow, ProjectionClass::kLow, 6);
  auto greedy = GreedySearch(problem_);
  ASSERT_TRUE(greedy.ok()) << greedy.status();
  auto two_step = TwoStepSearch(problem_);
  ASSERT_TRUE(two_step.ok()) << two_step.status();
  auto greedy_eval = EvaluateOnData(*greedy, data_.doc, problem_.workload);
  auto two_step_eval =
      EvaluateOnData(*two_step, data_.doc, problem_.workload);
  ASSERT_TRUE(greedy_eval.ok()) << greedy_eval.status();
  ASSERT_TRUE(two_step_eval.ok()) << two_step_eval.status();
  EXPECT_LE(greedy_eval->total_work, two_step_eval->total_work * 1.1);
}

TEST_F(SearchFixture, CostDerivationPreservesQuality) {
  SetUpDblp(2000);
  UseWorkload(SelectivityClass::kLow, ProjectionClass::kLow, 8);
  GreedyOptions with;
  with.cost_derivation = true;
  GreedyOptions without;
  without.cost_derivation = false;
  auto a = GreedySearch(problem_, with);
  auto b = GreedySearch(problem_, without);
  ASSERT_TRUE(a.ok()) << a.status();
  ASSERT_TRUE(b.ok()) << b.status();
  // Derivation must actually fire and reduce optimizer effort.
  EXPECT_GT(a->telemetry.queries_derived, 0);
  EXPECT_LT(a->telemetry.optimizer_calls, b->telemetry.optimizer_calls);
  // Quality within a few percent (paper: <= 3 % of hybrid cost).
  auto ea = EvaluateOnData(*a, data_.doc, problem_.workload);
  auto eb = EvaluateOnData(*b, data_.doc, problem_.workload);
  ASSERT_TRUE(ea.ok());
  ASSERT_TRUE(eb.ok());
  EXPECT_LT(ea->total_work, eb->total_work * 1.15);
}

TEST_F(SearchFixture, MergingStrategiesQualityOrder) {
  SetUpMovie(2000);
  // Two queries, each touching a different optional element — the paper's
  // merging scenario.
  XPathQuery q1;
  q1.context = "movie";
  q1.has_selection = true;
  q1.selection_path = "avg_rating";
  q1.selection_op = ">=";
  q1.selection_literal = Value::Real(2.0);
  q1.projections = {"title", "avg_rating"};
  XPathQuery q2;
  q2.context = "movie";
  q2.has_selection = true;
  q2.selection_path = "votes";
  q2.selection_op = ">=";
  q2.selection_literal = Value::Int(100000);
  q2.projections = {"title", "votes"};
  problem_.workload = {q1, q2};

  GreedyOptions greedy_merge;
  greedy_merge.merging = MergeStrategy::kGreedy;
  GreedyOptions no_merge;
  no_merge.merging = MergeStrategy::kNone;
  GreedyOptions exhaustive;
  exhaustive.merging = MergeStrategy::kExhaustive;

  auto g = GreedySearch(problem_, greedy_merge);
  auto n = GreedySearch(problem_, no_merge);
  auto x = GreedySearch(problem_, exhaustive);
  ASSERT_TRUE(g.ok()) << g.status();
  ASSERT_TRUE(n.ok()) << n.status();
  ASSERT_TRUE(x.ok()) << x.status();
  // Exhaustive merging costs extra design-tool calls.
  EXPECT_GT(x->telemetry.tuner_calls, g->telemetry.tuner_calls);
  // Greedy merging lands near exhaustive quality (the paper reports
  // "about the same"; the heuristic model may give up a small margin).
  EXPECT_LE(g->estimated_cost, x->estimated_cost * 1.3);
  // And never does worse than not merging at all.
  EXPECT_LE(g->estimated_cost, n->estimated_cost * 1.05);
}

TEST_F(SearchFixture, SearchResultIsExecutableEndToEnd) {
  SetUpMovie(2000);
  UseWorkload(SelectivityClass::kHigh, ProjectionClass::kHigh, 5);
  auto greedy = GreedySearch(problem_);
  ASSERT_TRUE(greedy.ok()) << greedy.status();
  auto eval = EvaluateOnData(*greedy, data_.doc, problem_.workload);
  ASSERT_TRUE(eval.ok()) << eval.status();
  EXPECT_EQ(eval->per_query_work.size(), problem_.workload.size());
  EXPECT_GT(eval->total_work, 0);
  // Storage bound respected by construction.
  EXPECT_LE(eval->data_pages + eval->structure_pages,
            problem_.storage_bound_pages);
}

}  // namespace
}  // namespace xmlshred
