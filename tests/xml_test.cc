// Unit tests for XML parsing/serialization, the schema tree, and the XSD
// parser.

#include <gtest/gtest.h>

#include "common/exec_context.h"
#include "common/limits.h"
#include "common/metrics.h"
#include "xml/document.h"
#include "xml/parse_options.h"
#include "xml/schema_tree.h"
#include "xml/xsd_parser.h"

namespace xmlshred {
namespace {

TEST(XmlParserTest, SimpleDocument) {
  auto doc = ParseXml("<a><b>hello</b><c x=\"1\"/></a>");
  ASSERT_TRUE(doc.ok()) << doc.status();
  const XmlElement* root = doc->root();
  ASSERT_NE(root, nullptr);
  EXPECT_EQ(root->tag(), "a");
  ASSERT_EQ(root->children().size(), 2u);
  EXPECT_EQ(root->children()[0]->tag(), "b");
  EXPECT_EQ(root->children()[0]->text(), "hello");
  const std::string* attr = root->children()[1]->FindAttribute("x");
  ASSERT_NE(attr, nullptr);
  EXPECT_EQ(*attr, "1");
}

TEST(XmlParserTest, PrologCommentsEntities) {
  auto doc = ParseXml(
      "<?xml version=\"1.0\"?>\n<!-- hi -->\n"
      "<a><!-- inner --><b>x &amp; y &lt;z&gt;</b></a>");
  ASSERT_TRUE(doc.ok()) << doc.status();
  EXPECT_EQ(doc->root()->children()[0]->text(), "x & y <z>");
}

TEST(XmlParserTest, Errors) {
  EXPECT_FALSE(ParseXml("<a><b></a></b>").ok());
  EXPECT_FALSE(ParseXml("<a>").ok());
  EXPECT_FALSE(ParseXml("<a></a><b></b>").ok());
  EXPECT_FALSE(ParseXml("<a x=1></a>").ok());
  EXPECT_FALSE(ParseXml("").ok());
}

TEST(XmlParserTest, RoundTrip) {
  auto doc = ParseXml("<pub year=\"2000\"><title>A &amp; B</title></pub>");
  ASSERT_TRUE(doc.ok());
  std::string text = doc->ToXml();
  auto again = ParseXml(text);
  ASSERT_TRUE(again.ok()) << again.status() << "\n" << text;
  EXPECT_EQ(again->root()->children()[0]->text(), "A & B");
}

TEST(XmlElementTest, BuildersAndQueries) {
  XmlElement root("dblp");
  XmlElement* pub = root.AddChild("inproceedings");
  pub->AddTextChild("title", "t1");
  pub->AddTextChild("author", "a1");
  pub->AddTextChild("author", "a2");
  EXPECT_EQ(root.SubtreeSize(), 5);
  EXPECT_NE(pub->FindChild("title"), nullptr);
  EXPECT_EQ(pub->FindChildren("author").size(), 2u);
  EXPECT_EQ(pub->FindChild("nope"), nullptr);
}

// Builds the paper's Fig. 1b movie schema programmatically:
// movie(movie) -> title, year, aka_title*(aka), avg_rating?,
//                 (box_office | seasons)
std::unique_ptr<SchemaTree> BuildMovieTree() {
  auto tree = std::make_unique<SchemaTree>();
  auto root = tree->NewTag("movies");
  root->set_annotation("movies");
  auto root_seq = tree->NewNode(SchemaNodeKind::kSequence);
  auto rep = tree->NewNode(SchemaNodeKind::kRepetition);
  auto movie = tree->NewTag("movie");
  movie->set_annotation("movie");
  auto seq = tree->NewNode(SchemaNodeKind::kSequence);

  auto title = tree->NewTag("title");
  title->AddChild(tree->NewSimple(XsdBaseType::kString));
  seq->AddChild(std::move(title));
  auto year = tree->NewTag("year");
  year->AddChild(tree->NewSimple(XsdBaseType::kInt));
  seq->AddChild(std::move(year));

  auto aka_rep = tree->NewNode(SchemaNodeKind::kRepetition);
  auto aka = tree->NewTag("aka_title");
  aka->set_annotation("aka_title");
  aka->AddChild(tree->NewSimple(XsdBaseType::kString));
  aka_rep->AddChild(std::move(aka));
  seq->AddChild(std::move(aka_rep));

  auto opt = tree->NewNode(SchemaNodeKind::kOption);
  auto rating = tree->NewTag("avg_rating");
  rating->AddChild(tree->NewSimple(XsdBaseType::kDouble));
  opt->AddChild(std::move(rating));
  seq->AddChild(std::move(opt));

  auto choice = tree->NewNode(SchemaNodeKind::kChoice);
  auto box = tree->NewTag("box_office");
  box->AddChild(tree->NewSimple(XsdBaseType::kInt));
  choice->AddChild(std::move(box));
  auto seasons = tree->NewTag("seasons");
  seasons->AddChild(tree->NewSimple(XsdBaseType::kInt));
  choice->AddChild(std::move(seasons));
  seq->AddChild(std::move(choice));

  movie->AddChild(std::move(seq));
  rep->AddChild(std::move(movie));
  root_seq->AddChild(std::move(rep));
  root->AddChild(std::move(root_seq));
  tree->SetRoot(std::move(root));
  return tree;
}

TEST(SchemaTreeTest, MovieTreeValidates) {
  auto tree = BuildMovieTree();
  EXPECT_TRUE(tree->Validate().ok()) << tree->Validate();
}

TEST(SchemaTreeTest, NavigationHelpers) {
  auto tree = BuildMovieTree();
  SchemaNode* movie = tree->FindTagByName("movie");
  ASSERT_NE(movie, nullptr);
  SchemaNode* rating = tree->FindTagByName("avg_rating");
  ASSERT_NE(rating, nullptr);
  EXPECT_EQ(rating->NearestAnnotatedAncestor(), movie);
  EXPECT_TRUE(rating->UnderOption());
  EXPECT_FALSE(rating->UnderRepetition());
  SchemaNode* box = tree->FindTagByName("box_office");
  ASSERT_NE(box, nullptr);
  EXPECT_TRUE(box->UnderOption());  // choice implies optional presence
  SchemaNode* aka = tree->FindTagByName("aka_title");
  ASSERT_NE(aka, nullptr);
  EXPECT_TRUE(aka->UnderRepetition());
  SchemaNode* title = tree->FindTagByName("title");
  ASSERT_NE(title, nullptr);
  EXPECT_FALSE(title->UnderOption());
}

TEST(SchemaTreeTest, ClonePreservesIdsAndStructure) {
  auto tree = BuildMovieTree();
  SchemaNode* rating = tree->FindTagByName("avg_rating");
  ASSERT_NE(rating, nullptr);
  int id = rating->id();
  auto clone = tree->Clone();
  SchemaNode* clone_rating = clone->FindNode(id);
  ASSERT_NE(clone_rating, nullptr);
  EXPECT_EQ(clone_rating->name(), "avg_rating");
  EXPECT_NE(clone_rating, rating);  // distinct objects
  EXPECT_EQ(clone->ToString(), tree->ToString());
}

TEST(SchemaTreeTest, ValidationCatchesViolations) {
  // Set-valued element without annotation.
  auto tree = BuildMovieTree();
  tree->FindTagByName("aka_title")->set_annotation("");
  EXPECT_FALSE(tree->Validate().ok());

  // Unannotated root.
  auto tree2 = BuildMovieTree();
  tree2->root()->set_annotation("");
  EXPECT_FALSE(tree2->Validate().ok());
}

TEST(SchemaTreeTest, RemoveAndInsertChild) {
  auto tree = BuildMovieTree();
  SchemaNode* movie = tree->FindTagByName("movie");
  SchemaNode* seq = movie->child(0);
  size_t n = seq->num_children();
  auto removed = seq->RemoveChild(0);
  EXPECT_EQ(seq->num_children(), n - 1);
  EXPECT_EQ(removed->parent(), nullptr);
  seq->InsertChild(0, std::move(removed));
  EXPECT_EQ(seq->num_children(), n);
  EXPECT_EQ(seq->child(0)->parent(), seq);
  EXPECT_EQ(seq->ChildIndex(seq->child(2)), 2);
}

constexpr const char* kMovieXsd = R"(<?xml version="1.0"?>
<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
  <xs:element name="movies" annotation="movies">
    <xs:complexType>
      <xs:sequence>
        <xs:element name="movie" annotation="movie" minOccurs="0"
                    maxOccurs="unbounded">
          <xs:complexType>
            <xs:sequence>
              <xs:element name="title" type="xs:string"/>
              <xs:element name="year" type="xs:integer"/>
              <xs:element name="aka_title" type="xs:string"
                          annotation="aka_title"
                          minOccurs="0" maxOccurs="unbounded"/>
              <xs:element name="avg_rating" type="xs:double" minOccurs="0"/>
              <xs:choice>
                <xs:element name="box_office" type="xs:integer"/>
                <xs:element name="seasons" type="xs:integer"/>
              </xs:choice>
            </xs:sequence>
          </xs:complexType>
        </xs:element>
      </xs:sequence>
    </xs:complexType>
  </xs:element>
</xs:schema>)";

TEST(XsdParserTest, ParsesMovieSchema) {
  auto tree = ParseXsd(kMovieXsd);
  ASSERT_TRUE(tree.ok()) << tree.status();
  EXPECT_TRUE((*tree)->Validate().ok()) << (*tree)->Validate();
  SchemaNode* movie = (*tree)->FindTagByName("movie");
  ASSERT_NE(movie, nullptr);
  EXPECT_EQ(movie->annotation(), "movie");
  EXPECT_EQ(movie->parent()->kind(), SchemaNodeKind::kRepetition);
  SchemaNode* rating = (*tree)->FindTagByName("avg_rating");
  ASSERT_NE(rating, nullptr);
  EXPECT_EQ(rating->parent()->kind(), SchemaNodeKind::kOption);
  EXPECT_EQ(rating->child(0)->base_type(), XsdBaseType::kDouble);
  SchemaNode* box = (*tree)->FindTagByName("box_office");
  ASSERT_NE(box, nullptr);
  EXPECT_EQ(box->parent()->kind(), SchemaNodeKind::kChoice);
  EXPECT_EQ(box->parent()->num_children(), 2u);
}

TEST(XsdParserTest, SharedTypesViaNamedComplexType) {
  constexpr const char* xsd = R"(
<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
  <xs:element name="dblp" annotation="dblp">
    <xs:complexType>
      <xs:sequence>
        <xs:element name="inproceedings" annotation="inproc"
                    maxOccurs="unbounded" type="PubType"/>
        <xs:element name="book" annotation="book"
                    maxOccurs="unbounded" type="PubType"/>
      </xs:sequence>
    </xs:complexType>
  </xs:element>
  <xs:complexType name="PubType">
    <xs:sequence>
      <xs:element name="title" type="xs:string"/>
    </xs:sequence>
  </xs:complexType>
</xs:schema>)";
  auto tree = ParseXsd(xsd);
  ASSERT_TRUE(tree.ok()) << tree.status();
  SchemaNode* inproc = (*tree)->FindTagByName("inproceedings");
  SchemaNode* book = (*tree)->FindTagByName("book");
  ASSERT_NE(inproc, nullptr);
  ASSERT_NE(book, nullptr);
  EXPECT_EQ(inproc->type_name(), "PubType");
  EXPECT_EQ(book->type_name(), "PubType");
  // Instantiated as separate subtrees.
  EXPECT_EQ((*tree)->FindTagsByName("title").size(), 2u);
}

TEST(XsdParserTest, DefaultAnnotations) {
  constexpr const char* xsd = R"(
<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
  <xs:element name="root">
    <xs:complexType>
      <xs:sequence>
        <xs:element name="item" maxOccurs="unbounded">
          <xs:complexType>
            <xs:sequence>
              <xs:element name="tagname" type="xs:string"
                          maxOccurs="unbounded"/>
            </xs:sequence>
          </xs:complexType>
        </xs:element>
      </xs:sequence>
    </xs:complexType>
  </xs:element>
</xs:schema>)";
  auto tree = ParseXsd(xsd);
  ASSERT_TRUE(tree.ok()) << tree.status();
  EXPECT_FALSE((*tree)->Validate().ok());  // annotations still missing
  AssignDefaultAnnotations(tree->get());
  EXPECT_TRUE((*tree)->Validate().ok()) << (*tree)->Validate();
  EXPECT_EQ((*tree)->root()->annotation(), "root");
  EXPECT_EQ((*tree)->FindTagByName("item")->annotation(), "item");
  EXPECT_EQ((*tree)->FindTagByName("tagname")->annotation(), "tagname");
}

TEST(XsdParserTest, RoundTripThroughXsdText) {
  auto tree = ParseXsd(kMovieXsd);
  ASSERT_TRUE(tree.ok());
  std::string text = SchemaTreeToXsd(**tree);
  auto again = ParseXsd(text);
  ASSERT_TRUE(again.ok()) << again.status() << "\n" << text;
  // Structure (ignoring node ids) must match.
  auto strip_ids = [](std::string s) {
    std::string out;
    for (size_t i = 0; i < s.size(); ++i) {
      if (s[i] == '[') {
        while (i < s.size() && s[i] != ']') ++i;
        continue;
      }
      out.push_back(s[i]);
    }
    return out;
  };
  EXPECT_EQ(strip_ids((*tree)->ToString()), strip_ids((*again)->ToString()));
}

TEST(XsdParserTest, Errors) {
  EXPECT_FALSE(ParseXsd("<notaschema/>").ok());
  EXPECT_FALSE(ParseXsd(
      "<xs:schema xmlns:xs=\"x\"><xs:element name=\"a\" "
      "type=\"Missing\"/></xs:schema>").ok());
  EXPECT_FALSE(
      ParseXsd("<xs:schema xmlns:xs=\"x\"></xs:schema>").ok());
}

// The canonical Parse*(input, ParseOptions) signature: the governor
// field bounds recursion and the exec field routes instrumentation.
TEST(ParseOptionsTest, GovernorAndExecFieldsApply) {
  ParseOptions bare;
  auto doc = ParseXml("<a><b>hello</b></a>", bare);
  ASSERT_TRUE(doc.ok()) << doc.status();
  EXPECT_EQ(doc->ToXml(), ParseXml("<a><b>hello</b></a>")->ToXml());

  ResourceLimits limits;
  limits.max_recursion_depth = 4;
  ResourceGovernor governor(limits);
  ParseOptions limited;
  limited.governor = &governor;
  auto rejected =
      ParseXml("<a><a><a><a><a><a>x</a></a></a></a></a></a>", limited);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kResourceExhausted);

  MetricsRegistry registry;
  ExecContext exec;
  exec.metrics = &registry;
  ParseOptions instrumented;
  instrumented.exec = &exec;
  ASSERT_TRUE(ParseXml("<a><b>x</b></a>", instrumented).ok());
  EXPECT_EQ(registry.counter(kMetricParseXmlDocuments)->value(), 1);
  EXPECT_EQ(registry.counter(kMetricParseXmlElements)->value(), 2);
  ASSERT_TRUE(ParseXsd(kMovieXsd, instrumented).ok());
  EXPECT_EQ(registry.counter(kMetricParseXsdSchemas)->value(), 1);
}

}  // namespace
}  // namespace xmlshred
