// Columnar storage tests: the dictionary's code/rank contracts, the
// shredder's pre-sizing stats, and — the core guarantee — vectorized
// batch execution being observably identical to the scalar row-at-a-time
// path: same result rows in the same order, same metered work units, and
// byte-identical explain JSON, over the tier-1 query corpora (randomized
// movie SQL and generated DBLP XPath workloads).

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "common/rng.h"
#include "exec/executor.h"
#include "exec/explain.h"
#include "mapping/shredder.h"
#include "mapping/xml_stats.h"
#include "opt/planner.h"
#include "rel/dictionary.h"
#include "sql/binder.h"
#include "sql/parser.h"
#include "workload/movie.h"
#include "workload/query_gen.h"
#include "xpath/translator.h"

namespace xmlshred {
namespace {

// --- StringDictionary unit tests ---

TEST(StringDictionaryTest, InternAssignsSequentialCodesAndRoundTrips) {
  StringDictionary dict;
  EXPECT_EQ(dict.size(), 0u);
  uint32_t a = dict.Intern("alpha");
  uint32_t b = dict.Intern("beta");
  EXPECT_EQ(a, 0u);
  EXPECT_EQ(b, 1u);
  EXPECT_EQ(dict.Intern("alpha"), a);  // idempotent
  EXPECT_EQ(dict.size(), 2u);
  EXPECT_EQ(dict.str(a), "alpha");
  EXPECT_EQ(dict.str(b), "beta");
  EXPECT_EQ(dict.Lookup("alpha"), a);
  EXPECT_EQ(dict.Lookup("gamma"), StringDictionary::kNotFound);
}

TEST(StringDictionaryTest, ByteSizeCountsPayloadPlusOverhead) {
  StringDictionary dict;
  EXPECT_EQ(dict.ByteSize(), 0);
  dict.Intern("abc");
  dict.Intern("defgh");
  EXPECT_EQ(dict.total_string_bytes(), 8);
  EXPECT_EQ(dict.ByteSize(),
            8 + 2 * StringDictionary::kPerEntryOverheadBytes);
}

TEST(StringDictionaryTest, RankOrdersCodesLexicographically) {
  StringDictionary dict;
  Rng rng(7);
  std::vector<std::string> strings;
  for (int i = 0; i < 500; ++i) {
    std::string s;
    int len = static_cast<int>(rng.Uniform(0, 12));
    for (int j = 0; j < len; ++j) {
      s += static_cast<char>('a' + rng.Uniform(0, 25));
    }
    strings.push_back(s);
    dict.Intern(s);
  }
  // Rank comparison must agree with string comparison for every pair.
  for (size_t i = 0; i < strings.size(); i += 17) {
    for (size_t j = 0; j < strings.size(); j += 13) {
      uint32_t ci = dict.Lookup(strings[i]);
      uint32_t cj = dict.Lookup(strings[j]);
      EXPECT_EQ(dict.Rank(ci) < dict.Rank(cj), strings[i] < strings[j]);
      EXPECT_EQ(dict.Rank(ci) == dict.Rank(cj), strings[i] == strings[j]);
    }
  }
  // CountLess("m...") equals the number of distinct interned strings
  // strictly below the probe, whether or not the probe is interned.
  std::string probe = "mmm";
  int64_t below = 0;
  std::set<std::string> distinct(strings.begin(), strings.end());
  for (const std::string& s : distinct) {
    if (s < probe) ++below;
  }
  EXPECT_EQ(dict.CountLess(probe), static_cast<uint32_t>(below));
}

// --- Shredder pre-sizing (satellite: Reserve from XML stats) ---

TEST(ShredReserveTest, PreScanReservesRowsAndReportsSavedReallocs) {
  MovieConfig config;
  config.num_movies = 300;
  GeneratedData data = GenerateMovie(config);
  auto mapping = Mapping::Build(*data.tree);
  ASSERT_TRUE(mapping.ok());
  Database db;
  auto stats = ShredDocument(data.doc, *data.tree, *mapping, &db);
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_GT(stats->rows, 0);
  // The per-tag-name pre-scan covers every row actually inserted (it is
  // exact for uniquely named anchors, an upper bound otherwise).
  EXPECT_GE(stats->reserved_rows, stats->rows);
  EXPECT_GT(stats->saved_reallocs, 0);
}

// --- Vectorized vs scalar differential over the movie SQL corpus ---

class VectorizedDifferentialTest : public ::testing::TestWithParam<int> {
 protected:
  void SetUp() override {
    MovieConfig config;
    config.num_movies = 900;
    data_ = GenerateMovie(config);
    auto mapping = Mapping::Build(*data_.tree);
    ASSERT_TRUE(mapping.ok());
    ASSERT_TRUE(ShredDocument(data_.doc, *data_.tree, *mapping, &db_).ok());
  }

  void RandomConfiguration(Rng* rng) {
    const Table* movie = db_.FindTable("movie");
    int columns = movie->schema().num_columns();
    int num_indexes = static_cast<int>(rng->Uniform(0, 3));
    for (int i = 0; i < num_indexes; ++i) {
      IndexDef def;
      def.name = "vx_ix_" + std::to_string(i);
      def.table = "movie";
      def.key_columns = {static_cast<int>(rng->Uniform(2, columns - 1))};
      if (rng->Bernoulli(0.5)) {
        int inc = static_cast<int>(rng->Uniform(2, columns - 1));
        if (inc != def.key_columns[0]) def.included_columns = {inc};
      }
      ASSERT_TRUE(db_.CreateIndex(def).ok());
    }
    if (rng->Bernoulli(0.5)) {
      IndexDef pid;
      pid.name = "vx_pid";
      pid.table = "aka_title";
      pid.key_columns = {1};
      if (rng->Bernoulli(0.5)) pid.included_columns = {2};
      ASSERT_TRUE(db_.CreateIndex(pid).ok());
    }
  }

  std::string RandomSql(Rng* rng) {
    static const char* kMovieCols[] = {"title",    "year",  "avg_rating",
                                       "director", "votes", "box_office",
                                       "seasons"};
    std::string sql = "SELECT m.ID";
    int projections = static_cast<int>(rng->Uniform(1, 3));
    for (int i = 0; i < projections; ++i) {
      sql += std::string(", m.") + kMovieCols[rng->Uniform(0, 6)];
    }
    bool join = rng->Bernoulli(0.4);
    if (join) sql += ", a.aka_title";
    sql += " FROM movie m";
    if (join) sql += ", aka_title a";
    std::vector<std::string> preds;
    if (join) preds.push_back("a.PID = m.ID");
    int filters = static_cast<int>(rng->Uniform(0, 3));
    for (int i = 0; i < filters; ++i) {
      switch (rng->Uniform(0, 4)) {
        case 0:
          preds.push_back("m.year >= " +
                          std::to_string(rng->Uniform(1930, 2004)));
          break;
        case 1:
          preds.push_back("m.votes >= " +
                          std::to_string(rng->Uniform(10, 1000000)));
          break;
        case 2:
          preds.push_back("m.title = 'movie_title_" +
                          std::to_string(rng->Uniform(0, 899)) + "'");
          break;
        default:
          preds.push_back("m.director < 'director_5'");
          break;
      }
    }
    for (size_t i = 0; i < preds.size(); ++i) {
      sql += (i == 0 ? " WHERE " : " AND ") + preds[i];
    }
    return sql;
  }

  // Runs `plan` with the given scan mode, returning rows + metering +
  // explain JSON bytes.
  struct RunOutput {
    std::vector<Row> rows;
    ExecMetrics metrics;
    std::string explain_json;
  };
  RunOutput RunWith(const PlanNode& plan, bool vectorized) {
    RunOutput out;
    ExplainNode tree = BuildExplainTree(plan);
    ExecOptions options;
    options.vectorized_scan = vectorized;
    options.explain = &tree;
    Executor executor(db_);
    auto rows = executor.Run(plan, &out.metrics, options);
    EXPECT_TRUE(rows.ok()) << rows.status();
    if (rows.ok()) out.rows = std::move(*rows);
    out.explain_json = ExplainToJson(tree, /*include_timing=*/false);
    return out;
  }

  GeneratedData data_;
  Database db_;
};

TEST_P(VectorizedDifferentialTest, BatchesMatchScalarExactly) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 7368787 + 5);
  RandomConfiguration(&rng);
  for (int q = 0; q < 8; ++q) {
    std::string sql = RandomSql(&rng);
    auto parsed = ParseSql(sql);
    ASSERT_TRUE(parsed.ok()) << sql;
    CatalogDesc catalog = db_.BuildCatalogDesc();
    auto bound = BindQuery(*parsed, catalog);
    ASSERT_TRUE(bound.ok()) << sql;
    auto planned = PlanQuery(*bound, catalog);
    ASSERT_TRUE(planned.ok()) << sql;

    RunOutput vec = RunWith(*planned->root, /*vectorized=*/true);
    RunOutput scalar = RunWith(*planned->root, /*vectorized=*/false);

    // Same rows in the same order (not just as a multiset).
    ASSERT_EQ(vec.rows.size(), scalar.rows.size()) << sql;
    RowTotalEquals eq;
    for (size_t i = 0; i < vec.rows.size(); ++i) {
      ASSERT_TRUE(eq(vec.rows[i], scalar.rows[i])) << sql << " row " << i;
    }
    // Same metered work, page counts, and per-operator explain actuals.
    EXPECT_EQ(vec.metrics.work, scalar.metrics.work) << sql;
    EXPECT_EQ(vec.metrics.pages_sequential, scalar.metrics.pages_sequential)
        << sql;
    EXPECT_EQ(vec.metrics.pages_random, scalar.metrics.pages_random) << sql;
    EXPECT_EQ(vec.metrics.rows_out, scalar.metrics.rows_out) << sql;
    EXPECT_EQ(vec.explain_json, scalar.explain_json) << sql;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, VectorizedDifferentialTest,
                         ::testing::Range(0, 8));

// --- Vectorized vs scalar over the generated DBLP XPath corpus ---

TEST(VectorizedXPathCorpusTest, WorkloadMatchesScalarExactly) {
  MovieConfig config;
  config.num_movies = 700;
  GeneratedData data = GenerateMovie(config);
  auto stats = XmlStatistics::Collect(data.doc, *data.tree);
  ASSERT_TRUE(stats.ok()) << stats.status();
  auto mapping = Mapping::Build(*data.tree);
  ASSERT_TRUE(mapping.ok());
  Database db;
  ASSERT_TRUE(ShredDocument(data.doc, *data.tree, *mapping, &db).ok());
  CatalogDesc catalog = db.BuildCatalogDesc();

  WorkloadSpec spec;
  spec.num_queries = 12;
  spec.seed = 23;
  auto workload = GenerateWorkload(*data.tree, *stats, spec);
  ASSERT_TRUE(workload.ok()) << workload.status();

  Executor executor(db);
  for (const XPathQuery& query : *workload) {
    auto translated = TranslateXPath(query, *data.tree, *mapping);
    ASSERT_TRUE(translated.ok()) << query.ToString();
    auto bound = BindQuery(translated->sql, catalog);
    ASSERT_TRUE(bound.ok()) << query.ToString();
    auto planned = PlanQuery(*bound, catalog);
    ASSERT_TRUE(planned.ok()) << query.ToString();

    auto run = [&](bool vectorized, ExecMetrics* metrics,
                   std::string* explain_json) {
      ExplainNode tree = BuildExplainTree(*planned->root);
      ExecOptions options;
      options.vectorized_scan = vectorized;
      options.explain = &tree;
      auto rows = executor.Run(*planned->root, metrics, options);
      EXPECT_TRUE(rows.ok()) << query.ToString();
      *explain_json = ExplainToJson(tree, /*include_timing=*/false);
      return rows.ok() ? std::move(*rows) : std::vector<Row>{};
    };
    ExecMetrics vec_metrics, scalar_metrics;
    std::string vec_explain, scalar_explain;
    std::vector<Row> vec_rows = run(true, &vec_metrics, &vec_explain);
    std::vector<Row> scalar_rows =
        run(false, &scalar_metrics, &scalar_explain);

    ASSERT_EQ(vec_rows.size(), scalar_rows.size()) << query.ToString();
    RowTotalEquals eq;
    for (size_t i = 0; i < vec_rows.size(); ++i) {
      ASSERT_TRUE(eq(vec_rows[i], scalar_rows[i]))
          << query.ToString() << " row " << i;
    }
    EXPECT_EQ(vec_metrics.work, scalar_metrics.work) << query.ToString();
    EXPECT_EQ(vec_metrics.pages_sequential, scalar_metrics.pages_sequential);
    EXPECT_EQ(vec_metrics.pages_random, scalar_metrics.pages_random);
    EXPECT_EQ(vec_metrics.rows_out, scalar_metrics.rows_out);
    EXPECT_EQ(vec_explain, scalar_explain) << query.ToString();
  }
}

}  // namespace
}  // namespace xmlshred
