// Tests for the physical design advisor: candidate quality, storage-bound
// respect, and agreement between estimated benefits and measured work
// after really building the recommended configuration.

#include <gtest/gtest.h>

#include "common/logging.h"
#include "exec/executor.h"
#include "mapping/mapping.h"
#include "mapping/shredder.h"
#include "opt/planner.h"
#include "sql/binder.h"
#include "sql/parser.h"
#include "tune/advisor.h"
#include "workload/dblp.h"

namespace xmlshred {
namespace {

class AdvisorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    data_ = GenerateDblp([] {
      DblpConfig c;
      c.num_inproceedings = 8000;
      c.num_books = 800;
      return c;
    }());
    auto mapping = Mapping::Build(*data_.tree);
    ASSERT_TRUE(mapping.ok());
    mapping_ = std::make_unique<Mapping>(std::move(*mapping));
    ASSERT_TRUE(ShredDocument(data_.doc, *data_.tree, *mapping_, &db_).ok());
    base_ = db_.BuildCatalogDesc();
  }

  WeightedQuery Parse(const std::string& sql, double weight = 1.0) {
    auto q = ParseSql(sql);
    XS_CHECK_OK(q.status());
    return {std::move(*q), weight};
  }

  // Executes the workload against the real database (with whatever
  // physical structures are built) and returns total measured work.
  double MeasureWorkload(const std::vector<WeightedQuery>& workload) {
    CatalogDesc catalog = db_.BuildCatalogDesc();
    Executor executor(db_);
    double total = 0;
    for (const WeightedQuery& wq : workload) {
      auto bound = BindQuery(wq.query, catalog);
      XS_CHECK_OK(bound.status());
      auto planned = PlanQuery(*bound, catalog);
      XS_CHECK_OK(planned.status());
      ExecMetrics metrics;
      auto rows = executor.Run(*planned->root, &metrics);
      XS_CHECK_OK(rows.status());
      total += wq.weight * metrics.work;
    }
    return total;
  }

  GeneratedData data_;
  std::unique_ptr<Mapping> mapping_;
  Database db_;
  CatalogDesc base_;
};

TEST_F(AdvisorTest, RecommendsSelectiveIndex) {
  std::vector<WeightedQuery> workload = {
      Parse("SELECT title, year FROM inproc WHERE booktitle = 'conf_0'")};
  PhysicalDesignAdvisor advisor(TunerOptions{});
  auto result = advisor.Tune(workload, base_);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_FALSE(result->indexes.empty() && result->views.empty());
  EXPECT_GT(result->optimizer_calls, 0);
  // The configuration estimate beats the no-structure estimate.
  auto bound = BindQuery(workload[0].query, base_);
  ASSERT_TRUE(bound.ok());
  auto unassisted = PlanQuery(*bound, base_);
  ASSERT_TRUE(unassisted.ok());
  EXPECT_LT(result->total_cost, unassisted->est_cost);
}

TEST_F(AdvisorTest, AppliedConfigurationSpeedsUpRealExecution) {
  std::vector<WeightedQuery> workload = {
      Parse("SELECT title, year FROM inproc WHERE booktitle = 'conf_0'"),
      Parse("SELECT I.ID, A.author FROM inproc I, inproc_author A "
            "WHERE I.booktitle = 'conf_1' AND I.ID = A.PID"),
  };
  double before = MeasureWorkload(workload);
  PhysicalDesignAdvisor advisor(TunerOptions{});
  auto result = advisor.Tune(workload, base_);
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_TRUE(ApplyConfiguration(*result, &db_).ok());
  double after = MeasureWorkload(workload);
  EXPECT_LT(after, before * 0.7);
}

TEST_F(AdvisorTest, RespectsStorageBound) {
  std::vector<WeightedQuery> workload = {
      Parse("SELECT title, year, pages FROM inproc WHERE booktitle = 'conf_0'"),
      Parse("SELECT title FROM inproc WHERE year >= 2000"),
  };
  TunerOptions tight;
  tight.storage_bound_pages = base_.DataPages() + 5;  // almost nothing free
  PhysicalDesignAdvisor advisor(tight);
  auto result = advisor.Tune(workload, base_);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_LE(result->structure_pages, 5);

  TunerOptions roomy;
  roomy.storage_bound_pages = base_.DataPages() * 10;
  PhysicalDesignAdvisor advisor2(roomy);
  auto result2 = advisor2.Tune(workload, base_);
  ASSERT_TRUE(result2.ok());
  EXPECT_LE(result2->total_cost,
            result->total_cost + 1e-9);  // more space never hurts
}

TEST_F(AdvisorTest, ReservedPagesShrinkBudget) {
  std::vector<WeightedQuery> workload = {
      Parse("SELECT title FROM inproc WHERE booktitle = 'conf_2'")};
  TunerOptions options;
  options.storage_bound_pages = base_.DataPages() + 50;
  PhysicalDesignAdvisor advisor(options);
  auto full = advisor.Tune(workload, base_, 0);
  ASSERT_TRUE(full.ok());
  auto reserved = advisor.Tune(workload, base_, 50);
  ASSERT_TRUE(reserved.ok());
  EXPECT_EQ(reserved->structure_pages, 0);
  EXPECT_GE(reserved->total_cost, full->total_cost);
}

TEST_F(AdvisorTest, ReportsPerQueryObjects) {
  std::vector<WeightedQuery> workload = {
      Parse("SELECT title FROM inproc WHERE booktitle = 'conf_3'"),
      Parse("SELECT author FROM book_author"),
  };
  PhysicalDesignAdvisor advisor(TunerOptions{});
  auto result = advisor.Tune(workload, base_);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->query_objects.size(), 2u);
  // The second query's objects concern book_author only.
  for (const std::string& obj : result->query_objects[1]) {
    EXPECT_NE(obj.find("book_author"), std::string::npos) << obj;
  }
}

TEST_F(AdvisorTest, ViewCandidateWinsForExpensiveJoinBlock) {
  // A heavily weighted join query with a selective filter: a materialized
  // join view (or covering INL index) should be recommended; either way
  // measured work must drop substantially.
  std::vector<WeightedQuery> workload = {
      Parse("SELECT I.ID, A.author FROM inproc I, inproc_author A "
            "WHERE I.booktitle = 'conf_0' AND I.ID = A.PID",
            10.0),
  };
  double before = MeasureWorkload(workload);
  PhysicalDesignAdvisor advisor(TunerOptions{});
  auto result = advisor.Tune(workload, base_);
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(ApplyConfiguration(*result, &db_).ok());
  double after = MeasureWorkload(workload);
  EXPECT_LT(after, before * 0.5);
}

TEST_F(AdvisorTest, DisablingStructuresYieldsEmptyConfig) {
  std::vector<WeightedQuery> workload = {
      Parse("SELECT title FROM inproc WHERE booktitle = 'conf_0'")};
  TunerOptions options;
  options.enable_indexes = false;
  options.enable_views = false;
  PhysicalDesignAdvisor advisor(options);
  auto result = advisor.Tune(workload, base_);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->indexes.empty());
  EXPECT_TRUE(result->views.empty());
}

}  // namespace
}  // namespace xmlshred
