// Unit tests for src/rel: values, schemas, tables, stats, indexes, catalog.

#include <gtest/gtest.h>

#include "rel/catalog.h"
#include "rel/index.h"
#include "rel/stats.h"
#include "rel/table.h"
#include "rel/value.h"

namespace xmlshred {
namespace {

TEST(ValueTest, NullSemantics) {
  Value n = Value::Null();
  EXPECT_TRUE(n.is_null());
  EXPECT_FALSE(n.SqlEquals(n));
  EXPECT_FALSE(n.SqlLess(Value::Int(1)));
  EXPECT_TRUE(n.TotalEquals(Value::Null()));
  EXPECT_TRUE(n.TotalLess(Value::Int(0)));
}

TEST(ValueTest, NumericPromotion) {
  EXPECT_TRUE(Value::Int(3).SqlEquals(Value::Real(3.0)));
  EXPECT_TRUE(Value::Int(2).SqlLess(Value::Real(2.5)));
  EXPECT_EQ(Value::Int(3).Hash(), Value::Real(3.0).Hash());
}

TEST(ValueTest, StringComparison) {
  EXPECT_TRUE(Value::Str("a").SqlLess(Value::Str("b")));
  EXPECT_FALSE(Value::Str("a").SqlEquals(Value::Int(1)));
  // Total order: numerics sort before strings.
  EXPECT_TRUE(Value::Int(999).TotalLess(Value::Str("0")));
}

TEST(ValueTest, ToStringRendering) {
  EXPECT_EQ(Value::Null().ToString(), "NULL");
  EXPECT_EQ(Value::Int(42).ToString(), "42");
  EXPECT_EQ(Value::Str("hi").ToString(), "'hi'");
}

TEST(RowTest, LexicographicOrder) {
  Row a = {Value::Int(1), Value::Str("b")};
  Row b = {Value::Int(1), Value::Str("c")};
  EXPECT_TRUE(RowTotalLess(a, b));
  EXPECT_FALSE(RowTotalLess(b, a));
  EXPECT_TRUE(RowTotalEquals()(a, a));
  EXPECT_EQ(RowHash()(a), RowHash()(a));
}

TableSchema MakePubSchema() {
  TableSchema schema;
  schema.name = "inproc";
  schema.columns = {{"ID", ColumnType::kInt64, false},
                    {"PID", ColumnType::kInt64, true},
                    {"title", ColumnType::kString, true},
                    {"year", ColumnType::kInt64, true}};
  schema.id_column = 0;
  schema.pid_column = 1;
  return schema;
}

TEST(SchemaTest, FindColumn) {
  TableSchema schema = MakePubSchema();
  EXPECT_EQ(schema.FindColumn("title"), 2);
  EXPECT_EQ(schema.FindColumn("missing"), -1);
  EXPECT_NE(schema.ToString().find("inproc("), std::string::npos);
}

Table MakePubTable(int n) {
  Table table(MakePubSchema());
  for (int i = 0; i < n; ++i) {
    table.AppendRow({Value::Int(i), Value::Null(),
                     Value::Str("title_" + std::to_string(i % 10)),
                     Value::Int(1990 + i % 20)});
  }
  return table;
}

TEST(TableTest, PageAccounting) {
  Table table = MakePubTable(1000);
  EXPECT_EQ(table.row_count(), 1000);
  EXPECT_GT(table.avg_row_bytes(), 8.0);
  EXPECT_GE(table.NumPages(), 1);
  EXPECT_EQ(PagesFor(0, 100.0), 0);
  EXPECT_EQ(PagesFor(1, 10.0), 1);
  EXPECT_EQ(PagesFor(1000, 8192.0), 1000);
}

// Satellite regression for the avg_row_bytes double-accumulation drift:
// byte tallies are exact int64 sums per column, so a 1M-row table's
// logical average is pinned exactly — every row is 29 bytes (ID 8 +
// NULL PID 4 + 7-char title 9 + year 8). NumPages now reflects the
// *encoded* footprint: 244 sealed blocks per column compress to RLE /
// bit-packed images (sequential IDs bit-pack, the 10 distinct titles and
// 20 distinct years RLE or pack into a few bits per row), shrinking
// ceil(1e6 * 29 / 8192) = 3541 plain pages to an exact 326. The pin is a
// compression-ratio regression test: any encoder change that alters the
// chosen encodings or their sizes must move this number consciously.
TEST(TableTest, MillionRowPageCountIsExact) {
  Table table(MakePubSchema());
  constexpr int64_t kRows = 1000000;
  table.Reserve(static_cast<size_t>(kRows));
  for (int64_t i = 0; i < kRows; ++i) {
    table.AppendRow({Value::Int(i), Value::Null(),
                     Value::Str("title_" + std::to_string(i % 10)),
                     Value::Int(1990 + i % 20)});
  }
  EXPECT_EQ(table.row_count(), kRows);
  EXPECT_EQ(table.total_bytes(), kRows * 29);
  EXPECT_EQ(table.avg_row_bytes(), 29.0);
  EXPECT_EQ(table.NumPages(), 326);
}

TEST(StatsTest, BasicColumnStats) {
  Table table = MakePubTable(1000);
  TableStats stats = table.ComputeStats();
  EXPECT_EQ(stats.row_count, 1000);
  const ColumnStats& year = stats.columns[3];
  EXPECT_EQ(year.non_null_count, 1000);
  EXPECT_EQ(year.distinct_estimate, 20);
  EXPECT_TRUE(year.min.TotalEquals(Value::Int(1990)));
  EXPECT_TRUE(year.max.TotalEquals(Value::Int(2009)));
}

TEST(StatsTest, EqSelectivityFromMcvs) {
  Table table = MakePubTable(1000);
  TableStats stats = table.ComputeStats();
  // Each of the 20 years occurs 50 times.
  double sel = stats.columns[3].EqSelectivity(Value::Int(1995));
  EXPECT_NEAR(sel, 0.05, 1e-9);
  // Out of range probe.
  EXPECT_EQ(stats.columns[3].EqSelectivity(Value::Int(1900)), 0.0);
}

TEST(StatsTest, RangeSelectivityFromHistogram) {
  Table table = MakePubTable(1000);
  TableStats stats = table.ComputeStats();
  double sel = stats.columns[3].RangeSelectivity(">=", Value::Int(2000));
  EXPECT_NEAR(sel, 0.5, 0.08);
  sel = stats.columns[3].RangeSelectivity("<", Value::Int(1990));
  EXPECT_NEAR(sel, 0.0, 0.03);
  sel = stats.columns[3].RangeSelectivity("<=", Value::Int(2009));
  EXPECT_NEAR(sel, 1.0, 0.03);
}

TEST(StatsTest, NullCounting) {
  TableSchema schema = MakePubSchema();
  Table table(schema);
  for (int i = 0; i < 100; ++i) {
    table.AppendRow({Value::Int(i), Value::Null(),
                     i % 4 == 0 ? Value::Null() : Value::Str("t"),
                     Value::Int(2000)});
  }
  TableStats stats = table.ComputeStats();
  EXPECT_EQ(stats.columns[2].null_count, 25);
  EXPECT_NEAR(stats.columns[2].NotNullSelectivity(), 0.75, 1e-9);
}

TEST(IndexTest, EqualLookup) {
  Table table = MakePubTable(1000);
  IndexDef def;
  def.name = "idx_year";
  def.table = "inproc";
  def.key_columns = {3};
  BTreeIndex index(def, table);
  EXPECT_EQ(index.entry_count(), 1000);
  std::vector<int64_t> rows = index.EqualLookup({Value::Int(1995)});
  EXPECT_EQ(rows.size(), 50u);
  for (int64_t rid : rows) {
    EXPECT_TRUE(table.GetValue(rid, 3).TotalEquals(Value::Int(1995)));
  }
  EXPECT_TRUE(index.EqualLookup({Value::Int(1900)}).empty());
}

TEST(IndexTest, RangeLookup) {
  Table table = MakePubTable(1000);
  IndexDef def;
  def.name = "idx_year";
  def.table = "inproc";
  def.key_columns = {3};
  BTreeIndex index(def, table);
  auto rows = index.RangeLookup(Value::Int(2005), false, Value::Null(), false);
  EXPECT_EQ(rows.size(), 250u);  // 2005..2009, 50 each
  rows = index.RangeLookup(Value::Int(2005), true, Value::Int(2007), true);
  EXPECT_EQ(rows.size(), 50u);  // only 2006
}

TEST(IndexTest, CompositeKeyAndCovering) {
  Table table = MakePubTable(100);
  IndexDef def;
  def.name = "idx_year_title";
  def.table = "inproc";
  def.key_columns = {3, 2};
  def.included_columns = {0};
  BTreeIndex index(def, table);
  auto rows = index.EqualLookup({Value::Int(1995), Value::Str("title_5")});
  EXPECT_EQ(rows.size(), 5u);
  // Prefix lookup on year alone.
  rows = index.EqualLookup({Value::Int(1995)});
  EXPECT_EQ(rows.size(), 5u);
  EXPECT_TRUE(def.Covers({0, 2, 3}));
  EXPECT_FALSE(def.Covers({1}));
}

TEST(IndexTest, ProbePagesScalesWithMatches) {
  Table table = MakePubTable(10000);
  IndexDef def;
  def.name = "idx_year";
  def.table = "inproc";
  def.key_columns = {3};
  BTreeIndex index(def, table);
  EXPECT_LT(index.ProbePages(1), index.ProbePages(5000));
  EXPECT_GE(index.ProbePages(0), 1);
}

TEST(CatalogTest, CreateAndFindTable) {
  Database db;
  auto result = db.CreateTable(MakePubSchema());
  ASSERT_TRUE(result.ok());
  EXPECT_NE(db.FindTable("inproc"), nullptr);
  EXPECT_EQ(db.FindTable("nope"), nullptr);
  EXPECT_FALSE(db.CreateTable(MakePubSchema()).ok());  // duplicate
}

TEST(CatalogTest, CreateIndexValidates) {
  Database db;
  ASSERT_TRUE(db.CreateTable(MakePubSchema()).ok());
  IndexDef def;
  def.name = "idx";
  def.table = "missing";
  def.key_columns = {0};
  EXPECT_EQ(db.CreateIndex(def).code(), StatusCode::kNotFound);
  def.table = "inproc";
  def.key_columns = {99};
  EXPECT_EQ(db.CreateIndex(def).code(), StatusCode::kInvalidArgument);
  def.key_columns = {3};
  EXPECT_TRUE(db.CreateIndex(def).ok());
  EXPECT_NE(db.FindIndex("idx"), nullptr);
  EXPECT_EQ(db.IndexesOn("inproc").size(), 1u);
}

TEST(CatalogTest, MaterializedSelectionView) {
  Database db;
  auto result = db.CreateTable(MakePubSchema());
  ASSERT_TRUE(result.ok());
  Table* table = *result;
  for (int i = 0; i < 100; ++i) {
    table->AppendRow({Value::Int(i), Value::Null(), Value::Str("t"),
                      Value::Int(1990 + i % 10)});
  }
  ViewDef def;
  def.name = "v_recent";
  def.base_table = "inproc";
  def.preds = {{"inproc", "year", ">=", Value::Int(1995)}};
  def.projected = {{"inproc", "ID"}, {"inproc", "title"}};
  ASSERT_TRUE(db.CreateMaterializedView(def).ok());
  const Table* view = db.FindTable("v_recent");
  ASSERT_NE(view, nullptr);
  EXPECT_EQ(view->row_count(), 50);
  EXPECT_EQ(view->schema().FindColumn("inproc$ID"), 0);
}

TEST(CatalogTest, MaterializedJoinView) {
  Database db;
  TableSchema parent = MakePubSchema();
  auto pres = db.CreateTable(parent);
  ASSERT_TRUE(pres.ok());
  TableSchema child;
  child.name = "inproc_author";
  child.columns = {{"ID", ColumnType::kInt64, false},
                   {"PID", ColumnType::kInt64, true},
                   {"author", ColumnType::kString, true}};
  child.id_column = 0;
  child.pid_column = 1;
  auto cres = db.CreateTable(child);
  ASSERT_TRUE(cres.ok());
  for (int i = 0; i < 10; ++i) {
    (*pres)->AppendRow({Value::Int(i), Value::Null(), Value::Str("t"),
                        Value::Int(2000 + i)});
    for (int a = 0; a < 2; ++a) {
      (*cres)->AppendRow({Value::Int(100 + i * 2 + a), Value::Int(i),
                          Value::Str("auth_" + std::to_string(a))});
    }
  }
  ViewDef def;
  def.name = "v_join";
  def.base_table = "inproc";
  def.join_child = "inproc_author";
  def.preds = {{"inproc", "year", ">=", Value::Int(2005)}};
  def.projected = {{"inproc", "ID"}, {"inproc_author", "author"}};
  ASSERT_TRUE(db.CreateMaterializedView(def).ok());
  const Table* view = db.FindTable("v_join");
  ASSERT_NE(view, nullptr);
  EXPECT_EQ(view->row_count(), 10);  // 5 parents x 2 authors
}

TEST(CatalogTest, DropPhysicalStructuresKeepsTables) {
  Database db;
  auto result = db.CreateTable(MakePubSchema());
  ASSERT_TRUE(result.ok());
  IndexDef idx;
  idx.name = "idx";
  idx.table = "inproc";
  idx.key_columns = {0};
  ASSERT_TRUE(db.CreateIndex(idx).ok());
  ViewDef view;
  view.name = "v";
  view.base_table = "inproc";
  view.projected = {{"inproc", "ID"}};
  ASSERT_TRUE(db.CreateMaterializedView(view).ok());
  db.DropAllPhysicalStructures();
  EXPECT_EQ(db.FindIndex("idx"), nullptr);
  EXPECT_EQ(db.FindTable("v"), nullptr);
  EXPECT_NE(db.FindTable("inproc"), nullptr);
}

TEST(CatalogTest, BuildCatalogDesc) {
  Database db;
  auto result = db.CreateTable(MakePubSchema());
  ASSERT_TRUE(result.ok());
  (*result)->AppendRow(
      {Value::Int(1), Value::Null(), Value::Str("t"), Value::Int(2000)});
  IndexDef idx;
  idx.name = "idx";
  idx.table = "inproc";
  idx.key_columns = {3};
  ASSERT_TRUE(db.CreateIndex(idx).ok());
  CatalogDesc desc = db.BuildCatalogDesc();
  ASSERT_NE(desc.FindTable("inproc"), nullptr);
  EXPECT_EQ(desc.FindTable("inproc")->row_count(), 1);
  ASSERT_NE(desc.FindIndex("idx"), nullptr);
  EXPECT_EQ(desc.IndexesOn("inproc").size(), 1u);
  EXPECT_GE(desc.DataPages(), 1);
}

}  // namespace
}  // namespace xmlshred
