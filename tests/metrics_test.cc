// Tests for executor work metering: the decomposition into sequential and
// random page reads matches the plan shape, and work is additive across
// runs.

#include <gtest/gtest.h>

#include "common/logging.h"
#include "exec/executor.h"
#include "opt/planner.h"
#include "rel/catalog.h"
#include "sql/binder.h"
#include "sql/parser.h"

namespace xmlshred {
namespace {

class MetricsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TableSchema schema;
    schema.name = "t";
    schema.columns = {{"ID", ColumnType::kInt64, false},
                      {"PID", ColumnType::kInt64, true},
                      {"k", ColumnType::kInt64, true},
                      {"payload", ColumnType::kString, true}};
    schema.id_column = 0;
    schema.pid_column = 1;
    auto result = db_.CreateTable(schema);
    ASSERT_TRUE(result.ok());
    for (int i = 0; i < 20000; ++i) {
      (*result)->AppendRow({Value::Int(i), Value::Null(),
                            Value::Int(i % 500),
                            Value::Str("payload_padding_string_" +
                                       std::to_string(i))});
    }
  }

  ExecMetrics RunAndMeter(const std::string& sql) {
    auto parsed = ParseSql(sql);
    XS_CHECK_OK(parsed.status());
    CatalogDesc catalog = db_.BuildCatalogDesc();
    auto bound = BindQuery(*parsed, catalog);
    XS_CHECK_OK(bound.status());
    auto planned = PlanQuery(*bound, catalog);
    XS_CHECK_OK(planned.status());
    Executor executor(db_);
    ExecMetrics metrics;
    XS_CHECK_OK(executor.Run(*planned->root, &metrics).status());
    return metrics;
  }

  Database db_;
};

TEST_F(MetricsTest, HeapScanIsSequentialOnly) {
  ExecMetrics m = RunAndMeter("SELECT payload FROM t WHERE k = 3");
  EXPECT_GT(m.pages_sequential, 0);
  EXPECT_EQ(m.pages_random, 0);
  // The scan reads exactly the table's pages.
  EXPECT_DOUBLE_EQ(m.pages_sequential,
                   static_cast<double>(db_.FindTable("t")->NumPages()));
}

TEST_F(MetricsTest, IndexSeekIsRandomOnly) {
  IndexDef idx;
  idx.name = "ix";
  idx.table = "t";
  idx.key_columns = {2};
  idx.included_columns = {3};
  ASSERT_TRUE(db_.CreateIndex(idx).ok());
  ExecMetrics m = RunAndMeter("SELECT payload FROM t WHERE k = 3");
  EXPECT_EQ(m.pages_sequential, 0);
  EXPECT_GT(m.pages_random, 0);
  // A covering probe touches far fewer page-equivalents than the scan.
  EXPECT_LT(m.pages_random,
            static_cast<double>(db_.FindTable("t")->NumPages()) / 4);
}

TEST_F(MetricsTest, WorkAccumulatesAcrossRuns) {
  auto parsed = ParseSql("SELECT k FROM t WHERE k = 1");
  ASSERT_TRUE(parsed.ok());
  CatalogDesc catalog = db_.BuildCatalogDesc();
  auto bound = BindQuery(*parsed, catalog);
  ASSERT_TRUE(bound.ok());
  auto planned = PlanQuery(*bound, catalog);
  ASSERT_TRUE(planned.ok());
  Executor executor(db_);
  ExecMetrics metrics;
  ASSERT_TRUE(executor.Run(*planned->root, &metrics).ok());
  double one = metrics.work;
  ASSERT_TRUE(executor.Run(*planned->root, &metrics).ok());
  EXPECT_DOUBLE_EQ(metrics.work, one * 2);
  EXPECT_EQ(metrics.rows_out, 2 * (20000 / 500));
}

TEST_F(MetricsTest, DeterministicWork) {
  ExecMetrics a = RunAndMeter("SELECT payload FROM t WHERE k >= 100");
  ExecMetrics b = RunAndMeter("SELECT payload FROM t WHERE k >= 100");
  EXPECT_DOUBLE_EQ(a.work, b.work);
  EXPECT_EQ(a.rows_out, b.rows_out);
}

}  // namespace
}  // namespace xmlshred
