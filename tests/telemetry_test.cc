// Continuous-telemetry tests (DESIGN.md §15): the windowed time-series
// recorder (boundary semantics, integer quantiles, digests), the
// structured event log and flight-recorder ring, head-sampled request
// traces, post-mortem capture on sheds / governor trips / faults, the
// admission-primitive edge cases that feed them, and the hot-path cost
// contract — with telemetry disabled the serving request path performs
// no clock reads and no allocations attributable to the recorder.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <memory>
#include <new>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/metrics.h"
#include "common/strings.h"
#include "common/timeseries.h"
#include "common/trace.h"
#include "mapping/mapping.h"
#include "mapping/shredder.h"
#include "rel/catalog.h"
#include "rel/index.h"
#include "serve/admission.h"
#include "serve/retry.h"
#include "serve/session.h"
#include "serve/soak.h"
#include "serve/telemetry.h"
#include "workload/dblp.h"
#include "xpath/xpath.h"

// ---------------------------------------------------------------------
// Global allocation counter: every operator new in this binary bumps it,
// so a test can assert the per-request allocation count of a steady-state
// serving cycle. Counts news only (not frees); aligned forms keep the
// default implementation (they never pair with these).

static std::atomic<long long> g_alloc_count{0};

static void* CountedAlloc(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  void* p = std::malloc(size == 0 ? 1 : size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new(std::size_t size) { return CountedAlloc(size); }
void* operator new[](std::size_t size) { return CountedAlloc(size); }
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size == 0 ? 1 : size);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size == 0 ? 1 : size);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace xmlshred {
namespace {

// ---------------------------------------------------------------------
// Shared fixture: a small shredded DBLP database with one index (the
// serving_test fixture, scaled down).

struct TelemetryFixture {
  GeneratedData data;
  std::unique_ptr<Mapping> mapping;
  std::unique_ptr<Database> db;

  TelemetryFixture() {
    DblpConfig config;
    config.num_inproceedings = 200;
    config.num_books = 20;
    data = GenerateDblp(config);
    auto built = Mapping::Build(*data.tree);
    EXPECT_TRUE(built.ok()) << built.status();
    mapping = std::make_unique<Mapping>(std::move(*built));
    db = std::make_unique<Database>();
    auto shredded = ShredDocument(data.doc, *data.tree, *mapping, db.get());
    EXPECT_TRUE(shredded.ok()) << shredded.status();
    IndexDef idx;
    idx.name = "ix_booktitle";
    idx.table = "inproc";
    idx.key_columns = {
        db->FindTable("inproc")->schema().FindColumn("booktitle")};
    idx.included_columns = {
        db->FindTable("inproc")->schema().FindColumn("title")};
    EXPECT_TRUE(db->CreateIndex(idx).ok());
  }

  static XPathQuery ScanAllQuery() {
    XPathQuery q;
    q.context = "inproceedings";
    q.projections = {"title"};
    return q;
  }

  static XPathQuery SelectiveQuery() {
    XPathQuery q;
    q.context = "inproceedings";
    q.has_selection = true;
    q.selection_path = "booktitle";
    q.selection_op = "=";
    q.selection_literal = Value::Str("conf_0");
    q.projections = {"title", "year"};
    return q;
  }
};

TelemetryFixture& Fixture() {
  static TelemetryFixture* fixture = new TelemetryFixture();
  return *fixture;
}

// ---------------------------------------------------------------------
// Hashing and sampling primitives.

TEST(Fnv1aTest, KnownVectors) {
  EXPECT_EQ(Fnv1a64(""), 0xcbf29ce484222325ull);
  EXPECT_EQ(Fnv1a64Hex(""), "cbf29ce484222325");
  EXPECT_EQ(Fnv1a64Hex("a"), "af63dc4c8601ec8c");
  EXPECT_NE(Fnv1a64Hex("a"), Fnv1a64Hex("b"));
}

TEST(HeadSampleTest, PeriodEdgeCasesAndDeterminism) {
  EXPECT_FALSE(DeterministicHeadSample(1, 42, 0));
  EXPECT_FALSE(DeterministicHeadSample(1, 42, -3));
  for (uint64_t key = 0; key < 16; ++key) {
    EXPECT_TRUE(DeterministicHeadSample(7, key, 1));
  }
  int sampled = 0;
  for (uint64_t key = 0; key < 1000; ++key) {
    bool first = DeterministicHeadSample(99, key, 8);
    EXPECT_EQ(first, DeterministicHeadSample(99, key, 8));  // pure
    if (first) ++sampled;
  }
  // 1-in-8 over 1000 keys: loose bounds around the expectation of 125.
  EXPECT_GT(sampled, 60);
  EXPECT_LT(sampled, 200);
  // Different seeds pick different subsets.
  int agree = 0;
  for (uint64_t key = 0; key < 1000; ++key) {
    if (DeterministicHeadSample(99, key, 8) ==
        DeterministicHeadSample(100, key, 8)) {
      ++agree;
    }
  }
  EXPECT_LT(agree, 1000);
}

// ---------------------------------------------------------------------
// Structured event log + flight recorder.

TEST(EventRingTest, OverwritesOldestAndTailsOldestFirst) {
  EventRing ring(3);
  for (uint64_t i = 1; i <= 5; ++i) {
    LogEvent e;
    e.seq = i;
    e.time = static_cast<double>(i) * 10;
    e.name = "event." + std::to_string(i);
    ring.Append(std::move(e));
  }
  EXPECT_EQ(ring.total(), 5u);
  EXPECT_EQ(ring.size(), 3u);
  std::vector<LogEvent> tail = ring.Tail();
  ASSERT_EQ(tail.size(), 3u);
  EXPECT_EQ(tail[0].seq, 3u);
  EXPECT_EQ(tail[1].seq, 4u);
  EXPECT_EQ(tail[2].seq, 5u);
}

TEST(EventRingTest, ZeroCapacityIsInert) {
  EventRing ring(0);
  LogEvent e;
  e.seq = 1;
  ring.Append(std::move(e));
  EXPECT_EQ(ring.total(), 0u);
  EXPECT_TRUE(ring.Tail().empty());
}

TEST(LogEventTest, JsonRenderingEscapesAndOrders) {
  LogEvent e;
  e.seq = 7;
  e.time = 120.5;
  e.name = "shed.queue_full";
  e.attrs = {{"request_id", "9"}, {"note", "line\nbreak \"q\""}};
  std::string out;
  AppendLogEventJson(&out, e);
  EXPECT_EQ(out,
            "{\"seq\": 7, \"time\": 120.5, \"name\": \"shed.queue_full\", "
            "\"attrs\": {\"request_id\": \"9\", "
            "\"note\": \"line\\nbreak \\\"q\\\"\"}}");
  std::string lines = LogEventsToJsonLines({e, e});
  EXPECT_EQ(lines, out + "\n" + out + "\n");
}

// ---------------------------------------------------------------------
// Windowed time-series recorder.

TEST(QuantilesTest, IntegerRankOverBucketDeltas) {
  EXPECT_EQ(QuantilesFromBucketDeltas({}).count, 0);
  EXPECT_EQ(QuantilesFromBucketDeltas({}).p99, 0);

  // One bucket: every quantile is its upper bound.
  WindowQuantiles single = QuantilesFromBucketDeltas({{3, 10}});
  EXPECT_EQ(single.count, 10);
  EXPECT_EQ(single.p50, 8.0);
  EXPECT_EQ(single.p99, 8.0);

  // 50 in bucket 1, 45 in bucket 2, 5 in bucket 3: rank(50)=50 lands in
  // bucket 1 (ub 2), rank(95)=95 in bucket 2 (ub 4), rank(99)=99 in
  // bucket 3 (ub 8).
  WindowQuantiles q = QuantilesFromBucketDeltas({{1, 50}, {2, 45}, {3, 5}});
  EXPECT_EQ(q.count, 100);
  EXPECT_EQ(q.p50, 2.0);
  EXPECT_EQ(q.p95, 4.0);
  EXPECT_EQ(q.p99, 8.0);
}

TEST(TimeSeriesRecorderTest, BoundaryEventLandsInNextWindow) {
  MetricsRegistry registry;
  TimeSeriesOptions opts;
  opts.window_width = 10;
  TimeSeriesRecorder rec(&registry, opts);
  ASSERT_TRUE(rec.enabled());

  // Event at t=5: advance first, then record its effects.
  rec.AdvanceTo(5);
  registry.counter(kMetricServeCompleted)->Increment();
  registry.gauge(kMetricServeCompletedWork)->Add(40.0);

  // Event exactly on the t=10 boundary: the window [0,10) closes BEFORE
  // the effects land, so this completion belongs to window 1.
  rec.AdvanceTo(10);
  registry.counter(kMetricServeCompleted)->Increment();
  registry.counter(kMetricServeShedBudget)->Increment();

  rec.Finish(15);
  const auto& windows = rec.windows();
  ASSERT_EQ(windows.size(), 2u);
  EXPECT_EQ(windows[0].start, 0.0);
  EXPECT_EQ(windows[0].end, 10.0);
  EXPECT_EQ(windows[0].completed, 1);
  EXPECT_EQ(windows[0].shed, 0);
  EXPECT_EQ(windows[0].completed_work, 40.0);
  EXPECT_EQ(windows[0].goodput, 4.0);
  EXPECT_EQ(windows[0].deadline_hit_rate, 1.0);
  EXPECT_EQ(windows[1].start, 10.0);
  EXPECT_EQ(windows[1].end, 15.0);
  EXPECT_EQ(windows[1].completed, 1);
  EXPECT_EQ(windows[1].shed, 1);
  // Counter deltas are per-window, keyed by the full serve.* schema.
  EXPECT_EQ(windows[0].counters.at("serve.completed"), 1);
  EXPECT_EQ(windows[1].counters.at("serve.shed_budget"), 1);
  // Virtual-time recording never reads a clock.
  EXPECT_EQ(rec.clock_reads(), 0);
  // Two windows -> two JSON lines; digest is stable.
  std::string lines = rec.ToJsonLines();
  EXPECT_EQ(std::count(lines.begin(), lines.end(), '\n'), 2);
  EXPECT_EQ(rec.Digest(), Fnv1a64Hex(lines));
}

TEST(TimeSeriesRecorderTest, DisabledRecorderIsInert) {
  MetricsRegistry registry;
  TimeSeriesOptions opts;
  opts.window_width = 0;
  TimeSeriesRecorder rec(&registry, opts);
  EXPECT_FALSE(rec.enabled());
  rec.AdvanceTo(100);
  rec.Finish(200);
  EXPECT_TRUE(rec.windows().empty());
  EXPECT_EQ(rec.clock_reads(), 0);
}

TEST(TimeSeriesRecorderTest, DigestExcludesWallTimestamps) {
  MetricsRegistry registry;
  TimeSeriesOptions wall_opts;
  wall_opts.window_width = 10;
  wall_opts.capture_wall_time = true;
  TimeSeriesRecorder wall(&registry, wall_opts);
  wall.AdvanceTo(5);
  registry.counter(kMetricServeCompleted)->Increment();
  wall.Finish(12);
  ASSERT_EQ(wall.windows().size(), 2u);
  EXPECT_GT(wall.clock_reads(), 0);
  EXPECT_NE(wall.ToJsonLines().find("wall_ns"), std::string::npos);
  // The digest scrubs wall_ns, so it matches a virtual-only recorder
  // that saw the same schedule.
  MetricsRegistry registry2;
  TimeSeriesOptions virt_opts;
  virt_opts.window_width = 10;
  TimeSeriesRecorder virt(&registry2, virt_opts);
  virt.AdvanceTo(5);
  registry2.counter(kMetricServeCompleted)->Increment();
  virt.Finish(12);
  EXPECT_EQ(virt.ToJsonLines().find("wall_ns"), std::string::npos);
  EXPECT_EQ(wall.Digest(), virt.Digest());
}

// ---------------------------------------------------------------------
// Admission-primitive edge cases (satellites).

TEST(AdmissionEdgeTest, ZeroCapacityQueueIsAlwaysFull) {
  DeadlineQueue q(0);
  EXPECT_TRUE(q.Full());
  EXPECT_TRUE(q.Empty());
  EXPECT_EQ(q.capacity(), 0u);
}

TEST(AdmissionEdgeTest, ZeroCapacityPoolIsUnlimited) {
  WorkBudgetPool pool(0);
  for (int i = 0; i < 64; ++i) {
    EXPECT_TRUE(pool.TryReserve(1e9));
  }
  EXPECT_EQ(pool.reservations(), 64);
}

TEST(AdmissionEdgeTest, PoolAdmitsExactlyToCapacityBoundary) {
  WorkBudgetPool pool(10.0);
  EXPECT_TRUE(pool.TryReserve(4.0));
  EXPECT_TRUE(pool.TryReserve(6.0));  // lands exactly on capacity
  EXPECT_EQ(pool.outstanding(), 10.0);
  EXPECT_FALSE(pool.TryReserve(0.0625));  // any overshoot sheds
  pool.Release(4.0);
  pool.Release(6.0);
  EXPECT_EQ(pool.outstanding(), 0.0);  // snapped exactly to zero
  EXPECT_EQ(pool.reservations(), 0);
  // An empty pool admits one oversized request rather than starving it.
  EXPECT_TRUE(pool.TryReserve(1000.0));
}

TEST(RetryBackoffTest, HintAtExactScheduleBoundary) {
  RetryPolicy policy;
  policy.jitter_fraction = 0;  // isolate the deterministic schedule
  // First retry: schedule is base_backoff; a hint exactly equal to it
  // yields exactly that value (no off-by-one between max() arms).
  EXPECT_EQ(RetryBackoff(policy, 1, 2, policy.base_backoff),
            policy.base_backoff);
  // A hint above the schedule wins outright.
  EXPECT_EQ(RetryBackoff(policy, 1, 2, 100.0), 100.0);
  // Deep attempts cap at max_backoff; a hint exactly at the cap stays
  // at the cap.
  EXPECT_EQ(RetryBackoff(policy, 1, 64, policy.max_backoff),
            policy.max_backoff);
  EXPECT_EQ(RetryBackoff(policy, 1, 64, 0), policy.max_backoff);
}

TEST(RetryBackoffTest, JitterIsDeterministicPerKeyAndAttempt) {
  RetryPolicy policy;
  double a = RetryBackoff(policy, 77, 2, 0);
  EXPECT_EQ(a, RetryBackoff(policy, 77, 2, 0));
  EXPECT_NE(a, RetryBackoff(policy, 78, 2, 0));
  EXPECT_GE(a, policy.base_backoff);
  EXPECT_LT(a, policy.base_backoff * (1.0 + policy.jitter_fraction));
}

// ---------------------------------------------------------------------
// SessionManager integration: windows, traces, post-mortems.

ServeConfig TelemetryConfig(double window_width) {
  ServeConfig config;
  config.telemetry.window_width = window_width;
  config.telemetry.trace_sample_period = 1;  // sample everything
  config.telemetry.rng_seed = 42;
  config.telemetry.flight_recorder_capacity = 16;
  config.telemetry.postmortem_limit = 4;
  config.telemetry.keep_event_log = true;
  return config;
}

TEST(ServeTelemetryTest, WindowRolloverExactlyOnShedEvent) {
  TelemetryFixture& f = Fixture();
  ServeConfig config = TelemetryConfig(/*window_width=*/100.0);
  config.max_concurrent = 1;
  config.queue_capacity = 0;  // always-full queue: busy slot => shed
  SessionManager manager(f.db.get(), *f.data.tree, *f.mapping, config,
                         nullptr);
  uint64_t sid = manager.OpenSession();

  ServeRequest scan;
  scan.query = TelemetryFixture::ScanAllQuery();
  ServeResponse shed;
  uint64_t ticket = 0;
  ASSERT_EQ(manager.Offer(sid, scan, /*now=*/1.0, &shed, &ticket),
            AdmitOutcome::kRun);

  // Second offer exactly on the window boundary: the [0,100) window must
  // close BEFORE the shed lands, so windows[0].shed == 0 and the shed is
  // the first event of window 1.
  ServeRequest second;
  second.query = TelemetryFixture::SelectiveQuery();
  ServeResponse shed2;
  uint64_t t2 = 0;
  ASSERT_EQ(manager.Offer(sid, second, /*now=*/100.0, &shed2, &t2),
            AdmitOutcome::kShed);
  EXPECT_EQ(shed2.status.code(), StatusCode::kResourceExhausted);

  ServeResponse done = manager.ExecuteTicket(ticket, 100.0);
  EXPECT_TRUE(done.status.ok()) << done.status.ToString();
  manager.CompleteTicket(ticket, 100.0 + done.work);
  manager.FinalizeTelemetry(100.0 + done.work + 1.0);

  ServeTelemetry* telemetry = manager.telemetry();
  ASSERT_NE(telemetry, nullptr);
  const auto& windows = telemetry->recorder().windows();
  ASSERT_GE(windows.size(), 2u);
  EXPECT_EQ(windows[0].end, 100.0);
  EXPECT_EQ(windows[0].shed, 0);
  EXPECT_EQ(windows[1].shed, 1);

  // The shed captured a post-mortem: trigger, recent events, manager
  // state, and the shed request's plan explain.
  ASSERT_GE(telemetry->postmortems().size(), 1u);
  const PostmortemBundle& bundle = telemetry->postmortems()[0];
  EXPECT_EQ(bundle.trigger, "shed.queue_full");
  EXPECT_EQ(bundle.time, 100.0);
  EXPECT_EQ(bundle.request_id, 2u);
  EXPECT_EQ(bundle.running, 1);
  EXPECT_FALSE(bundle.events.empty());
  EXPECT_FALSE(bundle.plan_explain.empty());
  std::string json = bundle.ToJson();
  EXPECT_NE(json.find("\"trigger\": \"shed.queue_full\""),
            std::string::npos);
  EXPECT_NE(json.find("\"events\": ["), std::string::npos);
  // Virtual-time drivers never read a clock, even with telemetry on.
  EXPECT_EQ(telemetry->clock_reads(), 0);
}

TEST(ServeTelemetryTest, SampledTraceCoversRequestLifecycle) {
  TelemetryFixture& f = Fixture();
  ServeConfig config = TelemetryConfig(/*window_width=*/1000.0);
  SessionManager manager(f.db.get(), *f.data.tree, *f.mapping, config,
                         nullptr);
  uint64_t sid = manager.OpenSession();
  ServeRequest req;
  req.query = TelemetryFixture::SelectiveQuery();
  ServeResponse shed;
  uint64_t ticket = 0;
  ASSERT_EQ(manager.Offer(sid, req, 1.0, &shed, &ticket),
            AdmitOutcome::kRun);
  ServeResponse done = manager.ExecuteTicket(ticket, 1.0);
  ASSERT_TRUE(done.status.ok()) << done.status.ToString();
  manager.CompleteTicket(ticket, 1.0 + done.work);
  manager.FinalizeTelemetry(1.0 + done.work);

  ServeTelemetry* telemetry = manager.telemetry();
  ASSERT_NE(telemetry, nullptr);
  EXPECT_EQ(telemetry->traces_sampled(), 1u);
  std::string traces = telemetry->TracesJsonLines();
  EXPECT_NE(traces.find("\"request_id\": 1"), std::string::npos);
  for (const char* span : {"planning", "budget", "admission", "execute",
                           "complete"}) {
    EXPECT_NE(traces.find(std::string("\"name\": \"") + span + "\""),
              std::string::npos)
        << "missing span " << span << " in " << traces;
  }
  EXPECT_NE(traces.find("\"outcome\": \"completed\""), std::string::npos);
  // The full event log retained the lifecycle events in order.
  std::string events = telemetry->EventsJsonLines();
  EXPECT_NE(events.find("request.admitted"), std::string::npos);
  EXPECT_NE(events.find("execute.done"), std::string::npos);
  EXPECT_NE(events.find("request.complete"), std::string::npos);
}

TEST(ServeTelemetryTest, QueueExpiryAtExactDeadlineBoundary) {
  TelemetryFixture& f = Fixture();
  ServeConfig config = TelemetryConfig(/*window_width=*/1000.0);
  config.max_concurrent = 1;
  config.queue_capacity = 4;
  SessionManager manager(f.db.get(), *f.data.tree, *f.mapping, config,
                         nullptr);
  uint64_t sid = manager.OpenSession();

  ServeRequest scan;
  scan.query = TelemetryFixture::ScanAllQuery();
  ServeResponse shed;
  uint64_t running = 0;
  ASSERT_EQ(manager.Offer(sid, scan, 0.0, &shed, &running),
            AdmitOutcome::kRun);

  ServeRequest queued;
  queued.query = TelemetryFixture::SelectiveQuery();
  queued.deadline_work = 10.0;  // deadline_abs = 10
  uint64_t waiting = 0;
  ASSERT_EQ(manager.Offer(sid, queued, 0.0, &shed, &waiting),
            AdmitOutcome::kQueued);

  manager.ExecuteTicket(running, 0.0);
  // Completion lands exactly on the queued request's deadline: expiry
  // uses now >= deadline, so the boundary expires rather than runs.
  EXPECT_EQ(manager.CompleteTicket(running, 10.0), 0u);
  EXPECT_FALSE(manager.HasPending(waiting));
  manager.FinalizeTelemetry(10.0);

  ServeTelemetry* telemetry = manager.telemetry();
  ASSERT_NE(telemetry, nullptr);
  bool found = false;
  for (const PostmortemBundle& b : telemetry->postmortems()) {
    if (b.trigger == "expired.queue") {
      found = true;
      EXPECT_EQ(b.time, 10.0);
      EXPECT_FALSE(b.plan_explain.empty());
    }
  }
  EXPECT_TRUE(found);
  // Both requests' traces finished (one completed, one expired).
  EXPECT_EQ(telemetry->traces_sampled(), 2u);
  EXPECT_NE(telemetry->TracesJsonLines().find("expired_in_queue"),
            std::string::npos);
}

TEST(ServeTelemetryTest, SoakExportsAreIdenticalAcrossExecThreads) {
  TelemetryFixture& f = Fixture();
  XPathWorkload mix = {TelemetryFixture::SelectiveQuery(),
                       TelemetryFixture::ScanAllQuery()};
  // Scale the load off the measured work of the mix (as the bench does)
  // so the soak genuinely overloads: arrivals twice as fast as the mean
  // service time, tight deadlines, a small shared budget.
  double mean_work = 0;
  {
    ServeConfig probe_config;
    SessionManager probe(f.db.get(), *f.data.tree, *f.mapping,
                         probe_config, nullptr);
    uint64_t sid = probe.OpenSession();
    for (const XPathQuery& q : mix) {
      ServeRequest req;
      req.query = q;
      ServeResponse shed;
      uint64_t ticket = 0;
      ASSERT_EQ(probe.Offer(sid, req, 0.0, &shed, &ticket),
                AdmitOutcome::kRun);
      ServeResponse done = probe.ExecuteTicket(ticket, 0.0);
      ASSERT_TRUE(done.status.ok()) << done.status.ToString();
      probe.CompleteTicket(ticket, done.work);
      mean_work += done.work;
    }
    mean_work /= static_cast<double>(mix.size());
  }
  ASSERT_GT(mean_work, 0);
  struct Exports {
    std::string timeseries, traces, events, postmortems;
    size_t windows = 0, bundles = 0;
    int64_t clock_reads = 0;
  };
  auto run_once = [&](int exec_threads) {
    ServeConfig config = TelemetryConfig(
        /*window_width=*/5.0 * mean_work);
    config.telemetry.trace_sample_period = 4;
    config.max_concurrent = 2;
    config.queue_capacity = 2;
    config.global_work_budget = 3.0 * mean_work;
    config.exec_threads = exec_threads;
    SessionManager manager(f.db.get(), *f.data.tree, *f.mapping, config,
                           nullptr);
    SoakOptions options;
    options.num_clients = 3;
    options.requests_per_client = 12;
    options.mean_gap = 0.5 * mean_work;  // overload: plenty of shedding
    options.deadline_work = 2.0 * mean_work;
    options.seed = 7;
    auto report = RunSoak(&manager, mix, options);
    EXPECT_TRUE(report.ok()) << report.status();
    EXPECT_TRUE(report->invariants_ok) << report->invariant_error;
    ServeTelemetry* telemetry = manager.telemetry();
    EXPECT_NE(telemetry, nullptr);
    Exports e;
    e.timeseries = telemetry->TimeSeriesDigest();
    e.traces = telemetry->TracesDigest();
    e.events = telemetry->EventsDigest();
    e.postmortems = telemetry->PostmortemsDigest();
    e.windows = telemetry->recorder().windows().size();
    e.bundles = telemetry->postmortems().size();
    e.clock_reads = telemetry->clock_reads();
    return e;
  };
  Exports t1 = run_once(1);
  Exports t4 = run_once(4);
  EXPECT_GT(t1.windows, 1u);
  EXPECT_GE(t1.bundles, 1u);  // the overload sheds -> post-mortems exist
  EXPECT_EQ(t1.clock_reads, 0);
  EXPECT_EQ(t4.clock_reads, 0);
  EXPECT_EQ(t1.timeseries, t4.timeseries);
  EXPECT_EQ(t1.traces, t4.traces);
  EXPECT_EQ(t1.events, t4.events);
  EXPECT_EQ(t1.postmortems, t4.postmortems);
}

// ---------------------------------------------------------------------
// Hot-path cost contract.

TEST(ServeTelemetryCostTest, DisabledTelemetryAddsNoAllocationsOrClocks) {
  TelemetryFixture& f = Fixture();
  ServeConfig disabled_config;  // telemetry all-off by default
  ASSERT_FALSE(disabled_config.telemetry.enabled());
  SessionManager disabled(f.db.get(), *f.data.tree, *f.mapping,
                          disabled_config, nullptr);
  EXPECT_EQ(disabled.telemetry(), nullptr);
  uint64_t sid = disabled.OpenSession();

  ServeRequest req;
  req.query = TelemetryFixture::SelectiveQuery();
  auto cycle = [&](SessionManager& manager, uint64_t session,
                   double now) {
    ServeResponse shed;
    uint64_t ticket = 0;
    EXPECT_EQ(manager.Offer(session, req, now, &shed, &ticket),
              AdmitOutcome::kRun);
    ServeResponse done = manager.ExecuteTicket(ticket, now);
    EXPECT_TRUE(done.status.ok()) << done.status.ToString();
    manager.CompleteTicket(ticket, now + done.work);
    return now + done.work + 1.0;
  };

  // Warm the caches (metric handles, map nodes, executor scratch), then
  // require the steady-state allocation count of a full request cycle to
  // be reproducible — if the disabled path allocated per-request
  // telemetry state, the counts would still match; combined with
  // telemetry() == nullptr this pins "no recorder work at all", and any
  // future allocation added to the disabled path shows up as a diff
  // between enabled and disabled baselines below.
  double now = 0;
  for (int i = 0; i < 3; ++i) now = cycle(disabled, sid, now);
  long long before4 = g_alloc_count.load(std::memory_order_relaxed);
  now = cycle(disabled, sid, now);
  long long cycle4 = g_alloc_count.load(std::memory_order_relaxed) - before4;
  long long before5 = g_alloc_count.load(std::memory_order_relaxed);
  now = cycle(disabled, sid, now);
  long long cycle5 = g_alloc_count.load(std::memory_order_relaxed) - before5;
  EXPECT_EQ(cycle4, cycle5);

  // The same cycle with telemetry enabled allocates strictly more (the
  // recorder, events, and trace spans) — evidence the counter actually
  // observes the telemetry work the disabled path skips.
  SessionManager enabled(f.db.get(), *f.data.tree, *f.mapping,
                         TelemetryConfig(/*window_width=*/50.0), nullptr);
  ASSERT_NE(enabled.telemetry(), nullptr);
  uint64_t esid = enabled.OpenSession();
  double enow = 0;
  for (int i = 0; i < 3; ++i) enow = cycle(enabled, esid, enow);
  long long ebefore = g_alloc_count.load(std::memory_order_relaxed);
  enow = cycle(enabled, esid, enow);
  long long ecycle = g_alloc_count.load(std::memory_order_relaxed) - ebefore;
  EXPECT_GT(ecycle, cycle5);
  // And even enabled, virtual-time telemetry reads no clock.
  EXPECT_EQ(enabled.telemetry()->clock_reads(), 0);
}

}  // namespace
}  // namespace xmlshred
