// Observability-layer tests (DESIGN.md §9): the metrics registry's
// lock-free counters are exact under concurrency, the JSON exports are
// deterministic (goldens), the span tree a search emits is bit-identical
// at any thread count, SearchResult::report is populated from the per-run
// registry, and the what-if rollback counters survive the parallel
// costing reduction (the PR-3 aggregation fix, checked differentially
// under deterministic fault injection).

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/fault_injection.h"
#include "common/metrics.h"
#include "common/run_report.h"
#include "common/trace.h"
#include "search/greedy.h"
#include "workload/movie.h"
#include "workload/query_gen.h"

namespace xmlshred {
namespace {

// --- Metrics registry ---

TEST(MetricsRegistryTest, CounterGaugeHistogramBasics) {
  MetricsRegistry registry;
  Counter* c = registry.counter("test.counter");
  c->Increment();
  c->Add(41);
  EXPECT_EQ(c->value(), 42);
  // Same name resolves to the same handle.
  EXPECT_EQ(registry.counter("test.counter"), c);

  Gauge* g = registry.gauge("test.gauge");
  g->Set(1.5);
  g->Add(2.5);
  EXPECT_EQ(g->value(), 4.0);

  Histogram* h = registry.histogram("test.hist");
  h->Observe(0.5);
  h->Observe(3.0);
  EXPECT_EQ(h->count(), 2);
  EXPECT_EQ(h->sum(), 3.5);
  EXPECT_EQ(h->bucket(Histogram::BucketIndex(0.5)), 1);
  EXPECT_EQ(h->bucket(Histogram::BucketIndex(3.0)), 1);
}

TEST(MetricsRegistryTest, HistogramBucketing) {
  // Bucket 0 holds everything below 1 (and non-finite garbage); bucket
  // i >= 1 holds [2^(i-1), 2^i).
  EXPECT_EQ(Histogram::BucketIndex(0.0), 0);
  EXPECT_EQ(Histogram::BucketIndex(-5.0), 0);
  EXPECT_EQ(Histogram::BucketIndex(0.999), 0);
  EXPECT_EQ(Histogram::BucketIndex(1.0), 1);
  EXPECT_EQ(Histogram::BucketIndex(1.999), 1);
  EXPECT_EQ(Histogram::BucketIndex(2.0), 2);
  EXPECT_EQ(Histogram::BucketIndex(3.999), 2);
  EXPECT_EQ(Histogram::BucketIndex(4.0), 3);
  EXPECT_EQ(Histogram::BucketIndex(1e300), Histogram::kBuckets - 1);
  EXPECT_EQ(Histogram::BucketUpperBound(0), 1.0);
  EXPECT_EQ(Histogram::BucketUpperBound(1), 2.0);
  EXPECT_EQ(Histogram::BucketUpperBound(2), 4.0);
}

TEST(MetricsRegistryTest, SnapshotJsonCarriesFullSchema) {
  MetricsRegistry registry;
  std::string json = registry.Snapshot().ToJson();
  // schema_version leads; every well-known metric is present even when
  // its stage never ran, so consumers can rely on key presence.
  EXPECT_EQ(json.rfind("{\n  \"schema_version\": 1,\n  \"counters\": {", 0),
            0u);
  for (const char* name :
       {kMetricParseXmlDocuments, kMetricParseXsdSchemas,
        kMetricParseDtdSchemas, kMetricShredRows, kMetricSearchRuns,
        kMetricSearchRounds, kMetricSearchTunerCalls,
        kMetricSearchWhatifRollbacks, kMetricCostCacheHits,
        kMetricAdvisorTuneCalls, kMetricPlannerQueriesPlanned,
        kMetricExecQueries, kMetricSearchWorkSpent, kMetricExecWork,
        kMetricSearchRoundCandidates, kMetricPlannerEstCost,
        kMetricExecRowsPerQuery}) {
    EXPECT_NE(json.find("\"" + std::string(name) + "\""), std::string::npos)
        << name;
  }
}

TEST(MetricsRegistryTest, HistogramJsonGolden) {
  MetricsRegistry registry;
  Histogram* h = registry.histogram(kMetricPlannerEstCost);
  h->Observe(0.5);
  h->Observe(3.0);
  h->Observe(3.0);
  std::string json = registry.Snapshot().ToJson();
  EXPECT_NE(json.find("\"planner.est_cost\": {\"count\": 3, \"sum\": 6.5, "
                      "\"buckets\": [{\"le\": 1, \"count\": 1}, "
                      "{\"le\": 4, \"count\": 2}]}"),
            std::string::npos)
      << json;
}

TEST(MetricsRegistryTest, MergeAddsExactly) {
  MetricsRegistry a;
  a.counter("m.c")->Add(7);
  a.gauge("m.g")->Set(2.5);
  a.histogram("m.h")->Observe(3.0);

  MetricsRegistry b;
  b.counter("m.c")->Add(5);
  b.gauge("m.g")->Set(1.5);
  b.histogram("m.h")->Observe(3.0);
  b.Merge(a.Snapshot());

  MetricsSnapshot merged = b.Snapshot();
  EXPECT_EQ(merged.counters["m.c"], 12);
  EXPECT_EQ(merged.gauges["m.g"], 4.0);
  EXPECT_EQ(merged.histograms["m.h"].count, 2);
  EXPECT_EQ(merged.histograms["m.h"].sum, 6.0);
}

// Exactness under concurrency: this is the test TSan CI configs lean on.
TEST(MetricsRegistryTest, ConcurrentUpdatesAreExact) {
  MetricsRegistry registry;
  Counter* counter = registry.counter("hammer.counter");
  Gauge* gauge = registry.gauge("hammer.gauge");
  Histogram* hist = registry.histogram("hammer.hist");
  constexpr int kThreads = 8;
  constexpr int kIters = 20000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&registry, counter, gauge, hist] {
      for (int i = 0; i < kIters; ++i) {
        counter->Increment();
        gauge->Add(1.0);
        hist->Observe(2.0);
        // Concurrent handle resolution races with the updates above.
        if (i % 4096 == 0) registry.counter("hammer.counter");
      }
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(counter->value(), int64_t{kThreads} * kIters);
  // Adds of 1.0 are exact in double well past this total.
  EXPECT_EQ(gauge->value(), double{kThreads} * kIters);
  EXPECT_EQ(hist->count(), int64_t{kThreads} * kIters);
  EXPECT_EQ(hist->bucket(Histogram::BucketIndex(2.0)),
            int64_t{kThreads} * kIters);
}

// --- Trace sink ---

TEST(TraceSinkTest, GoldenJson) {
  TraceSink sink;
  {
    SpanScope root(&sink, "root");
    root.Attr("k", "v");
    root.Attr("n", 7);
    SpanScope child(&sink, "child");
    child.Attr("flag", true);
  }
  EXPECT_EQ(sink.ToJson(/*include_timing=*/false),
            "{\n"
            "  \"schema_version\": 1,\n"
            "  \"spans\": [\n"
            "    {\"name\": \"root\", \"attrs\": {\"k\": \"v\", "
            "\"n\": \"7\"}, \"duration_ns\": 0, \"children\": [\n"
            "      {\"name\": \"child\", \"attrs\": {\"flag\": \"true\"}, "
            "\"duration_ns\": 0, \"children\": []}\n"
            "    ]}\n"
            "  ]\n"
            "}\n");
}

TEST(TraceSinkTest, NullSinkIsInert) {
  SpanScope span(nullptr, "nothing");
  span.Attr("k", "v");
  EXPECT_FALSE(span.active());
}

TEST(TraceSinkTest, AdoptSplicesUnderOpenSpanInOrder) {
  TraceSink sink;
  TraceSink task_a;
  TraceSink task_b;
  { SpanScope a(&task_a, "task-a"); }
  { SpanScope b(&task_b, "task-b"); }
  {
    SpanScope round(&sink, "round");
    // Adoption order, not completion order, decides the layout.
    sink.Adopt(&task_a);
    sink.Adopt(&task_b);
    sink.Adopt(nullptr);  // no-op
  }
  ASSERT_EQ(sink.roots().size(), 1u);
  const TraceSpan& round = *sink.roots()[0];
  ASSERT_EQ(round.children.size(), 2u);
  EXPECT_EQ(round.children[0]->name, "task-a");
  EXPECT_EQ(round.children[1]->name, "task-b");
  EXPECT_TRUE(task_a.empty());
}

TEST(TraceSinkTest, TimingZeroedForStructuralComparison) {
  TraceSink timed(/*capture_timing=*/true);
  { SpanScope span(&timed, "work"); }
  TraceSink untimed;
  { SpanScope span(&untimed, "work"); }
  EXPECT_EQ(timed.ToJson(/*include_timing=*/false),
            untimed.ToJson(/*include_timing=*/false));
}

// --- End-to-end determinism and reporting ---

class ObservabilitySearchTest : public ::testing::Test {
 protected:
  void SetUp() override {
    MovieConfig config;
    config.num_movies = 1200;
    data_ = GenerateMovie(config);
    auto stats = XmlStatistics::Collect(data_.doc, *data_.tree);
    ASSERT_TRUE(stats.ok()) << stats.status();
    stats_ = std::make_unique<XmlStatistics>(std::move(*stats));
    problem_.tree = data_.tree.get();
    problem_.stats = stats_.get();
    auto mapping = Mapping::Build(*data_.tree);
    ASSERT_TRUE(mapping.ok());
    CatalogDesc catalog = stats_->DeriveCatalog(*data_.tree, *mapping);
    problem_.storage_bound_pages = catalog.DataPages() * 6 + 1024;
    WorkloadSpec spec;
    spec.num_queries = 6;
    spec.seed = 11;
    auto workload = GenerateWorkload(*data_.tree, *stats_, spec);
    ASSERT_TRUE(workload.ok()) << workload.status();
    problem_.workload = std::move(*workload);
  }

  GeneratedData data_;
  std::unique_ptr<XmlStatistics> stats_;
  DesignProblem problem_;
};

TEST_F(ObservabilitySearchTest, SpanTreeIdenticalAcrossThreadCounts) {
  auto trace_of = [&](int threads) {
    TraceSink sink;
    DesignProblem problem = problem_;
    problem.exec.trace = &sink;
    GreedyOptions options;
    options.num_threads = threads;
    auto result = GreedySearch(problem, options);
    EXPECT_TRUE(result.ok()) << result.status();
    return sink.ToJson(/*include_timing=*/false);
  };
  std::string serial = trace_of(1);
  EXPECT_NE(serial.find("\"search.greedy\""), std::string::npos);
  EXPECT_NE(serial.find("\"search.round\""), std::string::npos);
  EXPECT_NE(serial.find("\"search.cost_candidate\""), std::string::npos);
  EXPECT_EQ(serial, trace_of(4));
}

TEST_F(ObservabilitySearchTest, CountersIdenticalAcrossThreadCounts) {
  auto counters_of = [&](int threads) {
    MetricsRegistry registry;
    DesignProblem problem = problem_;
    problem.exec.metrics = &registry;
    GreedyOptions options;
    options.num_threads = threads;
    auto result = GreedySearch(problem, options);
    EXPECT_TRUE(result.ok()) << result.status();
    MetricsSnapshot snapshot = registry.Snapshot();
    // The documented carve-outs: the cache hit/miss split is scheduling-
    // dependent under parallel costing (a hit is observably identical to
    // recomputing), and elapsed time is wall-clock.
    snapshot.counters.erase(kMetricCostCacheHits);
    snapshot.counters.erase(kMetricCostCacheMisses);
    snapshot.counters.erase(kMetricSearchDerivationCacheHits);
    return snapshot.counters;
  };
  auto serial = counters_of(1);
  EXPECT_GT(serial.at(kMetricSearchRounds), 0);
  EXPECT_GT(serial.at(kMetricSearchTunerCalls), 0);
  EXPECT_EQ(serial.at(kMetricSearchRuns), 1);
  EXPECT_EQ(serial, counters_of(4));
}

TEST_F(ObservabilitySearchTest, RunReportPopulatedFromMetrics) {
  MetricsRegistry registry;
  problem_.exec.metrics = &registry;
  GreedyOptions options;
  options.num_threads = 1;
  auto result = GreedySearch(problem_, options);
  ASSERT_TRUE(result.ok()) << result.status();
  const RunReport& report = result->report;
  EXPECT_EQ(report.search.algorithm, "greedy");
  EXPECT_EQ(report.search.rounds, result->telemetry.rounds);
  EXPECT_EQ(report.search.tuner_calls, result->telemetry.tuner_calls);
  EXPECT_EQ(report.search.optimizer_calls,
            result->telemetry.optimizer_calls);
  EXPECT_EQ(report.search.candidates_selected,
            result->telemetry.candidates_selected);
  EXPECT_EQ(report.search.truncated, result->truncated);
  EXPECT_GT(report.advisor.tune_calls, 0);
  EXPECT_GT(report.cost_cache.misses, 0);
  // The registry the caller attached saw the same run.
  MetricsSnapshot snapshot = registry.Snapshot();
  EXPECT_EQ(snapshot.counters.at(kMetricSearchRounds),
            report.search.rounds);
  std::string json = report.ToJson();
  EXPECT_NE(json.find("\"schema_version\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"search\""), std::string::npos);
  EXPECT_NE(json.find("\"advisor\""), std::string::npos);
  EXPECT_NE(json.find("\"cost_cache\""), std::string::npos);
  EXPECT_NE(json.find("\"storage\""), std::string::npos);
}

// The PR-3 aggregation fix, differentially: arm the what-if site so
// exactly one deterministic rollback happens somewhere in the run, and
// require the search-level telemetry to surface it at every thread count.
// Before the fix the parallel reduction dropped the workers' rollback and
// skip counters on the floor.
TEST_F(ObservabilitySearchTest,
       WhatifRollbacksSurviveParallelAggregation) {
  auto run = [&](int threads) {
    // Fires an Internal error on the first advisor what-if of the run;
    // the advisor rolls the hypothetical candidate back and skips it.
    ScopedFaultInjection armed(kFaultSiteAdvisorWhatIf, 1);
    GreedyOptions options;
    options.num_threads = threads;
    return GreedySearch(problem_, options);
  };
  auto serial = run(1);
  ASSERT_TRUE(serial.ok()) << serial.status();
  EXPECT_EQ(serial->telemetry.whatif_rollbacks, 1);
  EXPECT_EQ(serial->telemetry.advisor_candidates_skipped, 1);
  EXPECT_EQ(serial->report.advisor.whatif_rollbacks, 1);
  for (int threads : {2, 4}) {
    auto parallel = run(threads);
    ASSERT_TRUE(parallel.ok()) << parallel.status();
    SCOPED_TRACE("threads=" + std::to_string(threads));
    EXPECT_EQ(parallel->telemetry.whatif_rollbacks,
              serial->telemetry.whatif_rollbacks);
    EXPECT_EQ(parallel->telemetry.advisor_candidates_skipped,
              serial->telemetry.advisor_candidates_skipped);
    EXPECT_EQ(parallel->report.advisor.whatif_rollbacks,
              serial->report.advisor.whatif_rollbacks);
  }
}

}  // namespace
}  // namespace xmlshred
