// Unit tests for the SQL parser, printer, and binder.

#include <gtest/gtest.h>

#include "rel/catalog.h"
#include "sql/ast.h"
#include "sql/binder.h"
#include "sql/parser.h"

namespace xmlshred {
namespace {

TEST(SqlParserTest, SimpleSelect) {
  auto result = ParseSql("SELECT title, year FROM inproc");
  ASSERT_TRUE(result.ok()) << result.status();
  const Query& q = *result;
  ASSERT_EQ(q.blocks.size(), 1u);
  EXPECT_EQ(q.blocks[0].items.size(), 2u);
  EXPECT_EQ(q.blocks[0].items[0].column, "title");
  EXPECT_EQ(q.blocks[0].tables[0].table, "inproc");
}

TEST(SqlParserTest, QualifiedColumnsAndAlias) {
  auto result = ParseSql("SELECT I.title FROM inproc I WHERE I.year = 2000");
  ASSERT_TRUE(result.ok()) << result.status();
  const SelectBlock& b = result->blocks[0];
  EXPECT_EQ(b.items[0].table_alias, "I");
  EXPECT_EQ(b.tables[0].alias, "I");
  ASSERT_EQ(b.filters.size(), 1u);
  EXPECT_EQ(b.filters[0].table, "I");
  EXPECT_EQ(b.filters[0].op, "=");
  EXPECT_TRUE(b.filters[0].literal.TotalEquals(Value::Int(2000)));
}

TEST(SqlParserTest, StringLiteralAndComparisons) {
  auto result = ParseSql(
      "SELECT title FROM inproc WHERE booktitle = 'SIGMOD CONFERENCE' AND "
      "year >= 1998");
  ASSERT_TRUE(result.ok()) << result.status();
  const SelectBlock& b = result->blocks[0];
  ASSERT_EQ(b.filters.size(), 2u);
  EXPECT_TRUE(b.filters[0].literal.TotalEquals(Value::Str("SIGMOD CONFERENCE")));
  EXPECT_EQ(b.filters[1].op, ">=");
}

TEST(SqlParserTest, JoinPredicate) {
  auto result = ParseSql(
      "SELECT I.title, A.author FROM inproc I, inproc_author A "
      "WHERE I.ID = A.PID");
  ASSERT_TRUE(result.ok()) << result.status();
  const SelectBlock& b = result->blocks[0];
  ASSERT_EQ(b.joins.size(), 1u);
  EXPECT_EQ(b.joins[0].left_alias, "I");
  EXPECT_EQ(b.joins[0].right_column, "PID");
}

TEST(SqlParserTest, UnionAllWithOrderBy) {
  auto result = ParseSql(
      "SELECT ID, title FROM inproc UNION ALL "
      "SELECT ID, NULL FROM inproc ORDER BY 1");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->blocks.size(), 2u);
  ASSERT_EQ(result->order_by.size(), 1u);
  EXPECT_EQ(result->order_by[0], 0);
  EXPECT_TRUE(result->blocks[1].items[1].is_null_literal);
}

TEST(SqlParserTest, IsNotNull) {
  auto result =
      ParseSql("SELECT title FROM movie WHERE avg_rating IS NOT NULL");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->blocks[0].filters[0].op, "is not null");
}

TEST(SqlParserTest, OrderByName) {
  auto result =
      ParseSql("SELECT ID AS k, title FROM inproc ORDER BY k");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->order_by[0], 0);
}

TEST(SqlParserTest, Errors) {
  EXPECT_FALSE(ParseSql("SELECT FROM t").ok());
  EXPECT_FALSE(ParseSql("SELECT a FROM").ok());
  EXPECT_FALSE(ParseSql("SELECT a FROM t WHERE a <> 3").ok());
  EXPECT_FALSE(ParseSql("SELECT a FROM t WHERE a = 'unterminated").ok());
  EXPECT_FALSE(ParseSql("SELECT a FROM t UNION SELECT a FROM t").ok());
  EXPECT_FALSE(
      ParseSql("SELECT a FROM t UNION ALL SELECT a, b FROM t").ok());
  EXPECT_FALSE(ParseSql("SELECT a FROM t ORDER BY 5").ok());
}

TEST(SqlPrinterTest, RoundTrip) {
  const char* sql =
      "SELECT I.ID, I.title, NULL AS author FROM inproc I "
      "WHERE I.booktitle = 'SIGMOD' UNION ALL "
      "SELECT I.ID, NULL, A.author FROM inproc I, inproc_author A "
      "WHERE I.ID = A.PID AND I.booktitle = 'SIGMOD' ORDER BY 1";
  auto first = ParseSql(sql);
  ASSERT_TRUE(first.ok()) << first.status();
  std::string printed = first->ToSql();
  auto second = ParseSql(printed);
  ASSERT_TRUE(second.ok()) << second.status() << "\n" << printed;
  EXPECT_EQ(second->ToSql(), printed);
}

class BinderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TableSchema parent;
    parent.name = "inproc";
    parent.columns = {{"ID", ColumnType::kInt64, false},
                      {"PID", ColumnType::kInt64, true},
                      {"title", ColumnType::kString, true},
                      {"year", ColumnType::kInt64, true}};
    parent.id_column = 0;
    parent.pid_column = 1;
    TableSchema child;
    child.name = "inproc_author";
    child.columns = {{"ID", ColumnType::kInt64, false},
                     {"PID", ColumnType::kInt64, true},
                     {"author", ColumnType::kString, true}};
    child.id_column = 0;
    child.pid_column = 1;
    Database db;
    ASSERT_TRUE(db.CreateTable(parent).ok());
    ASSERT_TRUE(db.CreateTable(child).ok());
    catalog_ = db.BuildCatalogDesc();
  }

  CatalogDesc catalog_;
};

TEST_F(BinderTest, ResolvesQualifiedAndUnqualified) {
  auto q = ParseSql(
      "SELECT I.title, author FROM inproc I, inproc_author A "
      "WHERE I.ID = A.PID AND year = 2000");
  ASSERT_TRUE(q.ok());
  auto bound = BindQuery(*q, catalog_);
  ASSERT_TRUE(bound.ok()) << bound.status();
  const BoundBlock& b = bound->blocks[0];
  EXPECT_EQ(b.items[0].ref.table_idx, 0);
  EXPECT_EQ(b.items[0].ref.column, 2);
  EXPECT_EQ(b.items[1].ref.table_idx, 1);  // author only in child
  EXPECT_EQ(b.filters[0].ref.table_idx, 0);
  EXPECT_EQ(b.filters[0].ref.column, 3);
}

TEST_F(BinderTest, AmbiguousUnqualifiedFails) {
  auto q = ParseSql("SELECT ID FROM inproc, inproc_author");
  ASSERT_TRUE(q.ok());
  EXPECT_FALSE(BindQuery(*q, catalog_).ok());
}

TEST_F(BinderTest, UnknownTableOrColumnFails) {
  auto q1 = ParseSql("SELECT x FROM nowhere");
  ASSERT_TRUE(q1.ok());
  EXPECT_EQ(BindQuery(*q1, catalog_).status().code(), StatusCode::kNotFound);
  auto q2 = ParseSql("SELECT missing FROM inproc");
  ASSERT_TRUE(q2.ok());
  EXPECT_EQ(BindQuery(*q2, catalog_).status().code(), StatusCode::kNotFound);
}

TEST_F(BinderTest, ReferencedColumnsAggregatesAllUses) {
  auto q = ParseSql(
      "SELECT I.title FROM inproc I, inproc_author A "
      "WHERE I.ID = A.PID AND I.year = 2000");
  ASSERT_TRUE(q.ok());
  auto bound = BindQuery(*q, catalog_);
  ASSERT_TRUE(bound.ok());
  std::vector<int> cols = bound->blocks[0].ReferencedColumns(0);
  // ID (join), title (item), year (filter).
  EXPECT_EQ(cols, (std::vector<int>{0, 2, 3}));
  EXPECT_EQ(bound->blocks[0].ReferencedColumns(1), (std::vector<int>{1}));
}

}  // namespace
}  // namespace xmlshred
