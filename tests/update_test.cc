// Tests for the update-aware design extension (the paper's future-work
// item): insert loads charge maintenance on candidate structures, so
// update-heavy workloads get leaner physical designs.

#include <gtest/gtest.h>

#include "common/logging.h"
#include "mapping/xml_stats.h"
#include "search/greedy.h"
#include "sql/parser.h"
#include "tune/advisor.h"
#include "workload/dblp.h"

namespace xmlshred {
namespace {

class UpdateAwareTest : public ::testing::Test {
 protected:
  void SetUp() override {
    DblpConfig config;
    config.num_inproceedings = 5000;
    config.num_books = 500;
    data_ = GenerateDblp(config);
    auto stats = XmlStatistics::Collect(data_.doc, *data_.tree);
    ASSERT_TRUE(stats.ok());
    stats_ = std::make_unique<XmlStatistics>(std::move(*stats));
    auto mapping = Mapping::Build(*data_.tree);
    ASSERT_TRUE(mapping.ok());
    mapping_ = std::make_unique<Mapping>(std::move(*mapping));
    catalog_ = stats_->DeriveCatalog(*data_.tree, *mapping_);
  }

  WeightedQuery Parse(const std::string& sql, double weight = 1.0) {
    auto q = ParseSql(sql);
    XS_CHECK_OK(q.status());
    return {std::move(*q), weight};
  }

  GeneratedData data_;
  std::unique_ptr<XmlStatistics> stats_;
  std::unique_ptr<Mapping> mapping_;
  CatalogDesc catalog_;
};

TEST_F(UpdateAwareTest, HeavyUpdatesSuppressStructures) {
  std::vector<WeightedQuery> workload = {
      Parse("SELECT title, year FROM inproc WHERE booktitle = 'conf_0'")};
  PhysicalDesignAdvisor advisor(TunerOptions{});
  auto without = advisor.Tune(workload, catalog_);
  ASSERT_TRUE(without.ok());
  ASSERT_FALSE(without->indexes.empty() && without->views.empty());

  // An overwhelming insert rate on inproc makes every structure on it a
  // net loss.
  std::vector<UpdateRate> heavy = {{"inproc", 1e9}};
  auto with = advisor.Tune(workload, catalog_, 0, heavy);
  ASSERT_TRUE(with.ok());
  EXPECT_TRUE(with->indexes.empty() && with->views.empty());
  EXPECT_EQ(with->maintenance_cost, 0);

  // A mild rate keeps the beneficial structures but reports their
  // maintenance.
  std::vector<UpdateRate> mild = {{"inproc", 10.0}};
  auto mild_result = advisor.Tune(workload, catalog_, 0, mild);
  ASSERT_TRUE(mild_result.ok());
  EXPECT_FALSE(mild_result->indexes.empty() && mild_result->views.empty());
  EXPECT_GT(mild_result->maintenance_cost, 0);
  EXPECT_GE(mild_result->total_cost, without->total_cost);
}

TEST_F(UpdateAwareTest, RatesOnlyChargeAffectedTables) {
  std::vector<WeightedQuery> workload = {
      Parse("SELECT title FROM inproc WHERE booktitle = 'conf_1'"),
      Parse("SELECT author FROM book_author WHERE author = 'given_0001 "
            "family_000001'"),
  };
  PhysicalDesignAdvisor advisor(TunerOptions{});
  // Heavy updates on book_author only: inproc keeps its structures.
  std::vector<UpdateRate> rates = {{"book_author", 1e9}};
  auto result = advisor.Tune(workload, catalog_, 0, rates);
  ASSERT_TRUE(result.ok());
  bool inproc_structure = false, book_author_structure = false;
  for (const IndexDesc& idx : result->indexes) {
    if (idx.def.table == "inproc") inproc_structure = true;
    if (idx.def.table == "book_author") book_author_structure = true;
  }
  for (const ViewDesc& view : result->views) {
    if (view.def.base_table == "inproc") inproc_structure = true;
    if (view.def.base_table == "book_author") book_author_structure = true;
  }
  EXPECT_TRUE(inproc_structure);
  EXPECT_FALSE(book_author_structure);
}

TEST_F(UpdateAwareTest, ComputeUpdateRatesScalesByFanout) {
  DesignProblem problem;
  problem.tree = data_.tree.get();
  problem.stats = stats_.get();
  problem.updates = {{"inproceedings", 100.0}};
  std::vector<UpdateRate> rates =
      ComputeUpdateRates(problem, *data_.tree, *mapping_);
  double inproc_rate = 0, author_rate = 0, book_rate = 0;
  for (const UpdateRate& rate : rates) {
    if (rate.table == "inproc") inproc_rate = rate.rows_per_unit;
    if (rate.table == "inproc_author") author_rate = rate.rows_per_unit;
    if (rate.table == "book") book_rate = rate.rows_per_unit;
  }
  // One inproc row per insert; ~2.5-3 author rows (average fanout); no
  // book rows.
  EXPECT_NEAR(inproc_rate, 100.0, 1.0);
  EXPECT_GT(author_rate, 150.0);
  EXPECT_LT(author_rate, 400.0);
  EXPECT_EQ(book_rate, 0.0);
}

TEST_F(UpdateAwareTest, SearchAdaptsMappingToUpdates) {
  // A read workload that loves structures, plus a crushing insert load:
  // the search must still return a design, with far fewer structure
  // pages than the read-only case.
  auto q = ParseXPath(
      "//inproceedings[booktitle = 'conf_0']/(title | year | author)");
  ASSERT_TRUE(q.ok());
  DesignProblem problem;
  problem.tree = data_.tree.get();
  problem.stats = stats_.get();
  problem.workload = {*q};
  problem.storage_bound_pages = catalog_.DataPages() * 4;

  auto read_only = GreedySearch(problem);
  ASSERT_TRUE(read_only.ok()) << read_only.status();

  problem.updates = {{"inproceedings", 1e9}};
  auto update_heavy = GreedySearch(problem);
  ASSERT_TRUE(update_heavy.ok()) << update_heavy.status();
  EXPECT_LT(update_heavy->configuration.structure_pages,
            std::max<int64_t>(read_only->configuration.structure_pages, 1));
}

}  // namespace
}  // namespace xmlshred
