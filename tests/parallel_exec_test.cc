// Thread-count differential harness for morsel-driven parallel execution.
//
// The executor's contract (exec/executor.h, ExecOptions::exec_threads) is
// that parallelism is invisible: result rows (including order), ExecMetrics,
// EXPLAIN ANALYZE actuals, exec.* registry totals, and governor/fault trip
// points are bit-identical at every thread count, with num_threads <= 1
// being the exact legacy serial path. This suite pins that contract per
// query shape — heap scan (scalar and vectorized), filter, index seek,
// index-only scan, view scan, hash join, index nested loops, union all,
// sort, and scalar aggregates — by diffing threads {2, 4, 8} against the
// serial run and the serial run against the brute-force reference
// executor, then repeats the PR 6 metering audits (governor trip, injected
// fault, cancellation) at every thread count.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/fault_injection.h"
#include "common/limits.h"
#include "common/metrics.h"
#include "exec/executor.h"
#include "exec/explain.h"
#include "opt/planner.h"
#include "rel/catalog.h"
#include "rel/index.h"
#include "rel/view.h"
#include "reference_executor.h"
#include "sql/binder.h"
#include "sql/parser.h"

namespace xmlshred {
namespace {

constexpr int kThreadCounts[] = {1, 2, 4, 8};

// ---------------------------------------------------------------------
// Fixtures. The big database spans several kMorselRows morsels per table
// so parallel runs genuinely split work; the small one keeps the
// reference executor's cross products tractable for join shapes.

struct ParExecFixture {
  Database db;

  explicit ParExecFixture(int pubs) {
    TableSchema parent;
    parent.name = "inproc";
    parent.columns = {{"ID", ColumnType::kInt64, false},
                      {"PID", ColumnType::kInt64, true},
                      {"title", ColumnType::kString, true},
                      {"booktitle", ColumnType::kString, true},
                      {"year", ColumnType::kInt64, true}};
    parent.id_column = 0;
    parent.pid_column = 1;
    TableSchema child;
    child.name = "inproc_author";
    child.columns = {{"ID", ColumnType::kInt64, false},
                     {"PID", ColumnType::kInt64, true},
                     {"author", ColumnType::kString, true}};
    child.id_column = 0;
    child.pid_column = 1;
    auto p = db.CreateTable(parent);
    EXPECT_TRUE(p.ok());
    auto c = db.CreateTable(child);
    EXPECT_TRUE(c.ok());
    int64_t next_child_id = 1000000;
    for (int i = 0; i < pubs; ++i) {
      (*p)->AppendRow({Value::Int(i), Value::Null(),
                       Value::Str("title_" + std::to_string(i)),
                       Value::Str("conf_" + std::to_string(i % 2500)),
                       Value::Int(1980 + i % 23)});
      for (int a = 0; a < 3; ++a) {
        (*c)->AppendRow({Value::Int(next_child_id++), Value::Int(i),
                         Value::Str("author_" + std::to_string((i + a) % 97))});
      }
    }
    IndexDef booktitle;
    booktitle.name = "idx_booktitle";
    booktitle.table = "inproc";
    booktitle.key_columns = {3};
    booktitle.included_columns = {2};
    EXPECT_TRUE(db.CreateIndex(booktitle).ok());
    IndexDef pid;
    pid.name = "idx_author_pid";
    pid.table = "inproc_author";
    pid.key_columns = {1};
    pid.included_columns = {2};
    EXPECT_TRUE(db.CreateIndex(pid).ok());
    ViewDef view;
    view.name = "v_conf3";
    view.base_table = "inproc";
    view.preds = {{"inproc", "booktitle", "=", Value::Str("conf_3")}};
    view.projected = {{"inproc", "ID"}, {"inproc", "title"},
                      {"inproc", "year"}};
    EXPECT_TRUE(db.CreateMaterializedView(view).ok());
  }
};

// 20000 parent rows (~5 morsels) and 60000 child rows (~15 morsels).
ParExecFixture& Big() {
  static ParExecFixture* fixture = new ParExecFixture(20000);
  return *fixture;
}

// 600 parent rows: a single morsel, but cross products stay cheap enough
// for ReferenceExecute over join blocks.
ParExecFixture& Small() {
  static ParExecFixture* fixture = new ParExecFixture(600);
  return *fixture;
}

struct PreparedQuery {
  BoundQuery bound;
  PlannedQuery planned;
};

PreparedQuery Prepare(const Database& db, const std::string& sql) {
  PreparedQuery out;
  auto parsed = ParseSql(sql);
  EXPECT_TRUE(parsed.ok()) << sql << ": " << parsed.status();
  CatalogDesc catalog = db.BuildCatalogDesc();
  auto bound = BindQuery(*parsed, catalog);
  EXPECT_TRUE(bound.ok()) << sql << ": " << bound.status();
  out.bound = std::move(*bound);
  auto planned = PlanQuery(out.bound, catalog);
  EXPECT_TRUE(planned.ok()) << sql << ": " << planned.status();
  out.planned = std::move(*planned);
  return out;
}

bool PlanHasKind(const PlanNode& node, PlanKind kind) {
  if (node.kind == kind) return true;
  for (const auto& child : node.children) {
    if (PlanHasKind(*child, kind)) return true;
  }
  return false;
}

// One executed run with every deterministic observable captured.
struct RunOutput {
  Status status = Status::OK();
  std::vector<Row> rows;
  ExecMetrics m;
  std::string explain_json;   // ExplainToJson(tree, /*include_timing=*/false)
  std::string metrics_json;   // fresh registry Snapshot().ToJson()
};

RunOutput RunOnce(const Database& db, const PlannedQuery& plan, int threads,
                  bool vectorized) {
  MetricsRegistry registry;
  ExplainNode tree = BuildExplainTree(*plan.root);
  ExecOptions options;
  options.exec_threads = threads;
  options.vectorized_scan = vectorized;
  options.metrics = &registry;
  options.explain = &tree;
  Executor executor(db);
  RunOutput out;
  auto rows = executor.Run(*plan.root, &out.m, options);
  out.status = rows.status();
  if (rows.ok()) out.rows = std::move(*rows);
  out.explain_json = ExplainToJson(tree, /*include_timing=*/false);
  out.metrics_json = registry.Snapshot().ToJson();
  return out;
}

// Exact comparison: same rows in the same order (not a multiset).
void ExpectRowsIdentical(const std::vector<Row>& serial,
                         const std::vector<Row>& parallel,
                         const std::string& label) {
  ASSERT_EQ(serial.size(), parallel.size()) << label;
  RowTotalEquals eq;
  for (size_t i = 0; i < serial.size(); ++i) {
    ASSERT_TRUE(eq(serial[i], parallel[i])) << label << " differs at row " << i;
  }
}

void ExpectRunsIdentical(const RunOutput& serial, const RunOutput& parallel,
                         const std::string& label) {
  EXPECT_EQ(serial.status.code(), parallel.status.code()) << label;
  ExpectRowsIdentical(serial.rows, parallel.rows, label);
  EXPECT_EQ(serial.m.rows_out, parallel.m.rows_out) << label;
  EXPECT_DOUBLE_EQ(serial.m.work, parallel.m.work) << label;
  EXPECT_DOUBLE_EQ(serial.m.pages_sequential, parallel.m.pages_sequential)
      << label;
  EXPECT_DOUBLE_EQ(serial.m.pages_random, parallel.m.pages_random) << label;
  EXPECT_EQ(serial.explain_json, parallel.explain_json) << label;
  EXPECT_EQ(serial.metrics_json, parallel.metrics_json) << label;
}

// ---------------------------------------------------------------------
// Query shapes under test. expect_kind pins the plan so a planner change
// cannot silently drop a shape from coverage.

struct ShapeCase {
  const char* name;
  const char* sql;
  PlanKind expect_kind;
  bool join_block;  // reference comparison needs the small fixture
};

const ShapeCase kShapes[] = {
    {"heap_scan", "SELECT title, year FROM inproc", PlanKind::kHeapScan,
     false},
    {"filter_scan", "SELECT title FROM inproc WHERE year >= 1995",
     PlanKind::kHeapScan, false},
    {"index_lookup",
     "SELECT title FROM inproc WHERE booktitle = 'conf_7'",
     PlanKind::kIndexOnlyScan, false},
    {"index_seek_fetch",
     "SELECT title, year FROM inproc WHERE booktitle = 'conf_7'",
     PlanKind::kIndexSeek, false},
    {"view_scan", "SELECT ID, title FROM inproc WHERE booktitle = 'conf_3'",
     PlanKind::kViewScan, false},
    {"hash_join",
     "SELECT I.title, A.author FROM inproc I, inproc_author A "
     "WHERE I.ID = A.PID",
     PlanKind::kHashJoin, true},
    {"inl_join",
     "SELECT I.ID, A.author FROM inproc I, inproc_author A "
     "WHERE I.ID = A.PID AND I.booktitle = 'conf_11'",
     PlanKind::kIndexNlJoin, true},
    {"union_all",
     "SELECT title FROM inproc WHERE year = 1990 "
     "UNION ALL SELECT title FROM inproc WHERE year = 1991 ORDER BY 1",
     PlanKind::kUnionAll, false},
    {"sort", "SELECT title, year FROM inproc ORDER BY 2, 1", PlanKind::kSort,
     false},
    {"aggregate",
     "SELECT COUNT(*), COUNT(year), SUM(year), MIN(title), MAX(year) "
     "FROM inproc",
     PlanKind::kAggregate, false},
    {"aggregate_filtered",
     "SELECT SUM(year), COUNT(*) FROM inproc WHERE year >= 2000",
     PlanKind::kAggregate, false},
    {"aggregate_join",
     "SELECT COUNT(*), MIN(A.author) FROM inproc I, inproc_author A "
     "WHERE I.ID = A.PID AND I.year = 1990",
     PlanKind::kAggregate, true},
};

TEST(ParallelExecShapes, PlansExerciseEveryOperator) {
  ParExecFixture& f = Big();
  for (const ShapeCase& shape : kShapes) {
    PreparedQuery q = Prepare(f.db, shape.sql);
    EXPECT_TRUE(PlanHasKind(*q.planned.root, shape.expect_kind))
        << shape.name << " plan:\n"
        << q.planned.root->ToString();
  }
}

// The tentpole contract: every observable of a parallel run is
// byte-identical to the serial run, per shape, per scan flavor, at every
// thread count.
TEST(ParallelExecDifferential, BitIdenticalAcrossThreadCounts) {
  ParExecFixture& f = Big();
  for (const ShapeCase& shape : kShapes) {
    PreparedQuery q = Prepare(f.db, shape.sql);
    for (bool vectorized : {true, false}) {
      RunOutput serial = RunOnce(f.db, q.planned, 1, vectorized);
      ASSERT_TRUE(serial.status.ok())
          << shape.name << ": " << serial.status;
      EXPECT_EQ(serial.m.rows_out,
                static_cast<int64_t>(serial.rows.size()));
      for (int threads : {2, 4, 8}) {
        RunOutput parallel = RunOnce(f.db, q.planned, threads, vectorized);
        ExpectRunsIdentical(
            serial, parallel,
            std::string(shape.name) + (vectorized ? "/vec" : "/scalar") +
                "/threads=" + std::to_string(threads));
      }
    }
  }
}

// Serial path vs the brute-force oracle (multiset: ORDER BY is ignored by
// the reference). Join blocks run on the small fixture where the cross
// product is tractable; there the parallel runs also re-check identity on
// a sub-morsel input (600 rows < kMorselRows).
TEST(ParallelExecDifferential, MatchesReferenceExecutor) {
  for (const ShapeCase& shape : kShapes) {
    ParExecFixture& f = shape.join_block ? Small() : Big();
    PreparedQuery q = Prepare(f.db, shape.sql);
    RunOutput serial = RunOnce(f.db, q.planned, 1, /*vectorized=*/true);
    ASSERT_TRUE(serial.status.ok()) << shape.name << ": " << serial.status;
    std::vector<Row> expected = ReferenceExecute(q.bound, f.db);
    EXPECT_TRUE(SameRowMultiset(serial.rows, expected))
        << shape.name << ": engine " << serial.rows.size()
        << " rows vs reference " << expected.size();
    if (shape.join_block) {
      for (int threads : {2, 4, 8}) {
        RunOutput parallel = RunOnce(f.db, q.planned, threads, true);
        ExpectRunsIdentical(serial, parallel,
                            std::string(shape.name) + "/small/threads=" +
                                std::to_string(threads));
      }
    }
  }
}

// ---------------------------------------------------------------------
// Governor metering audit on the morsel path (the PR 6
// GovernorTripMidScanMetersOnce pattern, swept across thread counts).

void AuditGovernorTrip(const Database& db, const char* sql) {
  PreparedQuery q = Prepare(db, sql);
  Executor executor(db);
  ExecMetrics clean;
  auto ok_rows = executor.Run(*q.planned.root, &clean, ExecOptions{});
  ASSERT_TRUE(ok_rows.ok()) << sql;
  ASSERT_GT(clean.work, 1.0);

  // A budget below the full cost trips mid-run. The governor and the
  // run's own metrics must agree on the charge, and the trip point must
  // not move with the thread count or the scan flavor: all charges land
  // on the coordinator in enumeration order.
  double first_spent = -1;
  for (int threads : kThreadCounts) {
    for (bool vectorized : {true, false}) {
      ResourceLimits limits;
      limits.work_units = static_cast<int64_t>(clean.work / 2);
      ResourceGovernor governor(limits);
      ExecMetrics m;
      ExecOptions options;
      options.governor = &governor;
      options.vectorized_scan = vectorized;
      options.exec_threads = threads;
      auto rows = executor.Run(*q.planned.root, &m, options);
      ASSERT_FALSE(rows.ok()) << sql << " threads=" << threads;
      EXPECT_EQ(rows.status().code(), StatusCode::kResourceExhausted);
      EXPECT_DOUBLE_EQ(m.work, governor.work_spent())
          << sql << " threads=" << threads;
      EXPECT_LE(governor.work_spent(), clean.work);
      if (first_spent < 0) {
        first_spent = governor.work_spent();
      } else {
        EXPECT_DOUBLE_EQ(first_spent, governor.work_spent())
            << sql << " threads=" << threads
            << (vectorized ? " vec" : " scalar");
      }
    }
  }

  // The trips corrupted nothing: a clean parallel rerun returns the full
  // result with the original metering.
  ExecMetrics again;
  ExecOptions options;
  options.exec_threads = 8;
  auto rerun = executor.Run(*q.planned.root, &again, options);
  ASSERT_TRUE(rerun.ok());
  EXPECT_EQ(rerun->size(), ok_rows->size());
  EXPECT_DOUBLE_EQ(again.work, clean.work);
}

TEST(ParallelExecGovernor, ScanTripMetersOnceAtEveryThreadCount) {
  AuditGovernorTrip(Big().db, "SELECT title, year FROM inproc");
}

TEST(ParallelExecGovernor, JoinTripMetersOnceAtEveryThreadCount) {
  AuditGovernorTrip(Big().db,
                    "SELECT I.title, A.author FROM inproc I, inproc_author A "
                    "WHERE I.ID = A.PID");
}

TEST(ParallelExecGovernor, AggregateTripMetersOnceAtEveryThreadCount) {
  AuditGovernorTrip(Big().db, "SELECT COUNT(*), SUM(year) FROM inproc");
}

// ---------------------------------------------------------------------
// exec.morsel fault site: an armed nth-hit fault fires at the same morsel
// with the same metering no matter how many workers run, because the
// coordinator replays the checks in enumeration order.

void AuditMorselFault(const Database& db, const char* sql, int fire_on_nth) {
  PreparedQuery q = Prepare(db, sql);
  Executor executor(db);
  std::string first_message;
  double first_work = -1;
  int first_hits = -1;
  for (int threads : kThreadCounts) {
    for (bool vectorized : {true, false}) {
      ScopedFaultInjection armed(kFaultSiteExecMorsel, fire_on_nth);
      ExecMetrics m;
      ExecOptions options;
      options.faults = FaultInjector::Global();
      options.vectorized_scan = vectorized;
      options.exec_threads = threads;
      auto rows = executor.Run(*q.planned.root, &m, options);
      ASSERT_FALSE(rows.ok()) << sql << " threads=" << threads;
      EXPECT_EQ(rows.status().message().rfind("injected fault", 0), 0u)
          << rows.status();
      int hits = FaultInjector::Global()->hits(kFaultSiteExecMorsel);
      EXPECT_EQ(hits, fire_on_nth);
      if (first_work < 0) {
        first_message = rows.status().message();
        first_work = m.work;
        first_hits = hits;
      } else {
        EXPECT_EQ(first_message, rows.status().message())
            << sql << " threads=" << threads;
        EXPECT_DOUBLE_EQ(first_work, m.work) << sql << " threads=" << threads;
        EXPECT_EQ(first_hits, hits);
      }
    }
  }
  // Disarmed, the same plan runs clean at any thread count.
  ExecMetrics m;
  ExecOptions options;
  options.exec_threads = 4;
  options.faults = FaultInjector::Global();
  ASSERT_TRUE(executor.Run(*q.planned.root, &m, options).ok());
}

TEST(ParallelExecFaults, ScanFaultFiresAtSameMorselEverywhere) {
  // 20000 rows = 5 morsel boundaries; fire on the 3rd.
  AuditMorselFault(Big().db, "SELECT title, year FROM inproc", 3);
}

TEST(ParallelExecFaults, AggregateFaultFiresAtSameMorselEverywhere) {
  AuditMorselFault(Big().db, "SELECT COUNT(*), SUM(year) FROM inproc", 2);
}

TEST(ParallelExecFaults, JoinProbeFaultFiresAtSameMorselEverywhere) {
  // The probe side of the hash join walks 20000 outer rows; the build
  // and probe loops share the exec.morsel site with the scans below.
  AuditMorselFault(Big().db,
                   "SELECT I.title, A.author FROM inproc I, inproc_author A "
                   "WHERE I.ID = A.PID",
                   4);
}

// ---------------------------------------------------------------------
// Cancellation parity: a pre-set token stops every configuration with the
// same status and the same charged work.

TEST(ParallelExecCancel, CancelledRunChargesIdenticallyEverywhere) {
  ParExecFixture& f = Big();
  PreparedQuery q = Prepare(f.db, "SELECT title, year FROM inproc");
  Executor executor(f.db);
  double first_work = -1;
  for (int threads : kThreadCounts) {
    for (bool vectorized : {true, false}) {
      std::atomic<bool> cancel{true};
      ExecMetrics m;
      ExecOptions options;
      options.cancel = &cancel;
      options.vectorized_scan = vectorized;
      options.exec_threads = threads;
      auto rows = executor.Run(*q.planned.root, &m, options);
      ASSERT_FALSE(rows.ok());
      EXPECT_EQ(rows.status().code(), StatusCode::kResourceExhausted);
      EXPECT_NE(rows.status().message().find("cancelled"), std::string::npos);
      if (first_work < 0) {
        first_work = m.work;
      } else {
        EXPECT_DOUBLE_EQ(first_work, m.work) << "threads=" << threads;
      }
    }
  }
}

}  // namespace
}  // namespace xmlshred
