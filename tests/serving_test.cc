// Serving-layer tests (DESIGN.md §12): batch-boundary interrupts in the
// vectorized executor (cancellation, governor trips, injected faults —
// clean Status, no double-counted metering), admission-control
// primitives, epoch snapshot isolation, deadline expiry in the queue and
// mid-scan, deterministic DES soaks, and a TSan-validated concurrent
// Submit hammer with chaos appends.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/fault_injection.h"
#include "common/limits.h"
#include "common/metrics.h"
#include "exec/executor.h"
#include "mapping/mapping.h"
#include "mapping/shredder.h"
#include "opt/planner.h"
#include "rel/catalog.h"
#include "rel/index.h"
#include "serve/admission.h"
#include "serve/retry.h"
#include "rel/view.h"
#include "serve/session.h"
#include "serve/soak.h"
#include "sql/binder.h"
#include "workload/dblp.h"
#include "xpath/translator.h"
#include "xpath/xpath.h"

namespace xmlshred {
namespace {

// ---------------------------------------------------------------------
// Shared fixture: a small shredded DBLP database with one index.

struct ServeFixture {
  GeneratedData data;
  std::unique_ptr<Mapping> mapping;
  std::unique_ptr<Database> db;

  ServeFixture() {
    DblpConfig config;
    config.num_inproceedings = 400;
    config.num_books = 40;
    data = GenerateDblp(config);
    auto built = Mapping::Build(*data.tree);
    EXPECT_TRUE(built.ok()) << built.status();
    mapping = std::make_unique<Mapping>(std::move(*built));
    db = std::make_unique<Database>();
    auto shredded = ShredDocument(data.doc, *data.tree, *mapping, db.get());
    EXPECT_TRUE(shredded.ok()) << shredded.status();
    IndexDef idx;
    idx.name = "ix_booktitle";
    idx.table = "inproc";
    idx.key_columns = {
        db->FindTable("inproc")->schema().FindColumn("booktitle")};
    idx.included_columns = {
        db->FindTable("inproc")->schema().FindColumn("title")};
    EXPECT_TRUE(db->CreateIndex(idx).ok());
  }

  // `//inproceedings/(title)` — scans every inproc row.
  static XPathQuery ScanAllQuery() {
    XPathQuery q;
    q.context = "inproceedings";
    q.projections = {"title"};
    return q;
  }

  // `//inproceedings[booktitle = "conf_0"]/(title | year)`.
  static XPathQuery SelectiveQuery() {
    XPathQuery q;
    q.context = "inproceedings";
    q.has_selection = true;
    q.selection_path = "booktitle";
    q.selection_op = "=";
    q.selection_literal = Value::Str("conf_0");
    q.projections = {"title", "year"};
    return q;
  }

  PlannedQuery PlanXPath(const XPathQuery& query) const {
    CatalogDesc catalog = db->BuildCatalogDesc();
    auto translated = TranslateXPath(query, *data.tree, *mapping);
    EXPECT_TRUE(translated.ok()) << translated.status();
    auto bound = BindQuery(translated->sql, catalog);
    EXPECT_TRUE(bound.ok()) << bound.status();
    auto planned = PlanQuery(*bound, catalog);
    EXPECT_TRUE(planned.ok()) << planned.status();
    return std::move(*planned);
  }
};

ServeFixture& Fixture() {
  static ServeFixture* fixture = new ServeFixture();
  return *fixture;
}

int64_t Counter(MetricsRegistry* registry, const char* name) {
  MetricsSnapshot snap = registry->Snapshot();
  auto it = snap.counters.find(name);
  return it == snap.counters.end() ? 0 : it->second;
}

// The accounting invariant: every offer lands in exactly one terminal
// counter.
void ExpectAccountingBalanced(MetricsRegistry* registry) {
  int64_t offers = Counter(registry, kMetricServeRequests) +
                   Counter(registry, kMetricServeRetryAttempts);
  int64_t terminal = Counter(registry, kMetricServeCompleted) +
                     Counter(registry, kMetricServeFailed) +
                     Counter(registry, kMetricServeShedQueueFull) +
                     Counter(registry, kMetricServeShedBudget) +
                     Counter(registry, kMetricServeShedSession) +
                     Counter(registry, kMetricServeExpiredInQueue) +
                     Counter(registry, kMetricServeExpiredMidQuery);
  EXPECT_EQ(offers, terminal);
}

// ---------------------------------------------------------------------
// Executor batch-boundary interrupts (vectorized + scalar paths).

TEST(ExecutorInterruptTest, CancelTokenStopsScanWithCleanStatus) {
  ServeFixture& f = Fixture();
  PlannedQuery plan = f.PlanXPath(ServeFixture::ScanAllQuery());
  for (bool vectorized : {true, false}) {
    std::atomic<bool> cancel{true};
    Executor executor(*f.db);
    ExecMetrics m;
    ExecOptions options;
    options.vectorized_scan = vectorized;
    options.cancel = &cancel;
    auto rows = executor.Run(*plan.root, &m, options);
    ASSERT_FALSE(rows.ok());
    EXPECT_EQ(rows.status().code(), StatusCode::kResourceExhausted);
    EXPECT_NE(rows.status().message().find("cancelled"), std::string::npos);
  }
  // The same plan still runs to completion once the token clears.
  Executor executor(*f.db);
  ExecMetrics m;
  auto rows = executor.Run(*plan.root, &m, ExecOptions{});
  ASSERT_TRUE(rows.ok()) << rows.status();
  EXPECT_EQ(static_cast<int64_t>(rows->size()), 400);
}

TEST(ExecutorInterruptTest, GovernorTripMidScanMetersOnce) {
  ServeFixture& f = Fixture();
  PlannedQuery plan = f.PlanXPath(ServeFixture::ScanAllQuery());

  Executor executor(*f.db);
  ExecMetrics clean;
  auto ok_rows = executor.Run(*plan.root, &clean, ExecOptions{});
  ASSERT_TRUE(ok_rows.ok());
  ASSERT_GT(clean.work, 1.0);

  // A budget below the full cost trips mid-run with a clean status; the
  // governor and the run's metrics agree on what was charged (each node
  // charges exactly once, before producing rows), and both scan paths
  // trip identically.
  double scalar_spent = -1;
  for (bool vectorized : {true, false}) {
    ResourceLimits limits;
    limits.work_units = static_cast<int64_t>(clean.work / 2);
    ResourceGovernor governor(limits);
    ExecMetrics m;
    ExecOptions options;
    options.governor = &governor;
    options.vectorized_scan = vectorized;
    auto rows = executor.Run(*plan.root, &m, options);
    ASSERT_FALSE(rows.ok());
    EXPECT_EQ(rows.status().code(), StatusCode::kResourceExhausted);
    EXPECT_DOUBLE_EQ(m.work, governor.work_spent());
    EXPECT_LE(governor.work_spent(), clean.work);
    if (scalar_spent < 0) {
      scalar_spent = governor.work_spent();
    } else {
      EXPECT_DOUBLE_EQ(scalar_spent, governor.work_spent());
    }
  }

  // The trip corrupted nothing: a clean rerun returns the full result
  // with the original metering.
  ExecMetrics again;
  auto rerun = executor.Run(*plan.root, &again, ExecOptions{});
  ASSERT_TRUE(rerun.ok());
  EXPECT_EQ(rerun->size(), ok_rows->size());
  EXPECT_DOUBLE_EQ(again.work, clean.work);
}

TEST(ExecutorInterruptTest, InjectedMidQueryFaultKeepsMeteringConsistent) {
  ServeFixture& f = Fixture();
  PlannedQuery plan = f.PlanXPath(ServeFixture::ScanAllQuery());
  Executor executor(*f.db);
  ExecMetrics clean;
  ASSERT_TRUE(executor.Run(*plan.root, &clean, ExecOptions{}).ok());

  {
    ScopedFaultInjection armed(kFaultSiteServeMidQuery, 1);
    ExecMetrics m;
    ExecOptions options;
    options.faults = FaultInjector::Global();
    auto rows = executor.Run(*plan.root, &m, options);
    ASSERT_FALSE(rows.ok());
    EXPECT_EQ(rows.status().message().rfind("injected fault", 0), 0u);
    // Charges are per-node and upfront; an interrupt between batches
    // must not re-charge or lose them.
    EXPECT_LE(m.work, clean.work);
  }
  ExecMetrics again;
  auto rerun = executor.Run(*plan.root, &again, ExecOptions{});
  ASSERT_TRUE(rerun.ok());
  EXPECT_DOUBLE_EQ(again.work, clean.work);
}

// ---------------------------------------------------------------------
// Admission-control primitives.

TEST(AdmissionTest, DeadlineQueueOrdersByDeadlineThenSequence) {
  DeadlineQueue queue(4);
  queue.Push(100.0, 1, 11);
  queue.Push(50.0, 2, 12);
  queue.Push(50.0, 3, 13);
  queue.Push(10.0, 4, 14);
  EXPECT_TRUE(queue.Full());
  EXPECT_EQ(queue.PopFront().ticket, 14u);
  EXPECT_EQ(queue.PopFront().ticket, 12u);  // seq breaks the 50.0 tie
  EXPECT_TRUE(queue.Remove(50.0, 3, 13));
  EXPECT_FALSE(queue.Remove(50.0, 3, 13));  // already gone
  EXPECT_EQ(queue.PopFront().ticket, 11u);
  EXPECT_TRUE(queue.Empty());
}

TEST(AdmissionTest, WorkBudgetPoolAdmitsOversizedWhenEmptyAndSnapsToZero) {
  WorkBudgetPool pool(10.0);
  EXPECT_TRUE(pool.TryReserve(25.0));   // empty pool always admits one
  EXPECT_FALSE(pool.TryReserve(0.1));   // saturated now
  pool.Release(25.0);
  EXPECT_EQ(pool.outstanding(), 0.0);
  // Out-of-order releases leave no floating-point residue behind.
  EXPECT_TRUE(pool.TryReserve(0.1));
  EXPECT_TRUE(pool.TryReserve(9.2));
  EXPECT_TRUE(pool.TryReserve(0.3));
  pool.Release(9.2);
  pool.Release(0.1);
  pool.Release(0.3);
  EXPECT_EQ(pool.outstanding(), 0.0);
  EXPECT_EQ(pool.reservations(), 0);
}

TEST(RetryTest, BackoffIsDeterministicBoundedAndRespectsHint) {
  RetryPolicy policy;
  double a = RetryBackoff(policy, /*request_key=*/7, /*attempt=*/2,
                          /*retry_after=*/0);
  double b = RetryBackoff(policy, 7, 2, 0);
  EXPECT_DOUBLE_EQ(a, b);  // pure function of its inputs
  EXPECT_GE(a, policy.base_backoff);
  EXPECT_LE(a, policy.max_backoff * (1.0 + policy.jitter_fraction));
  // A server retry-after hint larger than the schedule wins.
  double hinted = RetryBackoff(policy, 7, 2, 1000.0);
  EXPECT_GE(hinted, 1000.0);
  // Different request keys decorrelate (with overwhelming probability).
  EXPECT_NE(RetryBackoff(policy, 8, 2, 0), a);
}

// ---------------------------------------------------------------------
// SessionManager: virtual-time (DES) behaviour.

TEST(ServingTest, EpochSnapshotIsolatesInFlightReaders) {
  ServeFixture& f = Fixture();
  ServeConfig config;
  config.max_concurrent = 2;
  SessionManager manager(f.db.get(), *f.data.tree, *f.mapping, config,
                         nullptr);
  uint64_t session = manager.OpenSession();
  int64_t before_rows = f.db->FindTable("inproc")->row_count();

  // Admit (and pin a snapshot) BEFORE the append...
  ServeRequest request;
  request.query = ServeFixture::ScanAllQuery();
  ServeResponse shed;
  uint64_t ticket = 0;
  ASSERT_EQ(manager.Offer(session, request, 0, &shed, &ticket),
            AdmitOutcome::kRun);

  // ...then append and publish a new epoch.
  Row extra = f.db->FindTable("inproc")->GetRow(0);
  ASSERT_TRUE(
      manager.AppendAndPublish("inproc", {extra, extra, extra}).ok());

  // The pinned reader still sees the pre-append row count.
  ServeResponse pinned = manager.ExecuteTicket(ticket, 0);
  ASSERT_TRUE(pinned.status.ok()) << pinned.status;
  EXPECT_EQ(pinned.rows_out, before_rows);
  manager.CompleteTicket(ticket, pinned.work);

  // A request admitted after the publish sees the appended rows.
  uint64_t ticket2 = 0;
  ASSERT_EQ(manager.Offer(session, request, 100, &shed, &ticket2),
            AdmitOutcome::kRun);
  ServeResponse fresh = manager.ExecuteTicket(ticket2, 100);
  ASSERT_TRUE(fresh.status.ok());
  EXPECT_EQ(fresh.rows_out, before_rows + 3);
  EXPECT_GT(fresh.epoch, pinned.epoch);
  manager.CompleteTicket(ticket2, 100 + fresh.work);

  EXPECT_TRUE(manager.Idle());
  ExpectAccountingBalanced(manager.metrics());
  EXPECT_EQ(f.db->FindTable("inproc")->row_count(), before_rows + 3);
}

TEST(ServingTest, QueueFullShedsWithRetryHintAndSessionStaysUsable) {
  ServeFixture& f = Fixture();
  ServeConfig config;
  config.max_concurrent = 1;
  config.queue_capacity = 1;
  SessionManager manager(f.db.get(), *f.data.tree, *f.mapping, config,
                         nullptr);
  uint64_t session = manager.OpenSession();
  ServeRequest request;
  request.query = ServeFixture::SelectiveQuery();

  ServeResponse shed;
  uint64_t t1 = 0, t2 = 0, t3 = 0;
  EXPECT_EQ(manager.Offer(session, request, 0, &shed, &t1),
            AdmitOutcome::kRun);
  EXPECT_EQ(manager.Offer(session, request, 0, &shed, &t2),
            AdmitOutcome::kQueued);
  EXPECT_EQ(manager.Offer(session, request, 0, &shed, &t3),
            AdmitOutcome::kShed);
  EXPECT_EQ(shed.status.code(), StatusCode::kResourceExhausted);
  EXPECT_GE(shed.retry_after, 1.0);
  EXPECT_EQ(Counter(manager.metrics(), kMetricServeShedQueueFull), 1);

  // Drain: completing the runner dispatches the queued request.
  ServeResponse r1 = manager.ExecuteTicket(t1, 0);
  ASSERT_TRUE(r1.status.ok());
  uint64_t next = manager.CompleteTicket(t1, r1.work);
  ASSERT_EQ(next, t2);
  ServeResponse r2 = manager.ExecuteTicket(next, r1.work);
  ASSERT_TRUE(r2.status.ok());
  EXPECT_EQ(manager.CompleteTicket(next, r1.work + r2.work), 0u);

  // The shed request's session is immediately reusable.
  uint64_t t4 = 0;
  EXPECT_EQ(manager.Offer(session, request, 1000, &shed, &t4),
            AdmitOutcome::kRun);
  ServeResponse r4 = manager.ExecuteTicket(t4, 1000);
  EXPECT_TRUE(r4.status.ok());
  manager.CompleteTicket(t4, 1000 + r4.work);

  EXPECT_TRUE(manager.Idle());
  ExpectAccountingBalanced(manager.metrics());
}

TEST(ServingTest, GlobalWorkBudgetShedsBeyondFirstReservation) {
  ServeFixture& f = Fixture();
  ServeConfig config;
  config.max_concurrent = 4;
  config.global_work_budget = 0.5;  // below any single plan's estimate
  SessionManager manager(f.db.get(), *f.data.tree, *f.mapping, config,
                         nullptr);
  uint64_t session = manager.OpenSession();
  ServeRequest request;
  request.query = ServeFixture::SelectiveQuery();

  ServeResponse shed;
  uint64_t t1 = 0, t2 = 0;
  // An empty pool admits even an oversized request...
  EXPECT_EQ(manager.Offer(session, request, 0, &shed, &t1),
            AdmitOutcome::kRun);
  // ...but the next reservation sheds with a drain-time hint.
  EXPECT_EQ(manager.Offer(session, request, 0, &shed, &t2),
            AdmitOutcome::kShed);
  EXPECT_EQ(shed.status.code(), StatusCode::kResourceExhausted);
  EXPECT_GE(shed.retry_after, 1.0);
  EXPECT_EQ(Counter(manager.metrics(), kMetricServeShedBudget), 1);

  ServeResponse r1 = manager.ExecuteTicket(t1, 0);
  EXPECT_TRUE(r1.status.ok());
  manager.CompleteTicket(t1, r1.work);
  EXPECT_TRUE(manager.Idle());
  ExpectAccountingBalanced(manager.metrics());
}

TEST(ServingTest, SessionBudgetShedsPermanentlyAtAdmission) {
  ServeFixture& f = Fixture();
  SessionManager manager(f.db.get(), *f.data.tree, *f.mapping, ServeConfig{},
                         nullptr);
  uint64_t tiny = manager.OpenSession(/*work_budget=*/0.25);
  ServeRequest request;
  request.query = ServeFixture::ScanAllQuery();
  ServeResponse shed;
  uint64_t ticket = 0;
  EXPECT_EQ(manager.Offer(tiny, request, 0, &shed, &ticket),
            AdmitOutcome::kShed);
  EXPECT_EQ(shed.status.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(shed.retry_after, 0.0);  // budgets never refill: do not retry
  EXPECT_EQ(Counter(manager.metrics(), kMetricServeShedSession), 1);
  EXPECT_TRUE(manager.Idle());
  ExpectAccountingBalanced(manager.metrics());
}

TEST(ServingTest, UnknownSessionIsFailedNotShed) {
  ServeFixture& f = Fixture();
  SessionManager manager(f.db.get(), *f.data.tree, *f.mapping, ServeConfig{},
                         nullptr);
  ServeRequest request;
  request.query = ServeFixture::SelectiveQuery();
  ServeResponse shed;
  uint64_t ticket = 0;
  EXPECT_EQ(manager.Offer(999, request, 0, &shed, &ticket),
            AdmitOutcome::kShed);
  EXPECT_EQ(shed.status.code(), StatusCode::kNotFound);
  EXPECT_EQ(shed.retry_after, 0.0);
  EXPECT_EQ(Counter(manager.metrics(), kMetricServeFailed), 1);
  ExpectAccountingBalanced(manager.metrics());
}

TEST(ServingTest, EarliestDeadlineFirstDispatchAndQueueExpiry) {
  ServeFixture& f = Fixture();
  ServeConfig config;
  config.max_concurrent = 1;
  config.queue_capacity = 4;
  SessionManager manager(f.db.get(), *f.data.tree, *f.mapping, config,
                         nullptr);
  uint64_t session = manager.OpenSession();

  ServeRequest scan;
  scan.query = ServeFixture::ScanAllQuery();
  ServeResponse shed;
  uint64_t runner = 0;
  ASSERT_EQ(manager.Offer(session, scan, 0, &shed, &runner),
            AdmitOutcome::kRun);
  ServeResponse r = manager.ExecuteTicket(runner, 0);
  ASSERT_TRUE(r.status.ok());
  ASSERT_GT(r.work, 2.0);  // the queued deadlines below expire under it

  // Queue: B (deadline 1e6), C (deadline 1.5 — will expire), D (none).
  ServeRequest b = scan;
  b.deadline_work = 1e6;
  ServeRequest c = scan;
  c.deadline_work = 1.5;
  ServeRequest d = scan;
  uint64_t tb = 0, tc = 0, td = 0;
  ASSERT_EQ(manager.Offer(session, b, 0, &shed, &tb), AdmitOutcome::kQueued);
  ASSERT_EQ(manager.Offer(session, c, 0, &shed, &tc), AdmitOutcome::kQueued);
  ASSERT_EQ(manager.Offer(session, d, 0, &shed, &td), AdmitOutcome::kQueued);

  // Completion at r.work > 1.5: C has expired in the queue; B (earliest
  // live deadline) dispatches ahead of D despite arriving first.
  uint64_t next = manager.CompleteTicket(runner, r.work);
  EXPECT_EQ(next, tb);
  EXPECT_EQ(Counter(manager.metrics(), kMetricServeExpiredInQueue), 1);

  ServeResponse rb = manager.ExecuteTicket(next, r.work);
  EXPECT_TRUE(rb.status.ok());
  next = manager.CompleteTicket(next, r.work + rb.work);
  EXPECT_EQ(next, td);
  ServeResponse rd = manager.ExecuteTicket(next, r.work + rb.work);
  EXPECT_TRUE(rd.status.ok());
  EXPECT_EQ(manager.CompleteTicket(next, r.work + rb.work + rd.work), 0u);

  EXPECT_TRUE(manager.Idle());
  ExpectAccountingBalanced(manager.metrics());
}

TEST(ServingTest, DeadlineExpiresMidVectorizedScan) {
  ServeFixture& f = Fixture();
  ServeConfig config;
  config.max_concurrent = 1;
  SessionManager manager(f.db.get(), *f.data.tree, *f.mapping, config,
                         nullptr);
  uint64_t session = manager.OpenSession();
  ServeRequest request;
  request.query = ServeFixture::ScanAllQuery();
  request.deadline_work = 2.0;  // far below the scan's metered work

  ServeResponse shed;
  uint64_t ticket = 0;
  ASSERT_EQ(manager.Offer(session, request, 0, &shed, &ticket),
            AdmitOutcome::kRun);
  ServeResponse resp = manager.ExecuteTicket(ticket, 0);
  EXPECT_EQ(resp.status.code(), StatusCode::kResourceExhausted);
  EXPECT_GT(resp.work, 0.0);  // partial metering survives the early exit
  EXPECT_EQ(Counter(manager.metrics(), kMetricServeExpiredMidQuery), 1);
  manager.CompleteTicket(ticket, 2.0);

  // Expiry leaves the session reusable with a sane deadline.
  request.deadline_work = 1e9;
  uint64_t t2 = 0;
  ASSERT_EQ(manager.Offer(session, request, 10, &shed, &t2),
            AdmitOutcome::kRun);
  ServeResponse ok = manager.ExecuteTicket(t2, 10);
  EXPECT_TRUE(ok.status.ok()) << ok.status;
  manager.CompleteTicket(t2, 10 + ok.work);

  EXPECT_TRUE(manager.Idle());
  ExpectAccountingBalanced(manager.metrics());
}

TEST(ServingTest, CancelTokenFailsRequestCleanly) {
  ServeFixture& f = Fixture();
  SessionManager manager(f.db.get(), *f.data.tree, *f.mapping, ServeConfig{},
                         nullptr);
  uint64_t session = manager.OpenSession();
  std::atomic<bool> cancel{true};
  ServeRequest request;
  request.query = ServeFixture::ScanAllQuery();
  request.cancel = &cancel;

  ServeResponse shed;
  uint64_t ticket = 0;
  ASSERT_EQ(manager.Offer(session, request, 0, &shed, &ticket),
            AdmitOutcome::kRun);
  ServeResponse resp = manager.ExecuteTicket(ticket, 0);
  EXPECT_EQ(resp.status.code(), StatusCode::kResourceExhausted);
  EXPECT_NE(resp.status.message().find("cancelled"), std::string::npos);
  EXPECT_EQ(Counter(manager.metrics(), kMetricServeFailed), 1);
  manager.CompleteTicket(ticket, 1.0);
  EXPECT_TRUE(manager.Idle());
  ExpectAccountingBalanced(manager.metrics());
}

TEST(ServingTest, AppendRefusedWhileMaterializedViewsExist) {
  // A private database for this test: views block appends.
  ServeFixture local;
  ViewDef view;
  view.name = "mv_titles";
  view.base_table = "inproc";
  view.projected = {{"inproc", "title"}, {"inproc", "year"}};
  ASSERT_TRUE(local.db->CreateMaterializedView(view).ok());

  SessionManager manager(local.db.get(), *local.data.tree, *local.mapping,
                         ServeConfig{}, nullptr);
  Row extra = local.db->FindTable("inproc")->GetRow(0);
  Status refused = manager.AppendAndPublish("inproc", {extra});
  EXPECT_EQ(refused.code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(Counter(manager.metrics(), kMetricServeEpochsPublished), 0);
}

TEST(ServingTest, InjectedAdmitFaultShedsWithRetryHint) {
  ServeFixture& f = Fixture();
  SessionManager manager(f.db.get(), *f.data.tree, *f.mapping, ServeConfig{},
                         nullptr);
  uint64_t session = manager.OpenSession();
  ServeRequest request;
  request.query = ServeFixture::SelectiveQuery();
  ServeResponse shed;
  uint64_t ticket = 0;
  {
    ScopedFaultInjection armed(kFaultSiteServeAdmit, 1);
    EXPECT_EQ(manager.Offer(session, request, 0, &shed, &ticket),
              AdmitOutcome::kShed);
  }
  EXPECT_EQ(shed.status.code(), StatusCode::kInternal);
  EXPECT_GE(shed.retry_after, 1.0);  // transient: retrying can succeed
  EXPECT_EQ(Counter(manager.metrics(), kMetricServeFaultsInjected), 1);
  ExpectAccountingBalanced(manager.metrics());
}

TEST(ServingTest, DeterministicSoakRunsProduceIdenticalCounters) {
  ServeFixture& f = Fixture();
  XPathWorkload mix = {ServeFixture::SelectiveQuery(),
                       ServeFixture::ScanAllQuery()};
  auto run_once = [&] {
    ServeConfig config;
    config.max_concurrent = 2;
    config.queue_capacity = 2;
    config.global_work_budget = 50.0;
    SessionManager manager(f.db.get(), *f.data.tree, *f.mapping, config,
                           nullptr);
    SoakOptions options;
    options.num_clients = 3;
    options.requests_per_client = 12;
    options.mean_gap = 10.0;  // heavy overload: plenty of shedding
    options.deadline_work = 120.0;
    options.seed = 7;
    auto report = RunSoak(&manager, mix, options);
    EXPECT_TRUE(report.ok()) << report.status();
    EXPECT_TRUE(report->invariants_ok) << report->invariant_error;
    return report->CountersDigest();
  };
  std::string first = run_once();
  std::string second = run_once();
  EXPECT_EQ(first, second);
  EXPECT_NE(first.find("offered=36"), std::string::npos) << first;
}

// ---------------------------------------------------------------------
// Threaded Submit path (the TSan hammer).

TEST(ServingThreadedTest, ConcurrentSubmitHammerKeepsAccountsBalanced) {
  ServeFixture local;  // private database: the chaos thread appends to it
  ServeConfig config;
  config.max_concurrent = 3;
  config.queue_capacity = 4;
  config.global_work_budget = 2000.0;
  SessionManager manager(local.db.get(), *local.data.tree, *local.mapping,
                         config, nullptr);

  constexpr int kThreads = 4;
  constexpr int kPerThread = 24;
  std::vector<uint64_t> sessions;
  for (int i = 0; i < kThreads; ++i) sessions.push_back(manager.OpenSession());

  // Probabilistic chaos across every fault site for the whole hammer.
  FaultInjector::Global()->ArmProbabilistic(/*seed=*/99,
                                            /*probability=*/0.02);

  std::atomic<bool> cancel_some{true};
  std::atomic<int64_t> responses{0};
  auto client = [&](int id) {
    for (int i = 0; i < kPerThread; ++i) {
      ServeRequest request;
      request.query = (i % 3 == 0) ? ServeFixture::ScanAllQuery()
                                   : ServeFixture::SelectiveQuery();
      if (i % 5 == 1) request.deadline_work = 2.0;  // expires mid-query
      if (i % 7 == 2) request.cancel = &cancel_some;
      if (i % 4 == 3) request.wall_queue_wait_seconds = 0.02;
      ServeResponse resp =
          manager.Submit(sessions[static_cast<size_t>(id)], request);
      // Every Submit returns a terminal response: OK, shed, expired,
      // cancelled, or an injected fault — never a hang.
      (void)resp;
      responses.fetch_add(1, std::memory_order_relaxed);
    }
  };
  std::thread chaos([&] {
    Row extra = local.db->FindTable("inproc")->GetRow(1);
    for (int k = 0; k < 8; ++k) {
      (void)manager.AppendAndPublish("inproc", {extra, extra});
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });
  std::vector<std::thread> clients;
  for (int i = 0; i < kThreads; ++i) clients.emplace_back(client, i);
  for (std::thread& t : clients) t.join();
  chaos.join();
  FaultInjector::Global()->Disarm();

  EXPECT_EQ(responses.load(), kThreads * kPerThread);
  EXPECT_TRUE(manager.Idle());
  EXPECT_EQ(Counter(manager.metrics(), kMetricServeRequests),
            kThreads * kPerThread);
  ExpectAccountingBalanced(manager.metrics());

  // After the storm every session still serves a clean request.
  for (uint64_t session : sessions) {
    ServeRequest request;
    request.query = ServeFixture::SelectiveQuery();
    ServeResponse resp = manager.Submit(session, request);
    EXPECT_TRUE(resp.status.ok()) << resp.status;
  }
  EXPECT_TRUE(manager.Idle());
  ExpectAccountingBalanced(manager.metrics());
}

// The same storm with intra-query morsel workers under every request:
// concurrent Submit threads each fan out to a transient 4-worker pool, so
// TSan sees nested parallelism (serving threads × exec workers) against
// the shared database, the per-request governors, and the global fault
// injector. The accounting invariant must hold exactly as in the serial
// hammer — exec_threads is a latency knob, not a semantics knob.
TEST(ServingThreadedTest, ConcurrentSubmitHammerWithMorselWorkers) {
  ServeFixture local;  // private database: the chaos thread appends to it
  ServeConfig config;
  config.max_concurrent = 3;
  config.queue_capacity = 4;
  config.global_work_budget = 2000.0;
  config.exec_threads = 4;
  SessionManager manager(local.db.get(), *local.data.tree, *local.mapping,
                         config, nullptr);

  constexpr int kThreads = 4;
  constexpr int kPerThread = 24;
  std::vector<uint64_t> sessions;
  for (int i = 0; i < kThreads; ++i) sessions.push_back(manager.OpenSession());

  FaultInjector::Global()->ArmProbabilistic(/*seed=*/99,
                                            /*probability=*/0.02);

  std::atomic<bool> cancel_some{true};
  std::atomic<int64_t> responses{0};
  auto client = [&](int id) {
    for (int i = 0; i < kPerThread; ++i) {
      ServeRequest request;
      request.query = (i % 3 == 0) ? ServeFixture::ScanAllQuery()
                                   : ServeFixture::SelectiveQuery();
      if (i % 5 == 1) request.deadline_work = 2.0;  // expires mid-query
      if (i % 7 == 2) request.cancel = &cancel_some;
      if (i % 4 == 3) request.wall_queue_wait_seconds = 0.02;
      ServeResponse resp =
          manager.Submit(sessions[static_cast<size_t>(id)], request);
      (void)resp;
      responses.fetch_add(1, std::memory_order_relaxed);
    }
  };
  std::thread chaos([&] {
    Row extra = local.db->FindTable("inproc")->GetRow(1);
    for (int k = 0; k < 8; ++k) {
      (void)manager.AppendAndPublish("inproc", {extra, extra});
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });
  std::vector<std::thread> clients;
  for (int i = 0; i < kThreads; ++i) clients.emplace_back(client, i);
  for (std::thread& t : clients) t.join();
  chaos.join();
  FaultInjector::Global()->Disarm();

  EXPECT_EQ(responses.load(), kThreads * kPerThread);
  EXPECT_TRUE(manager.Idle());
  EXPECT_EQ(Counter(manager.metrics(), kMetricServeRequests),
            kThreads * kPerThread);
  ExpectAccountingBalanced(manager.metrics());

  // After the storm every session still serves a clean request, and the
  // morsel-path answer matches a serial manager's byte for byte.
  for (uint64_t session : sessions) {
    ServeRequest request;
    request.query = ServeFixture::SelectiveQuery();
    ServeResponse resp = manager.Submit(session, request);
    EXPECT_TRUE(resp.status.ok()) << resp.status;
  }
  EXPECT_TRUE(manager.Idle());
  ExpectAccountingBalanced(manager.metrics());
}

// ---------------------------------------------------------------------
// Streaming bulk ingest through the serving layer.

TEST(ServingIngestTest, StreamIngestPublishesEpochAndServesQueries) {
  ServeFixture& f = Fixture();
  const std::string xml = f.data.doc.ToXml();
  int64_t serial_rows = -1;
  for (int threads : {1, 4}) {
    Database db;
    ServeConfig config;
    config.ingest_threads = threads;
    SessionManager manager(&db, *f.data.tree, *f.mapping, config, nullptr);
    const uint64_t base_epoch = manager.current_epoch();

    auto stats = manager.IngestAndPublish(xml, /*now=*/0);
    ASSERT_TRUE(stats.ok()) << stats.status();
    EXPECT_GT(stats->rows, 0);
    EXPECT_EQ(manager.current_epoch(), base_epoch + 1);

    // The admission catalog was rebuilt: a request admitted after the
    // publish plans against the ingested tables and sees every row.
    uint64_t session = manager.OpenSession();
    ServeRequest request;
    request.query = ServeFixture::ScanAllQuery();
    ServeResponse shed;
    uint64_t ticket = 0;
    ASSERT_EQ(manager.Offer(session, request, 0, &shed, &ticket),
              AdmitOutcome::kRun);
    ServeResponse resp = manager.ExecuteTicket(ticket, 0);
    manager.CompleteTicket(ticket, resp.work);
    ASSERT_TRUE(resp.status.ok()) << resp.status;
    EXPECT_EQ(resp.epoch, base_epoch + 1);
    EXPECT_EQ(resp.rows_out, db.FindTable("inproc")->row_count());
    if (serial_rows < 0) {
      serial_rows = resp.rows_out;
      EXPECT_GT(serial_rows, 0);
    } else {
      EXPECT_EQ(resp.rows_out, serial_rows) << "threads=" << threads;
    }
    EXPECT_TRUE(manager.Idle());
    ExpectAccountingBalanced(manager.metrics());
  }
}

TEST(ServingIngestTest, IngestRefusedWhileMaterializedViewsExist) {
  ServeFixture local;
  ViewDef view;
  view.name = "mv_titles";
  view.base_table = "inproc";
  view.projected = {{"inproc", "title"}, {"inproc", "year"}};
  ASSERT_TRUE(local.db->CreateMaterializedView(view).ok());

  SessionManager manager(local.db.get(), *local.data.tree, *local.mapping,
                         ServeConfig{}, nullptr);
  auto refused = manager.IngestAndPublish(local.data.doc.ToXml());
  EXPECT_EQ(refused.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(Counter(manager.metrics(), kMetricServeEpochsPublished), 0);
}

TEST(ServingIngestTest, InjectedPublishFaultLeavesDatabaseUntouched) {
  ServeFixture& f = Fixture();
  Database db;
  SessionManager manager(&db, *f.data.tree, *f.mapping, ServeConfig{},
                         nullptr);
  const uint64_t base_epoch = manager.current_epoch();
  ScopedFaultInjection scope(kFaultSiteServeEpochPublish, 1);
  auto failed = manager.IngestAndPublish(f.data.doc.ToXml());
  ASSERT_FALSE(failed.ok());
  EXPECT_TRUE(db.TableNames().empty());
  EXPECT_EQ(manager.current_epoch(), base_epoch);
  EXPECT_EQ(Counter(manager.metrics(), kMetricServeEpochsPublished), 0);
}

}  // namespace
}  // namespace xmlshred
