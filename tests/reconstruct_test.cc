// Round-trip property: Reconstruct(Shred(doc, M)) == doc for every
// mapping M — shredding is lossless under any transformation sequence.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "mapping/reconstructor.h"
#include "mapping/shredder.h"
#include "mapping/transforms.h"
#include "workload/dblp.h"
#include "workload/movie.h"

namespace xmlshred {
namespace {

// Shreds under `tree` and reconstructs; expects exact XML equality.
void CheckRoundTrip(const XmlDocument& doc, const SchemaTree& tree) {
  auto mapping = Mapping::Build(tree);
  ASSERT_TRUE(mapping.ok()) << mapping.status();
  Database db;
  auto shred = ShredDocument(doc, tree, *mapping, &db);
  ASSERT_TRUE(shred.ok()) << shred.status();
  auto rebuilt = ReconstructDocument(db, tree, *mapping);
  ASSERT_TRUE(rebuilt.ok()) << rebuilt.status();
  EXPECT_EQ(rebuilt->ToXml(), doc.ToXml());
}

TEST(ReconstructTest, MovieDefaultMapping) {
  MovieConfig config;
  config.num_movies = 800;
  GeneratedData data = GenerateMovie(config);
  CheckRoundTrip(data.doc, *data.tree);
}

TEST(ReconstructTest, DblpDefaultAndHybrid) {
  DblpConfig config;
  config.num_inproceedings = 800;
  config.num_books = 80;
  GeneratedData data = GenerateDblp(config);
  CheckRoundTrip(data.doc, *data.tree);
  auto hybrid = data.tree->Clone();
  FullyInline(hybrid.get());
  CheckRoundTrip(data.doc, *hybrid);
}

TEST(ReconstructTest, AfterRepetitionSplit) {
  MovieConfig config;
  config.num_movies = 800;
  GeneratedData data = GenerateMovie(config);
  Transform split;
  split.kind = TransformKind::kRepetitionSplit;
  split.target = data.tree->FindTagByName("aka_title")->parent()->id();
  split.split_count = 4;
  ASSERT_TRUE(ApplyTransform(data.tree.get(), split).ok());
  CheckRoundTrip(data.doc, *data.tree);
}

TEST(ReconstructTest, AfterUnionDistribution) {
  MovieConfig config;
  config.num_movies = 800;
  GeneratedData data = GenerateMovie(config);
  Transform dist;
  dist.kind = TransformKind::kUnionDistribute;
  dist.target = data.tree->FindTagByName("box_office")->parent()->id();
  ASSERT_TRUE(ApplyTransform(data.tree.get(), dist).ok());
  CheckRoundTrip(data.doc, *data.tree);
}

TEST(ReconstructTest, AfterImplicitUnionAndSplitCombined) {
  MovieConfig config;
  config.num_movies = 800;
  GeneratedData data = GenerateMovie(config);
  SchemaNode* option = data.tree->FindTagByName("avg_rating")->parent();
  Transform dist;
  dist.kind = TransformKind::kUnionDistribute;
  dist.target = option->id();
  dist.option_targets = {option->id()};
  ASSERT_TRUE(ApplyTransform(data.tree.get(), dist).ok());
  Transform split;
  split.kind = TransformKind::kRepetitionSplit;
  split.target = data.tree->FindTagByName("aka_title")->parent()->id();
  split.split_count = 3;
  ASSERT_TRUE(ApplyTransform(data.tree.get(), split).ok());
  CheckRoundTrip(data.doc, *data.tree);
}

TEST(ReconstructTest, AfterTypeMerge) {
  DblpConfig config;
  config.num_inproceedings = 500;
  config.num_books = 60;
  GeneratedData data = GenerateDblp(config);
  auto authors = data.tree->FindTagsByName("author");
  ASSERT_EQ(authors.size(), 2u);
  Transform merge;
  merge.kind = TransformKind::kTypeMerge;
  merge.target = authors[0]->id();
  merge.target2 = authors[1]->id();
  ASSERT_TRUE(ApplyTransform(data.tree.get(), merge).ok());
  CheckRoundTrip(data.doc, *data.tree);
}

TEST(ReconstructTest, RandomTransformSequences) {
  DblpConfig config;
  config.num_inproceedings = 400;
  config.num_books = 40;
  GeneratedData data = GenerateDblp(config);
  for (uint64_t seed : {11u, 22u, 33u, 44u}) {
    Rng rng(seed);
    auto tree = data.tree->Clone();
    int applied = 0;
    for (int step = 0; step < 10 && applied < 4; ++step) {
      std::vector<Transform> transforms = EnumerateTransforms(*tree, 3);
      if (transforms.empty()) break;
      const Transform& pick = transforms[static_cast<size_t>(
          rng.Uniform(0, static_cast<int64_t>(transforms.size()) - 1))];
      if (ApplyTransform(tree.get(), pick).ok()) ++applied;
    }
    CheckRoundTrip(data.doc, *tree);
  }
}

}  // namespace
}  // namespace xmlshred
