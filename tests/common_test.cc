// Unit tests for src/common: Status/Result, strings, RNG.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/status.h"
#include "common/strings.h"

namespace xmlshred {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "ok");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = InvalidArgument("bad input");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad input");
  EXPECT_EQ(s.ToString(), "invalid argument: bad input");
}

TEST(StatusTest, AllConstructorsProduceMatchingCodes) {
  EXPECT_EQ(NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(FailedPrecondition("x").code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Internal("x").code(), StatusCode::kInternal);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = NotFound("nothing");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

Result<int> HalfIfEven(int v) {
  if (v % 2 != 0) return InvalidArgument("odd");
  return v / 2;
}

Result<int> QuarterIfDivisible(int v) {
  XS_ASSIGN_OR_RETURN(int half, HalfIfEven(v));
  return HalfIfEven(half);
}

TEST(ResultTest, AssignOrReturnPropagates) {
  Result<int> ok = QuarterIfDivisible(8);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 2);
  Result<int> bad = QuarterIfDivisible(6);
  EXPECT_FALSE(bad.ok());
}

TEST(StringsTest, StrSplitKeepsEmptyPieces) {
  auto pieces = StrSplit("a,,b", ',');
  ASSERT_EQ(pieces.size(), 3u);
  EXPECT_EQ(pieces[0], "a");
  EXPECT_EQ(pieces[1], "");
  EXPECT_EQ(pieces[2], "b");
}

TEST(StringsTest, StrJoinRoundTripsSplit) {
  std::vector<std::string> pieces = {"x", "y", "z"};
  EXPECT_EQ(StrJoin(pieces, "/"), "x/y/z");
  EXPECT_EQ(StrSplit("x/y/z", '/'), pieces);
}

TEST(StringsTest, CaseHelpers) {
  EXPECT_EQ(AsciiToLower("AbC"), "abc");
  EXPECT_TRUE(EqualsIgnoreCase("SELECT", "select"));
  EXPECT_FALSE(EqualsIgnoreCase("SELECT", "selec"));
  EXPECT_TRUE(StartsWith("inproc_author", "inproc"));
  EXPECT_TRUE(EndsWith("inproc_author", "author"));
}

TEST(StringsTest, StripWhitespace) {
  EXPECT_EQ(StripWhitespace("  a b \t\n"), "a b");
  EXPECT_EQ(StripWhitespace(""), "");
  EXPECT_EQ(StripWhitespace("   "), "");
}

TEST(StringsTest, Formatting) {
  EXPECT_EQ(StrFormat("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatWithCommas(1234567), "1,234,567");
  EXPECT_EQ(FormatWithCommas(-1000), "-1,000");
  EXPECT_EQ(FormatWithCommas(12), "12");
}

TEST(RngTest, Deterministic) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next64(), b.Next64());
}

TEST(RngTest, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.Uniform(5, 9);
    EXPECT_GE(v, 5);
    EXPECT_LE(v, 9);
  }
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.UniformDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, BernoulliApproximatesP) {
  Rng rng(13);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(RngTest, ZipfSkewsLow) {
  Rng rng(17);
  int low = 0, total = 10000;
  for (int i = 0; i < total; ++i) {
    if (rng.Zipf(20, 1.5) <= 5) ++low;
  }
  // With theta=1.5 the mass at k<=5 dominates.
  EXPECT_GT(low, total * 0.8);
}

TEST(RngTest, WeightedIndexRespectsWeights) {
  Rng rng(19);
  std::vector<double> weights = {1.0, 0.0, 9.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 10000; ++i) ++counts[rng.WeightedIndex(weights)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_GT(counts[2], counts[0]);
}

}  // namespace
}  // namespace xmlshred
