// Tests for the streaming shredder (mapping/stream_shredder.h) and the
// pull parser underneath it (xml/stream_parser.h).
//
// The central claim under test is *bit-identity*: ShredStream must leave
// the Database — every cell tag and bit pattern, every dictionary code,
// every sealed block, every index entry — in exactly the state the DOM
// path (ParseXml + ShredDocument) produces, at every thread count. The
// differential tests hash the full database state and compare digests
// across DOM / streaming × threads {1, 2, 4, 8}, over plain and
// transformed (variant-choice, repetition-split) schemas.
//
// The failure-path tests assert the all-or-nothing contract: a parse
// error mid-stream, a schema mismatch, a governor memory trip at a batch
// boundary, or an injected shred.stream fault must leave the database
// exactly as it was — no tables, no stray dictionary entries.

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/fault_injection.h"
#include "common/limits.h"
#include "common/metrics.h"
#include "common/status.h"
#include "common/strings.h"
#include "mapping/mapping.h"
#include "mapping/shredder.h"
#include "mapping/stream_shredder.h"
#include "mapping/transforms.h"
#include "rel/catalog.h"
#include "rel/index.h"
#include "workload/dblp.h"
#include "workload/movie.h"
#include "xml/document.h"
#include "xml/schema_tree.h"
#include "xml/stream_parser.h"

namespace xmlshred {
namespace {

// --- Full-state digests -------------------------------------------------

uint64_t Mix(uint64_t h, uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  return h;
}

// Hashes everything observable about storage: table names, row counts,
// every cell's tag and raw bits, logical byte tallies, sealed block
// counts and encoded sizes, and the dictionary's strings in code order.
// Two databases with equal digests are bit-identical for our purposes.
uint64_t DatabaseDigest(const Database& db) {
  uint64_t h = 14695981039346656037ULL;
  for (const std::string& name : db.TableNames()) {
    const Table* t = db.FindTable(name);
    h = Mix(h, Fnv1a64(name));
    h = Mix(h, static_cast<uint64_t>(t->row_count()));
    for (int c = 0; c < t->schema().num_columns(); ++c) {
      const ColumnVector& col = t->column(c);
      h = Mix(h, col.size());
      h = Mix(h, static_cast<uint64_t>(col.byte_total()));
      h = Mix(h, col.num_sealed_blocks());
      h = Mix(h, static_cast<uint64_t>(col.sealed_encoded_bytes()));
      for (size_t i = 0; i < col.size(); ++i) {
        h = Mix(h, col.tags_data()[i]);
        h = Mix(h, col.raw_data()[i]);
      }
    }
  }
  const StringDictionary& dict = db.dictionary();
  h = Mix(h, dict.size());
  for (uint32_t c = 0; c < dict.size(); ++c) {
    h = Mix(h, Fnv1a64(dict.str(c)));
  }
  return h;
}

uint64_t IndexDigest(const BTreeIndex& ix) {
  uint64_t h = 14695981039346656037ULL;
  h = Mix(h, static_cast<uint64_t>(ix.entry_count()));
  h = Mix(h, static_cast<uint64_t>(ix.entry_width()));
  for (size_t e = 0; e < static_cast<size_t>(ix.entry_count()); ++e) {
    h = Mix(h, static_cast<uint64_t>(ix.entry_row_id(e)));
    for (int k = 0; k < ix.num_key_columns(); ++k) {
      SortKey key = ix.entry_key(e, k);
      h = Mix(h, key.cls);
      h = Mix(h, key.key);
    }
    for (int pos = 0; pos < ix.entry_width(); ++pos) {
      Cell cell = ix.entry_cell(e, pos);
      h = Mix(h, cell.tag);
      h = Mix(h, cell.bits);
    }
  }
  return h;
}

// --- Corpus helpers -----------------------------------------------------

// A schema tree, its mapping, the serialized document, and the DOM parse
// of that same text (so both ingest paths consume identical bytes).
struct Corpus {
  std::unique_ptr<SchemaTree> tree;
  std::optional<Mapping> mapping;
  std::string xml;
  XmlDocument doc;
};

Corpus MakeCorpus(std::unique_ptr<SchemaTree> tree, std::string xml) {
  Corpus c;
  c.tree = std::move(tree);
  c.xml = std::move(xml);
  auto parsed = ParseXml(c.xml, ParseOptions{});
  EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
  if (parsed.ok()) c.doc = std::move(*parsed);
  auto mapping = Mapping::Build(*c.tree);
  EXPECT_TRUE(mapping.ok()) << mapping.status().ToString();
  if (mapping.ok()) c.mapping.emplace(std::move(*mapping));
  return c;
}

Corpus DblpCorpus(int inproceedings) {
  DblpConfig config;
  config.num_inproceedings = inproceedings;
  config.num_books = inproceedings / 6 + 1;
  config.num_conferences = 20;
  // The generator's author-id bucketing requires >= 100 authors.
  config.num_authors = 100 + inproceedings / 3;
  GeneratedData data = GenerateDblp(config);
  std::string xml = data.doc.ToXml();
  return MakeCorpus(std::move(data.tree), std::move(xml));
}

Corpus MovieCorpus(int movies) {
  MovieConfig config;
  config.num_movies = movies;
  GeneratedData data = GenerateMovie(config);
  std::string xml = data.doc.ToXml();
  return MakeCorpus(std::move(data.tree), std::move(xml));
}

uint64_t DomDigest(const Corpus& c, ShredStats* stats_out = nullptr) {
  Database db;
  auto stats = ShredDocument(c.doc, *c.tree, *c.mapping, &db);
  EXPECT_TRUE(stats.ok()) << stats.status().ToString();
  if (stats_out != nullptr && stats.ok()) *stats_out = *stats;
  return DatabaseDigest(db);
}

uint64_t StreamDigest(const Corpus& c, int threads,
                      ShredStats* stats_out = nullptr) {
  Database db;
  StreamShredOptions options;
  options.threads = threads;
  auto stats = ShredStream(c.xml, *c.tree, *c.mapping, &db, options);
  EXPECT_TRUE(stats.ok()) << "threads=" << threads << ": "
                          << stats.status().ToString();
  if (stats_out != nullptr && stats.ok()) *stats_out = *stats;
  return DatabaseDigest(db);
}

// --- Stream parser ------------------------------------------------------

std::vector<XmlEvent> Drain(XmlStreamParser* parser, Status* error) {
  std::vector<XmlEvent> events;
  while (true) {
    auto ev = parser->Next();
    if (!ev.ok()) {
      *error = ev.status();
      return events;
    }
    if (ev->kind == XmlEventKind::kEndOfInput) return events;
    events.push_back(*ev);
  }
}

TEST(StreamParser, EventSequence) {
  const std::string xml =
      "<?xml version=\"1.0\"?>\n"
      "<!-- preamble -->\n"
      "<root attr=\"v\">\n"
      "  <a>one &amp; two</a>\n"
      "  <b/>\n"
      "  tail text\n"
      "  <c>   </c>\n"
      "</root>";
  XmlStreamParser parser(xml);
  Status error = Status::OK();
  std::vector<XmlEvent> events = Drain(&parser, &error);
  ASSERT_TRUE(error.ok()) << error.ToString();

  std::vector<std::string> got;
  for (const XmlEvent& ev : events) {
    switch (ev.kind) {
      case XmlEventKind::kStartElement:
        got.push_back("+" + std::string(ev.name));
        break;
      case XmlEventKind::kEndElement:
        got.push_back("-" + std::string(ev.name));
        break;
      case XmlEventKind::kText: {
        std::string text;
        AppendDecodedText(ev.raw_text, &text);
        got.push_back("t:" + text);
        break;
      }
      case XmlEventKind::kEndOfInput:
        break;
    }
  }
  std::vector<std::string> want = {"+root", "+a", "t:one & two", "-a",
                                   "+b",    "-b", "t:tail text", "+c",
                                   "-c",    "-root"};
  EXPECT_EQ(got, want);
}

TEST(StreamParser, PeekIsStable) {
  XmlStreamParser parser("<a><b/></a>");
  auto p1 = parser.Peek();
  auto p2 = parser.Peek();
  ASSERT_TRUE(p1.ok() && p2.ok());
  EXPECT_EQ(p1->name, "a");
  EXPECT_EQ(p2->name, "a");
  auto n = parser.Next();
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(n->kind, XmlEventKind::kStartElement);
  EXPECT_EQ(n->name, "a");
}

TEST(StreamParser, FragmentModeParsesSiblingSequence) {
  StreamParseOptions options;
  options.fragment = true;
  XmlStreamParser parser("<a>1</a> <!-- gap --> <b/>", options);
  Status error = Status::OK();
  std::vector<XmlEvent> events = Drain(&parser, &error);
  ASSERT_TRUE(error.ok()) << error.ToString();
  ASSERT_EQ(events.size(), 5u);
  EXPECT_EQ(events[0].name, "a");
  EXPECT_EQ(events[3].name, "b");
  EXPECT_EQ(events[4].kind, XmlEventKind::kEndElement);
}

// Both parsers accept exactly the same language: for a spread of valid
// and malformed inputs, DOM parse success must equal stream drain
// success.
TEST(StreamParser, AcceptanceMatchesDomParser) {
  const std::vector<std::string> inputs = {
      "<a/>",
      "<a>x</a>",
      "<a><b>1</b><b>2</b></a>",
      "<a b=\"c\" d=\"e\">t</a>",
      "<a>&lt;&gt;&quot;&apos;&amp;</a>",
      "<?xml version=\"1.0\"?><a/>",
      "<!-- c --><a/><!-- c -->",
      "",
      "<a",
      "<a>",
      "<a></b>",
      "<a><b></a></b>",
      "<a/>junk",
      "<a/><b/>",
      "<a>&unknown;</a>",
      "<a b=>x</a>",
      "<a><!-- unterminated </a>",
      "junk<a/>",
  };
  for (const std::string& input : inputs) {
    bool dom_ok = ParseXml(input, ParseOptions{}).ok();
    XmlStreamParser parser(input);
    Status error = Status::OK();
    Drain(&parser, &error);
    EXPECT_EQ(dom_ok, error.ok()) << "input: " << input << " stream error: "
                                  << error.ToString();
  }
}

TEST(StreamParser, DepthGuardTripsLikeDomParser) {
  std::string deep;
  for (int i = 0; i < 64; ++i) deep += "<d>";
  deep += "x";
  for (int i = 0; i < 64; ++i) deep += "</d>";

  ResourceLimits limits;
  limits.max_recursion_depth = 8;
  ResourceGovernor dom_gov(limits);
  ParseOptions parse_options;
  parse_options.governor = &dom_gov;
  EXPECT_EQ(ParseXml(deep, parse_options).status().code(),
            StatusCode::kResourceExhausted);

  ResourceGovernor stream_gov(limits);
  StreamParseOptions options;
  options.governor = &stream_gov;
  XmlStreamParser parser(deep, options);
  Status error = Status::OK();
  Drain(&parser, &error);
  EXPECT_EQ(error.code(), StatusCode::kResourceExhausted);
}

// --- Differential: DOM vs streaming, across thread counts ---------------

TEST(StreamingShred, BitIdenticalToDomOnDblp) {
  Corpus corpus = DblpCorpus(350);
  ShredStats dom_stats;
  uint64_t dom = DomDigest(corpus, &dom_stats);
  for (int threads : {1, 2, 4, 8}) {
    ShredStats stream_stats;
    uint64_t stream = StreamDigest(corpus, threads, &stream_stats);
    EXPECT_EQ(dom, stream) << "threads=" << threads;
    EXPECT_EQ(stream_stats.rows, dom_stats.rows);
    EXPECT_EQ(stream_stats.elements, dom_stats.elements);
  }
}

TEST(StreamingShred, BitIdenticalToDomOnMovie) {
  Corpus corpus = MovieCorpus(500);
  uint64_t dom = DomDigest(corpus);
  for (int threads : {1, 2, 4, 8}) {
    EXPECT_EQ(dom, StreamDigest(corpus, threads)) << "threads=" << threads;
  }
}

// Union distribution turns the root-level <movie> tag into a variant
// choice, so streaming must route each top-level subtree by presence
// constraints; repetition split inside <movie> exercises occurrence
// columns and the overflow relation.
TEST(StreamingShred, BitIdenticalOnTransformedSchemas) {
  MovieConfig config;
  config.num_movies = 400;
  GeneratedData data = GenerateMovie(config);

  Transform distribute;
  distribute.kind = TransformKind::kUnionDistribute;
  distribute.target = data.tree->FindTagByName("box_office")->parent()->id();
  auto applied = ApplyTransform(data.tree.get(), distribute);
  ASSERT_TRUE(applied.ok()) << applied.status().ToString();

  Transform split;
  split.kind = TransformKind::kRepetitionSplit;
  split.target = data.tree->FindTagByName("aka_title")->parent()->id();
  split.split_count = 3;
  applied = ApplyTransform(data.tree.get(), split);
  ASSERT_TRUE(applied.ok()) << applied.status().ToString();

  Corpus corpus = MakeCorpus(std::move(data.tree), data.doc.ToXml());
  uint64_t dom = DomDigest(corpus);
  for (int threads : {1, 4}) {
    EXPECT_EQ(dom, StreamDigest(corpus, threads)) << "threads=" << threads;
  }
}

// r(r) -> a? , (a(a_items) | b(b_items))* : the tag name "a" appears in
// two distinct root-level slots (an inlined option and a set-valued choice
// alternative), so routing a top-level <a> subtree by name alone is
// ambiguous. The shredder must detect this and fall back to
// whole-document buffering — still bit-identical, never partitioned.
std::unique_ptr<SchemaTree> AmbiguousRootTree() {
  auto tree = std::make_unique<SchemaTree>();
  auto root = tree->NewTag("r");
  root->set_annotation("r");
  auto seq = tree->NewNode(SchemaNodeKind::kSequence);
  auto opt = tree->NewNode(SchemaNodeKind::kOption);
  auto a_inline = tree->NewTag("a");
  a_inline->AddChild(tree->NewSimple(XsdBaseType::kString));
  opt->AddChild(std::move(a_inline));
  seq->AddChild(std::move(opt));
  auto rep = tree->NewNode(SchemaNodeKind::kRepetition);
  auto choice = tree->NewNode(SchemaNodeKind::kChoice);
  auto a_set = tree->NewTag("a");
  a_set->set_annotation("a_items");
  a_set->AddChild(tree->NewSimple(XsdBaseType::kString));
  choice->AddChild(std::move(a_set));
  auto b_set = tree->NewTag("b");
  b_set->set_annotation("b_items");
  b_set->AddChild(tree->NewSimple(XsdBaseType::kInt));
  choice->AddChild(std::move(b_set));
  rep->AddChild(std::move(choice));
  seq->AddChild(std::move(rep));
  root->AddChild(std::move(seq));
  tree->SetRoot(std::move(root));
  return tree;
}

TEST(StreamingShred, AmbiguousRootRoutingFallsBackToWholeDocument) {
  auto tree = AmbiguousRootTree();
  ASSERT_TRUE(tree->Validate().ok()) << tree->Validate();
  Corpus corpus =
      MakeCorpus(std::move(tree),
                 "<r><a>first</a><a>second</a><b>7</b><a>third</a></r>");
  uint64_t dom = DomDigest(corpus);
  for (int threads : {1, 4}) {
    ShredStats stats;
    EXPECT_EQ(dom, StreamDigest(corpus, threads, &stats))
        << "threads=" << threads;
    EXPECT_EQ(stats.partitions, 1) << "fallback must not partition";
  }
}

TEST(StreamingShred, StatsReportBatchAccounting) {
  Corpus corpus = DblpCorpus(300);
  ShredStats dom_stats;
  DomDigest(corpus, &dom_stats);
  EXPECT_GT(dom_stats.reserved_rows, 0);
  EXPECT_GT(dom_stats.saved_reallocs, 0);
  EXPECT_EQ(dom_stats.batches_emitted, 0);

  ShredStats serial;
  StreamDigest(corpus, 1, &serial);
  EXPECT_EQ(serial.reserved_rows, 0);
  EXPECT_EQ(serial.saved_reallocs, 0);
  EXPECT_GT(serial.batches_emitted, 0);
  EXPECT_GT(serial.peak_batch_bytes, 0);
  EXPECT_GT(serial.transient_peak_bytes, 0);
  EXPECT_EQ(serial.partitions, 1);

  ShredStats parallel;
  StreamDigest(corpus, 4, &parallel);
  // Batch accounting is thread-count invariant; transient peak is not.
  EXPECT_EQ(parallel.batches_emitted, serial.batches_emitted);
  EXPECT_EQ(parallel.peak_batch_bytes, serial.peak_batch_bytes);
  EXPECT_EQ(parallel.partitions, 4);
}

TEST(StreamingShred, MetricsAreThreadCountInvariant) {
  Corpus corpus = MovieCorpus(300);
  auto collect = [&](int threads) {
    Database db;
    MetricsRegistry registry;
    StreamShredOptions options;
    options.threads = threads;
    options.metrics = &registry;
    auto stats = ShredStream(corpus.xml, *corpus.tree, *corpus.mapping, &db,
                             options);
    EXPECT_TRUE(stats.ok()) << stats.status().ToString();
    std::vector<int64_t> values = {
        registry.counter(kMetricShredDocuments)->value(),
        registry.counter(kMetricShredRows)->value(),
        registry.counter(kMetricShredElements)->value(),
        registry.counter(kMetricShredBatchesEmitted)->value(),
        static_cast<int64_t>(
            registry.gauge(kMetricShredPeakBatchBytes)->value()),
    };
    return values;
  };
  std::vector<int64_t> serial = collect(1);
  EXPECT_EQ(serial[0], 1);  // shred.documents
  EXPECT_GT(serial[1], 0);  // shred.rows
  EXPECT_GT(serial[3], 0);  // shred.batches_emitted
  EXPECT_GT(serial[4], 0);  // shred.peak_batch_bytes
  EXPECT_EQ(collect(4), serial);
  EXPECT_EQ(collect(8), serial);
}

// --- Failure paths: all-or-nothing rollback -----------------------------

// Runs a failing ingest against a database with one pre-existing
// dictionary entry and asserts nothing stuck.
void ExpectRollback(const std::string& xml, const Corpus& corpus,
                    int threads, StatusCode want_code) {
  Database db;
  db.mutable_dictionary()->Intern("zz_preexisting");
  StreamShredOptions options;
  options.threads = threads;
  auto stats = ShredStream(xml, *corpus.tree, *corpus.mapping, &db, options);
  ASSERT_FALSE(stats.ok()) << "threads=" << threads;
  EXPECT_EQ(stats.status().code(), want_code)
      << "threads=" << threads << ": " << stats.status().ToString();
  EXPECT_TRUE(db.TableNames().empty()) << "threads=" << threads;
  ASSERT_EQ(db.dictionary().size(), 1u) << "threads=" << threads;
  EXPECT_EQ(db.dictionary().str(0), "zz_preexisting");
}

TEST(StreamingShred, MalformedXmlMidStreamRollsBackCleanly) {
  Corpus corpus = DblpCorpus(40);
  const std::string root = corpus.tree->root()->name();
  const std::vector<std::pair<std::string, StatusCode>> cases = {
      // Truncated mid-document.
      {"<" + root + "><inproceedings><title>t</title>",
       StatusCode::kInvalidArgument},
      // Mismatched close tag.
      {"<" + root + "><inproceedings></wrong></" + root + ">",
       StatusCode::kInvalidArgument},
      // Content after the document element.
      {"<" + root + "></" + root + "><extra/>", StatusCode::kInvalidArgument},
      // Well-formed but unknown root child.
      {"<" + root + "><no_such_tag/></" + root + ">",
       StatusCode::kInvalidArgument},
      // Wrong root element.
      {"<not_the_root/>", StatusCode::kInvalidArgument},
  };
  for (const auto& [xml, code] : cases) {
    for (int threads : {1, 4}) {
      SCOPED_TRACE(xml);
      ExpectRollback(xml, corpus, threads, code);
    }
  }
}

// A document whose only defect is structural (parses fine) must produce
// the same error message as the DOM shredder, at every thread count.
TEST(StreamingShred, SchemaMismatchErrorsMatchDomShredder) {
  Corpus corpus = DblpCorpus(30);
  const std::string root = corpus.tree->root()->name();
  const std::string bad =
      "<" + root + "><no_such_tag/></" + root + ">";

  Database dom_db;
  auto parsed = ParseXml(bad, ParseOptions{});
  ASSERT_TRUE(parsed.ok());
  auto dom = ShredDocument(*parsed, *corpus.tree, *corpus.mapping, &dom_db);
  ASSERT_FALSE(dom.ok());

  for (int threads : {1, 4}) {
    Database db;
    StreamShredOptions options;
    options.threads = threads;
    auto stream = ShredStream(bad, *corpus.tree, *corpus.mapping, &db,
                              options);
    ASSERT_FALSE(stream.ok()) << "threads=" << threads;
    EXPECT_EQ(stream.status().ToString(), dom.status().ToString())
        << "threads=" << threads;
  }
}

TEST(StreamingShred, GovernorTripsAtExactBatchBoundary) {
  Corpus corpus = DblpCorpus(250);

  // Learn the exact memory the ingest charges (one batch at a time).
  ResourceGovernor unlimited;
  Database learn_db;
  StreamShredOptions learn_options;
  learn_options.threads = 1;
  learn_options.governor = &unlimited;
  auto learn = ShredStream(corpus.xml, *corpus.tree, *corpus.mapping,
                           &learn_db, learn_options);
  ASSERT_TRUE(learn.ok()) << learn.status().ToString();
  const int64_t charged = unlimited.memory_charged();
  ASSERT_GT(charged, 0);
  const uint64_t want = DatabaseDigest(learn_db);

  for (int threads : {1, 4}) {
    // Memory charges are replayed in flush order, so the charge total is
    // thread-count invariant.
    ResourceLimits exact;
    exact.max_memory_bytes = charged;
    ResourceGovernor ok_gov(exact);
    Database ok_db;
    StreamShredOptions options;
    options.threads = threads;
    options.governor = &ok_gov;
    auto ok = ShredStream(corpus.xml, *corpus.tree, *corpus.mapping, &ok_db,
                          options);
    ASSERT_TRUE(ok.ok()) << "threads=" << threads << ": "
                         << ok.status().ToString();
    EXPECT_EQ(ok_gov.memory_charged(), charged) << "threads=" << threads;
    EXPECT_EQ(DatabaseDigest(ok_db), want) << "threads=" << threads;

    // One byte less trips on the final batch flush and rolls back.
    ResourceLimits tight;
    tight.max_memory_bytes = charged - 1;
    ResourceGovernor trip_gov(tight);
    Database trip_db;
    trip_db.mutable_dictionary()->Intern("zz_preexisting");
    options.governor = &trip_gov;
    auto tripped = ShredStream(corpus.xml, *corpus.tree, *corpus.mapping,
                               &trip_db, options);
    ASSERT_FALSE(tripped.ok()) << "threads=" << threads;
    EXPECT_EQ(tripped.status().code(), StatusCode::kResourceExhausted)
        << "threads=" << threads;
    EXPECT_TRUE(trip_db.TableNames().empty()) << "threads=" << threads;
    ASSERT_EQ(trip_db.dictionary().size(), 1u);
    EXPECT_EQ(trip_db.dictionary().str(0), "zz_preexisting");
  }
}

TEST(StreamingShred, InjectedBatchFaultRollsBackAtEveryThreadCount) {
  Corpus corpus = DblpCorpus(200);

  // Count the shred.stream hits a clean ingest performs (one per batch
  // flush); the schedule must be identical at every thread count.
  auto hits_during = [&](int threads) {
    ScopedFaultInjection scope(kFaultSiteShredStream, 1 << 30);
    int before = FaultInjector::Global()->hits(kFaultSiteShredStream);
    Database db;
    StreamShredOptions options;
    options.threads = threads;
    auto stats = ShredStream(corpus.xml, *corpus.tree, *corpus.mapping, &db,
                             options);
    EXPECT_TRUE(stats.ok()) << stats.status().ToString();
    return FaultInjector::Global()->hits(kFaultSiteShredStream) - before;
  };
  const int total_hits = hits_during(1);
  ASSERT_GT(total_hits, 0);
  EXPECT_EQ(hits_during(4), total_hits);

  // Firing on the first and on the last batch both roll back fully.
  for (int nth : {1, total_hits}) {
    for (int threads : {1, 4}) {
      SCOPED_TRACE("nth=" + std::to_string(nth) +
                   " threads=" + std::to_string(threads));
      ScopedFaultInjection scope(kFaultSiteShredStream, nth);
      Database db;
      db.mutable_dictionary()->Intern("zz_preexisting");
      StreamShredOptions options;
      options.threads = threads;
      auto stats = ShredStream(corpus.xml, *corpus.tree, *corpus.mapping,
                               &db, options);
      ASSERT_FALSE(stats.ok());
      EXPECT_TRUE(db.TableNames().empty());
      ASSERT_EQ(db.dictionary().size(), 1u);
      EXPECT_EQ(db.dictionary().str(0), "zz_preexisting");
    }
  }
}

// --- Bounded memory -----------------------------------------------------

// Replicating one fixed record N vs 10N times must leave the transient
// peak EXACTLY unchanged: the peak is one buffered record plus the batch
// buffers, independent of document length.
TEST(StreamingShred, TransientPeakIsFlatAcrossDocumentSize) {
  MovieConfig config;
  config.num_movies = 1;
  config.tv_fraction = 0.0;
  GeneratedData data = GenerateMovie(config);
  const std::string record = data.doc.root()->children()[0]->ToXml();
  const std::string root = data.tree->root()->name();

  auto make_doc = [&](int n) {
    std::string xml = "<" + root + ">";
    for (int i = 0; i < n; ++i) xml += record;
    xml += "</" + root + ">";
    return xml;
  };
  auto mapping = Mapping::Build(*data.tree);
  ASSERT_TRUE(mapping.ok());

  auto shred = [&](const std::string& xml, ShredStats* stats_out) {
    Database db;
    auto stats = ShredStream(xml, *data.tree, *mapping, &db,
                             StreamShredOptions{});
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    *stats_out = *stats;
    return;
  };

  const std::string small_doc = make_doc(800);
  const std::string big_doc = make_doc(8000);
  ShredStats small_stats, big_stats;
  shred(small_doc, &small_stats);
  shred(big_doc, &big_stats);

  EXPECT_EQ(big_stats.rows, small_stats.rows * 10 - 9)  // shared root row
      << "rows must scale with the document";
  EXPECT_EQ(big_stats.transient_peak_bytes, small_stats.transient_peak_bytes)
      << "peak ingest memory must not grow with document size";
  EXPECT_LT(big_stats.transient_peak_bytes,
            static_cast<int64_t>(big_doc.size()))
      << "peak must stay below the document itself";
}

// --- Parallel index builds ----------------------------------------------

TEST(StreamingShred, ParallelIndexBuildIsBitIdentical) {
  Corpus corpus = DblpCorpus(300);

  Database db;
  auto stats = ShredStream(corpus.xml, *corpus.tree, *corpus.mapping, &db,
                           StreamShredOptions{});
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();

  // Pick the widest populated relation and index a value column with the
  // parent id, including the row id as payload.
  std::string table_name;
  int width = 0;
  for (const std::string& name : db.TableNames()) {
    const Table* t = db.FindTable(name);
    if (t->row_count() > 0 && t->schema().num_columns() > width) {
      width = t->schema().num_columns();
      table_name = name;
    }
  }
  ASSERT_GE(width, 3);

  IndexDef def;
  def.name = "ix_parallel_test";
  def.table = table_name;
  def.key_columns = {width - 1, 1};
  def.included_columns = {0};

  uint64_t serial_digest = 0;
  for (int threads : {1, 2, 4, 8}) {
    db.DropIndex(def.name);
    ASSERT_TRUE(db.CreateIndex(def, threads).ok()) << "threads=" << threads;
    const BTreeIndex* ix = db.FindIndex(def.name);
    ASSERT_NE(ix, nullptr);
    uint64_t digest = IndexDigest(*ix);
    if (threads == 1) {
      serial_digest = digest;
      EXPECT_GT(ix->entry_count(), 0);
    } else {
      EXPECT_EQ(digest, serial_digest) << "threads=" << threads;
    }
  }
}

}  // namespace
}  // namespace xmlshred
