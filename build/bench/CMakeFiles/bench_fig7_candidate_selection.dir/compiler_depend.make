# Empty compiler generated dependencies file for bench_fig7_candidate_selection.
# This may be replaced when dependencies are built.
