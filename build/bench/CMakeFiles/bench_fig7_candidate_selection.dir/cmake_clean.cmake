file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_candidate_selection.dir/bench_fig7_candidate_selection.cc.o"
  "CMakeFiles/bench_fig7_candidate_selection.dir/bench_fig7_candidate_selection.cc.o.d"
  "CMakeFiles/bench_fig7_candidate_selection.dir/util.cc.o"
  "CMakeFiles/bench_fig7_candidate_selection.dir/util.cc.o.d"
  "bench_fig7_candidate_selection"
  "bench_fig7_candidate_selection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_candidate_selection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
