file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_transformations.dir/bench_fig6_transformations.cc.o"
  "CMakeFiles/bench_fig6_transformations.dir/bench_fig6_transformations.cc.o.d"
  "CMakeFiles/bench_fig6_transformations.dir/util.cc.o"
  "CMakeFiles/bench_fig6_transformations.dir/util.cc.o.d"
  "bench_fig6_transformations"
  "bench_fig6_transformations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_transformations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
