# Empty compiler generated dependencies file for bench_intro_motivation.
# This may be replaced when dependencies are built.
