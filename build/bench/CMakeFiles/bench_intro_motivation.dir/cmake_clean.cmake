file(REMOVE_RECURSE
  "CMakeFiles/bench_intro_motivation.dir/bench_intro_motivation.cc.o"
  "CMakeFiles/bench_intro_motivation.dir/bench_intro_motivation.cc.o.d"
  "CMakeFiles/bench_intro_motivation.dir/util.cc.o"
  "CMakeFiles/bench_intro_motivation.dir/util.cc.o.d"
  "bench_intro_motivation"
  "bench_intro_motivation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_intro_motivation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
