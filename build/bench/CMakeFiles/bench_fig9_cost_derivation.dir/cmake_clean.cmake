file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_cost_derivation.dir/bench_fig9_cost_derivation.cc.o"
  "CMakeFiles/bench_fig9_cost_derivation.dir/bench_fig9_cost_derivation.cc.o.d"
  "CMakeFiles/bench_fig9_cost_derivation.dir/util.cc.o"
  "CMakeFiles/bench_fig9_cost_derivation.dir/util.cc.o.d"
  "bench_fig9_cost_derivation"
  "bench_fig9_cost_derivation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_cost_derivation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
