# Empty compiler generated dependencies file for bench_fig9_cost_derivation.
# This may be replaced when dependencies are built.
