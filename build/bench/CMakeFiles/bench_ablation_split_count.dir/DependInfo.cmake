
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_ablation_split_count.cc" "bench/CMakeFiles/bench_ablation_split_count.dir/bench_ablation_split_count.cc.o" "gcc" "bench/CMakeFiles/bench_ablation_split_count.dir/bench_ablation_split_count.cc.o.d"
  "/root/repo/bench/util.cc" "bench/CMakeFiles/bench_ablation_split_count.dir/util.cc.o" "gcc" "bench/CMakeFiles/bench_ablation_split_count.dir/util.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/xs_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/xs_search.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/xs_tune.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/xs_xpath.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/xs_mapping.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/xs_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/xs_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/xs_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/xs_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/xs_rel.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/xs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
