file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_split_count.dir/bench_ablation_split_count.cc.o"
  "CMakeFiles/bench_ablation_split_count.dir/bench_ablation_split_count.cc.o.d"
  "CMakeFiles/bench_ablation_split_count.dir/util.cc.o"
  "CMakeFiles/bench_ablation_split_count.dir/util.cc.o.d"
  "bench_ablation_split_count"
  "bench_ablation_split_count.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_split_count.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
