# Empty dependencies file for bench_fig8_merging.
# This may be replaced when dependencies are built.
