file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_merging.dir/bench_fig8_merging.cc.o"
  "CMakeFiles/bench_fig8_merging.dir/bench_fig8_merging.cc.o.d"
  "CMakeFiles/bench_fig8_merging.dir/util.cc.o"
  "CMakeFiles/bench_fig8_merging.dir/util.cc.o.d"
  "bench_fig8_merging"
  "bench_fig8_merging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_merging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
