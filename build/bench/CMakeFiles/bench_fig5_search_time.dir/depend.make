# Empty dependencies file for bench_fig5_search_time.
# This may be replaced when dependencies are built.
