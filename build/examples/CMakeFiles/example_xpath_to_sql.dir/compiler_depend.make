# Empty compiler generated dependencies file for example_xpath_to_sql.
# This may be replaced when dependencies are built.
