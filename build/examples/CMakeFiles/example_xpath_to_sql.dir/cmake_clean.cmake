file(REMOVE_RECURSE
  "CMakeFiles/example_xpath_to_sql.dir/xpath_to_sql.cpp.o"
  "CMakeFiles/example_xpath_to_sql.dir/xpath_to_sql.cpp.o.d"
  "example_xpath_to_sql"
  "example_xpath_to_sql.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_xpath_to_sql.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
