file(REMOVE_RECURSE
  "CMakeFiles/example_advisor_cli.dir/advisor_cli.cpp.o"
  "CMakeFiles/example_advisor_cli.dir/advisor_cli.cpp.o.d"
  "example_advisor_cli"
  "example_advisor_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_advisor_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
