# Empty dependencies file for example_advisor_cli.
# This may be replaced when dependencies are built.
