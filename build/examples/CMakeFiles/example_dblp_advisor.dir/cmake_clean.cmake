file(REMOVE_RECURSE
  "CMakeFiles/example_dblp_advisor.dir/dblp_advisor.cpp.o"
  "CMakeFiles/example_dblp_advisor.dir/dblp_advisor.cpp.o.d"
  "example_dblp_advisor"
  "example_dblp_advisor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_dblp_advisor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
