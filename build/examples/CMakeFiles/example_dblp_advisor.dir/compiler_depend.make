# Empty compiler generated dependencies file for example_dblp_advisor.
# This may be replaced when dependencies are built.
