file(REMOVE_RECURSE
  "CMakeFiles/example_movie_partitioning.dir/movie_partitioning.cpp.o"
  "CMakeFiles/example_movie_partitioning.dir/movie_partitioning.cpp.o.d"
  "example_movie_partitioning"
  "example_movie_partitioning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_movie_partitioning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
