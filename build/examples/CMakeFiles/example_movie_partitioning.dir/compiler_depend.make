# Empty compiler generated dependencies file for example_movie_partitioning.
# This may be replaced when dependencies are built.
