file(REMOVE_RECURSE
  "CMakeFiles/example_export_dataset.dir/export_dataset.cpp.o"
  "CMakeFiles/example_export_dataset.dir/export_dataset.cpp.o.d"
  "example_export_dataset"
  "example_export_dataset.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_export_dataset.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
