# Empty dependencies file for example_export_dataset.
# This may be replaced when dependencies are built.
