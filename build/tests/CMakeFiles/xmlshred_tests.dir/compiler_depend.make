# Empty compiler generated dependencies file for xmlshred_tests.
# This may be replaced when dependencies are built.
