
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/advisor_unit_test.cc" "tests/CMakeFiles/xmlshred_tests.dir/advisor_unit_test.cc.o" "gcc" "tests/CMakeFiles/xmlshred_tests.dir/advisor_unit_test.cc.o.d"
  "/root/repo/tests/common_test.cc" "tests/CMakeFiles/xmlshred_tests.dir/common_test.cc.o" "gcc" "tests/CMakeFiles/xmlshred_tests.dir/common_test.cc.o.d"
  "/root/repo/tests/conjunctive_test.cc" "tests/CMakeFiles/xmlshred_tests.dir/conjunctive_test.cc.o" "gcc" "tests/CMakeFiles/xmlshred_tests.dir/conjunctive_test.cc.o.d"
  "/root/repo/tests/costmodel_test.cc" "tests/CMakeFiles/xmlshred_tests.dir/costmodel_test.cc.o" "gcc" "tests/CMakeFiles/xmlshred_tests.dir/costmodel_test.cc.o.d"
  "/root/repo/tests/differential_test.cc" "tests/CMakeFiles/xmlshred_tests.dir/differential_test.cc.o" "gcc" "tests/CMakeFiles/xmlshred_tests.dir/differential_test.cc.o.d"
  "/root/repo/tests/dtd_test.cc" "tests/CMakeFiles/xmlshred_tests.dir/dtd_test.cc.o" "gcc" "tests/CMakeFiles/xmlshred_tests.dir/dtd_test.cc.o.d"
  "/root/repo/tests/engine_edge_test.cc" "tests/CMakeFiles/xmlshred_tests.dir/engine_edge_test.cc.o" "gcc" "tests/CMakeFiles/xmlshred_tests.dir/engine_edge_test.cc.o.d"
  "/root/repo/tests/engine_test.cc" "tests/CMakeFiles/xmlshred_tests.dir/engine_test.cc.o" "gcc" "tests/CMakeFiles/xmlshred_tests.dir/engine_test.cc.o.d"
  "/root/repo/tests/integration_test.cc" "tests/CMakeFiles/xmlshred_tests.dir/integration_test.cc.o" "gcc" "tests/CMakeFiles/xmlshred_tests.dir/integration_test.cc.o.d"
  "/root/repo/tests/mapping_test.cc" "tests/CMakeFiles/xmlshred_tests.dir/mapping_test.cc.o" "gcc" "tests/CMakeFiles/xmlshred_tests.dir/mapping_test.cc.o.d"
  "/root/repo/tests/metrics_test.cc" "tests/CMakeFiles/xmlshred_tests.dir/metrics_test.cc.o" "gcc" "tests/CMakeFiles/xmlshred_tests.dir/metrics_test.cc.o.d"
  "/root/repo/tests/misc_test.cc" "tests/CMakeFiles/xmlshred_tests.dir/misc_test.cc.o" "gcc" "tests/CMakeFiles/xmlshred_tests.dir/misc_test.cc.o.d"
  "/root/repo/tests/property_test.cc" "tests/CMakeFiles/xmlshred_tests.dir/property_test.cc.o" "gcc" "tests/CMakeFiles/xmlshred_tests.dir/property_test.cc.o.d"
  "/root/repo/tests/reconstruct_test.cc" "tests/CMakeFiles/xmlshred_tests.dir/reconstruct_test.cc.o" "gcc" "tests/CMakeFiles/xmlshred_tests.dir/reconstruct_test.cc.o.d"
  "/root/repo/tests/rel_test.cc" "tests/CMakeFiles/xmlshred_tests.dir/rel_test.cc.o" "gcc" "tests/CMakeFiles/xmlshred_tests.dir/rel_test.cc.o.d"
  "/root/repo/tests/robustness_test.cc" "tests/CMakeFiles/xmlshred_tests.dir/robustness_test.cc.o" "gcc" "tests/CMakeFiles/xmlshred_tests.dir/robustness_test.cc.o.d"
  "/root/repo/tests/search_test.cc" "tests/CMakeFiles/xmlshred_tests.dir/search_test.cc.o" "gcc" "tests/CMakeFiles/xmlshred_tests.dir/search_test.cc.o.d"
  "/root/repo/tests/sql_test.cc" "tests/CMakeFiles/xmlshred_tests.dir/sql_test.cc.o" "gcc" "tests/CMakeFiles/xmlshred_tests.dir/sql_test.cc.o.d"
  "/root/repo/tests/translator_unit_test.cc" "tests/CMakeFiles/xmlshred_tests.dir/translator_unit_test.cc.o" "gcc" "tests/CMakeFiles/xmlshred_tests.dir/translator_unit_test.cc.o.d"
  "/root/repo/tests/tune_test.cc" "tests/CMakeFiles/xmlshred_tests.dir/tune_test.cc.o" "gcc" "tests/CMakeFiles/xmlshred_tests.dir/tune_test.cc.o.d"
  "/root/repo/tests/update_test.cc" "tests/CMakeFiles/xmlshred_tests.dir/update_test.cc.o" "gcc" "tests/CMakeFiles/xmlshred_tests.dir/update_test.cc.o.d"
  "/root/repo/tests/workload_test.cc" "tests/CMakeFiles/xmlshred_tests.dir/workload_test.cc.o" "gcc" "tests/CMakeFiles/xmlshred_tests.dir/workload_test.cc.o.d"
  "/root/repo/tests/xml_test.cc" "tests/CMakeFiles/xmlshred_tests.dir/xml_test.cc.o" "gcc" "tests/CMakeFiles/xmlshred_tests.dir/xml_test.cc.o.d"
  "/root/repo/tests/xpath_test.cc" "tests/CMakeFiles/xmlshred_tests.dir/xpath_test.cc.o" "gcc" "tests/CMakeFiles/xmlshred_tests.dir/xpath_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/xs_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/xs_search.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/xs_tune.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/xs_xpath.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/xs_mapping.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/xs_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/xs_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/xs_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/xs_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/xs_rel.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/xs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
