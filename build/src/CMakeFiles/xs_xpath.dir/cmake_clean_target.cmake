file(REMOVE_RECURSE
  "libxs_xpath.a"
)
