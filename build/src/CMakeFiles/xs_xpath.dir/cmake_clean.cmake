file(REMOVE_RECURSE
  "CMakeFiles/xs_xpath.dir/xpath/translator.cc.o"
  "CMakeFiles/xs_xpath.dir/xpath/translator.cc.o.d"
  "CMakeFiles/xs_xpath.dir/xpath/xpath.cc.o"
  "CMakeFiles/xs_xpath.dir/xpath/xpath.cc.o.d"
  "libxs_xpath.a"
  "libxs_xpath.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xs_xpath.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
