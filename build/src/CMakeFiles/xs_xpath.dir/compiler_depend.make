# Empty compiler generated dependencies file for xs_xpath.
# This may be replaced when dependencies are built.
