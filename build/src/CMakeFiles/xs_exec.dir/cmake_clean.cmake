file(REMOVE_RECURSE
  "CMakeFiles/xs_exec.dir/exec/executor.cc.o"
  "CMakeFiles/xs_exec.dir/exec/executor.cc.o.d"
  "libxs_exec.a"
  "libxs_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xs_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
