# Empty dependencies file for xs_exec.
# This may be replaced when dependencies are built.
