file(REMOVE_RECURSE
  "libxs_exec.a"
)
