file(REMOVE_RECURSE
  "CMakeFiles/xs_workload.dir/workload/dblp.cc.o"
  "CMakeFiles/xs_workload.dir/workload/dblp.cc.o.d"
  "CMakeFiles/xs_workload.dir/workload/movie.cc.o"
  "CMakeFiles/xs_workload.dir/workload/movie.cc.o.d"
  "CMakeFiles/xs_workload.dir/workload/query_gen.cc.o"
  "CMakeFiles/xs_workload.dir/workload/query_gen.cc.o.d"
  "libxs_workload.a"
  "libxs_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xs_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
