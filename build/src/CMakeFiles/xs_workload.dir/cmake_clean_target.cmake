file(REMOVE_RECURSE
  "libxs_workload.a"
)
