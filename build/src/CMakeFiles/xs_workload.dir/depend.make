# Empty dependencies file for xs_workload.
# This may be replaced when dependencies are built.
