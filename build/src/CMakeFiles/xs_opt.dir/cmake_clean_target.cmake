file(REMOVE_RECURSE
  "libxs_opt.a"
)
