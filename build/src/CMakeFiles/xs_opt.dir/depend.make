# Empty dependencies file for xs_opt.
# This may be replaced when dependencies are built.
