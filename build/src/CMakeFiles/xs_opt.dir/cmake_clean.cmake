file(REMOVE_RECURSE
  "CMakeFiles/xs_opt.dir/opt/cost_model.cc.o"
  "CMakeFiles/xs_opt.dir/opt/cost_model.cc.o.d"
  "CMakeFiles/xs_opt.dir/opt/plan.cc.o"
  "CMakeFiles/xs_opt.dir/opt/plan.cc.o.d"
  "CMakeFiles/xs_opt.dir/opt/planner.cc.o"
  "CMakeFiles/xs_opt.dir/opt/planner.cc.o.d"
  "libxs_opt.a"
  "libxs_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xs_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
