file(REMOVE_RECURSE
  "CMakeFiles/xs_tune.dir/tune/advisor.cc.o"
  "CMakeFiles/xs_tune.dir/tune/advisor.cc.o.d"
  "libxs_tune.a"
  "libxs_tune.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xs_tune.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
