file(REMOVE_RECURSE
  "libxs_tune.a"
)
