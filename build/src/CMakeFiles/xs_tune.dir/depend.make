# Empty dependencies file for xs_tune.
# This may be replaced when dependencies are built.
