
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/xml/document.cc" "src/CMakeFiles/xs_xml.dir/xml/document.cc.o" "gcc" "src/CMakeFiles/xs_xml.dir/xml/document.cc.o.d"
  "/root/repo/src/xml/dtd_parser.cc" "src/CMakeFiles/xs_xml.dir/xml/dtd_parser.cc.o" "gcc" "src/CMakeFiles/xs_xml.dir/xml/dtd_parser.cc.o.d"
  "/root/repo/src/xml/schema_tree.cc" "src/CMakeFiles/xs_xml.dir/xml/schema_tree.cc.o" "gcc" "src/CMakeFiles/xs_xml.dir/xml/schema_tree.cc.o.d"
  "/root/repo/src/xml/xsd_parser.cc" "src/CMakeFiles/xs_xml.dir/xml/xsd_parser.cc.o" "gcc" "src/CMakeFiles/xs_xml.dir/xml/xsd_parser.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/xs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
