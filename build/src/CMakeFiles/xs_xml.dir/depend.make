# Empty dependencies file for xs_xml.
# This may be replaced when dependencies are built.
