file(REMOVE_RECURSE
  "libxs_xml.a"
)
