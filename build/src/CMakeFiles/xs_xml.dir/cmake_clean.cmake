file(REMOVE_RECURSE
  "CMakeFiles/xs_xml.dir/xml/document.cc.o"
  "CMakeFiles/xs_xml.dir/xml/document.cc.o.d"
  "CMakeFiles/xs_xml.dir/xml/dtd_parser.cc.o"
  "CMakeFiles/xs_xml.dir/xml/dtd_parser.cc.o.d"
  "CMakeFiles/xs_xml.dir/xml/schema_tree.cc.o"
  "CMakeFiles/xs_xml.dir/xml/schema_tree.cc.o.d"
  "CMakeFiles/xs_xml.dir/xml/xsd_parser.cc.o"
  "CMakeFiles/xs_xml.dir/xml/xsd_parser.cc.o.d"
  "libxs_xml.a"
  "libxs_xml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xs_xml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
