file(REMOVE_RECURSE
  "libxs_search.a"
)
