# Empty compiler generated dependencies file for xs_search.
# This may be replaced when dependencies are built.
