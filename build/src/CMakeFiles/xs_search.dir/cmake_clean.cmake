file(REMOVE_RECURSE
  "CMakeFiles/xs_search.dir/search/candidates.cc.o"
  "CMakeFiles/xs_search.dir/search/candidates.cc.o.d"
  "CMakeFiles/xs_search.dir/search/evaluate.cc.o"
  "CMakeFiles/xs_search.dir/search/evaluate.cc.o.d"
  "CMakeFiles/xs_search.dir/search/greedy.cc.o"
  "CMakeFiles/xs_search.dir/search/greedy.cc.o.d"
  "CMakeFiles/xs_search.dir/search/problem.cc.o"
  "CMakeFiles/xs_search.dir/search/problem.cc.o.d"
  "libxs_search.a"
  "libxs_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xs_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
