file(REMOVE_RECURSE
  "libxs_mapping.a"
)
