
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mapping/mapping.cc" "src/CMakeFiles/xs_mapping.dir/mapping/mapping.cc.o" "gcc" "src/CMakeFiles/xs_mapping.dir/mapping/mapping.cc.o.d"
  "/root/repo/src/mapping/reconstructor.cc" "src/CMakeFiles/xs_mapping.dir/mapping/reconstructor.cc.o" "gcc" "src/CMakeFiles/xs_mapping.dir/mapping/reconstructor.cc.o.d"
  "/root/repo/src/mapping/shredder.cc" "src/CMakeFiles/xs_mapping.dir/mapping/shredder.cc.o" "gcc" "src/CMakeFiles/xs_mapping.dir/mapping/shredder.cc.o.d"
  "/root/repo/src/mapping/transforms.cc" "src/CMakeFiles/xs_mapping.dir/mapping/transforms.cc.o" "gcc" "src/CMakeFiles/xs_mapping.dir/mapping/transforms.cc.o.d"
  "/root/repo/src/mapping/xml_stats.cc" "src/CMakeFiles/xs_mapping.dir/mapping/xml_stats.cc.o" "gcc" "src/CMakeFiles/xs_mapping.dir/mapping/xml_stats.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/xs_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/xs_rel.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/xs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
