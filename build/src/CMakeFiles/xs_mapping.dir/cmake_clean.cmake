file(REMOVE_RECURSE
  "CMakeFiles/xs_mapping.dir/mapping/mapping.cc.o"
  "CMakeFiles/xs_mapping.dir/mapping/mapping.cc.o.d"
  "CMakeFiles/xs_mapping.dir/mapping/reconstructor.cc.o"
  "CMakeFiles/xs_mapping.dir/mapping/reconstructor.cc.o.d"
  "CMakeFiles/xs_mapping.dir/mapping/shredder.cc.o"
  "CMakeFiles/xs_mapping.dir/mapping/shredder.cc.o.d"
  "CMakeFiles/xs_mapping.dir/mapping/transforms.cc.o"
  "CMakeFiles/xs_mapping.dir/mapping/transforms.cc.o.d"
  "CMakeFiles/xs_mapping.dir/mapping/xml_stats.cc.o"
  "CMakeFiles/xs_mapping.dir/mapping/xml_stats.cc.o.d"
  "libxs_mapping.a"
  "libxs_mapping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xs_mapping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
