# Empty compiler generated dependencies file for xs_mapping.
# This may be replaced when dependencies are built.
