file(REMOVE_RECURSE
  "libxs_rel.a"
)
