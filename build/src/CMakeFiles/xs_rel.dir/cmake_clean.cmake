file(REMOVE_RECURSE
  "CMakeFiles/xs_rel.dir/rel/catalog.cc.o"
  "CMakeFiles/xs_rel.dir/rel/catalog.cc.o.d"
  "CMakeFiles/xs_rel.dir/rel/index.cc.o"
  "CMakeFiles/xs_rel.dir/rel/index.cc.o.d"
  "CMakeFiles/xs_rel.dir/rel/schema.cc.o"
  "CMakeFiles/xs_rel.dir/rel/schema.cc.o.d"
  "CMakeFiles/xs_rel.dir/rel/stats.cc.o"
  "CMakeFiles/xs_rel.dir/rel/stats.cc.o.d"
  "CMakeFiles/xs_rel.dir/rel/table.cc.o"
  "CMakeFiles/xs_rel.dir/rel/table.cc.o.d"
  "CMakeFiles/xs_rel.dir/rel/value.cc.o"
  "CMakeFiles/xs_rel.dir/rel/value.cc.o.d"
  "CMakeFiles/xs_rel.dir/rel/view.cc.o"
  "CMakeFiles/xs_rel.dir/rel/view.cc.o.d"
  "libxs_rel.a"
  "libxs_rel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xs_rel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
