# Empty compiler generated dependencies file for xs_rel.
# This may be replaced when dependencies are built.
