
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rel/catalog.cc" "src/CMakeFiles/xs_rel.dir/rel/catalog.cc.o" "gcc" "src/CMakeFiles/xs_rel.dir/rel/catalog.cc.o.d"
  "/root/repo/src/rel/index.cc" "src/CMakeFiles/xs_rel.dir/rel/index.cc.o" "gcc" "src/CMakeFiles/xs_rel.dir/rel/index.cc.o.d"
  "/root/repo/src/rel/schema.cc" "src/CMakeFiles/xs_rel.dir/rel/schema.cc.o" "gcc" "src/CMakeFiles/xs_rel.dir/rel/schema.cc.o.d"
  "/root/repo/src/rel/stats.cc" "src/CMakeFiles/xs_rel.dir/rel/stats.cc.o" "gcc" "src/CMakeFiles/xs_rel.dir/rel/stats.cc.o.d"
  "/root/repo/src/rel/table.cc" "src/CMakeFiles/xs_rel.dir/rel/table.cc.o" "gcc" "src/CMakeFiles/xs_rel.dir/rel/table.cc.o.d"
  "/root/repo/src/rel/value.cc" "src/CMakeFiles/xs_rel.dir/rel/value.cc.o" "gcc" "src/CMakeFiles/xs_rel.dir/rel/value.cc.o.d"
  "/root/repo/src/rel/view.cc" "src/CMakeFiles/xs_rel.dir/rel/view.cc.o" "gcc" "src/CMakeFiles/xs_rel.dir/rel/view.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/xs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
