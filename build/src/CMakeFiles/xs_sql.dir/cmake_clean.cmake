file(REMOVE_RECURSE
  "CMakeFiles/xs_sql.dir/sql/ast.cc.o"
  "CMakeFiles/xs_sql.dir/sql/ast.cc.o.d"
  "CMakeFiles/xs_sql.dir/sql/binder.cc.o"
  "CMakeFiles/xs_sql.dir/sql/binder.cc.o.d"
  "CMakeFiles/xs_sql.dir/sql/parser.cc.o"
  "CMakeFiles/xs_sql.dir/sql/parser.cc.o.d"
  "libxs_sql.a"
  "libxs_sql.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xs_sql.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
