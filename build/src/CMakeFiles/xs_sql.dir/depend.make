# Empty dependencies file for xs_sql.
# This may be replaced when dependencies are built.
