file(REMOVE_RECURSE
  "libxs_sql.a"
)
