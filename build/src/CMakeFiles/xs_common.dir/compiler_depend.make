# Empty compiler generated dependencies file for xs_common.
# This may be replaced when dependencies are built.
