file(REMOVE_RECURSE
  "CMakeFiles/xs_common.dir/common/rng.cc.o"
  "CMakeFiles/xs_common.dir/common/rng.cc.o.d"
  "CMakeFiles/xs_common.dir/common/status.cc.o"
  "CMakeFiles/xs_common.dir/common/status.cc.o.d"
  "CMakeFiles/xs_common.dir/common/strings.cc.o"
  "CMakeFiles/xs_common.dir/common/strings.cc.o.d"
  "libxs_common.a"
  "libxs_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xs_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
