file(REMOVE_RECURSE
  "libxs_common.a"
)
