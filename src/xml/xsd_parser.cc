#include "xml/xsd_parser.h"

#include <map>
#include <set>

#include "common/logging.h"
#include "common/strings.h"
#include "common/trace.h"
#include "common/metrics.h"

namespace xmlshred {

namespace {

// Strips a namespace prefix: "xs:element" -> "element".
std::string_view LocalName(std::string_view qname) {
  size_t pos = qname.rfind(':');
  return pos == std::string_view::npos ? qname : qname.substr(pos + 1);
}

bool IsBaseType(std::string_view type, XsdBaseType* out) {
  std::string_view local = LocalName(type);
  if (local == "string" || local == "anyURI" || local == "token" ||
      local == "normalizedString" || local == "date") {
    *out = XsdBaseType::kString;
    return true;
  }
  if (local == "int" || local == "integer" || local == "long" ||
      local == "short" || local == "gYear" || local == "positiveInteger" ||
      local == "nonNegativeInteger") {
    *out = XsdBaseType::kInt;
    return true;
  }
  if (local == "decimal" || local == "double" || local == "float") {
    *out = XsdBaseType::kDouble;
    return true;
  }
  return false;
}

struct Occurs {
  int min = 1;
  bool unbounded = false;
  int max = 1;
};

Result<Occurs> ParseOccurs(const XmlElement& element) {
  Occurs occurs;
  if (const std::string* v = element.FindAttribute("minOccurs")) {
    occurs.min = std::atoi(v->c_str());
    if (occurs.min < 0) return InvalidArgument("negative minOccurs");
  }
  if (const std::string* v = element.FindAttribute("maxOccurs")) {
    if (*v == "unbounded") {
      occurs.unbounded = true;
    } else {
      occurs.max = std::atoi(v->c_str());
      if (occurs.max < 1) return InvalidArgument("maxOccurs < 1");
    }
  }
  return occurs;
}

class XsdBuilder {
 public:
  XsdBuilder(const XmlElement& schema_root, ResourceGovernor* governor)
      : schema_root_(schema_root), governor_(governor) {}

  Result<std::unique_ptr<SchemaTree>> Build() {
    if (LocalName(schema_root_.tag()) != "schema") {
      return InvalidArgument("document element is not xs:schema");
    }
    tree_ = std::make_unique<SchemaTree>();
    // First pass: register named complex types.
    for (const auto& child : schema_root_.children()) {
      if (LocalName(child->tag()) == "complexType") {
        const std::string* name = child->FindAttribute("name");
        if (name == nullptr) {
          return InvalidArgument("global complexType without name");
        }
        named_types_[*name] = child.get();
      }
    }
    // The first global element is the document root.
    const XmlElement* root_element = nullptr;
    for (const auto& child : schema_root_.children()) {
      if (LocalName(child->tag()) == "element") {
        root_element = child.get();
        break;
      }
    }
    if (root_element == nullptr) {
      return InvalidArgument("schema has no global element");
    }
    XS_ASSIGN_OR_RETURN(std::unique_ptr<SchemaNode> root,
                        BuildElement(*root_element));
    tree_->SetRoot(std::move(root));
    return std::move(tree_);
  }

 private:
  // Builds the kTag node for an xs:element (without occurs wrapping).
  // The governor's depth guard also catches recursive named-type
  // references (which the paper's non-recursive schemas exclude).
  Result<std::unique_ptr<SchemaNode>> BuildElement(
      const XmlElement& element) {
    RecursionScope scope(governor_);
    XS_RETURN_IF_ERROR(scope.status());
    const std::string* name = element.FindAttribute("name");
    if (name == nullptr) return InvalidArgument("element without name");
    std::unique_ptr<SchemaNode> tag = tree_->NewTag(*name);
    if (const std::string* ann = element.FindAttribute("annotation")) {
      tag->set_annotation(*ann);
    }

    const std::string* type = element.FindAttribute("type");
    const XmlElement* inline_complex = element.FindChild("xs:complexType");
    if (inline_complex == nullptr) {
      // Accept any prefix.
      for (const auto& child : element.children()) {
        if (LocalName(child->tag()) == "complexType") {
          inline_complex = child.get();
          break;
        }
      }
    }

    if (type != nullptr) {
      XsdBaseType base;
      if (IsBaseType(*type, &base)) {
        tag->AddChild(tree_->NewSimple(base));
        return tag;
      }
      auto it = named_types_.find(std::string(LocalName(*type)));
      if (it == named_types_.end()) {
        return NotFound("complexType " + *type);
      }
      tag->set_type_name(std::string(LocalName(*type)));
      XS_ASSIGN_OR_RETURN(std::unique_ptr<SchemaNode> content,
                          BuildComplexContent(*it->second));
      tag->AddChild(std::move(content));
      return tag;
    }
    if (inline_complex != nullptr) {
      XS_ASSIGN_OR_RETURN(std::unique_ptr<SchemaNode> content,
                          BuildComplexContent(*inline_complex));
      tag->AddChild(std::move(content));
      return tag;
    }
    // No type: default to string content.
    tag->AddChild(tree_->NewSimple(XsdBaseType::kString));
    return tag;
  }

  // Builds the content node for a complexType: its sequence or choice.
  Result<std::unique_ptr<SchemaNode>> BuildComplexContent(
      const XmlElement& complex_type) {
    for (const auto& child : complex_type.children()) {
      std::string_view local = LocalName(child->tag());
      if (local == "sequence" || local == "choice") {
        return BuildGroup(*child);
      }
    }
    return InvalidArgument("complexType without sequence or choice");
  }

  // Builds a kSequence / kChoice node with occurs-wrapped particles.
  Result<std::unique_ptr<SchemaNode>> BuildGroup(const XmlElement& group) {
    RecursionScope scope(governor_);
    XS_RETURN_IF_ERROR(scope.status());
    std::string_view local = LocalName(group.tag());
    std::unique_ptr<SchemaNode> node =
        tree_->NewNode(local == "sequence" ? SchemaNodeKind::kSequence
                                           : SchemaNodeKind::kChoice);
    for (const auto& child : group.children()) {
      std::string_view child_local = LocalName(child->tag());
      std::unique_ptr<SchemaNode> particle;
      if (child_local == "element") {
        XS_ASSIGN_OR_RETURN(particle, BuildElement(*child));
      } else if (child_local == "sequence" || child_local == "choice") {
        XS_ASSIGN_OR_RETURN(particle, BuildGroup(*child));
      } else {
        continue;  // annotations, attributes, etc.
      }
      XS_ASSIGN_OR_RETURN(Occurs occurs, ParseOccurs(*child));
      if (occurs.unbounded || occurs.max > 1) {
        std::unique_ptr<SchemaNode> rep =
            tree_->NewNode(SchemaNodeKind::kRepetition);
        rep->AddChild(std::move(particle));
        particle = std::move(rep);
      } else if (occurs.min == 0) {
        std::unique_ptr<SchemaNode> opt =
            tree_->NewNode(SchemaNodeKind::kOption);
        opt->AddChild(std::move(particle));
        particle = std::move(opt);
      }
      node->AddChild(std::move(particle));
    }
    if (node->num_children() == 0) return InvalidArgument("empty group");
    return node;
  }

  const XmlElement& schema_root_;
  ResourceGovernor* governor_;
  std::unique_ptr<SchemaTree> tree_;
  std::map<std::string, const XmlElement*> named_types_;
};

}  // namespace

void AssignDefaultAnnotations(SchemaTree* tree) {
  std::set<std::string> taken;
  tree->Visit([&taken](SchemaNode* node) {
    if (node->is_annotated()) taken.insert(node->annotation());
  });
  auto unique_name = [&taken](const std::string& base) {
    std::string name = base;
    int suffix = 2;
    while (taken.count(name) > 0) {
      name = base + "_" + std::to_string(suffix++);
    }
    taken.insert(name);
    return name;
  };
  if (tree->root() != nullptr && !tree->root()->is_annotated()) {
    tree->root()->set_annotation(unique_name(tree->root()->name()));
  }
  tree->Visit([&unique_name](SchemaNode* node) {
    if (node->kind() == SchemaNodeKind::kTag && !node->is_annotated() &&
        node->parent() != nullptr &&
        node->parent()->kind() == SchemaNodeKind::kRepetition) {
      node->set_annotation(unique_name(node->name()));
    }
  });
}

namespace {

const char* BaseTypeToXsd(XsdBaseType type) {
  switch (type) {
    case XsdBaseType::kString:
      return "xs:string";
    case XsdBaseType::kInt:
      return "xs:integer";
    case XsdBaseType::kDouble:
      return "xs:double";
  }
  return "xs:string";
}

void RenderNode(const SchemaNode* node, const std::string& occurs_attrs,
                int indent, std::string* out);

// Renders the children of a group/option/repetition context.
void RenderParticle(const SchemaNode* node, int indent, std::string* out) {
  switch (node->kind()) {
    case SchemaNodeKind::kRepetition:
      RenderNode(node->child(0), " minOccurs=\"0\" maxOccurs=\"unbounded\"",
                 indent, out);
      break;
    case SchemaNodeKind::kOption:
      RenderNode(node->child(0), " minOccurs=\"0\"", indent, out);
      break;
    default:
      RenderNode(node, "", indent, out);
  }
}

void RenderNode(const SchemaNode* node, const std::string& occurs_attrs,
                int indent, std::string* out) {
  std::string pad(static_cast<size_t>(indent) * 2, ' ');
  switch (node->kind()) {
    case SchemaNodeKind::kTag: {
      const SchemaNode* content = node->child(0);
      std::string ann = node->is_annotated()
                            ? " annotation=\"" + node->annotation() + "\""
                            : "";
      if (content->kind() == SchemaNodeKind::kSimpleType) {
        *out += pad + "<xs:element name=\"" + node->name() + "\" type=\"" +
                BaseTypeToXsd(content->base_type()) + "\"" + ann +
                occurs_attrs + "/>\n";
      } else {
        *out += pad + "<xs:element name=\"" + node->name() + "\"" + ann +
                occurs_attrs + ">\n";
        *out += pad + "  <xs:complexType>\n";
        RenderNode(content, "", indent + 2, out);
        *out += pad + "  </xs:complexType>\n";
        *out += pad + "</xs:element>\n";
      }
      break;
    }
    case SchemaNodeKind::kSequence:
    case SchemaNodeKind::kChoice: {
      const char* name =
          node->kind() == SchemaNodeKind::kSequence ? "sequence" : "choice";
      *out += pad + "<xs:" + std::string(name) + occurs_attrs + ">\n";
      for (const auto& child : node->children()) {
        RenderParticle(child.get(), indent + 1, out);
      }
      *out += pad + "</xs:" + std::string(name) + ">\n";
      break;
    }
    case SchemaNodeKind::kRepetition:
    case SchemaNodeKind::kOption:
      RenderParticle(node, indent, out);
      break;
    case SchemaNodeKind::kSimpleType:
      // Rendered by the owning tag.
      break;
  }
}

}  // namespace

std::string SchemaTreeToXsd(const SchemaTree& tree) {
  std::string out =
      "<?xml version=\"1.0\"?>\n"
      "<xs:schema xmlns:xs=\"http://www.w3.org/2001/XMLSchema\">\n";
  if (tree.root() != nullptr) RenderNode(tree.root(), "", 1, &out);
  out += "</xs:schema>\n";
  return out;
}


namespace {

int64_t CountSchemaNodes(const SchemaNode* node) {
  if (node == nullptr) return 0;
  int64_t total = 1;
  for (size_t i = 0; i < node->num_children(); ++i) {
    total += CountSchemaNodes(node->child(i));
  }
  return total;
}

}  // namespace

Result<std::unique_ptr<SchemaTree>> ParseXsd(std::string_view xsd_text,
                                             const ParseOptions& options) {
  if (options.exec != nullptr) {
    const ExecContext& exec = *options.exec;
    SpanScope span(exec.trace, "parse.xsd");
    span.Attr("bytes", static_cast<int64_t>(xsd_text.size()));
    ParseOptions bare;
    bare.governor = exec.governor;
    auto tree = ParseXsd(xsd_text, bare);
    if (tree.ok() && exec.metrics != nullptr) {
      exec.metrics->counter(kMetricParseXsdSchemas)->Increment();
      exec.metrics->counter(kMetricParseXsdNodes)
          ->Add(CountSchemaNodes((*tree)->root()));
    }
    if (tree.ok()) span.Attr("nodes", CountSchemaNodes((*tree)->root()));
    return tree;
  }
  ResourceGovernor stack_safety;  // used when the caller passes none
  ResourceGovernor* governor =
      options.governor != nullptr ? options.governor : &stack_safety;
  ParseOptions doc_options;
  doc_options.governor = governor;
  XS_ASSIGN_OR_RETURN(XmlDocument doc, ParseXml(xsd_text, doc_options));
  if (doc.root() == nullptr) return InvalidArgument("empty XSD");
  XsdBuilder builder(*doc.root(), governor);
  return builder.Build();
}

}  // namespace xmlshred
