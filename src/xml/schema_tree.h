// Annotated XSD schema tree T(V, E, A) — Section 2 of the paper.
//
// Nodes represent the XSD type constructors: tag names, sequences (","),
// repetitions ("*", maxOccurs > 1), options ("?", minOccurs = 0), choices
// ("|"), and simple (base) types. A is the annotation set: a tag node with
// a non-empty annotation is mapped to its own relation named by the
// annotation; the root and any set-valued element (child of "*") must be
// annotated. Two tag nodes sharing a non-empty `type_name` are "shared
// type" (logically equivalent) — the targets of type split/merge.
//
// Every node carries a persistent id: clones preserve ids, so a
// transformation candidate can name its target nodes and stay applicable
// across the search's repeated re-derivations of the current mapping.

#ifndef XMLSHRED_XML_SCHEMA_TREE_H_
#define XMLSHRED_XML_SCHEMA_TREE_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "rel/value.h"

namespace xmlshred {

enum class SchemaNodeKind {
  kTag,         // named element
  kSequence,    // ","
  kChoice,      // "|"
  kOption,      // "?" (minOccurs=0, maxOccurs=1)
  kRepetition,  // "*" (maxOccurs unbounded / > 1)
  kSimpleType,  // base type leaf
};

const char* SchemaNodeKindToString(SchemaNodeKind kind);

enum class XsdBaseType { kString, kInt, kDouble };

ColumnType BaseTypeToColumnType(XsdBaseType type);

class SchemaNode {
 public:
  SchemaNode(int id, SchemaNodeKind kind) : id_(id), kind_(kind) {}
  SchemaNode(const SchemaNode&) = delete;
  SchemaNode& operator=(const SchemaNode&) = delete;

  int id() const { return id_; }
  SchemaNodeKind kind() const { return kind_; }

  // Tag name (kTag only).
  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  XsdBaseType base_type() const { return base_type_; }
  void set_base_type(XsdBaseType type) { base_type_ = type; }

  // Relation annotation; empty = inlined into the nearest annotated
  // ancestor's relation.
  const std::string& annotation() const { return annotation_; }
  void set_annotation(std::string annotation) {
    annotation_ = std::move(annotation);
  }
  bool is_annotated() const { return !annotation_.empty(); }

  // Shared-type identity (kTag only); empty = not shared.
  const std::string& type_name() const { return type_name_; }
  void set_type_name(std::string type_name) {
    type_name_ = std::move(type_name);
  }

  SchemaNode* parent() const { return parent_; }

  const std::vector<std::unique_ptr<SchemaNode>>& children() const {
    return children_;
  }
  SchemaNode* child(size_t i) const { return children_[i].get(); }
  size_t num_children() const { return children_.size(); }

  SchemaNode* AddChild(std::unique_ptr<SchemaNode> child);
  // Inserts at position `pos`, shifting later children.
  SchemaNode* InsertChild(size_t pos, std::unique_ptr<SchemaNode> child);
  // Detaches and returns the i-th child.
  std::unique_ptr<SchemaNode> RemoveChild(size_t i);
  // Position of `child` among the children, or -1.
  int ChildIndex(const SchemaNode* child) const;

  // Nearest ancestor tag node with a non-empty annotation (not including
  // this node), or nullptr.
  SchemaNode* NearestAnnotatedAncestor() const;

  // True if some ancestor (up to but excluding the nearest annotated tag)
  // is a repetition — i.e. this element can occur multiple times per
  // owning-relation row.
  bool UnderRepetition() const;

  // True if some ancestor below the nearest annotated tag is an option or
  // a choice — i.e. this element may be absent.
  bool UnderOption() const;

  // ----- transformation bookkeeping -----

  // Id of the node in the *original* (pre-transformation) schema tree this
  // node derives from; statistics collected on the original data are keyed
  // by origin ids. Defaults to the node's own id.
  int origin_id() const { return origin_id_ >= 0 ? origin_id_ : id_; }
  void set_origin_id(int origin_id) { origin_id_ = origin_id; }

  // True for a kChoice created by union distribution whose children are
  // same-named context variants (which must stay annotated).
  bool is_variant_choice() const { return is_variant_choice_; }
  void set_is_variant_choice(bool v) { is_variant_choice_ = v; }

  // Presence constraints on a union-distribution variant tag: instances
  // routed to this variant must contain at least one child element named
  // in `presence_any` (when non-empty) and none named in
  // `presence_forbidden`.
  const std::vector<std::string>& presence_any() const {
    return presence_any_;
  }
  const std::vector<std::string>& presence_forbidden() const {
    return presence_forbidden_;
  }
  void set_presence(std::vector<std::string> any,
                    std::vector<std::string> forbidden) {
    presence_any_ = std::move(any);
    presence_forbidden_ = std::move(forbidden);
  }

  // Repetition split markers. On an inlined occurrence tag: 1-based index
  // of the occurrence it stores. On the overflow repetition node: the
  // number of leading occurrences stored inline in the parent (only
  // occurrences beyond that count shred into the overflow relation).
  int rep_split_index() const { return rep_split_index_; }
  void set_rep_split_index(int i) { rep_split_index_ = i; }
  int rep_overflow_from() const { return rep_overflow_from_; }
  void set_rep_overflow_from(int k) { rep_overflow_from_ = k; }

  // Pre-transformation subtree stashed by split transformations so the
  // corresponding merge transformation (union factorization, repetition
  // merge) can restore it. Held by the node that replaced the original.
  const SchemaNode* undo() const { return undo_.get(); }
  void set_undo(std::unique_ptr<SchemaNode> undo) { undo_ = std::move(undo); }
  std::unique_ptr<SchemaNode> TakeUndo() { return std::move(undo_); }

 private:
  friend class SchemaTree;

  int id_;
  SchemaNodeKind kind_;
  std::string name_;
  XsdBaseType base_type_ = XsdBaseType::kString;
  std::string annotation_;
  std::string type_name_;
  SchemaNode* parent_ = nullptr;
  std::vector<std::unique_ptr<SchemaNode>> children_;

  int origin_id_ = -1;
  bool is_variant_choice_ = false;
  std::vector<std::string> presence_any_;
  std::vector<std::string> presence_forbidden_;
  int rep_split_index_ = 0;
  int rep_overflow_from_ = 0;
  std::unique_ptr<SchemaNode> undo_;
};

class SchemaTree {
 public:
  SchemaTree() = default;
  SchemaTree(const SchemaTree&) = delete;
  SchemaTree& operator=(const SchemaTree&) = delete;

  SchemaNode* root() { return root_.get(); }
  const SchemaNode* root() const { return root_.get(); }

  // Creates a detached node owned by the caller.
  std::unique_ptr<SchemaNode> NewNode(SchemaNodeKind kind);
  std::unique_ptr<SchemaNode> NewTag(std::string name);
  std::unique_ptr<SchemaNode> NewSimple(XsdBaseType type);

  void SetRoot(std::unique_ptr<SchemaNode> root);

  // Deep copy preserving node ids.
  std::unique_ptr<SchemaTree> Clone() const;

  // Deep copy of a detached subtree keeping node ids (and origin ids).
  static std::unique_ptr<SchemaNode> CopySubtreeSameIds(const SchemaNode* node);

  // Deep copy of a subtree with freshly allocated ids from this tree;
  // origin ids are preserved so statistics still resolve.
  std::unique_ptr<SchemaNode> CopySubtreeFreshIds(const SchemaNode* node);

  // Preorder traversal.
  void Visit(const std::function<void(SchemaNode*)>& fn);
  void Visit(const std::function<void(const SchemaNode*)>& fn) const;

  // Node with the given persistent id, or nullptr.
  SchemaNode* FindNode(int id);
  const SchemaNode* FindNode(int id) const;

  // First tag node with the given tag name (document order), or nullptr.
  SchemaNode* FindTagByName(const std::string& name);

  // All tag nodes with the given tag name.
  std::vector<SchemaNode*> FindTagsByName(const std::string& name);

  // Checks the structural invariants: the root is an annotated tag, every
  // tag child of a repetition is annotated, options/repetitions have one
  // child, choices have >= 2, tags have exactly one content child, simple
  // types are leaves, and annotations are unique per relation name except
  // for shared-type merges (same annotation allowed on same-type tags).
  Status Validate() const;

  // Indented rendering for diagnostics.
  std::string ToString() const;

 private:
  std::unique_ptr<SchemaNode> root_;
  int next_id_ = 0;
};

}  // namespace xmlshred

#endif  // XMLSHRED_XML_SCHEMA_TREE_H_
