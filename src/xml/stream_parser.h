// Pull-based (SAX-style) streaming XML parser.
//
// XmlStreamParser tokenizes the same XML subset as ParseXml — nested
// elements, attributes, character data, the five named entities,
// comments, and a skipped prolog — but emits a flat stream of
// start/end/text events instead of materializing an XmlDocument, so a
// consumer's peak memory is independent of document size. Events are
// zero-copy: tag names and raw text are string_views into the input
// buffer, valid for the buffer's lifetime.
//
// The two parsers accept exactly the same language (asserted by the
// differential tests): the event stream of a document is the pre-order
// DOM walk, with a self-closing tag producing a start immediately
// followed by an end, pure-whitespace character runs suppressed, and
// attribute syntax validated but not surfaced (the shredder never reads
// attributes). Element nesting is bounded by the resolved governor's
// recursion-depth limit, exactly like the DOM parser.

#ifndef XMLSHRED_XML_STREAM_PARSER_H_
#define XMLSHRED_XML_STREAM_PARSER_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "common/limits.h"
#include "common/status.h"

namespace xmlshred {

enum class XmlEventKind {
  kStartElement,  // <tag ...> or the opening half of <tag/>
  kEndElement,    // </tag> or the closing half of <tag/>
  kText,          // a character-data run with at least one non-space byte
  kEndOfInput,    // document (or fragment) fully consumed
};

struct XmlEvent {
  XmlEventKind kind = XmlEventKind::kEndOfInput;
  // Start / end: the element tag. Text: empty.
  std::string_view name;
  // Text: the raw (escaped, untrimmed) character run; decode with
  // AppendDecodedText. Start / end: empty.
  std::string_view raw_text;
  // Byte span of the event's token in the input buffer: a start tag spans
  // '<'..'>', an end tag spans '</'..'>' (== the start span for the
  // synthetic end of a self-closing tag), text spans the raw run.
  size_t begin = 0;
  size_t end = 0;
};

// Decodes one raw character run exactly the way the DOM parser does —
// entity unescape, then whitespace strip — and appends the result to
// *out. An all-whitespace run appends nothing.
void AppendDecodedText(std::string_view raw, std::string* out);

struct StreamParseOptions {
  // Depth guard; null applies the kDefaultMaxRecursionDepth stack-safety
  // floor, matching ParseXml.
  ResourceGovernor* governor = nullptr;
  // Fragment mode parses a whitespace/comment-separated *sequence* of
  // elements (no prolog, no "content after document element" check) —
  // used by parallel ingest workers on top-level subtree partitions.
  bool fragment = false;
};

class XmlStreamParser {
 public:
  explicit XmlStreamParser(std::string_view xml,
                           const StreamParseOptions& options = {});
  ~XmlStreamParser();

  XmlStreamParser(const XmlStreamParser&) = delete;
  XmlStreamParser& operator=(const XmlStreamParser&) = delete;

  // Returns the next event and consumes it. Start and end events are
  // balanced. After the terminal kEndOfInput (or an error), further
  // calls return kEndOfInput / the same error.
  Result<XmlEvent> Next();

  // One-event lookahead; the next call to Next() returns the same event.
  Result<XmlEvent> Peek();

  // Open-element depth (the root counts as 1 while open).
  int depth() const { return static_cast<int>(open_tags_.size()); }

  // Current byte offset into the input (diagnostics).
  size_t offset() const { return pos_; }

 private:
  Result<XmlEvent> Advance();
  Result<XmlEvent> Fail(Status error);
  void SkipWhitespaceAndComments();
  void SkipProlog();
  bool Matches(std::string_view prefix) const;
  Result<std::string_view> ParseName();
  // Parses "<tag attr="v" ...>" starting at '<'; fills a start event and
  // queues the synthetic end for a self-closing tag.
  Result<XmlEvent> ParseStartTag();

  std::string_view xml_;
  ResourceGovernor* governor_;
  ResourceGovernor stack_safety_;  // used when the caller passes none
  bool fragment_ = false;
  size_t pos_ = 0;
  std::vector<std::string_view> open_tags_;
  int entered_depth_ = 0;  // EnterRecursion calls to undo on destruction
  bool done_ = false;
  bool saw_root_ = false;  // doc mode: root start tag consumed
  bool has_pending_end_ = false;  // self-closing: end event queued
  XmlEvent pending_end_;
  bool has_peek_ = false;
  Result<XmlEvent> peeked_{XmlEvent{}};
  bool failed_ = false;
  Status error_ = Status::OK();
};

}  // namespace xmlshred

#endif  // XMLSHRED_XML_STREAM_PARSER_H_
