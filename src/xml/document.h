// In-memory XML document model (elements, attributes, text), plus parsing
// and serialization. The subset supported is what business-data XML needs:
// nested elements, attributes, character data, entities, comments, and
// processing instructions / XML declarations (skipped).

#ifndef XMLSHRED_XML_DOCUMENT_H_
#define XMLSHRED_XML_DOCUMENT_H_

#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/exec_context.h"
#include "common/limits.h"
#include "common/status.h"
#include "xml/parse_options.h"

namespace xmlshred {

class XmlElement {
 public:
  explicit XmlElement(std::string tag) : tag_(std::move(tag)) {}
  XmlElement(const XmlElement&) = delete;
  XmlElement& operator=(const XmlElement&) = delete;

  const std::string& tag() const { return tag_; }
  const std::string& text() const { return text_; }
  void set_text(std::string text) { text_ = std::move(text); }
  void append_text(std::string_view text) { text_.append(text); }

  const std::vector<std::pair<std::string, std::string>>& attributes() const {
    return attributes_;
  }
  void AddAttribute(std::string name, std::string value) {
    attributes_.emplace_back(std::move(name), std::move(value));
  }
  // Value of attribute `name`, or nullptr.
  const std::string* FindAttribute(std::string_view name) const;

  const std::vector<std::unique_ptr<XmlElement>>& children() const {
    return children_;
  }
  // Appends a child element and returns it.
  XmlElement* AddChild(std::string tag);
  XmlElement* AddChild(std::unique_ptr<XmlElement> child);

  // Convenience: appends <tag>text</tag>.
  XmlElement* AddTextChild(std::string tag, std::string text);

  // First child with the given tag, or nullptr.
  const XmlElement* FindChild(std::string_view tag) const;
  // All children with the given tag.
  std::vector<const XmlElement*> FindChildren(std::string_view tag) const;

  // Total number of elements in this subtree (including this one).
  int64_t SubtreeSize() const;

  // Serializes the subtree (no XML declaration).
  std::string ToXml(int indent = 0) const;

 private:
  std::string tag_;
  std::string text_;
  std::vector<std::pair<std::string, std::string>> attributes_;
  std::vector<std::unique_ptr<XmlElement>> children_;
};

class XmlDocument {
 public:
  XmlDocument() = default;
  explicit XmlDocument(std::unique_ptr<XmlElement> root)
      : root_(std::move(root)) {}

  XmlElement* root() { return root_.get(); }
  const XmlElement* root() const { return root_.get(); }
  void set_root(std::unique_ptr<XmlElement> root) { root_ = std::move(root); }

  std::string ToXml() const;

 private:
  std::unique_ptr<XmlElement> root_;
};

// Parses XML text into a document. Element nesting is bounded by the
// resolved governor's recursion-depth limit (kDefaultMaxRecursionDepth
// when none is supplied) — deeper input returns kResourceExhausted
// rather than overflowing the stack. With options.exec set, the parse
// also emits a "parse.xml" span on exec->trace and the "parse.xml.*"
// counters on exec->metrics (documents parsed, elements in the tree).
Result<XmlDocument> ParseXml(std::string_view xml,
                             const ParseOptions& options = {});

// Escapes &, <, >, ", ' for XML output.
std::string XmlEscape(std::string_view s);

}  // namespace xmlshred

#endif  // XMLSHRED_XML_DOCUMENT_H_
