// XSD (XML Schema) subset parser: converts an XSD document into the
// annotated schema tree of Section 2, and back.
//
// Supported constructs: global xs:element (the first is the document
// root), named xs:complexType definitions (references to the same named
// type produce shared-type tag nodes), inline complex types, xs:sequence,
// xs:choice, minOccurs/maxOccurs on particles, and the base types
// xs:string, xs:int(eger)/xs:long, xs:decimal/xs:double/xs:float.
//
// Extension: an `annotation="relname"` attribute on xs:element sets the
// node's relation annotation explicitly (the paper's A set); otherwise
// AssignDefaultAnnotations() annotates the root and every set-valued
// element, as the mapping rules require.

#ifndef XMLSHRED_XML_XSD_PARSER_H_
#define XMLSHRED_XML_XSD_PARSER_H_

#include <memory>
#include <string_view>

#include "common/exec_context.h"
#include "common/limits.h"
#include "common/status.h"
#include "xml/document.h"
#include "xml/parse_options.h"
#include "xml/schema_tree.h"

namespace xmlshred {

// Parses XSD text into a schema tree. Does not assign default annotations
// beyond explicit `annotation` attributes; call AssignDefaultAnnotations()
// if the schema leaves mandatory annotations implicit. Type nesting (and
// recursive named-type references) is bounded by the resolved governor's
// recursion-depth limit; deeper schemas return kResourceExhausted. With
// options.exec set, the parse also emits a "parse.xsd" span on
// exec->trace and the "parse.xsd.*" counters on exec->metrics (schemas
// parsed, nodes in the resulting tree).
Result<std::unique_ptr<SchemaTree>> ParseXsd(std::string_view xsd_text,
                                             const ParseOptions& options = {});

// Annotates the root and every tag under a repetition that lacks an
// annotation, deriving unique relation names from tag names.
void AssignDefaultAnnotations(SchemaTree* tree);

// Renders the schema tree as an XSD document (inverse of ParseXsd for the
// supported subset; annotations appear as `annotation` attributes).
std::string SchemaTreeToXsd(const SchemaTree& tree);

}  // namespace xmlshred

#endif  // XMLSHRED_XML_XSD_PARSER_H_
