// DTD front-end: the paper notes its approach "also applies to XML data
// with DTD by first transforming DTD to XSD". This parser turns a DTD
// subset directly into the same annotated schema tree the XSD parser
// produces.
//
// Supported declarations:
//   <!ELEMENT name (child, child2?, child3*, (a | b), ...)>
//   <!ELEMENT name (#PCDATA)>
//   <!ELEMENT name EMPTY>
// with the occurrence markers `?` (option), `*` and `+` (repetition) on
// names and parenthesized groups, `,` sequences and `|` choices.
// ATTLIST/ENTITY/NOTATION declarations are skipped. An element referenced
// by several parents becomes a shared type (type_name = element name).
// Recursive element definitions are rejected, matching the paper's
// restriction to non-recursive schema parts.

#ifndef XMLSHRED_XML_DTD_PARSER_H_
#define XMLSHRED_XML_DTD_PARSER_H_

#include <memory>
#include <string_view>

#include "common/exec_context.h"
#include "common/limits.h"
#include "common/status.h"
#include "xml/parse_options.h"
#include "xml/schema_tree.h"

namespace xmlshred {

// Parses DTD text; options.root_element picks the document element
// (empty = the first declared element). Annotations are not assigned —
// call AssignDefaultAnnotations() afterwards, as with ParseXsd.
// Content-model nesting and element-reference chains (including
// recursive DTDs) are bounded by the resolved governor's recursion-depth
// limit; deeper input returns kResourceExhausted. With options.exec set,
// the parse also emits a "parse.dtd" span on exec->trace and the
// "parse.dtd.*" counters on exec->metrics.
Result<std::unique_ptr<SchemaTree>> ParseDtd(std::string_view dtd_text,
                                             const ParseOptions& options = {});

}  // namespace xmlshred

#endif  // XMLSHRED_XML_DTD_PARSER_H_
