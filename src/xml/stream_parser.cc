#include "xml/stream_parser.h"

#include <cctype>
#include <utility>

#include "common/strings.h"

namespace xmlshred {

namespace {

bool IsNameChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
         c == '-' || c == '.' || c == ':';
}

bool IsAllWhitespace(std::string_view s) {
  for (char c : s) {
    if (!std::isspace(static_cast<unsigned char>(c))) return false;
  }
  return true;
}

std::string Unescape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  size_t i = 0;
  while (i < s.size()) {
    if (s[i] == '&') {
      if (s.substr(i, 5) == "&amp;") {
        out.push_back('&');
        i += 5;
        continue;
      }
      if (s.substr(i, 4) == "&lt;") {
        out.push_back('<');
        i += 4;
        continue;
      }
      if (s.substr(i, 4) == "&gt;") {
        out.push_back('>');
        i += 4;
        continue;
      }
      if (s.substr(i, 6) == "&quot;") {
        out.push_back('"');
        i += 6;
        continue;
      }
      if (s.substr(i, 6) == "&apos;") {
        out.push_back('\'');
        i += 6;
        continue;
      }
    }
    out.push_back(s[i++]);
  }
  return out;
}

}  // namespace

void AppendDecodedText(std::string_view raw, std::string* out) {
  std::string text = Unescape(raw);
  std::string_view trimmed = StripWhitespace(text);
  if (!trimmed.empty()) out->append(trimmed);
}

XmlStreamParser::XmlStreamParser(std::string_view xml,
                                 const StreamParseOptions& options)
    : xml_(xml),
      governor_(options.governor != nullptr ? options.governor
                                            : &stack_safety_),
      fragment_(options.fragment) {
  if (!fragment_) SkipProlog();
}

XmlStreamParser::~XmlStreamParser() {
  while (entered_depth_ > 0) {
    governor_->LeaveRecursion();
    --entered_depth_;
  }
}

Result<XmlEvent> XmlStreamParser::Next() {
  if (has_peek_) {
    has_peek_ = false;
    Result<XmlEvent> event = std::move(peeked_);
    peeked_ = Result<XmlEvent>(XmlEvent{});
    return event;
  }
  return Advance();
}

Result<XmlEvent> XmlStreamParser::Peek() {
  if (!has_peek_) {
    peeked_ = Advance();
    has_peek_ = true;
  }
  return peeked_;
}

Result<XmlEvent> XmlStreamParser::Fail(Status error) {
  failed_ = true;
  done_ = true;
  error_ = std::move(error);
  return error_;
}

void XmlStreamParser::SkipWhitespaceAndComments() {
  while (pos_ < xml_.size()) {
    if (std::isspace(static_cast<unsigned char>(xml_[pos_]))) {
      ++pos_;
    } else if (Matches("<!--")) {
      size_t end = xml_.find("-->", pos_);
      pos_ = end == std::string_view::npos ? xml_.size() : end + 3;
    } else {
      break;
    }
  }
}

void XmlStreamParser::SkipProlog() {
  SkipWhitespaceAndComments();
  while (Matches("<?") || Matches("<!DOCTYPE")) {
    size_t end = xml_.find('>', pos_);
    pos_ = end == std::string_view::npos ? xml_.size() : end + 1;
    SkipWhitespaceAndComments();
  }
}

bool XmlStreamParser::Matches(std::string_view prefix) const {
  return xml_.substr(pos_, prefix.size()) == prefix;
}

Result<std::string_view> XmlStreamParser::ParseName() {
  size_t start = pos_;
  while (pos_ < xml_.size() && IsNameChar(xml_[pos_])) ++pos_;
  if (pos_ == start) return InvalidArgument("expected XML name");
  return xml_.substr(start, pos_ - start);
}

Result<XmlEvent> XmlStreamParser::ParseStartTag() {
  size_t begin = pos_;
  Status depth_ok = governor_->EnterRecursion();
  if (!depth_ok.ok()) return Fail(std::move(depth_ok));
  ++entered_depth_;
  ++pos_;  // consume '<'
  Result<std::string_view> tag_or = ParseName();
  if (!tag_or.ok()) return Fail(tag_or.status());
  std::string_view tag = *tag_or;
  // Attributes: validated syntactically, values discarded (the shredder
  // never reads them — same behaviour as the DOM path for shredding).
  while (true) {
    while (pos_ < xml_.size() &&
           std::isspace(static_cast<unsigned char>(xml_[pos_]))) {
      ++pos_;
    }
    if (pos_ >= xml_.size()) return Fail(InvalidArgument("unterminated tag"));
    if (Matches("/>")) {
      pos_ += 2;
      XmlEvent start;
      start.kind = XmlEventKind::kStartElement;
      start.name = tag;
      start.begin = begin;
      start.end = pos_;
      open_tags_.push_back(tag);
      pending_end_ = XmlEvent{};
      pending_end_.kind = XmlEventKind::kEndElement;
      pending_end_.name = tag;
      pending_end_.begin = begin;
      pending_end_.end = pos_;
      has_pending_end_ = true;
      return start;
    }
    if (Matches(">")) {
      ++pos_;
      XmlEvent start;
      start.kind = XmlEventKind::kStartElement;
      start.name = tag;
      start.begin = begin;
      start.end = pos_;
      open_tags_.push_back(tag);
      return start;
    }
    Result<std::string_view> attr = ParseName();
    if (!attr.ok()) return Fail(attr.status());
    if (!Matches("=")) {
      return Fail(InvalidArgument("expected '=' in attribute"));
    }
    ++pos_;
    if (pos_ >= xml_.size() || (xml_[pos_] != '"' && xml_[pos_] != '\'')) {
      return Fail(InvalidArgument("expected quoted attribute value"));
    }
    char quote = xml_[pos_++];
    size_t end = xml_.find(quote, pos_);
    if (end == std::string_view::npos) {
      return Fail(InvalidArgument("unterminated attribute value"));
    }
    pos_ = end + 1;
  }
}

Result<XmlEvent> XmlStreamParser::Advance() {
  if (failed_) return error_;
  if (has_pending_end_) {
    has_pending_end_ = false;
    open_tags_.pop_back();
    governor_->LeaveRecursion();
    --entered_depth_;
    return pending_end_;
  }
  if (done_) return XmlEvent{};  // kEndOfInput

  if (open_tags_.empty()) {
    // Top level: before the root (doc mode), between top elements
    // (fragment mode), or after the root (doc mode trailer check).
    SkipWhitespaceAndComments();
    if (fragment_) {
      if (pos_ >= xml_.size()) {
        done_ = true;
        return XmlEvent{};
      }
      if (!Matches("<")) return Fail(InvalidArgument("expected element"));
      return ParseStartTag();
    }
    if (saw_root_) {
      if (pos_ < xml_.size()) {
        return Fail(InvalidArgument("content after document element"));
      }
      done_ = true;
      return XmlEvent{};
    }
    if (!Matches("<")) return Fail(InvalidArgument("expected element"));
    saw_root_ = true;
    return ParseStartTag();
  }

  // Inside an element: content loop, one event per call.
  while (true) {
    if (pos_ >= xml_.size()) {
      return Fail(InvalidArgument("unterminated element"));
    }
    if (Matches("<!--")) {
      size_t end = xml_.find("-->", pos_);
      if (end == std::string_view::npos) {
        return Fail(InvalidArgument("unterminated comment"));
      }
      pos_ = end + 3;
      continue;
    }
    if (Matches("</")) {
      size_t begin = pos_;
      pos_ += 2;
      Result<std::string_view> close_or = ParseName();
      if (!close_or.ok()) return Fail(close_or.status());
      std::string_view close = *close_or;
      std::string_view tag = open_tags_.back();
      if (close != tag) {
        return Fail(InvalidArgument("mismatched close tag: " +
                                    std::string(close) + " for " +
                                    std::string(tag)));
      }
      SkipWhitespaceAndComments();
      if (!Matches(">")) return Fail(InvalidArgument("expected '>'"));
      ++pos_;
      open_tags_.pop_back();
      governor_->LeaveRecursion();
      --entered_depth_;
      XmlEvent end_event;
      end_event.kind = XmlEventKind::kEndElement;
      end_event.name = tag;
      end_event.begin = begin;
      end_event.end = pos_;
      return end_event;
    }
    if (Matches("<")) return ParseStartTag();
    size_t next = xml_.find('<', pos_);
    if (next == std::string_view::npos) {
      return Fail(InvalidArgument("unterminated element content"));
    }
    std::string_view raw = xml_.substr(pos_, next - pos_);
    size_t begin = pos_;
    pos_ = next;
    // Entity decoding never introduces whitespace, so an all-whitespace
    // raw run is exactly the run the DOM parser would discard.
    if (IsAllWhitespace(raw)) continue;
    XmlEvent text;
    text.kind = XmlEventKind::kText;
    text.raw_text = raw;
    text.begin = begin;
    text.end = next;
    return text;
  }
}

}  // namespace xmlshred
