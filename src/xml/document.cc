#include "xml/document.h"

#include <cctype>

#include "common/strings.h"
#include "common/trace.h"
#include "common/metrics.h"

namespace xmlshred {

const std::string* XmlElement::FindAttribute(std::string_view name) const {
  for (const auto& [attr_name, value] : attributes_) {
    if (attr_name == name) return &value;
  }
  return nullptr;
}

XmlElement* XmlElement::AddChild(std::string tag) {
  children_.push_back(std::make_unique<XmlElement>(std::move(tag)));
  return children_.back().get();
}

XmlElement* XmlElement::AddChild(std::unique_ptr<XmlElement> child) {
  children_.push_back(std::move(child));
  return children_.back().get();
}

XmlElement* XmlElement::AddTextChild(std::string tag, std::string text) {
  XmlElement* child = AddChild(std::move(tag));
  child->set_text(std::move(text));
  return child;
}

const XmlElement* XmlElement::FindChild(std::string_view tag) const {
  for (const auto& child : children_) {
    if (child->tag() == tag) return child.get();
  }
  return nullptr;
}

std::vector<const XmlElement*> XmlElement::FindChildren(
    std::string_view tag) const {
  std::vector<const XmlElement*> out;
  for (const auto& child : children_) {
    if (child->tag() == tag) out.push_back(child.get());
  }
  return out;
}

int64_t XmlElement::SubtreeSize() const {
  int64_t n = 1;
  for (const auto& child : children_) n += child->SubtreeSize();
  return n;
}

std::string XmlEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '&':
        out += "&amp;";
        break;
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      case '"':
        out += "&quot;";
        break;
      case '\'':
        out += "&apos;";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

std::string XmlElement::ToXml(int indent) const {
  std::string pad(static_cast<size_t>(indent) * 2, ' ');
  std::string out = pad + "<" + tag_;
  for (const auto& [name, value] : attributes_) {
    out += " " + name + "=\"" + XmlEscape(value) + "\"";
  }
  if (children_.empty() && text_.empty()) {
    out += "/>\n";
    return out;
  }
  out += ">";
  if (!text_.empty()) out += XmlEscape(text_);
  if (!children_.empty()) {
    out += "\n";
    for (const auto& child : children_) out += child->ToXml(indent + 1);
    out += pad;
  }
  out += "</" + tag_ + ">\n";
  return out;
}

std::string XmlDocument::ToXml() const {
  std::string out = "<?xml version=\"1.0\"?>\n";
  if (root_ != nullptr) out += root_->ToXml();
  return out;
}

namespace {

class XmlParser {
 public:
  XmlParser(std::string_view xml, ResourceGovernor* governor)
      : xml_(xml), governor_(governor) {}

  Result<XmlDocument> Parse() {
    SkipProlog();
    XS_ASSIGN_OR_RETURN(std::unique_ptr<XmlElement> root, ParseElement());
    SkipWhitespaceAndComments();
    if (pos_ < xml_.size()) {
      return InvalidArgument("content after document element");
    }
    return XmlDocument(std::move(root));
  }

 private:
  void SkipWhitespaceAndComments() {
    while (pos_ < xml_.size()) {
      if (std::isspace(static_cast<unsigned char>(xml_[pos_]))) {
        ++pos_;
      } else if (Matches("<!--")) {
        size_t end = xml_.find("-->", pos_);
        pos_ = end == std::string_view::npos ? xml_.size() : end + 3;
      } else {
        break;
      }
    }
  }

  void SkipProlog() {
    SkipWhitespaceAndComments();
    while (Matches("<?") || Matches("<!DOCTYPE")) {
      size_t end = xml_.find('>', pos_);
      pos_ = end == std::string_view::npos ? xml_.size() : end + 1;
      SkipWhitespaceAndComments();
    }
  }

  bool Matches(std::string_view prefix) const {
    return xml_.substr(pos_, prefix.size()) == prefix;
  }

  static bool IsNameChar(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
           c == '-' || c == '.' || c == ':';
  }

  Result<std::string> ParseName() {
    size_t start = pos_;
    while (pos_ < xml_.size() && IsNameChar(xml_[pos_])) ++pos_;
    if (pos_ == start) return InvalidArgument("expected XML name");
    return std::string(xml_.substr(start, pos_ - start));
  }

  static std::string Unescape(std::string_view s) {
    std::string out;
    out.reserve(s.size());
    size_t i = 0;
    while (i < s.size()) {
      if (s[i] == '&') {
        if (s.substr(i, 5) == "&amp;") {
          out.push_back('&');
          i += 5;
          continue;
        }
        if (s.substr(i, 4) == "&lt;") {
          out.push_back('<');
          i += 4;
          continue;
        }
        if (s.substr(i, 4) == "&gt;") {
          out.push_back('>');
          i += 4;
          continue;
        }
        if (s.substr(i, 6) == "&quot;") {
          out.push_back('"');
          i += 6;
          continue;
        }
        if (s.substr(i, 6) == "&apos;") {
          out.push_back('\'');
          i += 6;
          continue;
        }
      }
      out.push_back(s[i++]);
    }
    return out;
  }

  Result<std::unique_ptr<XmlElement>> ParseElement() {
    RecursionScope scope(governor_);
    XS_RETURN_IF_ERROR(scope.status());
    SkipWhitespaceAndComments();
    if (!Matches("<")) return InvalidArgument("expected element");
    ++pos_;
    XS_ASSIGN_OR_RETURN(std::string tag, ParseName());
    auto element = std::make_unique<XmlElement>(tag);
    // Attributes.
    while (true) {
      while (pos_ < xml_.size() &&
             std::isspace(static_cast<unsigned char>(xml_[pos_]))) {
        ++pos_;
      }
      if (pos_ >= xml_.size()) return InvalidArgument("unterminated tag");
      if (Matches("/>")) {
        pos_ += 2;
        return element;
      }
      if (Matches(">")) {
        ++pos_;
        break;
      }
      XS_ASSIGN_OR_RETURN(std::string attr, ParseName());
      if (!Matches("=")) return InvalidArgument("expected '=' in attribute");
      ++pos_;
      if (pos_ >= xml_.size() || (xml_[pos_] != '"' && xml_[pos_] != '\'')) {
        return InvalidArgument("expected quoted attribute value");
      }
      char quote = xml_[pos_++];
      size_t end = xml_.find(quote, pos_);
      if (end == std::string_view::npos) {
        return InvalidArgument("unterminated attribute value");
      }
      element->AddAttribute(std::move(attr),
                            Unescape(xml_.substr(pos_, end - pos_)));
      pos_ = end + 1;
    }
    // Content.
    while (true) {
      if (pos_ >= xml_.size()) return InvalidArgument("unterminated element");
      if (Matches("<!--")) {
        size_t end = xml_.find("-->", pos_);
        if (end == std::string_view::npos) {
          return InvalidArgument("unterminated comment");
        }
        pos_ = end + 3;
        continue;
      }
      if (Matches("</")) {
        pos_ += 2;
        XS_ASSIGN_OR_RETURN(std::string close, ParseName());
        if (close != tag) {
          return InvalidArgument("mismatched close tag: " + close +
                                 " for " + tag);
        }
        SkipWhitespaceAndComments();
        if (!Matches(">")) return InvalidArgument("expected '>'");
        ++pos_;
        return element;
      }
      if (Matches("<")) {
        XS_ASSIGN_OR_RETURN(std::unique_ptr<XmlElement> child,
                            ParseElement());
        element->AddChild(std::move(child));
        continue;
      }
      size_t next = xml_.find('<', pos_);
      if (next == std::string_view::npos) {
        return InvalidArgument("unterminated element content");
      }
      std::string_view raw = xml_.substr(pos_, next - pos_);
      std::string text = Unescape(raw);
      std::string_view trimmed = StripWhitespace(text);
      if (!trimmed.empty()) element->append_text(trimmed);
      pos_ = next;
    }
  }

  std::string_view xml_;
  ResourceGovernor* governor_;
  size_t pos_ = 0;
};

}  // namespace

Result<XmlDocument> ParseXml(std::string_view xml,
                             const ParseOptions& options) {
  if (options.exec != nullptr) {
    const ExecContext& exec = *options.exec;
    SpanScope span(exec.trace, "parse.xml");
    span.Attr("bytes", static_cast<int64_t>(xml.size()));
    ParseOptions bare;
    bare.governor = exec.governor;
    auto doc = ParseXml(xml, bare);
    if (doc.ok()) {
      int64_t elements =
          doc->root() != nullptr ? doc->root()->SubtreeSize() : 0;
      if (exec.metrics != nullptr) {
        exec.metrics->counter(kMetricParseXmlDocuments)->Increment();
        exec.metrics->counter(kMetricParseXmlElements)->Add(elements);
      }
      span.Attr("elements", elements);
    }
    return doc;
  }
  ResourceGovernor stack_safety;  // used when the caller passes none
  XmlParser parser(
      xml, options.governor != nullptr ? options.governor : &stack_safety);
  return parser.Parse();
}

}  // namespace xmlshred
