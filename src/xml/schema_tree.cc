#include "xml/schema_tree.h"

#include <map>

#include "common/logging.h"
#include "common/strings.h"

namespace xmlshred {

const char* SchemaNodeKindToString(SchemaNodeKind kind) {
  switch (kind) {
    case SchemaNodeKind::kTag:
      return "tag";
    case SchemaNodeKind::kSequence:
      return ",";
    case SchemaNodeKind::kChoice:
      return "|";
    case SchemaNodeKind::kOption:
      return "?";
    case SchemaNodeKind::kRepetition:
      return "*";
    case SchemaNodeKind::kSimpleType:
      return "simple";
  }
  return "?";
}

ColumnType BaseTypeToColumnType(XsdBaseType type) {
  switch (type) {
    case XsdBaseType::kString:
      return ColumnType::kString;
    case XsdBaseType::kInt:
      return ColumnType::kInt64;
    case XsdBaseType::kDouble:
      return ColumnType::kDouble;
  }
  return ColumnType::kString;
}

SchemaNode* SchemaNode::AddChild(std::unique_ptr<SchemaNode> child) {
  child->parent_ = this;
  children_.push_back(std::move(child));
  return children_.back().get();
}

SchemaNode* SchemaNode::InsertChild(size_t pos,
                                    std::unique_ptr<SchemaNode> child) {
  XS_CHECK_LE(pos, children_.size());
  child->parent_ = this;
  children_.insert(children_.begin() + static_cast<long>(pos),
                   std::move(child));
  return children_[pos].get();
}

std::unique_ptr<SchemaNode> SchemaNode::RemoveChild(size_t i) {
  XS_CHECK_LT(i, children_.size());
  std::unique_ptr<SchemaNode> child = std::move(children_[i]);
  children_.erase(children_.begin() + static_cast<long>(i));
  child->parent_ = nullptr;
  return child;
}

int SchemaNode::ChildIndex(const SchemaNode* child) const {
  for (size_t i = 0; i < children_.size(); ++i) {
    if (children_[i].get() == child) return static_cast<int>(i);
  }
  return -1;
}

SchemaNode* SchemaNode::NearestAnnotatedAncestor() const {
  for (SchemaNode* p = parent_; p != nullptr; p = p->parent_) {
    if (p->kind() == SchemaNodeKind::kTag && p->is_annotated()) return p;
  }
  return nullptr;
}

bool SchemaNode::UnderRepetition() const {
  for (const SchemaNode* p = parent_; p != nullptr; p = p->parent_) {
    if (p->kind() == SchemaNodeKind::kRepetition) return true;
    if (p->kind() == SchemaNodeKind::kTag && p->is_annotated()) break;
  }
  return false;
}

bool SchemaNode::UnderOption() const {
  for (const SchemaNode* p = parent_; p != nullptr; p = p->parent_) {
    if (p->kind() == SchemaNodeKind::kOption ||
        p->kind() == SchemaNodeKind::kChoice) {
      return true;
    }
    if (p->kind() == SchemaNodeKind::kTag && p->is_annotated()) break;
  }
  return false;
}

std::unique_ptr<SchemaNode> SchemaTree::NewNode(SchemaNodeKind kind) {
  return std::make_unique<SchemaNode>(next_id_++, kind);
}

std::unique_ptr<SchemaNode> SchemaTree::NewTag(std::string name) {
  std::unique_ptr<SchemaNode> node = NewNode(SchemaNodeKind::kTag);
  node->set_name(std::move(name));
  return node;
}

std::unique_ptr<SchemaNode> SchemaTree::NewSimple(XsdBaseType type) {
  std::unique_ptr<SchemaNode> node = NewNode(SchemaNodeKind::kSimpleType);
  node->set_base_type(type);
  return node;
}

void SchemaTree::SetRoot(std::unique_ptr<SchemaNode> root) {
  root_ = std::move(root);
  root_->parent_ = nullptr;
}

namespace {

std::unique_ptr<SchemaNode> CloneSubtree(const SchemaNode* node) {
  auto copy = std::make_unique<SchemaNode>(node->id(), node->kind());
  copy->set_name(node->name());
  copy->set_base_type(node->base_type());
  copy->set_annotation(node->annotation());
  copy->set_type_name(node->type_name());
  copy->set_origin_id(node->origin_id());
  copy->set_is_variant_choice(node->is_variant_choice());
  copy->set_presence(node->presence_any(), node->presence_forbidden());
  copy->set_rep_split_index(node->rep_split_index());
  copy->set_rep_overflow_from(node->rep_overflow_from());
  if (node->undo() != nullptr) copy->set_undo(CloneSubtree(node->undo()));
  for (const auto& child : node->children()) {
    copy->AddChild(CloneSubtree(child.get()));
  }
  return copy;
}

void VisitSubtree(SchemaNode* node,
                  const std::function<void(SchemaNode*)>& fn) {
  fn(node);
  for (const auto& child : node->children()) VisitSubtree(child.get(), fn);
}

}  // namespace

std::unique_ptr<SchemaNode> SchemaTree::CopySubtreeSameIds(
    const SchemaNode* node) {
  return CloneSubtree(node);
}

std::unique_ptr<SchemaNode> SchemaTree::CopySubtreeFreshIds(
    const SchemaNode* node) {
  std::unique_ptr<SchemaNode> copy = NewNode(node->kind());
  copy->set_name(node->name());
  copy->set_base_type(node->base_type());
  copy->set_annotation(node->annotation());
  copy->set_type_name(node->type_name());
  copy->set_origin_id(node->origin_id());
  copy->set_is_variant_choice(node->is_variant_choice());
  copy->set_presence(node->presence_any(), node->presence_forbidden());
  copy->set_rep_split_index(node->rep_split_index());
  copy->set_rep_overflow_from(node->rep_overflow_from());
  if (node->undo() != nullptr) {
    copy->set_undo(CloneSubtree(node->undo()));
  }
  for (const auto& child : node->children()) {
    copy->AddChild(CopySubtreeFreshIds(child.get()));
  }
  return copy;
}

std::unique_ptr<SchemaTree> SchemaTree::Clone() const {
  auto tree = std::make_unique<SchemaTree>();
  tree->next_id_ = next_id_;
  if (root_ != nullptr) tree->SetRoot(CloneSubtree(root_.get()));
  return tree;
}

void SchemaTree::Visit(const std::function<void(SchemaNode*)>& fn) {
  if (root_ != nullptr) VisitSubtree(root_.get(), fn);
}

void SchemaTree::Visit(const std::function<void(const SchemaNode*)>& fn) const {
  if (root_ == nullptr) return;
  VisitSubtree(root_.get(),
               [&fn](SchemaNode* node) { fn(node); });
}

SchemaNode* SchemaTree::FindNode(int id) {
  SchemaNode* found = nullptr;
  Visit([&found, id](SchemaNode* node) {
    if (node->id() == id) found = node;
  });
  return found;
}

const SchemaNode* SchemaTree::FindNode(int id) const {
  return const_cast<SchemaTree*>(this)->FindNode(id);
}

SchemaNode* SchemaTree::FindTagByName(const std::string& name) {
  SchemaNode* found = nullptr;
  Visit([&found, &name](SchemaNode* node) {
    if (found == nullptr && node->kind() == SchemaNodeKind::kTag &&
        node->name() == name) {
      found = node;
    }
  });
  return found;
}

std::vector<SchemaNode*> SchemaTree::FindTagsByName(const std::string& name) {
  std::vector<SchemaNode*> out;
  Visit([&out, &name](SchemaNode* node) {
    if (node->kind() == SchemaNodeKind::kTag && node->name() == name) {
      out.push_back(node);
    }
  });
  return out;
}

Status SchemaTree::Validate() const {
  if (root_ == nullptr) return FailedPrecondition("schema tree has no root");
  if (root_->kind() != SchemaNodeKind::kTag || !root_->is_annotated()) {
    return FailedPrecondition("root must be an annotated tag");
  }
  Status status;
  // Annotation -> representative type_name, to ensure one relation is not
  // shared by structurally unrelated tags.
  std::map<std::string, const SchemaNode*> annotation_owner;
  Visit([&status, &annotation_owner](const SchemaNode* node) {
    if (!status.ok()) return;
    switch (node->kind()) {
      case SchemaNodeKind::kTag: {
        if (node->num_children() != 1) {
          status = FailedPrecondition("tag '" + node->name() +
                                      "' must have exactly one content child");
          return;
        }
        // A tag is set-valued relative to its owning relation when the
        // path to the nearest tag ancestor crosses a repetition (or a
        // variant choice, whose alternatives are same-named contexts).
        bool requires_annotation = false;
        for (const SchemaNode* p = node->parent();
             p != nullptr && p->kind() != SchemaNodeKind::kTag;
             p = p->parent()) {
          if (p->kind() == SchemaNodeKind::kRepetition ||
              p->is_variant_choice()) {
            requires_annotation = true;
            break;
          }
        }
        if (requires_annotation && !node->is_annotated()) {
          status = FailedPrecondition("set-valued tag '" + node->name() +
                                      "' must be annotated");
          return;
        }
        if (node->is_annotated()) {
          auto [it, inserted] =
              annotation_owner.emplace(node->annotation(), node);
          if (!inserted) {
            const SchemaNode* other = it->second;
            bool same_type = !node->type_name().empty() &&
                             node->type_name() == other->type_name();
            if (!same_type && node->name() != other->name()) {
              status = FailedPrecondition(
                  "annotation '" + node->annotation() +
                  "' shared by unrelated tags '" + node->name() + "' and '" +
                  other->name() + "'");
            }
          }
        }
        break;
      }
      case SchemaNodeKind::kOption:
      case SchemaNodeKind::kRepetition:
        if (node->num_children() != 1) {
          status = FailedPrecondition("option/repetition must have one child");
        }
        break;
      case SchemaNodeKind::kChoice:
        if (node->num_children() < 2) {
          status = FailedPrecondition("choice must have >= 2 alternatives");
        }
        break;
      case SchemaNodeKind::kSequence:
        if (node->num_children() == 0) {
          status = FailedPrecondition("empty sequence");
        }
        break;
      case SchemaNodeKind::kSimpleType:
        if (node->num_children() != 0) {
          status = FailedPrecondition("simple type must be a leaf");
        }
        break;
    }
  });
  return status;
}

namespace {

void Render(const SchemaNode* node, int indent, std::string* out) {
  out->append(static_cast<size_t>(indent) * 2, ' ');
  if (node->kind() == SchemaNodeKind::kTag) {
    *out += node->name();
    if (node->is_annotated()) *out += " (" + node->annotation() + ")";
    if (!node->type_name().empty()) *out += " :" + node->type_name();
  } else if (node->kind() == SchemaNodeKind::kSimpleType) {
    *out += "#";
    *out += ColumnTypeToString(BaseTypeToColumnType(node->base_type()));
  } else {
    *out += SchemaNodeKindToString(node->kind());
  }
  *out += StrFormat("  [%d]\n", node->id());
  for (const auto& child : node->children()) {
    Render(child.get(), indent + 1, out);
  }
}

}  // namespace

std::string SchemaTree::ToString() const {
  std::string out;
  if (root_ != nullptr) Render(root_.get(), 0, &out);
  return out;
}

}  // namespace xmlshred
