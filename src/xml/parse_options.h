// ParseOptions — the one options carrier for the XML-family parsers.
//
// ParseXml / ParseXsd / ParseDtd each accreted three overloads (bare,
// ResourceGovernor*, ExecContext&); this struct collapses them into a
// single `Parse*(input, const ParseOptions&)` signature. The legacy
// overloads remain as thin deprecated shims so call sites can migrate
// incrementally.
//
// Precedence: when `exec` is set, its governor bounds the parse and its
// trace/metrics receive the "parse.*" span and counters; `governor` is
// ignored. With `exec` null, `governor` alone bounds recursion depth
// (null = a parser-local governor with default limits), and nothing is
// recorded.

#ifndef XMLSHRED_XML_PARSE_OPTIONS_H_
#define XMLSHRED_XML_PARSE_OPTIONS_H_

#include <string_view>

#include "common/exec_context.h"
#include "common/limits.h"

namespace xmlshred {

struct ParseOptions {
  // Full execution environment: governor + "parse.*" trace span +
  // counters. Takes precedence over `governor`.
  const ExecContext* exec = nullptr;
  // Recursion-depth bound only; no instrumentation. Null = a
  // parser-local default-limits governor (stack-safety floor).
  ResourceGovernor* governor = nullptr;
  // ParseDtd only: the document element; empty = the first declared
  // element. Ignored by ParseXml / ParseXsd.
  std::string_view root_element = {};
};

}  // namespace xmlshred

#endif  // XMLSHRED_XML_PARSE_OPTIONS_H_
