#include "xml/dtd_parser.h"

#include <cctype>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/strings.h"
#include "common/trace.h"
#include "common/metrics.h"

namespace xmlshred {

namespace {

// Content-model expression tree parsed from a DTD declaration.
struct DtdExpr {
  enum class Kind { kName, kSequence, kChoice, kPcdata, kEmpty };
  Kind kind = Kind::kName;
  std::string name;
  char occurrence = 0;  // 0, '?', '*', '+'
  std::vector<DtdExpr> children;
};

class DtdTextParser {
 public:
  DtdTextParser(std::string_view text, ResourceGovernor* governor)
      : text_(text), governor_(governor) {}

  // Parses all <!ELEMENT ...> declarations.
  Result<std::map<std::string, DtdExpr>> Parse(
      std::vector<std::string>* order) {
    std::map<std::string, DtdExpr> decls;
    while (true) {
      SkipToDecl();
      if (pos_ >= text_.size()) break;
      XS_ASSIGN_OR_RETURN(std::string keyword, ParseName());
      if (keyword != "ELEMENT") {
        // ATTLIST / ENTITY / NOTATION: skip to '>'.
        size_t end = text_.find('>', pos_);
        if (end == std::string_view::npos) {
          return InvalidArgument("unterminated declaration");
        }
        pos_ = end + 1;
        continue;
      }
      SkipSpace();
      XS_ASSIGN_OR_RETURN(std::string name, ParseName());
      SkipSpace();
      XS_ASSIGN_OR_RETURN(DtdExpr expr, ParseContent());
      SkipSpace();
      if (pos_ >= text_.size() || text_[pos_] != '>') {
        return InvalidArgument("expected '>' after ELEMENT " + name);
      }
      ++pos_;
      if (decls.count(name) > 0) {
        return InvalidArgument("duplicate ELEMENT declaration: " + name);
      }
      order->push_back(name);
      decls[name] = std::move(expr);
    }
    if (decls.empty()) return InvalidArgument("DTD has no ELEMENT declarations");
    return decls;
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  // Advances to just after the next "<!" (skipping comments).
  void SkipToDecl() {
    while (pos_ < text_.size()) {
      size_t open = text_.find("<!", pos_);
      if (open == std::string_view::npos) {
        pos_ = text_.size();
        return;
      }
      if (text_.substr(open, 4) == "<!--") {
        size_t end = text_.find("-->", open);
        pos_ = end == std::string_view::npos ? text_.size() : end + 3;
        continue;
      }
      pos_ = open + 2;
      return;
    }
  }

  Result<std::string> ParseName() {
    SkipSpace();
    size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '_' || text_[pos_] == '-' || text_[pos_] == '.')) {
      ++pos_;
    }
    if (pos_ == start) return InvalidArgument("expected name in DTD");
    return std::string(text_.substr(start, pos_ - start));
  }

  char ParseOccurrence() {
    if (pos_ < text_.size() &&
        (text_[pos_] == '?' || text_[pos_] == '*' || text_[pos_] == '+')) {
      return text_[pos_++];
    }
    return 0;
  }

  Result<DtdExpr> ParseContent() {
    SkipSpace();
    if (text_.substr(pos_, 5) == "EMPTY") {
      pos_ += 5;
      DtdExpr expr;
      expr.kind = DtdExpr::Kind::kEmpty;
      return expr;
    }
    if (text_.substr(pos_, 3) == "ANY") {
      return Unimplemented("ANY content model");
    }
    return ParseGroup();
  }

  // Parses a parenthesized group: ( item (sep item)* ) occ?
  Result<DtdExpr> ParseGroup() {
    RecursionScope scope(governor_);
    XS_RETURN_IF_ERROR(scope.status());
    SkipSpace();
    if (pos_ >= text_.size() || text_[pos_] != '(') {
      return InvalidArgument("expected '(' in content model");
    }
    ++pos_;
    SkipSpace();
    if (text_.substr(pos_, 7) == "#PCDATA") {
      pos_ += 7;
      SkipSpace();
      if (pos_ >= text_.size() || text_[pos_] != ')') {
        return Unimplemented("mixed content models");
      }
      ++pos_;
      ParseOccurrence();
      DtdExpr expr;
      expr.kind = DtdExpr::Kind::kPcdata;
      return expr;
    }
    std::vector<DtdExpr> items;
    char separator = 0;
    while (true) {
      XS_ASSIGN_OR_RETURN(DtdExpr item, ParseItem());
      items.push_back(std::move(item));
      SkipSpace();
      if (pos_ >= text_.size()) return InvalidArgument("unterminated group");
      char c = text_[pos_];
      if (c == ')') {
        ++pos_;
        break;
      }
      if (c != ',' && c != '|') {
        return InvalidArgument("expected ',', '|', or ')' in group");
      }
      if (separator == 0) {
        separator = c;
      } else if (separator != c) {
        return InvalidArgument("mixed ',' and '|' in one group");
      }
      ++pos_;
    }
    DtdExpr group;
    group.kind = separator == '|' ? DtdExpr::Kind::kChoice
                                  : DtdExpr::Kind::kSequence;
    group.children = std::move(items);
    group.occurrence = ParseOccurrence();
    if (group.children.size() == 1 && group.occurrence == 0) {
      return group.children[0];
    }
    return group;
  }

  Result<DtdExpr> ParseItem() {
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == '(') return ParseGroup();
    DtdExpr expr;
    XS_ASSIGN_OR_RETURN(expr.name, ParseName());
    expr.occurrence = ParseOccurrence();
    return expr;
  }

  std::string_view text_;
  ResourceGovernor* governor_;
  size_t pos_ = 0;
};

// Builds schema-tree nodes from the declaration map.
class DtdTreeBuilder {
 public:
  DtdTreeBuilder(const std::map<std::string, DtdExpr>& decls,
                 const std::map<std::string, int>& reference_counts,
                 SchemaTree* tree, ResourceGovernor* governor)
      : decls_(decls),
        reference_counts_(reference_counts),
        tree_(tree),
        governor_(governor) {}

  // The governor's depth guard also rejects recursive DTD elements,
  // matching the paper's restriction to non-recursive schema parts.
  Result<std::unique_ptr<SchemaNode>> BuildElement(const std::string& name) {
    RecursionScope scope(governor_);
    XS_RETURN_IF_ERROR(scope.status());
    auto it = decls_.find(name);
    std::unique_ptr<SchemaNode> tag = tree_->NewTag(name);
    auto ref = reference_counts_.find(name);
    if (ref != reference_counts_.end() && ref->second >= 2) {
      tag->set_type_name(name);  // shared type
    }
    if (it == decls_.end()) {
      // Undeclared elements default to text content.
      tag->AddChild(tree_->NewSimple(XsdBaseType::kString));
      return tag;
    }
    const DtdExpr& expr = it->second;
    if (expr.kind == DtdExpr::Kind::kPcdata ||
        expr.kind == DtdExpr::Kind::kEmpty) {
      tag->AddChild(tree_->NewSimple(XsdBaseType::kString));
      return tag;
    }
    XS_ASSIGN_OR_RETURN(std::unique_ptr<SchemaNode> content,
                        BuildExpr(expr));
    // Tags need exactly one content child; wrap bare particles.
    if (content->kind() != SchemaNodeKind::kSequence &&
        content->kind() != SchemaNodeKind::kChoice &&
        content->kind() != SchemaNodeKind::kSimpleType) {
      std::unique_ptr<SchemaNode> seq =
          tree_->NewNode(SchemaNodeKind::kSequence);
      seq->AddChild(std::move(content));
      content = std::move(seq);
    }
    tag->AddChild(std::move(content));
    return tag;
  }

 private:
  Result<std::unique_ptr<SchemaNode>> BuildExpr(const DtdExpr& expr) {
    RecursionScope scope(governor_);
    XS_RETURN_IF_ERROR(scope.status());
    std::unique_ptr<SchemaNode> node;
    switch (expr.kind) {
      case DtdExpr::Kind::kName: {
        XS_ASSIGN_OR_RETURN(node, BuildElement(expr.name));
        break;
      }
      case DtdExpr::Kind::kSequence:
      case DtdExpr::Kind::kChoice: {
        node = tree_->NewNode(expr.kind == DtdExpr::Kind::kChoice
                                  ? SchemaNodeKind::kChoice
                                  : SchemaNodeKind::kSequence);
        for (const DtdExpr& child : expr.children) {
          XS_ASSIGN_OR_RETURN(std::unique_ptr<SchemaNode> built,
                              BuildExpr(child));
          node->AddChild(std::move(built));
        }
        break;
      }
      case DtdExpr::Kind::kPcdata:
      case DtdExpr::Kind::kEmpty:
        node = tree_->NewSimple(XsdBaseType::kString);
        break;
    }
    if (expr.occurrence == '*' || expr.occurrence == '+') {
      std::unique_ptr<SchemaNode> rep =
          tree_->NewNode(SchemaNodeKind::kRepetition);
      rep->AddChild(std::move(node));
      node = std::move(rep);
    } else if (expr.occurrence == '?') {
      std::unique_ptr<SchemaNode> opt =
          tree_->NewNode(SchemaNodeKind::kOption);
      opt->AddChild(std::move(node));
      node = std::move(opt);
    }
    return node;
  }

  const std::map<std::string, DtdExpr>& decls_;
  const std::map<std::string, int>& reference_counts_;
  SchemaTree* tree_;
  ResourceGovernor* governor_;
};

// Counts how many distinct declared elements reference each name.
void CountReferences(const DtdExpr& expr, std::set<std::string>* out) {
  if (expr.kind == DtdExpr::Kind::kName) out->insert(expr.name);
  for (const DtdExpr& child : expr.children) CountReferences(child, out);
}

}  // namespace

namespace {

// The bare parse; `governor` is never null here.
Result<std::unique_ptr<SchemaTree>> ParseDtdImpl(std::string_view dtd_text,
                                                 std::string_view root_element,
                                                 ResourceGovernor* governor) {
  DtdTextParser parser(dtd_text, governor);
  std::vector<std::string> order;
  XS_ASSIGN_OR_RETURN(auto decls, parser.Parse(&order));

  std::map<std::string, int> reference_counts;
  for (const auto& [name, expr] : decls) {
    std::set<std::string> referenced;
    CountReferences(expr, &referenced);
    for (const std::string& ref : referenced) ++reference_counts[ref];
  }

  std::string root(root_element);
  if (root.empty()) root = order.front();
  if (decls.count(root) == 0) {
    return NotFound("root element '" + root + "' not declared");
  }
  auto tree = std::make_unique<SchemaTree>();
  DtdTreeBuilder builder(decls, reference_counts, tree.get(), governor);
  XS_ASSIGN_OR_RETURN(std::unique_ptr<SchemaNode> root_node,
                      builder.BuildElement(root));
  tree->SetRoot(std::move(root_node));
  return tree;
}

int64_t CountSchemaNodes(const SchemaNode* node) {
  if (node == nullptr) return 0;
  int64_t total = 1;
  for (size_t i = 0; i < node->num_children(); ++i) {
    total += CountSchemaNodes(node->child(i));
  }
  return total;
}

}  // namespace

Result<std::unique_ptr<SchemaTree>> ParseDtd(std::string_view dtd_text,
                                             const ParseOptions& options) {
  if (options.exec != nullptr) {
    const ExecContext& exec = *options.exec;
    SpanScope span(exec.trace, "parse.dtd");
    span.Attr("bytes", static_cast<int64_t>(dtd_text.size()));
    ParseOptions bare;
    bare.governor = exec.governor;
    bare.root_element = options.root_element;
    auto tree = ParseDtd(dtd_text, bare);
    if (tree.ok() && exec.metrics != nullptr) {
      exec.metrics->counter(kMetricParseDtdSchemas)->Increment();
      exec.metrics->counter(kMetricParseDtdNodes)
          ->Add(CountSchemaNodes((*tree)->root()));
    }
    if (tree.ok()) span.Attr("nodes", CountSchemaNodes((*tree)->root()));
    return tree;
  }
  ResourceGovernor stack_safety;  // used when the caller passes none
  ResourceGovernor* governor =
      options.governor != nullptr ? options.governor : &stack_safety;
  return ParseDtdImpl(dtd_text, options.root_element, governor);
}

}  // namespace xmlshred
