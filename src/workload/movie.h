// Synthetic Movie generator — the paper's synthetic data set (Fig. 1b):
// movie(title, year, aka_title*, avg_rating?, (box_office | seasons)),
// extended with two more optional elements (director?, votes?) so that
// candidate merging (§4.7) has several implicit unions to combine. Values
// are uniformly distributed, per Section 5.1.2.

#ifndef XMLSHRED_WORKLOAD_MOVIE_H_
#define XMLSHRED_WORKLOAD_MOVIE_H_

#include <cstdint>
#include <memory>

#include "workload/dblp.h"  // GeneratedData
#include "xml/schema_tree.h"

namespace xmlshred {

struct MovieConfig {
  int64_t num_movies = 20000;
  int min_year = 1930;
  int max_year = 2004;
  double tv_fraction = 0.3;        // seasons branch of the choice
  double rating_presence = 0.6;    // avg_rating?
  double director_presence = 0.8;  // director?
  double votes_presence = 0.5;     // votes?
  uint64_t seed = 7;
};

// Builds the annotated Movie schema tree of Fig. 1b.
std::unique_ptr<SchemaTree> BuildMovieSchemaTree();

// Generates schema plus data. Deterministic in `config.seed`.
GeneratedData GenerateMovie(const MovieConfig& config);

}  // namespace xmlshred

#endif  // XMLSHRED_WORKLOAD_MOVIE_H_
