// Random XPath workload generation (§5.1.3): workloads vary the
// selectivity of the selection condition (low 0.01–0.1, high 0.5–1) and
// the number of projections (low 1–4, high 5–20). Workload names follow
// the paper's convention, e.g. "HP-LS-20".

#ifndef XMLSHRED_WORKLOAD_QUERY_GEN_H_
#define XMLSHRED_WORKLOAD_QUERY_GEN_H_

#include <string>

#include "common/status.h"
#include "mapping/xml_stats.h"
#include "xml/schema_tree.h"
#include "xpath/xpath.h"

namespace xmlshred {

enum class SelectivityClass { kLow, kHigh };
enum class ProjectionClass { kLow, kHigh };

struct WorkloadSpec {
  SelectivityClass selectivity = SelectivityClass::kLow;
  ProjectionClass projections = ProjectionClass::kLow;
  int num_queries = 20;
  uint64_t seed = 1;
};

// "LP-LS-20"-style name.
std::string WorkloadName(const WorkloadSpec& spec);

// Generates a workload against the (original) schema tree, using the
// collected statistics to pick selection literals that hit the target
// selectivity range. Deterministic in `spec.seed`.
Result<XPathWorkload> GenerateWorkload(const SchemaTree& tree,
                                       const XmlStatistics& stats,
                                       const WorkloadSpec& spec);

}  // namespace xmlshred

#endif  // XMLSHRED_WORKLOAD_QUERY_GEN_H_
