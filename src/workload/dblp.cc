#include "workload/dblp.h"

#include "common/rng.h"
#include "common/strings.h"

namespace xmlshred {

namespace {

// Appends <name> with simple content of `type` to `seq`.
SchemaNode* AddLeaf(SchemaTree* tree, SchemaNode* seq, const std::string& name,
                    XsdBaseType type) {
  auto tag = tree->NewTag(name);
  tag->AddChild(tree->NewSimple(type));
  return seq->AddChild(std::move(tag));
}

SchemaNode* AddOptionalLeaf(SchemaTree* tree, SchemaNode* seq,
                            const std::string& name, XsdBaseType type) {
  auto tag = tree->NewTag(name);
  tag->AddChild(tree->NewSimple(type));
  auto opt = tree->NewNode(SchemaNodeKind::kOption);
  opt->AddChild(std::move(tag));
  return seq->AddChild(std::move(opt));
}

// Appends a set-valued annotated leaf element (author*, etc.).
SchemaNode* AddRepeatedLeaf(SchemaTree* tree, SchemaNode* seq,
                            const std::string& name,
                            const std::string& annotation,
                            const std::string& type_name) {
  auto tag = tree->NewTag(name);
  tag->set_annotation(annotation);
  tag->set_type_name(type_name);
  tag->AddChild(tree->NewSimple(XsdBaseType::kString));
  auto rep = tree->NewNode(SchemaNodeKind::kRepetition);
  rep->AddChild(std::move(tag));
  return seq->AddChild(std::move(rep));
}

}  // namespace

std::unique_ptr<SchemaTree> BuildDblpSchemaTree() {
  auto tree = std::make_unique<SchemaTree>();
  auto root = tree->NewTag("dblp");
  root->set_annotation("dblp");
  auto root_seq = tree->NewNode(SchemaNodeKind::kSequence);

  // inproceedings*
  {
    auto rep = tree->NewNode(SchemaNodeKind::kRepetition);
    auto inproc = tree->NewTag("inproceedings");
    inproc->set_annotation("inproc");
    auto seq = tree->NewNode(SchemaNodeKind::kSequence);
    SchemaNode* title = AddLeaf(tree.get(), seq.get(), "title",
                                XsdBaseType::kString);
    title->set_type_name("TitleType");  // shared with book's title
    AddLeaf(tree.get(), seq.get(), "booktitle", XsdBaseType::kString);
    AddLeaf(tree.get(), seq.get(), "year", XsdBaseType::kInt);
    AddRepeatedLeaf(tree.get(), seq.get(), "author", "inproc_author",
                    "AuthorType");
    AddLeaf(tree.get(), seq.get(), "pages", XsdBaseType::kString);
    AddOptionalLeaf(tree.get(), seq.get(), "cdrom", XsdBaseType::kString);
    AddOptionalLeaf(tree.get(), seq.get(), "cite", XsdBaseType::kString);
    AddOptionalLeaf(tree.get(), seq.get(), "editor", XsdBaseType::kString);
    AddOptionalLeaf(tree.get(), seq.get(), "ee", XsdBaseType::kString);
    inproc->AddChild(std::move(seq));
    rep->AddChild(std::move(inproc));
    root_seq->AddChild(std::move(rep));
  }

  // book*
  {
    auto rep = tree->NewNode(SchemaNodeKind::kRepetition);
    auto book = tree->NewTag("book");
    book->set_annotation("book");
    auto seq = tree->NewNode(SchemaNodeKind::kSequence);
    // Fig. 1a outlines book's title under annotation "title1".
    auto title = tree->NewTag("title");
    title->set_annotation("title1");
    title->set_type_name("TitleType");
    title->AddChild(tree->NewSimple(XsdBaseType::kString));
    seq->AddChild(std::move(title));
    AddLeaf(tree.get(), seq.get(), "publisher", XsdBaseType::kString);
    AddLeaf(tree.get(), seq.get(), "year", XsdBaseType::kInt);
    AddRepeatedLeaf(tree.get(), seq.get(), "author", "book_author",
                    "AuthorType");
    AddOptionalLeaf(tree.get(), seq.get(), "isbn", XsdBaseType::kString);
    AddOptionalLeaf(tree.get(), seq.get(), "pages", XsdBaseType::kString);
    book->AddChild(std::move(seq));
    rep->AddChild(std::move(book));
    root_seq->AddChild(std::move(rep));
  }

  root->AddChild(std::move(root_seq));
  tree->SetRoot(std::move(root));
  return tree;
}

namespace {

// Author cardinality per Section 4.6: 99 % of publications have <= 5
// authors; the rest spread up to 20.
int DrawAuthorCount(Rng* rng) {
  if (rng->Bernoulli(0.99)) {
    static const double kWeights[] = {0.15, 0.32, 0.27, 0.17, 0.09};
    std::vector<double> weights(kWeights, kWeights + 5);
    return static_cast<int>(rng->WeightedIndex(weights)) + 1;
  }
  return static_cast<int>(rng->Uniform(6, 20));
}

std::string AuthorName(Rng* rng, const DblpConfig& config) {
  // Zipf-ish author productivity; full-name-sized strings (~24 bytes)
  // like real DBLP author values.
  int64_t bucket = rng->Zipf(100, 1.1);
  int64_t id = (bucket - 1) * (config.num_authors / 100) +
               rng->Uniform(0, config.num_authors / 100 - 1);
  return StrFormat("given_%04ld family_%06ld", id % 9973, id);
}

std::string Conference(Rng* rng, const DblpConfig& config) {
  // A few large venues dominate.
  int64_t id = rng->Zipf(config.num_conferences, 0.8);
  return "conf_" + std::to_string(id - 1);
}

}  // namespace

GeneratedData GenerateDblp(const DblpConfig& config) {
  GeneratedData data;
  data.tree = BuildDblpSchemaTree();
  Rng rng(config.seed);

  auto root = std::make_unique<XmlElement>("dblp");
  for (int64_t i = 0; i < config.num_inproceedings; ++i) {
    XmlElement* pub = root->AddChild("inproceedings");
    pub->AddTextChild("title", "inproc_title_" + std::to_string(i));
    pub->AddTextChild("booktitle", Conference(&rng, config));
    pub->AddTextChild(
        "year",
        std::to_string(rng.Uniform(config.min_year, config.max_year)));
    int authors = DrawAuthorCount(&rng);
    for (int a = 0; a < authors; ++a) {
      pub->AddTextChild("author", AuthorName(&rng, config));
    }
    int64_t first_page = rng.Uniform(1, 600);
    pub->AddTextChild("pages", StrFormat("%ld-%ld", first_page,
                                         first_page + rng.Uniform(8, 24)));
    if (rng.Bernoulli(0.3)) {
      pub->AddTextChild("cdrom", "cdrom_" + std::to_string(i));
    }
    if (rng.Bernoulli(0.4)) {
      pub->AddTextChild(
          "cite", "cite_" + std::to_string(rng.Uniform(
                                0, config.num_inproceedings - 1)));
    }
    if (rng.Bernoulli(0.1)) {
      pub->AddTextChild("editor", AuthorName(&rng, config));
    }
    if (rng.Bernoulli(0.5)) {
      pub->AddTextChild("ee", "http://doi.example/" + std::to_string(i));
    }
  }
  for (int64_t i = 0; i < config.num_books; ++i) {
    XmlElement* book = root->AddChild("book");
    book->AddTextChild("title", "book_title_" + std::to_string(i));
    book->AddTextChild("publisher",
                       "publisher_" + std::to_string(rng.Uniform(0, 99)));
    book->AddTextChild(
        "year",
        std::to_string(rng.Uniform(config.min_year, config.max_year)));
    int authors = DrawAuthorCount(&rng);
    for (int a = 0; a < authors; ++a) {
      book->AddTextChild("author", AuthorName(&rng, config));
    }
    if (rng.Bernoulli(0.8)) {
      book->AddTextChild("isbn", StrFormat("isbn-%05ld", i));
    }
    if (rng.Bernoulli(0.6)) {
      book->AddTextChild("pages", std::to_string(rng.Uniform(80, 900)));
    }
  }
  data.doc.set_root(std::move(root));
  return data;
}

}  // namespace xmlshred
