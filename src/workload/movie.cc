#include "workload/movie.h"

#include "common/rng.h"
#include "common/strings.h"

namespace xmlshred {

std::unique_ptr<SchemaTree> BuildMovieSchemaTree() {
  auto tree = std::make_unique<SchemaTree>();
  auto root = tree->NewTag("movies");
  root->set_annotation("movies");
  auto root_seq = tree->NewNode(SchemaNodeKind::kSequence);
  auto rep = tree->NewNode(SchemaNodeKind::kRepetition);
  auto movie = tree->NewTag("movie");
  movie->set_annotation("movie");
  auto seq = tree->NewNode(SchemaNodeKind::kSequence);

  auto title = tree->NewTag("title");
  title->AddChild(tree->NewSimple(XsdBaseType::kString));
  seq->AddChild(std::move(title));

  auto year = tree->NewTag("year");
  year->AddChild(tree->NewSimple(XsdBaseType::kInt));
  seq->AddChild(std::move(year));

  auto aka = tree->NewTag("aka_title");
  aka->set_annotation("aka_title");
  aka->AddChild(tree->NewSimple(XsdBaseType::kString));
  auto aka_rep = tree->NewNode(SchemaNodeKind::kRepetition);
  aka_rep->AddChild(std::move(aka));
  seq->AddChild(std::move(aka_rep));

  auto rating = tree->NewTag("avg_rating");
  rating->AddChild(tree->NewSimple(XsdBaseType::kDouble));
  auto rating_opt = tree->NewNode(SchemaNodeKind::kOption);
  rating_opt->AddChild(std::move(rating));
  seq->AddChild(std::move(rating_opt));

  auto director = tree->NewTag("director");
  director->AddChild(tree->NewSimple(XsdBaseType::kString));
  auto director_opt = tree->NewNode(SchemaNodeKind::kOption);
  director_opt->AddChild(std::move(director));
  seq->AddChild(std::move(director_opt));

  auto votes = tree->NewTag("votes");
  votes->AddChild(tree->NewSimple(XsdBaseType::kInt));
  auto votes_opt = tree->NewNode(SchemaNodeKind::kOption);
  votes_opt->AddChild(std::move(votes));
  seq->AddChild(std::move(votes_opt));

  auto choice = tree->NewNode(SchemaNodeKind::kChoice);
  auto box = tree->NewTag("box_office");
  box->AddChild(tree->NewSimple(XsdBaseType::kInt));
  choice->AddChild(std::move(box));
  auto seasons = tree->NewTag("seasons");
  seasons->AddChild(tree->NewSimple(XsdBaseType::kInt));
  choice->AddChild(std::move(seasons));
  seq->AddChild(std::move(choice));

  movie->AddChild(std::move(seq));
  rep->AddChild(std::move(movie));
  root_seq->AddChild(std::move(rep));
  root->AddChild(std::move(root_seq));
  tree->SetRoot(std::move(root));
  return tree;
}

GeneratedData GenerateMovie(const MovieConfig& config) {
  GeneratedData data;
  data.tree = BuildMovieSchemaTree();
  Rng rng(config.seed);

  auto root = std::make_unique<XmlElement>("movies");
  for (int64_t i = 0; i < config.num_movies; ++i) {
    XmlElement* movie = root->AddChild("movie");
    movie->AddTextChild("title", "movie_title_" + std::to_string(i));
    movie->AddTextChild(
        "year",
        std::to_string(rng.Uniform(config.min_year, config.max_year)));
    // aka_title cardinality skewed low: ~96 % have <= 5, max 10
    // (satisfies the candidate-selection rule of §4.5 with cmax = 5,
    // x = 80 % and the §4.6 count rule).
    int akas;
    double draw = rng.UniformDouble();
    if (draw < 0.86) {
      akas = static_cast<int>(rng.Uniform(0, 2));
    } else if (draw < 0.96) {
      akas = static_cast<int>(rng.Uniform(3, 5));
    } else {
      akas = static_cast<int>(rng.Uniform(6, 10));
    }
    for (int a = 0; a < akas; ++a) {
      movie->AddTextChild("aka_title",
                          StrFormat("aka_%ld_%d", i, a));
    }
    if (rng.Bernoulli(config.rating_presence)) {
      movie->AddTextChild(
          "avg_rating", FormatDoubleTrimmed(rng.UniformDouble() * 10.0, 2));
    }
    if (rng.Bernoulli(config.director_presence)) {
      movie->AddTextChild("director",
                          "director_" + std::to_string(rng.Uniform(0, 999)));
    }
    if (rng.Bernoulli(config.votes_presence)) {
      movie->AddTextChild("votes", std::to_string(rng.Uniform(10, 1000000)));
    }
    if (rng.Bernoulli(config.tv_fraction)) {
      movie->AddTextChild("seasons", std::to_string(rng.Uniform(1, 30)));
    } else {
      movie->AddTextChild("box_office",
                          std::to_string(rng.Uniform(100000, 500000000)));
    }
  }
  data.doc.set_root(std::move(root));
  return data;
}

}  // namespace xmlshred
