// Synthetic DBLP generator — the paper's real data set, reproduced
// distributionally (Fig. 1a schema; Section 4.6 / Table 1 facts):
//
//  * inproceedings(title, booktitle, year, author*, pages, cdrom?, cite?,
//    editor?, ee?) and book(title, publisher, year, author*, isbn?,
//    pages?);
//  * the two title elements are a shared type, with book's title outlined
//    under annotation "title1" exactly as in Fig. 1a;
//  * the two author element types share "AuthorType" (type split/merge
//    candidates);
//  * author cardinality is skewed low: 99 % of publications have at most
//    5 authors, max 20 (the Section 4.6 sweet spot);
//  * booktitle values are skewed (a few big conferences), years roughly
//    uniform, optional elements present independently.

#ifndef XMLSHRED_WORKLOAD_DBLP_H_
#define XMLSHRED_WORKLOAD_DBLP_H_

#include <cstdint>
#include <memory>

#include "xml/document.h"
#include "xml/schema_tree.h"

namespace xmlshred {

struct DblpConfig {
  int64_t num_inproceedings = 20000;
  int64_t num_books = 2000;
  int num_conferences = 200;
  int num_authors = 4000;  // author name pool
  int min_year = 1970;
  int max_year = 2003;
  uint64_t seed = 42;
};

struct GeneratedData {
  std::unique_ptr<SchemaTree> tree;
  XmlDocument doc;
};

// Builds the annotated DBLP schema tree of Fig. 1a (without data).
std::unique_ptr<SchemaTree> BuildDblpSchemaTree();

// Generates schema plus data. Deterministic in `config.seed`.
GeneratedData GenerateDblp(const DblpConfig& config);

}  // namespace xmlshred

#endif  // XMLSHRED_WORKLOAD_DBLP_H_
