#include "workload/query_gen.h"

#include <algorithm>
#include <set>
#include <vector>

#include "common/rng.h"

namespace xmlshred {

std::string WorkloadName(const WorkloadSpec& spec) {
  std::string name =
      spec.projections == ProjectionClass::kHigh ? "HP" : "LP";
  name += spec.selectivity == SelectivityClass::kHigh ? "-HS" : "-LS";
  name += "-" + std::to_string(spec.num_queries);
  return name;
}

namespace {

bool IsLeafTag(const SchemaNode* node) {
  return node->kind() == SchemaNodeKind::kTag && node->num_children() == 1 &&
         node->child(0)->kind() == SchemaNodeKind::kSimpleType;
}

// A queryable context: an annotated, repeated, non-leaf element.
struct ContextInfo {
  SchemaNode* node = nullptr;
  int64_t instances = 0;
  // Leaf element names in the context subtree — projection pool.
  std::vector<std::string> projection_pool;
  // Inline single-valued leaves usable as selection paths, with their
  // value statistics and presence flag.
  struct SelectionLeaf {
    const SchemaNode* leaf = nullptr;
    bool optional = false;
  };
  std::vector<SelectionLeaf> selection_pool;
};

void CollectContextLeaves(SchemaNode* node, bool under_repetition,
                          bool optional, ContextInfo* info) {
  switch (node->kind()) {
    case SchemaNodeKind::kTag:
      if (IsLeafTag(node)) {
        info->projection_pool.push_back(node->name());
        if (!under_repetition) {
          info->selection_pool.push_back({node, optional});
        }
        return;
      }
      if (node->is_annotated()) return;  // nested complex relation
      for (const auto& child : node->children()) {
        CollectContextLeaves(child.get(), under_repetition, optional, info);
      }
      return;
    case SchemaNodeKind::kRepetition:
      for (const auto& child : node->children()) {
        CollectContextLeaves(child.get(), true, optional, info);
      }
      return;
    case SchemaNodeKind::kOption:
    case SchemaNodeKind::kChoice:
      for (const auto& child : node->children()) {
        CollectContextLeaves(child.get(), under_repetition, true, info);
      }
      return;
    default:
      for (const auto& child : node->children()) {
        CollectContextLeaves(child.get(), under_repetition, optional, info);
      }
      return;
  }
}

// Picks a range literal v such that roughly a fraction `target` of rows
// satisfy col >= v, from the value histogram.
bool PickRangeLiteral(const ColumnStats& stats, double target, Value* out) {
  if (stats.histogram.empty() || stats.non_null_count == 0) return false;
  double want = target * static_cast<double>(stats.non_null_count);
  double above = 0;
  for (auto it = stats.histogram.rbegin(); it != stats.histogram.rend();
       ++it) {
    above += static_cast<double>(it->count);
    if (above >= want) {
      *out = it->upper;
      return true;
    }
  }
  *out = stats.min;
  return !out->is_null();
}

// Picks an equality literal whose frequency is within a factor of two of
// `target`.
bool PickEqualityLiteral(const ColumnStats& stats, double target,
                         Rng* rng, Value* out) {
  int64_t total = stats.row_count();
  if (total == 0) return false;
  std::vector<const Value*> feasible;
  for (const auto& [value, count] : stats.mcvs) {
    double sel = static_cast<double>(count) / static_cast<double>(total);
    if (sel >= target * 0.5 && sel <= target * 2.0) {
      feasible.push_back(&value);
    }
  }
  if (feasible.empty()) return false;
  *out = *feasible[static_cast<size_t>(
      rng->Uniform(0, static_cast<int64_t>(feasible.size()) - 1))];
  return true;
}

}  // namespace

Result<XPathWorkload> GenerateWorkload(const SchemaTree& tree,
                                       const XmlStatistics& stats,
                                       const WorkloadSpec& spec) {
  // Gather contexts.
  std::vector<ContextInfo> contexts;
  const_cast<SchemaTree&>(tree).Visit([&](SchemaNode* node) {
    if (node->kind() != SchemaNodeKind::kTag || !node->is_annotated() ||
        IsLeafTag(node) || node->parent() == nullptr ||
        node->parent()->kind() != SchemaNodeKind::kRepetition) {
      return;
    }
    ContextInfo info;
    info.node = node;
    info.instances = stats.ElementCount(node->origin_id());
    CollectContextLeaves(node->child(0), false, false, &info);
    // Unique projection names.
    std::sort(info.projection_pool.begin(), info.projection_pool.end());
    info.projection_pool.erase(
        std::unique(info.projection_pool.begin(), info.projection_pool.end()),
        info.projection_pool.end());
    if (!info.projection_pool.empty() && info.instances > 0) {
      contexts.push_back(std::move(info));
    }
  });
  if (contexts.empty()) {
    return FailedPrecondition("schema has no queryable contexts");
  }

  Rng rng(spec.seed);
  std::vector<double> context_weights;
  for (const ContextInfo& info : contexts) {
    context_weights.push_back(static_cast<double>(info.instances));
  }

  XPathWorkload workload;
  int attempts = 0;
  while (static_cast<int>(workload.size()) < spec.num_queries &&
         attempts < spec.num_queries * 50) {
    ++attempts;
    const ContextInfo& ctx = contexts[rng.WeightedIndex(context_weights)];
    XPathQuery query;
    query.context = ctx.node->name();

    // Selection.
    double target =
        spec.selectivity == SelectivityClass::kLow
            ? 0.01 + rng.UniformDouble() * 0.09
            : 0.5 + rng.UniformDouble() * 0.5;
    bool no_selection = spec.selectivity == SelectivityClass::kHigh &&
                        rng.Bernoulli(0.3);
    if (!no_selection) {
      if (ctx.selection_pool.empty()) continue;
      // Try a few leaves for a literal that hits the target.
      bool found = false;
      for (int tries = 0; tries < 12 && !found; ++tries) {
        const auto& leaf = ctx.selection_pool[static_cast<size_t>(rng.Uniform(
            0, static_cast<int64_t>(ctx.selection_pool.size()) - 1))];
        // High-selectivity targets are unreachable through sparse
        // optional columns.
        if (leaf.optional && target > 0.45) continue;
        const ColumnStats* vstats =
            stats.ValueStats(leaf.leaf->origin_id());
        if (vstats == nullptr) continue;
        double presence =
            ctx.instances > 0
                ? static_cast<double>(vstats->non_null_count +
                                      vstats->null_count) /
                      static_cast<double>(ctx.instances)
                : 0;
        if (presence <= 0) continue;
        // Range literals index into the non-null histogram, so the target
        // is rescaled by presence; equality frequencies are already
        // fractions of all rows.
        double value_target = std::min(1.0, target / presence);
        bool numeric = !vstats->histogram.empty();
        Value literal;
        if (numeric && PickRangeLiteral(*vstats, value_target, &literal)) {
          query.has_selection = true;
          query.selection_path = leaf.leaf->name();
          query.selection_op = ">=";
          query.selection_literal = literal;
          found = true;
        } else if (PickEqualityLiteral(*vstats, target, &rng, &literal)) {
          query.has_selection = true;
          query.selection_path = leaf.leaf->name();
          query.selection_op = "=";
          query.selection_literal = literal;
          found = true;
        }
      }
      if (!found) continue;
    }

    // Projections.
    int available = static_cast<int>(ctx.projection_pool.size());
    int want = spec.projections == ProjectionClass::kLow
                   ? static_cast<int>(rng.Uniform(1, 4))
                   : static_cast<int>(rng.Uniform(5, 20));
    want = std::min(want, available);
    std::vector<std::string> pool = ctx.projection_pool;
    for (int i = 0; i < want; ++i) {
      size_t pick = static_cast<size_t>(
          rng.Uniform(i, static_cast<int64_t>(pool.size()) - 1));
      std::swap(pool[static_cast<size_t>(i)], pool[pick]);
    }
    pool.resize(static_cast<size_t>(want));
    query.projections = std::move(pool);
    query.weight = 1.0;
    workload.push_back(std::move(query));
  }
  if (static_cast<int>(workload.size()) < spec.num_queries) {
    return Internal("could not generate enough workload queries");
  }
  return workload;
}

}  // namespace xmlshred
