#include "xpath/translator.h"

#include <algorithm>
#include <set>

#include "common/logging.h"
#include "common/strings.h"

namespace xmlshred {

namespace {

// All leaf tags named `name` in the subtree of `node` (including node
// itself), descending into annotated tags too.
void FindLeavesNamed(SchemaNode* node, const std::string& name,
                     std::vector<SchemaNode*>* out) {
  if (node->kind() == SchemaNodeKind::kTag && node->name() == name &&
      node->num_children() == 1 &&
      node->child(0)->kind() == SchemaNodeKind::kSimpleType) {
    out->push_back(node);
  }
  for (const auto& child : node->children()) {
    FindLeavesNamed(child.get(), name, out);
  }
}

// One storage location of a projection element relative to a context
// anchor.
struct Location {
  bool inline_in_context = false;
  std::string relation;  // child relation when not inline
  std::string column;
  int rep_index = 0;  // occurrence order for repetition-split columns
};

// Coerces a predicate literal to the stored column's type: numeric
// literals against VARCHAR columns become strings (all-PCDATA DTD
// schemas), and numeric strings against numeric columns become numbers —
// XPath's untyped comparisons meet SQL's typed ones here.
Value CoerceLiteral(const Value& literal, ColumnType column_type) {
  if (column_type == ColumnType::kString && !literal.is_string() &&
      !literal.is_null()) {
    if (literal.is_int()) return Value::Str(std::to_string(literal.AsInt()));
    return Value::Str(FormatDoubleTrimmed(literal.AsDouble(), 6));
  }
  if (column_type != ColumnType::kString && literal.is_string()) {
    const std::string& s = literal.AsString();
    if (column_type == ColumnType::kInt64) {
      return Value::Int(std::atoll(s.c_str()));
    }
    return Value::Real(std::atof(s.c_str()));
  }
  return literal;
}

}  // namespace

Result<TranslatedQuery> TranslateXPath(const XPathQuery& query,
                                       const SchemaTree& tree,
                                       const Mapping& mapping) {
  // Context anchors: annotated tags with the context name.
  std::vector<SchemaNode*> anchors =
      const_cast<SchemaTree&>(tree).FindTagsByName(query.context);
  anchors.erase(std::remove_if(anchors.begin(), anchors.end(),
                               [](SchemaNode* n) { return !n->is_annotated(); }),
                anchors.end());
  if (anchors.empty()) {
    return NotFound("no annotated context element '" + query.context + "'");
  }

  // Per anchor: selection column (inline) and per-projection locations.
  struct ResolvedSelection {
    bool inline_in_context = true;
    std::string column;
    // When the selection element is outlined into a single-valued direct
    // child relation, every block joins it to apply the predicate.
    std::string relation;
    std::string op;
    Value literal;
  };
  struct AnchorPlan {
    SchemaNode* anchor = nullptr;
    const MappedRelation* relation = nullptr;
    bool selection_ok = true;
    std::vector<ResolvedSelection> selections;
    // locations[i] = storage locations of projection i under this anchor.
    std::vector<std::vector<Location>> locations;
  };
  std::vector<AnchorPlan> plans;
  bool any_selection_ok = false;

  for (SchemaNode* anchor : anchors) {
    AnchorPlan plan;
    plan.anchor = anchor;
    int rel_idx = mapping.RelationIndexOfAnchor(anchor->id());
    if (rel_idx < 0) return Internal("anchor without relation");
    plan.relation = &mapping.relations()[static_cast<size_t>(rel_idx)];

    // Resolve every selection predicate (primary + conjunctive extras).
    std::vector<XPathSelection> all_selections;
    if (query.has_selection) {
      all_selections.push_back(
          {query.selection_path, query.selection_op, query.selection_literal});
      for (const XPathSelection& extra : query.extra_selections) {
        all_selections.push_back(extra);
      }
    }
    for (const XPathSelection& selection : all_selections) {
      std::vector<SchemaNode*> sel_leaves;
      FindLeavesNamed(anchor, selection.path, &sel_leaves);
      ResolvedSelection resolved;
      resolved.op = selection.op;
      resolved.literal = selection.literal;
      bool found = false;
      for (SchemaNode* leaf : sel_leaves) {
        int lrel, lcol;
        if (!mapping.ColumnOfNode(leaf->id(), &lrel, &lcol)) continue;
        if (lrel == rel_idx && leaf->rep_split_index() == 0) {
          resolved.inline_in_context = true;
          resolved.column =
              plan.relation->columns[static_cast<size_t>(lcol)].name;
          resolved.literal = CoerceLiteral(
              resolved.literal,
              plan.relation->columns[static_cast<size_t>(lcol)].type);
          found = true;
          break;
        }
      }
      if (!found) {
        // Outlined single-valued selection element: reachable through a
        // direct child relation joined on PID (at most one row per
        // context instance, so no duplicate context rows arise).
        for (SchemaNode* leaf : sel_leaves) {
          int lrel, lcol;
          if (!mapping.ColumnOfNode(leaf->id(), &lrel, &lcol)) continue;
          if (leaf->parent() != nullptr &&
              leaf->parent()->kind() == SchemaNodeKind::kRepetition) {
            continue;  // set-valued selection paths stay unsupported
          }
          const MappedRelation& owner =
              mapping.relations()[static_cast<size_t>(lrel)];
          bool direct_child = false;
          for (const std::string& parent : owner.parent_tables) {
            if (parent == plan.relation->table_name) direct_child = true;
          }
          if (!direct_child) continue;
          resolved.inline_in_context = false;
          resolved.relation = owner.table_name;
          resolved.column = owner.columns[static_cast<size_t>(lcol)].name;
          resolved.literal = CoerceLiteral(
              resolved.literal, owner.columns[static_cast<size_t>(lcol)].type);
          found = true;
          break;
        }
      }
      if (!found) {
        // An element missing from this anchor entirely means the variant
        // holds no qualifying instances and is skipped.
        if (!sel_leaves.empty()) {
          return Unimplemented("selection path '" + selection.path +
                               "' is not reachable from relation " +
                               plan.relation->table_name);
        }
        plan.selection_ok = false;
        break;
      }
      plan.selections.push_back(std::move(resolved));
    }
    if (plan.selection_ok) any_selection_ok = true;

    for (const std::string& projection : query.projections) {
      std::vector<Location> locations;
      std::vector<SchemaNode*> leaves;
      FindLeavesNamed(anchor, projection, &leaves);
      for (SchemaNode* leaf : leaves) {
        int lrel, lcol;
        if (!mapping.ColumnOfNode(leaf->id(), &lrel, &lcol)) continue;
        const MappedRelation& owner =
            mapping.relations()[static_cast<size_t>(lrel)];
        Location loc;
        loc.column = owner.columns[static_cast<size_t>(lcol)].name;
        loc.rep_index = leaf->rep_split_index();
        if (lrel == rel_idx) {
          loc.inline_in_context = true;
        } else {
          // Only direct child relations are supported; the owning
          // relation must reference the context relation via PID.
          bool direct_child = false;
          for (const std::string& parent : owner.parent_tables) {
            if (parent == plan.relation->table_name) direct_child = true;
          }
          if (!direct_child) continue;
          loc.relation = owner.table_name;
        }
        locations.push_back(std::move(loc));
      }
      // Deterministic order: inline occurrence columns by rep index, then
      // child relations by name.
      std::sort(locations.begin(), locations.end(),
                [](const Location& a, const Location& b) {
                  if (a.inline_in_context != b.inline_in_context) {
                    return a.inline_in_context;
                  }
                  if (a.rep_index != b.rep_index) {
                    return a.rep_index < b.rep_index;
                  }
                  if (a.relation != b.relation) return a.relation < b.relation;
                  return a.column < b.column;
                });
      plan.locations.push_back(std::move(locations));
    }
    plans.push_back(std::move(plan));
  }
  if (query.has_selection && !any_selection_ok) {
    return NotFound("selection path '" + query.selection_path +
                    "' not found under context '" + query.context + "'");
  }

  // Global output slots: per projection, the maximum number of inline
  // locations any anchor has (at least 1); child-relation locations reuse
  // the projection's first slot.
  std::vector<int> slots_per_projection(query.projections.size(), 1);
  for (const AnchorPlan& plan : plans) {
    for (size_t p = 0; p < query.projections.size(); ++p) {
      int inline_count = 0;
      for (const Location& loc : plan.locations[p]) {
        if (loc.inline_in_context) ++inline_count;
      }
      slots_per_projection[p] =
          std::max(slots_per_projection[p], inline_count);
    }
  }
  TranslatedQuery out;
  out.output_elements.push_back("");  // context ID column
  std::vector<int> slot_base(query.projections.size());
  int total_slots = 1;
  for (size_t p = 0; p < query.projections.size(); ++p) {
    slot_base[p] = total_slots;
    total_slots += slots_per_projection[p];
    for (int i = 0; i < slots_per_projection[p]; ++i) {
      out.output_elements.push_back(query.projections[p]);
    }
  }

  // Emit blocks.
  for (const AnchorPlan& plan : plans) {
    if (!plan.selection_ok) continue;
    const std::string& context_table = plan.relation->table_name;

    auto make_block = [&](bool with_child, const std::string& child_table) {
      SelectBlock block;
      block.tables.push_back({context_table, "t0"});
      if (with_child) block.tables.push_back({child_table, "t1"});
      if (with_child) {
        JoinPred join;
        join.left_alias = "t1";
        join.left_column = "PID";
        join.right_alias = "t0";
        join.right_column = "ID";
        block.joins.push_back(std::move(join));
      }
      int selection_joins = 0;
      for (const ResolvedSelection& selection : plan.selections) {
        FilterPred filter;
        filter.op = selection.op;
        filter.literal = selection.literal;
        filter.column = selection.column;
        if (selection.inline_in_context) {
          filter.table = "t0";
        } else {
          // Join the outlined selection relation.
          std::string alias = "ts" + std::to_string(selection_joins++);
          block.tables.push_back({selection.relation, alias});
          JoinPred join;
          join.left_alias = alias;
          join.left_column = "PID";
          join.right_alias = "t0";
          join.right_column = "ID";
          block.joins.push_back(std::move(join));
          filter.table = alias;
        }
        block.filters.push_back(std::move(filter));
      }
      return block;
    };

    // Inline block: the context row with every inline projection column.
    {
      SelectBlock block = make_block(false, "");
      std::vector<SelectItem> items(static_cast<size_t>(total_slots),
                                    SelectItem::NullLiteral());
      items[0] = SelectItem::Column("t0", "ID");
      for (size_t p = 0; p < query.projections.size(); ++p) {
        int next_slot = slot_base[p];
        for (const Location& loc : plan.locations[p]) {
          if (!loc.inline_in_context) continue;
          items[static_cast<size_t>(next_slot++)] =
              SelectItem::Column("t0", loc.column);
        }
      }
      block.items = std::move(items);
      out.sql.blocks.push_back(std::move(block));
    }

    // One block per (projection, child relation) location.
    for (size_t p = 0; p < query.projections.size(); ++p) {
      for (const Location& loc : plan.locations[p]) {
        if (loc.inline_in_context) continue;
        SelectBlock block = make_block(true, loc.relation);
        std::vector<SelectItem> items(static_cast<size_t>(total_slots),
                                      SelectItem::NullLiteral());
        items[0] = SelectItem::Column("t0", "ID");
        items[static_cast<size_t>(slot_base[p])] =
            SelectItem::Column("t1", loc.column);
        block.items = std::move(items);
        out.sql.blocks.push_back(std::move(block));
      }
    }
  }
  if (out.sql.blocks.empty()) {
    return NotFound("query matches no context partition");
  }
  out.sql.order_by = {0};
  return out;
}

std::vector<std::string> CanonicalizeResult(const TranslatedQuery& query,
                                            const std::vector<Row>& rows) {
  std::vector<std::string> out;
  for (const Row& row : rows) {
    XS_CHECK_EQ(row.size(), query.output_elements.size());
    const Value& id = row[0];
    for (size_t c = 1; c < row.size(); ++c) {
      if (row[c].is_null()) continue;
      out.push_back(id.ToString() + "|" + query.output_elements[c] + "|" +
                    row[c].ToString());
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace xmlshred
