#include "xpath/xpath.h"

#include <cctype>
#include <cstdlib>
#include <memory>

#include "common/strings.h"

namespace xmlshred {

std::vector<std::string> XPathQuery::SelectionPaths() const {
  std::vector<std::string> out;
  if (has_selection) out.push_back(selection_path);
  for (const XPathSelection& s : extra_selections) out.push_back(s.path);
  return out;
}

std::string XPathQuery::ToString() const {
  std::string out = "//" + context;
  if (has_selection) {
    out += "[" + selection_path + " " + selection_op + " " +
           selection_literal.ToString();
    for (const XPathSelection& s : extra_selections) {
      out += " and " + s.path + " " + s.op + " " + s.literal.ToString();
    }
    out += "]";
  }
  if (!projections.empty()) {
    out += "/(";
    for (size_t i = 0; i < projections.size(); ++i) {
      if (i > 0) out += " | ";
      out += projections[i];
    }
    out += ")";
  }
  return out;
}

namespace {

class XPathParser {
 public:
  XPathParser(std::string_view text, ResourceGovernor* governor)
      : text_(text), governor_(governor) {}

  Result<XPathQuery> Parse() {
    struct Step {
      std::string name;
      bool has_selection = false;
      std::string selection_path;
      std::string selection_op;
      Value selection_literal;
      std::vector<XPathSelection> extra_selections;
    };
    std::vector<Step> steps;
    std::vector<std::string> projections;
    // The parser is iterative; step count is the unbounded dimension, so
    // meter it against the governor's depth limit. Scopes stay open until
    // the parse finishes so the count is cumulative.
    std::vector<std::unique_ptr<RecursionScope>> step_scopes;
    while (pos_ < text_.size()) {
      SkipSpace();
      if (!Consume('/')) break;
      step_scopes.push_back(std::make_unique<RecursionScope>(governor_));
      XS_RETURN_IF_ERROR(step_scopes.back()->status());
      Consume('/');  // '//' collapses to the same handling
      SkipSpace();
      if (Peek() == '(') {
        XS_RETURN_IF_ERROR(ParseProjections(&projections));
        break;
      }
      Step step;
      XS_ASSIGN_OR_RETURN(step.name, ParseName());
      SkipSpace();
      if (Peek() == '[') {
        XS_RETURN_IF_ERROR(ParsePredicate(&step.selection_path,
                                          &step.selection_op,
                                          &step.selection_literal,
                                          &step.extra_selections));
        step.has_selection = true;
      }
      steps.push_back(std::move(step));
    }
    SkipSpace();
    if (pos_ < text_.size()) {
      return InvalidArgument("trailing characters in XPath");
    }
    if (steps.empty()) return InvalidArgument("XPath has no steps");
    // With an explicit projection list the last step is the context;
    // otherwise the last step is the single projection and the one before
    // it the context.
    const Step* context = nullptr;
    if (!projections.empty()) {
      context = &steps.back();
    } else {
      if (steps.size() < 2) {
        return InvalidArgument("XPath needs a projection");
      }
      if (steps.back().has_selection) {
        return InvalidArgument("projection step cannot carry a predicate");
      }
      projections.push_back(steps.back().name);
      context = &steps[steps.size() - 2];
    }
    XPathQuery query;
    query.context = context->name;
    query.has_selection = context->has_selection;
    query.selection_path = context->selection_path;
    query.selection_op = context->selection_op;
    query.selection_literal = context->selection_literal;
    query.extra_selections = context->extra_selections;
    query.projections = std::move(projections);
    return query;
  }

 private:
  char Peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  bool Consume(char c) {
    if (Peek() != c) return false;
    ++pos_;
    return true;
  }
  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  Result<std::string> ParseName() {
    size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '_')) {
      ++pos_;
    }
    if (pos_ == start) return InvalidArgument("expected element name");
    return std::string(text_.substr(start, pos_ - start));
  }

  Result<Value> ParseLiteral() {
    SkipSpace();
    if (Peek() == '"' || Peek() == '\'') {
      char quote = text_[pos_++];
      size_t end = text_.find(quote, pos_);
      if (end == std::string_view::npos) {
        return InvalidArgument("unterminated literal");
      }
      std::string raw(text_.substr(pos_, end - pos_));
      pos_ = end + 1;
      // Numeric strings in quotes compare as numbers when all digits —
      // XPath untyped comparison; keep them as strings otherwise.
      bool numeric = !raw.empty();
      bool has_dot = false;
      for (size_t i = 0; i < raw.size(); ++i) {
        char c = raw[i];
        if (c == '.') {
          has_dot = true;
        } else if (!std::isdigit(static_cast<unsigned char>(c)) &&
                   !(i == 0 && c == '-')) {
          numeric = false;
          break;
        }
      }
      if (numeric) {
        return has_dot ? Value::Real(std::atof(raw.c_str()))
                       : Value::Int(std::atoll(raw.c_str()));
      }
      return Value::Str(std::move(raw));
    }
    // Bare number.
    size_t start = pos_;
    if (Peek() == '-') ++pos_;
    bool has_dot = false;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.')) {
      if (text_[pos_] == '.') has_dot = true;
      ++pos_;
    }
    if (pos_ == start) return InvalidArgument("expected literal");
    std::string raw(text_.substr(start, pos_ - start));
    return has_dot ? Value::Real(std::atof(raw.c_str()))
                   : Value::Int(std::atoll(raw.c_str()));
  }

  Status ParseComparison(std::string* path, std::string* op, Value* literal) {
    SkipSpace();
    XS_ASSIGN_OR_RETURN(*path, ParseName());
    SkipSpace();
    if (Consume('<')) {
      *op = Consume('=') ? "<=" : "<";
    } else if (Consume('>')) {
      *op = Consume('=') ? ">=" : ">";
    } else if (Consume('=')) {
      *op = "=";
    } else {
      return InvalidArgument("expected comparison in predicate");
    }
    XS_ASSIGN_OR_RETURN(*literal, ParseLiteral());
    return Status::OK();
  }

  // Parses "[cmp (and cmp)*]".
  Status ParsePredicate(std::string* path, std::string* op, Value* literal,
                        std::vector<XPathSelection>* extras) {
    if (!Consume('[')) return InvalidArgument("expected '['");
    XS_RETURN_IF_ERROR(ParseComparison(path, op, literal));
    while (true) {
      SkipSpace();
      if (text_.substr(pos_, 3) == "and" &&
          (pos_ + 3 >= text_.size() ||
           !std::isalnum(static_cast<unsigned char>(text_[pos_ + 3])))) {
        pos_ += 3;
        XPathSelection extra;
        XS_RETURN_IF_ERROR(
            ParseComparison(&extra.path, &extra.op, &extra.literal));
        extras->push_back(std::move(extra));
        continue;
      }
      break;
    }
    SkipSpace();
    if (!Consume(']')) return InvalidArgument("expected ']'");
    return Status::OK();
  }

  Status ParseProjections(std::vector<std::string>* projections) {
    if (!Consume('(')) return InvalidArgument("expected '('");
    while (true) {
      SkipSpace();
      XS_ASSIGN_OR_RETURN(std::string name, ParseName());
      projections->push_back(std::move(name));
      SkipSpace();
      if (Consume('|')) continue;
      if (Consume(')')) break;
      return InvalidArgument("expected '|' or ')'");
    }
    return Status::OK();
  }

  std::string_view text_;
  ResourceGovernor* governor_;
  size_t pos_ = 0;
};

}  // namespace

Result<XPathQuery> ParseXPath(std::string_view xpath,
                              ResourceGovernor* governor) {
  ResourceGovernor stack_safety;  // used when the caller passes none
  XPathParser parser(xpath, governor != nullptr ? governor : &stack_safety);
  return parser.Parse();
}

}  // namespace xmlshred
