// XPath subset of Section 2.1: descendant/child axes, one selection
// predicate, and a union of projection elements —
//
//   //movie[title = "Titanic"]/(aka_title | avg_rating)
//   /dblp/inproceedings[year = 2000]/(title | author | pages)
//
// The step before the projection list is the *context*; the predicate's
// left side is the *selection path*; the parenthesized names are the
// *projection elements* (paper terminology).

#ifndef XMLSHRED_XPATH_XPATH_H_
#define XMLSHRED_XPATH_XPATH_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/limits.h"
#include "common/status.h"
#include "rel/value.h"

namespace xmlshred {

// One comparison predicate inside a step qualifier.
struct XPathSelection {
  std::string path;
  std::string op;  // =, <, <=, >, >=
  Value literal;
};

struct XPathQuery {
  std::string context;  // element name of the context step
  bool has_selection = false;
  std::string selection_path;
  std::string selection_op;  // =, <, <=, >, >=
  Value selection_literal;
  // Conjunctive predicates beyond the first:
  // //movie[year >= 1990 and avg_rating >= 8]/(title). An extension past
  // the paper's single-predicate queries ("more general XML queries" is
  // its stated future work).
  std::vector<XPathSelection> extra_selections;
  std::vector<std::string> projections;
  double weight = 1.0;  // workload weight f_i (Definition 1)

  // Every selection path (primary + extras).
  std::vector<std::string> SelectionPaths() const;

  std::string ToString() const;
};

// Parses the XPath subset. Accepts absolute prefixes (/a/b/ctx...): only
// the context step and below matter for translation since context element
// names are unique in our schemas. Step count is bounded by the
// governor's recursion-depth limit; longer paths return
// kResourceExhausted.
Result<XPathQuery> ParseXPath(std::string_view xpath,
                              ResourceGovernor* governor = nullptr);

// An XPath workload W = {(Q_i, f_i)} (Definition 1).
using XPathWorkload = std::vector<XPathQuery>;

}  // namespace xmlshred

#endif  // XMLSHRED_XPATH_XPATH_H_
