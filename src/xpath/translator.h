// XPath -> SQL translation using the sorted-outer-union approach of
// Shanmugasundaram et al. (paper Section 1.1, reference [21]).
//
// For a query //ctx[sel op lit]/(p1 | p2 | ...) under a mapping M:
//
//  * every annotated tag named `ctx` is a context anchor (several after
//    type split or union distribution);
//  * for each anchor whose relation stores the selection column inline,
//    one block returns the context row's ID plus all inline projection
//    columns (repetition-split occurrence columns fill several output
//    slots), and one further block per child relation joins it via
//    child.PID = ctx.ID, NULL-padding the other slots;
//  * anchors lacking a projection or the selection element contribute
//    fewer blocks or none — that is exactly the partition elimination
//    that makes union distribution profitable;
//  * ORDER BY the ID column glues each context's fragments together.
//
// The translated query's output schema depends on the mapping, so the
// translator also reports which projection element each output column
// carries; CanonicalizeResult() folds executed rows into a
// mapping-independent multiset for cross-mapping comparison.

#ifndef XMLSHRED_XPATH_TRANSLATOR_H_
#define XMLSHRED_XPATH_TRANSLATOR_H_

#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "mapping/mapping.h"
#include "sql/ast.h"
#include "xml/schema_tree.h"
#include "xpath/xpath.h"

namespace xmlshred {

struct TranslatedQuery {
  Query sql;
  // For each output column: the projection element it carries ("" for the
  // leading context-ID column).
  std::vector<std::string> output_elements;
};

// Translates `query` against the mapping. Fails with NotFound when no
// anchor matches the context, and Unimplemented for shapes outside the
// supported subset (e.g. selection paths stored only in child relations).
Result<TranslatedQuery> TranslateXPath(const XPathQuery& query,
                                       const SchemaTree& tree,
                                       const Mapping& mapping);

// Folds executed result rows into a canonical, mapping-independent form:
// sorted (context id, element name, value) triples (NULL values dropped).
std::vector<std::string> CanonicalizeResult(
    const TranslatedQuery& query, const std::vector<Row>& rows);

}  // namespace xmlshred

#endif  // XMLSHRED_XPATH_TRANSLATOR_H_
