#include "serve/telemetry.h"

#include <algorithm>

#include "common/strings.h"

namespace xmlshred {

namespace {

// Compact single-line rendering of one flat span (the per-request traces
// hold sibling roots, never nested children, so this stays simple).
void AppendCompactSpanJson(std::string* out, const TraceSpan& span) {
  *out += "{\"name\": \"";
  AppendJsonEscaped(out, span.name);
  *out += "\", \"attrs\": {";
  for (size_t i = 0; i < span.attrs.size(); ++i) {
    if (i > 0) *out += ", ";
    *out += "\"";
    AppendJsonEscaped(out, span.attrs[i].first);
    *out += "\": \"";
    AppendJsonEscaped(out, span.attrs[i].second);
    *out += "\"";
  }
  *out += "}}";
}

}  // namespace

std::string PostmortemBundle::ToJson() const {
  std::string out = "{\n  \"schema_version\": 1,\n  \"trigger\": \"";
  AppendJsonEscaped(&out, trigger);
  out += StrFormat(
      "\",\n  \"time\": %.17g,\n  \"request_id\": %llu,\n"
      "  \"ticket\": %llu,\n  \"status\": \"",
      time, static_cast<unsigned long long>(request_id),
      static_cast<unsigned long long>(ticket));
  AppendJsonEscaped(&out, status);
  out += StrFormat(
      "\",\n  \"manager\": {\"queue_depth\": %llu, \"running\": %d, "
      "\"pool_outstanding\": %.17g, \"pool_capacity\": %.17g, "
      "\"pool_reservations\": %llu},\n  \"plan_explain\": \"",
      static_cast<unsigned long long>(queue_depth), running,
      pool_outstanding, pool_capacity,
      static_cast<unsigned long long>(pool_reservations));
  AppendJsonEscaped(&out, plan_explain);
  out += "\",\n  \"events\": [";
  for (size_t i = 0; i < events.size(); ++i) {
    out += i == 0 ? "\n    " : ",\n    ";
    AppendLogEventJson(&out, events[i]);
  }
  out += events.empty() ? "]\n}\n" : "\n  ]\n}\n";
  return out;
}

ServeTelemetry::ServeTelemetry(MetricsRegistry* metrics,
                               ServeTelemetryConfig config)
    : config_(config),
      recorder_(metrics,
                [&config] {
                  TimeSeriesOptions opts;
                  opts.window_width = config.window_width;
                  opts.capture_wall_time = config.capture_wall_time;
                  return opts;
                }()),
      ring_(config.flight_recorder_capacity) {}

double ServeTelemetry::Advance(double virtual_now) {
  double now = config_.capture_wall_time ? recorder_.WallSeconds()
                                         : virtual_now;
  recorder_.AdvanceTo(now);
  return now;
}

void ServeTelemetry::Finish(double virtual_now) {
  double now = config_.capture_wall_time ? recorder_.WallSeconds()
                                         : virtual_now;
  recorder_.Finish(now);
}

void ServeTelemetry::Record(
    double time, std::string name,
    std::vector<std::pair<std::string, std::string>> attrs) {
  LogEvent event;
  event.seq = next_event_seq_++;
  event.time = time;
  event.name = std::move(name);
  event.attrs = std::move(attrs);
  if (config_.keep_event_log) event_log_.push_back(event);
  ring_.Append(std::move(event));
}

void ServeTelemetry::FinishTrace(uint64_t request_id, int attempt,
                                 std::unique_ptr<TraceSink> trace) {
  if (trace == nullptr) return;
  std::string line = StrFormat(
      "{\"request_id\": %llu, \"attempt\": %d, \"spans\": [",
      static_cast<unsigned long long>(request_id), attempt);
  const auto& roots = trace->roots();
  for (size_t i = 0; i < roots.size(); ++i) {
    if (i > 0) line += ", ";
    AppendCompactSpanJson(&line, *roots[i]);
  }
  line += "]}";
  traces_.emplace_back(request_id, std::move(line));
}

void ServeTelemetry::CapturePostmortem(PostmortemBundle bundle) {
  if (config_.flight_recorder_capacity == 0) return;
  ++postmortems_total_;
  size_t& kept = postmortems_kept_[bundle.trigger];
  if (kept >= config_.postmortem_limit) return;
  ++kept;
  bundle.events = ring_.Tail();
  postmortems_.push_back(std::move(bundle));
}

std::string ServeTelemetry::TracesJsonLines() const {
  std::vector<const std::pair<uint64_t, std::string>*> ordered;
  ordered.reserve(traces_.size());
  for (const auto& t : traces_) ordered.push_back(&t);
  std::stable_sort(ordered.begin(), ordered.end(),
                   [](const auto* a, const auto* b) {
                     return a->first < b->first;
                   });
  std::string out;
  for (const auto* t : ordered) {
    out += t->second;
    out += "\n";
  }
  return out;
}

std::string ServeTelemetry::TracesDigest() const {
  return Fnv1a64Hex(TracesJsonLines());
}

std::string ServeTelemetry::EventsDigest() const {
  return Fnv1a64Hex(EventsJsonLines());
}

std::string ServeTelemetry::PostmortemsDigest() const {
  std::string all;
  for (const PostmortemBundle& b : postmortems_) all += b.ToJson();
  return Fnv1a64Hex(all);
}

}  // namespace xmlshred
