// Client-side deterministic retry/backoff for shed requests.
//
// A shed response carries a server-computed retry-after hint (estimated
// virtual time until enough budget drains). The client backs off by
// max(hint, exponential schedule) plus deterministic jitter drawn from a
// splitmix64 stream keyed by (policy seed, request key, attempt), so two
// runs of the same workload retry at exactly the same virtual times —
// the property the chaos soak's bit-identical-counts check rests on.

#ifndef XMLSHRED_SERVE_RETRY_H_
#define XMLSHRED_SERVE_RETRY_H_

#include <cstdint>

namespace xmlshred {

struct RetryPolicy {
  // Total tries including the first; attempts past this give up.
  int max_attempts = 4;
  // Exponential schedule: base * multiplier^(attempt-1), capped.
  double base_backoff = 4.0;
  double multiplier = 2.0;
  double max_backoff = 256.0;
  // Jitter as a fraction of the chosen backoff, in [0, jitter_fraction).
  double jitter_fraction = 0.25;
  uint64_t seed = 0x5eed5eed5eed5eedull;
};

// Backoff (virtual time) before retry number `attempt` (2 = first retry)
// of the request identified by `request_key`, honouring the server's
// `retry_after` hint. Pure arithmetic — no libm, no clock — so the value
// is bit-identical across platforms.
double RetryBackoff(const RetryPolicy& policy, uint64_t request_key,
                    int attempt, double retry_after);

}  // namespace xmlshred

#endif  // XMLSHRED_SERVE_RETRY_H_
