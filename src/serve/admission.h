// Admission-control primitives for the serving layer (DESIGN.md §12).
//
// Two small synchronization-free classes — the SessionManager serializes
// every call on its own mutex, so these stay plain data structures:
//
//  * DeadlineQueue — a bounded earliest-deadline-first admission queue.
//    Entries order by (deadline, arrival sequence); the sequence number
//    breaks ties deterministically, so pop order is a pure function of
//    the offered load and never of scheduling.
//  * WorkBudgetPool — the global work budget requests reserve against at
//    admission, using the planner's estimated cost (the optimizer's
//    estimates drive admission, execution meters the truth). When the
//    pool cannot cover a reservation the request is shed with
//    kResourceExhausted and a retry-after hint instead of queuing
//    unbounded work.

#ifndef XMLSHRED_SERVE_ADMISSION_H_
#define XMLSHRED_SERVE_ADMISSION_H_

#include <cstdint>
#include <set>
#include <tuple>

namespace xmlshred {

// One queued admission: absolute virtual-time deadline (infinity for
// "none"), arrival sequence for deterministic FIFO tie-break, and the
// pending-request ticket it resolves to.
struct QueuedAdmission {
  double deadline = 0;
  uint64_t seq = 0;
  uint64_t ticket = 0;
};

class DeadlineQueue {
 public:
  explicit DeadlineQueue(size_t capacity) : capacity_(capacity) {}

  bool Full() const { return entries_.size() >= capacity_; }
  bool Empty() const { return entries_.empty(); }
  size_t size() const { return entries_.size(); }
  size_t capacity() const { return capacity_; }

  // Requires !Full().
  void Push(double deadline, uint64_t seq, uint64_t ticket) {
    entries_.emplace(deadline, seq, ticket);
  }

  // Pops the earliest (deadline, seq) entry. Requires !Empty().
  QueuedAdmission PopFront() {
    auto it = entries_.begin();
    QueuedAdmission q{std::get<0>(*it), std::get<1>(*it), std::get<2>(*it)};
    entries_.erase(it);
    return q;
  }

  // Removes a specific entry (a timed-out threaded waiter removing
  // itself). Returns false when the entry was already popped.
  bool Remove(double deadline, uint64_t seq, uint64_t ticket) {
    return entries_.erase({deadline, seq, ticket}) > 0;
  }

 private:
  size_t capacity_;
  std::set<std::tuple<double, uint64_t, uint64_t>> entries_;
};

class WorkBudgetPool {
 public:
  // capacity <= 0 means unlimited.
  explicit WorkBudgetPool(double capacity) : capacity_(capacity) {}

  // Reserves `work` estimated units; false when the reservation would
  // push outstanding work past capacity (an empty pool always admits one
  // request, so a single query larger than the whole budget can still
  // run rather than being unservable forever).
  bool TryReserve(double work) {
    if (capacity_ > 0 && reservations_ > 0 &&
        outstanding_ + work > capacity_) {
      return false;
    }
    outstanding_ += work;
    ++reservations_;
    return true;
  }

  void Release(double work) {
    outstanding_ -= work;
    --reservations_;
    // Releases happen in completion order, not reservation order, so the
    // double sum carries rounding residue; snap to exactly zero whenever
    // the pool drains (Idle() and the soak invariant compare against 0).
    if (reservations_ <= 0 || outstanding_ < 0) outstanding_ = 0;
  }

  double outstanding() const { return outstanding_; }
  double capacity() const { return capacity_; }
  int64_t reservations() const { return reservations_; }

 private:
  double capacity_;
  double outstanding_ = 0;
  int64_t reservations_ = 0;
};

}  // namespace xmlshred

#endif  // XMLSHRED_SERVE_ADMISSION_H_
