#include "serve/soak.h"

#include <algorithm>
#include <map>
#include <queue>
#include <sstream>
#include <tuple>

#include "common/fault_injection.h"

namespace xmlshred {

namespace {

uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

double UniformDouble(uint64_t bits) {
  return static_cast<double>(bits >> 11) * 0x1.0p-53;
}

enum class EventKind { kArrival = 0, kCompletion = 1, kAppend = 2 };

struct Event {
  double time;
  uint64_t seq;  // deterministic tie-break: insertion order
  EventKind kind;
  int client = 0;
  int attempt = 1;
  uint64_t request_key = 0;
  size_t query_idx = 0;
  uint64_t ticket = 0;
  int append_idx = 0;
};

struct EventLater {
  bool operator()(const Event& a, const Event& b) const {
    return std::tie(a.time, a.seq) > std::tie(b.time, b.seq);
  }
};

struct InFlight {
  double arrival = 0;  // virtual time of the Offer that admitted it
  bool executed = false;
  ServeResponse response;
};

int64_t CounterValue(const MetricsSnapshot& snap, const char* name) {
  auto it = snap.counters.find(name);
  return it == snap.counters.end() ? 0 : it->second;
}

}  // namespace

std::string SoakReport::CountersDigest() const {
  std::ostringstream os;
  os << "offered=" << offered << " retries=" << retries
     << " completed=" << completed << " failed=" << failed
     << " shed_queue_full=" << shed_queue_full
     << " shed_budget=" << shed_budget << " shed_session=" << shed_session
     << " expired_in_queue=" << expired_in_queue
     << " expired_mid_query=" << expired_mid_query
     << " epochs_published=" << epochs_published
     << " faults_injected=" << faults_injected
     << " append_failures=" << append_failures;
  return os.str();
}

Result<SoakReport> RunSoak(SessionManager* manager, const XPathWorkload& mix,
                           const SoakOptions& options) {
  if (mix.empty()) return InvalidArgument("soak needs a non-empty query mix");
  if (options.append_every > 0 && !options.append_rows) {
    return InvalidArgument("append_every > 0 requires append_rows");
  }

  MetricsSnapshot before = manager->metrics()->Snapshot();

  std::priority_queue<Event, std::vector<Event>, EventLater> events;
  uint64_t event_seq = 0;
  auto schedule = [&](Event e) {
    e.seq = event_seq++;
    events.push(e);
  };

  // Pre-generate every client's arrival schedule; deterministic per
  // (seed, client) stream.
  std::vector<uint64_t> sessions;
  int arrivals_total = 0;
  for (int c = 0; c < options.num_clients; ++c) {
    sessions.push_back(manager->OpenSession());
    uint64_t stream = options.seed ^ (0xc1100a11ull * (c + 1));
    double t = 0;
    for (int i = 0; i < options.requests_per_client; ++i) {
      stream = SplitMix64(stream);
      double gap =
          options.mean_gap * (0.25 + 1.5 * UniformDouble(stream));
      t += gap;
      stream = SplitMix64(stream);
      Event e;
      e.time = t;
      e.kind = EventKind::kArrival;
      e.client = c;
      e.attempt = 1;
      e.request_key =
          (static_cast<uint64_t>(c) << 32) | static_cast<uint64_t>(i);
      e.query_idx = static_cast<size_t>(stream % mix.size());
      schedule(e);
      ++arrivals_total;
    }
  }

  // Chaos appends ride on the arrival count: schedule one append event
  // between every `append_every`-th and next arrival (interleaved times
  // derived from the arrival schedule would be circular, so just space
  // them across the expected span).
  if (options.append_every > 0) {
    int num_appends = arrivals_total / options.append_every;
    double expected_span = options.mean_gap *
                           static_cast<double>(options.requests_per_client);
    for (int k = 0; k < num_appends; ++k) {
      Event e;
      e.time = expected_span * static_cast<double>(k + 1) /
               static_cast<double>(num_appends + 1);
      e.kind = EventKind::kAppend;
      e.append_idx = k;
      schedule(e);
    }
  }

  // The soak owns the global injector for its duration: a fixed (seed,
  // probability) stream is the whole chaos schedule, disarmed again
  // before returning.
  if (options.fault_probability > 0) {
    FaultInjector::Global()->ArmProbabilistic(options.seed,
                                              options.fault_probability);
  }

  SoakReport report;
  std::map<uint64_t, InFlight> inflight;
  std::vector<double> latencies;
  double last_time = 0;

  auto run_ticket = [&](uint64_t ticket, double now) {
    // Execute the dispatched ticket at `now`; its slot is held until the
    // completion event fires at now + metered work.
    InFlight& f = inflight.at(ticket);
    f.response = manager->ExecuteTicket(ticket, now);
    f.executed = true;
    Event done;
    done.time = now + std::max(f.response.work, 1.0);
    done.kind = EventKind::kCompletion;
    done.ticket = ticket;
    schedule(done);
  };

  while (!events.empty()) {
    Event e = events.top();
    events.pop();
    last_time = std::max(last_time, e.time);
    switch (e.kind) {
      case EventKind::kArrival: {
        if (e.attempt == 1) {
          ++report.offered;
        } else {
          ++report.retries;
        }
        ServeRequest req;
        req.query = mix[e.query_idx];
        req.deadline_work = options.deadline_work;
        req.attempt = e.attempt;
        ServeResponse shed;
        uint64_t ticket = 0;
        AdmitOutcome outcome =
            manager->Offer(sessions[static_cast<size_t>(e.client)], req,
                           e.time, &shed, &ticket);
        if (outcome == AdmitOutcome::kShed) {
          if (shed.retry_after > 0 &&
              e.attempt < options.retry.max_attempts) {
            Event again = e;
            again.attempt = e.attempt + 1;
            again.time = e.time + RetryBackoff(options.retry, e.request_key,
                                               e.attempt + 1,
                                               shed.retry_after);
            schedule(again);
          }
          break;
        }
        InFlight f;
        f.arrival = e.time;
        inflight[ticket] = f;
        if (outcome == AdmitOutcome::kRun) run_ticket(ticket, e.time);
        break;
      }
      case EventKind::kCompletion: {
        InFlight& f = inflight.at(e.ticket);
        if (f.response.status.ok()) {
          latencies.push_back(e.time - f.arrival);
          report.completed_work += f.response.work;
        }
        inflight.erase(e.ticket);
        uint64_t next = manager->CompleteTicket(e.ticket, e.time);
        if (next != 0) run_ticket(next, e.time);
        // Retiring a slot may also have expired queued tickets; the
        // manager erased them (serve.expired_in_queue counts them), so
        // drop their inflight entries — they will never complete.
        for (auto it = inflight.begin(); it != inflight.end();) {
          if (!it->second.executed && !manager->HasPending(it->first)) {
            it = inflight.erase(it);
          } else {
            ++it;
          }
        }
        break;
      }
      case EventKind::kAppend: {
        Status appended = manager->AppendAndPublish(
            options.append_table, options.append_rows(e.append_idx),
            e.time);
        if (!appended.ok()) ++report.append_failures;
        break;
      }
    }
  }
  if (options.fault_probability > 0) FaultInjector::Global()->Disarm();
  // Close the final (partial) time-series window at the drain time so
  // two runs of the same schedule export identical window sets.
  manager->FinalizeTelemetry(last_time);

  // Fold the serve.* counter deltas into the report.
  MetricsSnapshot after = manager->metrics()->Snapshot();
  auto delta = [&](const char* name) {
    return CounterValue(after, name) - CounterValue(before, name);
  };
  report.completed = delta(kMetricServeCompleted);
  report.failed = delta(kMetricServeFailed);
  report.shed_queue_full = delta(kMetricServeShedQueueFull);
  report.shed_budget = delta(kMetricServeShedBudget);
  report.shed_session = delta(kMetricServeShedSession);
  report.expired_in_queue = delta(kMetricServeExpiredInQueue);
  report.expired_mid_query = delta(kMetricServeExpiredMidQuery);
  report.epochs_published = delta(kMetricServeEpochsPublished);
  report.faults_injected = delta(kMetricServeFaultsInjected);

  report.duration = last_time > 0 ? last_time : 1;
  report.goodput = report.completed_work / report.duration;
  report.throughput = static_cast<double>(report.completed) / report.duration;
  int64_t total_offers = report.offered + report.retries;
  int64_t shed_total = report.shed_queue_full + report.shed_budget +
                       report.shed_session;
  report.shed_rate = total_offers > 0
                         ? static_cast<double>(shed_total) /
                               static_cast<double>(total_offers)
                         : 0;
  std::sort(latencies.begin(), latencies.end());
  if (!latencies.empty()) {
    size_t n = latencies.size();
    report.p50_latency = latencies[n / 2];
    report.p99_latency = latencies[(n * 99) / 100];
  }

  // Invariants: every offer accounted exactly once, and the manager
  // fully drained.
  std::ostringstream err;
  int64_t requests = delta(kMetricServeRequests);
  int64_t retry_attempts = delta(kMetricServeRetryAttempts);
  int64_t accounted = report.completed + report.failed +
                      report.shed_queue_full + report.shed_budget +
                      report.shed_session + report.expired_in_queue +
                      report.expired_mid_query;
  if (requests != report.offered) {
    err << "serve.requests " << requests << " != offered " << report.offered
        << "; ";
  }
  if (retry_attempts != report.retries) {
    err << "serve.retry_attempts " << retry_attempts << " != retries "
        << report.retries << "; ";
  }
  if (requests + retry_attempts != accounted) {
    err << "offers " << (requests + retry_attempts)
        << " != terminal outcomes " << accounted << "; ";
  }
  if (!manager->Idle()) {
    err << "manager not idle after drain (queue=" << manager->queue_depth()
        << " running=" << manager->running()
        << " outstanding=" << manager->outstanding_work() << "); ";
  }
  if (!inflight.empty()) {
    err << inflight.size() << " tickets never completed; ";
  }
  report.invariant_error = err.str();
  report.invariants_ok = report.invariant_error.empty();
  return report;
}

}  // namespace xmlshred
