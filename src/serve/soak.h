// Deterministic open-loop soak harness for the serving layer.
//
// A discrete-event simulation in virtual time (work units): N clients
// generate open-loop arrivals of a query mix, shed requests retry under
// the deterministic backoff policy, and an optional chaos schedule
// injects faults and epoch-publishing appends. Everything — arrival
// gaps, query choice, retry jitter, fault stream — is derived from
// splitmix64 streams keyed by the seed, and the simulation runs on one
// thread, so two runs with the same options produce bit-identical
// admit/shed/complete counts. That is the property the chaos CI step
// asserts; wall-clock never enters the model (service time of a request
// IS its metered work).

#ifndef XMLSHRED_SERVE_SOAK_H_
#define XMLSHRED_SERVE_SOAK_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/status.h"
#include "serve/retry.h"
#include "serve/session.h"
#include "xpath/xpath.h"

namespace xmlshred {

struct SoakOptions {
  int num_clients = 4;
  int requests_per_client = 50;
  // Mean inter-arrival gap per client in virtual work units. Gaps are
  // mean * (0.25 + 1.5u) with u uniform — bounded jitter instead of an
  // exponential so no libm call can perturb cross-platform determinism.
  double mean_gap = 100.0;
  // Per-request relative deadline (0 = none).
  double deadline_work = 0;
  // Wall-of-jitter seed for arrivals / query choice / retry jitter.
  uint64_t seed = 1;
  RetryPolicy retry;
  // Chaos: probability per fault-site hit (0 = no injection). Armed via
  // the global injector for the duration of the run.
  double fault_probability = 0;
  // Every `append_every` arrivals (counting across clients), append a
  // batch of rows and publish a new epoch. 0 = never.
  int append_every = 0;
  // Generates the rows for the k-th append (k = 0, 1, ...). Required
  // when append_every > 0.
  std::string append_table;
  std::function<std::vector<Row>(int)> append_rows;
};

struct SoakReport {
  // Offered load (first attempts + retries) as the runner saw it; the
  // same split the serve.* counters carry.
  int64_t offered = 0;
  int64_t retries = 0;
  int64_t completed = 0;
  int64_t failed = 0;
  int64_t shed_queue_full = 0;
  int64_t shed_budget = 0;
  int64_t shed_session = 0;
  int64_t expired_in_queue = 0;
  int64_t expired_mid_query = 0;
  int64_t epochs_published = 0;
  int64_t faults_injected = 0;
  int64_t append_failures = 0;
  double completed_work = 0;  // metered work of completed requests
  double duration = 0;        // virtual time span of the run
  double goodput = 0;         // completed_work / duration
  double throughput = 0;      // completed / duration
  double shed_rate = 0;       // shed / offered-including-retries
  double p50_latency = 0;     // virtual-time latency of completed reqs
  double p99_latency = 0;
  bool invariants_ok = false;
  std::string invariant_error;

  // One deterministic line per counter, for bit-identical run compares.
  std::string CountersDigest() const;
};

// Drives `manager` with the soak described by `options`, using queries
// drawn from `mix`. The manager must be freshly constructed (counters at
// zero) for the accounting invariant check to hold.
Result<SoakReport> RunSoak(SessionManager* manager, const XPathWorkload& mix,
                           const SoakOptions& options);

}  // namespace xmlshred

#endif  // XMLSHRED_SERVE_SOAK_H_
