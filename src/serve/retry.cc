#include "serve/retry.h"

namespace xmlshred {

namespace {

uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

double RetryBackoff(const RetryPolicy& policy, uint64_t request_key,
                    int attempt, double retry_after) {
  double scheduled = policy.base_backoff;
  for (int i = 2; i < attempt; ++i) {
    scheduled *= policy.multiplier;
    if (scheduled >= policy.max_backoff) break;
  }
  if (scheduled > policy.max_backoff) scheduled = policy.max_backoff;
  double backoff = retry_after > scheduled ? retry_after : scheduled;
  uint64_t mix = SplitMix64(policy.seed ^ request_key ^
                            (0x9e3779b97f4a7c15ull *
                             static_cast<uint64_t>(attempt)));
  // Top 53 bits -> uniform double in [0, 1) with no libm involvement.
  double u = static_cast<double>(mix >> 11) * 0x1.0p-53;
  return backoff * (1.0 + policy.jitter_fraction * u);
}

}  // namespace xmlshred
