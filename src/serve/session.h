// Concurrent multi-session serving layer (DESIGN.md §12).
//
// A SessionManager fronts one shared Database for N concurrent clients
// issuing XPath queries. Robustness comes from composing the substrate
// built in earlier PRs rather than new mechanisms:
//
//  * Epoch snapshots — a columnar append publishes a new epoch
//    (Database::PublishEpoch); every request pins the latest snapshot at
//    admission and the executor clamps all scans to it. No MVCC: tables
//    are append-only, so a snapshot is a per-table row bound.
//  * Admission control — requests are planned at admission and their
//    estimated cost reserved from a global WorkBudgetPool; a bounded
//    earliest-deadline-first queue absorbs bursts. When the queue or the
//    pool saturates the request is shed with kResourceExhausted and a
//    deterministic retry-after hint (never queued unboundedly).
//  * Deadline propagation — each request runs under its own
//    ResourceGovernor whose work budget is min(deadline remaining,
//    session budget remaining); the vectorized executor polls
//    cancellation and the governor at batch boundaries, so expiry
//    surfaces as a clean status with metering intact.
//  * Chaos — the global FaultInjector is consulted at admission
//    ("serve.admit"), epoch publish ("serve.epoch_publish"), and batch
//    boundaries ("serve.mid_query"), so injected failure exercises every
//    shedding and error path deterministically.
//
// Two driving modes share all of the above:
//
//  * Virtual time (Offer / ExecuteTicket / CompleteTicket) — the caller
//    advances a virtual clock measured in work units. Single-threaded
//    and fully deterministic; the soak harness (serve/soak.h) and the
//    committed bench baseline run here.
//  * Real threads (Submit) — blocking calls from concurrent client
//    threads, dispatched through the same queue and budget under an
//    internal mutex + condition variable. Validated under TSan; outcome
//    *counts* are scheduling-dependent, the accounting invariant is not.
//
// Accounting invariant (checked by tests and the soak):
//   requests + retry_attempts == completed + failed + shed_queue_full +
//     shed_budget + shed_session + expired_in_queue + expired_mid_query.

#ifndef XMLSHRED_SERVE_SESSION_H_
#define XMLSHRED_SERVE_SESSION_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

#include "common/exec_context.h"
#include "common/metrics.h"
#include "common/status.h"
#include "common/trace.h"
#include "mapping/mapping.h"
#include "mapping/shredder.h"
#include "opt/planner.h"
#include "rel/catalog.h"
#include "serve/admission.h"
#include "serve/telemetry.h"
#include "xml/schema_tree.h"
#include "xpath/xpath.h"

namespace xmlshred {

// Inherits the shared ExecKnobs: `exec_threads` is the intra-query morsel
// worker count per request (results, metering, and governor trip points
// are bit-identical at any value — the per-request governor is the shared
// budget pool its workers charge through — so it only changes request
// latency); `capture_timing` / `collect_explain` are accepted for
// uniformity but per-request observability lives in `telemetry` below
// (head-sampled span traces, not full explain trees).
struct ServeConfig : ExecKnobs {
  // Execution slots: requests running concurrently (overlapping in
  // virtual time under the DES driver, real threads under Submit).
  int max_concurrent = 4;
  // Bounded admission queue; a full queue sheds.
  size_t queue_capacity = 8;
  // Cap on outstanding *estimated* work (running + queued reservations);
  // <= 0 = unlimited. Admission beyond it sheds with a retry-after hint.
  double global_work_budget = 0;
  // Default per-session work budget for OpenSession(0); <= 0 unlimited.
  double session_work_budget = 0;
  bool vectorized_scan = true;
  // Worker threads for streaming bulk ingest (IngestAndPublish). The
  // resulting database state, metrics, and error behaviour are
  // bit-identical at every value (DESIGN.md §17), so this only changes
  // ingest latency.
  int ingest_threads = 1;
  // Continuous telemetry (serve/telemetry.h). All-off by default: the
  // manager then allocates no telemetry object and the request path pays
  // one null check — no clock reads, no recorder allocations.
  ServeTelemetryConfig telemetry;
};

struct ServeRequest {
  XPathQuery query;
  // Work-unit deadline, relative to arrival (virtual time). The request
  // expires in the queue once the deadline passes and its executor
  // budget is clamped to the remainder at dispatch. 0 = none.
  double deadline_work = 0;
  // Wall-clock cap on queue wait for the threaded Submit path; 0 = wait
  // until dispatched. (Virtual-time drivers never block, so this only
  // matters under Submit.)
  double wall_queue_wait_seconds = 0;
  // 1 for the first try; retries bump this so serve.retry_attempts
  // separates offered load from unique requests.
  int attempt = 1;
  // Optional cooperative cancellation, polled by the executor at batch
  // boundaries.
  const std::atomic<bool>* cancel = nullptr;
};

struct ServeResponse {
  Status status;
  int64_t rows_out = 0;
  // Metered work of the execution attempt (0 for requests shed before
  // running).
  double work = 0;
  // For shed / transiently-failed requests: the server's deterministic
  // estimate (virtual time) of when retrying could succeed. 0 = a retry
  // will not help (permanent error or expired deadline).
  double retry_after = 0;
  // Epoch the request's snapshot pinned (0 when shed before pinning).
  uint64_t epoch = 0;
};

enum class AdmitOutcome {
  kRun,     // admitted straight into a free slot; caller executes now
  kQueued,  // admitted into the deadline queue
  kShed,    // rejected; *shed response has status + retry_after
};

class SessionManager {
 public:
  // `db`, `tree`, and `mapping` must outlive the manager (tree/mapping
  // drive XPath translation). `metrics` may be null (an internal
  // registry is used); pass one to export serve.* counters.
  SessionManager(Database* db, const SchemaTree& tree, const Mapping& mapping,
                 const ServeConfig& config, MetricsRegistry* metrics);

  SessionManager(const SessionManager&) = delete;
  SessionManager& operator=(const SessionManager&) = delete;

  // Opens a session with `work_budget` total execution work (0 = the
  // config default; negative = unlimited). Sessions are never closed in
  // this model — a shed or expired request leaves its session reusable.
  uint64_t OpenSession(double work_budget = 0);

  // --- Virtual-time interface (deterministic; single driver thread) ---

  // Offers a request at virtual time `now`. kRun: a slot was free, call
  // ExecuteTicket then CompleteTicket at now + work. kQueued: the ticket
  // surfaces later from CompleteTicket. kShed: *shed carries the
  // response; the ticket is dead.
  AdmitOutcome Offer(uint64_t session_id, const ServeRequest& request,
                     double now, ServeResponse* shed, uint64_t* ticket);

  // Executes a dispatched ticket at virtual time `now` (terminal
  // counters — completed / failed / expired_mid_query — are recorded
  // here).
  ServeResponse ExecuteTicket(uint64_t ticket, double now);

  // Retires `ticket` at virtual completion time `now`, releasing its
  // slot and budget reservation and recording latency. Pops the
  // earliest-deadline queued request whose deadline still stands
  // (expiring the rest) and dispatches it into the freed slot; returns
  // its ticket, or 0 when the queue drained.
  uint64_t CompleteTicket(uint64_t ticket, double now);

  // --- Real-thread interface (blocking; TSan-validated) ---

  // Admits, waits for a slot if queued, executes, completes. Returns the
  // terminal response (sheds and queue-wait timeouts included).
  ServeResponse Submit(uint64_t session_id, const ServeRequest& request);

  // --- Writes ---

  // Appends `rows` to `table`, rebuilds the table's indexes, and
  // publishes a new epoch — all-or-nothing versus admission faults
  // ("serve.epoch_publish" is checked before any mutation). Refuses with
  // kFailedPrecondition while materialized views exist (they would go
  // stale silently). In-flight queries keep their pinned epochs; the
  // append takes the database write lock, so it waits for running
  // queries to finish their scans and new rows become visible only to
  // requests admitted after publish.
  Status AppendAndPublish(const std::string& table,
                          const std::vector<Row>& rows, double now = 0);

  // Bulk-ingests an XML document through the streaming shredder
  // (mapping/stream_shredder.h) with config.ingest_threads workers,
  // creating the mapping's tables in the shared database, then publishes
  // a new epoch. Same contract as AppendAndPublish: the
  // "serve.epoch_publish" fault site is checked before any mutation,
  // materialized views refuse the write, the database write lock
  // excludes running queries, and a failed shred rolls itself back
  // all-or-nothing, so a non-OK return leaves the database untouched.
  Result<ShredStats> IngestAndPublish(std::string_view xml, double now = 0);

  // --- Introspection (tests, soak invariant checks) ---

  // True when no request is running, queued, or holding budget.
  bool Idle() const;
  // True while `ticket` is still queued or dispatched. A virtual-time
  // driver uses this to learn that a queued ticket expired (the manager
  // retires expired DES tickets itself; threaded tickets are reaped by
  // their Submit call).
  bool HasPending(uint64_t ticket) const;
  size_t queue_depth() const;
  int running() const;
  double outstanding_work() const;
  uint64_t current_epoch() const { return db_->current_epoch(); }
  MetricsRegistry* metrics() { return metrics_; }

  // --- Telemetry ---

  // Null unless config.telemetry.enabled(). The pointer is stable for
  // the manager's lifetime; exports are safe to read once the manager is
  // idle (the driver thread is the only writer).
  ServeTelemetry* telemetry() { return telemetry_.get(); }
  // Closes the final time-series window at virtual time `now` (virtual-
  // time drivers call this once after draining; wall-clock serving
  // resolves `now` from the steady clock internally).
  void FinalizeTelemetry(double now);

 private:
  struct SessionState {
    double budget = 0;  // <= 0 unlimited
    double spent = 0;
  };

  enum class PendingState {
    kWaiting,     // in the deadline queue
    kDispatched,  // owns a slot; execution pending or running
    kExpired,     // expired in queue (threaded owner must reap it)
  };

  struct PendingRequest {
    uint64_t ticket = 0;
    uint64_t session_id = 0;
    PlannedQuery plan;
    std::shared_ptr<const EpochSnapshot> snapshot;
    double est_work = 0;
    double arrival = 0;        // virtual offer time
    double deadline_abs = 0;   // arrival + deadline_work; 0 = none
    double dispatch_time = 0;  // virtual time the slot was granted
    double queue_deadline = 0;  // EDF key used in the queue (for Remove)
    uint64_t queue_seq = 0;
    const std::atomic<bool>* cancel = nullptr;
    bool threaded = false;
    PendingState state = PendingState::kDispatched;
    ServeResponse response;  // threaded mode: filled by the executor
    // Telemetry identity: minted per offered attempt at admission (0
    // when telemetry is off) and the head-sampled span trace (null when
    // the request is unsampled).
    uint64_t request_id = 0;
    int attempt = 1;
    std::unique_ptr<TraceSink> trace;
  };

  // Admission under mu_ (shared by Offer and Submit). Returns the
  // outcome; fills *shed on kShed, *ticket otherwise.
  AdmitOutcome AdmitLocked(std::unique_lock<std::mutex>& lock,
                           uint64_t session_id, const ServeRequest& request,
                           double now, bool threaded, ServeResponse* shed,
                           uint64_t* ticket);

  // Runs the executor for `ticket` (must be kDispatched) and records the
  // terminal counter. `now` is the virtual dispatch-complete time.
  ServeResponse ExecuteLocked(uint64_t ticket, double now);

  // Retires a finished ticket and dispatches the next queued request;
  // requires mu_ held. Returns the dispatched ticket or 0.
  uint64_t RetireAndDispatchLocked(uint64_t ticket, double now);

  // Deterministic retry-after hint: estimated virtual time until the
  // currently outstanding work drains through max_concurrent slots.
  double RetryAfterHintLocked() const;

  double SessionRemainingLocked(uint64_t session_id) const;

  // Captures a post-mortem bundle from current manager state plus the
  // flight-recorder tail; requires mu_ held and telemetry enabled.
  void PostmortemLocked(const char* trigger, double time,
                        uint64_t request_id, uint64_t ticket,
                        const Status& status,
                        const std::string& plan_explain);

  Database* db_;
  const SchemaTree& tree_;
  const Mapping& mapping_;
  ServeConfig config_;
  std::unique_ptr<MetricsRegistry> owned_metrics_;
  MetricsRegistry* metrics_;
  std::unique_ptr<ServeTelemetry> telemetry_;  // null when disabled

  // Physical read/write gate: queries scan columnar vectors under a
  // shared lock; AppendAndPublish mutates them under the exclusive lock.
  // Epoch snapshots give *logical* isolation only — an append can
  // reallocate a vector mid-scan without this.
  mutable std::shared_mutex db_mu_;

  mutable std::mutex mu_;  // guards everything below
  std::condition_variable cv_;  // threaded waiters
  CatalogDesc catalog_;
  std::map<uint64_t, SessionState> sessions_;
  std::map<uint64_t, PendingRequest> pending_;
  DeadlineQueue queue_;
  WorkBudgetPool pool_;
  int running_ = 0;
  uint64_t next_session_ = 1;
  uint64_t next_ticket_ = 1;
  uint64_t next_queue_seq_ = 1;
};

}  // namespace xmlshred

#endif  // XMLSHRED_SERVE_SESSION_H_
