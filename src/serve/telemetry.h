// Continuous serving telemetry (DESIGN.md §15): the SessionManager's
// windowed time-series recorder, per-request trace sampler, and flight
// recorder with post-mortem capture, in one optional side-car object.
//
// The SessionManager owns at most one ServeTelemetry and calls into it
// only under its own mutex, so this class needs no locking of its own.
// When the config leaves every feature off the manager holds a null
// pointer and the request hot path pays exactly one branch — no clock
// reads, no allocations (asserted by TelemetryTest).
//
// Determinism contract: under the virtual-time drivers (Offer /
// ExecuteTicket / CompleteTicket and the soak), every export below —
// window JSON lines, sampled per-request traces, the retained event log,
// and post-mortem bundles — is bit-identical at any --threads /
// --exec-threads setting, because
//
//  * window boundaries are virtual times and counter deltas are exact
//    integers (common/timeseries.h),
//  * request IDs are minted in admission order under the manager mutex
//    and the head-sampling decision is a pure function of
//    (rng_seed, request_id) (DeterministicHeadSample),
//  * events carry virtual timestamps and pre-rendered attributes, never
//    pointers or wall times,
//  * a post-mortem snapshots manager state that the coordinator-replay
//    protocol already keeps thread-count-invariant (queue depth, pool
//    accounting, plan explain).
//
// Each export has an FNV-1a digest so CI pins the invariance with a
// string compare instead of committing whole documents.

#ifndef XMLSHRED_SERVE_TELEMETRY_H_
#define XMLSHRED_SERVE_TELEMETRY_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "common/metrics.h"
#include "common/timeseries.h"
#include "common/trace.h"

namespace xmlshred {

struct ServeTelemetryConfig {
  // Time-series window width in the driver's time unit; <= 0 disables
  // the recorder.
  double window_width = 0;
  // Head-sample 1 in N requests for span traces; <= 0 disables tracing,
  // 1 traces everything.
  int trace_sample_period = 0;
  // Seed for the sampling decision (pair with the workload seed so the
  // sampled set replays).
  uint64_t rng_seed = 1;
  // Flight-recorder ring capacity (recent events kept for post-mortems);
  // 0 disables the ring AND post-mortem capture.
  size_t flight_recorder_capacity = 0;
  // Keep at most this many post-mortem bundles PER TRIGGER CLASS (the
  // first N of each, chronologically — deterministic, unlike "the last N
  // under racing sheds", and a rare trigger is never crowded out by a
  // frequent one: a handful of budget sheds still gets captured in a run
  // with hundreds of injected faults).
  size_t postmortem_limit = 8;
  // Retain the full event log for --events-out export (the ring alone
  // only remembers the tail).
  bool keep_event_log = false;
  // Stamp wall clock into windows and drive window advancement from the
  // steady clock (real-thread Submit serving). Off = zero clock reads.
  bool capture_wall_time = false;

  bool enabled() const {
    return window_width > 0 || trace_sample_period > 0 ||
           flight_recorder_capacity > 0 || keep_event_log;
  }
};

// Everything captured when a request is shed, a governor trips, or a
// fault site fires: the shed request's identity and plan, manager-state
// gauges at that instant, and the flight recorder's recent events.
struct PostmortemBundle {
  std::string trigger;  // e.g. "shed.queue_full", "governor.deadline"
  double time = 0;
  uint64_t request_id = 0;
  uint64_t ticket = 0;
  std::string status;  // status message of the terminal response
  size_t queue_depth = 0;
  int running = 0;
  double pool_outstanding = 0;
  double pool_capacity = 0;
  size_t pool_reservations = 0;
  std::string plan_explain;  // empty when shed before planning
  std::vector<LogEvent> events;  // flight-recorder tail, oldest first

  // Pretty-printed JSON document (one bundle per file).
  std::string ToJson() const;
};

class ServeTelemetry {
 public:
  ServeTelemetry(MetricsRegistry* metrics, ServeTelemetryConfig config);

  ServeTelemetry(const ServeTelemetry&) = delete;
  ServeTelemetry& operator=(const ServeTelemetry&) = delete;

  const ServeTelemetryConfig& config() const { return config_; }

  // Resolves the event timestamp and closes any elapsed windows. Virtual
  // drivers pass their clock through unchanged; under capture_wall_time
  // the steady clock overrides `virtual_now`. Call BEFORE recording the
  // event at the returned time (boundary events land in the next
  // window).
  double Advance(double virtual_now);

  // Closes the final partial window.
  void Finish(double virtual_now);

  // Request identity: IDs are minted per offered attempt (retries get
  // fresh IDs) in admission order; the sampling decision is fixed at
  // mint time.
  uint64_t MintRequestId() { return next_request_id_++; }
  bool SampleRequest(uint64_t request_id) const {
    return DeterministicHeadSample(config_.rng_seed, request_id,
                                   config_.trace_sample_period);
  }

  // Appends a structured event to the flight-recorder ring (and the
  // retained log when keep_event_log).
  void Record(double time, std::string name,
              std::vector<std::pair<std::string, std::string>> attrs);

  // Takes ownership of a finished sampled request trace; exported as one
  // JSON line keyed by request_id.
  void FinishTrace(uint64_t request_id, int attempt,
                   std::unique_ptr<TraceSink> trace);

  // Captures `bundle`, filling its events from the flight-recorder tail.
  // Bundles beyond postmortem_limit for their trigger class are counted
  // but dropped.
  void CapturePostmortem(PostmortemBundle bundle);

  TimeSeriesRecorder& recorder() { return recorder_; }
  const std::vector<PostmortemBundle>& postmortems() const {
    return postmortems_;
  }
  size_t postmortems_total() const { return postmortems_total_; }
  size_t traces_sampled() const { return traces_.size(); }
  int64_t clock_reads() const { return recorder_.clock_reads(); }

  // --- Exports (deterministic; each with an FNV-1a digest) ---
  std::string TimeSeriesJsonLines() const {
    return recorder_.ToJsonLines();
  }
  std::string TimeSeriesDigest() const { return recorder_.Digest(); }
  // One line per sampled request, ascending request_id:
  //   {"request_id": N, "attempt": A, "spans": [...]}
  std::string TracesJsonLines() const;
  std::string TracesDigest() const;
  // The retained event log (empty unless keep_event_log).
  std::string EventsJsonLines() const {
    return LogEventsToJsonLines(event_log_);
  }
  std::string EventsDigest() const;
  // Digest over every kept bundle's ToJson.
  std::string PostmortemsDigest() const;

 private:
  ServeTelemetryConfig config_;
  TimeSeriesRecorder recorder_;
  EventRing ring_;
  uint64_t next_event_seq_ = 1;
  uint64_t next_request_id_ = 1;
  std::vector<LogEvent> event_log_;
  // (request_id, rendered JSON line) — kept sorted by request_id at
  // export time so the threaded path exports deterministically too.
  std::vector<std::pair<uint64_t, std::string>> traces_;
  std::vector<PostmortemBundle> postmortems_;  // chronological
  std::map<std::string, size_t> postmortems_kept_;  // per trigger class
  size_t postmortems_total_ = 0;
};

}  // namespace xmlshred

#endif  // XMLSHRED_SERVE_TELEMETRY_H_
