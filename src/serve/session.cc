#include "serve/session.h"

#include <algorithm>
#include <chrono>
#include <limits>
#include <utility>

#include "common/fault_injection.h"
#include "common/logging.h"
#include "common/strings.h"
#include "exec/executor.h"
#include "mapping/stream_shredder.h"
#include "sql/binder.h"
#include "xpath/translator.h"

namespace xmlshred {

namespace {

// An injected fault surfaces as Internal("injected fault at <site>");
// classify it so chaos runs can count injected failures separately from
// organic ones.
bool IsInjectedFault(const Status& status) {
  return status.message().rfind("injected fault", 0) == 0;
}

constexpr double kInfDeadline = std::numeric_limits<double>::infinity();

}  // namespace

SessionManager::SessionManager(Database* db, const SchemaTree& tree,
                               const Mapping& mapping,
                               const ServeConfig& config,
                               MetricsRegistry* metrics)
    : db_(db),
      tree_(tree),
      mapping_(mapping),
      config_(config),
      queue_(config.queue_capacity),
      pool_(config.global_work_budget) {
  if (metrics == nullptr) {
    owned_metrics_ = std::make_unique<MetricsRegistry>();
    metrics_ = owned_metrics_.get();
  } else {
    metrics_ = metrics;
  }
  catalog_ = db_->BuildCatalogDesc();
  // Serve from a published state even if the caller never appends.
  if (db_->LatestSnapshot() == nullptr) db_->PublishEpoch();
  if (config.telemetry.enabled()) {
    telemetry_ = std::make_unique<ServeTelemetry>(metrics_, config.telemetry);
  }
}

void SessionManager::FinalizeTelemetry(double now) {
  std::lock_guard<std::mutex> lock(mu_);
  if (telemetry_ != nullptr) telemetry_->Finish(now);
}

void SessionManager::PostmortemLocked(const char* trigger, double time,
                                      uint64_t request_id, uint64_t ticket,
                                      const Status& status,
                                      const std::string& plan_explain) {
  PostmortemBundle b;
  b.trigger = trigger;
  b.time = time;
  b.request_id = request_id;
  b.ticket = ticket;
  b.status = status.ToString();
  b.queue_depth = queue_.size();
  b.running = running_;
  b.pool_outstanding = pool_.outstanding();
  b.pool_capacity = pool_.capacity();
  b.pool_reservations = static_cast<size_t>(pool_.reservations());
  b.plan_explain = plan_explain;
  telemetry_->CapturePostmortem(std::move(b));
}

uint64_t SessionManager::OpenSession(double work_budget) {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t id = next_session_++;
  SessionState s;
  s.budget = work_budget == 0 ? config_.session_work_budget : work_budget;
  sessions_[id] = s;
  metrics_->counter(kMetricServeSessionsOpened)->Increment();
  return id;
}

double SessionManager::SessionRemainingLocked(uint64_t session_id) const {
  auto it = sessions_.find(session_id);
  if (it == sessions_.end()) return 0;
  if (it->second.budget <= 0) return kInfDeadline;
  double rem = it->second.budget - it->second.spent;
  return rem > 0 ? rem : 0;
}

double SessionManager::RetryAfterHintLocked() const {
  // Virtual time until the outstanding estimated work drains through the
  // slots. Deterministic: depends only on reservations, never on timing.
  double per_slot =
      pool_.outstanding() / static_cast<double>(config_.max_concurrent);
  return per_slot > 1.0 ? per_slot : 1.0;
}

AdmitOutcome SessionManager::AdmitLocked(std::unique_lock<std::mutex>& lock,
                                         uint64_t session_id,
                                         const ServeRequest& request,
                                         double now, bool threaded,
                                         ServeResponse* shed,
                                         uint64_t* ticket) {
  // Telemetry prologue: advance the time-series windows past `now`
  // before this request's counters land, mint the request identity, and
  // fix the head-sampling decision. Disabled telemetry costs exactly
  // this one null check.
  double tnow = now;
  uint64_t request_id = 0;
  std::unique_ptr<TraceSink> trace;
  if (telemetry_ != nullptr) {
    tnow = telemetry_->Advance(now);
    request_id = telemetry_->MintRequestId();
    if (telemetry_->SampleRequest(request_id)) {
      trace = std::make_unique<TraceSink>();
    }
  }
  // Finalizes a rejected request's telemetry: the terminal event, the
  // closing "admission" span of a sampled trace, and — for sheds and
  // faults (not client errors) — a flight-recorder post-mortem.
  auto reject = [&](const char* event_name, bool postmortem,
                    const std::string& plan_explain) {
    if (telemetry_ == nullptr) return;
    telemetry_->Record(
        tnow, event_name,
        {{"request_id", std::to_string(request_id)},
         {"session", std::to_string(session_id)},
         {"attempt", std::to_string(request.attempt)},
         {"status", std::string(shed->status.message())}});
    if (postmortem) {
      PostmortemLocked(event_name, tnow, request_id, /*ticket=*/0,
                       shed->status, plan_explain);
    }
    if (trace != nullptr) {
      {
        SpanScope s(trace.get(), "admission");
        s.Attr("outcome", "shed");
        s.Attr("event", event_name);
        s.Attr("status", shed->status.message());
        s.Attr("retry_after", shed->retry_after);
      }
      telemetry_->FinishTrace(request_id, request.attempt,
                              std::move(trace));
    }
  };

  if (request.attempt <= 1) {
    metrics_->counter(kMetricServeRequests)->Increment();
  } else {
    metrics_->counter(kMetricServeRetryAttempts)->Increment();
  }

  Status admit = FaultInjector::Global()->Check(kFaultSiteServeAdmit);
  if (!admit.ok()) {
    metrics_->counter(kMetricServeFailed)->Increment();
    if (IsInjectedFault(admit)) {
      metrics_->counter(kMetricServeFaultsInjected)->Increment();
    }
    shed->status = std::move(admit);
    shed->retry_after = RetryAfterHintLocked();  // transient server fault
    reject("fault.admit", /*postmortem=*/true, "");
    return AdmitOutcome::kShed;
  }

  if (sessions_.find(session_id) == sessions_.end()) {
    metrics_->counter(kMetricServeFailed)->Increment();
    shed->status = NotFound("unknown session");
    reject("request.rejected", /*postmortem=*/false, "");
    return AdmitOutcome::kShed;
  }

  // Translate, bind, and plan at admission: the planner's estimate is
  // the admission currency, and a malformed query fails here without
  // ever holding a slot. catalog_ is a descriptor snapshot, so no
  // database lock is needed.
  PlannedQuery plan;
  {
    Result<TranslatedQuery> translated =
        TranslateXPath(request.query, tree_, mapping_);
    if (!translated.ok()) {
      metrics_->counter(kMetricServeFailed)->Increment();
      shed->status = translated.status();
      reject("request.rejected", /*postmortem=*/false, "");
      return AdmitOutcome::kShed;
    }
    Result<BoundQuery> bound = BindQuery(translated->sql, catalog_);
    if (!bound.ok()) {
      metrics_->counter(kMetricServeFailed)->Increment();
      shed->status = bound.status();
      reject("request.rejected", /*postmortem=*/false, "");
      return AdmitOutcome::kShed;
    }
    PlannerOptions popts;
    popts.metrics = metrics_;
    Result<PlannedQuery> planned = PlanQuery(*bound, catalog_, popts);
    if (!planned.ok()) {
      metrics_->counter(kMetricServeFailed)->Increment();
      shed->status = planned.status();
      reject("request.rejected", /*postmortem=*/false, "");
      return AdmitOutcome::kShed;
    }
    plan = std::move(*planned);
  }

  if (trace != nullptr) {
    SpanScope s(trace.get(), "planning");
    s.Attr("est_cost", plan.est_cost);
    s.Attr("objects_used", static_cast<int64_t>(plan.objects_used.size()));
  }

  double session_rem = SessionRemainingLocked(session_id);
  if (plan.est_cost > session_rem) {
    metrics_->counter(kMetricServeShedSession)->Increment();
    shed->status = ResourceExhausted("session work budget exhausted");
    shed->retry_after = 0;  // a session budget never refills
    reject("shed.session", /*postmortem=*/true, plan.Explain());
    return AdmitOutcome::kShed;
  }

  if (!pool_.TryReserve(plan.est_cost)) {
    metrics_->counter(kMetricServeShedBudget)->Increment();
    shed->status = ResourceExhausted("global work budget saturated");
    shed->retry_after = RetryAfterHintLocked();
    reject("shed.budget", /*postmortem=*/true, plan.Explain());
    return AdmitOutcome::kShed;
  }

  if (trace != nullptr) {
    SpanScope s(trace.get(), "budget");
    s.Attr("reserved", plan.est_cost);
    s.Attr("session_remaining", session_rem);
    s.Attr("pool_outstanding", pool_.outstanding());
  }

  bool slot_free = running_ < config_.max_concurrent && queue_.Empty();
  if (!slot_free && queue_.Full()) {
    pool_.Release(plan.est_cost);
    metrics_->counter(kMetricServeShedQueueFull)->Increment();
    shed->status = ResourceExhausted("admission queue full");
    shed->retry_after = RetryAfterHintLocked();
    reject("shed.queue_full", /*postmortem=*/true, plan.Explain());
    return AdmitOutcome::kShed;
  }

  uint64_t t = next_ticket_++;
  PendingRequest& p = pending_[t];
  p.ticket = t;
  p.session_id = session_id;
  p.plan = std::move(plan);
  p.snapshot = db_->LatestSnapshot();
  p.est_work = p.plan.est_cost;
  p.arrival = now;
  p.deadline_abs =
      request.deadline_work > 0 ? now + request.deadline_work : 0;
  p.cancel = request.cancel;
  p.threaded = threaded;
  p.request_id = request_id;
  p.attempt = request.attempt;
  metrics_->gauge(kMetricServeOutstandingWorkPeak)
      ->SetMax(pool_.outstanding());
  *ticket = t;

  if (slot_free) {
    ++running_;
    p.dispatch_time = now;
    p.state = PendingState::kDispatched;
    metrics_->counter(kMetricServeAdmitted)->Increment();
    metrics_->gauge(kMetricServeInflightPeak)
        ->SetMax(static_cast<double>(running_));
    if (telemetry_ != nullptr) {
      telemetry_->Record(tnow, "request.admitted",
                         {{"request_id", std::to_string(request_id)},
                          {"ticket", std::to_string(t)},
                          {"session", std::to_string(session_id)}});
      if (trace != nullptr) {
        SpanScope s(trace.get(), "admission");
        s.Attr("outcome", "run");
      }
      p.trace = std::move(trace);
    }
    return AdmitOutcome::kRun;
  }

  p.state = PendingState::kWaiting;
  p.queue_deadline = p.deadline_abs > 0 ? p.deadline_abs : kInfDeadline;
  p.queue_seq = next_queue_seq_++;
  queue_.Push(p.queue_deadline, p.queue_seq, t);
  metrics_->counter(kMetricServeQueued)->Increment();
  metrics_->gauge(kMetricServeQueueDepthPeak)
      ->SetMax(static_cast<double>(queue_.size()));
  if (telemetry_ != nullptr) {
    telemetry_->Record(tnow, "request.queued",
                       {{"request_id", std::to_string(request_id)},
                        {"ticket", std::to_string(t)},
                        {"depth", std::to_string(queue_.size())}});
    if (trace != nullptr) {
      SpanScope s(trace.get(), "admission");
      s.Attr("outcome", "queued");
      s.Attr("queue_depth", static_cast<int64_t>(queue_.size()));
    }
    p.trace = std::move(trace);
  }
  (void)lock;
  return AdmitOutcome::kQueued;
}

AdmitOutcome SessionManager::Offer(uint64_t session_id,
                                   const ServeRequest& request, double now,
                                   ServeResponse* shed, uint64_t* ticket) {
  std::unique_lock<std::mutex> lock(mu_);
  return AdmitLocked(lock, session_id, request, now, /*threaded=*/false,
                     shed, ticket);
}

ServeResponse SessionManager::ExecuteLocked(uint64_t ticket, double now) {
  // Snapshot everything the execution needs, then run without mu_ so
  // other requests admit/complete concurrently (threaded mode).
  PlannedQuery* plan;
  std::shared_ptr<const EpochSnapshot> snapshot;
  const std::atomic<bool>* cancel;
  double deadline_rem, session_rem;
  uint64_t session_id;
  {
    std::lock_guard<std::mutex> lock(mu_);
    PendingRequest& p = pending_.at(ticket);
    plan = &p.plan;
    snapshot = p.snapshot;
    cancel = p.cancel;
    session_id = p.session_id;
    deadline_rem =
        p.deadline_abs > 0 ? p.deadline_abs - now : kInfDeadline;
    session_rem = SessionRemainingLocked(session_id);
  }

  ServeResponse resp;
  resp.epoch = snapshot != nullptr ? snapshot->epoch : 0;

  // The request's governor budget is carved from whichever bound is
  // tighter: what's left of its deadline (in work units of virtual
  // time) or what's left of its session's budget.
  double bound = std::min(deadline_rem, session_rem);
  bool deadline_binding = deadline_rem <= session_rem;
  ResourceLimits limits;
  if (bound != kInfDeadline) {
    // Truncation (not ceil): a request may not overrun its deadline by a
    // fraction of a work unit.
    limits.work_units = std::max<int64_t>(static_cast<int64_t>(bound), 1);
  }
  ResourceGovernor governor(limits);

  ExecMetrics m;
  Status status;
  {
    std::shared_lock<std::shared_mutex> db_lock(db_mu_);
    Executor executor(*db_);
    ExecOptions options;
    options.governor = &governor;
    options.metrics = metrics_;
    options.vectorized_scan = config_.vectorized_scan;
    options.exec_threads = config_.exec_threads;
    options.snapshot = snapshot.get();
    options.cancel = cancel;
    options.faults = FaultInjector::Global();
    Result<std::vector<Row>> rows = executor.Run(*plan->root, &m, options);
    if (rows.ok()) {
      resp.rows_out = static_cast<int64_t>(rows->size());
      status = Status::OK();
    } else {
      status = rows.status();
    }
  }
  resp.work = m.work;
  resp.status = status;

  std::lock_guard<std::mutex> lock(mu_);
  double tnow = now;
  if (telemetry_ != nullptr) tnow = telemetry_->Advance(now);
  auto sit = sessions_.find(session_id);
  if (sit != sessions_.end()) sit->second.spent += m.work;
  const char* outcome;
  const char* postmortem_trigger = nullptr;
  if (status.ok()) {
    metrics_->counter(kMetricServeCompleted)->Increment();
    // Integer work units accumulate exactly, so per-window deltas of
    // this gauge (the goodput numerator) are deterministic.
    metrics_->gauge(kMetricServeCompletedWork)->Add(m.work);
    outcome = "completed";
  } else if (status.code() == StatusCode::kResourceExhausted &&
             deadline_binding && bound != kInfDeadline) {
    metrics_->counter(kMetricServeExpiredMidQuery)->Increment();
    outcome = "expired_mid_query";
    postmortem_trigger = "governor.deadline";
  } else if (status.code() == StatusCode::kResourceExhausted &&
             !deadline_binding && bound != kInfDeadline) {
    metrics_->counter(kMetricServeShedSession)->Increment();
    outcome = "shed_session";
    postmortem_trigger = "governor.session";
  } else {
    // Cancellation, injected mid-query faults, and organic errors.
    metrics_->counter(kMetricServeFailed)->Increment();
    outcome = "failed";
    if (IsInjectedFault(status)) {
      metrics_->counter(kMetricServeFaultsInjected)->Increment();
      postmortem_trigger = "fault.mid_query";
    }
  }
  if (telemetry_ != nullptr) {
    PendingRequest& p = pending_.at(ticket);
    telemetry_->Record(tnow, "execute.done",
                       {{"request_id", std::to_string(p.request_id)},
                        {"ticket", std::to_string(ticket)},
                        {"outcome", outcome},
                        {"rows", std::to_string(resp.rows_out)},
                        {"work", StrFormat("%.17g", m.work)},
                        {"epoch", std::to_string(resp.epoch)}});
    if (p.trace != nullptr) {
      SpanScope s(p.trace.get(), "execute");
      s.Attr("outcome", outcome);
      s.Attr("status", status.message());
      s.Attr("rows", resp.rows_out);
      s.Attr("work", m.work);
      s.Attr("epoch", static_cast<int64_t>(resp.epoch));
      s.Attr("deadline_binding", deadline_binding && bound != kInfDeadline);
    }
    if (postmortem_trigger != nullptr) {
      PostmortemLocked(postmortem_trigger, tnow, p.request_id, ticket,
                       status, p.plan.Explain());
    }
  }
  return resp;
}

ServeResponse SessionManager::ExecuteTicket(uint64_t ticket, double now) {
  return ExecuteLocked(ticket, now);
}

uint64_t SessionManager::RetireAndDispatchLocked(uint64_t ticket,
                                                 double now) {
  auto it = pending_.find(ticket);
  XS_CHECK(it != pending_.end());
  PendingRequest& p = it->second;
  double tnow = now;
  if (telemetry_ != nullptr) tnow = telemetry_->Advance(now);
  pool_.Release(p.est_work);
  --running_;
  metrics_->histogram(kMetricServeLatencyWork)->Observe(now - p.arrival);
  metrics_->histogram(kMetricServeQueueWaitWork)
      ->Observe(p.dispatch_time - p.arrival);
  if (telemetry_ != nullptr) {
    telemetry_->Record(
        tnow, "request.complete",
        {{"request_id", std::to_string(p.request_id)},
         {"ticket", std::to_string(ticket)},
         {"latency_work", StrFormat("%.17g", now - p.arrival)},
         {"queue_wait_work",
          StrFormat("%.17g", p.dispatch_time - p.arrival)}});
    if (p.trace != nullptr) {
      {
        SpanScope s(p.trace.get(), "complete");
        s.Attr("latency_work", now - p.arrival);
        s.Attr("queue_wait_work", p.dispatch_time - p.arrival);
      }
      telemetry_->FinishTrace(p.request_id, p.attempt, std::move(p.trace));
    }
  }
  pending_.erase(it);

  while (!queue_.Empty()) {
    QueuedAdmission q = queue_.PopFront();
    PendingRequest& n = pending_.at(q.ticket);
    if (n.deadline_abs > 0 && now >= n.deadline_abs) {
      metrics_->counter(kMetricServeExpiredInQueue)->Increment();
      pool_.Release(n.est_work);
      if (telemetry_ != nullptr) {
        Status expired =
            ResourceExhausted("deadline expired in admission queue");
        telemetry_->Record(
            tnow, "expired.queue",
            {{"request_id", std::to_string(n.request_id)},
             {"ticket", std::to_string(q.ticket)},
             {"deadline_abs", StrFormat("%.17g", n.deadline_abs)}});
        PostmortemLocked("expired.queue", tnow, n.request_id, q.ticket,
                         expired, n.plan.Explain());
        if (n.trace != nullptr) {
          {
            SpanScope s(n.trace.get(), "expired_in_queue");
            s.Attr("deadline_abs", n.deadline_abs);
          }
          telemetry_->FinishTrace(n.request_id, n.attempt,
                                  std::move(n.trace));
        }
      }
      if (n.threaded) {
        // The owning Submit thread reaps its own entry.
        n.state = PendingState::kExpired;
        n.response.status =
            ResourceExhausted("deadline expired in admission queue");
        continue;
      }
      pending_.erase(q.ticket);
      continue;
    }
    ++running_;
    n.dispatch_time = now;
    n.state = PendingState::kDispatched;
    metrics_->counter(kMetricServeAdmitted)->Increment();
    metrics_->gauge(kMetricServeInflightPeak)
        ->SetMax(static_cast<double>(running_));
    if (telemetry_ != nullptr) {
      telemetry_->Record(tnow, "request.dispatched",
                         {{"request_id", std::to_string(n.request_id)},
                          {"ticket", std::to_string(q.ticket)}});
    }
    return q.ticket;
  }
  return 0;
}

uint64_t SessionManager::CompleteTicket(uint64_t ticket, double now) {
  std::lock_guard<std::mutex> lock(mu_);
  return RetireAndDispatchLocked(ticket, now);
}

ServeResponse SessionManager::Submit(uint64_t session_id,
                                     const ServeRequest& request) {
  uint64_t ticket = 0;
  ServeResponse resp;
  AdmitOutcome outcome;
  {
    std::unique_lock<std::mutex> lock(mu_);
    outcome = AdmitLocked(lock, session_id, request, /*now=*/0,
                          /*threaded=*/true, &resp, &ticket);
    if (outcome == AdmitOutcome::kShed) return resp;

    if (outcome == AdmitOutcome::kQueued) {
      PendingRequest& p = pending_.at(ticket);
      auto dispatched = [&p] {
        return p.state != PendingState::kWaiting;
      };
      if (request.wall_queue_wait_seconds > 0) {
        bool ok = cv_.wait_for(
            lock,
            std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                std::chrono::duration<double>(
                    request.wall_queue_wait_seconds)),
            dispatched);
        if (!ok) {
          // Timed out still waiting: remove our queue entry and account
          // the expiry ourselves.
          queue_.Remove(p.queue_deadline, p.queue_seq, ticket);
          pool_.Release(p.est_work);
          ServeResponse timeout;
          timeout.status =
              ResourceExhausted("queue wait exceeded wall deadline");
          double tnow = 0;
          if (telemetry_ != nullptr) tnow = telemetry_->Advance(0);
          metrics_->counter(kMetricServeExpiredInQueue)->Increment();
          if (telemetry_ != nullptr) {
            telemetry_->Record(tnow, "expired.queue",
                               {{"request_id",
                                 std::to_string(p.request_id)},
                                {"ticket", std::to_string(ticket)},
                                {"reason", "wall_queue_wait"}});
            PostmortemLocked("expired.queue", tnow, p.request_id, ticket,
                             timeout.status, p.plan.Explain());
            if (p.trace != nullptr) {
              {
                SpanScope s(p.trace.get(), "expired_in_queue");
                s.Attr("reason", "wall_queue_wait");
              }
              telemetry_->FinishTrace(p.request_id, p.attempt,
                                      std::move(p.trace));
            }
          }
          pending_.erase(ticket);
          return timeout;
        }
      } else {
        cv_.wait(lock, dispatched);
      }
      if (p.state == PendingState::kExpired) {
        ServeResponse expired = p.response;
        pending_.erase(ticket);
        return expired;
      }
    }
  }

  // Slot granted (kRun or dispatched from the queue): execute, then
  // retire the slot and hand it to the next waiter.
  resp = ExecuteLocked(ticket, /*now=*/0);
  {
    std::lock_guard<std::mutex> lock(mu_);
    RetireAndDispatchLocked(ticket, /*now=*/0);
  }
  cv_.notify_all();
  return resp;
}

Status SessionManager::AppendAndPublish(const std::string& table,
                                        const std::vector<Row>& rows,
                                        double now) {
  // All-or-nothing versus injected publish faults: checked before any
  // mutation so a failed publish leaves no half-visible rows.
  Status fault = FaultInjector::Global()->Check(kFaultSiteServeEpochPublish);
  if (!fault.ok()) {
    std::unique_lock<std::mutex> lock(mu_, std::defer_lock);
    double tnow = now;
    if (telemetry_ != nullptr) {
      lock.lock();
      tnow = telemetry_->Advance(now);
    }
    if (IsInjectedFault(fault)) {
      metrics_->counter(kMetricServeFaultsInjected)->Increment();
    }
    if (telemetry_ != nullptr) {
      telemetry_->Record(tnow, "fault.publish",
                         {{"table", table},
                          {"status", std::string(fault.message())}});
      PostmortemLocked("fault.publish", tnow, /*request_id=*/0,
                       /*ticket=*/0, fault, "");
    }
    return fault;
  }

  Status index_status = Status::OK();
  {
    std::unique_lock<std::shared_mutex> db_lock(db_mu_);
    if (db_->HasMaterializedViews()) {
      return FailedPrecondition(
          "append refused: materialized views would go stale (drop them "
          "before appending)");
    }
    Table* t = db_->FindTable(table);
    if (t == nullptr) return NotFound("table " + table);
    for (const Row& row : rows) t->AppendRow(row);

    // Static B+-tree indexes are rebuilt, not maintained; same names, so
    // existing plans keep resolving. A failed rebuild (chaos can fire
    // catalog.index_build) degrades that index to heap scans — reported,
    // not fatal, and the catalog below reflects whatever survived.
    std::vector<IndexDef> defs;
    for (const BTreeIndex* idx : db_->IndexesOn(table)) {
      defs.push_back(idx->def());
    }
    for (const IndexDef& def : defs) {
      db_->DropIndex(def.name);
      Status rebuilt = db_->CreateIndex(def, config_.exec_threads);
      if (!rebuilt.ok() && index_status.ok()) index_status = rebuilt;
    }
    db_->PublishEpoch();
    CatalogDesc rebuilt = db_->BuildCatalogDesc();
    std::lock_guard<std::mutex> lock(mu_);
    catalog_ = std::move(rebuilt);
    double tnow = now;
    if (telemetry_ != nullptr) tnow = telemetry_->Advance(now);
    metrics_->counter(kMetricServeEpochsPublished)->Increment();
    if (telemetry_ != nullptr) {
      telemetry_->Record(tnow, "epoch.publish",
                         {{"table", table},
                          {"epoch", std::to_string(db_->current_epoch())},
                          {"rows", std::to_string(rows.size())}});
    }
  }
  return index_status;
}

Result<ShredStats> SessionManager::IngestAndPublish(std::string_view xml,
                                                    double now) {
  // Same all-or-nothing ordering as AppendAndPublish: the publish fault
  // fires before any mutation, and a failed shred rolls itself back.
  Status fault = FaultInjector::Global()->Check(kFaultSiteServeEpochPublish);
  if (!fault.ok()) {
    std::unique_lock<std::mutex> lock(mu_, std::defer_lock);
    double tnow = now;
    if (telemetry_ != nullptr) {
      lock.lock();
      tnow = telemetry_->Advance(now);
    }
    if (IsInjectedFault(fault)) {
      metrics_->counter(kMetricServeFaultsInjected)->Increment();
    }
    if (telemetry_ != nullptr) {
      telemetry_->Record(tnow, "fault.publish",
                         {{"table", "<ingest>"},
                          {"status", std::string(fault.message())}});
      PostmortemLocked("fault.publish", tnow, /*request_id=*/0,
                       /*ticket=*/0, fault, "");
    }
    return fault;
  }

  std::unique_lock<std::shared_mutex> db_lock(db_mu_);
  if (db_->HasMaterializedViews()) {
    return FailedPrecondition(
        "ingest refused: materialized views would go stale (drop them "
        "before ingesting)");
  }
  StreamShredOptions options;
  options.threads = config_.ingest_threads;
  options.metrics = metrics_;
  auto stats = ShredStream(xml, tree_, mapping_, db_, options);
  if (!stats.ok()) return stats.status();

  db_->PublishEpoch();
  CatalogDesc rebuilt = db_->BuildCatalogDesc();
  std::lock_guard<std::mutex> lock(mu_);
  catalog_ = std::move(rebuilt);
  double tnow = now;
  if (telemetry_ != nullptr) tnow = telemetry_->Advance(now);
  metrics_->counter(kMetricServeEpochsPublished)->Increment();
  if (telemetry_ != nullptr) {
    telemetry_->Record(tnow, "epoch.publish",
                       {{"table", "<ingest>"},
                        {"epoch", std::to_string(db_->current_epoch())},
                        {"rows", std::to_string(stats->rows)}});
  }
  return stats;
}

bool SessionManager::Idle() const {
  std::lock_guard<std::mutex> lock(mu_);
  return running_ == 0 && queue_.Empty() && pending_.empty() &&
         pool_.outstanding() == 0;
}

bool SessionManager::HasPending(uint64_t ticket) const {
  std::lock_guard<std::mutex> lock(mu_);
  return pending_.find(ticket) != pending_.end();
}

size_t SessionManager::queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

int SessionManager::running() const {
  std::lock_guard<std::mutex> lock(mu_);
  return running_;
}

double SessionManager::outstanding_work() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pool_.outstanding();
}

}  // namespace xmlshred
