// Assertion and logging macros.
//
// XS_CHECK* terminate the process on violation — they guard internal
// invariants, not user input (user input errors surface as Status).

#ifndef XMLSHRED_COMMON_LOGGING_H_
#define XMLSHRED_COMMON_LOGGING_H_

#include <cstdio>
#include <cstdlib>

namespace xmlshred::internal_logging {

[[noreturn]] inline void CheckFail(const char* file, int line,
                                   const char* expr) {
  std::fprintf(stderr, "CHECK failed at %s:%d: %s\n", file, line, expr);
  std::abort();
}

}  // namespace xmlshred::internal_logging

#define XS_CHECK(cond)                                                  \
  do {                                                                  \
    if (!(cond)) {                                                      \
      ::xmlshred::internal_logging::CheckFail(__FILE__, __LINE__,       \
                                              #cond);                  \
    }                                                                   \
  } while (false)

#define XS_CHECK_EQ(a, b) XS_CHECK((a) == (b))
#define XS_CHECK_NE(a, b) XS_CHECK((a) != (b))
#define XS_CHECK_LT(a, b) XS_CHECK((a) < (b))
#define XS_CHECK_LE(a, b) XS_CHECK((a) <= (b))
#define XS_CHECK_GT(a, b) XS_CHECK((a) > (b))
#define XS_CHECK_GE(a, b) XS_CHECK((a) >= (b))

#define XS_CHECK_OK(expr)                                               \
  do {                                                                  \
    ::xmlshred::Status xs_check_status_ = (expr);                       \
    if (!xs_check_status_.ok()) {                                       \
      std::fprintf(stderr, "CHECK_OK failed at %s:%d: %s\n", __FILE__,  \
                   __LINE__, xs_check_status_.ToString().c_str());      \
      std::abort();                                                     \
    }                                                                   \
  } while (false)

#endif  // XMLSHRED_COMMON_LOGGING_H_
