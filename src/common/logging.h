// Assertions and the structured event log.
//
// Two layers share this header:
//
//  * XS_CHECK* terminate the process on violation — they guard internal
//    invariants, not user input (user input errors surface as Status).
//  * LogEvent / EventRing are the one structured logging substrate
//    (DESIGN.md §15): a LogEvent is a timestamped name + pre-rendered
//    key/value attributes, appended to a bounded EventRing (the flight
//    recorder) and/or retained in full for --events-out exports. There is
//    deliberately no free-form stderr logging path — anything worth
//    logging is worth exporting deterministically, so producers emit
//    LogEvents and the consumers (post-mortem bundles, JSON Lines
//    exports) render them.

#ifndef XMLSHRED_COMMON_LOGGING_H_
#define XMLSHRED_COMMON_LOGGING_H_

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

namespace xmlshred::internal_logging {

[[noreturn]] inline void CheckFail(const char* file, int line,
                                   const char* expr) {
  std::fprintf(stderr, "CHECK failed at %s:%d: %s\n", file, line, expr);
  std::abort();
}

}  // namespace xmlshred::internal_logging

#define XS_CHECK(cond)                                                  \
  do {                                                                  \
    if (!(cond)) {                                                      \
      ::xmlshred::internal_logging::CheckFail(__FILE__, __LINE__,       \
                                              #cond);                  \
    }                                                                   \
  } while (false)

#define XS_CHECK_EQ(a, b) XS_CHECK((a) == (b))
#define XS_CHECK_NE(a, b) XS_CHECK((a) != (b))
#define XS_CHECK_LT(a, b) XS_CHECK((a) < (b))
#define XS_CHECK_LE(a, b) XS_CHECK((a) <= (b))
#define XS_CHECK_GT(a, b) XS_CHECK((a) > (b))
#define XS_CHECK_GE(a, b) XS_CHECK((a) >= (b))

#define XS_CHECK_OK(expr)                                               \
  do {                                                                  \
    ::xmlshred::Status xs_check_status_ = (expr);                       \
    if (!xs_check_status_.ok()) {                                       \
      std::fprintf(stderr, "CHECK_OK failed at %s:%d: %s\n", __FILE__,  \
                   __LINE__, xs_check_status_.ToString().c_str());      \
      std::abort();                                                     \
    }                                                                   \
  } while (false)

namespace xmlshred {

// One structured event. `seq` is a per-producer monotone sequence number
// (the deterministic total order — two events at the same virtual time
// order by seq); `time` is virtual time in the deterministic drivers and
// seconds-since-origin under wall-clock recording. Attribute values are
// pre-rendered to strings by the producer (the same convention as
// TraceSpan attrs), so rendering an event never re-derives state.
struct LogEvent {
  uint64_t seq = 0;
  double time = 0;
  std::string name;  // dotted, e.g. "serve.shed.budget"
  std::vector<std::pair<std::string, std::string>> attrs;
};

// Renders one event as a compact single-line JSON object (no trailing
// newline): {"seq":3,"time":120,"name":"...","attrs":{...}}.
void AppendLogEventJson(std::string* out, const LogEvent& event);

// One event per line, each a complete JSON document (JSON Lines).
std::string LogEventsToJsonLines(const std::vector<LogEvent>& events);

// Bounded ring of the most recent events — the flight recorder. Appends
// past capacity overwrite the oldest entry; Tail() returns the surviving
// window oldest-first. Storage is reserved up-front so steady-state
// appends reuse slots (the event's own strings still allocate — the ring
// only exists when telemetry is enabled).
class EventRing {
 public:
  explicit EventRing(size_t capacity) : capacity_(capacity) {
    buffer_.reserve(capacity);
  }

  size_t capacity() const { return capacity_; }
  // Total events ever appended (not just retained).
  uint64_t total() const { return total_; }
  size_t size() const { return buffer_.size(); }

  void Append(LogEvent event) {
    if (capacity_ == 0) return;
    if (buffer_.size() < capacity_) {
      buffer_.push_back(std::move(event));
    } else {
      buffer_[static_cast<size_t>(total_ % capacity_)] = std::move(event);
    }
    ++total_;
  }

  // Retained events, oldest first.
  std::vector<LogEvent> Tail() const;

 private:
  size_t capacity_;
  uint64_t total_ = 0;
  std::vector<LogEvent> buffer_;  // ring once full; write head total_ % cap
};

}  // namespace xmlshred

#endif  // XMLSHRED_COMMON_LOGGING_H_
