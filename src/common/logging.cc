#include "common/logging.h"

#include "common/strings.h"

namespace xmlshred {

void AppendLogEventJson(std::string* out, const LogEvent& event) {
  *out += StrFormat("{\"seq\": %llu, \"time\": %.17g, \"name\": \"",
                    static_cast<unsigned long long>(event.seq), event.time);
  AppendJsonEscaped(out, event.name);
  *out += "\", \"attrs\": {";
  for (size_t i = 0; i < event.attrs.size(); ++i) {
    if (i > 0) *out += ", ";
    *out += "\"";
    AppendJsonEscaped(out, event.attrs[i].first);
    *out += "\": \"";
    AppendJsonEscaped(out, event.attrs[i].second);
    *out += "\"";
  }
  *out += "}}";
}

std::string LogEventsToJsonLines(const std::vector<LogEvent>& events) {
  std::string out;
  for (const LogEvent& event : events) {
    AppendLogEventJson(&out, event);
    out += "\n";
  }
  return out;
}

std::vector<LogEvent> EventRing::Tail() const {
  std::vector<LogEvent> out;
  out.reserve(buffer_.size());
  if (buffer_.size() < capacity_ || capacity_ == 0) {
    out = buffer_;
    return out;
  }
  size_t head = static_cast<size_t>(total_ % capacity_);  // oldest entry
  for (size_t i = 0; i < buffer_.size(); ++i) {
    out.push_back(buffer_[(head + i) % capacity_]);
  }
  return out;
}

}  // namespace xmlshred
