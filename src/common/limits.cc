#include "common/limits.h"

#include "common/strings.h"

namespace xmlshred {

ResourceGovernor::ResourceGovernor(const ResourceLimits& limits)
    : limits_(limits), start_(std::chrono::steady_clock::now()) {}

double ResourceGovernor::elapsed_seconds() const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start_)
      .count();
}

double ResourceGovernor::work_spent() const {
  std::lock_guard<std::mutex> lock(mu_);
  return work_spent_;
}

int64_t ResourceGovernor::rows_charged() const {
  std::lock_guard<std::mutex> lock(mu_);
  return rows_charged_;
}

int64_t ResourceGovernor::memory_charged() const {
  std::lock_guard<std::mutex> lock(mu_);
  return memory_charged_;
}

int ResourceGovernor::max_depth_seen() const {
  std::lock_guard<std::mutex> lock(mu_);
  return max_depth_seen_;
}

Status ResourceGovernor::Trip(std::string why) {
  if (!exhausted_.load(std::memory_order_relaxed)) {
    trip_reason_ = std::move(why);
    exhausted_.store(true, std::memory_order_release);
  }
  return ResourceExhausted(trip_reason_);
}

Status ResourceGovernor::CheckDeadlineLocked() {
  if (exhausted_.load(std::memory_order_relaxed)) {
    return ResourceExhausted(trip_reason_);
  }
  if (limits_.wall_clock_seconds > 0) {
    double elapsed = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - start_)
                         .count();
    if (elapsed > limits_.wall_clock_seconds) {
      return Trip("wall-clock deadline passed");
    }
  }
  return Status::OK();
}

Status ResourceGovernor::ChargeWork(double units) {
  std::lock_guard<std::mutex> lock(mu_);
  work_spent_ += units;
  if (exhausted_.load(std::memory_order_relaxed)) {
    return ResourceExhausted(trip_reason_);
  }
  if (limits_.work_units > 0 &&
      work_spent_ > static_cast<double>(limits_.work_units)) {
    return Trip(StrFormat("work budget of %lld units spent",
                          static_cast<long long>(limits_.work_units)));
  }
  return CheckDeadlineLocked();
}

Status ResourceGovernor::ChargeRows(int64_t rows) {
  std::lock_guard<std::mutex> lock(mu_);
  rows_charged_ += rows;
  if (exhausted_.load(std::memory_order_relaxed)) {
    return ResourceExhausted(trip_reason_);
  }
  if (limits_.max_rows > 0 && rows_charged_ > limits_.max_rows) {
    return Trip(StrFormat("row cap of %lld exceeded",
                          static_cast<long long>(limits_.max_rows)));
  }
  return Status::OK();
}

Status ResourceGovernor::ChargeMemory(int64_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  memory_charged_ += bytes;
  if (exhausted_.load(std::memory_order_relaxed)) {
    return ResourceExhausted(trip_reason_);
  }
  if (limits_.max_memory_bytes > 0 &&
      memory_charged_ > limits_.max_memory_bytes) {
    return Trip(StrFormat("memory cap of %lld bytes exceeded",
                          static_cast<long long>(limits_.max_memory_bytes)));
  }
  return Status::OK();
}

Status ResourceGovernor::CheckDeadline() {
  std::lock_guard<std::mutex> lock(mu_);
  return CheckDeadlineLocked();
}

Status ResourceGovernor::EnterRecursion() {
  std::lock_guard<std::mutex> lock(mu_);
  // Depth is a hard stack-safety bound, deliberately independent of the
  // sticky exhaustion flag: an anytime search that spent its work budget
  // must still be able to parse/plan at shallow depth while unwinding.
  int cap = limits_.max_recursion_depth > 0 ? limits_.max_recursion_depth
                                            : kDefaultMaxRecursionDepth;
  if (depth_ >= cap) {
    return ResourceExhausted(
        StrFormat("recursion depth limit %d reached", cap));
  }
  ++depth_;
  if (depth_ > max_depth_seen_) max_depth_seen_ = depth_;
  return Status::OK();
}

void ResourceGovernor::LeaveRecursion() {
  std::lock_guard<std::mutex> lock(mu_);
  if (depth_ > 0) --depth_;
}

void ResourceGovernor::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  work_spent_ = 0;
  rows_charged_ = 0;
  memory_charged_ = 0;
  depth_ = 0;
  max_depth_seen_ = 0;
  exhausted_.store(false, std::memory_order_release);
  trip_reason_.clear();
  start_ = std::chrono::steady_clock::now();
}

}  // namespace xmlshred
