#include "common/limits.h"

#include "common/strings.h"

namespace xmlshred {

ResourceGovernor::ResourceGovernor(const ResourceLimits& limits)
    : limits_(limits), start_(std::chrono::steady_clock::now()) {}

double ResourceGovernor::elapsed_seconds() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start_)
      .count();
}

Status ResourceGovernor::Trip(std::string why) {
  if (!exhausted_) {
    exhausted_ = true;
    trip_reason_ = std::move(why);
  }
  return ResourceExhausted(trip_reason_);
}

Status ResourceGovernor::ChargeWork(double units) {
  work_spent_ += units;
  if (exhausted_) return ResourceExhausted(trip_reason_);
  if (limits_.work_units > 0 &&
      work_spent_ > static_cast<double>(limits_.work_units)) {
    return Trip(StrFormat("work budget of %lld units spent",
                          static_cast<long long>(limits_.work_units)));
  }
  return CheckDeadline();
}

Status ResourceGovernor::ChargeRows(int64_t rows) {
  rows_charged_ += rows;
  if (exhausted_) return ResourceExhausted(trip_reason_);
  if (limits_.max_rows > 0 && rows_charged_ > limits_.max_rows) {
    return Trip(StrFormat("row cap of %lld exceeded",
                          static_cast<long long>(limits_.max_rows)));
  }
  return Status::OK();
}

Status ResourceGovernor::ChargeMemory(int64_t bytes) {
  memory_charged_ += bytes;
  if (exhausted_) return ResourceExhausted(trip_reason_);
  if (limits_.max_memory_bytes > 0 &&
      memory_charged_ > limits_.max_memory_bytes) {
    return Trip(StrFormat("memory cap of %lld bytes exceeded",
                          static_cast<long long>(limits_.max_memory_bytes)));
  }
  return Status::OK();
}

Status ResourceGovernor::CheckDeadline() {
  if (exhausted_) return ResourceExhausted(trip_reason_);
  if (limits_.wall_clock_seconds > 0 &&
      elapsed_seconds() > limits_.wall_clock_seconds) {
    return Trip("wall-clock deadline passed");
  }
  return Status::OK();
}

Status ResourceGovernor::EnterRecursion() {
  // Depth is a hard stack-safety bound, deliberately independent of the
  // sticky exhaustion flag: an anytime search that spent its work budget
  // must still be able to parse/plan at shallow depth while unwinding.
  int cap = limits_.max_recursion_depth > 0 ? limits_.max_recursion_depth
                                            : kDefaultMaxRecursionDepth;
  if (depth_ >= cap) {
    return ResourceExhausted(
        StrFormat("recursion depth limit %d reached", cap));
  }
  ++depth_;
  if (depth_ > max_depth_seen_) max_depth_seen_ = depth_;
  return Status::OK();
}

void ResourceGovernor::LeaveRecursion() {
  if (depth_ > 0) --depth_;
}

void ResourceGovernor::Reset() {
  work_spent_ = 0;
  rows_charged_ = 0;
  memory_charged_ = 0;
  depth_ = 0;
  max_depth_seen_ = 0;
  exhausted_ = false;
  trip_reason_.clear();
  start_ = std::chrono::steady_clock::now();
}

}  // namespace xmlshred
