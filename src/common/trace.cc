#include "common/trace.h"

#include "common/strings.h"

namespace xmlshred {

std::string RenderJsonDurationNs(double ns, bool include_timing) {
  return StrFormat("%.17g", include_timing ? ns : 0.0);
}

TraceSpan* TraceSink::Open(std::string_view name) {
  auto span = std::make_unique<TraceSpan>();
  span->name = std::string(name);
  TraceSpan* raw = span.get();
  if (open_.empty()) {
    roots_.push_back(std::move(span));
  } else {
    open_.back()->children.push_back(std::move(span));
  }
  open_.push_back(raw);
  return raw;
}

void TraceSink::Close(TraceSpan* span) {
  // Scopes are stack-disciplined, so the closing span is the innermost.
  if (!open_.empty() && open_.back() == span) open_.pop_back();
}

void TraceSink::Adopt(TraceSink* detached) {
  if (detached == nullptr || detached->roots_.empty()) return;
  std::vector<std::unique_ptr<TraceSpan>>& target =
      open_.empty() ? roots_ : open_.back()->children;
  for (auto& span : detached->roots_) target.push_back(std::move(span));
  detached->roots_.clear();
  detached->open_.clear();
}

namespace {

void AppendSpanJson(std::string* out, const TraceSpan& span, int indent,
                    bool include_timing) {
  std::string pad(static_cast<size_t>(indent), ' ');
  *out += pad + "{\"name\": \"";
  AppendJsonEscaped(out, span.name);
  *out += "\", \"attrs\": {";
  for (size_t i = 0; i < span.attrs.size(); ++i) {
    if (i > 0) *out += ", ";
    *out += "\"";
    AppendJsonEscaped(out, span.attrs[i].first);
    *out += "\": \"";
    AppendJsonEscaped(out, span.attrs[i].second);
    *out += "\"";
  }
  *out += "}, \"duration_ns\": " +
          RenderJsonDurationNs(span.duration_ns, include_timing) +
          ", \"children\": [";
  if (!span.children.empty()) {
    *out += "\n";
    for (size_t i = 0; i < span.children.size(); ++i) {
      AppendSpanJson(out, *span.children[i], indent + 2, include_timing);
      *out += i + 1 < span.children.size() ? ",\n" : "\n";
    }
    *out += pad;
  }
  *out += "]}";
}

}  // namespace

bool DeterministicHeadSample(uint64_t seed, uint64_t key, int period) {
  if (period <= 0) return false;
  if (period == 1) return true;
  // splitmix64 finalizer, same generator as common/rng.h.
  uint64_t z = seed ^ key ^ 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  z ^= z >> 31;
  return z % static_cast<uint64_t>(period) == 0;
}

std::string TraceRootsSampledToJson(const TraceSink& sink, int period,
                                    uint64_t seed, bool include_timing) {
  std::vector<const TraceSpan*> sampled;
  const auto& roots = sink.roots();
  for (size_t i = 0; i < roots.size(); ++i) {
    if (DeterministicHeadSample(seed, static_cast<uint64_t>(i), period)) {
      sampled.push_back(roots[i].get());
    }
  }
  std::string out = "{\n  \"schema_version\": 1,\n  \"spans\": [\n";
  for (size_t i = 0; i < sampled.size(); ++i) {
    AppendSpanJson(&out, *sampled[i], 4, include_timing);
    out += i + 1 < sampled.size() ? ",\n" : "\n";
  }
  out += "  ]\n}\n";
  return out;
}

std::string TraceSink::ToJson(bool include_timing) const {
  std::string out = "{\n  \"schema_version\": 1,\n  \"spans\": [\n";
  for (size_t i = 0; i < roots_.size(); ++i) {
    AppendSpanJson(&out, *roots_[i], 4, include_timing);
    out += i + 1 < roots_.size() ? ",\n" : "\n";
  }
  out += "  ]\n}\n";
  return out;
}

void SpanScope::Attr(std::string_view key, std::string value) {
  if (span_ == nullptr) return;
  span_->attrs.emplace_back(std::string(key), std::move(value));
}

void SpanScope::Attr(std::string_view key, int64_t value) {
  if (span_ == nullptr) return;
  span_->attrs.emplace_back(std::string(key),
                            std::to_string(value));
}

void SpanScope::Attr(std::string_view key, double value) {
  if (span_ == nullptr) return;
  span_->attrs.emplace_back(std::string(key), StrFormat("%.17g", value));
}

}  // namespace xmlshred
