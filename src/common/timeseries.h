// Windowed time-series recorder over a MetricsRegistry (DESIGN.md §15).
//
// The metrics registry holds cumulative totals: perfect for end-of-run
// reports, useless for "when did goodput collapse during the soak". The
// TimeSeriesRecorder closes that gap by snapshotting a registry at fixed-
// width window boundaries and emitting one record per window holding
//
//  * counter *deltas* for every counter matching a configured prefix
//    (the key set is stable because the registry pre-registers its
//    well-known names),
//  * gauge *deltas* (value at close minus value at the previous close)
//    for every matching accumulating gauge — flows like exec.work, not
//    SetMax peaks, whose cumulative max has no meaningful windowed delta
//    and would break rerun-invariance on a registry shared across runs,
//  * per-window quantiles (p50/p95/p99) derived from the integer bucket
//    deltas of selected histograms — a quantile is the upper bound of the
//    first bucket whose cumulative delta count reaches the rank, computed
//    in integer arithmetic, so it is bit-identical at any thread count,
//  * SLO derivations: completed/expired/shed deltas, goodput (completed
//    work per window-width unit) and the deadline-hit rate.
//
// Time discipline: windows are [k*w, (k+1)*w). The owner calls
// AdvanceTo(now) BEFORE recording the effects of an event at `now`, so an
// event landing exactly on a window boundary belongs to the *next*
// window. Under the virtual-time serving drivers `now` is virtual work
// units and the recorder performs ZERO clock reads; with
// `capture_wall_time` (real serving) each closed window additionally
// stamps `wall_ns` and wall-latency quantiles, and every steady-clock
// read is counted in clock_reads() so tests can assert the zero-read
// contract of the deterministic paths.

#ifndef XMLSHRED_COMMON_TIMESERIES_H_
#define XMLSHRED_COMMON_TIMESERIES_H_

#include <chrono>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/metrics.h"

namespace xmlshred {

struct TimeSeriesOptions {
  // Window width in the caller's time unit (virtual work units or
  // seconds). <= 0 disables the recorder entirely.
  double window_width = 0;
  // Counters / gauges whose name starts with one of these prefixes are
  // carried per window (both as within-window deltas). List only
  // accumulating flow gauges here — a SetMax peak gauge's windowed delta
  // is meaningless and rerun-dependent on a shared registry.
  std::vector<std::string> counter_prefixes = {"serve.", "exec."};
  std::vector<std::string> gauge_prefixes = {"exec.",
                                             "serve.completed_work"};
  // Histograms whose per-window bucket deltas yield p50/p95/p99.
  std::vector<std::string> quantile_histograms = {"serve.latency_work",
                                                  "serve.queue_wait_work"};
  // SLO inputs: counter names summed into the completed/expired/shed
  // deltas, and the gauge whose delta is completed work.
  std::string completed_counter = "serve.completed";
  std::vector<std::string> expired_counters = {"serve.expired_in_queue",
                                               "serve.expired_mid_query"};
  std::vector<std::string> shed_counters = {"serve.shed_queue_full",
                                            "serve.shed_budget",
                                            "serve.shed_session"};
  std::string completed_work_gauge = kMetricServeCompletedWork;
  // Read the steady clock at each window close (wall_ns key) and expose
  // wall-latency quantiles. Off = the recorder never reads a clock.
  bool capture_wall_time = false;
};

struct WindowQuantiles {
  int64_t count = 0;
  double p50 = 0;
  double p95 = 0;
  double p99 = 0;
};

struct TimeSeriesWindow {
  int64_t index = 0;
  double start = 0;
  double end = 0;
  std::map<std::string, int64_t> counters;  // deltas within the window
  std::map<std::string, double> gauges;     // deltas within the window
  std::map<std::string, WindowQuantiles> quantiles;
  // SLO derivations.
  int64_t completed = 0;
  int64_t expired = 0;
  int64_t shed = 0;
  double completed_work = 0;
  double goodput = 0;            // completed_work / (end - start)
  double deadline_hit_rate = 0;  // completed / (completed + expired); 1
                                 // when neither occurred
  // Wall-clock close time (ns since recorder construction); present only
  // under capture_wall_time and stripped by tools/strip_timing_keys.py.
  double wall_ns = 0;

  // One compact JSON object (single line, no trailing newline).
  std::string ToJson(bool include_wall) const;
};

// Derives p50/p95/p99 from log-scale bucket deltas (pairs of bucket
// index, delta count). Pure integer rank arithmetic; exposed for tests.
WindowQuantiles QuantilesFromBucketDeltas(
    const std::vector<std::pair<int, int64_t>>& deltas);

class TimeSeriesRecorder {
 public:
  // `registry` must outlive the recorder. The construction snapshot is
  // window 0's baseline, so a registry carrying earlier runs' totals
  // still yields correct deltas.
  TimeSeriesRecorder(MetricsRegistry* registry, TimeSeriesOptions options);

  TimeSeriesRecorder(const TimeSeriesRecorder&) = delete;
  TimeSeriesRecorder& operator=(const TimeSeriesRecorder&) = delete;

  // Closes every window whose end <= now. Call BEFORE recording the
  // effects of the event at `now`.
  void AdvanceTo(double now);

  // Closes the final (possibly partial) window covering `now`. No-op
  // when nothing happened since the last boundary.
  void Finish(double now);

  // Seconds since construction read from the steady clock — the wall
  // analogue of virtual `now` for real-thread serving. Counted in
  // clock_reads(); callers must gate on capture_wall_time themselves.
  double WallSeconds();

  const std::vector<TimeSeriesWindow>& windows() const { return windows_; }
  bool enabled() const { return options_.window_width > 0; }
  double window_width() const { return options_.window_width; }
  // Time the recorder has been advanced to (start of the open window
  // plus any partial progress).
  double now() const { return advanced_to_; }

  // JSON Lines: one TimeSeriesWindow::ToJson per line.
  std::string ToJsonLines() const;
  // FNV-1a hex digest of ToJsonLines() with wall keys excluded — the
  // cross-thread-count comparison handle.
  std::string Digest() const;

  // Steady-clock reads performed so far (0 unless capture_wall_time).
  int64_t clock_reads() const { return clock_reads_; }

 private:
  void CloseWindow(double end);

  MetricsRegistry* registry_;
  TimeSeriesOptions options_;
  MetricsSnapshot prev_;
  std::vector<TimeSeriesWindow> windows_;
  double window_start_ = 0;
  double advanced_to_ = 0;
  int64_t clock_reads_ = 0;
  std::chrono::steady_clock::time_point origin_{};
  bool origin_set_ = false;
};

}  // namespace xmlshred

#endif  // XMLSHRED_COMMON_TIMESERIES_H_
