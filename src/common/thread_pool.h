// Fixed-size FIFO thread pool for the search pipeline.
//
// Deliberately work-stealing-free: tasks are pulled from a single FIFO
// queue under one mutex, so the pool adds no scheduling state of its own
// and a given task set always performs the same work regardless of which
// worker runs which task. Determinism of *results* is the caller's job —
// the search algorithms achieve it by writing each task's output into a
// pre-assigned slot and reducing the slots in submission order
// (see search/greedy.cc and DESIGN.md §8).
//
// ParallelFor is the only entry point the search uses: it runs
// fn(0..n-1), inline on the calling thread when the pool would have a
// single worker (the exact legacy serial path — no threads are spawned,
// no mutex is taken), and on the pool otherwise. A `stop` predicate lets
// anytime loops skip tasks that have not started once the budget trips.

#ifndef XMLSHRED_COMMON_THREAD_POOL_H_
#define XMLSHRED_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace xmlshred {

class ThreadPool {
 public:
  // Spawns `num_threads` workers; values < 1 are clamped to 1.
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()); }

  // Enqueues one task. Tasks start in FIFO order.
  void Submit(std::function<void()> task);

  // Blocks until every submitted task has finished.
  void Wait();

  // std::thread::hardware_concurrency with a floor of 1.
  static int HardwareThreads();

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable work_ready_;
  std::condition_variable idle_;
  std::deque<std::function<void()>> queue_;
  int in_flight_ = 0;  // queued + currently running tasks
  bool shutting_down_ = false;
  std::vector<std::thread> workers_;
};

// Resolves a SearchOptions-style thread count: <= 0 means "use all
// hardware threads", anything else is taken as-is.
int ResolveNumThreads(int requested);

// Runs fn(0), ..., fn(n - 1). With `num_threads` <= 1 the calls happen
// inline, in order, on the calling thread; otherwise they are dispatched
// to a transient pool of `num_threads` workers and this call blocks until
// all have finished. When `stop` is non-null, a task whose turn comes
// after stop() turned true is skipped (already-running tasks finish).
// fn must confine its effects to per-index state; reduce afterwards.
void ParallelFor(int num_threads, int n,
                 const std::function<void(int)>& fn,
                 const std::function<bool()>& stop = nullptr);

}  // namespace xmlshred

#endif  // XMLSHRED_COMMON_THREAD_POOL_H_
