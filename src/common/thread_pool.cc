#include "common/thread_pool.h"

#include <algorithm>

namespace xmlshred {

ThreadPool::ThreadPool(int num_threads) {
  int n = std::max(num_threads, 1);
  workers_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  work_ready_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_ready_.wait(lock,
                       [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutting down
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (--in_flight_ == 0) idle_.notify_all();
    }
  }
}

int ThreadPool::HardwareThreads() {
  unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

int ResolveNumThreads(int requested) {
  return requested <= 0 ? ThreadPool::HardwareThreads() : requested;
}

void ParallelFor(int num_threads, int n, const std::function<void(int)>& fn,
                 const std::function<bool()>& stop) {
  if (n <= 0) return;
  if (num_threads <= 1 || n == 1) {
    for (int i = 0; i < n; ++i) {
      if (stop != nullptr && stop()) break;
      fn(i);
    }
    return;
  }
  ThreadPool pool(std::min(num_threads, n));
  for (int i = 0; i < n; ++i) {
    pool.Submit([&fn, &stop, i] {
      if (stop != nullptr && stop()) return;
      fn(i);
    });
  }
  pool.Wait();
}

}  // namespace xmlshred
