// ExecContext — the one execution-environment carrier threaded through
// the search, advisor, executor, and parser entry points.
//
// It replaces the ad-hoc per-struct members that accreted across PRs 1-2
// (a `ResourceGovernor*` on DesignProblem/TunerOptions/PlannerOptions, a
// duplicated `num_threads` on every options struct) with one value-type
// bundle of everything "how to run" — as opposed to the options structs,
// which stay "what to compute". Every pointer is optional:
//
//   governor   null = unlimited (parser recursion still has its floor)
//   faults     null = the process-global FaultInjector
//   metrics    null = nothing recorded
//   trace      null = nothing traced
//
// Migration map (DESIGN.md §9): the legacy fields still work — entry
// points resolve `exec.governor ? exec.governor : legacy_governor`, and
// `exec.num_threads > 0` overrides the options-struct thread count.

#ifndef XMLSHRED_COMMON_EXEC_CONTEXT_H_
#define XMLSHRED_COMMON_EXEC_CONTEXT_H_

#include <cstdint>

namespace xmlshred {

class ResourceGovernor;
class FaultInjector;
class MetricsRegistry;
class TraceSink;

// Shared per-run execution knobs, inherited by ExecOptions (executor),
// EvaluateOptions (search/evaluate), and ServeConfig (serving layer)
// instead of each struct redeclaring the same fields. Each consumer
// documents which knobs it honors; the defaults are the bare run.
struct ExecKnobs {
  // Intra-query morsel workers. <= 1 is the exact serial executor; N > 1
  // splits scans, hash joins, sorts, and aggregates into kMorselRows
  // morsels on N workers. Results, metering, explain actuals, and
  // governor/fault trip points are bit-identical at any value
  // (DESIGN.md §13), so this is purely a latency knob.
  int exec_threads = 1;
  // Read the steady clock around instrumented operators and record wall
  // times. Off = no clock reads anywhere (the determinism gate).
  bool capture_timing = false;
  // Build and retain EXPLAIN ANALYZE trees for executed queries.
  // Harness-level: consumers that take an explicit ExplainNode* (the
  // executor) ignore it; harnesses that own the trees (EvaluateOnData)
  // honor it.
  bool collect_explain = false;
};

struct ExecContext {
  ResourceGovernor* governor = nullptr;
  FaultInjector* faults = nullptr;
  MetricsRegistry* metrics = nullptr;
  TraceSink* trace = nullptr;
  // Workers for parallel candidate costing: <= 0 defers to the options
  // struct (whose own <= 0 means one per hardware thread); 1 is the exact
  // legacy serial path.
  int num_threads = 0;
  // Workers for intra-query morsel execution (ExecOptions::exec_threads):
  // <= 1 is the exact legacy serial executor; N > 1 splits scans, hash
  // joins, and aggregates into kMorselRows morsels on N workers. Results,
  // metering, explain actuals, and governor trip points are bit-identical
  // at any value (DESIGN.md §13), so this is purely a latency knob.
  int exec_threads = 0;
  // Seed for any randomized tie-breaking an algorithm may adopt; 0 keeps
  // the deterministic default behaviour.
  uint64_t rng_seed = 0;
};

}  // namespace xmlshred

#endif  // XMLSHRED_COMMON_EXEC_CONTEXT_H_
