#include "common/fault_injection.h"

namespace xmlshred {

FaultInjector* FaultInjector::Global() {
  static FaultInjector injector;
  return &injector;
}

void FaultInjector::Arm(std::string site, int fire_on_nth) {
  std::lock_guard<std::mutex> lock(mu_);
  fire_on_[std::move(site)] = fire_on_nth;
  armed_.store(true, std::memory_order_release);
}

void FaultInjector::ArmProbabilistic(uint64_t seed, double probability) {
  std::lock_guard<std::mutex> lock(mu_);
  probabilistic_ = true;
  rng_state_ = seed;
  probability_ = probability;
  armed_.store(true, std::memory_order_release);
}

void FaultInjector::Disarm() {
  std::lock_guard<std::mutex> lock(mu_);
  armed_.store(false, std::memory_order_release);
  probabilistic_ = false;
  fire_on_.clear();
  hit_counts_.clear();
  faults_fired_ = 0;
}

int FaultInjector::faults_fired() const {
  std::lock_guard<std::mutex> lock(mu_);
  return faults_fired_;
}

int FaultInjector::hits(const std::string& site) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = hit_counts_.find(site);
  return it == hit_counts_.end() ? 0 : it->second;
}

Status FaultInjector::Check(std::string_view site) {
  if (!armed_.load(std::memory_order_acquire)) return Status::OK();
  std::string key(site);
  std::lock_guard<std::mutex> lock(mu_);
  if (!armed_.load(std::memory_order_relaxed)) return Status::OK();
  int hit = ++hit_counts_[key];
  auto it = fire_on_.find(key);
  if (it != fire_on_.end() && hit == it->second) {
    ++faults_fired_;
    return Internal("injected fault at " + key);
  }
  if (probabilistic_) {
    // splitmix64 step, same generator as common/rng.h.
    uint64_t z = (rng_state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    z ^= z >> 31;
    double draw = static_cast<double>(z >> 11) * 0x1.0p-53;
    if (draw < probability_) {
      ++faults_fired_;
      return Internal("injected fault at " + key);
    }
  }
  return Status::OK();
}

}  // namespace xmlshred
