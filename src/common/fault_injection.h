// Deterministic fault injection for robustness testing.
//
// Long-running paths declare *named injection points* — catalog mutation,
// index build, view materialization, advisor what-if calls — by calling
// FaultInjector::Global()->Check("site"). In production the injector is
// disarmed and Check is a cheap always-OK call. Tests arm it two ways:
//
//  * Arm("site", n)            — fire an Internal error on the nth hit of
//                                one site (precise, for sweeps);
//  * ArmProbabilistic(seed, p) — fire each hit with probability p, drawn
//                                from a seed-keyed splitmix64 stream, so a
//                                given (seed, p) run is reproducible.
//
// The contract under injection: callers skip the failed candidate, roll
// back any what-if state, and keep going — never crash, never corrupt
// descriptor layers. tests/robustness_test.cc sweeps every site.
//
// The injector is process-global and thread-safe: parallel search workers
// (search/greedy.cc) hit the advisor/catalog sites concurrently, so hit
// counting, the nth-hit trigger, and the probabilistic stream are
// serialized on an internal mutex. The nth hit of a site fires exactly
// once no matter how checks interleave; *which* worker's check lands nth
// depends on scheduling, so parallel tests assert survival semantics, not
// which candidate absorbed the fault. Scope arming with
// ScopedFaultInjection so a failing test cannot leak armed faults into
// later tests.

#ifndef XMLSHRED_COMMON_FAULT_INJECTION_H_
#define XMLSHRED_COMMON_FAULT_INJECTION_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace xmlshred {

// Canonical site names, listed here so tests can sweep them without
// grepping the source. Passing other names to Arm is allowed (sites and
// tests can evolve independently) but firing requires a matching Check.
inline constexpr const char* kFaultSiteCatalogCreateTable =
    "catalog.create_table";
inline constexpr const char* kFaultSiteIndexBuild = "catalog.index_build";
inline constexpr const char* kFaultSiteViewMaterialize =
    "catalog.view_materialize";
inline constexpr const char* kFaultSiteAdvisorWhatIf = "advisor.whatif";
inline constexpr const char* kFaultSiteAdvisorTune = "advisor.tune";
// Serving-layer sites (src/serve): admission control, epoch publication
// on append, and the executor's batch-boundary interrupt check.
inline constexpr const char* kFaultSiteServeAdmit = "serve.admit";
inline constexpr const char* kFaultSiteServeEpochPublish =
    "serve.epoch_publish";
inline constexpr const char* kFaultSiteServeMidQuery = "serve.mid_query";
// Executor morsel boundary (src/exec): checked once per kMorselRows rows
// on the heap-scan (scalar and vectorized), view-scan, hash-join-probe,
// and aggregate loops. The check runs on the coordinator thread in strict
// enumeration order at every thread count, so an armed nth-hit fault
// fires at the same morsel regardless of ExecOptions::exec_threads.
inline constexpr const char* kFaultSiteExecMorsel = "exec.morsel";
// Streaming shredder batch boundary (src/mapping/stream_shredder.cc):
// checked once per columnar batch flushed into storage, in deterministic
// flush order at every --ingest-threads count, so an armed nth-hit fault
// interrupts the same batch regardless of parallelism. The shredder rolls
// back all tables and dictionary entries on injection (all-or-nothing).
inline constexpr const char* kFaultSiteShredStream = "shred.stream";

class FaultInjector {
 public:
  static FaultInjector* Global();

  // Fires an Internal("injected fault at <site>") on the `fire_on_nth`
  // hit (1-based) of `site`, once.
  void Arm(std::string site, int fire_on_nth = 1);

  // Fires every hit of every site with probability `probability`, from a
  // deterministic seed-keyed stream.
  void ArmProbabilistic(uint64_t seed, double probability);

  void Disarm();

  // The injection point. OK unless an armed fault fires here. The armed
  // check is a lock-free fast path, so disarmed production runs pay one
  // relaxed atomic load.
  Status Check(std::string_view site);

  // Telemetry for tests.
  int faults_fired() const;
  int hits(const std::string& site) const;
  bool armed() const { return armed_.load(std::memory_order_acquire); }

 private:
  mutable std::mutex mu_;
  std::atomic<bool> armed_{false};
  std::map<std::string, int> hit_counts_;
  std::map<std::string, int> fire_on_;  // site -> 1-based hit index
  bool probabilistic_ = false;
  uint64_t rng_state_ = 0;
  double probability_ = 0;
  int faults_fired_ = 0;
};

// Arms the global injector for the lifetime of the scope, then disarms.
class ScopedFaultInjection {
 public:
  ScopedFaultInjection(std::string site, int fire_on_nth = 1) {
    FaultInjector::Global()->Arm(std::move(site), fire_on_nth);
  }
  ScopedFaultInjection(uint64_t seed, double probability) {
    FaultInjector::Global()->ArmProbabilistic(seed, probability);
  }
  ~ScopedFaultInjection() { FaultInjector::Global()->Disarm(); }
  ScopedFaultInjection(const ScopedFaultInjection&) = delete;
  ScopedFaultInjection& operator=(const ScopedFaultInjection&) = delete;
};

}  // namespace xmlshred

#endif  // XMLSHRED_COMMON_FAULT_INJECTION_H_
