// Hierarchical span tracer with deterministic structure.
//
// A TraceSink owns one tree of spans. SpanScope is the RAII entry point:
// it opens a span as a child of the innermost open span (or as a root),
// records attributes, and closes the span when the scope ends. A null
// sink makes every operation a no-op, so instrumented code needs no
// branches of its own.
//
// Determinism contract (DESIGN.md §9): one sink is single-threaded by
// design. Parallel sections give each task its own detached TraceSink
// (its per-thread buffer) and the owner splices the task sinks back with
// Adopt() in enumeration order during the ordered reduction — so the
// exported span *structure and attributes* are bit-identical at any
// thread count. Wall-clock durations are recorded only when the sink was
// constructed with `capture_timing` (the serial determinism path reads no
// clocks), and ToJson(/*include_timing=*/false) zeroes them for
// structural comparison.

#ifndef XMLSHRED_COMMON_TRACE_H_
#define XMLSHRED_COMMON_TRACE_H_

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace xmlshred {

// Renders a nanosecond duration for JSON export with %.17g round-trip
// precision — or exactly "0" when `include_timing` is false. The one
// zero-duration convention shared by TraceSink::ToJson and the explain
// exporter (exec/explain.h), so structure-only documents from either
// subsystem scrub timing identically.
std::string RenderJsonDurationNs(double ns, bool include_timing);

struct TraceSpan {
  std::string name;
  // Insertion-ordered key/value pairs; values pre-rendered to strings.
  std::vector<std::pair<std::string, std::string>> attrs;
  double duration_ns = 0;  // 0 unless the sink captures timing
  std::vector<std::unique_ptr<TraceSpan>> children;
};

class TraceSink {
 public:
  explicit TraceSink(bool capture_timing = false)
      : capture_timing_(capture_timing) {}

  TraceSink(const TraceSink&) = delete;
  TraceSink& operator=(const TraceSink&) = delete;

  bool capture_timing() const { return capture_timing_; }

  // Moves every root span of `detached` under this sink's innermost open
  // span (or to the roots when none is open). Call in enumeration order
  // to merge parallel workers' buffers deterministically. `detached` is
  // left empty; a null pointer is a no-op.
  void Adopt(TraceSink* detached);

  const std::vector<std::unique_ptr<TraceSpan>>& roots() const {
    return roots_;
  }
  bool empty() const { return roots_.empty(); }

  // Deterministic JSON export (schema_version 1). With
  // `include_timing` = false every duration_ns is emitted as 0, giving a
  // structure-only document for differential comparison.
  std::string ToJson(bool include_timing = true) const;

 private:
  friend class SpanScope;

  TraceSpan* Open(std::string_view name);
  void Close(TraceSpan* span);

  bool capture_timing_;
  std::vector<std::unique_ptr<TraceSpan>> roots_;
  std::vector<TraceSpan*> open_;  // innermost last
};

// Deterministic head-based sampling decision: true iff `key` falls in
// the 1-in-`period` sample keyed by `seed` (splitmix64 finalizer over
// seed ^ key, so the decision is fixed at request birth and identical on
// every replay). period <= 0 samples nothing; period == 1 samples all.
bool DeterministicHeadSample(uint64_t seed, uint64_t key, int period);

// Renders only the 1-in-`period` head-sampled root spans of `sink` as a
// spans JSON document (same shape as TraceSink::ToJson). The sampling
// key of root i is its index, so the selected subset depends only on
// (seed, period, root order).
std::string TraceRootsSampledToJson(const TraceSink& sink, int period,
                                    uint64_t seed, bool include_timing);

// RAII span. Scopes must nest (stack discipline), which the C++ scoping
// rules give for free.
class SpanScope {
 public:
  SpanScope(TraceSink* sink, std::string_view name) {
    if (sink == nullptr) return;
    sink_ = sink;
    span_ = sink->Open(name);
    if (sink->capture_timing()) {
      timed_ = true;
      start_ = std::chrono::steady_clock::now();
    }
  }
  ~SpanScope() {
    if (sink_ == nullptr) return;
    if (timed_) {
      span_->duration_ns = std::chrono::duration<double, std::nano>(
                               std::chrono::steady_clock::now() - start_)
                               .count();
    }
    sink_->Close(span_);
  }
  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;

  bool active() const { return sink_ != nullptr; }

  void Attr(std::string_view key, std::string value);
  void Attr(std::string_view key, std::string_view value) {
    Attr(key, std::string(value));
  }
  void Attr(std::string_view key, const char* value) {
    Attr(key, std::string(value));
  }
  void Attr(std::string_view key, int64_t value);
  void Attr(std::string_view key, int value) {
    Attr(key, static_cast<int64_t>(value));
  }
  void Attr(std::string_view key, double value);
  void Attr(std::string_view key, bool value) {
    Attr(key, std::string(value ? "true" : "false"));
  }

 private:
  TraceSink* sink_ = nullptr;
  TraceSpan* span_ = nullptr;
  bool timed_ = false;
  std::chrono::steady_clock::time_point start_{};
};

}  // namespace xmlshred

#endif  // XMLSHRED_COMMON_TRACE_H_
