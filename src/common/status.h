// Status and Result<T>: error propagation without exceptions.
//
// Every fallible public API in xmlshred returns a Status (no payload) or a
// Result<T> (payload on success). Errors carry a code and a human-readable
// message. Exceptions are not used across module boundaries.
//
// Example:
//   Result<int> ParsePort(std::string_view s);
//   ...
//   Result<int> port = ParsePort(arg);
//   if (!port.ok()) return port.status();
//   Listen(*port);

#ifndef XMLSHRED_COMMON_STATUS_H_
#define XMLSHRED_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <ostream>
#include <string>
#include <utility>

namespace xmlshred {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kFailedPrecondition,
  kUnimplemented,
  kInternal,
  kResourceExhausted,
};

// Returns the canonical lower-case name of `code` (e.g. "invalid argument").
const char* StatusCodeToString(StatusCode code);

// Value type describing the outcome of an operation. Cheap to copy on the
// OK path (no allocation); error statuses carry a message string.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // Renders "code: message" for diagnostics.
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

Status InvalidArgument(std::string message);
Status NotFound(std::string message);
Status AlreadyExists(std::string message);
Status OutOfRange(std::string message);
Status FailedPrecondition(std::string message);
Status Unimplemented(std::string message);
Status Internal(std::string message);
Status ResourceExhausted(std::string message);

// Result<T> is a Status plus, when OK, a value of type T.
template <typename T>
class Result {
 public:
  // Intentionally implicit so `return value;` and `return status;` both work.
  Result(T value) : value_(std::move(value)) {}
  Result(Status status) : status_(std::move(status)) {
    assert(!status_.ok() && "OK Result must carry a value");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  // Value accessors. Must not be called on an error Result.
  T& value() {
    assert(ok());
    return *value_;
  }
  const T& value() const {
    assert(ok());
    return *value_;
  }
  T& operator*() { return value(); }
  const T& operator*() const { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

  // Moves the value out of the Result.
  T TakeValue() {
    assert(ok());
    return std::move(*value_);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

// Propagates an error Status from an expression, RETURN_IF_ERROR style.
#define XS_RETURN_IF_ERROR(expr)                       \
  do {                                                 \
    ::xmlshred::Status xs_status_ = (expr);            \
    if (!xs_status_.ok()) return xs_status_;           \
  } while (false)

// Evaluates a Result expression, propagating errors and otherwise binding
// the value to `lhs`. `lhs` may declare a new variable.
#define XS_ASSIGN_OR_RETURN(lhs, expr)          \
  XS_ASSIGN_OR_RETURN_IMPL(                     \
      XS_STATUS_CONCAT(xs_result_, __LINE__), lhs, expr)

#define XS_ASSIGN_OR_RETURN_IMPL(result, lhs, expr) \
  auto result = (expr);                             \
  if (!result.ok()) return result.status();         \
  lhs = std::move(result).TakeValue()

#define XS_STATUS_CONCAT_INNER(a, b) a##b
#define XS_STATUS_CONCAT(a, b) XS_STATUS_CONCAT_INNER(a, b)

}  // namespace xmlshred

#endif  // XMLSHRED_COMMON_STATUS_H_
