#include "common/strings.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>

namespace xmlshred {

std::vector<std::string> StrSplit(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string StrJoin(const std::vector<std::string>& pieces,
                    std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(pieces[i]);
  }
  return out;
}

std::string AsciiToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string_view StripWhitespace(std::string_view s) {
  size_t b = 0;
  while (b < s.size() && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  size_t e = s.size();
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int n = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<size_t>(n));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

std::string FormatDouble(double v, int digits) {
  return StrFormat("%.*f", digits, v);
}

std::string FormatDoubleTrimmed(double v, int max_digits) {
  std::string out = StrFormat("%.*f", max_digits, v);
  if (out.find('.') != std::string::npos) {
    size_t last = out.find_last_not_of('0');
    if (out[last] == '.') --last;
    out.erase(last + 1);
  }
  return out;
}

std::string FormatWithCommas(int64_t v) {
  std::string digits = std::to_string(v < 0 ? -v : v);
  std::string out;
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count > 0 && count % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++count;
  }
  if (v < 0) out.push_back('-');
  return std::string(out.rbegin(), out.rend());
}

void AppendJsonEscaped(std::string* out, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\t': *out += "\\t"; break;
      case '\r': *out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          *out += StrFormat("\\u%04x", c);
        } else {
          *out += c;
        }
    }
  }
}

uint64_t Fnv1a64(std::string_view s) {
  uint64_t hash = 0xcbf29ce484222325ull;
  for (char c : s) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ull;
  }
  return hash;
}

std::string Fnv1a64Hex(std::string_view s) {
  return StrFormat("%016llx",
                   static_cast<unsigned long long>(Fnv1a64(s)));
}

}  // namespace xmlshred
