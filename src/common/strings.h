// Small string utilities shared across modules.

#ifndef XMLSHRED_COMMON_STRINGS_H_
#define XMLSHRED_COMMON_STRINGS_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace xmlshred {

// Splits `s` on `sep`, keeping empty pieces.
std::vector<std::string> StrSplit(std::string_view s, char sep);

// Joins `pieces` with `sep` between consecutive elements.
std::string StrJoin(const std::vector<std::string>& pieces,
                    std::string_view sep);

// Returns `s` with ASCII letters lower-cased.
std::string AsciiToLower(std::string_view s);

// Case-insensitive (ASCII) equality.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

// True if `s` begins with / ends with the given affix.
bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

// Returns `s` with leading/trailing ASCII whitespace removed.
std::string_view StripWhitespace(std::string_view s);

// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

// Renders a double with `digits` digits after the decimal point.
std::string FormatDouble(double v, int digits);

// Renders a double with up to `max_digits` fractional digits, trailing
// zeros (and a bare trailing '.') removed: 3.20 -> "3.2", 4.00 -> "4".
std::string FormatDoubleTrimmed(double v, int max_digits);

// Renders an integer with thousands separators, e.g. 1234567 -> "1,234,567".
std::string FormatWithCommas(int64_t v);

// Appends `s` to `out` with JSON string escaping (quotes, backslashes,
// control characters). Shared by every hand-rolled JSON exporter.
void AppendJsonEscaped(std::string* out, std::string_view s);

// FNV-1a 64-bit hash — the deterministic content digest used by the
// telemetry exports (window digests, sampled-trace digests) so CI can
// pin "bit-identical at any thread count" with one short string instead
// of committing whole documents.
uint64_t Fnv1a64(std::string_view s);

// Fnv1a64 rendered as 16 lowercase hex digits.
std::string Fnv1a64Hex(std::string_view s);

}  // namespace xmlshred

#endif  // XMLSHRED_COMMON_STRINGS_H_
