#include "common/metrics.h"

#include <cmath>
#include <cstdio>
#include <fstream>

#include "common/strings.h"

namespace xmlshred {

void Gauge::Add(double v) {
  double current = value_.load(std::memory_order_relaxed);
  while (!value_.compare_exchange_weak(current, current + v,
                                       std::memory_order_relaxed)) {
  }
}

void Gauge::SetMax(double v) {
  double current = value_.load(std::memory_order_relaxed);
  while (current < v && !value_.compare_exchange_weak(
                            current, v, std::memory_order_relaxed)) {
  }
}

int Histogram::BucketIndex(double value) {
  if (!(value >= 1)) return 0;  // negatives and NaN land in bucket 0
  int exp = 0;
  (void)std::frexp(value, &exp);  // value = m * 2^exp, m in [0.5, 1)
  // value in [2^(exp-1), 2^exp) -> bucket exp.
  if (exp >= kBuckets) return kBuckets - 1;
  return exp;
}

double Histogram::BucketUpperBound(int i) {
  return i <= 0 ? 1.0 : std::ldexp(1.0, i);
}

void Histogram::Observe(double value) {
  buckets_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double current = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(current, current + value,
                                     std::memory_order_relaxed)) {
  }
}

void Histogram::AddBatch(int bucket, int64_t n, double sum) {
  if (bucket < 0) bucket = 0;
  if (bucket >= kBuckets) bucket = kBuckets - 1;
  buckets_[bucket].fetch_add(n, std::memory_order_relaxed);
  count_.fetch_add(n, std::memory_order_relaxed);
  double current = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(current, current + sum,
                                     std::memory_order_relaxed)) {
  }
}

MetricsRegistry::MetricsRegistry() {
  static constexpr const char* kCounters[] = {
      kMetricParseXmlDocuments,
      kMetricParseXmlElements,
      kMetricParseXsdSchemas,
      kMetricParseXsdNodes,
      kMetricParseDtdSchemas,
      kMetricParseDtdNodes,
      kMetricShredDocuments,
      kMetricShredRows,
      kMetricShredElements,
      kMetricShredReservedRows,
      kMetricShredSavedReallocs,
      kMetricShredBatchesEmitted,
      kMetricSearchRuns,
      kMetricSearchRounds,
      kMetricSearchTransformations,
      kMetricSearchTunerCalls,
      kMetricSearchOptimizerCalls,
      kMetricSearchQueriesDerived,
      kMetricSearchCandidatesSelected,
      kMetricSearchCandidatesAfterMerging,
      kMetricSearchCandidatesSkipped,
      kMetricSearchDerivationCacheHits,
      kMetricSearchWhatifRollbacks,
      kMetricSearchAdvisorCandidatesSkipped,
      kMetricSearchTruncatedRuns,
      kMetricCostCacheHits,
      kMetricCostCacheMisses,
      kMetricCostCacheEntries,
      kMetricAdvisorTuneCalls,
      kMetricAdvisorOptimizerCalls,
      kMetricAdvisorWhatifRollbacks,
      kMetricAdvisorCandidatesSkipped,
      kMetricAdvisorTruncatedRuns,
      kMetricPlannerQueriesPlanned,
      kMetricExecQueries,
      kMetricExecRowsOut,
      kMetricCalibrationQueries,
      kMetricServeRequests,
      kMetricServeRetryAttempts,
      kMetricServeAdmitted,
      kMetricServeQueued,
      kMetricServeCompleted,
      kMetricServeFailed,
      kMetricServeShedQueueFull,
      kMetricServeShedBudget,
      kMetricServeShedSession,
      kMetricServeExpiredInQueue,
      kMetricServeExpiredMidQuery,
      kMetricServeEpochsPublished,
      kMetricServeSessionsOpened,
      kMetricServeFaultsInjected,
      kMetricStorageBlocksScanned,
      kMetricStorageBlocksSkipped,
  };
  static constexpr const char* kGauges[] = {
      kMetricSearchWorkSpent,       kMetricSearchElapsedSeconds,
      kMetricExecWork,              kMetricExecPagesSequential,
      kMetricExecPagesRandom,       kMetricStorageTableBytesPeak,
      kMetricStorageDictBytesPeak,  kMetricStorageDictEntriesPeak,
      kMetricServeCompletedWork,
      kMetricServeQueueDepthPeak,   kMetricServeInflightPeak,
      kMetricServeOutstandingWorkPeak,
      kMetricStorageEncodedBytes,   kMetricStorageBlocksPlain,
      kMetricStorageBlocksRle,      kMetricStorageBlocksBitpackInt,
      kMetricStorageBlocksBitpackCode,
      kMetricShredPeakBatchBytes,
  };
  static constexpr const char* kHistograms[] = {
      kMetricSearchRoundCandidates,
      kMetricPlannerEstCost,
      kMetricExecRowsPerQuery,
      kMetricCalibrationCostQError,
      kMetricCalibrationPagesQError,
      kMetricServeLatencyWork,
      kMetricServeQueueWaitWork,
  };
  for (const char* name : kCounters) {
    counters_.emplace(name, std::make_unique<Counter>());
  }
  for (const char* name : kGauges) {
    gauges_.emplace(name, std::make_unique<Gauge>());
  }
  for (const char* name : kHistograms) {
    histograms_.emplace(name, std::make_unique<Histogram>());
  }
  for (const char* kind : kCalibrationOperatorKinds) {
    histograms_.emplace(std::string(kMetricCalibrationRowsQErrorPrefix) + kind,
                        std::make_unique<Histogram>());
  }
}

Counter* MetricsRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(std::string(name));
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return it->second.get();
}

Gauge* MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(std::string(name));
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return it->second.get();
}

Histogram* MetricsRegistry::histogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(std::string(name));
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return it->second.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snapshot;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, counter] : counters_) {
    snapshot.counters[name] = counter->value();
  }
  for (const auto& [name, gauge] : gauges_) {
    snapshot.gauges[name] = gauge->value();
  }
  for (const auto& [name, histogram] : histograms_) {
    HistogramSnapshot h;
    h.count = histogram->count();
    h.sum = histogram->sum();
    for (int i = 0; i < Histogram::kBuckets; ++i) {
      int64_t c = histogram->bucket(i);
      if (c > 0) h.buckets.emplace_back(i, c);
    }
    snapshot.histograms[name] = std::move(h);
  }
  return snapshot;
}

void MetricsRegistry::Merge(const MetricsSnapshot& snapshot) {
  for (const auto& [name, value] : snapshot.counters) {
    counter(name)->Add(value);
  }
  for (const auto& [name, value] : snapshot.gauges) {
    gauge(name)->Add(value);
  }
  for (const auto& [name, h] : snapshot.histograms) {
    Histogram* target = histogram(name);
    double remaining_sum = h.sum;
    for (size_t b = 0; b < h.buckets.size(); ++b) {
      // Bucket counts add exactly; the source's total sum is attributed to
      // the last bucket batch so the merged sum equals source + target.
      double batch_sum = b + 1 == h.buckets.size() ? remaining_sum : 0;
      target->AddBatch(h.buckets[b].first, h.buckets[b].second, batch_sum);
    }
  }
}

std::string MetricsSnapshot::ToJson() const {
  std::string out = "{\n  \"schema_version\": 1,\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : counters) {
    out += StrFormat("%s\n    \"%s\": %lld", first ? "" : ",", name.c_str(),
                     static_cast<long long>(value));
    first = false;
  }
  out += "\n  },\n  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : gauges) {
    out += StrFormat("%s\n    \"%s\": %.17g", first ? "" : ",", name.c_str(),
                     value);
    first = false;
  }
  out += "\n  },\n  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms) {
    out += StrFormat("%s\n    \"%s\": {\"count\": %lld, \"sum\": %.17g, "
                     "\"buckets\": [",
                     first ? "" : ",", name.c_str(),
                     static_cast<long long>(h.count), h.sum);
    for (size_t b = 0; b < h.buckets.size(); ++b) {
      out += StrFormat("%s{\"le\": %.17g, \"count\": %lld}",
                       b == 0 ? "" : ", ",
                       Histogram::BucketUpperBound(h.buckets[b].first),
                       static_cast<long long>(h.buckets[b].second));
    }
    out += "]}";
    first = false;
  }
  out += "\n  }\n}\n";
  return out;
}

Status WriteTextFile(const std::string& path, std::string_view content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Internal("cannot write " + path);
  out.write(content.data(), static_cast<std::streamsize>(content.size()));
  out.close();
  if (!out) return Internal("short write to " + path);
  return Status::OK();
}

}  // namespace xmlshred
