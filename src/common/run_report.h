// RunReport — the one machine-readable summary of a pipeline run.
//
// PRs 1-2 left three disjoint telemetry surfaces: SearchTelemetry on
// SearchResult, the anytime/rollback counters on TunerResult, and
// CostDerivationCache's hit/miss stats. RunReport merges them into one
// sectioned struct returned by every search algorithm
// (SearchResult::report) and by the advisor (TunerResult::ToReport()),
// populated from the per-run metrics registry rather than hand-maintained
// counters (see RunReportFromMetrics).
//
// Determinism: every integer field is bit-identical at any thread count
// for non-truncated runs; `elapsed_seconds`, `work_spent` (FP sums) and
// the cost-cache hit/miss split are timing-dependent (DESIGN.md §9).

#ifndef XMLSHRED_COMMON_RUN_REPORT_H_
#define XMLSHRED_COMMON_RUN_REPORT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/metrics.h"

namespace xmlshred {

struct RunReport {
  struct SearchSection {
    std::string algorithm;
    int rounds = 0;
    int transformations_searched = 0;
    int tuner_calls = 0;
    int optimizer_calls = 0;
    int queries_derived = 0;
    int candidates_selected = 0;
    int candidates_after_merging = 0;
    int candidates_skipped = 0;
    int64_t derivation_cache_hits = 0;  // timing-dependent
    double work_spent = 0;
    double elapsed_seconds = 0;  // timing-dependent
    bool truncated = false;
  };
  struct AdvisorSection {
    int tune_calls = 0;
    int optimizer_calls = 0;
    // Aggregated across every tuner call of the run — including the
    // parallel costing workers' calls, reduced in enumeration order (the
    // PR-3 fix; previously only the final configuration's counts
    // survived).
    int whatif_rollbacks = 0;
    int candidates_skipped = 0;
    bool truncated = false;
  };
  struct CostCacheSection {
    int64_t hits = 0;    // timing-dependent under parallel costing
    int64_t misses = 0;  // timing-dependent under parallel costing
    int64_t entries = 0;
  };
  // Peak columnar storage footprint across the run's shredded databases
  // (from the storage.*_peak gauges, maintained with Gauge::SetMax):
  // base-table bytes, string-dictionary bytes, and dictionary entries.
  // All zero when the run never touched real data.
  struct StorageSection {
    int64_t table_bytes_peak = 0;
    int64_t dict_bytes_peak = 0;
    int64_t dict_entries_peak = 0;
  };
  // Summary of one q-error histogram: observation count, mean (histogram
  // sum / count; an FP accumulate, same caveat as gauges), and the upper
  // bound of the highest non-empty power-of-two bucket (a deterministic
  // "worst estimate was below X" statement).
  struct QErrorStats {
    int64_t count = 0;
    double mean = 0;
    double max_bound = 0;
  };
  struct CalibrationOperator {
    std::string kind;  // PlanKindToString value
    QErrorStats rows;
  };
  // Cost-model calibration: how estimated rows/pages/cost compared with
  // executed actuals (exec/explain.h). Empty (queries == 0) unless the
  // run executed queries against real data with a registry attached.
  struct CalibrationSection {
    int64_t queries = 0;
    QErrorStats cost;   // root est_cost vs metered work, per query
    QErrorStats pages;  // root est_pages vs touched pages, per query
    // Per-operator-kind rows q-errors, sorted by kind; kinds the run
    // never executed are omitted.
    std::vector<CalibrationOperator> operators;
  };

  SearchSection search;
  AdvisorSection advisor;
  CostCacheSection cost_cache;
  StorageSection storage;
  CalibrationSection calibration;

  // Deterministic JSON export (schema_version 1), sections in declaration
  // order, keys fixed.
  std::string ToJson() const;
};

// Builds a report from a per-run registry snapshot: the search section
// from the "search.*" counters, the advisor section from the
// search-aggregated advisor counters, the cache section from
// "cost_cache.*".
RunReport RunReportFromMetrics(const MetricsSnapshot& snapshot,
                               const std::string& algorithm);

}  // namespace xmlshred

#endif  // XMLSHRED_COMMON_RUN_REPORT_H_
