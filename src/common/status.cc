#include "common/status.h"

namespace xmlshred {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kInvalidArgument:
      return "invalid argument";
    case StatusCode::kNotFound:
      return "not found";
    case StatusCode::kAlreadyExists:
      return "already exists";
    case StatusCode::kOutOfRange:
      return "out of range";
    case StatusCode::kFailedPrecondition:
      return "failed precondition";
    case StatusCode::kUnimplemented:
      return "unimplemented";
    case StatusCode::kInternal:
      return "internal";
    case StatusCode::kResourceExhausted:
      return "resource exhausted";
  }
  return "unknown";
}

std::string Status::ToString() const {
  if (ok()) return "ok";
  std::string out = StatusCodeToString(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

Status InvalidArgument(std::string message) {
  return Status(StatusCode::kInvalidArgument, std::move(message));
}
Status NotFound(std::string message) {
  return Status(StatusCode::kNotFound, std::move(message));
}
Status AlreadyExists(std::string message) {
  return Status(StatusCode::kAlreadyExists, std::move(message));
}
Status OutOfRange(std::string message) {
  return Status(StatusCode::kOutOfRange, std::move(message));
}
Status FailedPrecondition(std::string message) {
  return Status(StatusCode::kFailedPrecondition, std::move(message));
}
Status Unimplemented(std::string message) {
  return Status(StatusCode::kUnimplemented, std::move(message));
}
Status Internal(std::string message) {
  return Status(StatusCode::kInternal, std::move(message));
}
Status ResourceExhausted(std::string message) {
  return Status(StatusCode::kResourceExhausted, std::move(message));
}

}  // namespace xmlshred
