// Thread-safe metrics registry for the whole pipeline: counters, gauges,
// and histograms/timers with fixed log-scale buckets, exported as one
// deterministic JSON document.
//
// Design rules (DESIGN.md §9):
//
//  * Handles are resolved once (mutex-guarded map lookup) and then
//    incremented lock-free via relaxed atomics, so instrumented hot paths
//    add no locks: counter sums are commutative integers, identical at any
//    thread count.
//  * The registry never reads a clock on its own. Timers (ScopedTimer)
//    only read the steady clock when `timing_enabled()` was switched on
//    explicitly — the serial determinism path (num_threads = 1, timing
//    off) performs no wall-clock reads.
//  * A fixed set of well-known metric names is pre-registered by the
//    constructor so every export carries the full schema (zero-valued
//    where a stage never ran) — consumers can rely on key presence.
//  * Snapshot()/ToJson() order every section by name; the only
//    timing-dependent exported values are gauges under "time." /
//    "*.elapsed_seconds" and the cost-cache hit/miss split (two workers
//    may both miss a key before either inserts; a hit is observably
//    identical to recomputing).

#ifndef XMLSHRED_COMMON_METRICS_H_
#define XMLSHRED_COMMON_METRICS_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace xmlshred {

// --- Well-known metric names (pre-registered in every registry) ---
// Counters.
inline constexpr const char* kMetricParseXmlDocuments = "parse.xml.documents";
inline constexpr const char* kMetricParseXmlElements = "parse.xml.elements";
inline constexpr const char* kMetricParseXsdSchemas = "parse.xsd.schemas";
inline constexpr const char* kMetricParseXsdNodes = "parse.xsd.nodes";
inline constexpr const char* kMetricParseDtdSchemas = "parse.dtd.schemas";
inline constexpr const char* kMetricParseDtdNodes = "parse.dtd.nodes";
inline constexpr const char* kMetricShredDocuments = "shred.documents";
inline constexpr const char* kMetricShredRows = "shred.rows";
inline constexpr const char* kMetricShredElements = "shred.elements";
// Rows pre-reserved across relations from the shredder's document
// pre-scan, and the vector/hash-table reallocations that reservation
// avoided (capacity doublings a grow-from-empty append path would have
// performed up to the reserved size).
inline constexpr const char* kMetricShredReservedRows = "shred.reserved_rows";
inline constexpr const char* kMetricShredSavedReallocs =
    "shred.saved_reallocs";
// Streaming-shredder ingest (DESIGN.md §17): columnar batches flushed
// into storage. The counter counts batches across all relations; the
// gauge (SetMax) is the largest single batch's logical bytes — both are
// document-order deterministic and thread-count independent, unlike peak
// transient memory, which stays in ShredStats.
inline constexpr const char* kMetricShredBatchesEmitted =
    "shred.batches_emitted";
inline constexpr const char* kMetricShredPeakBatchBytes =
    "shred.peak_batch_bytes";
inline constexpr const char* kMetricSearchRuns = "search.runs";
inline constexpr const char* kMetricSearchRounds = "search.rounds";
inline constexpr const char* kMetricSearchTransformations =
    "search.transformations_searched";
inline constexpr const char* kMetricSearchTunerCalls = "search.tuner_calls";
inline constexpr const char* kMetricSearchOptimizerCalls =
    "search.optimizer_calls";
inline constexpr const char* kMetricSearchQueriesDerived =
    "search.queries_derived";
inline constexpr const char* kMetricSearchCandidatesSelected =
    "search.candidates_selected";
inline constexpr const char* kMetricSearchCandidatesAfterMerging =
    "search.candidates_after_merging";
inline constexpr const char* kMetricSearchCandidatesSkipped =
    "search.candidates_skipped";
inline constexpr const char* kMetricSearchDerivationCacheHits =
    "search.derivation_cache_hits";
inline constexpr const char* kMetricSearchWhatifRollbacks =
    "search.whatif_rollbacks";
inline constexpr const char* kMetricSearchAdvisorCandidatesSkipped =
    "search.advisor_candidates_skipped";
inline constexpr const char* kMetricSearchTruncatedRuns =
    "search.truncated_runs";
inline constexpr const char* kMetricCostCacheHits = "cost_cache.hits";
inline constexpr const char* kMetricCostCacheMisses = "cost_cache.misses";
inline constexpr const char* kMetricCostCacheEntries = "cost_cache.entries";
inline constexpr const char* kMetricAdvisorTuneCalls = "advisor.tune_calls";
inline constexpr const char* kMetricAdvisorOptimizerCalls =
    "advisor.optimizer_calls";
inline constexpr const char* kMetricAdvisorWhatifRollbacks =
    "advisor.whatif_rollbacks";
inline constexpr const char* kMetricAdvisorCandidatesSkipped =
    "advisor.candidates_skipped";
inline constexpr const char* kMetricAdvisorTruncatedRuns =
    "advisor.truncated_runs";
inline constexpr const char* kMetricPlannerQueriesPlanned =
    "planner.queries_planned";
inline constexpr const char* kMetricExecQueries = "exec.queries";
inline constexpr const char* kMetricExecRowsOut = "exec.rows_out";
// Queries that fed estimated-vs-actual calibration (exec/explain.h).
inline constexpr const char* kMetricCalibrationQueries = "calibration.queries";
// Serving layer (src/serve). Accounting invariant:
//   requests + retry_attempts == completed + failed + shed_queue_full +
//     shed_budget + shed_session + expired_in_queue + expired_mid_query
// i.e. every offered request is accounted exactly once at terminal state.
inline constexpr const char* kMetricServeRequests = "serve.requests";
inline constexpr const char* kMetricServeRetryAttempts =
    "serve.retry_attempts";
inline constexpr const char* kMetricServeAdmitted = "serve.admitted";
inline constexpr const char* kMetricServeQueued = "serve.queued";
inline constexpr const char* kMetricServeCompleted = "serve.completed";
inline constexpr const char* kMetricServeFailed = "serve.failed";
inline constexpr const char* kMetricServeShedQueueFull =
    "serve.shed_queue_full";
inline constexpr const char* kMetricServeShedBudget = "serve.shed_budget";
inline constexpr const char* kMetricServeShedSession = "serve.shed_session";
inline constexpr const char* kMetricServeExpiredInQueue =
    "serve.expired_in_queue";
inline constexpr const char* kMetricServeExpiredMidQuery =
    "serve.expired_mid_query";
inline constexpr const char* kMetricServeEpochsPublished =
    "serve.epochs_published";
inline constexpr const char* kMetricServeSessionsOpened =
    "serve.sessions_opened";
inline constexpr const char* kMetricServeFaultsInjected =
    "serve.faults_injected";
// Block storage (DESIGN.md §14): blocks a run's sequential scans touched
// vs. pruned by zone maps (counted once per scan, at layout time, before
// any data is read — identical in encoded and plain read modes).
inline constexpr const char* kMetricStorageBlocksScanned =
    "storage.blocks_scanned";
inline constexpr const char* kMetricStorageBlocksSkipped =
    "storage.blocks_skipped";
// Gauges (accumulating doubles).
inline constexpr const char* kMetricSearchWorkSpent = "search.work_spent";
inline constexpr const char* kMetricSearchElapsedSeconds =
    "search.elapsed_seconds";
inline constexpr const char* kMetricExecWork = "exec.work";
inline constexpr const char* kMetricExecPagesSequential =
    "exec.pages_sequential";
inline constexpr const char* kMetricExecPagesRandom = "exec.pages_random";
// Peak columnar storage footprint observed across the run's shredded
// databases (updated with Gauge::SetMax after each shred+configuration):
// base-table bytes, string-dictionary bytes (payload + per-entry
// overhead), and dictionary entry count.
inline constexpr const char* kMetricStorageTableBytesPeak =
    "storage.table_bytes_peak";
inline constexpr const char* kMetricStorageDictBytesPeak =
    "storage.dict_bytes_peak";
inline constexpr const char* kMetricStorageDictEntriesPeak =
    "storage.dict_entries_peak";
// Peak *stored* (block-encoded) table bytes — the footprint NumPages is
// computed from; storage.table_bytes_peak above stays the logical size,
// so peak_encoded / peak_logical is the run's compression ratio. The
// per-encoding gauges count sealed blocks by chosen encoding at the same
// peak (SetMax on the same database snapshot).
inline constexpr const char* kMetricStorageEncodedBytes =
    "storage.encoded_bytes";
inline constexpr const char* kMetricStorageBlocksPlain =
    "storage.blocks_plain";
inline constexpr const char* kMetricStorageBlocksRle = "storage.blocks_rle";
inline constexpr const char* kMetricStorageBlocksBitpackInt =
    "storage.blocks_bitpack_int";
inline constexpr const char* kMetricStorageBlocksBitpackCode =
    "storage.blocks_bitpack_code";
// Total metered work of *completed* serving requests (Gauge::Add of
// integer work units — exact, so deltas are deterministic). Per-window
// deltas of this gauge are the goodput numerator in the time-series
// recorder (common/timeseries.h).
inline constexpr const char* kMetricServeCompletedWork =
    "serve.completed_work";
// Serving-layer peaks (SetMax — deterministic at any thread count).
inline constexpr const char* kMetricServeQueueDepthPeak =
    "serve.queue_depth_peak";
inline constexpr const char* kMetricServeInflightPeak = "serve.inflight_peak";
inline constexpr const char* kMetricServeOutstandingWorkPeak =
    "serve.outstanding_work_peak";
// Histograms.
inline constexpr const char* kMetricSearchRoundCandidates =
    "search.round_candidates";
inline constexpr const char* kMetricPlannerEstCost = "planner.est_cost";
inline constexpr const char* kMetricExecRowsPerQuery = "exec.rows_per_query";
// Calibration q-errors (always >= 1; see QError in opt/cost_model.h):
// query-level estimated-cost-vs-metered-work and estimated-vs-touched
// pages, plus one per-operator-kind rows histogram named
// kMetricCalibrationRowsQErrorPrefix + PlanKindToString(kind).
inline constexpr const char* kMetricCalibrationCostQError =
    "calibration.cost_qerror";
inline constexpr const char* kMetricCalibrationPagesQError =
    "calibration.pages_qerror";
inline constexpr const char* kMetricCalibrationRowsQErrorPrefix =
    "calibration.rows_qerror.";
// Serving-layer latency distributions in deterministic *work units*
// (virtual time), not wall clock: end-to-end latency of completed
// requests (queue wait + execution work) and the queue-wait component.
inline constexpr const char* kMetricServeLatencyWork = "serve.latency_work";
inline constexpr const char* kMetricServeQueueWaitWork =
    "serve.queue_wait_work";
// Every PlanKindToString value, so the registry can pre-register the full
// per-kind histogram family (kept in sync by
// ExplainTest.CalibrationKindListMatchesPlanKinds).
inline constexpr const char* kCalibrationOperatorKinds[] = {
    "HashJoin",  "HeapScan", "IndexNLJoin", "IndexOnlyScan", "IndexSeek",
    "Project",   "Sort",     "UnionAll",    "ViewScan"};

// Monotone counter: lock-free relaxed adds.
class Counter {
 public:
  void Add(int64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  void Increment() { Add(1); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

// Double-valued gauge with Set and accumulate semantics. Add uses a CAS
// loop (atomic<double>::fetch_add portability); sums of doubles are
// order-dependent in the last bits, so gauges are informational, not part
// of the bit-identity contract.
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  void Add(double v);
  // Raises the gauge to `v` if `v` is larger (CAS loop like Add). Unlike
  // Add, the result is order-independent, so SetMax-maintained peaks are
  // deterministic at any thread count.
  void SetMax(double v);
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0};
};

// Histogram over fixed log-scale (powers of two) buckets: bucket 0 holds
// values < 1, bucket i >= 1 holds [2^(i-1), 2^i). Bucket counts are
// integers, so the exported distribution is deterministic at any thread
// count; `sum` is a double accumulate (same caveat as Gauge::Add).
class Histogram {
 public:
  static constexpr int kBuckets = 48;

  void Observe(double value);
  // Adds a pre-bucketed batch (registry merging): `n` observations in
  // `bucket` totalling `sum`.
  void AddBatch(int bucket, int64_t n, double sum);
  int64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  int64_t bucket(int i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }

  // Upper bound of bucket i (1, 1, 2, 4, ...; bucket 0's bound is 1).
  static double BucketUpperBound(int i);
  static int BucketIndex(double value);

 private:
  std::atomic<int64_t> buckets_[kBuckets] = {};
  std::atomic<int64_t> count_{0};
  std::atomic<double> sum_{0};
};

struct HistogramSnapshot {
  int64_t count = 0;
  double sum = 0;
  // (bucket index, count) for non-empty buckets, ascending.
  std::vector<std::pair<int, int64_t>> buckets;
};

// Point-in-time copy of a registry, ordered by name for deterministic
// export and comparison.
struct MetricsSnapshot {
  std::map<std::string, int64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSnapshot> histograms;

  // Deterministic JSON export (schema_version 1; see
  // tools/metrics_schema.json). Keys sorted; counters as integers, gauges
  // with %.17g round-trip precision.
  std::string ToJson() const;
};

class MetricsRegistry {
 public:
  // Pre-registers every well-known metric so exports always carry the
  // full schema.
  MetricsRegistry();

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Handle resolution: mutex-guarded, intended for entry points, not per-
  // item loops. Handles stay valid for the registry's lifetime.
  Counter* counter(std::string_view name);
  Gauge* gauge(std::string_view name);
  Histogram* histogram(std::string_view name);

  // Timers are inert until enabled; the serial determinism path leaves
  // this off so instrumentation performs no clock reads.
  bool timing_enabled() const {
    return timing_enabled_.load(std::memory_order_relaxed);
  }
  void set_timing_enabled(bool enabled) {
    timing_enabled_.store(enabled, std::memory_order_relaxed);
  }

  MetricsSnapshot Snapshot() const;

  // Adds `snapshot` into this registry: counters and histogram buckets
  // add; gauges accumulate. Used to fold a per-run registry into a
  // process-wide export registry.
  void Merge(const MetricsSnapshot& snapshot);

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  std::atomic<bool> timing_enabled_{false};
};

// Observes the scope's wall-clock duration (in nanoseconds) into
// `registry`'s histogram `name` — only when the registry exists and has
// timing enabled; otherwise fully inert (no clock read).
class ScopedTimer {
 public:
  ScopedTimer(MetricsRegistry* registry, const char* name) {
    if (registry != nullptr && registry->timing_enabled()) {
      histogram_ = registry->histogram(name);
      start_ = std::chrono::steady_clock::now();
    }
  }
  ~ScopedTimer() {
    if (histogram_ != nullptr) {
      histogram_->Observe(std::chrono::duration<double, std::nano>(
                              std::chrono::steady_clock::now() - start_)
                              .count());
    }
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Histogram* histogram_ = nullptr;
  std::chrono::steady_clock::time_point start_{};
};

// Writes `content` to `path` atomically enough for tooling (truncate +
// write). Shared by the JSON exporters.
Status WriteTextFile(const std::string& path, std::string_view content);

}  // namespace xmlshred

#endif  // XMLSHRED_COMMON_METRICS_H_
