// Resource governance for the search/costing pipeline.
//
// The paper's tuner makes hundreds of optimizer calls per invocation
// (Figs. 5/7/9); nothing in the seed bounded that work. A ResourceGovernor
// carries a wall-clock deadline, a work-unit budget (one unit ~ one
// optimizer call), row and memory caps, and a recursion-depth guard. Every
// long-running path accepts one:
//
//  * parsers charge recursion depth so a 10k-deep document returns
//    kResourceExhausted instead of overflowing the stack;
//  * the executor charges work units and row counts as it runs;
//  * the advisor and the search algorithms consult the governor between
//    candidates and turn exhaustion into *anytime* behaviour — they stop
//    early and return the best design found so far with `truncated` set.
//
// A null governor means "unlimited" everywhere except parser recursion,
// which always enforces kDefaultMaxRecursionDepth as a stack-safety floor.
//
// Exhaustion is sticky: once any budget trips, every later Check*/Charge*
// call fails too, so a deep call stack unwinds promptly.
//
// Thread safety: one governor is shared by every worker of a parallel
// search round (search/greedy.cc), so all charging and checking is
// serialized on an internal mutex and `exhausted` is an atomic flag —
// budgets, anytime truncation, and telemetry keep their single-threaded
// semantics under concurrency. Work charges are whole units (1.0), so the
// accumulated total is exact regardless of charge interleaving. The
// recursion-depth guard counts across all threads sharing the governor;
// the default cap (512) leaves ample headroom for any realistic worker
// count times parser depth.

#ifndef XMLSHRED_COMMON_LIMITS_H_
#define XMLSHRED_COMMON_LIMITS_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>

#include "common/status.h"

namespace xmlshred {

// Depth cap applied by the recursive-descent parsers even without a
// governor. Deep enough for any sane document, far below stack overflow.
inline constexpr int kDefaultMaxRecursionDepth = 512;

struct ResourceLimits {
  // Zero / negative means unlimited for every knob except recursion depth.
  double wall_clock_seconds = 0;
  int64_t work_units = 0;     // ~ optimizer calls / metered cost-model work
  int64_t max_rows = 0;       // rows materialized by one executor run
  int64_t max_memory_bytes = 0;
  int max_recursion_depth = kDefaultMaxRecursionDepth;
};

class ResourceGovernor {
 public:
  ResourceGovernor() : ResourceGovernor(ResourceLimits{}) {}
  explicit ResourceGovernor(const ResourceLimits& limits);

  const ResourceLimits& limits() const { return limits_; }

  // Spends `units` from the work budget. Returns kResourceExhausted when
  // the budget (or any previously tripped limit) is exhausted; the charge
  // is still recorded so telemetry reflects total work attempted.
  Status ChargeWork(double units);

  // Records `rows` materialized rows against the row cap.
  Status ChargeRows(int64_t rows);

  // Records a transient allocation against the memory cap.
  Status ChargeMemory(int64_t bytes);

  // Checks the wall-clock deadline (and sticky exhaustion) without
  // charging anything.
  Status CheckDeadline();

  // Recursion-depth guard. EnterRecursion returns kResourceExhausted past
  // the cap; LeaveRecursion must be called for every successful Enter —
  // use RecursionScope below rather than pairing these by hand.
  Status EnterRecursion();
  void LeaveRecursion();

  // True once any limit has tripped. Anytime loops poll this between
  // candidates and wind down instead of erroring out. Lock-free: safe to
  // poll from worker threads while others charge.
  bool exhausted() const { return exhausted_.load(std::memory_order_acquire); }

  // Telemetry.
  double work_spent() const;
  int64_t rows_charged() const;
  int64_t memory_charged() const;
  int max_depth_seen() const;
  double elapsed_seconds() const;

  // Re-arms a tripped governor (used by tests sweeping budgets). Must not
  // race with in-flight charges.
  void Reset();

 private:
  // Requires mu_ held.
  Status Trip(std::string why);
  Status CheckDeadlineLocked();

  mutable std::mutex mu_;
  ResourceLimits limits_;
  std::chrono::steady_clock::time_point start_;
  double work_spent_ = 0;
  int64_t rows_charged_ = 0;
  int64_t memory_charged_ = 0;
  int depth_ = 0;
  int max_depth_seen_ = 0;
  std::atomic<bool> exhausted_{false};
  std::string trip_reason_;
};

// RAII recursion guard. A null governor is a no-op (callers that must
// always be stack-safe construct a default ResourceGovernor instead).
//
//   Status Parse(int depth) {
//     RecursionScope scope(governor_);
//     XS_RETURN_IF_ERROR(scope.status());
//     ...
//   }
class RecursionScope {
 public:
  explicit RecursionScope(ResourceGovernor* governor) : governor_(governor) {
    if (governor_ != nullptr) {
      status_ = governor_->EnterRecursion();
      entered_ = status_.ok();
    }
  }
  ~RecursionScope() {
    if (entered_) governor_->LeaveRecursion();
  }
  RecursionScope(const RecursionScope&) = delete;
  RecursionScope& operator=(const RecursionScope&) = delete;

  const Status& status() const { return status_; }

 private:
  ResourceGovernor* governor_;
  Status status_;
  bool entered_ = false;
};

}  // namespace xmlshred

#endif  // XMLSHRED_COMMON_LIMITS_H_
