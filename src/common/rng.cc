#include "common/rng.h"

#include <cmath>

namespace xmlshred {

size_t Rng::WeightedIndex(const std::vector<double>& weights) {
  double total = 0;
  for (double w : weights) total += w;
  double r = UniformDouble() * total;
  double acc = 0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (r < acc) return i;
  }
  return weights.empty() ? 0 : weights.size() - 1;
}

int64_t Rng::Zipf(int64_t n, double theta) {
  // Inverse CDF by linear accumulation; n is small (tens) in our use.
  double total = 0;
  for (int64_t k = 1; k <= n; ++k) total += 1.0 / std::pow(k, theta);
  double r = UniformDouble() * total;
  double acc = 0;
  for (int64_t k = 1; k <= n; ++k) {
    acc += 1.0 / std::pow(k, theta);
    if (r < acc) return k;
  }
  return n;
}

}  // namespace xmlshred
