#include "common/run_report.h"

#include "common/strings.h"

namespace xmlshred {

namespace {

int64_t CounterOr0(const MetricsSnapshot& snapshot, const char* name) {
  auto it = snapshot.counters.find(name);
  return it == snapshot.counters.end() ? 0 : it->second;
}

double GaugeOr0(const MetricsSnapshot& snapshot, const char* name) {
  auto it = snapshot.gauges.find(name);
  return it == snapshot.gauges.end() ? 0 : it->second;
}

RunReport::QErrorStats QErrorStatsFrom(const HistogramSnapshot& h) {
  RunReport::QErrorStats stats;
  stats.count = h.count;
  if (h.count > 0) stats.mean = h.sum / static_cast<double>(h.count);
  if (!h.buckets.empty()) {
    stats.max_bound = Histogram::BucketUpperBound(h.buckets.back().first);
  }
  return stats;
}

std::string QErrorJson(const RunReport::QErrorStats& stats) {
  return StrFormat(
      "{\"count\": %lld, \"mean\": %.17g, \"max_bound\": %.17g}",
      static_cast<long long>(stats.count), stats.mean, stats.max_bound);
}

}  // namespace

RunReport RunReportFromMetrics(const MetricsSnapshot& snapshot,
                               const std::string& algorithm) {
  RunReport report;
  RunReport::SearchSection& s = report.search;
  s.algorithm = algorithm;
  s.rounds = static_cast<int>(CounterOr0(snapshot, kMetricSearchRounds));
  s.transformations_searched =
      static_cast<int>(CounterOr0(snapshot, kMetricSearchTransformations));
  s.tuner_calls = static_cast<int>(CounterOr0(snapshot, kMetricSearchTunerCalls));
  s.optimizer_calls =
      static_cast<int>(CounterOr0(snapshot, kMetricSearchOptimizerCalls));
  s.queries_derived =
      static_cast<int>(CounterOr0(snapshot, kMetricSearchQueriesDerived));
  s.candidates_selected =
      static_cast<int>(CounterOr0(snapshot, kMetricSearchCandidatesSelected));
  s.candidates_after_merging = static_cast<int>(
      CounterOr0(snapshot, kMetricSearchCandidatesAfterMerging));
  s.candidates_skipped =
      static_cast<int>(CounterOr0(snapshot, kMetricSearchCandidatesSkipped));
  s.derivation_cache_hits =
      CounterOr0(snapshot, kMetricSearchDerivationCacheHits);
  s.work_spent = GaugeOr0(snapshot, kMetricSearchWorkSpent);
  s.elapsed_seconds = GaugeOr0(snapshot, kMetricSearchElapsedSeconds);
  s.truncated = CounterOr0(snapshot, kMetricSearchTruncatedRuns) > 0;

  RunReport::AdvisorSection& a = report.advisor;
  a.tune_calls = static_cast<int>(CounterOr0(snapshot, kMetricAdvisorTuneCalls));
  a.optimizer_calls =
      static_cast<int>(CounterOr0(snapshot, kMetricAdvisorOptimizerCalls));
  a.whatif_rollbacks =
      static_cast<int>(CounterOr0(snapshot, kMetricSearchWhatifRollbacks));
  a.candidates_skipped = static_cast<int>(
      CounterOr0(snapshot, kMetricSearchAdvisorCandidatesSkipped));
  a.truncated = CounterOr0(snapshot, kMetricAdvisorTruncatedRuns) > 0;

  RunReport::CostCacheSection& c = report.cost_cache;
  c.hits = CounterOr0(snapshot, kMetricCostCacheHits);
  c.misses = CounterOr0(snapshot, kMetricCostCacheMisses);
  c.entries = CounterOr0(snapshot, kMetricCostCacheEntries);

  RunReport::StorageSection& st = report.storage;
  st.table_bytes_peak = static_cast<int64_t>(
      GaugeOr0(snapshot, kMetricStorageTableBytesPeak));
  st.dict_bytes_peak =
      static_cast<int64_t>(GaugeOr0(snapshot, kMetricStorageDictBytesPeak));
  st.dict_entries_peak = static_cast<int64_t>(
      GaugeOr0(snapshot, kMetricStorageDictEntriesPeak));

  RunReport::CalibrationSection& cal = report.calibration;
  cal.queries = CounterOr0(snapshot, kMetricCalibrationQueries);
  if (auto it = snapshot.histograms.find(kMetricCalibrationCostQError);
      it != snapshot.histograms.end()) {
    cal.cost = QErrorStatsFrom(it->second);
  }
  if (auto it = snapshot.histograms.find(kMetricCalibrationPagesQError);
      it != snapshot.histograms.end()) {
    cal.pages = QErrorStatsFrom(it->second);
  }
  // The snapshot map is name-ordered, so the prefix scan yields operator
  // kinds already sorted.
  const std::string prefix = kMetricCalibrationRowsQErrorPrefix;
  for (auto it = snapshot.histograms.lower_bound(prefix);
       it != snapshot.histograms.end() && StartsWith(it->first, prefix);
       ++it) {
    if (it->second.count == 0) continue;
    RunReport::CalibrationOperator op;
    op.kind = it->first.substr(prefix.size());
    op.rows = QErrorStatsFrom(it->second);
    cal.operators.push_back(std::move(op));
  }
  return report;
}

std::string RunReport::ToJson() const {
  std::string out = "{\n  \"schema_version\": 1,\n  \"search\": {\n";
  out += StrFormat("    \"algorithm\": \"%s\",\n", search.algorithm.c_str());
  out += StrFormat("    \"rounds\": %d,\n", search.rounds);
  out += StrFormat("    \"transformations_searched\": %d,\n",
                   search.transformations_searched);
  out += StrFormat("    \"tuner_calls\": %d,\n", search.tuner_calls);
  out += StrFormat("    \"optimizer_calls\": %d,\n", search.optimizer_calls);
  out += StrFormat("    \"queries_derived\": %d,\n", search.queries_derived);
  out += StrFormat("    \"candidates_selected\": %d,\n",
                   search.candidates_selected);
  out += StrFormat("    \"candidates_after_merging\": %d,\n",
                   search.candidates_after_merging);
  out += StrFormat("    \"candidates_skipped\": %d,\n",
                   search.candidates_skipped);
  out += StrFormat("    \"derivation_cache_hits\": %lld,\n",
                   static_cast<long long>(search.derivation_cache_hits));
  out += StrFormat("    \"work_spent\": %.17g,\n", search.work_spent);
  out += StrFormat("    \"elapsed_seconds\": %.17g,\n", search.elapsed_seconds);
  out += StrFormat("    \"truncated\": %s\n",
                   search.truncated ? "true" : "false");
  out += "  },\n  \"advisor\": {\n";
  out += StrFormat("    \"tune_calls\": %d,\n", advisor.tune_calls);
  out += StrFormat("    \"optimizer_calls\": %d,\n", advisor.optimizer_calls);
  out += StrFormat("    \"whatif_rollbacks\": %d,\n", advisor.whatif_rollbacks);
  out += StrFormat("    \"candidates_skipped\": %d,\n",
                   advisor.candidates_skipped);
  out += StrFormat("    \"truncated\": %s\n",
                   advisor.truncated ? "true" : "false");
  out += "  },\n  \"cost_cache\": {\n";
  out += StrFormat("    \"hits\": %lld,\n", static_cast<long long>(cost_cache.hits));
  out += StrFormat("    \"misses\": %lld,\n",
                   static_cast<long long>(cost_cache.misses));
  out += StrFormat("    \"entries\": %lld\n",
                   static_cast<long long>(cost_cache.entries));
  out += "  },\n  \"storage\": {\n";
  out += StrFormat("    \"table_bytes_peak\": %lld,\n",
                   static_cast<long long>(storage.table_bytes_peak));
  out += StrFormat("    \"dict_bytes_peak\": %lld,\n",
                   static_cast<long long>(storage.dict_bytes_peak));
  out += StrFormat("    \"dict_entries_peak\": %lld\n",
                   static_cast<long long>(storage.dict_entries_peak));
  out += "  },\n  \"calibration\": {\n";
  out += StrFormat("    \"queries\": %lld,\n",
                   static_cast<long long>(calibration.queries));
  out += "    \"cost_qerror\": " + QErrorJson(calibration.cost) + ",\n";
  out += "    \"pages_qerror\": " + QErrorJson(calibration.pages) + ",\n";
  out += "    \"operators\": [";
  for (size_t i = 0; i < calibration.operators.size(); ++i) {
    const CalibrationOperator& op = calibration.operators[i];
    out += i == 0 ? "\n" : ",\n";
    out += StrFormat("      {\"kind\": \"%s\", \"rows_qerror\": ",
                     op.kind.c_str());
    out += QErrorJson(op.rows) + "}";
  }
  out += calibration.operators.empty() ? "]\n" : "\n    ]\n";
  out += "  }\n}\n";
  return out;
}

}  // namespace xmlshred
