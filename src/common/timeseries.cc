#include "common/timeseries.h"

#include <algorithm>

#include "common/strings.h"

namespace xmlshred {

namespace {

bool MatchesAnyPrefix(const std::string& name,
                      const std::vector<std::string>& prefixes) {
  for (const std::string& prefix : prefixes) {
    if (StartsWith(name, prefix)) return true;
  }
  return false;
}

int64_t CounterAt(const MetricsSnapshot& snap, const std::string& name) {
  auto it = snap.counters.find(name);
  return it == snap.counters.end() ? 0 : it->second;
}

double GaugeAt(const MetricsSnapshot& snap, const std::string& name) {
  auto it = snap.gauges.find(name);
  return it == snap.gauges.end() ? 0 : it->second;
}

std::vector<std::pair<int, int64_t>> BucketDeltas(
    const MetricsSnapshot& prev, const MetricsSnapshot& now,
    const std::string& name) {
  std::map<int, int64_t> deltas;
  auto nit = now.histograms.find(name);
  if (nit != now.histograms.end()) {
    for (const auto& [bucket, count] : nit->second.buckets) {
      deltas[bucket] += count;
    }
  }
  auto pit = prev.histograms.find(name);
  if (pit != prev.histograms.end()) {
    for (const auto& [bucket, count] : pit->second.buckets) {
      deltas[bucket] -= count;
    }
  }
  std::vector<std::pair<int, int64_t>> out;
  for (const auto& [bucket, count] : deltas) {
    if (count > 0) out.emplace_back(bucket, count);
  }
  return out;
}

}  // namespace

WindowQuantiles QuantilesFromBucketDeltas(
    const std::vector<std::pair<int, int64_t>>& deltas) {
  WindowQuantiles q;
  for (const auto& [bucket, count] : deltas) q.count += count;
  if (q.count == 0) return q;
  // Integer rank arithmetic: rank(P) = ceil(count * P / 100), >= 1. The
  // quantile value is the upper bound of the first bucket whose
  // cumulative count reaches the rank — deterministic because bucket
  // counts are integers.
  auto value_at = [&](int64_t percent) {
    int64_t rank = (q.count * percent + 99) / 100;
    if (rank < 1) rank = 1;
    int64_t cumulative = 0;
    for (const auto& [bucket, count] : deltas) {
      cumulative += count;
      if (cumulative >= rank) return Histogram::BucketUpperBound(bucket);
    }
    return Histogram::BucketUpperBound(deltas.back().first);
  };
  q.p50 = value_at(50);
  q.p95 = value_at(95);
  q.p99 = value_at(99);
  return q;
}

std::string TimeSeriesWindow::ToJson(bool include_wall) const {
  std::string out = StrFormat(
      "{\"schema_version\": 1, \"window\": %lld, \"start\": %.17g, "
      "\"end\": %.17g",
      static_cast<long long>(index), start, end);
  if (include_wall) out += StrFormat(", \"wall_ns\": %.17g", wall_ns);
  out += ", \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : counters) {
    out += StrFormat("%s\"%s\": %lld", first ? "" : ", ", name.c_str(),
                     static_cast<long long>(value));
    first = false;
  }
  out += "}, \"gauges\": {";
  first = true;
  for (const auto& [name, value] : gauges) {
    out += StrFormat("%s\"%s\": %.17g", first ? "" : ", ", name.c_str(),
                     value);
    first = false;
  }
  out += "}, \"quantiles\": {";
  first = true;
  for (const auto& [name, q] : quantiles) {
    out += StrFormat(
        "%s\"%s\": {\"count\": %lld, \"p50\": %.17g, \"p95\": %.17g, "
        "\"p99\": %.17g}",
        first ? "" : ", ", name.c_str(), static_cast<long long>(q.count),
        q.p50, q.p95, q.p99);
    first = false;
  }
  out += StrFormat(
      "}, \"slo\": {\"completed\": %lld, \"expired\": %lld, "
      "\"shed\": %lld, \"completed_work\": %.17g, \"goodput\": %.17g, "
      "\"deadline_hit_rate\": %.17g}}",
      static_cast<long long>(completed), static_cast<long long>(expired),
      static_cast<long long>(shed), completed_work, goodput,
      deadline_hit_rate);
  return out;
}

TimeSeriesRecorder::TimeSeriesRecorder(MetricsRegistry* registry,
                                       TimeSeriesOptions options)
    : registry_(registry), options_(std::move(options)) {
  if (enabled()) prev_ = registry_->Snapshot();
}

double TimeSeriesRecorder::WallSeconds() {
  auto now = std::chrono::steady_clock::now();
  ++clock_reads_;
  if (!origin_set_) {
    origin_ = now;
    origin_set_ = true;
  }
  return std::chrono::duration<double>(now - origin_).count();
}

void TimeSeriesRecorder::AdvanceTo(double now) {
  if (!enabled()) return;
  if (now > advanced_to_) advanced_to_ = now;
  while (window_start_ + options_.window_width <= now) {
    CloseWindow(window_start_ + options_.window_width);
  }
}

void TimeSeriesRecorder::Finish(double now) {
  if (!enabled()) return;
  AdvanceTo(now);
  if (now > window_start_) CloseWindow(now);
}

void TimeSeriesRecorder::CloseWindow(double end) {
  MetricsSnapshot snap = registry_->Snapshot();
  TimeSeriesWindow w;
  w.index = static_cast<int64_t>(windows_.size());
  w.start = window_start_;
  w.end = end;
  for (const auto& [name, value] : snap.counters) {
    if (!MatchesAnyPrefix(name, options_.counter_prefixes)) continue;
    w.counters[name] = value - CounterAt(prev_, name);
  }
  for (const auto& [name, value] : snap.gauges) {
    if (!MatchesAnyPrefix(name, options_.gauge_prefixes)) continue;
    w.gauges[name] = value - GaugeAt(prev_, name);
  }
  for (const std::string& name : options_.quantile_histograms) {
    w.quantiles[name] = QuantilesFromBucketDeltas(
        BucketDeltas(prev_, snap, name));
  }
  w.completed = CounterAt(snap, options_.completed_counter) -
                CounterAt(prev_, options_.completed_counter);
  for (const std::string& name : options_.expired_counters) {
    w.expired += CounterAt(snap, name) - CounterAt(prev_, name);
  }
  for (const std::string& name : options_.shed_counters) {
    w.shed += CounterAt(snap, name) - CounterAt(prev_, name);
  }
  w.completed_work = GaugeAt(snap, options_.completed_work_gauge) -
                     GaugeAt(prev_, options_.completed_work_gauge);
  double width = end - w.start;
  w.goodput = width > 0 ? w.completed_work / width : 0;
  w.deadline_hit_rate =
      w.completed + w.expired > 0
          ? static_cast<double>(w.completed) /
                static_cast<double>(w.completed + w.expired)
          : 1.0;
  if (options_.capture_wall_time) w.wall_ns = WallSeconds() * 1e9;
  windows_.push_back(std::move(w));
  prev_ = std::move(snap);
  window_start_ = end;
}

std::string TimeSeriesRecorder::ToJsonLines() const {
  std::string out;
  for (const TimeSeriesWindow& w : windows_) {
    out += w.ToJson(options_.capture_wall_time);
    out += "\n";
  }
  return out;
}

std::string TimeSeriesRecorder::Digest() const {
  std::string scrubbed;
  for (const TimeSeriesWindow& w : windows_) {
    scrubbed += w.ToJson(/*include_wall=*/false);
    scrubbed += "\n";
  }
  return Fnv1a64Hex(scrubbed);
}

}  // namespace xmlshred
