// Deterministic pseudo-random number generation.
//
// All synthetic data and workload generation in xmlshred draws from Rng so
// that every experiment is reproducible bit-for-bit from a seed. The
// implementation is splitmix64 (public-domain, Sebastiano Vigna): tiny,
// fast, and statistically adequate for data generation.

#ifndef XMLSHRED_COMMON_RNG_H_
#define XMLSHRED_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace xmlshred {

class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed) {}

  // Next raw 64-bit value.
  uint64_t Next64() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  // Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t Uniform(int64_t lo, int64_t hi) {
    uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
    return lo + static_cast<int64_t>(Next64() % span);
  }

  // Uniform double in [0, 1).
  double UniformDouble() {
    return static_cast<double>(Next64() >> 11) * 0x1.0p-53;
  }

  // True with probability p.
  bool Bernoulli(double p) { return UniformDouble() < p; }

  // Samples an index according to `weights` (need not be normalized).
  size_t WeightedIndex(const std::vector<double>& weights);

  // Zipf-like skewed integer in [1, n]: probability of k proportional to
  // 1 / k^theta. Uses inverse-CDF over a precomputable small n.
  int64_t Zipf(int64_t n, double theta);

 private:
  uint64_t state_;
};

}  // namespace xmlshred

#endif  // XMLSHRED_COMMON_RNG_H_
