#include "sql/binder.h"

#include <algorithm>
#include <set>

#include "common/strings.h"

namespace xmlshred {

std::vector<int> BoundBlock::ReferencedColumns(int table_idx) const {
  std::set<int> cols;
  for (const BoundItem& item : items) {
    if (!item.is_null_literal && item.ref.table_idx == table_idx) {
      cols.insert(item.ref.column);
    }
  }
  for (const BoundJoin& join : joins) {
    if (join.left.table_idx == table_idx) cols.insert(join.left.column);
    if (join.right.table_idx == table_idx) cols.insert(join.right.column);
  }
  for (const BoundFilter& filter : filters) {
    if (filter.ref.table_idx == table_idx) cols.insert(filter.ref.column);
  }
  return std::vector<int>(cols.begin(), cols.end());
}

namespace {

class BlockBinder {
 public:
  BlockBinder(const SelectBlock& block, const CatalogDesc& catalog)
      : block_(block), catalog_(catalog) {}

  Result<BoundBlock> Bind() {
    BoundBlock bound;
    for (const TableRef& ref : block_.tables) {
      const TableDesc* table = catalog_.FindTable(ref.table);
      if (table == nullptr) return NotFound("table " + ref.table);
      bound.tables.push_back(ref.table);
      bound.aliases.push_back(ref.alias.empty() ? ref.table : ref.alias);
      schemas_.push_back(&table->schema);
    }
    bound_ = &bound;
    bool any_agg = false;
    bool any_plain = false;
    for (const SelectItem& item : block_.items) {
      BoundItem bi;
      if (item.is_null_literal) {
        bi.is_null_literal = true;  // NULL padding coexists with aggregates
      } else {
        bi.agg = item.agg;
        if (item.agg == AggFunc::kNone) {
          any_plain = true;
        } else {
          any_agg = true;
        }
        if (item.agg != AggFunc::kCountStar) {
          XS_ASSIGN_OR_RETURN(bi.ref,
                              Resolve(item.table_alias, item.column));
        }
      }
      bound.items.push_back(bi);
    }
    // No GROUP BY in this subset: a block either aggregates to one row or
    // returns plain columns, never both.
    if (any_agg && any_plain) {
      return InvalidArgument(
          "cannot mix aggregates and plain columns without GROUP BY");
    }
    for (const JoinPred& join : block_.joins) {
      BoundJoin bj;
      XS_ASSIGN_OR_RETURN(bj.left, Resolve(join.left_alias, join.left_column));
      XS_ASSIGN_OR_RETURN(bj.right,
                          Resolve(join.right_alias, join.right_column));
      bound.joins.push_back(bj);
    }
    for (const FilterPred& filter : block_.filters) {
      BoundFilter bf;
      XS_ASSIGN_OR_RETURN(bf.ref, Resolve(filter.table, filter.column));
      bf.op = AsciiToLower(filter.op);
      bf.literal = filter.literal;
      bound.filters.push_back(std::move(bf));
    }
    return bound;
  }

 private:
  Result<BoundColumnRef> Resolve(const std::string& alias,
                                 const std::string& column) {
    BoundColumnRef ref;
    if (!alias.empty()) {
      for (size_t i = 0; i < bound_->aliases.size(); ++i) {
        if (EqualsIgnoreCase(bound_->aliases[i], alias)) {
          int ord = schemas_[i]->FindColumn(column);
          if (ord < 0) {
            return NotFound("column " + column + " in " + bound_->tables[i]);
          }
          ref.table_idx = static_cast<int>(i);
          ref.column = ord;
          return ref;
        }
      }
      return NotFound("alias " + alias);
    }
    // Unqualified: must resolve in exactly one table.
    int found = -1;
    for (size_t i = 0; i < schemas_.size(); ++i) {
      int ord = schemas_[i]->FindColumn(column);
      if (ord >= 0) {
        if (found >= 0) return InvalidArgument("ambiguous column " + column);
        found = static_cast<int>(i);
        ref.table_idx = found;
        ref.column = ord;
      }
    }
    if (found < 0) return NotFound("column " + column);
    return ref;
  }

  const SelectBlock& block_;
  const CatalogDesc& catalog_;
  BoundBlock* bound_ = nullptr;
  std::vector<const TableSchema*> schemas_;
};

}  // namespace

Result<BoundQuery> BindQuery(const Query& query, const CatalogDesc& catalog) {
  if (query.blocks.empty()) return InvalidArgument("query has no blocks");
  BoundQuery bound;
  for (const SelectBlock& block : query.blocks) {
    BlockBinder binder(block, catalog);
    XS_ASSIGN_OR_RETURN(BoundBlock bb, binder.Bind());
    bound.blocks.push_back(std::move(bb));
  }
  bound.num_output_columns = query.num_output_columns();
  for (int ord : query.order_by) {
    if (ord < 0 || ord >= bound.num_output_columns) {
      return OutOfRange("ORDER BY ordinal");
    }
  }
  bound.order_by = query.order_by;
  return bound;
}

}  // namespace xmlshred
