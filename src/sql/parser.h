// Recursive-descent parser for the SQL subset of sql/ast.h.
//
// Grammar (case-insensitive keywords):
//   query   := block ("UNION" "ALL" block)* ["ORDER" "BY" ord ("," ord)*]
//   block   := "SELECT" item ("," item)* "FROM" tref ("," tref)*
//              ["WHERE" pred ("AND" pred)*]
//   item    := "NULL" ["AS" ident] | [ident "."] ident ["AS" ident]
//   tref    := ident [ident]
//   pred    := colref "=" colref            (equi-join)
//            | colref op literal            (filter)
//            | colref "IS" "NOT" "NULL"
//   op      := "=" | "<" | "<=" | ">" | ">="
//   literal := 'string' | integer | float
//   ord     := integer (1-based output ordinal)

#ifndef XMLSHRED_SQL_PARSER_H_
#define XMLSHRED_SQL_PARSER_H_

#include <string_view>

#include "common/limits.h"
#include "common/status.h"
#include "sql/ast.h"

namespace xmlshred {

// Parses `sql` into a Query AST. The parser is iterative, but unbounded
// constructs (UNION ALL blocks) count against the governor's
// recursion-depth limit, so oversized queries return kResourceExhausted.
Result<Query> ParseSql(std::string_view sql,
                       ResourceGovernor* governor = nullptr);

}  // namespace xmlshred

#endif  // XMLSHRED_SQL_PARSER_H_
