// SQL abstract syntax for the subset the system needs.
//
// The sorted-outer-union translation of XPath (paper Section 1.1, [21])
// produces queries of the shape
//
//   SELECT ... FROM t1 [, t2 ...] WHERE <equi-joins> AND <simple filters>
//   UNION ALL
//   ...
//   ORDER BY <output column>
//
// so the AST models exactly that: a list of select blocks combined with
// UNION ALL, each block a conjunctive select-project-join over named
// tables, plus a final ORDER BY on output ordinals. Select items are
// column references or typed NULL literals (needed to pad outer-union
// branches).

#ifndef XMLSHRED_SQL_AST_H_
#define XMLSHRED_SQL_AST_H_

#include <string>
#include <vector>

#include "rel/value.h"
#include "rel/view.h"

namespace xmlshred {

// Scalar aggregate functions (no GROUP BY — aggregation counts or folds a
// whole block into one row, the shape XPath count()/aggregation queries
// translate to). kNone marks a plain column reference.
enum class AggFunc {
  kNone,
  kCountStar,  // COUNT(*)
  kCount,      // COUNT(col): non-NULL count
  kSum,
  kMin,
  kMax,
};

struct SelectItem {
  bool is_null_literal = false;
  AggFunc agg = AggFunc::kNone;  // aggregate applied to `column`, if any
  std::string table_alias;  // empty if unqualified
  std::string column;       // unset for NULL literals and COUNT(*)
  std::string output_name;  // AS name; may be empty

  static SelectItem Column(std::string alias, std::string column_name) {
    SelectItem item;
    item.table_alias = std::move(alias);
    item.column = std::move(column_name);
    return item;
  }
  static SelectItem NullLiteral() {
    SelectItem item;
    item.is_null_literal = true;
    return item;
  }
  static SelectItem Aggregate(AggFunc func, std::string alias,
                              std::string column_name) {
    SelectItem item;
    item.agg = func;
    item.table_alias = std::move(alias);
    item.column = std::move(column_name);
    return item;
  }
};

struct TableRef {
  std::string table;
  std::string alias;  // defaults to table name
};

// Equality join predicate a.x = b.y.
struct JoinPred {
  std::string left_alias;
  std::string left_column;
  std::string right_alias;
  std::string right_column;
};

// A filter predicate alias.column <op> literal, op in
// {=, <, <=, >, >=, IS NOT NULL}. Reuses SimplePred with `table` holding
// the alias.
using FilterPred = SimplePred;

struct SelectBlock {
  std::vector<SelectItem> items;
  std::vector<TableRef> tables;
  std::vector<JoinPred> joins;
  std::vector<FilterPred> filters;
};

struct Query {
  std::vector<SelectBlock> blocks;  // combined with UNION ALL
  std::vector<int> order_by;        // output ordinals, ascending

  int num_output_columns() const {
    return blocks.empty() ? 0 : static_cast<int>(blocks[0].items.size());
  }

  // Renders the query as SQL text.
  std::string ToSql() const;
};

}  // namespace xmlshred

#endif  // XMLSHRED_SQL_AST_H_
