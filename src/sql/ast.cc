#include "sql/ast.h"

#include "common/strings.h"

namespace xmlshred {

namespace {

std::string AggFuncName(AggFunc func) {
  switch (func) {
    case AggFunc::kNone:
    case AggFunc::kCountStar:
    case AggFunc::kCount:
      return "COUNT";
    case AggFunc::kSum:
      return "SUM";
    case AggFunc::kMin:
      return "MIN";
    case AggFunc::kMax:
      return "MAX";
  }
  return "COUNT";
}

std::string ItemToSql(const SelectItem& item) {
  std::string out;
  if (item.is_null_literal) {
    out = "NULL";
  } else if (item.agg == AggFunc::kCountStar) {
    out = "COUNT(*)";
  } else {
    out = item.table_alias.empty() ? item.column
                                   : item.table_alias + "." + item.column;
    if (item.agg != AggFunc::kNone) {
      out = AggFuncName(item.agg) + "(" + out + ")";
    }
  }
  if (!item.output_name.empty()) out += " AS " + item.output_name;
  return out;
}

std::string BlockToSql(const SelectBlock& block) {
  std::string out = "SELECT ";
  for (size_t i = 0; i < block.items.size(); ++i) {
    if (i > 0) out += ", ";
    out += ItemToSql(block.items[i]);
  }
  out += " FROM ";
  for (size_t i = 0; i < block.tables.size(); ++i) {
    if (i > 0) out += ", ";
    out += block.tables[i].table;
    if (!block.tables[i].alias.empty() &&
        block.tables[i].alias != block.tables[i].table) {
      out += " " + block.tables[i].alias;
    }
  }
  bool first = true;
  auto conj = [&first, &out]() {
    out += first ? " WHERE " : " AND ";
    first = false;
  };
  auto qualify = [](const std::string& alias, const std::string& column) {
    return alias.empty() ? column : alias + "." + column;
  };
  for (const JoinPred& j : block.joins) {
    conj();
    out += qualify(j.left_alias, j.left_column) + " = " +
           qualify(j.right_alias, j.right_column);
  }
  for (const FilterPred& f : block.filters) {
    conj();
    if (EqualsIgnoreCase(f.op, "is not null")) {
      out += qualify(f.table, f.column) + " IS NOT NULL";
    } else {
      out += qualify(f.table, f.column) + " " + f.op + " " +
             f.literal.ToString();
    }
  }
  return out;
}

}  // namespace

std::string Query::ToSql() const {
  std::string out;
  for (size_t i = 0; i < blocks.size(); ++i) {
    if (i > 0) out += " UNION ALL ";
    out += BlockToSql(blocks[i]);
  }
  if (!order_by.empty()) {
    out += " ORDER BY ";
    for (size_t i = 0; i < order_by.size(); ++i) {
      if (i > 0) out += ", ";
      out += std::to_string(order_by[i] + 1);  // SQL ordinals are 1-based
    }
  }
  return out;
}

}  // namespace xmlshred
