// Binds a SQL AST against a catalog: resolves aliases to tables and column
// names to ordinals. The optimizer consumes BoundQuery.

#ifndef XMLSHRED_SQL_BINDER_H_
#define XMLSHRED_SQL_BINDER_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "rel/catalog.h"
#include "sql/ast.h"

namespace xmlshred {

// A column of the i-th table in the block's FROM list.
struct BoundColumnRef {
  int table_idx = -1;
  int column = -1;
};

struct BoundItem {
  bool is_null_literal = false;
  AggFunc agg = AggFunc::kNone;  // kCountStar leaves `ref` unresolved
  BoundColumnRef ref;  // valid when !is_null_literal and not COUNT(*)
};

struct BoundJoin {
  BoundColumnRef left;
  BoundColumnRef right;
};

struct BoundFilter {
  BoundColumnRef ref;
  std::string op;  // =, <, <=, >, >=, "is not null"
  Value literal;
};

struct BoundBlock {
  std::vector<std::string> tables;  // resolved table names per FROM entry
  std::vector<std::string> aliases;
  std::vector<BoundItem> items;
  std::vector<BoundJoin> joins;
  std::vector<BoundFilter> filters;

  // Ordinals of every column of table `table_idx` referenced anywhere in
  // this block (select items, joins, filters), ascending and de-duplicated.
  std::vector<int> ReferencedColumns(int table_idx) const;
};

struct BoundQuery {
  std::vector<BoundBlock> blocks;
  std::vector<int> order_by;  // output ordinals
  int num_output_columns = 0;
};

// Binds `query` against `catalog`. Fails with NotFound / InvalidArgument on
// unknown tables or columns, or on ambiguous unqualified references.
Result<BoundQuery> BindQuery(const Query& query, const CatalogDesc& catalog);

}  // namespace xmlshred

#endif  // XMLSHRED_SQL_BINDER_H_
