#include "sql/parser.h"

#include <cctype>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "common/strings.h"

namespace xmlshred {

namespace {

enum class TokenKind {
  kIdent,
  kString,
  kNumber,
  kSymbol,  // punctuation and comparison operators
  kEnd,
};

struct Token {
  TokenKind kind;
  std::string text;
};

class Lexer {
 public:
  explicit Lexer(std::string_view sql) : sql_(sql) {}

  Result<std::vector<Token>> Tokenize() {
    std::vector<Token> tokens;
    while (pos_ < sql_.size()) {
      char c = sql_[pos_];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
        continue;
      }
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        size_t start = pos_;
        while (pos_ < sql_.size() &&
               (std::isalnum(static_cast<unsigned char>(sql_[pos_])) ||
                sql_[pos_] == '_')) {
          ++pos_;
        }
        tokens.push_back(
            {TokenKind::kIdent, std::string(sql_.substr(start, pos_ - start))});
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c)) ||
          (c == '-' && pos_ + 1 < sql_.size() &&
           std::isdigit(static_cast<unsigned char>(sql_[pos_ + 1])))) {
        size_t start = pos_;
        ++pos_;
        while (pos_ < sql_.size() &&
               (std::isdigit(static_cast<unsigned char>(sql_[pos_])) ||
                sql_[pos_] == '.')) {
          ++pos_;
        }
        tokens.push_back(
            {TokenKind::kNumber, std::string(sql_.substr(start, pos_ - start))});
        continue;
      }
      if (c == '\'') {
        ++pos_;
        std::string text;
        while (pos_ < sql_.size() && sql_[pos_] != '\'') {
          text.push_back(sql_[pos_++]);
        }
        if (pos_ >= sql_.size()) {
          return InvalidArgument("unterminated string literal");
        }
        ++pos_;  // closing quote
        tokens.push_back({TokenKind::kString, std::move(text)});
        continue;
      }
      if (c == '<' || c == '>') {
        std::string op(1, c);
        ++pos_;
        if (pos_ < sql_.size() && sql_[pos_] == '=') {
          op.push_back('=');
          ++pos_;
        }
        tokens.push_back({TokenKind::kSymbol, std::move(op)});
        continue;
      }
      if (c == '=' || c == ',' || c == '.' || c == '(' || c == ')' ||
          c == '*') {
        tokens.push_back({TokenKind::kSymbol, std::string(1, c)});
        ++pos_;
        continue;
      }
      return InvalidArgument(StrFormat("unexpected character '%c'", c));
    }
    tokens.push_back({TokenKind::kEnd, ""});
    return tokens;
  }

 private:
  std::string_view sql_;
  size_t pos_ = 0;
};

class Parser {
 public:
  Parser(std::vector<Token> tokens, ResourceGovernor* governor)
      : tokens_(std::move(tokens)), governor_(governor) {}

  Result<Query> ParseQuery() {
    Query query;
    // The grammar is iterative, but UNION ALL block count is unbounded
    // input-controlled growth; meter it like recursion depth. Scopes stay
    // open until the parse finishes so the count is cumulative.
    std::vector<std::unique_ptr<RecursionScope>> block_scopes;
    auto enter_block = [&]() -> Status {
      block_scopes.push_back(std::make_unique<RecursionScope>(governor_));
      return block_scopes.back()->status();
    };
    XS_RETURN_IF_ERROR(enter_block());
    XS_ASSIGN_OR_RETURN(SelectBlock first, ParseBlock());
    query.blocks.push_back(std::move(first));
    while (ConsumeKeyword("union")) {
      if (!ConsumeKeyword("all")) {
        return InvalidArgument("expected ALL after UNION");
      }
      XS_RETURN_IF_ERROR(enter_block());
      XS_ASSIGN_OR_RETURN(SelectBlock block, ParseBlock());
      if (block.items.size() != query.blocks[0].items.size()) {
        return InvalidArgument("UNION ALL blocks have differing arity");
      }
      query.blocks.push_back(std::move(block));
    }
    if (ConsumeKeyword("order")) {
      if (!ConsumeKeyword("by")) {
        return InvalidArgument("expected BY after ORDER");
      }
      do {
        const Token& tok = Peek();
        if (tok.kind == TokenKind::kNumber) {
          int ordinal = std::atoi(tok.text.c_str());
          if (ordinal < 1 ||
              ordinal > static_cast<int>(query.blocks[0].items.size())) {
            return OutOfRange("ORDER BY ordinal " + tok.text);
          }
          query.order_by.push_back(ordinal - 1);
          Advance();
        } else if (tok.kind == TokenKind::kIdent) {
          // Resolve by output name or by select-item column name.
          XS_ASSIGN_OR_RETURN(int ordinal, ResolveOrderColumn(query, tok.text));
          query.order_by.push_back(ordinal);
          Advance();
          // Allow qualified name: skip ".col" — qualification is redundant
          // for ORDER BY resolution in this subset.
          if (PeekSymbol(".")) {
            Advance();
            if (Peek().kind != TokenKind::kIdent) {
              return InvalidArgument("expected identifier after '.'");
            }
            XS_ASSIGN_OR_RETURN(ordinal,
                                ResolveOrderColumn(query, Peek().text));
            query.order_by.back() = ordinal;
            Advance();
          }
        } else {
          return InvalidArgument("expected ORDER BY column");
        }
      } while (ConsumeSymbol(","));
    }
    if (Peek().kind != TokenKind::kEnd) {
      return InvalidArgument("trailing tokens after query: " + Peek().text);
    }
    return query;
  }

 private:
  const Token& Peek(size_t ahead = 0) const {
    size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  void Advance() {
    if (pos_ + 1 < tokens_.size()) ++pos_;
  }
  bool PeekKeyword(std::string_view kw, size_t ahead = 0) const {
    const Token& tok = Peek(ahead);
    return tok.kind == TokenKind::kIdent && EqualsIgnoreCase(tok.text, kw);
  }
  bool ConsumeKeyword(std::string_view kw) {
    if (!PeekKeyword(kw)) return false;
    Advance();
    return true;
  }
  bool PeekSymbol(std::string_view sym, size_t ahead = 0) const {
    const Token& tok = Peek(ahead);
    return tok.kind == TokenKind::kSymbol && tok.text == sym;
  }
  bool ConsumeSymbol(std::string_view sym) {
    if (!PeekSymbol(sym)) return false;
    Advance();
    return true;
  }

  static Result<int> ResolveOrderColumn(const Query& query,
                                        const std::string& name) {
    const SelectBlock& block = query.blocks[0];
    for (size_t i = 0; i < block.items.size(); ++i) {
      const SelectItem& item = block.items[i];
      if (EqualsIgnoreCase(item.output_name, name) ||
          (!item.is_null_literal && EqualsIgnoreCase(item.column, name))) {
        return static_cast<int>(i);
      }
    }
    return NotFound("ORDER BY column " + name);
  }

  Result<SelectBlock> ParseBlock() {
    if (!ConsumeKeyword("select")) {
      return InvalidArgument("expected SELECT, got " + Peek().text);
    }
    SelectBlock block;
    do {
      XS_ASSIGN_OR_RETURN(SelectItem item, ParseItem());
      block.items.push_back(std::move(item));
    } while (ConsumeSymbol(","));
    if (!ConsumeKeyword("from")) {
      return InvalidArgument("expected FROM, got " + Peek().text);
    }
    do {
      const Token& tok = Peek();
      if (tok.kind != TokenKind::kIdent) {
        return InvalidArgument("expected table name");
      }
      TableRef ref;
      ref.table = tok.text;
      ref.alias = tok.text;
      Advance();
      // Optional alias: an identifier that is not a clause keyword.
      if (Peek().kind == TokenKind::kIdent && !PeekKeyword("where") &&
          !PeekKeyword("union") && !PeekKeyword("order")) {
        ref.alias = Peek().text;
        Advance();
      }
      block.tables.push_back(std::move(ref));
    } while (ConsumeSymbol(","));
    if (ConsumeKeyword("where")) {
      do {
        XS_RETURN_IF_ERROR(ParsePredicate(&block));
      } while (ConsumeKeyword("and"));
    }
    return block;
  }

  Result<SelectItem> ParseItem() {
    if (PeekKeyword("null")) {
      Advance();
      SelectItem item = SelectItem::NullLiteral();
      if (ConsumeKeyword("as")) {
        if (Peek().kind != TokenKind::kIdent) {
          return InvalidArgument("expected alias after AS");
        }
        item.output_name = Peek().text;
        Advance();
      }
      return item;
    }
    if (Peek().kind != TokenKind::kIdent) {
      return InvalidArgument("expected select item, got " + Peek().text);
    }
    // Aggregate item: COUNT(*) or COUNT/SUM/MIN/MAX([alias.]column).
    // `count`, `sum` etc. stay usable as column names — the '(' lookahead
    // disambiguates.
    if (PeekSymbol("(", 1)) {
      AggFunc func;
      if (PeekKeyword("count")) {
        func = AggFunc::kCount;
      } else if (PeekKeyword("sum")) {
        func = AggFunc::kSum;
      } else if (PeekKeyword("min")) {
        func = AggFunc::kMin;
      } else if (PeekKeyword("max")) {
        func = AggFunc::kMax;
      } else {
        return InvalidArgument("unknown function " + Peek().text);
      }
      Advance();  // function name
      Advance();  // '('
      SelectItem item;
      if (func == AggFunc::kCount && ConsumeSymbol("*")) {
        item.agg = AggFunc::kCountStar;
      } else {
        if (Peek().kind != TokenKind::kIdent) {
          return InvalidArgument("expected column inside aggregate");
        }
        item.agg = func;
        item.column = Peek().text;
        Advance();
        if (ConsumeSymbol(".")) {
          if (Peek().kind != TokenKind::kIdent) {
            return InvalidArgument("expected column after '.'");
          }
          item.table_alias = item.column;
          item.column = Peek().text;
          Advance();
        }
      }
      if (!ConsumeSymbol(")")) {
        return InvalidArgument("expected ')' after aggregate argument");
      }
      if (ConsumeKeyword("as")) {
        if (Peek().kind != TokenKind::kIdent) {
          return InvalidArgument("expected alias after AS");
        }
        item.output_name = Peek().text;
        Advance();
      }
      return item;
    }
    std::string first = Peek().text;
    Advance();
    SelectItem item;
    if (ConsumeSymbol(".")) {
      if (Peek().kind != TokenKind::kIdent) {
        return InvalidArgument("expected column after '.'");
      }
      item.table_alias = first;
      item.column = Peek().text;
      Advance();
    } else {
      item.column = first;
    }
    if (ConsumeKeyword("as")) {
      if (Peek().kind != TokenKind::kIdent) {
        return InvalidArgument("expected alias after AS");
      }
      item.output_name = Peek().text;
      Advance();
    }
    return item;
  }

  // Parses one predicate and appends it to block->joins or block->filters.
  Status ParsePredicate(SelectBlock* block) {
    if (Peek().kind != TokenKind::kIdent) {
      return InvalidArgument("expected predicate column");
    }
    std::string alias;
    std::string column = Peek().text;
    Advance();
    if (ConsumeSymbol(".")) {
      alias = column;
      if (Peek().kind != TokenKind::kIdent) {
        return InvalidArgument("expected column after '.'");
      }
      column = Peek().text;
      Advance();
    }
    if (PeekKeyword("is")) {
      Advance();
      if (!ConsumeKeyword("not") || !ConsumeKeyword("null")) {
        return InvalidArgument("expected IS NOT NULL");
      }
      FilterPred pred;
      pred.table = alias;
      pred.column = column;
      pred.op = "is not null";
      block->filters.push_back(std::move(pred));
      return Status::OK();
    }
    const Token& op_tok = Peek();
    if (op_tok.kind != TokenKind::kSymbol ||
        (op_tok.text != "=" && op_tok.text != "<" && op_tok.text != "<=" &&
         op_tok.text != ">" && op_tok.text != ">=")) {
      return InvalidArgument("expected comparison operator, got " +
                             op_tok.text);
    }
    std::string op = op_tok.text;
    Advance();
    const Token& rhs = Peek();
    if (rhs.kind == TokenKind::kIdent) {
      // Column = column: only equality joins are supported.
      if (op != "=") {
        return Unimplemented("non-equality join predicate");
      }
      std::string ralias;
      std::string rcolumn = rhs.text;
      Advance();
      if (ConsumeSymbol(".")) {
        ralias = rcolumn;
        if (Peek().kind != TokenKind::kIdent) {
          return InvalidArgument("expected column after '.'");
        }
        rcolumn = Peek().text;
        Advance();
      }
      JoinPred join;
      join.left_alias = alias;
      join.left_column = column;
      join.right_alias = ralias;
      join.right_column = rcolumn;
      block->joins.push_back(std::move(join));
      return Status::OK();
    }
    FilterPred pred;
    pred.table = alias;
    pred.column = column;
    pred.op = op;
    if (rhs.kind == TokenKind::kString) {
      pred.literal = Value::Str(rhs.text);
    } else if (rhs.kind == TokenKind::kNumber) {
      if (rhs.text.find('.') != std::string::npos) {
        pred.literal = Value::Real(std::atof(rhs.text.c_str()));
      } else {
        pred.literal = Value::Int(std::atoll(rhs.text.c_str()));
      }
    } else {
      return InvalidArgument("expected literal, got " + rhs.text);
    }
    Advance();
    block->filters.push_back(std::move(pred));
    return Status::OK();
  }

  std::vector<Token> tokens_;
  ResourceGovernor* governor_;
  size_t pos_ = 0;
};

}  // namespace

Result<Query> ParseSql(std::string_view sql, ResourceGovernor* governor) {
  ResourceGovernor stack_safety;  // used when the caller passes none
  if (governor == nullptr) governor = &stack_safety;
  Lexer lexer(sql);
  XS_ASSIGN_OR_RETURN(std::vector<Token> tokens, lexer.Tokenize());
  Parser parser(std::move(tokens), governor);
  return parser.ParseQuery();
}

}  // namespace xmlshred
