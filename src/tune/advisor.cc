#include "tune/advisor.h"

#include <algorithm>
#include <limits>
#include <map>

#include "common/fault_injection.h"
#include "common/logging.h"
#include "common/metrics.h"
#include "common/strings.h"
#include "common/trace.h"
#include "opt/cost_model.h"
#include "sql/binder.h"

namespace xmlshred {

namespace {

struct Candidate {
  bool is_view = false;
  IndexDesc index;
  ViewDesc view;
  int64_t pages = 0;
  std::set<std::string> tables_touched;

  const std::string& name() const {
    return is_view ? view.def.name : index.def.name;
  }
};

std::string IndexKey(const std::string& table, const std::vector<int>& keys,
                     const std::vector<int>& includes) {
  std::string out = "I|" + table + "|";
  for (int k : keys) out += std::to_string(k) + ",";
  out += "|";
  for (int c : includes) out += std::to_string(c) + ",";
  return out;
}

double IndexEntryBytes(const TableDesc& table, const std::vector<int>& keys,
                       const std::vector<int>& includes) {
  double bytes = 8.0;  // row id
  for (int c : keys) {
    bytes += table.stats.columns[static_cast<size_t>(c)].avg_bytes;
  }
  for (int c : includes) {
    bytes += table.stats.columns[static_cast<size_t>(c)].avg_bytes;
  }
  return bytes;
}

// Generates per-query candidates into `pool`, deduplicating by structure.
class CandidateGenerator {
 public:
  CandidateGenerator(const TunerOptions& options, const CatalogDesc& base,
                     int* optimizer_calls)
      : options_(options), base_(base), optimizer_calls_(optimizer_calls) {}

  Status AddQuery(int query_idx, const Query& query,
                  const BoundQuery& bound) {
    for (size_t b = 0; b < bound.blocks.size(); ++b) {
      XS_RETURN_IF_ERROR(
          AddBlock(query_idx, query.blocks[b], bound.blocks[b]));
    }
    return Status::OK();
  }

  std::vector<Candidate> TakePool() {
    std::vector<Candidate> out;
    out.reserve(pool_.size());
    for (auto& [key, cand] : pool_) out.push_back(std::move(cand));
    return out;
  }

 private:
  void AddIndexCandidate(const std::string& table,
                         const std::vector<int>& keys,
                         std::vector<int> includes) {
    if (!options_.enable_indexes || keys.empty()) return;
    const TableDesc* desc = base_.FindTable(table);
    if (desc == nullptr) return;  // unknown table: no candidate
    // Drop include columns that repeat keys.
    includes.erase(std::remove_if(includes.begin(), includes.end(),
                                  [&keys](int c) {
                                    return std::find(keys.begin(), keys.end(),
                                                     c) != keys.end();
                                  }),
                   includes.end());
    std::string key = IndexKey(table, keys, includes);
    if (pool_.count(key) > 0) return;
    Candidate cand;
    cand.index.def.table = table;
    cand.index.def.key_columns = keys;
    cand.index.def.included_columns = includes;
    cand.index.hypothetical = true;
    cand.index.entry_count = desc->row_count();
    cand.index.entry_bytes = IndexEntryBytes(*desc, keys, includes);
    cand.pages = cand.index.NumPages();
    cand.tables_touched.insert(table);
    // Deterministic, readable name.
    std::string name = "ix_" + table;
    for (int c : keys) {
      name += "_" + desc->schema.columns[static_cast<size_t>(c)].name;
    }
    if (!includes.empty()) name += "_inc" + std::to_string(includes.size());
    cand.index.def.name = name + "_" + std::to_string(pool_.size());
    pool_[key] = std::move(cand);
  }

  Status AddBlock(int query_idx, const SelectBlock& ast_block,
                  const BoundBlock& block) {
    int n = static_cast<int>(block.tables.size());
    for (int t = 0; t < n; ++t) {
      const std::string& table = block.tables[static_cast<size_t>(t)];
      const TableDesc* desc = base_.FindTable(table);
      if (desc == nullptr) return NotFound("table " + table);
      std::vector<int> referenced = block.ReferencedColumns(t);

      // Filter columns, equality first ordered by selectivity.
      std::vector<std::pair<double, int>> eq_cols;
      std::vector<int> range_cols;
      for (const BoundFilter& f : block.filters) {
        if (f.ref.table_idx != t) continue;
        if (f.op == "=") {
          double sel = FilterSelectivity(
              desc->stats.columns[static_cast<size_t>(f.ref.column)], f.op,
              f.literal);
          eq_cols.emplace_back(sel, f.ref.column);
        } else if (f.op != "is not null") {
          range_cols.push_back(f.ref.column);
        }
      }
      std::sort(eq_cols.begin(), eq_cols.end());

      std::vector<int> keys;
      for (const auto& [sel, col] : eq_cols) {
        if (static_cast<int>(keys.size()) < options_.max_key_columns) {
          keys.push_back(col);
        }
      }
      if (static_cast<int>(keys.size()) < options_.max_key_columns &&
          !range_cols.empty()) {
        keys.push_back(range_cols[0]);
      }
      if (!keys.empty()) {
        AddIndexCandidate(table, {keys[0]}, {});
        if (keys.size() > 1) AddIndexCandidate(table, keys, {});
        AddIndexCandidate(table, keys, referenced);  // covering
      }
      // Join-support indexes.
      for (const BoundJoin& join : block.joins) {
        int col = -1;
        if (join.left.table_idx == t) col = join.left.column;
        if (join.right.table_idx == t) col = join.right.column;
        if (col < 0) continue;
        AddIndexCandidate(table, {col}, {});
        AddIndexCandidate(table, {col}, referenced);  // enables covering INL
      }
    }

    if (options_.enable_views && n <= 2 && !block.filters.empty()) {
      XS_RETURN_IF_ERROR(AddViewCandidate(query_idx, ast_block, block));
    }
    return Status::OK();
  }

  Status AddViewCandidate(int query_idx, const SelectBlock& ast_block,
                          const BoundBlock& block) {
    // Identify base (ID side) and child (PID side) tables.
    int base_idx = 0, child_idx = -1;
    if (block.tables.size() == 2) {
      if (block.joins.size() != 1) return Status::OK();
      const BoundJoin& join = block.joins[0];
      const TableDesc* left =
          base_.FindTable(block.tables[static_cast<size_t>(
              join.left.table_idx)]);
      if (left == nullptr) return Status::OK();
      bool left_is_child = join.left.column == left->schema.pid_column;
      base_idx = left_is_child ? join.right.table_idx : join.left.table_idx;
      child_idx = left_is_child ? join.left.table_idx : join.right.table_idx;
      if (base_idx == child_idx) return Status::OK();
    }
    (void)ast_block;

    ViewDef def;
    def.base_table = block.tables[static_cast<size_t>(base_idx)];
    const TableDesc* base_desc = base_.FindTable(def.base_table);
    const TableDesc* child_desc = nullptr;
    if (child_idx >= 0) {
      def.join_child = block.tables[static_cast<size_t>(child_idx)];
      child_desc = base_.FindTable(*def.join_child);
    }
    for (const BoundFilter& f : block.filters) {
      const std::string& table =
          block.tables[static_cast<size_t>(f.ref.table_idx)];
      const TableDesc* desc = base_.FindTable(table);
      SimplePred pred;
      pred.table = table;
      pred.column = desc->schema.columns[static_cast<size_t>(f.ref.column)].name;
      pred.op = f.op;
      pred.literal = f.literal;
      def.preds.push_back(std::move(pred));
    }
    // Project every referenced column of every table.
    double row_bytes = 0;
    for (size_t t = 0; t < block.tables.size(); ++t) {
      const TableDesc* desc = base_.FindTable(block.tables[t]);
      for (int c : block.ReferencedColumns(static_cast<int>(t))) {
        def.projected.push_back(
            {block.tables[t], desc->schema.columns[static_cast<size_t>(c)].name});
        row_bytes += desc->stats.columns[static_cast<size_t>(c)].avg_bytes;
      }
    }
    if (def.projected.empty()) return Status::OK();
    def.name = StrFormat("mv_q%d_%s_%zu", query_idx, def.base_table.c_str(),
                         pool_.size());

    // Row estimate: base rows filtered, times child fanout for joins.
    double rows = static_cast<double>(base_desc->row_count());
    for (const BoundFilter& f : block.filters) {
      const TableDesc* desc =
          base_.FindTable(block.tables[static_cast<size_t>(f.ref.table_idx)]);
      rows *= FilterSelectivity(
          desc->stats.columns[static_cast<size_t>(f.ref.column)], f.op,
          f.literal);
    }
    if (child_desc != nullptr && base_desc->row_count() > 0) {
      rows *= static_cast<double>(child_desc->row_count()) /
              static_cast<double>(base_desc->row_count());
    }

    Candidate cand;
    cand.is_view = true;
    cand.view.def = def;
    cand.view.hypothetical = true;
    cand.view.output_schema =
        def.OutputSchema(base_desc->schema,
                         child_desc ? &child_desc->schema : nullptr);
    cand.view.stats.row_count = static_cast<int64_t>(rows + 0.5);
    // Column stats: source column stats scaled to the view population.
    for (const ViewColumn& vc : def.projected) {
      const TableDesc* src = base_.FindTable(vc.table);
      int ord = src->schema.FindColumn(vc.column);
      const ColumnStats& source =
          src->stats.columns[static_cast<size_t>(ord)];
      double factor =
          src->row_count() > 0
              ? rows / static_cast<double>(src->row_count())
              : 0.0;
      cand.view.stats.columns.push_back(
          ScaleColumnStats(source, std::min(factor, 1.0)));
    }
    cand.pages = cand.view.NumPages();
    cand.tables_touched.insert(def.base_table);
    if (def.join_child.has_value()) cand.tables_touched.insert(*def.join_child);
    std::string key = "V|" + def.ToString();
    if (pool_.count(key) == 0) pool_[key] = std::move(cand);
    return Status::OK();
  }

  const TunerOptions& options_;
  const CatalogDesc& base_;
  int* optimizer_calls_;
  std::map<std::string, Candidate> pool_;
};

}  // namespace

namespace {

// Per-inserted-row maintenance charge for one index (a B+-tree descent
// and a leaf write) and one materialized view (delta evaluation + write).
constexpr double kIndexMaintenanceCost = 2.0 * kRandPageCost * 0.001;
constexpr double kViewMaintenanceCost = 3.0 * kRandPageCost * 0.001;

}  // namespace

Result<TunerResult> PhysicalDesignAdvisor::Tune(
    const std::vector<WeightedQuery>& workload, const CatalogDesc& base,
    int64_t reserved_pages, const std::vector<UpdateRate>& update_rates) {
  FaultInjector* faults = options_.exec.faults != nullptr
                              ? options_.exec.faults
                              : FaultInjector::Global();
  XS_RETURN_IF_ERROR(faults->Check(kFaultSiteAdvisorTune));
  // "advisor.*" counters are live atomic increments — commutative integer
  // sums, so the totals match the serial run at any thread count for
  // non-truncated, fault-free runs (truncation stops workers at a timing-
  // dependent point; that carve-out is documented in DESIGN.md §9).
  MetricsRegistry* metrics = options_.exec.metrics;
  Counter* tune_calls = nullptr;
  Counter* optimizer_calls_counter = nullptr;
  Counter* rollbacks_counter = nullptr;
  Counter* skipped_counter = nullptr;
  Counter* truncated_counter = nullptr;
  if (metrics != nullptr) {
    tune_calls = metrics->counter(kMetricAdvisorTuneCalls);
    optimizer_calls_counter = metrics->counter(kMetricAdvisorOptimizerCalls);
    rollbacks_counter = metrics->counter(kMetricAdvisorWhatifRollbacks);
    skipped_counter = metrics->counter(kMetricAdvisorCandidatesSkipped);
    truncated_counter = metrics->counter(kMetricAdvisorTruncatedRuns);
    tune_calls->Increment();
  }
  SpanScope span(options_.exec.trace, "advisor.tune");
  span.Attr("queries", static_cast<int64_t>(workload.size()));
  TunerResult result;
  ResourceGovernor* governor = options_.exec.governor != nullptr
                                   ? options_.exec.governor
                                   : options_.governor;
  CatalogDesc current = base;  // working catalog: base + chosen so far

  // Bind every query once and note the tables it touches.
  std::vector<BoundQuery> bound;
  std::vector<std::set<std::string>> query_tables;
  for (const WeightedQuery& wq : workload) {
    auto b = BindQuery(wq.query, base);
    if (!b.ok()) return b.status();
    std::set<std::string> tables;
    for (const BoundBlock& block : b->blocks) {
      for (const std::string& t : block.tables) tables.insert(t);
    }
    bound.push_back(std::move(*b));
    query_tables.push_back(std::move(tables));
  }

  // Candidate generation.
  CandidateGenerator generator(options_, base, &result.optimizer_calls);
  for (size_t i = 0; i < workload.size(); ++i) {
    XS_RETURN_IF_ERROR(generator.AddQuery(static_cast<int>(i),
                                          workload[i].query, bound[i]));
  }
  std::vector<Candidate> pool = generator.TakePool();

  // Baseline costs. One work unit ~ one optimizer call. Baseline (and
  // final) costing is `mandatory`: it charges the governor but proceeds
  // even when the budget has run out, so an exhausted tuner still returns
  // a consistent, fully costed result — just with nothing selected.
  PlannerOptions planner_options;
  planner_options.metrics = metrics;
  auto plan_query = [&](size_t i, std::set<std::string>* objects,
                        bool mandatory) -> Result<double> {
    if (governor != nullptr) {
      Status charged = governor->ChargeWork(1.0);
      if (!charged.ok()) {
        result.truncated = true;
        if (!mandatory) return charged;
      }
    }
    ++result.optimizer_calls;
    auto planned = PlanQuery(bound[i], current, planner_options);
    if (!planned.ok()) return planned.status();
    if (objects != nullptr) *objects = std::move(planned->objects_used);
    return planned->est_cost;
  };

  result.query_costs.resize(workload.size());
  result.query_objects.resize(workload.size());
  double total = 0;
  for (size_t i = 0; i < workload.size(); ++i) {
    XS_ASSIGN_OR_RETURN(result.query_costs[i],
                        plan_query(i, &result.query_objects[i],
                                   /*mandatory=*/true));
    total += workload[i].weight * result.query_costs[i];
  }

  int64_t budget =
      options_.storage_bound_pages - base.DataPages() - reserved_pages;
  std::vector<bool> chosen(pool.size(), false);

  auto rate_of = [&update_rates](const std::string& table) {
    for (const UpdateRate& rate : update_rates) {
      if (rate.table == table) return rate.rows_per_unit;
    }
    return 0.0;
  };
  auto maintenance_of = [&](const Candidate& cand) {
    double cost = 0;
    if (cand.is_view) {
      cost += rate_of(cand.view.def.base_table) * kViewMaintenanceCost;
      if (cand.view.def.join_child.has_value()) {
        cost += rate_of(*cand.view.def.join_child) * kViewMaintenanceCost;
      }
    } else {
      cost += rate_of(cand.index.def.table) * kIndexMaintenanceCost;
    }
    return cost;
  };

  // Evaluates candidate `c` against the current configuration: returns
  // its total-cost benefit and the per-query costs it would yield.
  auto evaluate = [&](size_t c, double* benefit,
                      std::vector<double>* costs) -> Status {
    if (pool[c].is_view) {
      current.views.push_back(pool[c].view);
    } else {
      current.indexes.push_back(pool[c].index);
    }
    double new_total = 0;
    *costs = result.query_costs;
    // The candidate is now hypothetically present; any failure below must
    // still fall through to the pop so the working catalog rolls back to
    // exactly the chosen configuration.
    Status status = faults->Check(kFaultSiteAdvisorWhatIf);
    for (size_t i = 0; status.ok() && i < workload.size(); ++i) {
      bool affected = false;
      for (const std::string& t : pool[c].tables_touched) {
        if (query_tables[i].count(t) > 0) affected = true;
      }
      if (affected) {
        auto cost = plan_query(i, nullptr, /*mandatory=*/false);
        if (!cost.ok()) {
          status = cost.status();
          break;
        }
        (*costs)[i] = *cost;
      }
      new_total += workload[i].weight * (*costs)[i];
    }
    if (pool[c].is_view) {
      current.views.pop_back();
    } else {
      current.indexes.pop_back();
    }
    if (!status.ok()) {
      ++result.whatif_rollbacks;
      return status;
    }
    *benefit = total - new_total - maintenance_of(pool[c]);
    return Status::OK();
  };

  // Lazy (CELF-style) greedy selection: benefits only shrink as the
  // configuration grows, so a candidate whose cached score still tops the
  // heap after re-evaluation is the exact greedy choice — most candidates
  // are never re-costed in later rounds.
  std::vector<double> cached_score(pool.size(),
                                   std::numeric_limits<double>::infinity());
  bool out_of_budget = false;
  while (!out_of_budget) {
    if (governor != nullptr &&
        (governor->exhausted() || !governor->CheckDeadline().ok())) {
      result.truncated = true;
      break;
    }
    std::vector<size_t> order;
    for (size_t c = 0; c < pool.size(); ++c) {
      if (!chosen[c] && pool[c].pages <= budget) order.push_back(c);
    }
    if (order.empty()) break;
    auto by_score = [&](size_t a, size_t b) {
      return cached_score[a] < cached_score[b];
    };
    std::make_heap(order.begin(), order.end(), by_score);

    int best = -1;
    double best_benefit = 0;
    std::vector<double> best_costs;
    std::vector<bool> fresh(pool.size(), false);
    while (!order.empty()) {
      std::pop_heap(order.begin(), order.end(), by_score);
      size_t c = order.back();
      order.pop_back();
      if (fresh[c]) {
        // Freshly evaluated and still on top: exact greedy winner.
        if (cached_score[c] <= 0) break;
        double benefit;
        std::vector<double> costs;
        Status eval = evaluate(c, &benefit, &costs);
        if (!eval.ok()) {
          if (eval.code() == StatusCode::kResourceExhausted) {
            out_of_budget = true;
            break;
          }
          ++result.candidates_skipped;
          continue;
        }
        best = static_cast<int>(c);
        best_benefit = benefit;
        best_costs = std::move(costs);
        break;
      }
      double benefit;
      std::vector<double> costs;
      Status eval = evaluate(c, &benefit, &costs);
      if (!eval.ok()) {
        if (eval.code() == StatusCode::kResourceExhausted) {
          out_of_budget = true;
          break;
        }
        ++result.candidates_skipped;
        cached_score[c] = 0;
        continue;
      }
      cached_score[c] =
          benefit / static_cast<double>(std::max<int64_t>(pool[c].pages, 1));
      fresh[c] = true;
      if (benefit <= 0) {
        cached_score[c] = 0;
        continue;
      }
      order.push_back(c);
      std::push_heap(order.begin(), order.end(), by_score);
    }
    if (out_of_budget) {
      result.truncated = true;
      break;
    }
    if (best < 0 || best_benefit < options_.min_benefit_fraction * total) {
      break;
    }
    chosen[static_cast<size_t>(best)] = true;
    budget -= pool[static_cast<size_t>(best)].pages;
    result.structure_pages += pool[static_cast<size_t>(best)].pages;
    if (pool[static_cast<size_t>(best)].is_view) {
      current.views.push_back(pool[static_cast<size_t>(best)].view);
      result.views.push_back(pool[static_cast<size_t>(best)].view);
    } else {
      current.indexes.push_back(pool[static_cast<size_t>(best)].index);
      result.indexes.push_back(pool[static_cast<size_t>(best)].index);
    }
    result.maintenance_cost +=
        maintenance_of(pool[static_cast<size_t>(best)]);
    result.query_costs = std::move(best_costs);
    total = 0;
    for (size_t i = 0; i < workload.size(); ++i) {
      total += workload[i].weight * result.query_costs[i];
    }
  }

  // Final per-query object sets under the chosen configuration (mandatory
  // so a truncated run still reports exact costs for what it picked).
  total = 0;
  for (size_t i = 0; i < workload.size(); ++i) {
    XS_ASSIGN_OR_RETURN(result.query_costs[i],
                        plan_query(i, &result.query_objects[i],
                                   /*mandatory=*/true));
    total += workload[i].weight * result.query_costs[i];
  }
  result.total_cost = total + result.maintenance_cost;
  // Publish the whole call's counts in one batch (not per increment), so
  // a call that fails with an error publishes nothing — matching the
  // search-side aggregation, which also only sees successful calls.
  if (metrics != nullptr) {
    optimizer_calls_counter->Add(result.optimizer_calls);
    rollbacks_counter->Add(result.whatif_rollbacks);
    skipped_counter->Add(result.candidates_skipped);
    if (result.truncated) truncated_counter->Increment();
  }
  span.Attr("optimizer_calls", result.optimizer_calls);
  span.Attr("whatif_rollbacks", result.whatif_rollbacks);
  span.Attr("truncated", result.truncated);
  return result;
}

RunReport TunerResult::ToReport() const {
  RunReport report;
  report.advisor.tune_calls = 1;
  report.advisor.optimizer_calls = optimizer_calls;
  report.advisor.whatif_rollbacks = whatif_rollbacks;
  report.advisor.candidates_skipped = candidates_skipped;
  report.advisor.truncated = truncated;
  return report;
}

Status ApplyConfiguration(const TunerResult& result, Database* db) {
  // All-or-nothing: a failure mid-apply (e.g. an injected index-build or
  // materialization fault) drops every structure created so far, so the
  // database is left exactly as it was and the apply can be retried.
  std::vector<std::string> created_views;
  std::vector<std::string> created_indexes;
  auto rollback = [&](Status status) {
    for (const std::string& name : created_indexes) db->DropIndex(name);
    for (const std::string& name : created_views) {
      db->DropMaterializedView(name);
    }
    return status;
  };
  for (const ViewDesc& view : result.views) {
    Status status = db->CreateMaterializedView(view.def);
    if (!status.ok()) return rollback(std::move(status));
    created_views.push_back(view.def.name);
  }
  for (const IndexDesc& index : result.indexes) {
    Status status = db->CreateIndex(index.def);
    if (!status.ok()) return rollback(std::move(status));
    created_indexes.push_back(index.def.name);
  }
  return Status::OK();
}

}  // namespace xmlshred
