// What-if physical design advisor — the stand-in for the SQL Server Index
// Tuning Wizard the paper uses as its black-box physical design tool
// ([2], [7]).
//
// Given a weighted SQL workload and a descriptor catalog (real or derived
// from XML statistics — no rows needed), the advisor:
//
//  1. generates per-query candidates: single- and multi-column indexes on
//     filter columns, covering indexes (keys + INCLUDE of every referenced
//     column), join-support indexes on PID (covering ones enable index
//     nested loops), and whole-block materialized views;
//  2. sizes each candidate from statistics (hypothetical objects);
//  3. greedily picks the candidate with the best benefit/size ratio under
//     the storage bound, re-costing the workload through the query
//     optimizer after each pick (skipping queries that do not reference
//     the candidate's table).
//
// The result reports per-query costs and the set of objects each query's
// plan uses — the I(Q, M) sets the search algorithm's cost derivation
// (§4.8) relies on — plus the optimizer-call count, the dominant component
// of design-tool running time.

#ifndef XMLSHRED_TUNE_ADVISOR_H_
#define XMLSHRED_TUNE_ADVISOR_H_

#include <set>
#include <string>
#include <vector>

#include "common/exec_context.h"
#include "common/limits.h"
#include "common/run_report.h"
#include "common/status.h"
#include "opt/planner.h"
#include "rel/catalog.h"
#include "sql/ast.h"

namespace xmlshred {

struct TunerOptions {
  // Bound on data pages + physical structure pages (Definition 1's S).
  int64_t storage_bound_pages = 1LL << 40;
  bool enable_indexes = true;
  bool enable_views = true;
  int max_key_columns = 2;
  // Stop when the best remaining candidate improves total cost by less
  // than this fraction.
  double min_benefit_fraction = 0.005;
  // Optional resource governor. The advisor charges one work unit per
  // optimizer call; when the budget or deadline runs out it stops
  // selecting candidates and returns the best configuration found so far
  // with `truncated` set (baseline costing is mandatory and always
  // completes, so the result is never worse than no tuning).
  //
  // Deprecated in favour of `exec.governor`; still honored.
  ResourceGovernor* governor = nullptr;
  // Execution environment (DESIGN.md §9). `exec.governor` wins over the
  // legacy field; `exec.metrics` receives the "advisor.*" counters;
  // `exec.faults` overrides the process-global injector. `exec.trace` is
  // used only when the advisor is invoked directly (the search calls the
  // advisor from parallel workers and deliberately does not share its
  // sink — a TraceSink is single-threaded by design).
  ExecContext exec;
};

struct TunerResult {
  std::vector<IndexDesc> indexes;
  std::vector<ViewDesc> views;
  // Sum of weight * estimated query cost plus structure maintenance.
  double total_cost = 0;
  double maintenance_cost = 0;         // update-driven component
  std::vector<double> query_costs;     // estimated cost per query
  std::vector<std::set<std::string>> query_objects;  // I(Q) per query
  int64_t structure_pages = 0;
  int optimizer_calls = 0;
  // Anytime/robustness telemetry.
  bool truncated = false;       // selection stopped early on budget/deadline
  int whatif_rollbacks = 0;     // what-if catalog pops taken on a failure
  int candidates_skipped = 0;   // candidates dropped after a failed what-if

  // This tuner call's numbers as a unified run report (advisor section
  // only; search and cost-cache sections stay zero).
  RunReport ToReport() const;
};

// Insert load on one relation: expected rows inserted per workload unit.
// Every index on the relation and every view reading it pays a
// maintenance cost per inserted row — the update-query extension the
// paper leaves as future work.
struct UpdateRate {
  std::string table;
  double rows_per_unit = 0;
};

struct WeightedQuery {
  Query query;
  double weight = 1.0;
};

class PhysicalDesignAdvisor {
 public:
  explicit PhysicalDesignAdvisor(TunerOptions options)
      : options_(options) {}

  // Tunes physical design for `workload` over `base` (tables + stats;
  // any pre-existing indexes/views in `base` stay available).
  // `reserved_pages` is subtracted from the structure budget — cost
  // derivation passes the sizes of carried-over structures here.
  // `update_rates` charges candidate structures for insert maintenance,
  // so update-heavy relations attract fewer indexes and views.
  Result<TunerResult> Tune(const std::vector<WeightedQuery>& workload,
                           const CatalogDesc& base,
                           int64_t reserved_pages = 0,
                           const std::vector<UpdateRate>& update_rates = {});

 private:
  TunerOptions options_;
};

// Materializes a tuner configuration on a real database: builds the
// recommended indexes and materialized views.
Status ApplyConfiguration(const TunerResult& result, Database* db);

}  // namespace xmlshred

#endif  // XMLSHRED_TUNE_ADVISOR_H_
