#include "mapping/mapping.h"

#include <set>

#include "common/logging.h"

namespace xmlshred {

TableSchema MappedRelation::ToTableSchema() const {
  TableSchema schema;
  schema.name = table_name;
  schema.columns.push_back({"ID", ColumnType::kInt64, false});
  schema.columns.push_back({"PID", ColumnType::kInt64, true});
  schema.id_column = 0;
  schema.pid_column = 1;
  for (const MappedColumn& col : columns) {
    schema.columns.push_back({col.name, col.type, col.nullable});
  }
  return schema;
}

int MappedRelation::FindMappedColumn(const std::string& column_name) const {
  for (size_t i = 0; i < columns.size(); ++i) {
    if (columns[i].name == column_name) return static_cast<int>(i);
  }
  return -1;
}

namespace {

bool IsLeafTag(const SchemaNode* node) {
  return node->kind() == SchemaNodeKind::kTag && node->num_children() == 1 &&
         node->child(0)->kind() == SchemaNodeKind::kSimpleType;
}

// One leaf found under an anchor: the path-derived column name plus
// presence info.
struct LeafInfo {
  std::string path_name;
  const SchemaNode* leaf = nullptr;
  bool optional = false;
};

// Collects the inlined leaves under `node` (which is inside the content of
// an anchor), without descending into annotated tags. `prefix` accumulates
// nested unannotated tag names; `optional` tracks option/choice ancestry.
void CollectLeaves(const SchemaNode* node, const std::string& prefix,
                   bool optional, std::vector<LeafInfo>* out) {
  switch (node->kind()) {
    case SchemaNodeKind::kTag: {
      if (node->is_annotated()) return;  // separate relation
      if (IsLeafTag(node)) {
        LeafInfo info;
        info.path_name = prefix.empty() ? node->name()
                                        : prefix + "_" + node->name();
        if (node->rep_split_index() > 0) {
          info.path_name += "_" + std::to_string(node->rep_split_index());
        }
        info.leaf = node;
        info.optional = optional || node->rep_split_index() > 0;
        out->push_back(std::move(info));
        return;
      }
      // Unannotated complex tag: descend with extended prefix.
      std::string next_prefix =
          prefix.empty() ? node->name() : prefix + "_" + node->name();
      for (const auto& child : node->children()) {
        CollectLeaves(child.get(), next_prefix, optional, out);
      }
      return;
    }
    case SchemaNodeKind::kSequence:
      for (const auto& child : node->children()) {
        CollectLeaves(child.get(), prefix, optional, out);
      }
      return;
    case SchemaNodeKind::kOption:
    case SchemaNodeKind::kChoice:
      for (const auto& child : node->children()) {
        CollectLeaves(child.get(), prefix, /*optional=*/true, out);
      }
      return;
    case SchemaNodeKind::kRepetition:
      // Set-valued children are annotated (separate relations); nothing
      // inlines from here.
      return;
    case SchemaNodeKind::kSimpleType:
      return;
  }
}

}  // namespace

Result<Mapping> Mapping::Build(const SchemaTree& tree) {
  XS_RETURN_IF_ERROR(tree.Validate());
  Mapping mapping;

  // Gather anchors grouped by annotation, in document order.
  std::vector<const SchemaNode*> anchors;
  tree.Visit([&anchors](const SchemaNode* node) {
    if (node->kind() == SchemaNodeKind::kTag && node->is_annotated()) {
      anchors.push_back(node);
    }
  });

  std::map<std::string, int> relation_index;
  for (const SchemaNode* anchor : anchors) {
    const std::string& name = anchor->annotation();
    auto it = relation_index.find(name);
    if (it == relation_index.end()) {
      relation_index[name] = static_cast<int>(mapping.relations_.size());
      MappedRelation rel;
      rel.table_name = name;
      mapping.relations_.push_back(std::move(rel));
      it = relation_index.find(name);
    }
    int rel_idx = it->second;
    MappedRelation& rel = mapping.relations_[static_cast<size_t>(rel_idx)];
    rel.anchor_node_ids.push_back(anchor->id());
    mapping.anchor_relation_[anchor->id()] = rel_idx;
    const SchemaNode* parent_anchor = anchor->NearestAnnotatedAncestor();
    if (parent_anchor != nullptr) {
      const std::string& parent_name = parent_anchor->annotation();
      bool seen = false;
      for (const std::string& p : rel.parent_tables) {
        if (p == parent_name) {
          seen = true;
          break;
        }
      }
      if (!seen) rel.parent_tables.push_back(parent_name);
    }
    if (anchor->parent() != nullptr &&
        anchor->parent()->kind() == SchemaNodeKind::kRepetition &&
        anchor->parent()->rep_overflow_from() > 0) {
      rel.rep_overflow_from = anchor->parent()->rep_overflow_from();
    }

    // Collect this anchor's inlined leaves and merge them into the
    // relation's column list by path name.
    std::vector<LeafInfo> leaves;
    if (IsLeafTag(anchor)) {
      // The anchor itself carries a value (e.g. an outlined or set-valued
      // simple element like author): store it as a column named after the
      // tag.
      LeafInfo info;
      info.path_name = anchor->name();
      info.leaf = anchor;
      info.optional = false;
      leaves.push_back(std::move(info));
    } else {
      for (const auto& child : anchor->children()) {
        CollectLeaves(child.get(), "", /*optional=*/false, &leaves);
      }
    }
    bool merged_anchor = rel.anchor_node_ids.size() > 1;
    std::set<std::string> seen_paths;
    for (const LeafInfo& leaf : leaves) {
      std::string column_name = leaf.path_name;
      // Disambiguate duplicate names within one anchor (e.g. two distinct
      // leaves both named "note").
      int suffix = 2;
      while (seen_paths.count(column_name) > 0) {
        column_name = leaf.path_name + "_" + std::to_string(suffix++);
      }
      seen_paths.insert(column_name);

      int col_idx = rel.FindMappedColumn(column_name);
      if (col_idx < 0) {
        MappedColumn col;
        col.name = column_name;
        col.element_name = leaf.leaf->name();
        col.type = BaseTypeToColumnType(leaf.leaf->child(0)->base_type());
        col.nullable = leaf.optional || merged_anchor;
        col.rep_index = leaf.leaf->rep_split_index();
        rel.columns.push_back(std::move(col));
        col_idx = static_cast<int>(rel.columns.size()) - 1;
      } else if (leaf.optional) {
        rel.columns[static_cast<size_t>(col_idx)].nullable = true;
      }
      rel.columns[static_cast<size_t>(col_idx)].node_ids.push_back(
          leaf.leaf->id());
      mapping.node_column_[leaf.leaf->id()] = {rel_idx, col_idx};
    }
    if (merged_anchor) {
      // Columns absent from this anchor become nullable.
      for (MappedColumn& col : rel.columns) {
        if (seen_paths.count(col.name) == 0) col.nullable = true;
      }
    }
  }
  return mapping;
}

const MappedRelation* Mapping::FindRelation(
    const std::string& table_name) const {
  for (const MappedRelation& rel : relations_) {
    if (rel.table_name == table_name) return &rel;
  }
  return nullptr;
}

int Mapping::RelationIndexOfAnchor(int node_id) const {
  auto it = anchor_relation_.find(node_id);
  return it == anchor_relation_.end() ? -1 : it->second;
}

bool Mapping::ColumnOfNode(int node_id, int* relation_idx,
                           int* column_idx) const {
  auto it = node_column_.find(node_id);
  if (it == node_column_.end()) return false;
  *relation_idx = it->second.first;
  *column_idx = it->second.second;
  return true;
}

std::string Mapping::ToString() const {
  std::string out;
  for (const MappedRelation& rel : relations_) {
    out += rel.ToTableSchema().ToString();
    out += "\n";
  }
  return out;
}

}  // namespace xmlshred
