// Streaming, parallel bulk ingest: a one-pass SAX-style shredder.
//
// ShredStream produces a Database state bit-identical to parsing the
// document with ParseXml and shredding it with ShredDocument — same
// tables, same cell tags/bits, same dictionary codes, same sealed
// blocks — but without ever materializing the DOM. The stream parser
// (xml/stream_parser.h) yields start/end/text events; the shredder
// buffers ONE top-level subtree at a time (peak memory is bounded by the
// largest record plus one columnar batch per relation, independent of
// document size), routes it to its schema node by tag name, walks it with
// the DOM shredder's matching rules, and appends completed rows into
// per-relation columnar batch buffers that flush into storage as sealed
// kStorageBlockRows-row blocks (Table::AppendBlock).
//
// Parallelism partitions the document at top-level subtree boundaries: a
// structural pre-scan records each depth-1 subtree's byte span and
// start-tag count, contiguous byte-balanced chunks are shredded by
// thread-pool workers into private columnar runs (private string
// dictionaries, row-append logs, pre-assigned document-order ID bases),
// and the coordinator merges everything back in document order —
// dictionaries interned partition by partition (preserving global
// first-occurrence code order), row logs replayed through the same batch
// writer the serial path uses (preserving flush order, and with it the
// shred.stream fault-injection schedule and governor memory charges).
// The result is bit-identical at every --ingest-threads value.
//
// Unlike the DOM path, a failed streaming ingest is all-or-nothing: every
// table it created is dropped and the shared dictionary is truncated back
// to its entry state, mirroring ApplyConfiguration's rollback contract.
//
// Root-level routing must be unambiguous for single-subtree buffering: if
// two distinct schema slots at the root matching level share a tag name
// (e.g. a repetition split AT the root), or the root is itself a leaf,
// the shredder falls back to buffering the whole document (still
// bit-identical, no longer bounded-memory). See DESIGN.md §17.

#ifndef XMLSHRED_MAPPING_STREAM_SHREDDER_H_
#define XMLSHRED_MAPPING_STREAM_SHREDDER_H_

#include <string_view>

#include "common/limits.h"
#include "common/metrics.h"
#include "common/status.h"
#include "mapping/mapping.h"
#include "mapping/shredder.h"
#include "rel/catalog.h"
#include "xml/schema_tree.h"

namespace xmlshred {

struct StreamShredOptions {
  // Worker threads for partitioned ingest; <= 1 shreds serially. The
  // result is bit-identical at every value (partitioning falls back to
  // serial when the document has fewer than two top-level subtrees per
  // worker's share, or when root routing is ambiguous).
  int threads = 1;
  // Memory cap (charged one columnar batch at a time, in flush order) and
  // recursion-depth guard for the embedded stream parser. Null means
  // unlimited, with the parser's stack-safety depth floor still applied.
  ResourceGovernor* governor = nullptr;
  // When set, publishes shred.documents / shred.rows / shred.elements /
  // shred.batches_emitted, the shred.peak_batch_bytes gauge, and the
  // storage.* peak gauges — all thread-count invariant.
  MetricsRegistry* metrics = nullptr;
};

// Creates the mapping's tables in `db` and shreds the XML text into them
// in one streaming pass. On any error — parse, schema mismatch, governor
// trip, injected fault — the created tables are dropped and the shared
// dictionary restored, leaving `db` exactly as it was.
Result<ShredStats> ShredStream(std::string_view xml, const SchemaTree& tree,
                               const Mapping& mapping, Database* db,
                               const StreamShredOptions& options = {});

}  // namespace xmlshred

#endif  // XMLSHRED_MAPPING_STREAM_SHREDDER_H_
