// Mapping M from an annotated schema tree to a relational schema
// (Section 2 of the paper):
//
//  1. every annotated tag maps to a relation named by its annotation, with
//     an ID primary-key column and a PID foreign-key column referencing
//     the parent relation's ID;
//  2. every simple-content leaf reachable without crossing another
//     annotated tag maps to a column of that relation;
//  3. tags sharing an annotation (type merge) map to the same relation.
//
// Column names are the leaf's path from the anchor (joined with '_' when
// nested), with "_<i>" suffixes for repetition-split occurrence columns
// and numeric suffixes for other duplicates.

#ifndef XMLSHRED_MAPPING_MAPPING_H_
#define XMLSHRED_MAPPING_MAPPING_H_

#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "rel/schema.h"
#include "xml/schema_tree.h"

namespace xmlshred {

struct MappedColumn {
  std::string name;         // column name in the relation
  std::string element_name; // XML tag name of the leaf
  ColumnType type = ColumnType::kString;
  bool nullable = true;
  // 1-based occurrence index for repetition-split columns, 0 otherwise.
  int rep_index = 0;
  // Leaf tag node ids feeding this column (one per anchor of the owning
  // relation; merged relations have several).
  std::vector<int> node_ids;
};

struct MappedRelation {
  std::string table_name;
  // Annotated tag nodes mapped to this relation (several after type
  // merge).
  std::vector<int> anchor_node_ids;
  // Table names of the relations holding the anchors' parents (PID refers
  // into these; IDs are globally unique across relations).
  std::vector<std::string> parent_tables;
  std::vector<MappedColumn> columns;
  // On an overflow relation left by repetition split: number of leading
  // occurrences inlined into the parent (0 otherwise).
  int rep_overflow_from = 0;

  // Full relational schema: ID, PID, then the mapped columns.
  TableSchema ToTableSchema() const;

  // Ordinal of `column_name` among mapped columns (not counting ID/PID).
  int FindMappedColumn(const std::string& column_name) const;
};

// Number of fixed leading columns (ID, PID) in every mapped relation.
inline constexpr int kFixedColumns = 2;

class Mapping {
 public:
  // Derives the relational mapping from `tree`. Fails if the tree is
  // structurally invalid.
  static Result<Mapping> Build(const SchemaTree& tree);

  const std::vector<MappedRelation>& relations() const { return relations_; }
  const MappedRelation* FindRelation(const std::string& table_name) const;

  // Relation index owning the annotated tag `node_id`, or -1.
  int RelationIndexOfAnchor(int node_id) const;

  // (relation index, mapped-column index) a leaf tag node shreds into.
  // Returns false if the node is not a mapped leaf.
  bool ColumnOfNode(int node_id, int* relation_idx, int* column_idx) const;

  // Renders "name(cols)" lines for all relations.
  std::string ToString() const;

 private:
  std::vector<MappedRelation> relations_;
  std::map<int, int> anchor_relation_;          // anchor node id -> rel idx
  std::map<int, std::pair<int, int>> node_column_;  // leaf id -> (rel, col)
};

}  // namespace xmlshred

#endif  // XMLSHRED_MAPPING_MAPPING_H_
