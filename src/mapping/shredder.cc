#include "mapping/shredder.h"

#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/logging.h"
#include "mapping/shred_common.h"

namespace xmlshred {

namespace {

// Capacity doublings a vector growing geometrically from 1 performs to
// reach `n` elements — the reallocations a Reserve(n) call avoids.
int64_t GrowthSteps(int64_t n) {
  int64_t steps = 0;
  for (int64_t cap = 1; cap < n; cap *= 2) ++steps;
  return steps;
}

// One pass over the document collecting per-tag-name element counts and
// the number of text-bearing elements (upper bound on strings interned).
void CountElements(const XmlElement* element,
                   std::unordered_map<std::string, int64_t>* by_tag,
                   int64_t* text_bearing) {
  ++(*by_tag)[element->tag()];
  if (!element->text().empty()) ++*text_bearing;
  for (const auto& child : element->children()) {
    CountElements(child.get(), by_tag, text_bearing);
  }
}

class Shredder {
 public:
  Shredder(const SchemaTree& tree, const Mapping& mapping, Database* db)
      : tree_(tree), mapping_(mapping), db_(db) {}

  Result<ShredStats> Shred(const XmlDocument& doc) {
    // Create tables.
    for (const MappedRelation& rel : mapping_.relations()) {
      auto result = db_->CreateTable(rel.ToTableSchema());
      if (!result.ok()) return result.status();
      tables_.push_back(*result);
    }
    if (doc.root() == nullptr) return InvalidArgument("empty document");
    if (doc.root()->tag() != tree_.root()->name()) {
      return InvalidArgument("document root <" + doc.root()->tag() +
                             "> does not match schema root <" +
                             tree_.root()->name() + ">");
    }
    PreSize(doc);
    XS_RETURN_IF_ERROR(ShredTag(doc.root(), tree_.root(), Value::Null()));
    return stats_;
  }

 private:
  // Pre-sizes every relation's column vectors and the shared string
  // dictionary from one counting pass over the document, so the append
  // path never reallocates. A relation's expected row count is the sum of
  // its anchors' per-tag-name element counts — exact for uniquely named
  // anchors, an upper bound when variants of a choice share a tag name
  // (routing splits the instances; over-reserving only costs slack
  // capacity, never correctness).
  void PreSize(const XmlDocument& doc) {
    std::unordered_map<std::string, int64_t> by_tag;
    int64_t text_bearing = 0;
    CountElements(doc.root(), &by_tag, &text_bearing);
    const auto& relations = mapping_.relations();
    for (size_t i = 0; i < relations.size(); ++i) {
      int64_t expected = 0;
      for (int anchor_id : relations[i].anchor_node_ids) {
        const SchemaNode* anchor = tree_.FindNode(anchor_id);
        if (anchor == nullptr) continue;
        auto it = by_tag.find(anchor->name());
        if (it != by_tag.end()) expected += it->second;
      }
      if (expected <= 0) continue;
      tables_[i]->Reserve(static_cast<size_t>(expected));
      stats_.reserved_rows += expected;
      // Each column keeps two vectors (tags + slots); every one skips the
      // same doubling ladder up to the reserved size.
      stats_.saved_reallocs +=
          GrowthSteps(expected) * 2 *
          tables_[i]->schema().num_columns();
    }
    if (text_bearing > 0) {
      db_->mutable_dictionary()->Reserve(static_cast<size_t>(text_bearing));
      stats_.saved_reallocs += GrowthSteps(text_bearing);
    }
  }

  struct RowContext {
    int relation_idx = -1;
    Row row;
    Value id;
  };

  // Shreds one document element known to instantiate `node` (a tag).
  Status ShredTag(const XmlElement* element, const SchemaNode* node,
                  const Value& parent_id) {
    ++stats_.elements;
    // Every element consumes one id in document order, so a context
    // instance keeps the same ID under every mapping (the paper's
    // "unique node ID").
    int64_t element_id = next_id_++;
    bool opened_row = false;
    Value self_id = parent_id;
    if (node->is_annotated()) {
      int rel_idx = mapping_.RelationIndexOfAnchor(node->id());
      if (rel_idx < 0) {
        return Internal("anchor without relation: " + node->name());
      }
      RowContext ctx;
      ctx.relation_idx = rel_idx;
      ctx.id = Value::Int(element_id);
      self_id = ctx.id;
      const MappedRelation& rel =
          mapping_.relations()[static_cast<size_t>(rel_idx)];
      ctx.row.assign(static_cast<size_t>(kFixedColumns) + rel.columns.size(),
                     Value::Null());
      ctx.row[0] = ctx.id;
      ctx.row[1] = parent_id;
      row_stack_.push_back(std::move(ctx));
      opened_row = true;
    }

    Status status;
    if (IsLeafTag(node)) {
      status = StoreLeafValue(element, node);
    } else {
      size_t cursor = 0;
      status = MatchContent(node->child(0), element, &cursor, self_id);
      if (status.ok() && cursor != element->children().size()) {
        status = InvalidArgument("unconsumed children under <" +
                                 element->tag() + ">");
      }
    }

    if (opened_row) {
      RowContext ctx = std::move(row_stack_.back());
      row_stack_.pop_back();
      if (status.ok()) {
        tables_[static_cast<size_t>(ctx.relation_idx)]->AppendRow(
            std::move(ctx.row));
        ++stats_.rows;
      }
    }
    return status;
  }

  Status StoreLeafValue(const XmlElement* element, const SchemaNode* node) {
    int rel_idx, col_idx;
    if (!mapping_.ColumnOfNode(node->id(), &rel_idx, &col_idx)) {
      return Internal("leaf without column: " + node->name());
    }
    if (row_stack_.empty() ||
        row_stack_.back().relation_idx != rel_idx) {
      return Internal("leaf column outside its relation row: " +
                      node->name());
    }
    Value value =
        ParseLeafValue(element->text(), node->child(0)->base_type());
    row_stack_.back().row[static_cast<size_t>(kFixedColumns + col_idx)] =
        std::move(value);
    return Status::OK();
  }

  // Matches `node` (a content construct) against the children of
  // `element` starting at *cursor.
  Status MatchContent(const SchemaNode* node, const XmlElement* element,
                      size_t* cursor, const Value& parent_id) {
    const auto& kids = element->children();
    switch (node->kind()) {
      case SchemaNodeKind::kSequence:
        for (const auto& child : node->children()) {
          XS_RETURN_IF_ERROR(
              MatchContent(child.get(), element, cursor, parent_id));
        }
        return Status::OK();
      case SchemaNodeKind::kTag: {
        if (*cursor >= kids.size() || kids[*cursor]->tag() != node->name()) {
          return InvalidArgument("expected <" + node->name() + "> under <" +
                                 element->tag() + ">");
        }
        const XmlElement* child = kids[(*cursor)++].get();
        return ShredTag(child, node, parent_id);
      }
      case SchemaNodeKind::kOption: {
        std::set<std::string> names;
        MatchNames(node->child(0), &names);
        if (*cursor < kids.size() && names.count(kids[*cursor]->tag()) > 0) {
          return MatchContent(node->child(0), element, cursor, parent_id);
        }
        return Status::OK();
      }
      case SchemaNodeKind::kRepetition: {
        std::set<std::string> names;
        MatchNames(node->child(0), &names);
        while (*cursor < kids.size() &&
               names.count(kids[*cursor]->tag()) > 0) {
          XS_RETURN_IF_ERROR(
              MatchContent(node->child(0), element, cursor, parent_id));
        }
        return Status::OK();
      }
      case SchemaNodeKind::kChoice:
        return node->is_variant_choice()
                   ? MatchVariantChoice(node, element, cursor, parent_id)
                   : MatchPlainChoice(node, element, cursor, parent_id);
      case SchemaNodeKind::kSimpleType:
        return Internal("simple type in content position");
    }
    return Internal("unhandled schema node kind");
  }

  Status MatchPlainChoice(const SchemaNode* node, const XmlElement* element,
                          size_t* cursor, const Value& parent_id) {
    const auto& kids = element->children();
    if (*cursor >= kids.size()) {
      return InvalidArgument("missing choice content under <" +
                             element->tag() + ">");
    }
    const std::string& next = kids[*cursor]->tag();
    for (const auto& alternative : node->children()) {
      std::set<std::string> names;
      MatchNames(alternative.get(), &names);
      if (names.count(next) > 0) {
        return MatchContent(alternative.get(), element, cursor, parent_id);
      }
    }
    return InvalidArgument("no choice alternative matches <" + next + ">");
  }

  // A variant choice stands where a context tag stood: the next child is a
  // context instance; route it to the variant whose presence constraints
  // its children satisfy.
  Status MatchVariantChoice(const SchemaNode* node, const XmlElement* element,
                            size_t* cursor, const Value& parent_id) {
    const auto& kids = element->children();
    if (*cursor >= kids.size()) {
      return InvalidArgument("missing variant instance under <" +
                             element->tag() + ">");
    }
    const XmlElement* instance = kids[*cursor].get();
    std::set<std::string> present;
    for (const auto& child : instance->children()) {
      present.insert(child->tag());
    }
    for (const auto& variant : node->children()) {
      if (variant->kind() != SchemaNodeKind::kTag ||
          variant->name() != instance->tag()) {
        continue;
      }
      bool ok = true;
      if (!variant->presence_any().empty()) {
        ok = false;
        for (const std::string& name : variant->presence_any()) {
          if (present.count(name) > 0) {
            ok = true;
            break;
          }
        }
      }
      if (ok) {
        for (const std::string& name : variant->presence_forbidden()) {
          if (present.count(name) > 0) {
            ok = false;
            break;
          }
        }
      }
      if (ok) {
        ++*cursor;
        return ShredTag(instance, variant.get(), parent_id);
      }
    }
    return InvalidArgument("no variant accepts <" + instance->tag() + ">");
  }

  const SchemaTree& tree_;
  const Mapping& mapping_;
  Database* db_;
  std::vector<Table*> tables_;
  std::vector<RowContext> row_stack_;
  int64_t next_id_ = 1;
  ShredStats stats_;
};

}  // namespace

Result<ShredStats> ShredDocument(const XmlDocument& doc,
                                 const SchemaTree& tree,
                                 const Mapping& mapping, Database* db) {
  Shredder shredder(tree, mapping, db);
  return shredder.Shred(doc);
}

}  // namespace xmlshred
