// Reconstruction: rebuilds the XML document from shredded relations —
// the inverse of ShredDocument, and the "publishing relational data as
// XML" direction of the paper's reference [21].
//
// The walk follows the schema tree; sibling instances are emitted in ID
// order (IDs are document-order, so interleavings across union-
// distribution variants and repetition-split overflows are restored
// exactly). Lossless on any document whose children follow schema order —
// the same requirement shredding has — which makes
//   Reconstruct(Shred(doc)) == doc
// a testable round-trip property for every mapping.

#ifndef XMLSHRED_MAPPING_RECONSTRUCTOR_H_
#define XMLSHRED_MAPPING_RECONSTRUCTOR_H_

#include "common/status.h"
#include "mapping/mapping.h"
#include "rel/catalog.h"
#include "xml/document.h"
#include "xml/schema_tree.h"

namespace xmlshred {

// Rebuilds the document from `db`, which must hold the relations produced
// by ShredDocument under the same `tree` and `mapping`.
Result<XmlDocument> ReconstructDocument(const Database& db,
                                        const SchemaTree& tree,
                                        const Mapping& mapping);

}  // namespace xmlshred

#endif  // XMLSHRED_MAPPING_RECONSTRUCTOR_H_
