#include "mapping/stream_shredder.h"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/fault_injection.h"
#include "common/logging.h"
#include "common/thread_pool.h"
#include "mapping/shred_common.h"
#include "rel/table_types.h"
#include "xml/document.h"
#include "xml/stream_parser.h"

namespace xmlshred {

namespace {

// Counted-byte transient-memory model (DESIGN.md §17): fixed per-unit
// charges so the reported peak is exact and reproducible — a buffered
// XmlElement, one run-list entry, one pre-scan subtree span, one encoded
// cell staged in a worker run.
constexpr int64_t kTransientElementBytes = 64;
constexpr int64_t kTransientRunBytes = 24;
constexpr int64_t kTransientSpanBytes = 40;
constexpr int64_t kTransientCellBytes = 9;

struct EncodedCell {
  uint8_t tag = 0;
  uint64_t bits = 0;
  int64_t bytes = 0;
};

// Mirrors ColumnVector::Append exactly: same tag, same bit pattern, same
// Value::ByteSize accounting, interning through `dict` at this call.
EncodedCell EncodeCell(const Value& v, StringDictionary* dict) {
  EncodedCell c;
  if (v.is_null()) {
    c.tag = static_cast<uint8_t>(CellTag::kNull);
    c.bytes = 4;
  } else if (v.is_int()) {
    c.tag = static_cast<uint8_t>(CellTag::kInt);
    c.bits = static_cast<uint64_t>(v.AsInt());
    c.bytes = 8;
  } else if (v.is_double()) {
    c.tag = static_cast<uint8_t>(CellTag::kReal);
    c.bits = DoubleToCellBits(v.AsDouble());
    c.bytes = 8;
  } else {
    c.tag = static_cast<uint8_t>(CellTag::kStr);
    c.bits = dict->Intern(v.AsString());
    c.bytes = static_cast<int64_t>(v.AsString().size()) + 2;
  }
  return c;
}

// Per-relation columnar batch buffers feeding Table::AppendBlock. Rows
// accumulate column-major; a buffer flushes the moment it holds
// kStorageBlockRows rows (sealing the block immediately) and Finish
// flushes the final partials in relation-index order. The shred.stream
// fault site and the governor's memory charge fire once per flush, so
// their schedules are functions of the row-append sequence alone — the
// parallel path replays the same sequence and hits them identically.
class BatchWriter {
 public:
  BatchWriter(std::vector<Table*> tables, StringDictionary* dict,
              ResourceGovernor* governor, ShredStats* stats)
      : tables_(std::move(tables)),
        dict_(dict),
        governor_(governor),
        stats_(stats) {
    buffers_.resize(tables_.size());
  }

  Status AppendRow(int rel, const Row& row) {
    RelBuffer& b = Touch(rel);
    XS_CHECK_EQ(static_cast<int64_t>(row.size()),
                static_cast<int64_t>(b.tags.size()));
    for (size_t c = 0; c < row.size(); ++c) {
      EncodedCell cell = EncodeCell(row[c], dict_);
      b.tags[c].push_back(cell.tag);
      b.bits[c].push_back(cell.bits);
      b.col_bytes[c] += cell.bytes;
    }
    return RowDone(rel, &b);
  }

  // Replay path: one pre-encoded row whose string cells already carry
  // global dictionary codes.
  Status AppendEncodedRow(int rel, const uint8_t* tags,
                          const uint64_t* bits) {
    RelBuffer& b = Touch(rel);
    for (size_t c = 0; c < b.tags.size(); ++c) {
      b.tags[c].push_back(tags[c]);
      b.bits[c].push_back(bits[c]);
      b.col_bytes[c] += CellBytes(tags[c], bits[c]);
    }
    return RowDone(rel, &b);
  }

  Status Finish() {
    for (size_t r = 0; r < buffers_.size(); ++r) {
      XS_RETURN_IF_ERROR(Flush(static_cast<int>(r)));
    }
    return Status::OK();
  }

  // Buffer capacity under the counted-byte model (charged lazily, the
  // first time a relation receives a row).
  int64_t allocated_bytes() const { return allocated_bytes_; }

 private:
  struct RelBuffer {
    bool touched = false;
    size_t rows = 0;
    std::vector<std::vector<uint8_t>> tags;   // [column][row in batch]
    std::vector<std::vector<uint64_t>> bits;  // [column][row in batch]
    std::vector<int64_t> col_bytes;
  };

  int64_t CellBytes(uint8_t tag, uint64_t bits) const {
    switch (static_cast<CellTag>(tag)) {
      case CellTag::kNull:
        return 4;
      case CellTag::kInt:
      case CellTag::kReal:
        return 8;
      case CellTag::kStr:
        return static_cast<int64_t>(
                   dict_->str(static_cast<uint32_t>(bits)).size()) +
               2;
    }
    return 0;
  }

  RelBuffer& Touch(int rel) {
    RelBuffer& b = buffers_[static_cast<size_t>(rel)];
    if (!b.touched) {
      size_t ncols = static_cast<size_t>(
          tables_[static_cast<size_t>(rel)]->schema().num_columns());
      b.tags.resize(ncols);
      b.bits.resize(ncols);
      b.col_bytes.assign(ncols, 0);
      for (size_t c = 0; c < ncols; ++c) {
        b.tags[c].reserve(kStorageBlockRows);
        b.bits[c].reserve(kStorageBlockRows);
      }
      allocated_bytes_ += static_cast<int64_t>(ncols) *
                          static_cast<int64_t>(kStorageBlockRows) *
                          kTransientCellBytes;
      b.touched = true;
    }
    return b;
  }

  Status RowDone(int rel, RelBuffer* b) {
    ++b->rows;
    if (b->rows == kStorageBlockRows) return Flush(rel);
    return Status::OK();
  }

  Status Flush(int rel) {
    RelBuffer& b = buffers_[static_cast<size_t>(rel)];
    if (b.rows == 0) return Status::OK();
    XS_RETURN_IF_ERROR(
        FaultInjector::Global()->Check(kFaultSiteShredStream));
    int64_t logical = 0;
    for (int64_t cb : b.col_bytes) logical += cb;
    if (governor_ != nullptr) {
      XS_RETURN_IF_ERROR(governor_->ChargeMemory(logical));
    }
    std::vector<const uint8_t*> tag_ptrs(b.tags.size());
    std::vector<const uint64_t*> bit_ptrs(b.tags.size());
    for (size_t c = 0; c < b.tags.size(); ++c) {
      tag_ptrs[c] = b.tags[c].data();
      bit_ptrs[c] = b.bits[c].data();
    }
    tables_[static_cast<size_t>(rel)]->AppendBlock(tag_ptrs, bit_ptrs,
                                                   b.col_bytes, b.rows);
    ++stats_->batches_emitted;
    stats_->peak_batch_bytes = std::max(stats_->peak_batch_bytes, logical);
    for (size_t c = 0; c < b.tags.size(); ++c) {
      b.tags[c].clear();
      b.bits[c].clear();
      b.col_bytes[c] = 0;
    }
    b.rows = 0;
    return Status::OK();
  }

  std::vector<Table*> tables_;
  StringDictionary* dict_;
  ResourceGovernor* governor_;
  ShredStats* stats_;
  std::vector<RelBuffer> buffers_;
  int64_t allocated_bytes_ = 0;
};

// Where the walker's completed rows go: straight into the batch writer
// (serial path) or into a worker's private staging run (parallel path).
class RowSink {
 public:
  virtual ~RowSink() = default;
  virtual Status AppendRow(int rel, Row row) = 0;
};

class GlobalRowSink : public RowSink {
 public:
  explicit GlobalRowSink(BatchWriter* writer) : writer_(writer) {}
  Status AppendRow(int rel, Row row) override {
    return writer_->AppendRow(rel, row);
  }

 private:
  BatchWriter* writer_;
};

// Worker-private staging: rows encode against a private dictionary (codes
// remapped at merge) into per-relation row-major cell runs, plus an RLE
// log of the relation sequence so the coordinator can replay the exact
// document-order row stream.
class LocalRowSink : public RowSink {
 public:
  void Init(size_t num_relations) { runs.resize(num_relations); }

  Status AppendRow(int rel, Row row) override {
    RelRun& rr = runs[static_cast<size_t>(rel)];
    for (const Value& v : row) {
      EncodedCell c = EncodeCell(v, &dict);
      rr.tags.push_back(c.tag);
      rr.bits.push_back(c.bits);
    }
    cells += static_cast<int64_t>(row.size());
    if (!row_log.empty() && row_log.back().first == rel) {
      ++row_log.back().second;
    } else {
      row_log.emplace_back(rel, int64_t{1});
    }
    return Status::OK();
  }

  struct RelRun {
    std::vector<uint8_t> tags;
    std::vector<uint64_t> bits;
  };
  StringDictionary dict;
  std::vector<RelRun> runs;
  std::vector<std::pair<int, int64_t>> row_log;  // (relation, rows) RLE
  int64_t cells = 0;
};

// The DOM shredder's walk (shredder.cc), retargeted: same matching rules
// over a buffered XmlElement subtree, rows emitted through a RowSink, the
// document-order ID counter seeded by the caller, and an optional bottom-
// of-stack proxy standing in for the root's own row so root-level inlined
// leaves store exactly where the DOM walk would store them.
class ElementWalker {
 public:
  ElementWalker(const Mapping& mapping, RowSink* sink, int64_t first_id)
      : mapping_(mapping), sink_(sink), next_id_(first_id) {}

  void SeedRootProxy(int root_rel_idx, size_t row_width) {
    RowContext ctx;
    ctx.relation_idx = root_rel_idx;
    ctx.id = Value::Int(1);
    ctx.row.assign(row_width, Value::Null());
    ctx.row[0] = ctx.id;
    row_stack_.push_back(std::move(ctx));
    has_proxy_ = true;
  }

  Row TakeRootRow() {
    XS_CHECK(has_proxy_);
    return std::move(row_stack_.front().row);
  }
  const std::vector<std::pair<int, Value>>& root_writes() const {
    return root_writes_;
  }
  int64_t elements() const { return elements_; }
  int64_t rows() const { return rows_; }

  Status ShredTag(const XmlElement* element, const SchemaNode* node,
                  const Value& parent_id) {
    ++elements_;
    int64_t element_id = next_id_++;
    bool opened_row = false;
    Value self_id = parent_id;
    if (node->is_annotated()) {
      int rel_idx = mapping_.RelationIndexOfAnchor(node->id());
      if (rel_idx < 0) {
        return Internal("anchor without relation: " + node->name());
      }
      RowContext ctx;
      ctx.relation_idx = rel_idx;
      ctx.id = Value::Int(element_id);
      self_id = ctx.id;
      const MappedRelation& rel =
          mapping_.relations()[static_cast<size_t>(rel_idx)];
      ctx.row.assign(static_cast<size_t>(kFixedColumns) + rel.columns.size(),
                     Value::Null());
      ctx.row[0] = ctx.id;
      ctx.row[1] = parent_id;
      row_stack_.push_back(std::move(ctx));
      opened_row = true;
    }

    Status status;
    if (IsLeafTag(node)) {
      status = StoreLeafValue(element, node);
    } else {
      size_t cursor = 0;
      status = MatchContent(node->child(0), element, &cursor, self_id);
      if (status.ok() && cursor != element->children().size()) {
        status = InvalidArgument("unconsumed children under <" +
                                 element->tag() + ">");
      }
    }

    if (opened_row) {
      RowContext ctx = std::move(row_stack_.back());
      row_stack_.pop_back();
      if (status.ok()) {
        status = sink_->AppendRow(ctx.relation_idx, std::move(ctx.row));
        if (status.ok()) ++rows_;
      }
    }
    return status;
  }

 private:
  struct RowContext {
    int relation_idx = -1;
    Row row;
    Value id;
  };

  Status StoreLeafValue(const XmlElement* element, const SchemaNode* node) {
    int rel_idx, col_idx;
    if (!mapping_.ColumnOfNode(node->id(), &rel_idx, &col_idx)) {
      return Internal("leaf without column: " + node->name());
    }
    if (row_stack_.empty() || row_stack_.back().relation_idx != rel_idx) {
      return Internal("leaf column outside its relation row: " +
                      node->name());
    }
    Value value =
        ParseLeafValue(element->text(), node->child(0)->base_type());
    if (has_proxy_ && row_stack_.size() == 1) {
      // Root-row write: logged (with Nulls — a later empty leaf must
      // overwrite an earlier value at merge exactly as it does here).
      root_writes_.emplace_back(col_idx, value);
    }
    row_stack_.back().row[static_cast<size_t>(kFixedColumns + col_idx)] =
        std::move(value);
    return Status::OK();
  }

  Status MatchContent(const SchemaNode* node, const XmlElement* element,
                      size_t* cursor, const Value& parent_id) {
    const auto& kids = element->children();
    switch (node->kind()) {
      case SchemaNodeKind::kSequence:
        for (const auto& child : node->children()) {
          XS_RETURN_IF_ERROR(
              MatchContent(child.get(), element, cursor, parent_id));
        }
        return Status::OK();
      case SchemaNodeKind::kTag: {
        if (*cursor >= kids.size() || kids[*cursor]->tag() != node->name()) {
          return InvalidArgument("expected <" + node->name() + "> under <" +
                                 element->tag() + ">");
        }
        const XmlElement* child = kids[(*cursor)++].get();
        return ShredTag(child, node, parent_id);
      }
      case SchemaNodeKind::kOption: {
        std::set<std::string> names;
        MatchNames(node->child(0), &names);
        if (*cursor < kids.size() && names.count(kids[*cursor]->tag()) > 0) {
          return MatchContent(node->child(0), element, cursor, parent_id);
        }
        return Status::OK();
      }
      case SchemaNodeKind::kRepetition: {
        std::set<std::string> names;
        MatchNames(node->child(0), &names);
        while (*cursor < kids.size() &&
               names.count(kids[*cursor]->tag()) > 0) {
          XS_RETURN_IF_ERROR(
              MatchContent(node->child(0), element, cursor, parent_id));
        }
        return Status::OK();
      }
      case SchemaNodeKind::kChoice:
        return node->is_variant_choice()
                   ? MatchVariantChoice(node, element, cursor, parent_id)
                   : MatchPlainChoice(node, element, cursor, parent_id);
      case SchemaNodeKind::kSimpleType:
        return Internal("simple type in content position");
    }
    return Internal("unhandled schema node kind");
  }

  Status MatchPlainChoice(const SchemaNode* node, const XmlElement* element,
                          size_t* cursor, const Value& parent_id) {
    const auto& kids = element->children();
    if (*cursor >= kids.size()) {
      return InvalidArgument("missing choice content under <" +
                             element->tag() + ">");
    }
    const std::string& next = kids[*cursor]->tag();
    for (const auto& alternative : node->children()) {
      std::set<std::string> names;
      MatchNames(alternative.get(), &names);
      if (names.count(next) > 0) {
        return MatchContent(alternative.get(), element, cursor, parent_id);
      }
    }
    return InvalidArgument("no choice alternative matches <" + next + ">");
  }

  Status MatchVariantChoice(const SchemaNode* node, const XmlElement* element,
                            size_t* cursor, const Value& parent_id) {
    const auto& kids = element->children();
    if (*cursor >= kids.size()) {
      return InvalidArgument("missing variant instance under <" +
                             element->tag() + ">");
    }
    const XmlElement* instance = kids[*cursor].get();
    std::set<std::string> present;
    for (const auto& child : instance->children()) {
      present.insert(child->tag());
    }
    for (const auto& variant : node->children()) {
      if (variant->kind() != SchemaNodeKind::kTag ||
          variant->name() != instance->tag()) {
        continue;
      }
      bool ok = true;
      if (!variant->presence_any().empty()) {
        ok = false;
        for (const std::string& name : variant->presence_any()) {
          if (present.count(name) > 0) {
            ok = true;
            break;
          }
        }
      }
      if (ok) {
        for (const std::string& name : variant->presence_forbidden()) {
          if (present.count(name) > 0) {
            ok = false;
            break;
          }
        }
      }
      if (ok) {
        ++*cursor;
        return ShredTag(instance, variant.get(), parent_id);
      }
    }
    return InvalidArgument("no variant accepts <" + instance->tag() + ">");
  }

  const Mapping& mapping_;
  RowSink* sink_;
  std::vector<RowContext> row_stack_;
  std::vector<std::pair<int, Value>> root_writes_;
  int64_t next_id_;
  int64_t elements_ = 0;
  int64_t rows_ = 0;
  bool has_proxy_ = false;
};

// Builds the subtree under an already-consumed start event: children and
// decoded text exactly as the DOM parser assembles them. `*starts` counts
// start tags (the consumed one included by the caller); `*bytes` grows by
// the counted-byte model.
Status FillElement(XmlStreamParser* parser, XmlElement* elem,
                   int64_t* starts, int64_t* bytes) {
  for (;;) {
    XS_ASSIGN_OR_RETURN(XmlEvent ev, parser->Next());
    switch (ev.kind) {
      case XmlEventKind::kStartElement: {
        ++*starts;
        *bytes += kTransientElementBytes + static_cast<int64_t>(ev.name.size());
        XmlElement* child = elem->AddChild(std::string(ev.name));
        XS_RETURN_IF_ERROR(FillElement(parser, child, starts, bytes));
        break;
      }
      case XmlEventKind::kEndElement:
        return Status::OK();
      case XmlEventKind::kText: {
        std::string decoded;
        AppendDecodedText(ev.raw_text, &decoded);
        if (!decoded.empty()) {
          *bytes += static_cast<int64_t>(decoded.size());
          elem->append_text(decoded);
        }
        break;
      }
      case XmlEventKind::kEndOfInput:
        return Internal("unbalanced event stream");
    }
  }
}

// --- Root-level routing -------------------------------------------------

struct RouteTable {
  // Tag name -> its unique routing slot at the root matching level: a
  // plain kTag node, or the variant kChoice owning the name's variants.
  std::map<std::string, const SchemaNode*> slots;
  // Set when a name has two distinct slots (e.g. a repetition split at
  // the root) — single-subtree routing would be wrong, so the shredder
  // buffers the whole document instead.
  bool ambiguous = false;
};

void CollectSlots(const SchemaNode* node,
                  std::map<std::string, std::set<const SchemaNode*>>* out) {
  if (node->kind() == SchemaNodeKind::kTag) {
    (*out)[node->name()].insert(node);
    return;
  }
  if (node->kind() == SchemaNodeKind::kChoice && node->is_variant_choice()) {
    for (const auto& variant : node->children()) {
      if (variant->kind() == SchemaNodeKind::kTag) {
        (*out)[variant->name()].insert(node);
      }
    }
    return;
  }
  for (const auto& child : node->children()) CollectSlots(child.get(), out);
}

RouteTable BuildRoutes(const SchemaTree& tree) {
  RouteTable rt;
  if (IsLeafTag(tree.root())) {
    rt.ambiguous = true;  // no element children to stream over
    return rt;
  }
  std::map<std::string, std::set<const SchemaNode*>> slots;
  CollectSlots(tree.root()->child(0), &slots);
  for (const auto& entry : slots) {
    if (entry.second.size() > 1) {
      rt.ambiguous = true;
      return rt;
    }
    rt.slots[entry.first] = *entry.second.begin();
  }
  return rt;
}

// Resolves one buffered top-level subtree to the tag node to walk.
// `*resolved` stays null when the name matches no slot — the run list
// records a sentinel and MatchRuns reproduces the DOM-shaped error. A
// variant choice whose presence constraints reject the instance fails
// outright with the DOM's message.
Status ResolveRoute(const RouteTable& routes, const XmlElement* instance,
                    const SchemaNode** slot, const SchemaNode** resolved) {
  *slot = nullptr;
  *resolved = nullptr;
  auto it = routes.slots.find(instance->tag());
  if (it == routes.slots.end()) return Status::OK();
  *slot = it->second;
  if ((*slot)->kind() == SchemaNodeKind::kTag) {
    *resolved = *slot;
    return Status::OK();
  }
  // Variant choice: the same presence resolution as MatchVariantChoice.
  std::set<std::string> present;
  for (const auto& child : instance->children()) {
    present.insert(child->tag());
  }
  for (const auto& variant : (*slot)->children()) {
    if (variant->kind() != SchemaNodeKind::kTag ||
        variant->name() != instance->tag()) {
      continue;
    }
    bool ok = true;
    if (!variant->presence_any().empty()) {
      ok = false;
      for (const std::string& name : variant->presence_any()) {
        if (present.count(name) > 0) {
          ok = true;
          break;
        }
      }
    }
    if (ok) {
      for (const std::string& name : variant->presence_forbidden()) {
        if (present.count(name) > 0) {
          ok = false;
          break;
        }
      }
    }
    if (ok) {
      *resolved = variant.get();
      return Status::OK();
    }
  }
  return InvalidArgument("no variant accepts <" + instance->tag() + ">");
}

// --- Deferred root content-model validation -----------------------------

// One run-length-encoded group of consecutive top-level instances that
// routed to the same slot. `resolved == nullptr` marks a sentinel (a name
// no slot claims): nothing can consume it, so matching always fails at or
// before it — with the same message MatchContent would produce.
struct TopRun {
  const SchemaNode* slot = nullptr;
  const SchemaNode* resolved = nullptr;
  std::string name;
  int64_t count = 0;
};

void AppendTopRun(std::vector<TopRun>* runs, const SchemaNode* slot,
                  const SchemaNode* resolved, const std::string& name) {
  if (!runs->empty()) {
    TopRun& last = runs->back();
    if (last.slot == slot && last.resolved == resolved && last.name == name) {
      ++last.count;
      return;
    }
  }
  runs->push_back(TopRun{slot, resolved, name, 1});
}

struct RunCursor {
  const std::vector<TopRun>* runs;
  size_t idx = 0;
  int64_t used = 0;

  const TopRun* Peek() const {
    return idx < runs->size() ? &(*runs)[idx] : nullptr;
  }
  void ConsumeOne() {
    if (++used == (*runs)[idx].count) {
      ++idx;
      used = 0;
    }
  }
};

// MatchContent over the root's children, decided per run instead of per
// element: same name-set tests, same error messages, but a million
// repetitions cost one run entry. Variant instances were presence-routed
// at buffering time, so here the run only needs to belong to the choice.
Status MatchRuns(const SchemaNode* node, RunCursor* cur,
                 const std::string& root_tag) {
  switch (node->kind()) {
    case SchemaNodeKind::kSequence:
      for (const auto& child : node->children()) {
        XS_RETURN_IF_ERROR(MatchRuns(child.get(), cur, root_tag));
      }
      return Status::OK();
    case SchemaNodeKind::kTag: {
      const TopRun* r = cur->Peek();
      if (r == nullptr || r->name != node->name()) {
        return InvalidArgument("expected <" + node->name() + "> under <" +
                               root_tag + ">");
      }
      cur->ConsumeOne();
      return Status::OK();
    }
    case SchemaNodeKind::kOption: {
      std::set<std::string> names;
      MatchNames(node->child(0), &names);
      const TopRun* r = cur->Peek();
      if (r != nullptr && names.count(r->name) > 0) {
        return MatchRuns(node->child(0), cur, root_tag);
      }
      return Status::OK();
    }
    case SchemaNodeKind::kRepetition: {
      std::set<std::string> names;
      MatchNames(node->child(0), &names);
      for (;;) {
        const TopRun* r = cur->Peek();
        if (r == nullptr || names.count(r->name) == 0) return Status::OK();
        XS_RETURN_IF_ERROR(MatchRuns(node->child(0), cur, root_tag));
      }
    }
    case SchemaNodeKind::kChoice: {
      const TopRun* r = cur->Peek();
      if (node->is_variant_choice()) {
        if (r == nullptr) {
          return InvalidArgument("missing variant instance under <" +
                                 root_tag + ">");
        }
        if (r->slot != node || r->resolved == nullptr) {
          return InvalidArgument("no variant accepts <" + r->name + ">");
        }
        cur->ConsumeOne();
        return Status::OK();
      }
      if (r == nullptr) {
        return InvalidArgument("missing choice content under <" + root_tag +
                               ">");
      }
      for (const auto& alternative : node->children()) {
        std::set<std::string> names;
        MatchNames(alternative.get(), &names);
        if (names.count(r->name) > 0) {
          return MatchRuns(alternative.get(), cur, root_tag);
        }
      }
      return InvalidArgument("no choice alternative matches <" + r->name +
                             ">");
    }
    case SchemaNodeKind::kSimpleType:
      return Internal("simple type in content position");
  }
  return Internal("unhandled schema node kind");
}

// --- The driver ---------------------------------------------------------

class StreamIngest {
 public:
  StreamIngest(std::string_view xml, const SchemaTree& tree,
               const Mapping& mapping, Database* db,
               const StreamShredOptions& options)
      : xml_(xml), tree_(tree), mapping_(mapping), db_(db),
        options_(options) {}

  Result<ShredStats> Run() {
    dict_floor_ = db_->dictionary().size();
    Status status = CreateTables();
    if (status.ok()) {
      routes_ = BuildRoutes(tree_);
      root_rel_ = mapping_.RelationIndexOfAnchor(tree_.root()->id());
      fallback_ = routes_.ambiguous || root_rel_ < 0;
      bool redo_serial = false;
      if (options_.threads > 1 && !fallback_) {
        status = RunParallel(&redo_serial);
      } else {
        status = RunSerial();
      }
      if (status.ok() && redo_serial) {
        // Partitioned run detected something only the serial order can
        // answer exactly (parse error, schema mismatch, walked-element
        // drift). Tables are still empty and the dictionary untouched, so
        // the canonical pass just runs in their place.
        stats_ = ShredStats();
        status = RunSerial();
      }
    }
    if (!status.ok()) {
      Rollback();
      return status;
    }
    PublishMetrics();
    return stats_;
  }

 private:
  Status CreateTables() {
    for (const MappedRelation& rel : mapping_.relations()) {
      auto result = db_->CreateTable(rel.ToTableSchema());
      if (!result.ok()) return result.status();
      created_.push_back(rel.table_name);
      tables_.push_back(*result);
    }
    return Status::OK();
  }

  void Rollback() {
    for (const std::string& name : created_) db_->DropTable(name);
    db_->mutable_dictionary()->TruncateTo(dict_floor_);
  }

  size_t RootRowWidth() const {
    const MappedRelation& rel =
        mapping_.relations()[static_cast<size_t>(root_rel_)];
    return static_cast<size_t>(kFixedColumns) + rel.columns.size();
  }

  Status MatchRootRuns(const std::vector<TopRun>& runs) {
    RunCursor cur{&runs, 0, 0};
    XS_RETURN_IF_ERROR(
        MatchRuns(tree_.root()->child(0), &cur, tree_.root()->name()));
    if (cur.Peek() != nullptr) {
      return InvalidArgument("unconsumed children under <" +
                             tree_.root()->name() + ">");
    }
    return Status::OK();
  }

  Status RunSerial() {
    stats_.partitions = 1;
    BatchWriter writer(tables_, db_->mutable_dictionary(), options_.governor,
                       &stats_);
    GlobalRowSink sink(&writer);
    StreamParseOptions popts;
    popts.governor = options_.governor;
    XmlStreamParser parser(xml_, popts);
    XS_ASSIGN_OR_RETURN(XmlEvent ev, parser.Next());
    XS_CHECK(ev.kind == XmlEventKind::kStartElement);
    if (ev.name != tree_.root()->name()) {
      return InvalidArgument("document root <" + std::string(ev.name) +
                             "> does not match schema root <" +
                             tree_.root()->name() + ">");
    }

    if (fallback_) {
      // Whole-document buffering: the DOM pipeline without the DOM
      // parser. Correct for any schema, but peak memory grows with the
      // document — only taken for ambiguous root routing / leaf roots.
      auto root = std::make_unique<XmlElement>(std::string(ev.name));
      int64_t starts = 1;
      int64_t bytes =
          kTransientElementBytes + static_cast<int64_t>(ev.name.size());
      XS_RETURN_IF_ERROR(FillElement(&parser, root.get(), &starts, &bytes));
      XS_ASSIGN_OR_RETURN(XmlEvent tail, parser.Next());
      XS_CHECK(tail.kind == XmlEventKind::kEndOfInput);
      ElementWalker walker(mapping_, &sink, 1);
      XS_RETURN_IF_ERROR(
          walker.ShredTag(root.get(), tree_.root(), Value::Null()));
      stats_.elements = walker.elements();
      stats_.rows = walker.rows();
      XS_RETURN_IF_ERROR(writer.Finish());
      stats_.transient_peak_bytes = writer.allocated_bytes() + bytes;
      return Status::OK();
    }

    ElementWalker walker(mapping_, &sink, /*first_id=*/2);
    walker.SeedRootProxy(root_rel_, RootRowWidth());
    std::vector<TopRun> runs;
    int64_t max_subtree = 0;
    for (;;) {
      XS_ASSIGN_OR_RETURN(XmlEvent child, parser.Next());
      if (child.kind == XmlEventKind::kText) continue;  // root-level text:
                                                        // ignored, as DOM
      if (child.kind == XmlEventKind::kEndElement) break;
      XS_CHECK(child.kind == XmlEventKind::kStartElement);
      auto elem = std::make_unique<XmlElement>(std::string(child.name));
      int64_t starts = 1;
      int64_t bytes =
          kTransientElementBytes + static_cast<int64_t>(child.name.size());
      XS_RETURN_IF_ERROR(FillElement(&parser, elem.get(), &starts, &bytes));
      max_subtree = std::max(max_subtree, bytes);
      const SchemaNode* slot = nullptr;
      const SchemaNode* resolved = nullptr;
      XS_RETURN_IF_ERROR(ResolveRoute(routes_, elem.get(), &slot, &resolved));
      AppendTopRun(&runs, slot, resolved, elem->tag());
      if (resolved == nullptr) {
        // Unroutable name: nothing in the content model can ever consume
        // it, so the document is invalid — surface the matcher's error.
        Status ms = MatchRootRuns(runs);
        return ms.ok() ? InvalidArgument("unconsumed children under <" +
                                         tree_.root()->name() + ">")
                       : ms;
      }
      XS_RETURN_IF_ERROR(walker.ShredTag(elem.get(), resolved, Value::Int(1)));
    }
    XS_ASSIGN_OR_RETURN(XmlEvent tail, parser.Next());
    XS_CHECK(tail.kind == XmlEventKind::kEndOfInput);
    XS_RETURN_IF_ERROR(MatchRootRuns(runs));
    Row root_row = walker.TakeRootRow();
    XS_RETURN_IF_ERROR(sink.AppendRow(root_rel_, std::move(root_row)));
    stats_.rows = walker.rows() + 1;
    stats_.elements = walker.elements() + 1;
    XS_RETURN_IF_ERROR(writer.Finish());
    stats_.transient_peak_bytes =
        writer.allocated_bytes() + max_subtree +
        kTransientRunBytes * static_cast<int64_t>(runs.size());
    return Status::OK();
  }

  Status RunParallel(bool* redo_serial);

  // Thread-count-invariant registry metrics only; the thread-dependent
  // transient peak stays in ShredStats. Storage peaks mirror the gauges
  // evaluate.cc maintains for the DOM pipeline.
  void PublishMetrics() {
    MetricsRegistry* m = options_.metrics;
    if (m == nullptr) return;
    m->counter(kMetricShredDocuments)->Increment();
    m->counter(kMetricShredRows)->Add(stats_.rows);
    m->counter(kMetricShredElements)->Add(stats_.elements);
    m->counter(kMetricShredBatchesEmitted)->Add(stats_.batches_emitted);
    m->gauge(kMetricShredPeakBatchBytes)
        ->SetMax(static_cast<double>(stats_.peak_batch_bytes));
    m->gauge(kMetricStorageTableBytesPeak)
        ->SetMax(static_cast<double>(db_->TotalTableBytes()));
    m->gauge(kMetricStorageDictBytesPeak)
        ->SetMax(static_cast<double>(db_->dictionary().ByteSize()));
    m->gauge(kMetricStorageDictEntriesPeak)
        ->SetMax(static_cast<double>(db_->dictionary().size()));
    m->gauge(kMetricStorageEncodedBytes)
        ->SetMax(static_cast<double>(db_->TotalStoredBytes()));
  }

  std::string_view xml_;
  const SchemaTree& tree_;
  const Mapping& mapping_;
  Database* db_;
  StreamShredOptions options_;
  std::vector<std::string> created_;
  std::vector<Table*> tables_;
  RouteTable routes_;
  int root_rel_ = -1;
  bool fallback_ = false;
  size_t dict_floor_ = 0;
  ShredStats stats_;
};

Status StreamIngest::RunParallel(bool* redo_serial) {
  // Structural pre-scan: byte span + start-tag count of every depth-1
  // subtree. Any irregularity (parse error, wrong root) redoes serially —
  // the serial pass reports it with its exact error precedence.
  struct Span {
    size_t begin = 0;
    size_t end = 0;
    int64_t starts = 0;
  };
  std::vector<Span> spans;
  {
    StreamParseOptions popts;
    popts.governor = options_.governor;
    XmlStreamParser pre(xml_, popts);
    auto root_ev = pre.Next();
    if (!root_ev.ok()) {
      *redo_serial = true;
      return Status::OK();
    }
    XmlEvent ev = std::move(root_ev).TakeValue();
    if (ev.kind != XmlEventKind::kStartElement ||
        ev.name != tree_.root()->name()) {
      *redo_serial = true;
      return Status::OK();
    }
    for (;;) {
      auto next = pre.Next();
      if (!next.ok()) {
        *redo_serial = true;
        return Status::OK();
      }
      XmlEvent e = std::move(next).TakeValue();
      if (e.kind == XmlEventKind::kText) continue;
      if (e.kind == XmlEventKind::kEndElement) break;  // root closed
      if (e.kind != XmlEventKind::kStartElement) {
        *redo_serial = true;
        return Status::OK();
      }
      Span s{e.begin, e.end, 1};
      int depth = 1;
      while (depth > 0) {
        auto inner = pre.Next();
        if (!inner.ok()) {
          *redo_serial = true;
          return Status::OK();
        }
        XmlEvent ie = std::move(inner).TakeValue();
        if (ie.kind == XmlEventKind::kStartElement) {
          ++s.starts;
          ++depth;
        } else if (ie.kind == XmlEventKind::kEndElement) {
          if (--depth == 0) s.end = ie.end;
        } else if (ie.kind == XmlEventKind::kEndOfInput) {
          *redo_serial = true;
          return Status::OK();
        }
      }
      spans.push_back(s);
    }
    auto tail = pre.Next();
    if (!tail.ok() ||
        std::move(tail).TakeValue().kind != XmlEventKind::kEndOfInput) {
      *redo_serial = true;
      return Status::OK();
    }
  }

  int workers = static_cast<int>(
      std::min<size_t>(static_cast<size_t>(options_.threads), spans.size()));
  if (workers <= 1) return RunSerial();
  stats_.partitions = workers;

  // Contiguous byte-balanced chunks, plus each chunk's document-order ID
  // base (2 + start tags before it; the root holds ID 1).
  int64_t total_bytes = 0;
  for (const Span& s : spans) {
    total_bytes += static_cast<int64_t>(s.end - s.begin);
  }
  std::vector<size_t> bounds(static_cast<size_t>(workers) + 1, 0);
  bounds[static_cast<size_t>(workers)] = spans.size();
  {
    int64_t cum = 0;
    size_t i = 0;
    for (int w = 1; w < workers; ++w) {
      int64_t target = total_bytes * w / workers;
      while (i < spans.size() && cum < target) {
        cum += static_cast<int64_t>(spans[i].end - spans[i].begin);
        ++i;
      }
      bounds[static_cast<size_t>(w)] = i;
    }
  }
  std::vector<int64_t> prefix(spans.size() + 1, 0);
  for (size_t i = 0; i < spans.size(); ++i) {
    prefix[i + 1] = prefix[i] + spans[i].starts;
  }

  struct Worker {
    LocalRowSink sink;
    std::unique_ptr<ElementWalker> walker;
    std::vector<TopRun> runs;
    int64_t max_subtree = 0;
    bool anomaly = false;
  };
  std::vector<Worker> ws(static_cast<size_t>(workers));
  size_t nrel = mapping_.relations().size();
  std::atomic<bool> any_anomaly{false};
  ParallelFor(workers, workers, [&](int w) {
    Worker& wk = ws[static_cast<size_t>(w)];
    wk.sink.Init(nrel);
    size_t lo = bounds[static_cast<size_t>(w)];
    size_t hi = bounds[static_cast<size_t>(w) + 1];
    wk.walker = std::make_unique<ElementWalker>(mapping_, &wk.sink,
                                                /*first_id=*/2 + prefix[lo]);
    wk.walker->SeedRootProxy(root_rel_, RootRowWidth());
    for (size_t si = lo; si < hi && !wk.anomaly; ++si) {
      const Span& s = spans[si];
      StreamParseOptions po;
      po.governor = options_.governor;
      po.fragment = true;
      XmlStreamParser sp(xml_.substr(s.begin, s.end - s.begin), po);
      auto evr = sp.Next();
      if (!evr.ok()) {
        wk.anomaly = true;
        break;
      }
      XmlEvent ev = std::move(evr).TakeValue();
      if (ev.kind != XmlEventKind::kStartElement) {
        wk.anomaly = true;
        break;
      }
      auto elem = std::make_unique<XmlElement>(std::string(ev.name));
      int64_t starts = 1;
      int64_t bytes =
          kTransientElementBytes + static_cast<int64_t>(ev.name.size());
      if (!FillElement(&sp, elem.get(), &starts, &bytes).ok()) {
        wk.anomaly = true;
        break;
      }
      wk.max_subtree = std::max(wk.max_subtree, bytes);
      const SchemaNode* slot = nullptr;
      const SchemaNode* resolved = nullptr;
      Status rs = ResolveRoute(routes_, elem.get(), &slot, &resolved);
      if (!rs.ok() || resolved == nullptr) {
        wk.anomaly = true;
        break;
      }
      AppendTopRun(&wk.runs, slot, resolved, elem->tag());
      if (!wk.walker->ShredTag(elem.get(), resolved, Value::Int(1)).ok()) {
        wk.anomaly = true;
        break;
      }
    }
    // ID determinism check: the walk must consume exactly the pre-scan's
    // start-tag count (it won't when a leaf tag carries child elements,
    // which the walk ignores without assigning IDs). Any drift shifts
    // every later chunk's ID base, so the whole ingest redoes serially.
    if (!wk.anomaly && wk.walker->elements() != prefix[hi] - prefix[lo]) {
      wk.anomaly = true;
    }
    if (wk.anomaly) any_anomaly.store(true, std::memory_order_release);
  });
  if (any_anomaly.load(std::memory_order_acquire)) {
    *redo_serial = true;
    return Status::OK();
  }

  // Content-model validation over the concatenated run list (boundary
  // runs re-merged) — identical runs, and so identical verdict and error
  // message, to the serial pass.
  std::vector<TopRun> runs;
  for (const Worker& wk : ws) {
    for (const TopRun& r : wk.runs) {
      if (!runs.empty() && runs.back().slot == r.slot &&
          runs.back().resolved == r.resolved && runs.back().name == r.name) {
        runs.back().count += r.count;
      } else {
        runs.push_back(r);
      }
    }
  }
  XS_RETURN_IF_ERROR(MatchRootRuns(runs));

  // Dictionary merge in partition order: a string's first document-order
  // occurrence lies in the earliest partition containing it, and local
  // codes follow that partition's document order, so global codes come
  // out exactly as serial interleaved interning would assign them.
  StringDictionary* dict = db_->mutable_dictionary();
  std::vector<std::vector<uint32_t>> remap(static_cast<size_t>(workers));
  for (int w = 0; w < workers; ++w) {
    const StringDictionary& local = ws[static_cast<size_t>(w)].sink.dict;
    remap[static_cast<size_t>(w)].resize(local.size());
    for (size_t c = 0; c < local.size(); ++c) {
      remap[static_cast<size_t>(w)][c] =
          dict->Intern(local.str(static_cast<uint32_t>(c)));
    }
  }

  // Replay every worker's row log through the batch writer in document
  // order — the exact row / flush / fault-check / memory-charge sequence
  // of the serial pass.
  BatchWriter writer(tables_, dict, options_.governor, &stats_);
  GlobalRowSink sink(&writer);
  for (int w = 0; w < workers; ++w) {
    LocalRowSink& sk = ws[static_cast<size_t>(w)].sink;
    const std::vector<uint32_t>& map = remap[static_cast<size_t>(w)];
    std::vector<size_t> cursor(nrel, 0);
    for (const auto& entry : sk.row_log) {
      int rel = entry.first;
      size_t ncols = static_cast<size_t>(
          tables_[static_cast<size_t>(rel)]->schema().num_columns());
      LocalRowSink::RelRun& rr = sk.runs[static_cast<size_t>(rel)];
      for (int64_t k = 0; k < entry.second; ++k) {
        size_t off = cursor[static_cast<size_t>(rel)];
        for (size_t c = 0; c < ncols; ++c) {
          if (rr.tags[off + c] == static_cast<uint8_t>(CellTag::kStr)) {
            rr.bits[off + c] = map[static_cast<uint32_t>(rr.bits[off + c])];
          }
        }
        XS_RETURN_IF_ERROR(writer.AppendEncodedRow(
            rel, rr.tags.data() + off, rr.bits.data() + off));
        cursor[static_cast<size_t>(rel)] = off + ncols;
      }
    }
  }

  // Root row: apply per-partition write logs in order (the last write in
  // document order wins, exactly as the serial proxy ends up), append it
  // last like the DOM path, then flush the partial batches.
  Row root_row(RootRowWidth(), Value::Null());
  root_row[0] = Value::Int(1);
  stats_.rows = 1;
  stats_.elements = 1;
  for (const Worker& wk : ws) {
    for (const auto& write : wk.walker->root_writes()) {
      root_row[static_cast<size_t>(kFixedColumns + write.first)] =
          write.second;
    }
    stats_.rows += wk.walker->rows();
    stats_.elements += wk.walker->elements();
  }
  XS_RETURN_IF_ERROR(sink.AppendRow(root_rel_, std::move(root_row)));
  XS_RETURN_IF_ERROR(writer.Finish());

  int64_t worker_bytes = 0;
  for (const Worker& wk : ws) {
    worker_bytes += wk.sink.cells * kTransientCellBytes +
                    wk.sink.dict.ByteSize() +
                    kTransientRunBytes * static_cast<int64_t>(wk.runs.size()) +
                    wk.max_subtree;
  }
  stats_.transient_peak_bytes =
      kTransientSpanBytes * static_cast<int64_t>(spans.size()) +
      writer.allocated_bytes() + worker_bytes;
  return Status::OK();
}

}  // namespace

Result<ShredStats> ShredStream(std::string_view xml, const SchemaTree& tree,
                               const Mapping& mapping, Database* db,
                               const StreamShredOptions& options) {
  StreamIngest ingest(xml, tree, mapping, db, options);
  return ingest.Run();
}

}  // namespace xmlshred
