// Schema-tree transformations (paper Section 2.1).
//
// Split-type transformations refine storage: type split, union
// distribution (explicit choices and implicit unions over optional
// elements, including the merged multi-element candidates of §4.7),
// repetition split, and outlining. Merge-type transformations coarsen it:
// type merge, union factorization, repetition merge, and inlining.
// Outlining/inlining are the subsumed transformations of §3.1 — they only
// re-partition columns vertically — and are enumerated only by the naive
// baseline; the paper's Greedy prunes them.
//
// Transformations name their targets by persistent node id, so a
// candidate generated against one tree applies to any clone of it.
// ApplyTransform returns the id of the node that anchors the inverse
// transformation (e.g. the variant choice created by a distribution),
// letting the search register merge counterparts for the greedy loop.

#ifndef XMLSHRED_MAPPING_TRANSFORMS_H_
#define XMLSHRED_MAPPING_TRANSFORMS_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "xml/schema_tree.h"

namespace xmlshred {

enum class TransformKind {
  kOutline,
  kInline,
  kTypeSplit,
  kTypeMerge,
  kUnionDistribute,   // explicit choice, or implicit over option_targets
  kUnionFactorize,
  kRepetitionSplit,
  kRepetitionMerge,
};

const char* TransformKindToString(TransformKind kind);

struct Transform {
  TransformKind kind = TransformKind::kOutline;
  int target = -1;    // primary node id (tag / choice / option / repetition)
  int target2 = -1;   // second tag (type merge)
  std::string annotation;          // shared annotation (type split)
  std::vector<int> option_targets; // implicit union distribution set (§4.7)
  int split_count = 0;             // repetition split k (§4.6)

  // True for transformations that coarsen storage (applied during the
  // greedy loop; split types are applied once to build the initial
  // mapping).
  bool IsMergeType() const;

  std::string ToString() const;
};

// Applies `transform` to `tree` in place. Returns the id of the node
// anchoring the inverse transformation:
//   outline/inline/type split/type merge -> the target tag (or -1),
//   union distribute -> the created variant-choice node,
//   union factorize -> the restored tag,
//   repetition split/merge -> the repetition node.
// Fails with NotFound if a target id no longer exists and with
// FailedPrecondition if the transformation is not applicable there.
Result<int> ApplyTransform(SchemaTree* tree, const Transform& transform);

// True if an annotated tag may legally lose its annotation: it is not the
// root and its path to the nearest tag ancestor crosses no repetition and
// no variant choice.
bool CanInline(const SchemaNode* node);

// True if an unannotated non-root tag may gain an annotation.
bool CanOutline(const SchemaNode* node);

// Removes every legally removable annotation — the fully inlined tree T0
// of Theorem 1, which is also the hybrid-inlining baseline mapping of
// Shanmugasundaram et al. used for normalization in the experiments.
void FullyInline(SchemaTree* tree);

// Returns an annotation name not used anywhere in `tree`, derived from
// `base`.
std::string MakeUniqueAnnotation(const SchemaTree& tree,
                                 const std::string& base);

// Enumerates every applicable transformation (both split and merge
// directions, including the subsumed outline/inline ones) — the search
// space of the Naive-Greedy baseline. `default_split_count` is used for
// repetition-split candidates.
std::vector<Transform> EnumerateTransforms(SchemaTree& tree,
                                           int default_split_count);

}  // namespace xmlshred

#endif  // XMLSHRED_MAPPING_TRANSFORMS_H_
