// Helpers shared by the DOM shredder (shredder.cc) and the streaming
// shredder (stream_shredder.cc). Both walk the same schema tree with the
// same routing rules; keeping the leaf test, the match-level name
// collection, and text-to-Value parsing in one place is what makes the
// two paths bit-identical by construction.

#ifndef XMLSHRED_MAPPING_SHRED_COMMON_H_
#define XMLSHRED_MAPPING_SHRED_COMMON_H_

#include <cstdlib>
#include <set>
#include <string>

#include "rel/value.h"
#include "xml/schema_tree.h"

namespace xmlshred {

// A leaf tag stores its text as one column of the enclosing row and is
// never descended into (child elements under a leaf are ignored).
inline bool IsLeafTag(const SchemaNode* node) {
  return node->kind() == SchemaNodeKind::kTag && node->num_children() == 1 &&
         node->child(0)->kind() == SchemaNodeKind::kSimpleType;
}

// Element names an instance of `node` may present at the matching level
// (not descending into tags).
inline void MatchNames(const SchemaNode* node, std::set<std::string>* out) {
  if (node->kind() == SchemaNodeKind::kTag) {
    out->insert(node->name());
    return;
  }
  for (const auto& child : node->children()) MatchNames(child.get(), out);
}

// Typed value of one leaf's text under its declared simple type; empty
// text maps to SQL NULL.
inline Value ParseLeafValue(const std::string& text, XsdBaseType type) {
  if (text.empty()) return Value::Null();
  switch (type) {
    case XsdBaseType::kString:
      return Value::Str(text);
    case XsdBaseType::kInt:
      return Value::Int(std::atoll(text.c_str()));
    case XsdBaseType::kDouble:
      return Value::Real(std::atof(text.c_str()));
  }
  return Value::Null();
}

}  // namespace xmlshred

#endif  // XMLSHRED_MAPPING_SHRED_COMMON_H_
