#include "mapping/reconstructor.h"

#include <algorithm>
#include <unordered_map>

#include "common/logging.h"
#include "common/strings.h"
#include "rel/column_reader.h"

namespace xmlshred {

namespace {

bool IsLeafTag(const SchemaNode* node) {
  return node->kind() == SchemaNodeKind::kTag && node->num_children() == 1 &&
         node->child(0)->kind() == SchemaNodeKind::kSimpleType;
}

std::string RenderValue(const Value& value) {
  if (value.is_int()) return std::to_string(value.AsInt());
  if (value.is_double()) return FormatDoubleTrimmed(value.AsDouble(), 6);
  return value.AsString();
}

class Reconstructor {
 public:
  Reconstructor(const Database& db, const SchemaTree& tree,
                const Mapping& mapping)
      : db_(db), tree_(tree), mapping_(mapping) {}

  Result<XmlDocument> Run() {
    const SchemaNode* root = tree_.root();
    int rel_idx = mapping_.RelationIndexOfAnchor(root->id());
    if (rel_idx < 0) return FailedPrecondition("root is not mapped");
    const Table* table = TableOf(rel_idx);
    if (table == nullptr) return NotFound("root relation missing");
    if (table->row_count() != 1) {
      return FailedPrecondition("root relation must hold exactly one row");
    }
    XS_ASSIGN_OR_RETURN(
        std::unique_ptr<XmlElement> element,
        EmitTag(root, RowsOf(rel_idx)[0], rel_idx));
    return XmlDocument(std::move(element));
  }

 private:
  const Table* TableOf(int rel_idx) {
    return db_.FindTable(
        mapping_.relations()[static_cast<size_t>(rel_idx)].table_name);
  }

  // Rows of relation `rel_idx`, materialized from columnar storage once
  // and cached; the vector is never resized after, so pointers into it
  // stay valid for the whole reconstruction. Reads go through the block
  // reader API (sealed blocks may only exist as encoded images); the
  // sequential pass decodes each block exactly once per column.
  const std::vector<Row>& RowsOf(int rel_idx) {
    auto it = rows_cache_.find(rel_idx);
    if (it == rows_cache_.end()) {
      const Table* table = TableOf(rel_idx);
      XS_CHECK(table != nullptr);
      int ncols = table->schema().num_columns();
      std::vector<ColumnReader> readers;
      readers.reserve(static_cast<size_t>(ncols));
      for (int c = 0; c < ncols; ++c) {
        readers.emplace_back(table->column(c), DefaultStorageReadMode());
      }
      const StringDictionary& dict = db_.dictionary();
      std::vector<Row> rows;
      size_t n = static_cast<size_t>(table->row_count());
      rows.reserve(n);
      for (size_t rid = 0; rid < n; ++rid) {
        Row row;
        row.reserve(static_cast<size_t>(ncols));
        for (int c = 0; c < ncols; ++c) {
          row.push_back(
              readers[static_cast<size_t>(c)].GetValue(rid, dict));
        }
        rows.push_back(std::move(row));
      }
      it = rows_cache_.emplace(rel_idx, std::move(rows)).first;
    }
    return it->second;
  }

  // Rows of relation `rel_idx` whose PID equals `parent_id`, in ID order.
  const std::vector<const Row*>& ChildRows(int rel_idx, int64_t parent_id) {
    auto& by_pid = children_[rel_idx];
    if (by_pid.empty()) {
      const Table* table = TableOf(rel_idx);
      XS_CHECK(table != nullptr);
      int pid_col = table->schema().pid_column;
      for (const Row& row : RowsOf(rel_idx)) {
        const Value& pid = row[static_cast<size_t>(pid_col)];
        if (!pid.is_null()) by_pid[pid.AsInt()].push_back(&row);
      }
      // Mark as initialized even when the relation is empty.
      by_pid[-1];
    }
    static const std::vector<const Row*> kEmpty;
    auto it = by_pid.find(parent_id);
    return it == by_pid.end() ? kEmpty : it->second;
  }

  int64_t RowId(const Row& row, int rel_idx) {
    const Table* table = TableOf(rel_idx);
    return row[static_cast<size_t>(table->schema().id_column)].AsInt();
  }

  // Emits the element for one instance (row) of an annotated tag.
  Result<std::unique_ptr<XmlElement>> EmitTag(const SchemaNode* tag,
                                              const Row& row, int rel_idx) {
    auto element = std::make_unique<XmlElement>(tag->name());
    if (IsLeafTag(tag)) {
      int lrel, lcol;
      if (!mapping_.ColumnOfNode(tag->id(), &lrel, &lcol)) {
        return Internal("leaf anchor without column");
      }
      const Value& value = row[static_cast<size_t>(kFixedColumns + lcol)];
      if (!value.is_null()) element->set_text(RenderValue(value));
      return element;
    }
    XS_RETURN_IF_ERROR(
        EmitContent(tag->child(0), row, rel_idx, element.get()));
    return element;
  }

  // Emits the content of `node` into `out`, reading inline columns from
  // `row` (a row of relation `rel_idx`) and child relations by PID.
  Status EmitContent(const SchemaNode* node, const Row& row, int rel_idx,
                     XmlElement* out) {
    switch (node->kind()) {
      case SchemaNodeKind::kSequence:
        for (const auto& child : node->children()) {
          XS_RETURN_IF_ERROR(EmitContent(child.get(), row, rel_idx, out));
        }
        return Status::OK();
      case SchemaNodeKind::kTag: {
        if (node->is_annotated()) {
          int child_rel = mapping_.RelationIndexOfAnchor(node->id());
          if (child_rel < 0) return Internal("anchor without relation");
          int64_t parent_id = RowId(row, rel_idx);
          for (const Row* child_row : ChildRows(child_rel, parent_id)) {
            XS_ASSIGN_OR_RETURN(std::unique_ptr<XmlElement> child,
                                EmitTag(node, *child_row, child_rel));
            out->AddChild(std::move(child));
          }
          return Status::OK();
        }
        if (IsLeafTag(node)) {
          int lrel, lcol;
          if (!mapping_.ColumnOfNode(node->id(), &lrel, &lcol)) {
            return Internal("leaf without column: " + node->name());
          }
          XS_CHECK_EQ(lrel, rel_idx);
          const Value& value = row[static_cast<size_t>(kFixedColumns + lcol)];
          if (!value.is_null()) {
            out->AddTextChild(node->name(), RenderValue(value));
          }
          return Status::OK();
        }
        // Unannotated complex tag: nested element over the same row.
        XmlElement* nested = out->AddChild(node->name());
        return EmitContent(node->child(0), row, rel_idx, nested);
      }
      case SchemaNodeKind::kOption:
        return EmitContent(node->child(0), row, rel_idx, out);
      case SchemaNodeKind::kChoice:
        if (node->is_variant_choice()) {
          return EmitVariants(node, row, rel_idx, out);
        }
        // Plain choice: absent alternatives emit nothing (NULL columns).
        for (const auto& alternative : node->children()) {
          XS_RETURN_IF_ERROR(
              EmitContent(alternative.get(), row, rel_idx, out));
        }
        return Status::OK();
      case SchemaNodeKind::kRepetition: {
        const SchemaNode* repeated = node->child(0);
        if (repeated->kind() == SchemaNodeKind::kChoice &&
            repeated->is_variant_choice()) {
          return EmitVariants(repeated, row, rel_idx, out);
        }
        if (repeated->kind() != SchemaNodeKind::kTag ||
            !repeated->is_annotated()) {
          return Internal("repetition over unannotated content");
        }
        int child_rel = mapping_.RelationIndexOfAnchor(repeated->id());
        if (child_rel < 0) return Internal("anchor without relation");
        int64_t parent_id = RowId(row, rel_idx);
        for (const Row* child_row : ChildRows(child_rel, parent_id)) {
          XS_ASSIGN_OR_RETURN(std::unique_ptr<XmlElement> child,
                              EmitTag(repeated, *child_row, child_rel));
          out->AddChild(std::move(child));
        }
        return Status::OK();
      }
      case SchemaNodeKind::kSimpleType:
        return Internal("simple type in content position");
    }
    return Internal("unhandled node kind");
  }

  // Union-distribution variants: merge each variant relation's child rows
  // back into document (ID) order.
  Status EmitVariants(const SchemaNode* choice, const Row& row, int rel_idx,
                      XmlElement* out) {
    struct Instance {
      int64_t id;
      const SchemaNode* variant;
      const Row* row;
      int rel;
    };
    std::vector<Instance> instances;
    int64_t parent_id = RowId(row, rel_idx);
    for (const auto& variant : choice->children()) {
      int child_rel = mapping_.RelationIndexOfAnchor(variant->id());
      if (child_rel < 0) return Internal("variant without relation");
      for (const Row* child_row : ChildRows(child_rel, parent_id)) {
        instances.push_back({RowId(*child_row, child_rel), variant.get(),
                             child_row, child_rel});
      }
    }
    std::sort(instances.begin(), instances.end(),
              [](const Instance& a, const Instance& b) {
                return a.id < b.id;
              });
    for (const Instance& instance : instances) {
      XS_ASSIGN_OR_RETURN(
          std::unique_ptr<XmlElement> child,
          EmitTag(instance.variant, *instance.row, instance.rel));
      out->AddChild(std::move(child));
    }
    return Status::OK();
  }

  const Database& db_;
  const SchemaTree& tree_;
  const Mapping& mapping_;
  // rel_idx -> materialized rows (pointer-stable backing for children_)
  std::unordered_map<int, std::vector<Row>> rows_cache_;
  // rel_idx -> (parent id -> rows in ID order)
  std::unordered_map<int,
                     std::unordered_map<int64_t, std::vector<const Row*>>>
      children_;
};

}  // namespace

Result<XmlDocument> ReconstructDocument(const Database& db,
                                        const SchemaTree& tree,
                                        const Mapping& mapping) {
  Reconstructor reconstructor(db, tree, mapping);
  return reconstructor.Run();
}

}  // namespace xmlshred
