#include "mapping/xml_stats.h"

#include <algorithm>
#include <cstdlib>
#include <set>

#include "common/logging.h"

namespace xmlshred {

namespace {

bool IsLeafTag(const SchemaNode* node) {
  return node->kind() == SchemaNodeKind::kTag && node->num_children() == 1 &&
         node->child(0)->kind() == SchemaNodeKind::kSimpleType;
}

void MatchNames(const SchemaNode* node, std::set<std::string>* out) {
  if (node->kind() == SchemaNodeKind::kTag) {
    out->insert(node->name());
    return;
  }
  for (const auto& child : node->children()) MatchNames(child.get(), out);
}

// Optional child element names within an anchor's inline content: names
// under options and choice alternatives, not descending into tags.
void CollectOptionalNames(const SchemaNode* node, bool optional,
                          std::set<std::string>* out) {
  switch (node->kind()) {
    case SchemaNodeKind::kTag:
      if (optional) out->insert(node->name());
      return;
    case SchemaNodeKind::kOption:
    case SchemaNodeKind::kChoice:
      for (const auto& child : node->children()) {
        CollectOptionalNames(child.get(), true, out);
      }
      return;
    default:
      for (const auto& child : node->children()) {
        CollectOptionalNames(child.get(), optional, out);
      }
      return;
  }
}

Value ParseValue(const std::string& text, XsdBaseType type) {
  if (text.empty()) return Value::Null();
  switch (type) {
    case XsdBaseType::kString:
      return Value::Str(text);
    case XsdBaseType::kInt:
      return Value::Int(std::atoll(text.c_str()));
    case XsdBaseType::kDouble:
      return Value::Real(std::atof(text.c_str()));
  }
  return Value::Null();
}

}  // namespace

class StatsCollector {
 public:
  StatsCollector(const SchemaTree& tree, XmlStatistics* stats)
      : tree_(tree), stats_(stats) {}

  Status Run(const XmlDocument& doc) {
    if (doc.root() == nullptr) return InvalidArgument("empty document");
    if (doc.root()->tag() != tree_.root()->name()) {
      return InvalidArgument("document root does not match schema root");
    }
    // Precompute each annotated tag's optional child names.
    tree_.Visit([this](const SchemaNode* node) {
      if (node->kind() == SchemaNodeKind::kTag && node->is_annotated() &&
          !IsLeafTag(node)) {
        std::set<std::string> names;
        CollectOptionalNames(node->child(0), false, &names);
        if (!names.empty() && names.size() <= 62) {
          auto& presence = presence_[node->origin_id()];
          presence.optional_names.assign(names.begin(), names.end());
        }
      }
    });
    XS_RETURN_IF_ERROR(WalkTag(doc.root(), tree_.root()));
    // Finalize accumulated values into column statistics.
    for (auto& [origin, values] : accumulated_values_) {
      stats_->value_stats_[origin] = BuildColumnStatsFromValues(values);
    }
    stats_->presence_ = std::move(presence_);
    return Status::OK();
  }

 private:
  using ContextPresence = XmlStatistics::ContextPresence;

  Status WalkTag(const XmlElement* element, const SchemaNode* node) {
    ++stats_->total_elements_;
    ++stats_->element_counts_[node->origin_id()];

    if (node->is_annotated() && !IsLeafTag(node)) {
      auto it = presence_.find(node->origin_id());
      if (it != presence_.end()) {
        uint64_t mask = 0;
        for (const auto& child : element->children()) {
          for (size_t i = 0; i < it->second.optional_names.size(); ++i) {
            if (it->second.optional_names[i] == child->tag()) {
              mask |= 1ULL << i;
            }
          }
        }
        ++it->second.combo_counts[mask];
      }
    }

    if (IsLeafTag(node)) {
      accumulated_values_[node->origin_id()].push_back(
          ParseValue(element->text(), node->child(0)->base_type()));
      return Status::OK();
    }
    size_t cursor = 0;
    XS_RETURN_IF_ERROR(Match(node->child(0), element, &cursor));
    if (cursor != element->children().size()) {
      return InvalidArgument("unconsumed children under <" + element->tag() +
                             ">");
    }
    return Status::OK();
  }

  Status Match(const SchemaNode* node, const XmlElement* element,
               size_t* cursor) {
    const auto& kids = element->children();
    switch (node->kind()) {
      case SchemaNodeKind::kSequence:
        for (const auto& child : node->children()) {
          XS_RETURN_IF_ERROR(Match(child.get(), element, cursor));
        }
        return Status::OK();
      case SchemaNodeKind::kTag:
        if (*cursor >= kids.size() || kids[*cursor]->tag() != node->name()) {
          return InvalidArgument("expected <" + node->name() + ">");
        }
        return WalkTag(kids[(*cursor)++].get(), node);
      case SchemaNodeKind::kOption: {
        std::set<std::string> names;
        MatchNames(node->child(0), &names);
        if (*cursor < kids.size() && names.count(kids[*cursor]->tag()) > 0) {
          return Match(node->child(0), element, cursor);
        }
        return Status::OK();
      }
      case SchemaNodeKind::kRepetition: {
        std::set<std::string> names;
        MatchNames(node->child(0), &names);
        int64_t occurrences = 0;
        while (*cursor < kids.size() &&
               names.count(kids[*cursor]->tag()) > 0) {
          XS_RETURN_IF_ERROR(Match(node->child(0), element, cursor));
          ++occurrences;
        }
        ++stats_->cardinality_hists_[node->origin_id()][occurrences];
        return Status::OK();
      }
      case SchemaNodeKind::kChoice: {
        if (*cursor >= kids.size()) {
          return InvalidArgument("missing choice content");
        }
        const std::string& next = kids[*cursor]->tag();
        for (const auto& alternative : node->children()) {
          std::set<std::string> names;
          MatchNames(alternative.get(), &names);
          if (names.count(next) > 0) {
            return Match(alternative.get(), element, cursor);
          }
        }
        return InvalidArgument("no choice alternative matches <" + next + ">");
      }
      case SchemaNodeKind::kSimpleType:
        return Internal("simple type in content position");
    }
    return Internal("unhandled node kind");
  }

  const SchemaTree& tree_;
  XmlStatistics* stats_;
  std::map<int, std::vector<Value>> accumulated_values_;
  std::map<int, ContextPresence> presence_;

  friend class XmlStatistics;
};

Result<XmlStatistics> XmlStatistics::Collect(const XmlDocument& doc,
                                             const SchemaTree& tree) {
  XmlStatistics stats;
  StatsCollector collector(tree, &stats);
  XS_RETURN_IF_ERROR(collector.Run(doc));
  return stats;
}

int64_t XmlStatistics::ElementCount(int origin_id) const {
  auto it = element_counts_.find(origin_id);
  return it == element_counts_.end() ? 0 : it->second;
}

const std::map<int64_t, int64_t>* XmlStatistics::CardinalityHist(
    int origin_id) const {
  auto it = cardinality_hists_.find(origin_id);
  return it == cardinality_hists_.end() ? nullptr : &it->second;
}

const ColumnStats* XmlStatistics::ValueStats(int origin_id) const {
  auto it = value_stats_.find(origin_id);
  return it == value_stats_.end() ? nullptr : &it->second;
}

int64_t XmlStatistics::CountMatchingPresence(
    int context_origin_id, const std::vector<std::string>& any,
    const std::vector<std::string>& forbidden,
    const std::vector<std::string>& require_all) const {
  auto it = presence_.find(context_origin_id);
  if (it == presence_.end()) {
    // No optional children tracked: every instance matches unless the
    // constraint demands a present element.
    return any.empty() ? ElementCount(context_origin_id) : 0;
  }
  const ContextPresence& presence = it->second;
  auto mask_of = [&presence](const std::vector<std::string>& names) {
    uint64_t mask = 0;
    for (const std::string& name : names) {
      for (size_t i = 0; i < presence.optional_names.size(); ++i) {
        if (presence.optional_names[i] == name) mask |= 1ULL << i;
      }
    }
    return mask;
  };
  uint64_t any_mask = mask_of(any);
  uint64_t forbidden_mask = mask_of(forbidden);
  uint64_t require_mask = mask_of(require_all);
  int64_t count = 0;
  for (const auto& [combo, n] : presence.combo_counts) {
    if (!any.empty() && (combo & any_mask) == 0) continue;
    if ((combo & forbidden_mask) != 0) continue;
    if ((combo & require_mask) != require_mask) continue;
    count += n;
  }
  return count;
}

double XmlStatistics::AncestorVariantSelectivity(
    const SchemaNode* node) const {
  // Fraction of this element's instances surviving the presence
  // constraints of every enclosing variant context (e.g. aka_title under
  // a distributed movie variant).
  double factor = 1.0;
  for (const SchemaNode* p = node->parent(); p != nullptr; p = p->parent()) {
    if (p->kind() == SchemaNodeKind::kTag && p->is_annotated() &&
        (!p->presence_any().empty() || !p->presence_forbidden().empty())) {
      int64_t total = ElementCount(p->origin_id());
      if (total > 0) {
        factor *= static_cast<double>(CountMatchingPresence(
                      p->origin_id(), p->presence_any(),
                      p->presence_forbidden())) /
                  static_cast<double>(total);
      }
    }
  }
  return factor;
}

int64_t XmlStatistics::AnchorRowCount(const SchemaNode* anchor) const {
  double variant_factor = AncestorVariantSelectivity(anchor);
  // An outlined repetition-split occurrence column (deep merge can outline
  // author_i): one row per parent with at least i occurrences.
  if (anchor->rep_split_index() > 0 && anchor->parent() != nullptr) {
    const std::map<int64_t, int64_t>* hist =
        CardinalityHist(anchor->parent()->origin_id());
    if (hist == nullptr) return 0;
    int64_t rows = 0;
    for (const auto& [cardinality, parents] : *hist) {
      if (cardinality >= anchor->rep_split_index()) rows += parents;
    }
    return static_cast<int64_t>(static_cast<double>(rows) * variant_factor +
                                0.5);
  }
  // Overflow relation of a repetition split: only occurrences beyond the
  // inlined count shred here.
  const SchemaNode* parent = anchor->parent();
  if (parent != nullptr && parent->kind() == SchemaNodeKind::kRepetition &&
      parent->rep_overflow_from() > 0) {
    const std::map<int64_t, int64_t>* hist =
        CardinalityHist(parent->origin_id());
    if (hist == nullptr) return 0;
    int64_t k = parent->rep_overflow_from();
    int64_t rows = 0;
    for (const auto& [cardinality, parents] : *hist) {
      if (cardinality > k) rows += (cardinality - k) * parents;
    }
    return static_cast<int64_t>(static_cast<double>(rows) * variant_factor +
                                0.5);
  }
  // A single-occurrence optional anchor (e.g. an outlined optional leaf)
  // under a variant-constrained context: condition jointly on the variant
  // constraint and the anchor's own presence, instead of multiplying the
  // marginals.
  const SchemaNode* ctx = anchor->NearestAnnotatedAncestor();
  if (ctx != nullptr &&
      (!ctx->presence_any().empty() || !ctx->presence_forbidden().empty())) {
    bool optional_single = false;
    for (const SchemaNode* p = anchor->parent();
         p != nullptr && p != ctx; p = p->parent()) {
      if (p->kind() == SchemaNodeKind::kRepetition) {
        optional_single = false;
        break;
      }
      if (p->kind() == SchemaNodeKind::kOption ||
          p->kind() == SchemaNodeKind::kChoice) {
        optional_single = true;
      }
    }
    if (optional_single) {
      int64_t joint = CountMatchingPresence(
          ctx->origin_id(), ctx->presence_any(), ctx->presence_forbidden(),
          {anchor->name()});
      return static_cast<int64_t>(
          static_cast<double>(joint) * AncestorVariantSelectivity(ctx) + 0.5);
    }
  }
  int64_t base;
  if (!anchor->presence_any().empty() ||
      !anchor->presence_forbidden().empty()) {
    base = CountMatchingPresence(anchor->origin_id(), anchor->presence_any(),
                                 anchor->presence_forbidden());
  } else {
    base = ElementCount(anchor->origin_id());
  }
  return static_cast<int64_t>(static_cast<double>(base) * variant_factor +
                              0.5);
}

TableStats XmlStatistics::DeriveTableStats(
    const SchemaTree& tree, const MappedRelation& relation) const {
  TableStats stats;
  // Row count and parent count accumulate over anchors.
  int64_t rows = 0;
  int64_t parent_rows = 0;
  std::vector<std::pair<const SchemaNode*, int64_t>> anchors;
  for (int anchor_id : relation.anchor_node_ids) {
    const SchemaNode* anchor = tree.FindNode(anchor_id);
    XS_CHECK(anchor != nullptr);
    int64_t anchor_rows = AnchorRowCount(anchor);
    anchors.emplace_back(anchor, anchor_rows);
    rows += anchor_rows;
    const SchemaNode* parent_anchor = anchor->NearestAnnotatedAncestor();
    if (parent_anchor != nullptr) {
      // Distinct PID values: parents that actually own rows here. For an
      // overflow relation that is the parents exceeding the split count.
      const SchemaNode* rep = anchor->parent();
      if (rep != nullptr && rep->kind() == SchemaNodeKind::kRepetition &&
          rep->rep_overflow_from() > 0) {
        const std::map<int64_t, int64_t>* hist =
            CardinalityHist(rep->origin_id());
        if (hist != nullptr) {
          for (const auto& [cardinality, parents] : *hist) {
            if (cardinality > rep->rep_overflow_from()) {
              parent_rows += parents;
            }
          }
        }
      } else {
        parent_rows += AnchorRowCount(parent_anchor);
      }
    }
  }
  stats.row_count = rows;

  // ID column.
  ColumnStats id_stats;
  id_stats.non_null_count = rows;
  id_stats.distinct_estimate = rows;
  id_stats.avg_bytes = 8.0;
  id_stats.min = Value::Int(1);
  id_stats.max = Value::Int(std::max<int64_t>(total_elements_, 1));
  stats.columns.push_back(std::move(id_stats));

  // PID column.
  ColumnStats pid_stats;
  pid_stats.non_null_count = rows;
  pid_stats.distinct_estimate = std::max<int64_t>(1, parent_rows);
  pid_stats.avg_bytes = 8.0;
  pid_stats.min = Value::Int(1);
  pid_stats.max = Value::Int(std::max<int64_t>(total_elements_, 1));
  stats.columns.push_back(std::move(pid_stats));

  // Mapped columns.
  for (const MappedColumn& column : relation.columns) {
    ColumnStats combined;
    for (int node_id : column.node_ids) {
      const SchemaNode* leaf = tree.FindNode(node_id);
      XS_CHECK(leaf != nullptr);
      const SchemaNode* anchor =
          leaf->is_annotated() ? leaf : leaf->NearestAnnotatedAncestor();
      XS_CHECK(anchor != nullptr);
      int64_t anchor_rows = 0;
      for (const auto& [a, r] : anchors) {
        if (a == anchor) {
          anchor_rows = r;
          break;
        }
      }

      int64_t non_null = 0;
      if (leaf->rep_split_index() > 0) {
        // Occurrence column i: parents with >= i occurrences, scaled by
        // any enclosing variant constraints.
        const SchemaNode* option = leaf->parent();
        const std::map<int64_t, int64_t>* hist =
            option != nullptr ? CardinalityHist(option->origin_id()) : nullptr;
        if (hist != nullptr) {
          for (const auto& [cardinality, parents] : *hist) {
            if (cardinality >= leaf->rep_split_index()) non_null += parents;
          }
          non_null = static_cast<int64_t>(
              static_cast<double>(non_null) *
                  AncestorVariantSelectivity(leaf) +
              0.5);
        }
      } else if (leaf == anchor) {
        non_null = anchor_rows;
      } else {
        // Presence probability of the leaf among context instances.
        int64_t context_count = ElementCount(anchor->origin_id());
        int64_t leaf_count = ElementCount(leaf->origin_id());
        bool forbidden = false;
        for (const std::string& name : anchor->presence_forbidden()) {
          if (name == leaf->name()) forbidden = true;
        }
        bool required = anchor->presence_any().size() == 1 &&
                        anchor->presence_any()[0] == leaf->name();
        bool constrained = !anchor->presence_any().empty() ||
                           !anchor->presence_forbidden().empty();
        if (forbidden) {
          non_null = 0;
        } else if (required) {
          non_null = anchor_rows;
        } else if (constrained && leaf->UnderOption()) {
          // Joint presence of the variant constraint and the leaf.
          non_null = static_cast<int64_t>(
              static_cast<double>(CountMatchingPresence(
                  anchor->origin_id(), anchor->presence_any(),
                  anchor->presence_forbidden(), {leaf->name()})) *
                  AncestorVariantSelectivity(anchor) +
              0.5);
        } else if (context_count > 0) {
          double p = static_cast<double>(leaf_count) /
                     static_cast<double>(context_count);
          non_null = static_cast<int64_t>(
              std::min(1.0, p) * static_cast<double>(anchor_rows) + 0.5);
        }
      }
      non_null = std::min(non_null, anchor_rows);

      const ColumnStats* base = ValueStats(leaf->origin_id());
      ColumnStats contribution;
      if (base != nullptr && base->non_null_count > 0) {
        double factor = static_cast<double>(non_null) /
                        static_cast<double>(base->non_null_count);
        contribution = ScaleColumnStats(*base, factor);
        contribution.non_null_count = non_null;  // exact, not rounded
      } else {
        contribution.non_null_count = non_null;
      }
      contribution.null_count = anchor_rows - non_null;
      combined = MergeColumnStats(combined, contribution);
    }
    // Anchors that do not feed this column still contribute NULL rows.
    int64_t accounted = combined.row_count();
    if (accounted < rows) combined.null_count += rows - accounted;
    stats.columns.push_back(std::move(combined));
  }
  return stats;
}

CatalogDesc XmlStatistics::DeriveCatalog(const SchemaTree& tree,
                                         const Mapping& mapping) const {
  CatalogDesc catalog;
  for (const MappedRelation& relation : mapping.relations()) {
    TableDesc desc;
    desc.schema = relation.ToTableSchema();
    desc.stats = DeriveTableStats(tree, relation);
    catalog.tables[relation.table_name] = std::move(desc);
  }
  return catalog;
}

}  // namespace xmlshred
