// XML-side statistics: collected once from the data at the finest
// granularity (per element, per value, per repetition cardinality, per
// optional-presence combination), then *derived* for any candidate mapping
// without touching the data again — the architecture of Section 4.1.
//
// Keys are origin node ids, which every transformed tree preserves, so a
// relation of any candidate mapping can resolve its anchors and columns
// back to collected statistics:
//
//  * plain relation rows      = element count of the anchor;
//  * variant relation rows    = presence-combination counts (exact);
//  * overflow relation rows   = cardinality histogram mass above the
//                               split count;
//  * occurrence column nulls  = parents with fewer occurrences;
//  * value distributions      = per-element stats, scaled to the derived
//                               row count (uniform-mix approximation for
//                               variant partitions — the direction the
//                               paper notes cannot be derived exactly).

#ifndef XMLSHRED_MAPPING_XML_STATS_H_
#define XMLSHRED_MAPPING_XML_STATS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "mapping/mapping.h"
#include "rel/catalog.h"
#include "xml/document.h"
#include "xml/schema_tree.h"

namespace xmlshred {

class XmlStatistics {
 public:
  // Walks `doc` against the (original, untransformed) `tree`.
  static Result<XmlStatistics> Collect(const XmlDocument& doc,
                                       const SchemaTree& tree);

  // Number of instances of the element with the given origin id.
  int64_t ElementCount(int origin_id) const;

  // Per-parent cardinality histogram of a repetition node (exact k ->
  // number of parents with exactly k occurrences; parents with zero are
  // included).
  const std::map<int64_t, int64_t>* CardinalityHist(int origin_id) const;

  // Value statistics of a simple-content element.
  const ColumnStats* ValueStats(int origin_id) const;

  // Number of instances of the context element satisfying the presence
  // constraint: at least one child named in `any` (if non-empty), no
  // child named in `forbidden`, and every child named in `require_all`
  // present (names not tracked as optionals are treated as always
  // present).
  int64_t CountMatchingPresence(int context_origin_id,
                                const std::vector<std::string>& any,
                                const std::vector<std::string>& forbidden,
                                const std::vector<std::string>& require_all =
                                    {}) const;

  // Derives full table statistics for one relation of `mapping` over the
  // (possibly transformed) `tree`.
  TableStats DeriveTableStats(const SchemaTree& tree,
                              const MappedRelation& relation) const;

  // Derives a descriptor catalog (tables only, no physical structures)
  // for an entire candidate mapping. This is what the design tool costs
  // hypothetical mappings against.
  CatalogDesc DeriveCatalog(const SchemaTree& tree,
                            const Mapping& mapping) const;

  int64_t total_elements() const { return total_elements_; }

 private:
  friend class StatsCollector;

  struct ContextPresence {
    // Optional child element names, in a fixed order (bit i of a combo).
    std::vector<std::string> optional_names;
    std::map<uint64_t, int64_t> combo_counts;
  };

  // Derived row count of one anchor tag in a candidate tree.
  int64_t AnchorRowCount(const SchemaNode* anchor) const;

  // Fraction of an element's instances surviving the presence constraints
  // of every enclosing union-distribution variant.
  double AncestorVariantSelectivity(const SchemaNode* node) const;

  std::map<int, int64_t> element_counts_;
  std::map<int, ColumnStats> value_stats_;
  std::map<int, std::map<int64_t, int64_t>> cardinality_hists_;
  std::map<int, ContextPresence> presence_;
  int64_t total_elements_ = 0;
};

}  // namespace xmlshred

#endif  // XMLSHRED_MAPPING_XML_STATS_H_
