#include "mapping/transforms.h"

#include <algorithm>
#include <map>
#include <set>

#include "common/logging.h"
#include "common/strings.h"

namespace xmlshred {

const char* TransformKindToString(TransformKind kind) {
  switch (kind) {
    case TransformKind::kOutline:
      return "outline";
    case TransformKind::kInline:
      return "inline";
    case TransformKind::kTypeSplit:
      return "type-split";
    case TransformKind::kTypeMerge:
      return "type-merge";
    case TransformKind::kUnionDistribute:
      return "union-distribute";
    case TransformKind::kUnionFactorize:
      return "union-factorize";
    case TransformKind::kRepetitionSplit:
      return "repetition-split";
    case TransformKind::kRepetitionMerge:
      return "repetition-merge";
  }
  return "?";
}

bool Transform::IsMergeType() const {
  return kind == TransformKind::kInline || kind == TransformKind::kTypeMerge ||
         kind == TransformKind::kUnionFactorize ||
         kind == TransformKind::kRepetitionMerge;
}

std::string Transform::ToString() const {
  std::string out = TransformKindToString(kind);
  if (target >= 0) out += StrFormat("(%d", target);
  if (target2 >= 0) out += StrFormat(",%d", target2);
  if (!option_targets.empty()) {
    out += " opts=";
    for (size_t i = 0; i < option_targets.size(); ++i) {
      if (i > 0) out += "+";
      out += std::to_string(option_targets[i]);
    }
  }
  if (split_count > 0) out += StrFormat(" k=%d", split_count);
  if (!annotation.empty()) out += " ann=" + annotation;
  if (target >= 0) out += ")";
  return out;
}

bool CanInline(const SchemaNode* node) {
  if (node->kind() != SchemaNodeKind::kTag || !node->is_annotated() ||
      node->parent() == nullptr) {
    return false;
  }
  for (const SchemaNode* p = node->parent();
       p != nullptr && p->kind() != SchemaNodeKind::kTag; p = p->parent()) {
    if (p->kind() == SchemaNodeKind::kRepetition || p->is_variant_choice()) {
      return false;
    }
  }
  return true;
}

bool CanOutline(const SchemaNode* node) {
  return node->kind() == SchemaNodeKind::kTag && !node->is_annotated() &&
         node->parent() != nullptr;
}

std::string MakeUniqueAnnotation(const SchemaTree& tree,
                                 const std::string& base) {
  std::set<std::string> taken;
  tree.Visit([&taken](const SchemaNode* node) {
    if (node->is_annotated()) taken.insert(node->annotation());
  });
  if (taken.count(base) == 0) return base;
  int suffix = 2;
  while (true) {
    std::string name = base + "_" + std::to_string(suffix++);
    if (taken.count(name) == 0) return name;
  }
}

void FullyInline(SchemaTree* tree) {
  // Repeat until fixpoint: inlining one tag can make an outer tag's
  // inline-ability irrelevant but never illegal, a single pass suffices;
  // keep the loop for safety with nested annotations.
  bool changed = true;
  while (changed) {
    changed = false;
    // Annotations shared by several tags are type-merged relations —
    // horizontal groupings vertical partitioning cannot express — so they
    // are not subsumed and survive full inlining.
    std::map<std::string, int> annotation_counts;
    tree->Visit([&annotation_counts](const SchemaNode* node) {
      if (node->is_annotated()) ++annotation_counts[node->annotation()];
    });
    tree->Visit([&](SchemaNode* node) {
      if (node != tree->root() && CanInline(node) &&
          annotation_counts[node->annotation()] < 2) {
        node->set_annotation("");
        changed = true;
      }
    });
  }
}

namespace {

// First-level element names inside `node`, not descending into tags.
void ElementNames(const SchemaNode* node, std::set<std::string>* out) {
  if (node->kind() == SchemaNodeKind::kTag) {
    out->insert(node->name());
    return;
  }
  for (const auto& child : node->children()) {
    ElementNames(child.get(), out);
  }
}

// Finds the node with origin id `origin` in the subtree.
SchemaNode* FindByOrigin(SchemaNode* node, int origin, SchemaNodeKind kind) {
  if (node->origin_id() == origin && node->kind() == kind) return node;
  for (const auto& child : node->children()) {
    SchemaNode* found = FindByOrigin(child.get(), origin, kind);
    if (found != nullptr) return found;
  }
  return nullptr;
}

Status SplitOneRepetition(SchemaTree* tree, SchemaNode* rep, int split_count);

Result<int> ApplyOutline(SchemaTree* tree, const Transform& t) {
  SchemaNode* node = tree->FindNode(t.target);
  if (node == nullptr) return NotFound("outline target");
  if (!CanOutline(node)) return FailedPrecondition("cannot outline");
  node->set_annotation(MakeUniqueAnnotation(*tree, node->name()));
  return node->id();
}

Result<int> ApplyInline(SchemaTree* tree, const Transform& t) {
  SchemaNode* node = tree->FindNode(t.target);
  if (node == nullptr) return NotFound("inline target");
  if (node == tree->root()) return FailedPrecondition("cannot inline root");
  if (!CanInline(node)) return FailedPrecondition("cannot inline");
  node->set_annotation("");
  return node->id();
}

Result<int> ApplyTypeSplit(SchemaTree* tree, const Transform& t) {
  std::vector<SchemaNode*> anchors;
  tree->Visit([&anchors, &t](SchemaNode* node) {
    if (node->kind() == SchemaNodeKind::kTag &&
        node->annotation() == t.annotation) {
      anchors.push_back(node);
    }
  });
  if (anchors.size() < 2) {
    return FailedPrecondition("annotation not shared: " + t.annotation);
  }
  // The first keeps the name; later anchors get fresh names derived from
  // their parent context for readability.
  for (size_t i = 1; i < anchors.size(); ++i) {
    SchemaNode* anchor = anchors[i];
    const SchemaNode* ctx = anchor->NearestAnnotatedAncestor();
    std::string base = ctx != nullptr
                           ? ctx->annotation() + "_" + anchor->name()
                           : anchor->name();
    anchor->set_annotation(MakeUniqueAnnotation(*tree, base));
  }
  return anchors[0]->id();
}

Result<int> ApplyTypeMerge(SchemaTree* tree, const Transform& t) {
  SchemaNode* a = tree->FindNode(t.target);
  SchemaNode* b = tree->FindNode(t.target2);
  if (a == nullptr || b == nullptr) return NotFound("type merge target");
  if (a->kind() != SchemaNodeKind::kTag || b->kind() != SchemaNodeKind::kTag ||
      a->type_name().empty() || a->type_name() != b->type_name()) {
    return FailedPrecondition("targets are not shared type");
  }
  if (a->annotation() == b->annotation() && a->is_annotated()) {
    return FailedPrecondition("already merged");
  }
  // Deep merge (§3.3/§4.3): an inlined occurrence is first outlined — a
  // subsumed transformation combined with the non-subsumed merge.
  std::string name = a->is_annotated() ? a->annotation()
                     : b->is_annotated()
                         ? b->annotation()
                         : MakeUniqueAnnotation(*tree, a->name());
  a->set_annotation(name);
  b->set_annotation(name);
  return a->id();
}

// Shared by explicit and implicit union distribution: replaces context tag
// `context` with a variant choice built by `make_variants`.
Result<int> ReplaceWithVariantChoice(
    SchemaTree* tree, SchemaNode* context,
    std::vector<std::unique_ptr<SchemaNode>> variants) {
  SchemaNode* parent = context->parent();
  XS_CHECK(parent != nullptr);
  int pos = parent->ChildIndex(context);
  XS_CHECK_GE(pos, 0);
  std::unique_ptr<SchemaNode> original =
      parent->RemoveChild(static_cast<size_t>(pos));
  std::unique_ptr<SchemaNode> choice =
      tree->NewNode(SchemaNodeKind::kChoice);
  choice->set_is_variant_choice(true);
  choice->set_origin_id(original->origin_id());
  choice->set_undo(std::move(original));
  for (auto& variant : variants) choice->AddChild(std::move(variant));
  SchemaNode* inserted =
      parent->InsertChild(static_cast<size_t>(pos), std::move(choice));
  return inserted->id();
}

Result<int> ApplyUnionDistributeExplicit(SchemaTree* tree,
                                         const Transform& t) {
  SchemaNode* choice = tree->FindNode(t.target);
  if (choice == nullptr) return NotFound("union distribute target");
  if (choice->kind() != SchemaNodeKind::kChoice || choice->is_variant_choice()) {
    return FailedPrecondition("target is not a plain choice");
  }
  SchemaNode* context = choice->NearestAnnotatedAncestor();
  if (context == nullptr || context->parent() == nullptr) {
    return FailedPrecondition("choice has no distributable context");
  }
  if (!context->presence_any().empty() ||
      !context->presence_forbidden().empty()) {
    // The context is itself a distribution variant; nested variant
    // choices are not routable.
    return FailedPrecondition("context is already distributed");
  }
  // Per-alternative first-level element names for routing constraints.
  std::vector<std::set<std::string>> alt_names(choice->num_children());
  for (size_t i = 0; i < choice->num_children(); ++i) {
    ElementNames(choice->child(i), &alt_names[i]);
  }

  std::vector<std::unique_ptr<SchemaNode>> variants;
  for (size_t i = 0; i < choice->num_children(); ++i) {
    std::unique_ptr<SchemaNode> variant =
        tree->CopySubtreeFreshIds(context);
    SchemaNode* inner_choice =
        FindByOrigin(variant.get(), choice->origin_id(),
                     SchemaNodeKind::kChoice);
    if (inner_choice == nullptr) return Internal("lost choice in variant");
    SchemaNode* choice_parent = inner_choice->parent();
    int choice_pos = choice_parent->ChildIndex(inner_choice);
    std::unique_ptr<SchemaNode> detached =
        choice_parent->RemoveChild(static_cast<size_t>(choice_pos));
    std::unique_ptr<SchemaNode> alternative =
        detached->RemoveChild(i);  // i-th alternative survives
    choice_parent->InsertChild(static_cast<size_t>(choice_pos),
                               std::move(alternative));

    std::vector<std::string> any(alt_names[i].begin(), alt_names[i].end());
    std::vector<std::string> forbidden;
    for (size_t j = 0; j < alt_names.size(); ++j) {
      if (j == i) continue;
      for (const std::string& name : alt_names[j]) {
        if (alt_names[i].count(name) == 0) forbidden.push_back(name);
      }
    }
    variant->set_presence(std::move(any), std::move(forbidden));
    std::string suffix = alt_names[i].empty() ? std::to_string(i)
                                              : *alt_names[i].begin();
    variant->set_annotation(MakeUniqueAnnotation(
        *tree, context->annotation() + "_" + suffix));
    variants.push_back(std::move(variant));
  }
  return ReplaceWithVariantChoice(tree, context, std::move(variants));
}

// Removes the subtree of the option with origin id `origin` from
// `variant`. Returns false if not found.
bool RemoveOptionByOrigin(SchemaNode* node, int origin) {
  for (size_t i = 0; i < node->num_children(); ++i) {
    SchemaNode* child = node->child(i);
    if (child->kind() == SchemaNodeKind::kOption &&
        child->origin_id() == origin) {
      node->RemoveChild(i);
      return true;
    }
    if (child->kind() != SchemaNodeKind::kTag &&
        RemoveOptionByOrigin(child, origin)) {
      return true;
    }
  }
  return false;
}

Result<int> ApplyUnionDistributeImplicit(SchemaTree* tree,
                                         const Transform& t) {
  // Resolve the option nodes and their shared context.
  std::vector<SchemaNode*> options;
  SchemaNode* context = nullptr;
  for (int id : t.option_targets) {
    SchemaNode* option = tree->FindNode(id);
    if (option == nullptr) return NotFound("implicit union target");
    if (option->kind() != SchemaNodeKind::kOption) {
      return FailedPrecondition("target is not an option");
    }
    SchemaNode* ctx = option->NearestAnnotatedAncestor();
    if (ctx == nullptr || ctx->parent() == nullptr) {
      return FailedPrecondition("option has no distributable context");
    }
    if (!ctx->presence_any().empty() || !ctx->presence_forbidden().empty()) {
      return FailedPrecondition("context is already distributed");
    }
    if (context == nullptr) {
      context = ctx;
    } else if (context != ctx) {
      return FailedPrecondition("options span different contexts");
    }
    options.push_back(option);
  }
  if (options.empty()) return FailedPrecondition("no option targets");

  std::set<std::string> names;
  std::vector<int> origins;
  for (const SchemaNode* option : options) {
    ElementNames(option, &names);
    origins.push_back(option->origin_id());
  }
  std::vector<std::string> name_list(names.begin(), names.end());

  // Variant 1: instances having at least one of the optional elements.
  std::unique_ptr<SchemaNode> has = tree->CopySubtreeFreshIds(context);
  has->set_presence(name_list, {});
  has->set_annotation(MakeUniqueAnnotation(
      *tree, context->annotation() + "_with_" + name_list[0]));

  // Variant 2: instances having none of them; the optional subtrees are
  // dropped so their columns disappear (the paper's "drop columns with all
  // null values").
  std::unique_ptr<SchemaNode> none = tree->CopySubtreeFreshIds(context);
  for (int origin : origins) {
    RemoveOptionByOrigin(none.get(), origin);
  }
  none->set_presence({}, name_list);
  none->set_annotation(MakeUniqueAnnotation(
      *tree, context->annotation() + "_no_" + name_list[0]));

  std::vector<std::unique_ptr<SchemaNode>> variants;
  variants.push_back(std::move(has));
  variants.push_back(std::move(none));
  return ReplaceWithVariantChoice(tree, context, std::move(variants));
}

Result<int> ApplyUnionFactorize(SchemaTree* tree, const Transform& t) {
  SchemaNode* choice = tree->FindNode(t.target);
  if (choice == nullptr) return NotFound("union factorize target");
  if (!choice->is_variant_choice() || choice->undo() == nullptr) {
    return FailedPrecondition("target is not a factorizable variant choice");
  }
  SchemaNode* parent = choice->parent();
  if (parent == nullptr) return FailedPrecondition("variant choice is root");
  // Repetition splits applied inside the variants after distribution must
  // survive factorization: collect them (by origin) so they can be
  // re-applied to the restored original subtree.
  std::map<int, int> split_by_origin;  // repetition origin -> k
  for (const auto& variant : choice->children()) {
    std::vector<SchemaNode*> stack = {variant.get()};
    while (!stack.empty()) {
      SchemaNode* node = stack.back();
      stack.pop_back();
      if (node->kind() == SchemaNodeKind::kRepetition &&
          node->rep_overflow_from() > 0) {
        split_by_origin[node->origin_id()] = node->rep_overflow_from();
      }
      for (const auto& child : node->children()) stack.push_back(child.get());
    }
  }
  int pos = parent->ChildIndex(choice);
  std::unique_ptr<SchemaNode> detached =
      parent->RemoveChild(static_cast<size_t>(pos));
  std::unique_ptr<SchemaNode> original = detached->TakeUndo();
  SchemaNode* restored = parent->InsertChild(static_cast<size_t>(pos),
                                             std::move(original));
  for (const auto& [origin, k] : split_by_origin) {
    std::vector<SchemaNode*> reps;
    std::vector<SchemaNode*> stack = {restored};
    while (!stack.empty()) {
      SchemaNode* node = stack.back();
      stack.pop_back();
      if (node->kind() == SchemaNodeKind::kRepetition &&
          node->origin_id() == origin && node->rep_overflow_from() == 0) {
        reps.push_back(node);
      }
      for (const auto& child : node->children()) stack.push_back(child.get());
    }
    for (SchemaNode* rep : reps) {
      XS_RETURN_IF_ERROR(SplitOneRepetition(tree, rep, k));
    }
  }
  return restored->id();
}

// Resolves the target of a repetition transformation: by exact node id
// first, then by origin id — union distribution copies a context into
// variants with fresh ids, and a repetition split/merge should apply to
// the repetition inside *every* variant (the transformations compose).
std::vector<SchemaNode*> ResolveRepetitions(SchemaTree* tree, int target,
                                            bool want_split) {
  std::vector<SchemaNode*> out;
  SchemaNode* exact = tree->FindNode(target);
  auto eligible = [want_split](SchemaNode* node) {
    if (node->kind() != SchemaNodeKind::kRepetition) return false;
    return want_split ? node->rep_overflow_from() == 0
                      : node->rep_overflow_from() > 0;
  };
  if (exact != nullptr && eligible(exact)) {
    out.push_back(exact);
    return out;
  }
  tree->Visit([&](SchemaNode* node) {
    if (node->origin_id() == target && eligible(node)) out.push_back(node);
  });
  return out;
}

Status SplitOneRepetition(SchemaTree* tree, SchemaNode* rep,
                          int split_count) {
  SchemaNode* repeated = rep->child(0);
  if (repeated->kind() != SchemaNodeKind::kTag ||
      repeated->num_children() != 1 ||
      repeated->child(0)->kind() != SchemaNodeKind::kSimpleType) {
    // The paper limits repetition split to leaf elements (Section 2.1).
    return FailedPrecondition("repetition split requires a leaf element");
  }
  if (rep->NearestAnnotatedAncestor() == nullptr || rep->parent() == nullptr) {
    return FailedPrecondition("repetition has no parent context");
  }
  SchemaNode* parent = rep->parent();
  int pos = parent->ChildIndex(rep);
  XS_CHECK_GE(pos, 0);
  for (int i = 1; i <= split_count; ++i) {
    std::unique_ptr<SchemaNode> occurrence =
        tree->CopySubtreeFreshIds(repeated);
    occurrence->set_annotation("");
    occurrence->set_rep_split_index(i);
    std::unique_ptr<SchemaNode> option =
        tree->NewNode(SchemaNodeKind::kOption);
    option->set_origin_id(rep->origin_id());
    option->AddChild(std::move(occurrence));
    parent->InsertChild(static_cast<size_t>(pos + i - 1), std::move(option));
  }
  rep->set_rep_overflow_from(split_count);
  return Status::OK();
}

Result<int> ApplyRepetitionSplit(SchemaTree* tree, const Transform& t) {
  if (t.split_count < 1) return InvalidArgument("split_count must be >= 1");
  std::vector<SchemaNode*> reps =
      ResolveRepetitions(tree, t.target, /*want_split=*/true);
  if (reps.empty()) return NotFound("repetition split target");
  for (SchemaNode* rep : reps) {
    XS_RETURN_IF_ERROR(SplitOneRepetition(tree, rep, t.split_count));
  }
  return reps[0]->id();
}

Result<int> ApplyRepetitionMerge(SchemaTree* tree, const Transform& t) {
  std::vector<SchemaNode*> reps =
      ResolveRepetitions(tree, t.target, /*want_split=*/false);
  if (reps.empty()) return NotFound("repetition merge target");
  for (SchemaNode* rep : reps) {
    SchemaNode* parent = rep->parent();
    XS_CHECK(parent != nullptr);
    // Remove the inlined occurrence options that share the repetition's
    // origin.
    for (size_t i = parent->num_children(); i-- > 0;) {
      SchemaNode* child = parent->child(i);
      if (child->kind() == SchemaNodeKind::kOption &&
          child->origin_id() == rep->origin_id() &&
          child->num_children() == 1 &&
          child->child(0)->rep_split_index() > 0) {
        parent->RemoveChild(i);
      }
    }
    rep->set_rep_overflow_from(0);
  }
  return reps[0]->id();
}

}  // namespace

Result<int> ApplyTransform(SchemaTree* tree, const Transform& transform) {
  switch (transform.kind) {
    case TransformKind::kOutline:
      return ApplyOutline(tree, transform);
    case TransformKind::kInline:
      return ApplyInline(tree, transform);
    case TransformKind::kTypeSplit:
      return ApplyTypeSplit(tree, transform);
    case TransformKind::kTypeMerge:
      return ApplyTypeMerge(tree, transform);
    case TransformKind::kUnionDistribute:
      return transform.option_targets.empty()
                 ? ApplyUnionDistributeExplicit(tree, transform)
                 : ApplyUnionDistributeImplicit(tree, transform);
    case TransformKind::kUnionFactorize:
      return ApplyUnionFactorize(tree, transform);
    case TransformKind::kRepetitionSplit:
      return ApplyRepetitionSplit(tree, transform);
    case TransformKind::kRepetitionMerge:
      return ApplyRepetitionMerge(tree, transform);
  }
  return Internal("unknown transform kind");
}

std::vector<Transform> EnumerateTransforms(SchemaTree& tree,
                                           int default_split_count) {
  std::vector<Transform> out;
  std::map<std::string, std::vector<SchemaNode*>> by_annotation;
  std::map<std::string, std::vector<SchemaNode*>> by_type;
  tree.Visit([&](SchemaNode* node) {
    switch (node->kind()) {
      case SchemaNodeKind::kTag:
        if (CanOutline(node)) {
          Transform t;
          t.kind = TransformKind::kOutline;
          t.target = node->id();
          out.push_back(std::move(t));
        }
        if (CanInline(node)) {
          Transform t;
          t.kind = TransformKind::kInline;
          t.target = node->id();
          out.push_back(std::move(t));
        }
        if (node->is_annotated()) {
          by_annotation[node->annotation()].push_back(node);
        }
        if (!node->type_name().empty()) {
          by_type[node->type_name()].push_back(node);
        }
        break;
      case SchemaNodeKind::kChoice:
        if (node->is_variant_choice()) {
          if (node->undo() != nullptr) {
            Transform t;
            t.kind = TransformKind::kUnionFactorize;
            t.target = node->id();
            out.push_back(std::move(t));
          }
        } else {
          SchemaNode* ctx = node->NearestAnnotatedAncestor();
          if (ctx != nullptr && ctx->presence_any().empty() &&
              ctx->presence_forbidden().empty()) {
            Transform t;
            t.kind = TransformKind::kUnionDistribute;
            t.target = node->id();
            out.push_back(std::move(t));
          }
        }
        break;
      case SchemaNodeKind::kOption: {
        SchemaNode* ctx = node->NearestAnnotatedAncestor();
        if (ctx != nullptr && ctx->presence_any().empty() &&
            ctx->presence_forbidden().empty() &&
            node->rep_split_index() == 0 && node->num_children() == 1 &&
            node->child(0)->rep_split_index() == 0) {
          Transform t;
          t.kind = TransformKind::kUnionDistribute;
          t.target = node->id();
          t.option_targets = {node->id()};
          out.push_back(std::move(t));
        }
        break;
      }
      case SchemaNodeKind::kRepetition: {
        SchemaNode* repeated = node->child(0);
        bool leaf = repeated->kind() == SchemaNodeKind::kTag &&
                    repeated->num_children() == 1 &&
                    repeated->child(0)->kind() == SchemaNodeKind::kSimpleType;
        if (node->rep_overflow_from() > 0) {
          Transform t;
          t.kind = TransformKind::kRepetitionMerge;
          t.target = node->id();
          out.push_back(std::move(t));
        } else if (leaf && node->NearestAnnotatedAncestor() != nullptr) {
          Transform t;
          t.kind = TransformKind::kRepetitionSplit;
          t.target = node->id();
          t.split_count = default_split_count;
          out.push_back(std::move(t));
        }
        break;
      }
      default:
        break;
    }
  });
  for (const auto& [annotation, anchors] : by_annotation) {
    if (anchors.size() >= 2) {
      Transform t;
      t.kind = TransformKind::kTypeSplit;
      t.annotation = annotation;
      out.push_back(std::move(t));
    }
  }
  for (const auto& [type_name, tags] : by_type) {
    for (size_t i = 0; i < tags.size(); ++i) {
      for (size_t j = i + 1; j < tags.size(); ++j) {
        if (tags[i]->annotation() != tags[j]->annotation() ||
            !tags[i]->is_annotated()) {
          Transform t;
          t.kind = TransformKind::kTypeMerge;
          t.target = tags[i]->id();
          t.target2 = tags[j]->id();
          out.push_back(std::move(t));
        }
      }
    }
  }
  return out;
}

}  // namespace xmlshred
