// Cell primitives of the columnar storage layer, split out of rel/table.h
// so block encoding (rel/column_block.h) can consume them without a
// header cycle: every cell is a one-byte type tag plus a 64-bit data slot
// holding int64 bits, double bits, or a 32-bit dictionary code.

#ifndef XMLSHRED_REL_TABLE_TYPES_H_
#define XMLSHRED_REL_TABLE_TYPES_H_

#include <cstdint>
#include <cstring>

namespace xmlshred {

// Per-cell type tag of columnar storage.
enum class CellTag : uint8_t {
  kNull = 0,
  kInt = 1,
  kReal = 2,
  kStr = 3,
};

// A decoded cell: tag plus raw 64-bit payload (int64 bits, double bits,
// or dictionary code). The executor's internal batch representation.
struct Cell {
  uint8_t tag = 0;
  uint64_t bits = 0;
};

inline double CellBitsToDouble(uint64_t bits) {
  double d;
  std::memcpy(&d, &bits, sizeof(d));
  return d;
}

inline uint64_t DoubleToCellBits(double d) {
  uint64_t bits;
  std::memcpy(&bits, &d, sizeof(bits));
  return bits;
}

// Numeric view of an int/real cell (ints promote to double, mirroring
// Value::AsNumeric).
inline double CellAsNumeric(const Cell& c) {
  return c.tag == static_cast<uint8_t>(CellTag::kInt)
             ? static_cast<double>(static_cast<int64_t>(c.bits))
             : CellBitsToDouble(c.bits);
}

}  // namespace xmlshred

#endif  // XMLSHRED_REL_TABLE_TYPES_H_
