#include "rel/stats.h"

#include <algorithm>
#include <map>
#include <unordered_map>

#include "common/logging.h"

namespace xmlshred {

double ColumnStats::NotNullSelectivity() const {
  int64_t total = row_count();
  if (total == 0) return 0.0;
  return static_cast<double>(non_null_count) / static_cast<double>(total);
}

double ColumnStats::EqSelectivity(const Value& v) const {
  int64_t total = row_count();
  if (total == 0 || v.is_null()) return 0.0;
  // Exact answer from MCVs when tracked.
  for (const auto& [mcv, count] : mcvs) {
    if (mcv.TotalEquals(v)) {
      return static_cast<double>(count) / static_cast<double>(total);
    }
  }
  if (distinct_estimate <= 0) return 0.0;
  // Out-of-range probes match nothing.
  if (!min.is_null() && (v.TotalLess(min) || max.TotalLess(v))) return 0.0;
  double uniform =
      static_cast<double>(non_null_count) /
      (static_cast<double>(distinct_estimate) * static_cast<double>(total));
  return uniform;
}

double ColumnStats::RangeSelectivity(const std::string& op,
                                     const Value& v) const {
  int64_t total = row_count();
  if (total == 0 || v.is_null()) return 0.0;
  if (histogram.empty()) {
    // No histogram (e.g. string column): fall back to a fixed guess, the
    // classic 1/3 heuristic.
    return NotNullSelectivity() / 3.0;
  }
  // Count values <= v from the equi-depth histogram, interpolating within
  // the straddling bucket.
  double le = 0;
  Value lower = min;
  for (const auto& bucket : histogram) {
    if (!v.TotalLess(bucket.upper)) {
      // Entire bucket <= v.
      le += static_cast<double>(bucket.count);
    } else {
      // v falls inside this bucket: linear interpolation on numerics.
      if (!lower.is_null() && !bucket.upper.is_null() && !v.is_string() &&
          !bucket.upper.is_string()) {
        double lo = lower.AsNumeric();
        double hi = bucket.upper.AsNumeric();
        double frac = hi > lo ? (v.AsNumeric() - lo) / (hi - lo) : 0.0;
        frac = std::clamp(frac, 0.0, 1.0);
        le += frac * static_cast<double>(bucket.count);
      }
      break;
    }
    lower = bucket.upper;
  }
  double eq = EqSelectivity(v) * static_cast<double>(total);
  double lt = std::max(0.0, le - eq);
  double nn = static_cast<double>(non_null_count);
  double result = 0;
  if (op == "<") {
    result = lt;
  } else if (op == "<=") {
    result = le;
  } else if (op == ">") {
    result = nn - le;
  } else if (op == ">=") {
    result = nn - lt;
  } else {
    XS_CHECK(false);
  }
  return std::clamp(result / static_cast<double>(total), 0.0, 1.0);
}

double TableStats::AvgRowBytes() const {
  double width = 0;
  for (const ColumnStats& c : columns) width += c.avg_bytes;
  return width < 8.0 ? 8.0 : width;
}

namespace {

// Shared core: column values in row order, presented as pointers so both
// the row-store and columnar entry points feed the identical computation.
ColumnStats BuildColumnStatsFromPointers(
    const std::vector<const Value*>& values) {
  ColumnStats stats;
  std::vector<const Value*> non_null;
  non_null.reserve(values.size());
  double bytes = 0;
  for (const Value* vp : values) {
    const Value& v = *vp;
    bytes += static_cast<double>(v.ByteSize());
    if (v.is_null()) {
      ++stats.null_count;
    } else {
      ++stats.non_null_count;
      non_null.push_back(&v);
    }
  }
  stats.avg_bytes =
      values.empty() ? 8.0 : bytes / static_cast<double>(values.size());
  if (non_null.empty()) return stats;

  std::sort(non_null.begin(), non_null.end(),
            [](const Value* a, const Value* b) { return a->TotalLess(*b); });
  stats.min = *non_null.front();
  stats.max = *non_null.back();

  // Distinct count (exact, since values are sorted).
  int64_t distinct = 1;
  for (size_t i = 1; i < non_null.size(); ++i) {
    if (non_null[i - 1]->TotalLess(*non_null[i])) ++distinct;
  }
  stats.distinct_estimate = distinct;

  bool numeric = !stats.min.is_string() && !stats.max.is_string();
  if (numeric) {
    // Equi-depth histogram.
    int buckets = std::min<int64_t>(kHistogramBuckets,
                                    static_cast<int64_t>(non_null.size()));
    int64_t n = static_cast<int64_t>(non_null.size());
    int64_t assigned = 0;
    for (int b = 0; b < buckets; ++b) {
      int64_t take = n / buckets + (b < n % buckets ? 1 : 0);
      int64_t end = assigned + take;
      HistogramBucket bucket;
      bucket.upper = *non_null[static_cast<size_t>(end - 1)];
      bucket.count = take;
      // Merge buckets sharing an upper bound (heavy duplicates).
      if (!stats.histogram.empty() &&
          stats.histogram.back().upper.TotalEquals(bucket.upper)) {
        stats.histogram.back().count += bucket.count;
      } else {
        stats.histogram.push_back(std::move(bucket));
      }
      assigned = end;
    }
  }

  // Most-common values: exact counts when the number of distinct values is
  // small; otherwise track the top kMaxMcvs.
  std::vector<std::pair<Value, int64_t>> counts;
  size_t i = 0;
  while (i < non_null.size()) {
    size_t j = i + 1;
    while (j < non_null.size() && non_null[i]->TotalEquals(*non_null[j])) ++j;
    counts.emplace_back(*non_null[i], static_cast<int64_t>(j - i));
    i = j;
  }
  if (counts.size() <= static_cast<size_t>(kMaxMcvs)) {
    stats.mcvs = std::move(counts);
  } else {
    std::partial_sort(counts.begin(), counts.begin() + kMaxMcvs, counts.end(),
                      [](const auto& a, const auto& b) {
                        return a.second > b.second;
                      });
    counts.resize(kMaxMcvs);
    stats.mcvs = std::move(counts);
  }
  return stats;
}

ColumnStats BuildColumnStats(const std::vector<Row>& rows, int col) {
  std::vector<const Value*> values;
  values.reserve(rows.size());
  for (const Row& row : rows) {
    values.push_back(&row[static_cast<size_t>(col)]);
  }
  return BuildColumnStatsFromPointers(values);
}

}  // namespace

ColumnStats BuildColumnStatsFromValues(const std::vector<Value>& values) {
  std::vector<const Value*> pointers;
  pointers.reserve(values.size());
  for (const Value& v : values) pointers.push_back(&v);
  return BuildColumnStatsFromPointers(pointers);
}

ColumnStats ScaleColumnStats(const ColumnStats& stats, double factor) {
  ColumnStats out = stats;
  auto scale = [factor](int64_t v) {
    return static_cast<int64_t>(static_cast<double>(v) * factor + 0.5);
  };
  out.non_null_count = scale(stats.non_null_count);
  out.null_count = scale(stats.null_count);
  out.distinct_estimate =
      std::min(stats.distinct_estimate,
               std::max<int64_t>(out.non_null_count > 0 ? 1 : 0,
                                 scale(stats.distinct_estimate)));
  // The value range is kept; each bucket and MCV thins/grows uniformly.
  for (HistogramBucket& b : out.histogram) b.count = scale(b.count);
  for (auto& [v, c] : out.mcvs) c = scale(c);
  return out;
}

ColumnStats MergeColumnStats(const ColumnStats& a, const ColumnStats& b) {
  if (a.row_count() == 0) return b;
  if (b.row_count() == 0) return a;
  ColumnStats out;
  out.non_null_count = a.non_null_count + b.non_null_count;
  out.null_count = a.null_count + b.null_count;
  out.distinct_estimate =
      std::min(out.non_null_count, a.distinct_estimate + b.distinct_estimate);
  double wa = static_cast<double>(a.row_count());
  double wb = static_cast<double>(b.row_count());
  out.avg_bytes = (a.avg_bytes * wa + b.avg_bytes * wb) / (wa + wb);
  out.min = a.min;
  if (out.min.is_null() || (!b.min.is_null() && b.min.TotalLess(out.min))) {
    out.min = b.min;
  }
  out.max = a.max;
  if (out.max.is_null() || (!b.max.is_null() && out.max.TotalLess(b.max))) {
    out.max = b.max;
  }
  // Merge histograms by interleaving bucket boundaries; counts add.
  std::vector<HistogramBucket> merged = a.histogram;
  merged.insert(merged.end(), b.histogram.begin(), b.histogram.end());
  std::sort(merged.begin(), merged.end(),
            [](const HistogramBucket& x, const HistogramBucket& y) {
              return x.upper.TotalLess(y.upper);
            });
  for (const HistogramBucket& bucket : merged) {
    if (!out.histogram.empty() &&
        out.histogram.back().upper.TotalEquals(bucket.upper)) {
      out.histogram.back().count += bucket.count;
    } else {
      out.histogram.push_back(bucket);
    }
  }
  // Merge MCVs; cap at kMaxMcvs by frequency.
  std::vector<std::pair<Value, int64_t>> mcvs = a.mcvs;
  for (const auto& [v, c] : b.mcvs) {
    bool found = false;
    for (auto& [mv, mc] : mcvs) {
      if (mv.TotalEquals(v)) {
        mc += c;
        found = true;
        break;
      }
    }
    if (!found) mcvs.emplace_back(v, c);
  }
  if (mcvs.size() > static_cast<size_t>(kMaxMcvs)) {
    std::partial_sort(
        mcvs.begin(), mcvs.begin() + kMaxMcvs, mcvs.end(),
        [](const auto& x, const auto& y) { return x.second > y.second; });
    mcvs.resize(kMaxMcvs);
  }
  out.mcvs = std::move(mcvs);
  return out;
}

TableStats BuildTableStats(const std::vector<Row>& rows, int num_columns) {
  TableStats stats;
  stats.row_count = static_cast<int64_t>(rows.size());
  stats.columns.reserve(static_cast<size_t>(num_columns));
  for (int c = 0; c < num_columns; ++c) {
    stats.columns.push_back(BuildColumnStats(rows, c));
  }
  return stats;
}

}  // namespace xmlshred
