#include "rel/index.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/strings.h"

namespace xmlshred {

bool IndexDef::Covers(const std::vector<int>& needed) const {
  for (int col : needed) {
    bool found = std::find(key_columns.begin(), key_columns.end(), col) !=
                     key_columns.end() ||
                 std::find(included_columns.begin(), included_columns.end(),
                           col) != included_columns.end();
    if (!found) return false;
  }
  return true;
}

std::string IndexDef::ToString(const TableSchema& schema) const {
  std::string out = "INDEX " + name + " ON " + table + "(";
  for (size_t i = 0; i < key_columns.size(); ++i) {
    if (i > 0) out += ", ";
    out += schema.columns[static_cast<size_t>(key_columns[i])].name;
  }
  out += ")";
  if (!included_columns.empty()) {
    out += " INCLUDE(";
    for (size_t i = 0; i < included_columns.size(); ++i) {
      if (i > 0) out += ", ";
      out += schema.columns[static_cast<size_t>(included_columns[i])].name;
    }
    out += ")";
  }
  return out;
}

BTreeIndex::BTreeIndex(IndexDef def, const Table& table)
    : def_(std::move(def)) {
  const std::vector<Row>& rows = table.rows();
  entries_.reserve(rows.size());
  double bytes = 0;
  for (size_t rid = 0; rid < rows.size(); ++rid) {
    Entry e;
    e.key.reserve(def_.key_columns.size() + def_.included_columns.size());
    for (int c : def_.key_columns) {
      e.key.push_back(rows[rid][static_cast<size_t>(c)]);
    }
    for (int c : def_.included_columns) {
      e.key.push_back(rows[rid][static_cast<size_t>(c)]);
    }
    e.row_id = static_cast<int64_t>(rid);
    for (const Value& v : e.key) bytes += static_cast<double>(v.ByteSize());
    bytes += 8;  // row id
    entries_.push_back(std::move(e));
  }
  size_t nkeys = def_.key_columns.size();
  std::sort(entries_.begin(), entries_.end(),
            [nkeys](const Entry& a, const Entry& b) {
              for (size_t i = 0; i < nkeys; ++i) {
                if (a.key[i].TotalLess(b.key[i])) return true;
                if (b.key[i].TotalLess(a.key[i])) return false;
              }
              return a.row_id < b.row_id;
            });
  entry_bytes_ = entries_.empty()
                     ? 16.0
                     : bytes / static_cast<double>(entries_.size());
}

namespace {

// Compares the first `n` key values of an entry against `key_prefix`.
int ComparePrefix(const BTreeIndex::Entry& e, const Row& key_prefix) {
  for (size_t i = 0; i < key_prefix.size(); ++i) {
    if (e.key[i].TotalLess(key_prefix[i])) return -1;
    if (key_prefix[i].TotalLess(e.key[i])) return 1;
  }
  return 0;
}

}  // namespace

std::vector<int64_t> BTreeIndex::EqualLookup(const Row& key_prefix) const {
  XS_CHECK_LE(key_prefix.size(), def_.key_columns.size());
  auto lo = std::lower_bound(
      entries_.begin(), entries_.end(), key_prefix,
      [](const Entry& e, const Row& k) { return ComparePrefix(e, k) < 0; });
  std::vector<int64_t> out;
  for (auto it = lo; it != entries_.end() && ComparePrefix(*it, key_prefix) == 0;
       ++it) {
    out.push_back(it->row_id);
  }
  return out;
}

std::vector<int64_t> BTreeIndex::RangeLookup(const Value& lo, bool lo_strict,
                                             const Value& hi,
                                             bool hi_strict) const {
  std::vector<int64_t> out;
  for (const Entry& e : entries_) {
    const Value& k = e.key[0];
    if (k.is_null()) continue;
    if (!lo.is_null()) {
      if (k.TotalLess(lo)) continue;
      if (lo_strict && k.TotalEquals(lo)) continue;
    }
    if (!hi.is_null()) {
      if (hi.TotalLess(k)) break;
      if (hi_strict && k.TotalEquals(hi)) continue;
    }
    out.push_back(e.row_id);
  }
  return out;
}

int64_t IndexProbePagesFor(int64_t index_pages, double entry_bytes,
                           int64_t matches) {
  // One uncached page for the descent — root and internal nodes are hot
  // in the buffer pool for any repeatedly probed index — plus the spanned
  // leaves.
  (void)index_pages;
  int64_t leaf_span = PagesFor(matches, entry_bytes);
  return 1 + leaf_span;
}

int64_t BTreeIndex::ProbePages(int64_t matches) const {
  return IndexProbePagesFor(NumPages(), entry_bytes_, matches);
}

}  // namespace xmlshred
