#include "rel/index.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/logging.h"
#include "common/strings.h"
#include "common/thread_pool.h"
#include "rel/column_reader.h"

namespace xmlshred {

uint64_t EncodeOrderedDouble(double d) {
  if (d == 0.0) d = 0.0;  // collapse -0.0 onto +0.0 (they compare equal)
  uint64_t bits = DoubleToCellBits(d);
  return (bits >> 63) != 0 ? ~bits : bits | (1ull << 63);
}

SortKey EncodeCellKey(const Cell& cell, const StringDictionary& dict) {
  switch (static_cast<CellTag>(cell.tag)) {
    case CellTag::kNull:
      return SortKey{0, 0};
    case CellTag::kInt:
      return SortKey{1, EncodeOrderedDouble(static_cast<double>(
                             static_cast<int64_t>(cell.bits)))};
    case CellTag::kReal:
      return SortKey{1, EncodeOrderedDouble(CellBitsToDouble(cell.bits))};
    case CellTag::kStr:
      return SortKey{
          2, 2ull * dict.Rank(static_cast<uint32_t>(cell.bits)) + 1};
  }
  return SortKey{0, 0};
}

SortKey EncodeValueKey(const Value& v, const StringDictionary& dict) {
  if (v.is_null()) return SortKey{0, 0};
  if (v.is_string()) {
    uint32_t code = dict.Lookup(v.AsString());
    if (code != StringDictionary::kNotFound) {
      return SortKey{2, 2ull * dict.Rank(code) + 1};
    }
    // Absent literal: the even slot between neighbouring interned ranks —
    // ordered correctly against every entry, equal to none.
    return SortKey{2, 2ull * dict.CountLess(v.AsString())};
  }
  return SortKey{1, EncodeOrderedDouble(v.AsNumeric())};
}

bool IndexDef::Covers(const std::vector<int>& needed) const {
  for (int col : needed) {
    bool found = std::find(key_columns.begin(), key_columns.end(), col) !=
                     key_columns.end() ||
                 std::find(included_columns.begin(), included_columns.end(),
                           col) != included_columns.end();
    if (!found) return false;
  }
  return true;
}

std::string IndexDef::ToString(const TableSchema& schema) const {
  std::string out = "INDEX " + name + " ON " + table + "(";
  for (size_t i = 0; i < key_columns.size(); ++i) {
    if (i > 0) out += ", ";
    out += schema.columns[static_cast<size_t>(key_columns[i])].name;
  }
  out += ")";
  if (!included_columns.empty()) {
    out += " INCLUDE(";
    for (size_t i = 0; i < included_columns.size(); ++i) {
      if (i > 0) out += ", ";
      out += schema.columns[static_cast<size_t>(included_columns[i])].name;
    }
    out += ")";
  }
  return out;
}

BTreeIndex::BTreeIndex(IndexDef def, const Table& table, int num_threads)
    : def_(std::move(def)), dict_(table.shared_dictionary()) {
  size_t nkeys = def_.key_columns.size();
  width_ = static_cast<int>(nkeys + def_.included_columns.size());
  size_t n = static_cast<size_t>(table.row_count());

  // Encode all key columns up front; sort row ids by (keys, rid). The
  // encoded order is exactly TotalLess per key column, so the entry order
  // matches what per-Value comparisons would produce — without a single
  // string comparison.
  std::vector<SortKey> row_keys(n * nkeys);
  auto entry_less = [&row_keys, nkeys](int64_t a, int64_t b) {
    size_t ba = static_cast<size_t>(a) * nkeys;
    size_t bb = static_cast<size_t>(b) * nkeys;
    for (size_t k = 0; k < nkeys; ++k) {
      const SortKey& ka = row_keys[ba + k];
      const SortKey& kb = row_keys[bb + k];
      if (ka < kb) return true;
      if (kb < ka) return false;
    }
    return a < b;
  };
  auto encode_range = [&](size_t lo, size_t hi) {
    for (size_t k = 0; k < nkeys; ++k) {
      ColumnReader reader(table.column(def_.key_columns[k]),
                          DefaultStorageReadMode());
      for (size_t rid = lo; rid < hi; ++rid) {
        row_keys[rid * nkeys + k] = EncodeCellKey(reader.At(rid), *dict_);
      }
    }
  };

  int workers = num_threads;
  if (workers > 1 && static_cast<size_t>(workers) > n) {
    workers = static_cast<int>(n);
  }
  std::vector<int64_t> order;
  if (workers <= 1) {
    encode_range(0, n);
    order.resize(n);
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), entry_less);
  } else {
    // The dictionary rank table is built lazily on the first string-key
    // encode; force it once up front so workers read it lock-free.
    dict_->ranks();
    std::vector<size_t> bounds(static_cast<size_t>(workers) + 1);
    for (size_t w = 0; w <= static_cast<size_t>(workers); ++w) {
      bounds[w] = n * w / static_cast<size_t>(workers);
    }
    // Each worker encodes its contiguous row range (private ColumnReaders
    // — block decode scratch is per-reader) and sorts it into a run.
    std::vector<std::vector<int64_t>> runs(static_cast<size_t>(workers));
    ParallelFor(workers, workers, [&](int w) {
      size_t lo = bounds[static_cast<size_t>(w)];
      size_t hi = bounds[static_cast<size_t>(w) + 1];
      encode_range(lo, hi);
      std::vector<int64_t>& run = runs[static_cast<size_t>(w)];
      run.resize(hi - lo);
      std::iota(run.begin(), run.end(), static_cast<int64_t>(lo));
      std::sort(run.begin(), run.end(), entry_less);
    });
    // K-way merge of the sorted runs. entry_less is a strict total order
    // (rid tiebreak), so the merged sequence is the unique sorted
    // permutation — identical to one global sort.
    order.resize(n);
    std::vector<size_t> cursor(static_cast<size_t>(workers), 0);
    for (size_t out = 0; out < n; ++out) {
      int best = -1;
      for (int w = 0; w < workers; ++w) {
        const std::vector<int64_t>& run = runs[static_cast<size_t>(w)];
        size_t c = cursor[static_cast<size_t>(w)];
        if (c >= run.size()) continue;
        if (best < 0 ||
            entry_less(run[c], runs[static_cast<size_t>(best)]
                                   [cursor[static_cast<size_t>(best)]])) {
          best = w;
        }
      }
      order[out] = runs[static_cast<size_t>(best)]
                       [cursor[static_cast<size_t>(best)]++];
    }
  }

  // Gather entry cells (keys then included columns) in sorted order.
  size_t width = static_cast<size_t>(width_);
  tags_.resize(n * width);
  data_.resize(n * width);
  keys_.resize(n * nkeys);
  rids_ = std::move(order);
  auto gather_range = [&](size_t lo, size_t hi) -> int64_t {
    std::vector<ColumnReader> entry_cols;
    entry_cols.reserve(width);
    for (int c : def_.key_columns) {
      entry_cols.emplace_back(table.column(c), DefaultStorageReadMode());
    }
    for (int c : def_.included_columns) {
      entry_cols.emplace_back(table.column(c), DefaultStorageReadMode());
    }
    int64_t bytes = 0;
    for (size_t e = lo; e < hi; ++e) {
      size_t rid = static_cast<size_t>(rids_[e]);
      for (size_t p = 0; p < width; ++p) {
        Cell cell = entry_cols[p].At(rid);
        tags_[e * width + p] = cell.tag;
        data_[e * width + p] = cell.bits;
        switch (static_cast<CellTag>(cell.tag)) {
          case CellTag::kNull:
            bytes += 4;
            break;
          case CellTag::kInt:
          case CellTag::kReal:
            bytes += 8;
            break;
          case CellTag::kStr:
            bytes += static_cast<int64_t>(
                         dict_->str(static_cast<uint32_t>(cell.bits))
                             .size()) +
                     2;
            break;
        }
      }
      for (size_t k = 0; k < nkeys; ++k) {
        keys_[e * nkeys + k] = row_keys[rid * nkeys + k];
      }
      bytes += 8;  // row id
    }
    return bytes;
  };
  int64_t bytes = 0;
  if (workers <= 1) {
    bytes = gather_range(0, n);
  } else {
    std::vector<int64_t> worker_bytes(static_cast<size_t>(workers), 0);
    ParallelFor(workers, workers, [&](int w) {
      size_t lo = n * static_cast<size_t>(w) / static_cast<size_t>(workers);
      size_t hi =
          n * (static_cast<size_t>(w) + 1) / static_cast<size_t>(workers);
      worker_bytes[static_cast<size_t>(w)] = gather_range(lo, hi);
    });
    for (int64_t b : worker_bytes) bytes += b;
  }
  entry_bytes_ =
      n == 0 ? 16.0 : static_cast<double>(bytes) / static_cast<double>(n);
}

size_t BTreeIndex::LowerBound(const std::vector<SortKey>& prefix) const {
  size_t nkeys = def_.key_columns.size();
  XS_CHECK_LE(prefix.size(), nkeys);
  size_t lo = 0, hi = rids_.size();
  while (lo < hi) {
    size_t mid = lo + (hi - lo) / 2;
    bool less = false;
    for (size_t k = 0; k < prefix.size(); ++k) {
      const SortKey& ek = keys_[mid * nkeys + k];
      if (ek < prefix[k]) {
        less = true;
        break;
      }
      if (prefix[k] < ek) break;
    }
    if (less) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

bool BTreeIndex::MatchesPrefix(size_t entry,
                               const std::vector<SortKey>& prefix) const {
  size_t nkeys = def_.key_columns.size();
  for (size_t k = 0; k < prefix.size(); ++k) {
    if (!(keys_[entry * nkeys + k] == prefix[k])) return false;
  }
  return true;
}

Value BTreeIndex::EntryValue(size_t entry, int pos) const {
  Cell cell = entry_cell(entry, pos);
  switch (static_cast<CellTag>(cell.tag)) {
    case CellTag::kNull:
      return Value::Null();
    case CellTag::kInt:
      return Value::Int(static_cast<int64_t>(cell.bits));
    case CellTag::kReal:
      return Value::Real(CellBitsToDouble(cell.bits));
    case CellTag::kStr:
      return Value::Str(dict_->str(static_cast<uint32_t>(cell.bits)));
  }
  return Value::Null();
}

std::vector<int64_t> BTreeIndex::EqualLookup(const Row& key_prefix) const {
  XS_CHECK_LE(key_prefix.size(), def_.key_columns.size());
  std::vector<SortKey> prefix;
  prefix.reserve(key_prefix.size());
  for (const Value& v : key_prefix) {
    prefix.push_back(EncodeValueKey(v, *dict_));
  }
  std::vector<int64_t> out;
  for (size_t e = LowerBound(prefix);
       e < rids_.size() && MatchesPrefix(e, prefix); ++e) {
    out.push_back(rids_[e]);
  }
  return out;
}

std::vector<int64_t> BTreeIndex::RangeLookup(const Value& lo, bool lo_strict,
                                             const Value& hi,
                                             bool hi_strict) const {
  size_t nkeys = def_.key_columns.size();
  SortKey lo_key, hi_key;
  bool has_lo = !lo.is_null(), has_hi = !hi.is_null();
  if (has_lo) lo_key = EncodeValueKey(lo, *dict_);
  if (has_hi) hi_key = EncodeValueKey(hi, *dict_);
  std::vector<int64_t> out;
  for (size_t e = 0; e < rids_.size(); ++e) {
    const SortKey& k = keys_[e * nkeys];
    if (k.cls == 0) continue;  // NULL keys never match a range
    if (has_lo) {
      if (k < lo_key) continue;
      if (lo_strict && k == lo_key) continue;
    }
    if (has_hi) {
      if (hi_key < k) break;
      if (hi_strict && k == hi_key) continue;
    }
    out.push_back(rids_[e]);
  }
  return out;
}

int64_t IndexProbePagesFor(int64_t index_pages, double entry_bytes,
                           int64_t matches) {
  // One uncached page for the descent — root and internal nodes are hot
  // in the buffer pool for any repeatedly probed index — plus the spanned
  // leaves.
  (void)index_pages;
  int64_t leaf_span = PagesFor(matches, entry_bytes);
  return 1 + leaf_span;
}

int64_t BTreeIndex::ProbePages(int64_t matches) const {
  return IndexProbePagesFor(NumPages(), entry_bytes_, matches);
}

}  // namespace xmlshred
