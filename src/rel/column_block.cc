#include "rel/column_block.h"

#include <cmath>
#include <cstring>

#include "common/logging.h"

namespace xmlshred {

namespace {

constexpr uint8_t kTagNull = static_cast<uint8_t>(CellTag::kNull);
constexpr uint8_t kTagInt = static_cast<uint8_t>(CellTag::kInt);
constexpr uint8_t kTagReal = static_cast<uint8_t>(CellTag::kReal);
constexpr uint8_t kTagStr = static_cast<uint8_t>(CellTag::kStr);

void PutU16(std::vector<uint8_t>* out, uint16_t v) {
  out->push_back(static_cast<uint8_t>(v & 0xff));
  out->push_back(static_cast<uint8_t>(v >> 8));
}

void PutU32(std::vector<uint8_t>* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

void PutU64(std::vector<uint8_t>* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

uint16_t GetU16(const uint8_t* p) {
  return static_cast<uint16_t>(p[0] | (static_cast<uint16_t>(p[1]) << 8));
}

uint32_t GetU32(const uint8_t* p) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(p[i]) << (8 * i);
  return v;
}

uint64_t GetU64(const uint8_t* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(p[i]) << (8 * i);
  return v;
}

// Bits needed for the largest delta (0 deltas -> width 0).
int BitWidthFor(uint64_t max_delta) {
  int w = 0;
  while (max_delta != 0) {
    ++w;
    max_delta >>= 1;
  }
  return w;
}

// LSB-first bit packing: delta i occupies bits [i*width, (i+1)*width).
void PackBits(std::vector<uint8_t>* out, const uint64_t* deltas, size_t n,
              int width) {
  if (width == 0) return;
  size_t total_bits = n * static_cast<size_t>(width);
  size_t start = out->size();
  out->resize(start + (total_bits + 7) / 8, 0);
  uint8_t* bytes = out->data() + start;
  size_t bit = 0;
  for (size_t i = 0; i < n; ++i) {
    uint64_t d = deltas[i];
    for (int b = 0; b < width; ++b, ++bit) {
      if ((d >> b) & 1u) bytes[bit >> 3] |= static_cast<uint8_t>(1u << (bit & 7));
    }
  }
}

uint64_t UnpackOne(const uint8_t* bytes, size_t i, int width) {
  uint64_t v = 0;
  size_t bit = i * static_cast<size_t>(width);
  for (int b = 0; b < width; ++b, ++bit) {
    if ((bytes[bit >> 3] >> (bit & 7)) & 1u) v |= 1ull << b;
  }
  return v;
}

struct BlockShape {
  size_t runs = 0;           // number of (tag, bits) runs
  bool all_int = false;      // every tag == kInt
  bool all_str = false;      // every tag == kStr
  uint64_t int_min_bits = 0;  // two's-complement min when all_int
  uint64_t int_range = 0;     // wraparound-safe max - min when all_int
  uint32_t code_min = 0;      // when all_str
  uint32_t code_range = 0;    // when all_str
};

BlockShape AnalyzeBlock(const uint8_t* tags, const uint64_t* data, size_t n) {
  BlockShape s;
  s.all_int = true;
  s.all_str = true;
  int64_t imin = 0, imax = 0;
  uint32_t cmin = 0, cmax = 0;
  for (size_t i = 0; i < n; ++i) {
    if (i == 0 || tags[i] != tags[i - 1] || data[i] != data[i - 1]) ++s.runs;
    if (tags[i] != kTagInt) s.all_int = false;
    if (tags[i] != kTagStr) s.all_str = false;
    if (s.all_int) {
      int64_t v = static_cast<int64_t>(data[i]);
      if (i == 0 || v < imin) imin = v;
      if (i == 0 || v > imax) imax = v;
    }
    if (s.all_str) {
      uint32_t c = static_cast<uint32_t>(data[i]);
      if (i == 0 || c < cmin) cmin = c;
      if (i == 0 || c > cmax) cmax = c;
    }
  }
  if (s.all_int && n > 0) {
    s.int_min_bits = static_cast<uint64_t>(imin);
    s.int_range = static_cast<uint64_t>(imax) - static_cast<uint64_t>(imin);
  }
  if (s.all_str && n > 0) {
    s.code_min = cmin;
    s.code_range = cmax - cmin;
  }
  return s;
}

}  // namespace

ZoneMap BuildZoneMap(const uint8_t* tags, const uint64_t* data, size_t n) {
  ZoneMap z;
  bool have_code = false;
  for (size_t i = 0; i < n; ++i) {
    z.tag_mask |= static_cast<uint8_t>(1u << tags[i]);
    if (tags[i] == kTagInt || tags[i] == kTagReal) {
      double v = CellAsNumeric(Cell{tags[i], data[i]});
      if (!std::isnan(v)) {
        if (!z.has_num || v < z.num_min) z.num_min = v;
        if (!z.has_num || v > z.num_max) z.num_max = v;
        z.has_num = true;
      }
    } else if (tags[i] == kTagStr) {
      uint32_t c = static_cast<uint32_t>(data[i]);
      if (!have_code || c < z.code_min) z.code_min = c;
      if (!have_code || c > z.code_max) z.code_max = c;
      have_code = true;
    }
  }
  return z;
}

bool ZoneCanMatch(const ZoneMap& zone, const ZoneProbe& probe) {
  switch (probe.kind) {
    case ZoneProbe::Kind::kNone:
      return true;
    case ZoneProbe::Kind::kNever:
      return false;
    case ZoneProbe::Kind::kIsNotNull:
      return (zone.tag_mask & ~static_cast<uint8_t>(1u << kTagNull)) != 0;
    case ZoneProbe::Kind::kNumEq:
      return zone.has_num && zone.num_min <= probe.num &&
             probe.num <= zone.num_max;
    case ZoneProbe::Kind::kNumLt:
      return zone.has_num && zone.num_min < probe.num;
    case ZoneProbe::Kind::kNumLe:
      return zone.has_num && zone.num_min <= probe.num;
    case ZoneProbe::Kind::kNumGt:
      return zone.has_num && zone.num_max > probe.num;
    case ZoneProbe::Kind::kNumGe:
      return zone.has_num && zone.num_max >= probe.num;
    case ZoneProbe::Kind::kCodeEq:
      return zone.HasTag(CellTag::kStr) && zone.code_min <= probe.code &&
             probe.code <= zone.code_max;
    case ZoneProbe::Kind::kHasStr:
      return zone.HasTag(CellTag::kStr);
  }
  return true;
}

EncodedBlock EncodeBlock(const uint8_t* tags, const uint64_t* data, size_t n) {
  XS_CHECK(n > 0 && n <= kStorageBlockRows);
  BlockShape shape = AnalyzeBlock(tags, data, n);

  size_t plain_size = n * 9;
  size_t rle_size = shape.runs * 11;
  int int_width = shape.all_int ? BitWidthFor(shape.int_range) : 0;
  size_t bitpack_int_size =
      shape.all_int ? 9 + (n * static_cast<size_t>(int_width) + 7) / 8
                    : plain_size + 1;
  int code_width = shape.all_str ? BitWidthFor(shape.code_range) : 0;
  size_t bitpack_code_size =
      shape.all_str ? 5 + (n * static_cast<size_t>(code_width) + 7) / 8
                    : plain_size + 1;

  // Smallest wins; fixed tie priority kRle < kBitPackInt < kBitPackCode <
  // kPlain keeps the choice deterministic.
  BlockEncoding enc = BlockEncoding::kRle;
  size_t best = rle_size;
  if (shape.all_int && bitpack_int_size < best) {
    enc = BlockEncoding::kBitPackInt;
    best = bitpack_int_size;
  }
  if (shape.all_str && bitpack_code_size < best) {
    enc = BlockEncoding::kBitPackCode;
    best = bitpack_code_size;
  }
  if (plain_size < best) {
    enc = BlockEncoding::kPlain;
    best = plain_size;
  }

  EncodedBlock block;
  block.encoding = enc;
  block.rows = static_cast<uint32_t>(n);
  block.zone = BuildZoneMap(tags, data, n);
  block.bytes.reserve(best);
  switch (enc) {
    case BlockEncoding::kPlain: {
      block.bytes.insert(block.bytes.end(), tags, tags + n);
      size_t start = block.bytes.size();
      block.bytes.resize(start + n * 8);
      std::memcpy(block.bytes.data() + start, data, n * 8);
      break;
    }
    case BlockEncoding::kRle: {
      size_t i = 0;
      while (i < n) {
        size_t j = i + 1;
        while (j < n && tags[j] == tags[i] && data[j] == data[i]) ++j;
        block.bytes.push_back(tags[i]);
        PutU64(&block.bytes, data[i]);
        PutU16(&block.bytes, static_cast<uint16_t>(j - i));
        i = j;
      }
      break;
    }
    case BlockEncoding::kBitPackInt: {
      block.bytes.push_back(static_cast<uint8_t>(int_width));
      PutU64(&block.bytes, shape.int_min_bits);
      std::vector<uint64_t> deltas(n);
      for (size_t i = 0; i < n; ++i) deltas[i] = data[i] - shape.int_min_bits;
      PackBits(&block.bytes, deltas.data(), n, int_width);
      break;
    }
    case BlockEncoding::kBitPackCode: {
      block.bytes.push_back(static_cast<uint8_t>(code_width));
      PutU32(&block.bytes, shape.code_min);
      std::vector<uint64_t> deltas(n);
      for (size_t i = 0; i < n; ++i) {
        deltas[i] = static_cast<uint32_t>(data[i]) - shape.code_min;
      }
      PackBits(&block.bytes, deltas.data(), n, code_width);
      break;
    }
  }
  XS_CHECK_EQ(static_cast<int64_t>(block.bytes.size()),
              static_cast<int64_t>(best));
  return block;
}

void DecodeBlock(const EncodedBlock& block, uint8_t* tags, uint64_t* data) {
  size_t n = block.rows;
  const uint8_t* p = block.bytes.data();
  switch (block.encoding) {
    case BlockEncoding::kPlain: {
      std::memcpy(tags, p, n);
      std::memcpy(data, p + n, n * 8);
      break;
    }
    case BlockEncoding::kRle: {
      size_t out = 0;
      for (size_t off = 0; off + 11 <= block.bytes.size(); off += 11) {
        uint8_t tag = p[off];
        uint64_t bits = GetU64(p + off + 1);
        size_t count = GetU16(p + off + 9);
        for (size_t k = 0; k < count; ++k, ++out) {
          tags[out] = tag;
          data[out] = bits;
        }
      }
      XS_CHECK_EQ(static_cast<int64_t>(out), static_cast<int64_t>(n));
      break;
    }
    case BlockEncoding::kBitPackInt: {
      int width = p[0];
      uint64_t min_bits = GetU64(p + 1);
      const uint8_t* packed = p + 9;
      for (size_t i = 0; i < n; ++i) {
        tags[i] = kTagInt;
        data[i] = min_bits + (width ? UnpackOne(packed, i, width) : 0);
      }
      break;
    }
    case BlockEncoding::kBitPackCode: {
      int width = p[0];
      uint32_t min_code = GetU32(p + 1);
      const uint8_t* packed = p + 5;
      for (size_t i = 0; i < n; ++i) {
        tags[i] = kTagStr;
        data[i] = min_code + static_cast<uint32_t>(
                                 width ? UnpackOne(packed, i, width) : 0);
      }
      break;
    }
  }
}

}  // namespace xmlshred
