// Columnar table storage with page accounting.
//
// A Table keeps one typed vector per column instead of a vector of rows:
// every cell is a one-byte type tag (NULL / BIGINT / DOUBLE / VARCHAR)
// plus a 64-bit data slot holding the int64 bits, the double bits, or a
// 32-bit code into the database's shared StringDictionary. The tag is
// per-cell, not per-column, so a Value of any type round-trips exactly
// even when it disagrees with the declared column type (tests append such
// rows directly). Page accounting is unchanged: byte sizes follow
// Value::ByteSize exactly, tallied as exact integers per column.

#ifndef XMLSHRED_REL_TABLE_H_
#define XMLSHRED_REL_TABLE_H_

#include <cstdint>
#include <cstring>
#include <memory>
#include <vector>

#include "rel/column_block.h"
#include "rel/dictionary.h"
#include "rel/schema.h"
#include "rel/stats.h"
#include "rel/table_types.h"
#include "rel/value.h"

namespace xmlshred {

// Simulated page size. All cost accounting — optimizer estimates and
// executor metering alike — is in units of 8 KiB page accesses.
inline constexpr double kPageSizeBytes = 8192.0;

// Pages occupied by `row_count` rows of `avg_row_bytes` each (>= 1 for any
// non-empty relation).
int64_t PagesFor(int64_t row_count, double avg_row_bytes);

// Pages occupied by `stored_bytes` of encoded block storage (>= 1 for any
// non-empty byte total).
int64_t PagesForBytes(int64_t stored_bytes);

// One column of cells: parallel tag and data vectors plus an exact byte
// tally (the sum of Value::ByteSize over the column's cells, kept as an
// integer so avg_row_bytes carries no floating-point accumulation drift).
//
// Every kStorageBlockRows appended cells the column seals the completed
// prefix into an EncodedBlock (rel/column_block.h): a compressed byte
// image plus a zone map. The plain vectors are retained — they are the
// forced-plain differential read path and the still-unsealed tail — but
// page accounting (`stored_bytes`) is computed from the encoded sizes,
// so compression shows up as fewer metered pages.
class ColumnVector {
 public:
  void Append(const Value& v, StringDictionary* dict);
  void AppendCell(Cell cell, int64_t byte_size);
  // Bulk path for the streaming shredder: appends `n` pre-encoded cells
  // at once (`byte_total` = their summed Value::ByteSize). Requires an
  // empty unsealed tail and n <= kStorageBlockRows — one batch per call,
  // full batches sealing immediately — so the resulting tags/data/blocks
  // and byte accounting are bit-identical to n AppendCell calls.
  void AppendRun(const uint8_t* tags, const uint64_t* bits, size_t n,
                 int64_t byte_total);
  void Reserve(size_t n) {
    tags_.reserve(n);
    data_.reserve(n);
  }

  size_t size() const { return tags_.size(); }
  CellTag tag(size_t i) const { return static_cast<CellTag>(tags_[i]); }
  uint64_t data(size_t i) const { return data_[i]; }
  Cell cell(size_t i) const { return Cell{tags_[i], data_[i]}; }
  bool is_null(size_t i) const {
    return tags_[i] == static_cast<uint8_t>(CellTag::kNull);
  }
  int64_t AsInt(size_t i) const { return static_cast<int64_t>(data_[i]); }
  double AsReal(size_t i) const { return CellBitsToDouble(data_[i]); }
  uint32_t code(size_t i) const { return static_cast<uint32_t>(data_[i]); }

  Value GetValue(size_t i, const StringDictionary& dict) const;

  const uint8_t* tags_data() const { return tags_.data(); }
  const uint64_t* raw_data() const { return data_.data(); }

  // Exact total of Value::ByteSize over the column's cells.
  int64_t byte_total() const { return bytes_; }

  // --- Sealed-block view (encoded storage of record) ---

  size_t num_sealed_blocks() const { return blocks_.size(); }
  const EncodedBlock& sealed_block(size_t b) const { return blocks_[b]; }
  // Rows covered by sealed blocks (a multiple of kStorageBlockRows).
  size_t sealed_rows() const { return blocks_.size() * kStorageBlockRows; }
  // Rows still in the plain, unsealed tail.
  size_t tail_rows() const { return tags_.size() - sealed_rows(); }
  // Encoded bytes across sealed blocks (header + payload per block).
  int64_t sealed_encoded_bytes() const { return encoded_bytes_; }
  // Logical (Value::ByteSize) bytes of the unsealed tail.
  int64_t tail_logical_bytes() const { return bytes_ - sealed_logical_bytes_; }

 private:
  void MaybeSealTail();

  std::vector<uint8_t> tags_;
  std::vector<uint64_t> data_;
  int64_t bytes_ = 0;
  std::vector<EncodedBlock> blocks_;
  int64_t encoded_bytes_ = 0;         // sum of sealed encoded_bytes()
  int64_t sealed_logical_bytes_ = 0;  // logical bytes of the sealed prefix
};

// An in-memory columnar table: a schema plus one ColumnVector per column.
// Rows are identified by their position (row id); indexes reference rows
// by row id. Strings are interned in the dictionary shared by the owning
// Database (a standalone-constructed Table owns a private dictionary).
class Table {
 public:
  explicit Table(TableSchema schema)
      : Table(std::move(schema), std::make_shared<StringDictionary>()) {}
  Table(TableSchema schema, std::shared_ptr<StringDictionary> dict);

  const TableSchema& schema() const { return schema_; }

  void AppendRow(const Row& row);
  // Bulk-appends one columnar batch of `rows` <= kStorageBlockRows rows:
  // column c receives cells tags[c][0..rows) / bits[c][0..rows) with
  // logical byte total col_bytes[c] (strings already interned in the
  // table's dictionary). Requires every column's unsealed tail to be
  // empty — the streaming-ingest invariant (fresh table, full batches
  // until one final partial) — and leaves storage bit-identical to the
  // equivalent AppendRow sequence.
  void AppendBlock(const std::vector<const uint8_t*>& tags,
                   const std::vector<const uint64_t*>& bits,
                   const std::vector<int64_t>& col_bytes, size_t rows);
  void Reserve(size_t n);

  int64_t row_count() const { return static_cast<int64_t>(num_rows_); }

  const ColumnVector& column(int c) const {
    return columns_[static_cast<size_t>(c)];
  }
  const StringDictionary& dictionary() const { return *dict_; }
  StringDictionary* mutable_dictionary() { return dict_.get(); }
  const std::shared_ptr<StringDictionary>& shared_dictionary() const {
    return dict_;
  }

  // Materialization back to Values (row reconstruction, stats, tests).
  Value GetValue(int64_t rid, int col) const;
  Row GetRow(int64_t rid) const;
  std::vector<Row> MaterializeRows() const;

  // Exact logical bytes across all columns (Value::ByteSize semantics).
  // Unaffected by block encoding; this is the uncompressed row width.
  int64_t total_bytes() const;

  // Mean logical row width (bytes), from the exact per-column tallies.
  double avg_row_bytes() const;

  // Bytes the table occupies under block encoding: sealed encoded blocks
  // at their compressed sizes plus the unsealed tail at
  // max(logical bytes, 8 bytes/row) — so a table smaller than one block
  // accounts byte-for-byte like the pre-encoding logical formula.
  int64_t stored_bytes() const;
  int64_t NumPages() const { return PagesForBytes(stored_bytes()); }

  // Scans the columns and computes full statistics.
  TableStats ComputeStats() const;

 private:
  TableSchema schema_;
  std::shared_ptr<StringDictionary> dict_;
  std::vector<ColumnVector> columns_;
  size_t num_rows_ = 0;
};

}  // namespace xmlshred

#endif  // XMLSHRED_REL_TABLE_H_
