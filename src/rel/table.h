// Heap table storage with page accounting.

#ifndef XMLSHRED_REL_TABLE_H_
#define XMLSHRED_REL_TABLE_H_

#include <cstdint>
#include <vector>

#include "rel/schema.h"
#include "rel/stats.h"
#include "rel/value.h"

namespace xmlshred {

// Simulated page size. All cost accounting — optimizer estimates and
// executor metering alike — is in units of 8 KiB page accesses.
inline constexpr double kPageSizeBytes = 8192.0;

// Pages occupied by `row_count` rows of `avg_row_bytes` each (>= 1 for any
// non-empty relation).
int64_t PagesFor(int64_t row_count, double avg_row_bytes);

// An in-memory heap table: a schema plus a row store. Rows are identified
// by their position (row id); indexes reference rows by row id.
class Table {
 public:
  explicit Table(TableSchema schema) : schema_(std::move(schema)) {}

  const TableSchema& schema() const { return schema_; }
  const std::vector<Row>& rows() const { return rows_; }

  void AppendRow(Row row);
  void Reserve(size_t n) { rows_.reserve(n); }

  int64_t row_count() const { return static_cast<int64_t>(rows_.size()); }

  // Mean stored row width (bytes), tracked incrementally on append.
  double avg_row_bytes() const;
  int64_t NumPages() const { return PagesFor(row_count(), avg_row_bytes()); }

  // Scans the rows and computes full statistics.
  TableStats ComputeStats() const { return BuildTableStats(rows_, schema_.num_columns()); }

 private:
  TableSchema schema_;
  std::vector<Row> rows_;
  double total_bytes_ = 0;
};

}  // namespace xmlshred

#endif  // XMLSHRED_REL_TABLE_H_
