// Value: a nullable SQL scalar (NULL, BIGINT, DOUBLE, or VARCHAR).
//
// Values use SQL comparison semantics for predicate evaluation (NULL
// compares as unknown -> predicates reject it) but provide a total order
// (`TotalLess`, NULLs first) for sorting and index organization.

#ifndef XMLSHRED_REL_VALUE_H_
#define XMLSHRED_REL_VALUE_H_

#include <cstdint>
#include <functional>
#include <string>
#include <variant>
#include <vector>

namespace xmlshred {

enum class ColumnType {
  kInt64,
  kDouble,
  kString,
};

const char* ColumnTypeToString(ColumnType type);

class Value {
 public:
  Value() : v_(std::monostate{}) {}
  static Value Null() { return Value(); }
  static Value Int(int64_t v) { return Value(Repr(v)); }
  static Value Real(double v) { return Value(Repr(v)); }
  static Value Str(std::string v) { return Value(Repr(std::move(v))); }

  bool is_null() const { return std::holds_alternative<std::monostate>(v_); }
  bool is_int() const { return std::holds_alternative<int64_t>(v_); }
  bool is_double() const { return std::holds_alternative<double>(v_); }
  bool is_string() const { return std::holds_alternative<std::string>(v_); }

  int64_t AsInt() const { return std::get<int64_t>(v_); }
  double AsDouble() const { return std::get<double>(v_); }
  const std::string& AsString() const { return std::get<std::string>(v_); }

  // Numeric view: ints promote to double. Must not be NULL or string.
  double AsNumeric() const;

  // SQL equality: NULL never equals anything (returns false).
  bool SqlEquals(const Value& other) const;
  // SQL '<' with numeric promotion; false when either side is NULL.
  bool SqlLess(const Value& other) const;

  // Total order for sorting/indexing: NULL < ints/doubles (numeric order)
  // < strings (lexicographic).
  bool TotalLess(const Value& other) const;
  bool TotalEquals(const Value& other) const;

  size_t Hash() const;

  // Approximate storage footprint in bytes.
  size_t ByteSize() const;

  std::string ToString() const;

 private:
  using Repr = std::variant<std::monostate, int64_t, double, std::string>;
  explicit Value(Repr v) : v_(std::move(v)) {}
  Repr v_;
};

using Row = std::vector<Value>;

struct ValueTotalLess {
  bool operator()(const Value& a, const Value& b) const {
    return a.TotalLess(b);
  }
};

struct RowHash {
  size_t operator()(const Row& row) const {
    size_t h = 0xcbf29ce484222325ULL;
    for (const Value& v : row) h = h * 1099511628211ULL ^ v.Hash();
    return h;
  }
};

struct RowTotalEquals {
  bool operator()(const Row& a, const Row& b) const {
    if (a.size() != b.size()) return false;
    for (size_t i = 0; i < a.size(); ++i) {
      if (!a[i].TotalEquals(b[i])) return false;
    }
    return true;
  }
};

// Lexicographic total order over rows.
bool RowTotalLess(const Row& a, const Row& b);

}  // namespace xmlshred

#endif  // XMLSHRED_REL_VALUE_H_
