#include "rel/column_reader.h"

#include <cstdlib>

#include "common/logging.h"

namespace xmlshred {

StorageReadMode DefaultStorageReadMode() {
  static const StorageReadMode mode = [] {
    const char* v = std::getenv("XS_FORCE_PLAIN");
    if (v != nullptr && v[0] != '\0' && !(v[0] == '0' && v[1] == '\0')) {
      return StorageReadMode::kPlain;
    }
    return StorageReadMode::kEncoded;
  }();
  return mode;
}

BlockCursor::BlockCursor(const ColumnVector& col, StorageReadMode mode)
    : col_(&col), mode_(mode), cached_block_(static_cast<size_t>(-1)) {
  num_blocks_ = col.num_sealed_blocks() + (col.tail_rows() > 0 ? 1 : 0);
}

BlockView BlockCursor::Read(size_t b) {
  XS_CHECK(b < num_blocks_);
  size_t base = BlockBase(b);
  if (mode_ == StorageReadMode::kPlain || b >= col_->num_sealed_blocks()) {
    // Plain mode, or the unsealed tail (stored plain in both modes).
    BlockView view;
    view.base = base;
    view.rows = b < col_->num_sealed_blocks() ? kStorageBlockRows
                                              : col_->tail_rows();
    view.tags = col_->tags_data() + base;
    view.data = col_->raw_data() + base;
    return view;
  }
  const EncodedBlock& block = col_->sealed_block(b);
  if (cached_block_ != b) {
    tag_scratch_.resize(block.rows);
    data_scratch_.resize(block.rows);
    DecodeBlock(block, tag_scratch_.data(), data_scratch_.data());
    cached_block_ = b;
  }
  BlockView view;
  view.base = base;
  view.rows = block.rows;
  view.tags = tag_scratch_.data();
  view.data = data_scratch_.data();
  return view;
}

Value ColumnReader::GetValue(size_t rid, const StringDictionary& dict) {
  Cell c = At(rid);
  switch (static_cast<CellTag>(c.tag)) {
    case CellTag::kNull:
      return Value::Null();
    case CellTag::kInt:
      return Value::Int(static_cast<int64_t>(c.bits));
    case CellTag::kReal:
      return Value::Real(CellBitsToDouble(c.bits));
    case CellTag::kStr:
      return Value::Str(dict.str(static_cast<uint32_t>(c.bits)));
  }
  return Value::Null();
}

void ColumnReader::Seek(size_t rid) {
  size_t b = rid / kStorageBlockRows;
  view_ = cursor_.Read(b);
  view_base_ = view_.base;
  view_end_ = view_.base + view_.rows;
  XS_CHECK(rid < view_end_);
}

ScanLayout ComputeScanLayout(const Table& table, int64_t bound,
                             const std::vector<ColumnProbe>& probes,
                             bool allow_skip) {
  ScanLayout layout;
  if (bound <= 0 || table.row_count() == 0) return layout;
  if (bound > table.row_count()) bound = table.row_count();

  const int64_t block_rows = static_cast<int64_t>(kStorageBlockRows);
  int64_t sealed_rows =
      static_cast<int64_t>(table.column(0).num_sealed_blocks()) * block_rows;
  int64_t tail_rows = table.row_count() - sealed_rows;

  // Tail stored bytes under the same accounting as Table::stored_bytes().
  int64_t tail_logical = 0;
  for (int c = 0; c < table.schema().num_columns(); ++c) {
    tail_logical += table.column(c).tail_logical_bytes();
  }
  int64_t tail_floor = 8 * tail_rows;
  int64_t tail_bytes = tail_logical < tail_floor ? tail_floor : tail_logical;

  for (int64_t lo = 0; lo < bound; lo += block_rows) {
    int64_t hi = lo < bound - block_rows ? lo + block_rows : bound;
    size_t b = static_cast<size_t>(lo / block_rows);
    bool sealed = lo + block_rows <= sealed_rows;
    bool full_block = hi - lo == block_rows;
    if (allow_skip && sealed && full_block) {
      bool match = true;
      for (const ColumnProbe& p : probes) {
        const ZoneMap& zone =
            table.column(p.col).sealed_block(b).zone;
        if (!ZoneCanMatch(zone, p.probe)) {
          match = false;
          break;
        }
      }
      if (!match) {
        ++layout.blocks_skipped;
        continue;
      }
    }
    layout.spans.push_back(ScanSpan{lo, hi});
    layout.scanned_rows += hi - lo;
    ++layout.blocks_scanned;
    if (sealed) {
      for (int c = 0; c < table.schema().num_columns(); ++c) {
        layout.scanned_bytes += table.column(c).sealed_block(b).encoded_bytes();
      }
    } else {
      layout.scanned_bytes += tail_bytes;
    }
  }
  return layout;
}

}  // namespace xmlshred
