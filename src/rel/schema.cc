#include "rel/schema.h"

namespace xmlshred {

int TableSchema::FindColumn(const std::string& column_name) const {
  for (size_t i = 0; i < columns.size(); ++i) {
    if (columns[i].name == column_name) return static_cast<int>(i);
  }
  return -1;
}

std::string TableSchema::ToString() const {
  std::string out = name + "(";
  for (size_t i = 0; i < columns.size(); ++i) {
    if (i > 0) out += ", ";
    out += columns[i].name;
    out += ' ';
    out += ColumnTypeToString(columns[i].type);
  }
  out += ")";
  return out;
}

}  // namespace xmlshred
