// Per-database string dictionary.
//
// Every VARCHAR cell in columnar storage holds a 32-bit code instead of a
// heap-allocated string; the dictionary owns the one copy of each distinct
// string. Codes are assigned in interning order, so code equality is
// string equality (tables in one Database share one dictionary). Order
// comparisons go through a lazily built rank table: Rank(code) is the
// string's position in the lexicographic order of all interned strings,
// so rank comparisons reproduce std::string operator< exactly without
// touching character data in hot loops.
//
// Thread-safety: Intern/Reserve require external serialization (the
// shredder and view materialization are single-writer phases); lookups,
// Rank, and CountLess are safe to call concurrently with each other. The
// rank table rebuild is guarded by a mutex + acquire/release flag, so the
// first reader after an intern pays the sort and later readers are
// lock-free.

#ifndef XMLSHRED_REL_DICTIONARY_H_
#define XMLSHRED_REL_DICTIONARY_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace xmlshred {

class StringDictionary {
 public:
  static constexpr uint32_t kNotFound = 0xffffffffu;
  // Per-entry bookkeeping charged by ByteSize on top of payload bytes
  // (string header, hash bucket, rank slot).
  static constexpr int64_t kPerEntryOverheadBytes = 48;

  StringDictionary() = default;
  StringDictionary(const StringDictionary&) = delete;
  StringDictionary& operator=(const StringDictionary&) = delete;

  // Returns the code of `s`, interning it first if absent.
  uint32_t Intern(std::string_view s);

  // Returns the code of `s`, or kNotFound when it was never interned.
  uint32_t Lookup(std::string_view s) const;

  const std::string& str(uint32_t code) const {
    return strings_[static_cast<size_t>(code)];
  }

  size_t size() const { return strings_.size(); }

  // Pre-sizes the code map for `n` expected distinct strings.
  void Reserve(size_t n) { map_.reserve(n); }

  // Removes every entry with code >= n, restoring the dictionary to the
  // exact state it had when size() was n (codes are assigned densely in
  // interning order, so the first n entries are untouched). Used to roll
  // back a failed streaming ingest; requires external serialization like
  // Intern.
  void TruncateTo(size_t n);

  // Sum of interned string lengths (payload bytes, no overhead).
  int64_t total_string_bytes() const { return total_string_bytes_; }

  // Approximate in-memory footprint: payload plus per-entry bookkeeping
  // (string header, hash bucket, rank slot). Reported by the storage
  // section of RunReport.
  int64_t ByteSize() const {
    return total_string_bytes_ +
           static_cast<int64_t>(strings_.size()) * kPerEntryOverheadBytes;
  }

  // Position of `code`'s string in the lexicographic order of all
  // interned strings (0-based): Rank(a) < Rank(b) iff str(a) < str(b).
  uint32_t Rank(uint32_t code) const {
    EnsureRanks();
    return rank_of_code_[static_cast<size_t>(code)];
  }

  // Number of interned strings lexicographically < `s` (`s` need not be
  // interned). With Rank this answers range predicates on string columns:
  // str(code) < s iff Rank(code) < CountLess(s).
  uint32_t CountLess(std::string_view s) const;

  // Rank table handle for tight loops (one EnsureRanks per operator).
  const std::vector<uint32_t>& ranks() const {
    EnsureRanks();
    return rank_of_code_;
  }

 private:
  void EnsureRanks() const;

  // Stable element addresses (std::deque) keep the string_view map keys
  // valid as the dictionary grows (SSO strings would move in a vector).
  std::deque<std::string> strings_;
  std::unordered_map<std::string_view, uint32_t> map_;
  int64_t total_string_bytes_ = 0;

  mutable std::mutex rank_mu_;
  mutable std::atomic<bool> ranks_ready_{false};
  mutable std::vector<uint32_t> rank_of_code_;  // code -> rank
  mutable std::vector<uint32_t> codes_sorted_;  // rank -> code
};

}  // namespace xmlshred

#endif  // XMLSHRED_REL_DICTIONARY_H_
