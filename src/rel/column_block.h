// Block-encoded columnar storage: per-block encodings + zone maps
// (DESIGN.md §14).
//
// A ColumnVector seals every kStorageBlockRows appended cells into an
// EncodedBlock: a compact byte image under the cheapest of four
// encodings, plus a ZoneMap summarizing the block (tag mask, numeric
// min/max, dictionary-code min/max). Scans consult zone maps to skip
// whole blocks before touching data; page accounting is recomputed from
// the encoded sizes, so compression shows up as fewer metered pages and
// shifts the optimizer's index/covering trade-offs — the logical/physical
// interplay the paper studies.
//
// Determinism contract: encoding choice is a pure function of the block's
// cells (smallest encoded size wins, ties broken by fixed priority), and
// DecodeBlock reproduces the original tag/data arrays bit-exactly. The
// skip set for a scan is a pure function of the sealed blocks' zone maps
// and the compiled predicates — both the encoded and the forced-plain
// read paths consult it identically, so results and metering cannot
// diverge between them.

#ifndef XMLSHRED_REL_COLUMN_BLOCK_H_
#define XMLSHRED_REL_COLUMN_BLOCK_H_

#include <cstdint>
#include <vector>

#include "rel/table_types.h"

namespace xmlshred {

// Rows per sealed block. Equal to the executor's kMorselRows so morsel
// dispatch aligns with block boundaries (a scanned block is exactly one
// morsel; the fault/interrupt replay order is unchanged).
inline constexpr size_t kStorageBlockRows = 4096;

// Accounting overhead charged per sealed block (encoding byte, row count,
// zone-map summary) on top of the encoded payload.
inline constexpr int64_t kBlockHeaderBytes = 16;

enum class BlockEncoding : uint8_t {
  kPlain = 0,        // n tag bytes + 8n data bytes
  kRle = 1,          // runs of identical (tag, bits): 11 bytes per run
  kBitPackInt = 2,   // all-kInt: width byte + 8-byte min + packed deltas
  kBitPackCode = 3,  // all-kStr: width byte + 4-byte min code + deltas
};

inline constexpr int kNumBlockEncodings = 4;

// Per-block summary consulted before decoding. num_min/num_max cover
// int and real cells through CellAsNumeric; NaN cells are excluded (a
// NaN compares false against every numeric literal, so it can never
// satisfy a numeric predicate). code_min/code_max cover kStr cells only
// and are meaningful only when tag_mask has the kStr bit.
struct ZoneMap {
  uint8_t tag_mask = 0;  // bit (1 << CellTag) per tag present
  bool has_num = false;  // any non-NaN int/real cell
  double num_min = 0;
  double num_max = 0;
  uint32_t code_min = 0;
  uint32_t code_max = 0;

  bool HasTag(CellTag t) const {
    return (tag_mask & static_cast<uint8_t>(1u << static_cast<uint8_t>(t))) !=
           0;
  }
};

ZoneMap BuildZoneMap(const uint8_t* tags, const uint64_t* data, size_t n);

// One zone-map question derived from a compiled scan predicate. String
// *range* predicates compare dictionary ranks, which mutate as the
// dictionary grows — code order is insertion order, not collation order —
// so they only map to kHasStr ("could any cell be a string at all"),
// never to a code-range probe. String *equality* is rank-free and maps to
// kCodeEq.
struct ZoneProbe {
  enum class Kind : uint8_t {
    kNone = 0,   // unprunable predicate: always scan
    kNever,      // predicate matches nothing: always skip
    kIsNotNull,  // any non-null tag present?
    kNumEq,      // num in [min, max]?
    kNumLt,      // num_min <  lit?
    kNumLe,      // num_min <= lit?
    kNumGt,      // num_max >  lit?
    kNumGe,      // num_max >= lit?
    kCodeEq,     // str present and code in [code_min, code_max]?
    kHasStr,     // str present at all?
  };
  Kind kind = Kind::kNone;
  double num = 0;
  uint32_t code = 0;
};

// True when a block with `zone` may contain a cell satisfying `probe`
// (false = the whole block is provably predicate-free and can be
// skipped). Conservative: kNone always returns true.
bool ZoneCanMatch(const ZoneMap& zone, const ZoneProbe& probe);

// A sealed, immutable block of kStorageBlockRows cells.
struct EncodedBlock {
  BlockEncoding encoding = BlockEncoding::kPlain;
  uint32_t rows = 0;
  ZoneMap zone;
  std::vector<uint8_t> bytes;

  // Accounted storage footprint: header + payload.
  int64_t encoded_bytes() const {
    return kBlockHeaderBytes + static_cast<int64_t>(bytes.size());
  }
};

// Encodes `n` cells, choosing the smallest applicable encoding
// (deterministic tie order: kRle, kBitPackInt, kBitPackCode, kPlain).
EncodedBlock EncodeBlock(const uint8_t* tags, const uint64_t* data, size_t n);

// Reconstructs the original arrays bit-exactly. `tags`/`data` must hold
// block.rows entries.
void DecodeBlock(const EncodedBlock& block, uint8_t* tags, uint64_t* data);

}  // namespace xmlshred

#endif  // XMLSHRED_REL_COLUMN_BLOCK_H_
